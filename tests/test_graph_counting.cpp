// Tests for the direct triangle and butterfly counters on graphs with
// known closed-form counts.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/graph/triangles.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::graph {
namespace {

// ---------------------------------------------------------------------------
// Triangles.

TEST(Triangles, CompleteGraphClosedForm) {
  // K_n has C(n,3) triangles; each vertex is in C(n-1,2).
  const auto k5 = gen::complete_graph(5);
  EXPECT_EQ(global_triangles(k5), 10);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_EQ(vertex_triangles(k5)[i], 6);
  }
  // Every edge of K5 lies in n-2 = 3 triangles.
  const auto et = edge_triangles(k5);
  for (const count_t v : et.vals()) EXPECT_EQ(v, 3);
}

TEST(Triangles, BipartiteGraphsHaveNone) {
  EXPECT_EQ(global_triangles(gen::complete_bipartite(4, 5)), 0);
  EXPECT_EQ(global_triangles(gen::hypercube(4)), 0);
  Rng rng(9);
  EXPECT_EQ(global_triangles(gen::random_bipartite(10, 12, 40, rng)), 0);
}

TEST(Triangles, RejectSelfLoops) {
  const auto a = from_undirected_edges(2, {{0, 0}, {0, 1}});
  EXPECT_THROW(vertex_triangles(a), domain_error);
  EXPECT_THROW(edge_triangles(a), domain_error);
}

// ---------------------------------------------------------------------------
// Butterflies: closed-form families.

TEST(Butterflies, CompleteBipartiteClosedForm) {
  // K_{m,n} has C(m,2)·C(n,2) squares.
  const auto k34 = gen::complete_bipartite(3, 4);
  EXPECT_EQ(global_butterflies(k34), 3 * 6);
  // Each left vertex participates in C(m-1,1)... full count:
  // squares through a left vertex u: choose partner u' (m-1), choose 2
  // right vertices C(n,2).
  const auto s = vertex_butterflies(k34);
  for (index_t i = 0; i < 3; ++i) EXPECT_EQ(s[i], 2 * 6); // (3-1)·C(4,2)
  for (index_t i = 3; i < 7; ++i) EXPECT_EQ(s[i], 3 * 3); // (4-1)·C(3,2)
}

TEST(Butterflies, CycleHasExactlyOneIFF4) {
  EXPECT_EQ(global_butterflies(gen::cycle_graph(4)), 1);
  EXPECT_EQ(global_butterflies(gen::cycle_graph(6)), 0);
  EXPECT_EQ(global_butterflies(gen::cycle_graph(8)), 0);
}

TEST(Butterflies, HypercubeClosedForm) {
  // Q_d has C(d,2)·2^(d-2) squares.
  EXPECT_EQ(global_butterflies(gen::hypercube(3)), 3 * 2);
  EXPECT_EQ(global_butterflies(gen::hypercube(4)), 6 * 4);
}

TEST(Butterflies, CrownGraphClosedForm) {
  // Crown S_n^0 = K_{n,n} minus a perfect matching. Squares: pairs of left
  // vertices {i,i'} with common neighborhood of size n-2 → C(n,2)·C(n-2,2).
  const index_t n = 5;
  const auto cr = gen::crown_graph(n);
  EXPECT_EQ(global_butterflies(cr), (n * (n - 1) / 2) * 3); // C(3,2)=3 for n=5
}

TEST(Butterflies, TreesAreSquareFree) {
  EXPECT_EQ(global_butterflies(gen::path_graph(10)), 0);
  EXPECT_EQ(global_butterflies(gen::star_graph(10)), 0);
  EXPECT_EQ(global_butterflies(gen::double_star(4, 5)), 0);
}

TEST(Butterflies, K4NonBipartite) {
  // K4 contains 3 distinct 4-cycles; each vertex is in all 3, each edge in 2.
  const auto k4 = gen::complete_graph(4);
  EXPECT_EQ(global_butterflies(k4), 3);
  const auto s = vertex_butterflies(k4);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(s[i], 3);
  const auto e = edge_butterflies(k4);
  for (const count_t v : e.vals()) EXPECT_EQ(v, 2);
}

TEST(Butterflies, VertexEdgeGlobalConsistency) {
  Rng rng(77);
  const auto g = gen::random_bipartite(12, 14, 60, rng);
  const auto s = vertex_butterflies(g);
  const auto e = edge_butterflies(g);
  const auto total = global_butterflies(g);
  EXPECT_EQ(grb::reduce(s), 4 * total);
  EXPECT_EQ(grb::reduce(e), 8 * total); // both directions of 4 edges
  // s = ½ ◇ 1.
  const auto rows = grb::reduce_rows(e);
  for (index_t i = 0; i < g.nrows(); ++i) EXPECT_EQ(2 * s[i], rows[i]);
}

TEST(Butterflies, RejectSelfLoops) {
  const auto a = from_undirected_edges(2, {{0, 0}, {0, 1}});
  EXPECT_THROW(vertex_butterflies(a), domain_error);
  EXPECT_THROW(edge_butterflies(a), domain_error);
  EXPECT_THROW(global_butterflies(a), domain_error);
}

TEST(Butterflies, NaiveGuardsAgainstLargeInputs) {
  Rng rng(5);
  const auto big = gen::random_bipartite(100, 100, 300, rng);
  EXPECT_THROW(global_butterflies_naive(big), invalid_argument);
}

TEST(Butterflies, BookGraphClosedForm) {
  // B_n has exactly n squares, all through the spine edge.
  for (const index_t n : {1, 3, 6}) {
    const auto b = gen::book_graph(n);
    EXPECT_EQ(global_butterflies(b), n);
    // Spine edge (0,1) is in every square; page edges in exactly one.
    const auto e = edge_butterflies(b);
    EXPECT_EQ(e.at(0, 1), n);
    EXPECT_EQ(e.at(0, 2), 1);
  }
}

TEST(Butterflies, WheelClosedForm) {
  // W_n with rim size n ≥ 5: every rim wedge a–c–b closes through the hub
  // (hub-a-c-b-hub), giving exactly n squares; the rim itself contributes
  // none once n > 4.
  for (const index_t n : {5, 7, 9}) {
    EXPECT_EQ(global_butterflies(gen::wheel_graph(n)), n) << "n=" << n;
  }
  EXPECT_FALSE(graph::is_bipartite(gen::wheel_graph(6)));
  EXPECT_TRUE(graph::is_connected(gen::wheel_graph(6)));
}

TEST(Butterflies, GridClosedForm) {
  // An r×c grid has (r-1)(c-1) unit squares and no other 4-cycles.
  EXPECT_EQ(global_butterflies(gen::grid_graph(3, 5)), 2 * 4);
  EXPECT_EQ(global_butterflies(gen::grid_graph(4, 4)), 9);
}

} // namespace
} // namespace kronlab::graph
