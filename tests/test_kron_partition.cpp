// Tests for PartitionedStream: disjoint cover, balance, shard output.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/kron/partition.hpp"

namespace kronlab::kron {
namespace {

BipartiteKronecker sample() {
  Rng rng(101);
  return BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(9, 20, rng),
      gen::random_bipartite(5, 6, 14, rng));
}

TEST(Partition, RanksCoverRowsDisjointly) {
  const auto kp = sample();
  for (const index_t parts : {1, 2, 3, 5, 8}) {
    const PartitionedStream ps(kp, parts);
    ASSERT_EQ(ps.parts(), parts);
    index_t prev_end = 0;
    for (index_t r = 0; r < parts; ++r) {
      const auto [lo, hi] = ps.owned_left_rows(r);
      EXPECT_EQ(lo, prev_end);
      EXPECT_LE(lo, hi);
      prev_end = hi;
    }
    EXPECT_EQ(prev_end, kp.left().nrows());
  }
}

TEST(Partition, UnionOfShardsIsTheFullStream) {
  const auto kp = sample();
  EdgeStream es(kp);
  std::set<std::pair<index_t, index_t>> full;
  es.for_each_entry([&](index_t p, index_t q) { full.emplace(p, q); });

  for (const index_t parts : {2, 4, 7}) {
    const PartitionedStream ps(kp, parts);
    std::set<std::pair<index_t, index_t>> combined;
    count_t total = 0;
    for (index_t r = 0; r < parts; ++r) {
      count_t shard_entries = 0;
      ps.for_each_entry(r, [&](index_t p, index_t q) {
        EXPECT_TRUE(combined.emplace(p, q).second)
            << "entry seen by two ranks";
        ++shard_entries;
      });
      EXPECT_EQ(shard_entries, ps.entries_of(r));
      total += shard_entries;
    }
    EXPECT_EQ(combined, full);
    EXPECT_EQ(total, kp.left().nnz() * kp.right().nnz());
  }
}

TEST(Partition, EntriesRespectOwnedProductRows) {
  const auto kp = sample();
  const PartitionedStream ps(kp, 3);
  for (index_t r = 0; r < 3; ++r) {
    const auto [plo, phi] = ps.owned_product_rows(r);
    ps.for_each_entry(r, [&](index_t p, index_t) {
      EXPECT_GE(p, plo);
      EXPECT_LT(p, phi);
    });
  }
}

TEST(Partition, BalanceIsReasonable) {
  // Entry counts per rank should be within 2x of the mean for a
  // moderately regular factor.
  Rng rng(102);
  const auto kp = BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(40, 120, rng),
      gen::random_bipartite(6, 6, 16, rng));
  const index_t parts = 4;
  const PartitionedStream ps(kp, parts);
  const double mean = static_cast<double>(kp.left().nnz() *
                                          kp.right().nnz()) /
                      static_cast<double>(parts);
  for (index_t r = 0; r < parts; ++r) {
    EXPECT_LT(static_cast<double>(ps.entries_of(r)), 2.0 * mean);
  }
}

TEST(Partition, MorePartsThanRowsDegradesGracefully) {
  const auto kp = BipartiteKronecker::raw(gen::path_graph(3),
                                          gen::path_graph(3));
  const PartitionedStream ps(kp, 10);
  count_t total = 0;
  for (index_t r = 0; r < 10; ++r) total += ps.entries_of(r);
  EXPECT_EQ(total, kp.left().nnz() * kp.right().nnz());
}

TEST(Partition, ShardOutputFormat) {
  const auto kp = sample();
  const PartitionedStream ps(kp, 2);
  std::ostringstream out;
  ps.write_shard(1, out);
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("% shard 1/2", 0), 0u);
  count_t lines = 0;
  index_t p, q;
  const auto [plo, phi] = ps.owned_product_rows(1);
  while (in >> p >> q) {
    EXPECT_GT(p, plo); // 1-based ids
    EXPECT_LE(p, phi);
    ++lines;
  }
  EXPECT_EQ(lines, ps.entries_of(1));
}

TEST(Partition, RejectsBadArguments) {
  const auto kp = sample();
  EXPECT_THROW(PartitionedStream(kp, 0), invalid_argument);
  const PartitionedStream ps(kp, 2);
  EXPECT_THROW((void)ps.owned_left_rows(2), invalid_argument);
  EXPECT_THROW((void)ps.owned_left_rows(-1), invalid_argument);
}

} // namespace
} // namespace kronlab::kron
