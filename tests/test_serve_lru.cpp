// Unit battery for the serving-layer caches: LruCache recency/eviction
// semantics and the ShardedLru wrapper's shard distribution, per-shard
// eviction independence, degenerate capacities, hit/miss counters, and
// basic thread safety under concurrent mixed get/put.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "kronlab/serve/lru.hpp"

namespace kronlab::serve {
namespace {

// ---------------------------------------------------------------------------
// LruCache.

TEST(LruCache, EvictsLeastRecentlyUsedInOrder) {
  LruCache<int, int> c(3);
  c.put(1, 10);
  c.put(2, 20);
  c.put(3, 30);
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_EQ(c.get(1), 10);
  c.put(4, 40); // evicts 2
  EXPECT_FALSE(c.get(2).has_value());
  EXPECT_EQ(c.get(1), 10);
  EXPECT_EQ(c.get(3), 30);
  EXPECT_EQ(c.get(4), 40);
  c.put(5, 50); // recency is now 4,3,1 — evicts 1
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.size(), 3u);
}

TEST(LruCache, PutRefreshesValueAndRecency) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(1, 11); // refresh: 1 is now MRU, value updated
  c.put(3, 30); // evicts 2, not 1
  EXPECT_EQ(c.get(1), 11);
  EXPECT_FALSE(c.get(2).has_value());
  EXPECT_EQ(c.get(3), 30);
}

TEST(LruCache, CapacityZeroDisables) {
  LruCache<int, int> c(0);
  c.put(1, 10);
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.size(), 0u);
}

TEST(LruCache, CapacityOneHoldsExactlyTheLastInsert) {
  LruCache<int, int> c(1);
  c.put(1, 10);
  EXPECT_EQ(c.get(1), 10);
  c.put(2, 20);
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.get(2), 20);
}

// ---------------------------------------------------------------------------
// ShardedLru.

TEST(ShardedLru, HitAndMissCountersTrackGets) {
  ShardedLru<int, int> c(64, 4);
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 0u);
  c.put(1, 10);
  EXPECT_EQ(c.get(1), 10);
  EXPECT_EQ(c.get(1), 10);
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(ShardedLru, KeysSpreadAcrossShards) {
  ShardedLru<int, int> c(1024, 8);
  ASSERT_EQ(c.num_shards(), 8u);
  std::vector<int> per_shard(8, 0);
  for (int k = 0; k < 4096; ++k) {
    per_shard[c.shard_index(k)]++;
  }
  // A dense integer key range must not collapse onto few shards (the
  // mixer exists precisely because std::hash<int> is the identity).
  for (int s = 0; s < 8; ++s) {
    EXPECT_GT(per_shard[s], 4096 / 8 / 2) << "shard " << s << " starved";
    EXPECT_LT(per_shard[s], 4096 / 8 * 2) << "shard " << s << " overloaded";
  }
}

TEST(ShardedLru, ShardIndexIsStablePerKey) {
  ShardedLru<int, int> c(64, 4);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(c.shard_index(k), c.shard_index(k));
  }
}

TEST(ShardedLru, EvictionIsPerShard) {
  // Fill one shard to its brim; inserts into OTHER shards must never
  // evict the full shard's entries.
  ShardedLru<int, int> c(16, 4); // 4 entries per shard
  const std::size_t target = c.shard_index(0);
  std::vector<int> in_target, elsewhere;
  for (int k = 0; in_target.size() < 4 || elsewhere.size() < 32; ++k) {
    (c.shard_index(k) == target ? in_target : elsewhere).push_back(k);
  }
  for (std::size_t i = 0; i < 4; ++i) c.put(in_target[i], in_target[i]);
  for (const int k : elsewhere) c.put(k, k);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.get(in_target[i]), in_target[i])
        << "cross-shard insert evicted a full shard's entry";
  }
}

TEST(ShardedLru, CapacityZeroDisablesAndCountsMisses) {
  ShardedLru<int, int> c(0, 8);
  c.put(1, 10);
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(ShardedLru, TinyCapacityClampsShardCount) {
  // capacity 1 with 8 requested shards must clamp to 1 shard of 1 entry,
  // never 8 shards of 0 (which would silently disable caching).
  ShardedLru<int, int> c(1, 8);
  EXPECT_EQ(c.num_shards(), 1u);
  c.put(7, 70);
  EXPECT_EQ(c.get(7), 70);
  // capacity 3 over 2 shards: 2 + 1, all usable.
  ShardedLru<int, int> d(3, 2);
  EXPECT_EQ(d.num_shards(), 2u);
  for (int k = 0; k < 3; ++k) d.put(k, k);
  EXPECT_GE(d.size(), 2u);
}

TEST(ShardedLru, ConcurrentMixedLoadKeepsCountersCoherent) {
  ShardedLru<int, int> c(256, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (t * 7919 + i) % 512;
        if (auto v = c.get(key)) {
          EXPECT_EQ(*v, key); // values are never torn or crossed
        } else {
          c.put(key, key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.hits() + c.misses(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(c.size(), 256u);
}

} // namespace
} // namespace kronlab::serve
