// Concurrency battery for the query server: a multi-client soak with a
// chaos thread disconnecting mid-frame, shutdown under load, and the
// graceful-drain invariant (in_flight() == 0 after stop(), every admitted
// frame answered).  CI runs this suite under TSan — the locking
// discipline of the reader/executor/cache paths is what is on trial, so
// the test leans on genuine parallelism, not sleeps.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/serve/client.hpp"
#include "kronlab/serve/protocol.hpp"
#include "kronlab/serve/server.hpp"
#include "kronlab/serve/transport.hpp"

namespace kronlab::serve {
namespace {

kron::BipartiteKronecker make_product() {
  return kron::BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(1), gen::complete_bipartite(3, 4));
}

TEST(ServeConcurrency, MultiClientSoakEveryFrameAnswered) {
  const auto kp = make_product();
  ServerOptions opt;
  opt.executors = 4;
  Server server(kp, opt);

  constexpr int kClients = 4;
  constexpr int kFrames = 100;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    auto [client_end, server_end] = local_pair();
    server.adopt(std::move(server_end));
    clients.push_back(std::make_unique<Client>(std::move(client_end)));
  }

  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client& client = *clients[static_cast<std::size_t>(c)];
      for (int f = 0; f < kFrames; ++f) {
        const index_t p = (c * kFrames + f) % kp.num_vertices();
        const Response resp = client.call(
            {Probe::vertex(p), Probe::stats()});
        ASSERT_EQ(resp.status, Status::ok);
        ASSERT_EQ(resp.results.size(), 2u);
        EXPECT_EQ(decode_vertex_record(resp.results[0].words).p, p);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(answered.load(), kClients * kFrames);

  server.stop();
  EXPECT_EQ(server.in_flight(), 0u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.frames, static_cast<std::uint64_t>(kClients * kFrames));
  EXPECT_EQ(stats.responses, stats.frames);
  EXPECT_EQ(stats.probes, 2u * static_cast<std::uint64_t>(kClients) *
                              static_cast<std::uint64_t>(kFrames));
}

TEST(ServeConcurrency, ChaosDisconnectsNeverDisturbTheSoak) {
  const auto kp = make_product();
  ServerOptions opt;
  opt.executors = 3;
  Server server(kp, opt);

  constexpr int kClients = 3;
  constexpr int kFrames = 60;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    auto [client_end, server_end] = local_pair();
    server.adopt(std::move(server_end));
    clients.push_back(std::make_unique<Client>(std::move(client_end)));
  }

  // The chaos thread hammers the server with connections that die at the
  // worst moments: mid-header, mid-payload, right after a valid frame.
  std::atomic<bool> done{false};
  std::thread chaos([&] {
    const auto frame = seal_frame(encode_request({1, {Probe::stats()}}));
    std::uint64_t k = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto [chaos_end, server_end] = local_pair();
      server.adopt(std::move(server_end));
      const std::size_t cut = 1 + (k++ % (frame.size() - 1));
      chaos_end->write_all(frame.data(), cut);
      chaos_end->shutdown(); // vanish mid-frame
      std::this_thread::yield();
    }
  });

  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client& client = *clients[static_cast<std::size_t>(c)];
      for (int f = 0; f < kFrames; ++f) {
        const index_t p = (c + f) % kp.num_vertices();
        const Response resp = client.call({Probe::vertex(p)});
        ASSERT_EQ(resp.status, Status::ok);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  chaos.join();

  EXPECT_EQ(answered.load(), kClients * kFrames);
  server.stop();
  EXPECT_EQ(server.in_flight(), 0u);
}

TEST(ServeConcurrency, StopUnderLoadDrainsToZeroInFlight) {
  const auto kp = make_product();
  ServerOptions opt;
  opt.executors = 2;
  Server server(kp, opt);

  constexpr int kClients = 4;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    auto [client_end, server_end] = local_pair();
    server.adopt(std::move(server_end));
    clients.push_back(std::make_unique<Client>(
        std::move(client_end),
        RetryPolicy{1, std::chrono::milliseconds(2000)}));
  }

  // Clients fire continuously until the drain cuts them off; every answer
  // they do get must be a well-formed ok or shutting_down frame.
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> shed_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client& client = *clients[static_cast<std::size_t>(c)];
      try {
        for (int f = 0;; ++f) {
          const Response resp = client.call(
              {Probe::vertex((c + f) % kp.num_vertices())});
          if (resp.status == Status::shutting_down) {
            shed_count.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          ASSERT_EQ(resp.status, Status::ok);
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const error&) {
        // Connection torn down by the drain — the expected other ending.
      }
    });
  }

  // Let the soak build up real in-flight work, then pull the plug.
  while (ok_count.load(std::memory_order_relaxed) < 50) {
    std::this_thread::yield();
  }
  server.stop();
  EXPECT_EQ(server.in_flight(), 0u);
  for (auto& t : threads) t.join();

  // Drain accounting: every admitted frame was answered, shed frames were
  // refused with a typed status, and nothing was silently dropped.
  const auto stats = server.stats();
  EXPECT_EQ(stats.responses + stats.shed_shutdown + stats.overloaded,
            stats.frames);
  EXPECT_GE(ok_count.load(), 50u);
}

TEST(ServeConcurrency, StopIsIdempotentAndDoubleStopSafe) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  Client client(std::move(client_end));
  EXPECT_EQ(client.stats().num_vertices, kp.num_vertices());
  server.stop();
  server.stop(); // second stop is a no-op, not a crash
  EXPECT_EQ(server.in_flight(), 0u);
}

TEST(ServeConcurrency, AdoptDuringDrainIsSheddedWithTypedStatus) {
  const auto kp = make_product();
  Server server(kp);
  server.stop();
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  // The rejected connection got exactly one shutting_down frame, then EOF.
  const auto frame = read_frame(*client_end,
                                std::chrono::milliseconds(5000));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(decode_response(*frame).status, Status::shutting_down);
  EXPECT_FALSE(
      read_frame(*client_end, std::chrono::milliseconds(5000)).has_value());
}

TEST(ServeConcurrency, ConnectionSlotLimitAnswersOverloaded) {
  const auto kp = make_product();
  ServerOptions opt;
  opt.max_connections = 2;
  Server server(kp, opt);

  std::vector<std::unique_ptr<Transport>> held;
  for (int c = 0; c < 2; ++c) {
    auto [client_end, server_end] = local_pair();
    server.adopt(std::move(server_end));
    held.push_back(std::move(client_end));
  }
  auto [extra_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  const auto frame =
      read_frame(*extra_end, std::chrono::milliseconds(5000));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(decode_response(*frame).status, Status::overloaded);
  EXPECT_EQ(server.stats().connections_rejected, 1u);

  // Freeing a slot (client disconnect) admits the next connection.
  held[0]->shutdown();
  bool admitted = false;
  for (int tries = 0; tries < 200 && !admitted; ++tries) {
    auto [retry_end, retry_server_end] = local_pair();
    server.adopt(std::move(retry_server_end));
    Client probe(std::move(retry_end),
                 RetryPolicy{1, std::chrono::milliseconds(2000)});
    try {
      (void)probe.stats();
      admitted = true;
    } catch (const error&) {
      std::this_thread::yield(); // slot not reaped yet — try again
    }
  }
  EXPECT_TRUE(admitted);
  server.stop();
}

TEST(ServeConcurrency, ParallelBatchFanOutMatchesSerial) {
  // A batch past parallel_batch_threshold runs through the parallel
  // runtime; results must land in probe order regardless.
  const auto kp = make_product();
  ServerOptions opt;
  opt.parallel_batch_threshold = 64;
  Server server(kp, opt);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  Client client(std::move(client_end));

  std::vector<Probe> probes;
  constexpr int kBatch = 300; // > threshold → dynamic dispatch
  for (int i = 0; i < kBatch; ++i) {
    probes.push_back(Probe::vertex(i % kp.num_vertices()));
  }
  const Response resp = client.call(std::move(probes));
  ASSERT_EQ(resp.status, Status::ok);
  ASSERT_EQ(resp.results.size(), static_cast<std::size_t>(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    const auto& r = resp.results[static_cast<std::size_t>(i)];
    ASSERT_EQ(r.status, Status::ok) << "probe " << i;
    EXPECT_EQ(decode_vertex_record(r.words).p, i % kp.num_vertices());
  }
  server.stop();
}

} // namespace
} // namespace kronlab::serve
