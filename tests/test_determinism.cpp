// Scheduling determinism: dynamic chunk assignment varies run to run, but
// results must not.  Every counter and reduction is required to produce
// bit-identical output across pool sizes 1, 2, and hardware concurrency,
// and across repeated runs on the same pool.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite_clustering.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/parallel/parallel_for.hpp"
#include "kronlab/parallel/thread_pool.hpp"

namespace kronlab {
namespace {

std::vector<std::size_t> pool_sizes() {
  std::vector<std::size_t> sizes{1, 2};
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 2) sizes.push_back(hw);
  return sizes;
}

// Heavy-tailed test graph: hubs make chunk-to-worker assignment matter.
graph::Adjacency skewed_graph() {
  Rng rng(17);
  return gen::preferential_bipartite(60, 80, 600, rng);
}

TEST(Determinism, VertexButterfliesIdenticalAcrossPoolSizes) {
  const auto a = skewed_graph();
  const auto reference = graph::vertex_butterflies(a);
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    ScopedPoolOverride use_pool(pool);
    for (int rep = 0; rep < 3; ++rep) {
      ASSERT_EQ(graph::vertex_butterflies(a), reference)
          << "pool size " << threads << " rep " << rep;
    }
  }
}

TEST(Determinism, EdgeButterfliesIdenticalAcrossPoolSizes) {
  const auto a = skewed_graph();
  const auto reference = graph::edge_butterflies(a);
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    ScopedPoolOverride use_pool(pool);
    ASSERT_EQ(graph::edge_butterflies(a), reference)
        << "pool size " << threads;
  }
}

TEST(Determinism, GlobalButterfliesIdenticalAcrossPoolSizes) {
  const auto a = skewed_graph();
  const auto reference = graph::global_butterflies(a);
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    ScopedPoolOverride use_pool(pool);
    for (int rep = 0; rep < 3; ++rep) {
      ASSERT_EQ(graph::global_butterflies(a), reference)
          << "pool size " << threads << " rep " << rep;
    }
  }
}

TEST(Determinism, FormulaPipelineIdenticalAcrossPoolSizes) {
  // Exercises mxm / mxv / formula kernels through the dynamic dispatcher.
  const auto a = skewed_graph();
  const auto ref_vertex = kron::vertex_squares_formula(a);
  const auto ref_edge = kron::edge_squares_formula(a);
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    ScopedPoolOverride use_pool(pool);
    ASSERT_EQ(kron::vertex_squares_formula(a), ref_vertex)
        << "pool size " << threads;
    ASSERT_EQ(kron::edge_squares_formula(a), ref_edge)
        << "pool size " << threads;
  }
}

TEST(Determinism, ClusteringReductionIdenticalAcrossPoolSizes) {
  const auto a = skewed_graph();
  const auto reference = graph::three_paths(a);
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    ScopedPoolOverride use_pool(pool);
    ASSERT_EQ(graph::three_paths(a), reference) << "pool size " << threads;
  }
}

TEST(Determinism, DynamicReduceIdenticalAcrossGrainsAndPools) {
  const index_t n = 50000;
  const auto body = [](index_t i) -> count_t { return (i * 2654435761u) >> 7; };
  const auto combine = [](count_t x, count_t y) { return x + y; };
  count_t reference = 0;
  for (index_t i = 0; i < n; ++i) reference = combine(reference, body(i));
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    for (const index_t grain : {index_t{0}, index_t{1}, index_t{97}}) {
      ASSERT_EQ(parallel_reduce_dynamic<count_t>(0, n, 0, body, combine,
                                                 pool, grain),
                reference)
          << "pool size " << threads << " grain " << grain;
    }
  }
}

} // namespace
} // namespace kronlab
