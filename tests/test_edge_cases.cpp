// Degenerate and minimal inputs across the whole public API: empty
// graphs, single vertices, single edges, edgeless factors.  Everything
// should either work with the mathematically sensible answer or reject
// with a typed error — never crash or return garbage.

#include <gtest/gtest.h>

#include <sstream>

#include "kronlab/kronlab.hpp"

namespace kronlab {
namespace {

graph::Adjacency empty_graph(index_t n) {
  return graph::from_undirected_edges(n, {});
}

TEST(EdgeCases, EmptyGraphStatistics) {
  const auto e = empty_graph(5);
  EXPECT_EQ(graph::num_edges(e), 0);
  EXPECT_EQ(graph::max_degree(e), 0);
  EXPECT_EQ(graph::global_butterflies(e), 0);
  EXPECT_EQ(graph::global_triangles(e), 0);
  EXPECT_EQ(grb::reduce(graph::degrees(e)), 0);
  EXPECT_TRUE(graph::is_bipartite(e));
  EXPECT_FALSE(graph::is_connected(e)); // 5 isolated components
  EXPECT_EQ(graph::connected_components(e).count, 5);
}

TEST(EdgeCases, ZeroVertexGraph) {
  const auto z = empty_graph(0);
  EXPECT_EQ(graph::num_vertices(z), 0);
  EXPECT_TRUE(graph::is_connected(z));
  EXPECT_EQ(graph::global_butterflies(z), 0);
  EXPECT_EQ(graph::degree_histogram(z).size(), 0u);
}

TEST(EdgeCases, SingleEdgeFactorProducts) {
  // P2 ⊗ P2 under raw: two disjoint edges.
  const auto p2 = gen::path_graph(2);
  const auto kp = kron::BipartiteKronecker::raw(p2, p2);
  EXPECT_EQ(kp.num_vertices(), 4);
  EXPECT_EQ(kp.num_edges(), 2);
  EXPECT_EQ(kron::global_squares(kp), 0);
  const auto c = kp.materialize();
  EXPECT_EQ(graph::connected_components(c).count, 2);
}

TEST(EdgeCases, EdgelessFactorGivesEdgelessProduct) {
  const auto kp =
      kron::BipartiteKronecker::raw(empty_graph(3), gen::path_graph(4));
  EXPECT_EQ(kp.num_edges(), 0);
  EXPECT_EQ(kron::global_squares(kp), 0);
  EXPECT_EQ(kron::EdgeStream(kp).count_entries(), 0);
  const auto s = kron::vertex_squares(kp);
  EXPECT_EQ(s.reduce(), 0);
  // Oracle still answers vertex queries (degree 0 everywhere).
  const kron::GroundTruthOracle oracle(kp);
  for (index_t p = 0; p < kp.num_vertices(); ++p) {
    EXPECT_EQ(oracle.vertex(p).degree, 0);
    EXPECT_EQ(oracle.vertex(p).squares, 0);
  }
  Rng rng(1);
  EXPECT_THROW((void)oracle.sample_edge(rng), invalid_argument);
}

TEST(EdgeCases, SingleVertexFactor) {
  // 1-vertex loop-free factor annihilates all edges.
  const auto one = empty_graph(1);
  const auto kp = kron::BipartiteKronecker::raw(gen::complete_graph(3), one);
  EXPECT_EQ(kp.num_vertices(), 3);
  EXPECT_EQ(kp.num_edges(), 0);
  // With a self loop it is the identity of ⊗.
  const auto looped = grb::add_identity(one);
  const auto kp2 =
      kron::BipartiteKronecker::raw(looped, gen::cycle_graph(4));
  EXPECT_EQ(kp2.materialize(), gen::cycle_graph(4));
  EXPECT_EQ(kron::global_squares(kp2), 1);
}

TEST(EdgeCases, StreamOnMinimalProduct) {
  const auto kp = kron::BipartiteKronecker::raw(gen::path_graph(2),
                                                gen::path_graph(2));
  std::ostringstream out;
  kron::EdgeStream(kp).write_edge_list(out);
  EXPECT_FALSE(out.str().empty());
  kron::GroundTruthStream gts(kp);
  gts.for_each_entry([](index_t, index_t, count_t sq) {
    EXPECT_EQ(sq, 0); // disjoint edges carry no squares
  });
}

TEST(EdgeCases, WingAndTipOnEmpty) {
  const auto e = empty_graph(4);
  const auto w = graph::wing_decomposition(e);
  EXPECT_EQ(w.max_wing, 0);
  EXPECT_EQ(w.wing.nnz(), 0);
  const auto part = graph::two_color(e).value();
  const auto t = graph::tip_decomposition(e, part, 0);
  EXPECT_EQ(t.max_tip, 0);
}

TEST(EdgeCases, CommunityOnWholeGraph) {
  // S = V: m_out must be 0 and rho_out degenerate (0 by convention).
  const auto a = gen::complete_bipartite(2, 3);
  const auto part = graph::two_color(a).value();
  graph::BipartiteSubset s;
  s.r = {0, 1};
  s.t = {2, 3, 4};
  const auto st = graph::community_stats(a, part, s);
  EXPECT_EQ(st.m_in, 6);
  EXPECT_EQ(st.m_out, 0);
  EXPECT_DOUBLE_EQ(st.rho_out, 0.0);
}

TEST(EdgeCases, FactoredVectorWithNoTerms) {
  kron::FactoredVector fv(3, 4);
  EXPECT_EQ(fv.size(), 12);
  EXPECT_EQ(fv.at(7), 0);
  EXPECT_EQ(fv.reduce(), 0);
  EXPECT_EQ(grb::reduce(fv.materialize()), 0);
}

TEST(EdgeCases, ChainOfOneFactor) {
  const auto ck = kron::ChainKronecker::of({gen::cycle_graph(4)});
  EXPECT_EQ(ck.num_vertices(), 4);
  EXPECT_EQ(ck.global_squares(), 1);
  EXPECT_EQ(ck.materialize(), gen::cycle_graph(4));
}

TEST(EdgeCases, DistancesOnEdgelessProduct) {
  const auto kp =
      kron::BipartiteKronecker::raw(empty_graph(2), gen::path_graph(2));
  const auto pd_m = kron::ParityDistances::compute(kp.left());
  const auto pd_b = kron::ParityDistances::compute(kp.right());
  // Every vertex reaches only itself.
  for (index_t p = 0; p < kp.num_vertices(); ++p) {
    for (index_t q = 0; q < kp.num_vertices(); ++q) {
      const auto d = kron::product_distance(kp, pd_m, pd_b, p, q);
      if (p == q) {
        EXPECT_EQ(d, 0);
      } else {
        EXPECT_EQ(d, kron::dist_unreachable);
      }
    }
  }
}

TEST(EdgeCases, ApproxCountersOnEmpty) {
  Rng rng(1);
  const auto e = empty_graph(6);
  EXPECT_DOUBLE_EQ(graph::approx_butterflies_vertex(e, 10, rng).estimate,
                   0.0);
  EXPECT_DOUBLE_EQ(graph::approx_butterflies_edge(e, 10, rng).estimate,
                   0.0);
  EXPECT_DOUBLE_EQ(graph::approx_butterflies_wedge(e, 10, rng).estimate,
                   0.0);
}

TEST(EdgeCases, PartitionOfEdgelessProduct) {
  const auto kp =
      kron::BipartiteKronecker::raw(empty_graph(3), gen::path_graph(3));
  const kron::PartitionedStream ps(kp, 2);
  EXPECT_EQ(ps.entries_of(0) + ps.entries_of(1), 0);
}

} // namespace
} // namespace kronlab
