// Battery for the live-telemetry subsystem (obs/stats, obs/log,
// obs/watchdog).  Four angles:
//
//  1. Golden quantiles: histogram percentiles against an exact sorted
//     reference over seeded samples — the log-bucket scheme must stay
//     within its documented ~3% relative error, and max must be exact.
//  2. Registry soak: many threads hammer a shared counter / gauge /
//     histogram while another thread snapshots live; final totals are
//     exact at quiescence.  Runs under TSan in CI.
//  3. Logger: logfmt shape, level filtering, value quoting, sink
//     capture — the contract the watchdog assertions below depend on.
//  4. Watchdog: a FaultyTransport delay wedges a server request inside
//     its StallGuard; the watchdog must flag it, and must stay silent
//     when requests complete inside the deadline.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kronlab/common/random.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/obs/log.hpp"
#include "kronlab/obs/stats.hpp"
#include "kronlab/obs/watchdog.hpp"
#include "kronlab/serve/client.hpp"
#include "kronlab/serve/server.hpp"
#include "kronlab/serve/transport.hpp"

namespace kronlab::obs {
namespace {

// ---------------------------------------------------------------------
// Histogram bucket scheme
// ---------------------------------------------------------------------

TEST(ObsHistogram, BucketSchemeIsMonotoneAndSelfConsistent) {
  // Values below 2^(kSubBits+1) are exact: the bucket midpoint is the
  // value itself.
  for (std::uint64_t v = 0; v < (2u << Histogram::kSubBits); ++v) {
    EXPECT_EQ(Histogram::bucket_mid(Histogram::bucket_of(v)), v) << v;
  }
  // bucket_of is monotone non-decreasing and every midpoint maps back
  // to its own bucket (round-trip stability).
  std::size_t prev = 0;
  for (int shift = 0; shift < 63; ++shift) {
    const std::uint64_t v = 1ull << shift;
    const std::size_t b = Histogram::bucket_of(v);
    EXPECT_GE(b, prev);
    prev = b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_mid(b)), b)
        << "midpoint of bucket " << b << " escapes its bucket";
  }
  EXPECT_LT(Histogram::bucket_of(~0ull), Histogram::kBuckets);
}

TEST(ObsHistogram, GoldenQuantilesMatchSortedReference) {
  set_stats_enabled(true);
  stats_reset();
  Histogram& h = histogram("test/golden_quantiles");

  // Log-normal-ish latencies: exponent spread over ~6 decades, the
  // shape real service latencies have.  Seeded, so the expected values
  // are stable run to run.
  Rng rng(0x60D5EED);
  std::vector<std::uint64_t> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double mag = 3.0 + 6.0 * rng.next_double(); // 10^3 .. 10^9 ns
    std::uint64_t v = 1;
    for (double m = 0; m + 1.0 <= mag; m += 1.0) v *= 10;
    v += rng.next_below(9 * v + 1); // fill the decade uniformly
    samples.push_back(v);
    h.record(v);
  }
  auto sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  const auto snap = stats_snapshot().histograms.at("test/golden_quantiles");
  ASSERT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.max, sorted.back());
  // q=1 resolves through the exact-max path.
  EXPECT_EQ(snap.quantile(1.0), sorted.back());

  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const auto rank =
        static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    const double exact = static_cast<double>(sorted[rank]);
    const double got = static_cast<double>(snap.quantile(q));
    // One sub-bucket of slack on either side: 2^-kSubBits relative,
    // plus a whisker for the rank-vs-midpoint convention difference.
    EXPECT_NEAR(got, exact, exact * 0.05)
        << "q=" << q << " exact=" << exact << " got=" << got;
  }

  // Mean is exact (tracked as a true sum, not reconstructed).
  std::uint64_t sum = 0;
  for (auto v : samples) sum += v;
  EXPECT_DOUBLE_EQ(snap.mean(),
                   static_cast<double>(sum) / static_cast<double>(samples.size()));
}

TEST(ObsHistogram, EmptyHistogramQuantilesAreZero) {
  set_stats_enabled(true);
  stats_reset();
  (void)histogram("test/empty");
  const auto snap = stats_snapshot().histograms.at("test/empty");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.5), 0u);
  EXPECT_EQ(snap.quantile(1.0), 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

// ---------------------------------------------------------------------
// Registry basics and the enable gate
// ---------------------------------------------------------------------

TEST(ObsRegistry, CounterGaugeBasics) {
  set_stats_enabled(true);
  stats_reset();
  Counter& c = counter("test/basics_counter");
  Gauge& g = gauge("test/basics_gauge");
  c.add();
  c.add(41);
  g.set(7);
  g.add(-3);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(g.value(), 4);

  const auto snap = stats_snapshot();
  EXPECT_EQ(snap.counters.at("test/basics_counter"), 42u);
  EXPECT_EQ(snap.gauges.at("test/basics_gauge"), 4);

  // Same name, same object — cached references stay valid.
  EXPECT_EQ(&counter("test/basics_counter"), &c);
  EXPECT_EQ(&gauge("test/basics_gauge"), &g);
}

TEST(ObsRegistry, DisabledRegistryIsInert) {
  set_stats_enabled(true);
  stats_reset();
  Counter& c = counter("test/gated_counter");
  Gauge& g = gauge("test/gated_gauge");
  Histogram& h = histogram("test/gated_hist");

  set_stats_enabled(false);
  EXPECT_FALSE(stats_enabled());
  c.add(100);
  g.set(100);
  h.record(100);
  {
    // A LatencyScope opened while disabled records nothing, even if
    // stats are re-enabled before it closes.
    LatencyScope scope(h);
    set_stats_enabled(true);
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(stats_snapshot().histograms.at("test/gated_hist").count, 0u);

  c.add(1); // re-enabled: records again
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsNames) {
  set_stats_enabled(true);
  Counter& c = counter("test/reset_counter");
  Histogram& h = histogram("test/reset_hist");
  c.add(5);
  h.record(123);
  stats_reset();
  EXPECT_EQ(c.value(), 0u);
  const auto snap = stats_snapshot();
  EXPECT_EQ(snap.counters.at("test/reset_counter"), 0u);
  EXPECT_EQ(snap.histograms.at("test/reset_hist").count, 0u);
}

// ---------------------------------------------------------------------
// Concurrent soak (runs under TSan in CI)
// ---------------------------------------------------------------------

TEST(ObsRegistry, ConcurrentRecordersWithLiveSnapshots) {
  set_stats_enabled(true);
  stats_reset();
  Counter& c = counter("test/soak_counter");
  Gauge& g = gauge("test/soak_gauge");
  Histogram& h = histogram("test/soak_hist");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};

  // A reader taking live snapshots the whole time: the point is that
  // TSan sees snapshot() racing record() and stays quiet, and that
  // every intermediate view is internally sane (count never exceeds
  // the true total).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = stats_snapshot();
      const auto it = snap.histograms.find("test/soak_hist");
      if (it != snap.histograms.end()) {
        EXPECT_LE(it->second.count,
                  static_cast<std::uint64_t>(kThreads) * kPerThread);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(0x50AB1E + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(i % 2 == 0 ? 1 : -1);
        h.record(rng.next_below(1u << 20));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiescent: totals are exact.
  const auto snap = stats_snapshot();
  const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(snap.counters.at("test/soak_counter"), total);
  EXPECT_EQ(snap.gauges.at("test/soak_gauge"), 0);
  const auto& hs = snap.histograms.at("test/soak_hist");
  EXPECT_EQ(hs.count, total);
  std::uint64_t bucket_total = 0;
  for (auto b : hs.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, total);
}

// ---------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------

TEST(ObsRender, JsonAndPrometheusCarryTheMetrics) {
  set_stats_enabled(true);
  stats_reset();
  counter("test/render_counter").add(3);
  gauge("test/render_gauge").set(-2);
  histogram("test/render_hist").record(1000000); // 1ms

  const auto snap = stats_snapshot();
  const std::string json = stats_json(snap);
  EXPECT_NE(json.find("\"test/render_counter\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test/render_gauge\":-2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test/render_hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos) << json;

  const std::string prom = stats_prometheus(snap);
  EXPECT_NE(prom.find("kronlab_test_render_counter 3"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("kronlab_test_render_gauge -2"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("kronlab_test_render_hist_seconds_count 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("kronlab_test_render_hist_seconds{quantile=\"0.99\"}"),
      std::string::npos)
      << prom;
}

// ---------------------------------------------------------------------
// Structured logger
// ---------------------------------------------------------------------

/// Captures emitted lines; restores the stderr sink on destruction.
class LogCapture {
public:
  LogCapture() {
    set_log_sink([this](std::string_view line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.emplace_back(line);
    });
  }
  ~LogCapture() { set_log_sink({}); }

  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }
  std::size_t count_containing(std::string_view needle) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& l : lines_)
      if (l.find(needle) != std::string::npos) ++n;
    return n;
  }

private:
  std::mutex mu_;
  std::vector<std::string> lines_;
};

class ObsLogTest : public ::testing::Test {
protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }

private:
  LogLevel saved_;
};

TEST_F(ObsLogTest, LogfmtShapeAndFieldQuoting) {
  set_log_level(LogLevel::debug);
  LogCapture cap;
  log(LogLevel::info, "test", "shape")
      .field("plain", "bare")
      .field("spaced", "two words")
      .field("count", std::int64_t{-5})
      .field("ratio", 0.25)
      .field("on", true)
      .field("empty", "");
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& l = lines[0];
  EXPECT_EQ(l.rfind("ts=", 0), 0u) << l;
  EXPECT_NE(l.find(" level=info"), std::string::npos) << l;
  EXPECT_NE(l.find(" subsys=test"), std::string::npos) << l;
  EXPECT_NE(l.find(" event=shape"), std::string::npos) << l;
  EXPECT_NE(l.find(" plain=bare"), std::string::npos) << l;
  EXPECT_NE(l.find(" spaced=\"two words\""), std::string::npos) << l;
  EXPECT_NE(l.find(" count=-5"), std::string::npos) << l;
  EXPECT_NE(l.find(" ratio=0.250"), std::string::npos) << l;
  EXPECT_NE(l.find(" on=true"), std::string::npos) << l;
  EXPECT_NE(l.find(" empty=\"\""), std::string::npos) << l;
  EXPECT_EQ(l.find('\n'), std::string::npos) << "line must be newline-free";
}

TEST_F(ObsLogTest, LevelsFilterAndOffSilencesEverything) {
  LogCapture cap;
  set_log_level(LogLevel::warn);
  log(LogLevel::debug, "test", "dropped_debug");
  log(LogLevel::info, "test", "dropped_info");
  log(LogLevel::warn, "test", "kept_warn");
  log(LogLevel::error, "test", "kept_error");
  set_log_level(LogLevel::off);
  log(LogLevel::error, "test", "dropped_when_off");
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("kept_warn"), std::string::npos);
  EXPECT_NE(lines[1].find("kept_error"), std::string::npos);
}

TEST_F(ObsLogTest, ParseLogLevelRoundTrips) {
  for (LogLevel lvl : {LogLevel::debug, LogLevel::info, LogLevel::warn,
                       LogLevel::error, LogLevel::off}) {
    LogLevel out = LogLevel::debug;
    EXPECT_TRUE(parse_log_level(log_level_name(lvl), out));
    EXPECT_EQ(out, lvl);
  }
  LogLevel out = LogLevel::warn;
  EXPECT_FALSE(parse_log_level("loud", out));
  EXPECT_EQ(out, LogLevel::warn) << "unknown input must leave `out` alone";
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

class ObsWatchdogTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_stats_enabled(true);
    saved_level_ = log_level();
    set_log_level(LogLevel::warn);
  }
  void TearDown() override {
    watchdog_stop();
    set_log_level(saved_level_);
  }

private:
  LogLevel saved_level_;
};

TEST_F(ObsWatchdogTest, GuardsAppearInTheActiveTableAndClearOnExit) {
  {
    StallGuard guard("test/guarded_op");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto ops = active_ops_older_than(0);
    bool found = false;
    for (const auto& op : ops) {
      if (std::string_view(op.what) == "test/guarded_op") {
        found = true;
        EXPECT_GE(op.elapsed_ns, 1000000u); // slept >= 1ms of the 5
      }
    }
    EXPECT_TRUE(found);
  }
  for (const auto& op : active_ops_older_than(0)) {
    EXPECT_NE(std::string_view(op.what), "test/guarded_op")
        << "guard must clear its slot on destruction";
  }
}

TEST_F(ObsWatchdogTest, FlagsARequestWedgedPastTheDeadline) {
  using namespace serve;
  const auto kp = kron::BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(1), gen::complete_bipartite(3, 4));
  Server server(kp);
  auto [client_end, server_end] = local_pair();

  // Every server-side response write stalls ~250ms, wedging the request
  // inside Server::process()'s StallGuard("serve/request").
  TransportFaultPlan plan;
  plan.seed = 0x57A11;
  plan.delay = 1.0;
  plan.delay_for = std::chrono::milliseconds(250);
  server.adopt(
      std::make_unique<FaultyTransport>(std::move(server_end), plan));

  LogCapture cap;
  const std::uint64_t stalls_before = counter("watchdog/stalls").value();
  watchdog_start({/*poll=*/std::chrono::milliseconds(10),
                  /*deadline=*/std::chrono::milliseconds(50)});
  ASSERT_TRUE(watchdog_running());

  Client client(std::move(client_end),
                RetryPolicy{3, std::chrono::milliseconds(2000)});
  const auto s = client.stats();
  EXPECT_EQ(s.num_vertices, kp.num_vertices());

  watchdog_stop();
  EXPECT_FALSE(watchdog_running());
  server.stop();

  // The wedged request crossed the 50ms deadline long before the 250ms
  // delay elapsed, so at least one stall warning names it.
  EXPECT_GE(cap.count_containing("event=stall"), 1u);
  EXPECT_GE(cap.count_containing("op=serve/request"), 1u);
  EXPECT_GT(counter("watchdog/stalls").value(), stalls_before);
}

TEST_F(ObsWatchdogTest, StaysSilentWhenRequestsFinishInTime) {
  using namespace serve;
  const auto kp = kron::BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(1), gen::complete_bipartite(3, 4));
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));

  LogCapture cap;
  const std::uint64_t stalls_before = counter("watchdog/stalls").value();
  watchdog_start({/*poll=*/std::chrono::milliseconds(10),
                  /*deadline=*/std::chrono::milliseconds(2000)});

  Client client(std::move(client_end),
                RetryPolicy{3, std::chrono::milliseconds(2000)});
  for (int i = 0; i < 16; ++i) {
    (void)client.vertex(i % kp.num_vertices());
  }

  watchdog_stop();
  server.stop();

  EXPECT_EQ(cap.count_containing("event=stall"), 0u);
  EXPECT_EQ(counter("watchdog/stalls").value(), stalls_before);
}

} // namespace
} // namespace kronlab::obs
