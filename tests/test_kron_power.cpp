// Tests for k-fold Kronecker chains and the N-ary factored statistics.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/kron.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/power.hpp"

namespace kronlab::kron {
namespace {

TEST(KFactoredVector, PointQueryAndReduce) {
  KFactoredVector v({2, 3}, /*divisor=*/1);
  v.add_term(2, {grb::Vector<count_t>(std::vector<count_t>{1, 2}),
                 grb::Vector<count_t>(std::vector<count_t>{3, 4, 5})});
  // value(p) = 2·a[i]·b[k] for p = 3i + k.
  EXPECT_EQ(v.at(0), 6);
  EXPECT_EQ(v.at(2), 10);
  EXPECT_EQ(v.at(3), 12);
  EXPECT_EQ(v.at(5), 20);
  EXPECT_EQ(v.reduce(), 2 * 3 * 12);
  EXPECT_EQ(v.materialize().data(),
            (std::vector<count_t>{6, 8, 10, 12, 16, 20}));
}

TEST(KFactoredVector, ThreeFactorMixedRadix) {
  KFactoredVector v({2, 2, 2});
  v.add_term(1, {grb::Vector<count_t>(std::vector<count_t>{1, 10}),
                 grb::Vector<count_t>(std::vector<count_t>{1, 2}),
                 grb::Vector<count_t>(std::vector<count_t>{1, 3})});
  // Index p = 4i + 2j + k.
  EXPECT_EQ(v.at(0), 1);
  EXPECT_EQ(v.at(1), 3);
  EXPECT_EQ(v.at(2), 2);
  EXPECT_EQ(v.at(7), 60);
  const auto dense = v.materialize();
  for (index_t p = 0; p < 8; ++p) EXPECT_EQ(v.at(p), dense[p]);
}

TEST(KFactoredVector, ValidatesShapes) {
  KFactoredVector v({2, 2});
  EXPECT_THROW(
      v.add_term(1, {grb::Vector<count_t>(3), grb::Vector<count_t>(2)}),
      invalid_argument);
  EXPECT_THROW(v.add_term(1, {grb::Vector<count_t>(2)}), invalid_argument);
}

TEST(ChainKronecker, RequiresALoopFreeFactor) {
  const auto looped = grb::add_identity(gen::path_graph(3));
  EXPECT_THROW(ChainKronecker::of({looped, looped}), domain_error);
  EXPECT_NO_THROW(ChainKronecker::of({looped, gen::path_graph(3)}));
}

TEST(ChainKronecker, CountsMultiply) {
  const auto ck = ChainKronecker::of(
      {gen::complete_graph(3), gen::path_graph(3), gen::path_graph(2)});
  EXPECT_EQ(ck.num_vertices(), 3 * 3 * 2);
  EXPECT_EQ(ck.num_edges(), (6 * 4 * 2) / 2);
  const auto c = ck.materialize();
  EXPECT_EQ(graph::num_edges(c), ck.num_edges());
}

TEST(ChainKronecker, PairCaseMatchesGrbKron) {
  const auto a = gen::complete_graph(3);
  const auto b = gen::path_graph(4);
  EXPECT_EQ(ChainKronecker::of({a, b}).materialize(), grb::kron(a, b));
}

TEST(ChainKronecker, BipartitePrediction) {
  EXPECT_TRUE(ChainKronecker::of({gen::complete_graph(3),
                                  gen::path_graph(3)})
                  .product_bipartite());
  EXPECT_FALSE(ChainKronecker::of({gen::complete_graph(3),
                                   gen::triangle_with_tail(1)})
                   .product_bipartite());
  // A looped bipartite factor doesn't confer bipartiteness...
  const auto looped = grb::add_identity(gen::path_graph(3));
  EXPECT_TRUE(ChainKronecker::of({looped, gen::path_graph(3)})
                  .product_bipartite());
}

class ChainGroundTruthTest : public ::testing::TestWithParam<int> {
protected:
  ChainKronecker make() const {
    switch (GetParam()) {
      case 0:
        return ChainKronecker::power(gen::complete_graph(3), 3);
      case 1:
        return ChainKronecker::of({gen::complete_graph(3),
                                   gen::path_graph(3),
                                   gen::path_graph(2)});
      case 2: {
        // The paper's two-factor case embeds as a chain of length 2.
        const auto looped = grb::add_identity(gen::path_graph(3));
        return ChainKronecker::of({looped, gen::cycle_graph(4)});
      }
      case 3:
        return ChainKronecker::of(
            {grb::add_identity(gen::star_graph(2)), gen::path_graph(2),
             gen::complete_bipartite(2, 2)});
      default: {
        Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
        return ChainKronecker::of(
            {gen::random_nonbipartite_connected(4, 6, rng),
             gen::connected_random_bipartite(2, 3, 5, rng),
             gen::connected_random_bipartite(3, 2, 5, rng)});
      }
    }
  }
};

TEST_P(ChainGroundTruthTest, DegreesMatchDirect) {
  const auto ck = make();
  EXPECT_EQ(ck.degrees().materialize(),
            graph::degrees(ck.materialize()));
}

TEST_P(ChainGroundTruthTest, VertexSquaresMatchDirect) {
  const auto ck = make();
  EXPECT_EQ(ck.vertex_squares().materialize(),
            graph::vertex_butterflies(ck.materialize()));
}

TEST_P(ChainGroundTruthTest, GlobalSquaresMatchDirect) {
  const auto ck = make();
  EXPECT_EQ(ck.global_squares(),
            graph::global_butterflies(ck.materialize()));
}

INSTANTIATE_TEST_SUITE_P(Chains, ChainGroundTruthTest,
                         ::testing::Range(0, 7));

TEST(ChainKronecker, PowerValidation) {
  EXPECT_THROW(ChainKronecker::power(gen::path_graph(2), 0),
               invalid_argument);
  const auto p = ChainKronecker::power(gen::path_graph(2), 4);
  EXPECT_EQ(p.num_vertices(), 16);
  EXPECT_TRUE(p.product_bipartite());
}

} // namespace
} // namespace kronlab::kron
