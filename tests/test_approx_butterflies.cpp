// Tests for the sampling-based approximate butterfly counters, scored
// against exact counts — the paper's validation use case in miniature.

#include <gtest/gtest.h>

#include <cmath>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/approx_butterflies.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::graph {
namespace {

using Estimator = ButterflyEstimate (*)(const Adjacency&, index_t, Rng&);

struct Named {
  const char* name;
  Estimator fn;
};

const Named kEstimators[] = {
    {"vertex", approx_butterflies_vertex},
    {"edge", approx_butterflies_edge},
    {"wedge", approx_butterflies_wedge},
};

class EstimatorTest : public ::testing::TestWithParam<int> {
protected:
  const Named& est() const { return kEstimators[GetParam()]; }
};

TEST_P(EstimatorTest, ExactOnVertexTransitiveGraphs) {
  // On edge/vertex-transitive graphs every sample sees the same local
  // count, so even one sample is exact.
  Rng rng(1);
  const auto crown = gen::crown_graph(5);
  const auto exact = static_cast<double>(global_butterflies(crown));
  const auto e = est().fn(crown, 8, rng);
  EXPECT_DOUBLE_EQ(e.estimate, exact) << est().name;
}

TEST_P(EstimatorTest, ZeroOnSquareFreeGraphs) {
  Rng rng(2);
  const auto tree = gen::double_star(4, 4);
  EXPECT_DOUBLE_EQ(est().fn(tree, 50, rng).estimate, 0.0) << est().name;
}

TEST_P(EstimatorTest, ConvergesWithinTolerance) {
  Rng rng(3 + static_cast<std::uint64_t>(GetParam()));
  const auto g = gen::preferential_bipartite(40, 40, 220, rng);
  const auto exact = static_cast<double>(global_butterflies(g));
  ASSERT_GT(exact, 0.0);
  const auto e = est().fn(g, 4000, rng);
  // 4000 samples on an 80-vertex graph: well-mixed; allow 15% relative
  // error (seeds are fixed, so this is deterministic, not flaky).
  EXPECT_NEAR(e.estimate / exact, 1.0, 0.15) << est().name;
}

TEST_P(EstimatorTest, AveragesOfManyRunsAreUnbiased) {
  Rng rng(11 + static_cast<std::uint64_t>(GetParam()));
  const auto g = gen::random_bipartite(20, 20, 110, rng);
  const auto exact = static_cast<double>(global_butterflies(g));
  ASSERT_GT(exact, 0.0);
  double acc = 0.0;
  const int runs = 60;
  for (int r = 0; r < runs; ++r) {
    acc += est().fn(g, 40, rng).estimate;
  }
  EXPECT_NEAR(acc / runs / exact, 1.0, 0.2) << est().name;
}

TEST_P(EstimatorTest, ValidatesInput) {
  Rng rng(5);
  const auto looped = grb::add_identity(gen::path_graph(3));
  EXPECT_THROW(est().fn(looped, 10, rng), domain_error);
  EXPECT_THROW(est().fn(gen::path_graph(3), 0, rng), invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Families, EstimatorTest, ::testing::Range(0, 3));

TEST(Estimators, ReportSampleCounts) {
  Rng rng(6);
  const auto g = gen::complete_bipartite(4, 4);
  EXPECT_EQ(approx_butterflies_vertex(g, 17, rng).samples, 17);
  EXPECT_EQ(approx_butterflies_edge(g, 23, rng).samples, 23);
  EXPECT_EQ(approx_butterflies_wedge(g, 31, rng).samples, 31);
}

TEST(Estimators, DeterministicUnderSeed) {
  const auto g = gen::crown_graph(6);
  Rng r1(42), r2(42);
  EXPECT_DOUBLE_EQ(approx_butterflies_edge(g, 100, r1).estimate,
                   approx_butterflies_edge(g, 100, r2).estimate);
}

} // namespace
} // namespace kronlab::graph
