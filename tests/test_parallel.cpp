// Tests for the thread pool and parallel loop helpers.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/parallel/parallel_for.hpp"
#include "kronlab/parallel/thread_pool.hpp"

namespace kronlab {
namespace {

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool p0(0);
  EXPECT_GE(p0.size(), 1u);
  ThreadPool p4(4);
  EXPECT_EQ(p4.size(), 4u);
}

TEST(ThreadPool, RunInvokesEveryWorkerOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t id) { ++hits[id]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run([](std::size_t id) {
        if (id == 1) throw domain_error("worker failed");
      }),
      domain_error);
  // Pool remains usable after the failure.
  std::atomic<int> ok{0};
  pool.run([&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 3);
}

TEST(ThreadPool, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  int x = 0;
  pool.run([&](std::size_t id) {
    EXPECT_EQ(id, 0u);
    x = 42;
  });
  EXPECT_EQ(x, 42);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const index_t n = 100000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  parallel_for(0, n, [&](index_t i) { ++hits[static_cast<std::size_t>(i)]; },
               pool);
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](index_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  parallel_for(7, 8, [&](index_t i) {
    EXPECT_EQ(i, 7);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForRange, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(9000);
  parallel_for_range(
      0, 9000,
      [&](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
      },
      pool);
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelReduce, MatchesSerialSum) {
  ThreadPool pool(4);
  const index_t n = 50000;
  const auto total = parallel_reduce<long long>(
      0, n, 0LL, [](index_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; }, pool);
  EXPECT_EQ(total, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  const auto v = parallel_reduce<int>(
      3, 3, 99, [](index_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 99);
}

TEST(ExclusiveScan, ComputesOffsetsAndTotal) {
  std::vector<long long> v{3, 0, 5, 2};
  const auto total = exclusive_scan_inplace(v);
  EXPECT_EQ(total, 10);
  EXPECT_EQ(v, (std::vector<long long>{0, 3, 3, 8}));
}

TEST(ThreadPool, ConcurrentExternalCallersSerialize) {
  // Regression: simulated distributed ranks are plain threads that each
  // invoke parallel kernels on the same pool.  Unserialized, two callers
  // overwrite each other's job pointer and completion count — one of them
  // then waits on a completion signal that never fires (deadlock found by
  // running the dist suites under TSan with KRONLAB_THREADS=4).
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  const index_t n = 2000;
  std::vector<std::thread> callers;
  std::vector<long long> results(kCallers * kRounds, -1);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        results[static_cast<std::size_t>(c * kRounds + round)] =
            parallel_reduce<long long>(
                0, n, 0LL,
                [](index_t i) { return static_cast<long long>(i); },
                [](long long a, long long b) { return a + b; }, pool);
      }
    });
  }
  for (auto& t : callers) t.join();
  const long long expect = static_cast<long long>(n) * (n - 1) / 2;
  for (const auto r : results) EXPECT_EQ(r, expect);
}

TEST(GlobalPool, IsSingletonAndUsable) {
  auto& a = global_pool();
  auto& b = global_pool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> n{0};
  a.run([&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), static_cast<int>(a.size()));
}

} // namespace
} // namespace kronlab
