// Crash-tolerance battery for the durable streaming-generation pipeline:
// segment/manifest format round trips, a kill/resume matrix over every
// named filesystem fault point asserting byte-identical final stores,
// fail-injection (io_error, no crash) recoverability, short-write
// robustness, torn-segment fuzzing, and on-the-fly ground-truth
// validation catching corrupted stores and perturbed edge streams.
//
// The CI release job re-runs this suite with KRONLAB_FAULT_RATE=high,
// which scales the fuzz iteration counts; every assertion is
// rate-independent — a resumed run must reproduce the uninterrupted
// store byte for byte no matter where it died.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "kronlab/common/random.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/io/durable.hpp"
#include "kronlab/io/file_ops.hpp"
#include "kronlab/io/stream_gen.hpp"
#include "kronlab/kron/oracle.hpp"
#include "kronlab/kron/partition.hpp"
#include "kronlab/kron/power.hpp"

namespace kronlab::io {
namespace {

/// KRONLAB_FAULT_RATE=high (or a numeric factor) scales the fuzz loops —
/// the CI release job uses it to widen coverage.
double fault_rate_scale() {
  const char* env = std::getenv("KRONLAB_FAULT_RATE");
  if (!env) return 1.0;
  if (std::string(env) == "high") return 5.0;
  const double v = std::strtod(env, nullptr);
  return v > 0 ? v : 1.0;
}

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("kronlab_durable_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// The product under test: heavy-tail non-bipartite ⊗ bipartite, small
/// enough that every fault-matrix run is milliseconds, large enough that
/// every shard seals several segments (so every fault point is reachable
/// in every shard).
kron::BipartiteKronecker test_product() {
  Rng rng(7);
  auto m = gen::random_nonbipartite_connected(9, 16, rng);
  auto b = gen::preferential_bipartite(3, 4, 8, rng);
  return kron::BipartiteKronecker::raw(std::move(m), std::move(b));
}

StreamGenOptions test_options(std::string dir) {
  StreamGenOptions opt;
  opt.dir = std::move(dir);
  opt.shards = 3;
  opt.segment_edges = 64;
  opt.sample_rate = 4; // sample densely — these graphs are tiny
  return opt;
}

/// Every file of a store as name → bytes (the byte-identity oracle).
std::map<std::string, std::string> store_bytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  FileOps& ops = real_file_ops();
  for (const auto& name : ops.list_dir(dir)) {
    out[name] = *ops.read_file(dir + "/" + name);
  }
  return out;
}

/// Reference store: one uninterrupted run of the canonical product.
const std::map<std::string, std::string>& reference_store() {
  static const auto ref = [] {
    const auto kp = test_product();
    const auto dir = fresh_dir("reference");
    generate_durable(real_file_ops(), kp, test_options(dir));
    return store_bytes(dir);
  }();
  return ref;
}

/// All named fault points of the two file classes.
std::vector<std::string> all_fault_points() {
  std::vector<std::string> points;
  for (const char* tag : {"segment", "manifest"}) {
    for (const char* op_phase :
         {"write:before", "write:after", "write:torn", "sync:before",
          "sync:after", "rename:before", "rename:after"}) {
      points.push_back(std::string(tag) + ":" + op_phase);
    }
  }
  return points;
}

// ---------------------------------------------------------------------------
// Format round trips and corruption detection.

TEST(DurableFormat, SegmentRoundTrip) {
  const auto dir = fresh_dir("seg_roundtrip");
  FileOps& ops = real_file_ops();
  SegmentHeader h;
  h.spec_hash = 0xabcdef;
  h.shard = 2;
  h.seg_index = 5;
  h.first_edge = 320;
  h.num_edges = 3;
  const std::vector<std::pair<index_t, index_t>> edges = {
      {1, 2}, {1, 9}, {4, 0}};
  const std::uint64_t payload = write_segment(ops, dir, h, edges);
  const auto seg = read_segment(ops, dir + "/" + segment_name(2, 5));
  EXPECT_EQ(seg.header.spec_hash, h.spec_hash);
  EXPECT_EQ(seg.header.shard, 2);
  EXPECT_EQ(seg.header.seg_index, 5);
  EXPECT_EQ(seg.header.first_edge, 320);
  EXPECT_EQ(seg.edges, edges);
  EXPECT_EQ(seg.payload_hash, payload);
  // No .tmp remains after a successful seal.
  for (const auto& name : ops.list_dir(dir)) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(DurableFormat, SegmentCorruptionIsTyped) {
  const auto dir = fresh_dir("seg_corrupt");
  FileOps& ops = real_file_ops();
  SegmentHeader h;
  h.num_edges = 2;
  (void)write_segment(ops, dir, h, {{1, 2}, {3, 4}});
  const std::string path = dir + "/" + segment_name(0, 0);
  const std::string good = *ops.read_file(path);

  const auto rewrite = [&](const std::string& bytes) {
    auto f = ops.create(path);
    write_all(*f, bytes.data(), bytes.size());
    f->close();
  };
  // Flipped payload byte → checksum failure.
  std::string flipped = good;
  flipped[20] = static_cast<char>(flipped[20] ^ 0x40);
  rewrite(flipped);
  EXPECT_THROW((void)read_segment(ops, path), validation_error);
  // Truncated tail (torn write) → typed error, not a crash.
  rewrite(good.substr(0, good.size() - 5));
  EXPECT_THROW((void)read_segment(ops, path), validation_error);
  // Wrong magic.
  std::string magic = good;
  magic[0] = 'X';
  rewrite(magic);
  EXPECT_THROW((void)read_segment(ops, path), validation_error);
  // Trailing garbage.
  rewrite(good + "junk0000");
  EXPECT_THROW((void)read_segment(ops, path), validation_error);
  // Missing file is io_error (distinct failure class).
  ops.remove(path);
  EXPECT_THROW((void)read_segment(ops, path), io_error);
}

TEST(DurableFormat, ManifestRoundTripAndCorruption) {
  const auto dir = fresh_dir("man_roundtrip");
  FileOps& ops = real_file_ops();
  EXPECT_FALSE(read_manifest(ops, dir).has_value());
  Manifest man;
  man.spec_hash = 77;
  man.segment_edges = 64;
  man.shards = {{2, 128, 0xaa}, {1, 40, 0xbb}};
  write_manifest(ops, dir, man);
  const auto back = read_manifest(ops, dir);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->spec_hash, 77u);
  EXPECT_EQ(back->segment_edges, 64);
  ASSERT_EQ(back->shards.size(), 2u);
  EXPECT_EQ(back->shards[0].edges, 128);
  EXPECT_EQ(back->shards[1].chain_hash, 0xbbu);
  EXPECT_EQ(back->total_edges(), 168);

  std::string bytes = *ops.read_file(dir + "/MANIFEST");
  bytes[12] = static_cast<char>(bytes[12] ^ 1);
  auto f = ops.create(dir + "/MANIFEST");
  write_all(*f, bytes.data(), bytes.size());
  f->close();
  EXPECT_THROW((void)read_manifest(ops, dir), validation_error);
}

// ---------------------------------------------------------------------------
// The kill/resume matrix — the heart of the battery.

/// Run generation under a kill plan; returns true when the run completed
/// (the plan's point was never reached again).
bool run_with_kill(const kron::BipartiteKronecker& kp,
                   const StreamGenOptions& opt, const std::string& point,
                   std::uint64_t hits) {
  FsFaultPlan plan;
  plan.kill_point = point;
  plan.kill_hits = hits;
  FaultyFileOps faulty(real_file_ops(), plan);
  try {
    generate_durable(faulty, kp, opt);
    return true;
  } catch (const killed_at& k) {
    EXPECT_EQ(k.point, point);
    return false;
  }
}

TEST(KillResumeMatrix, EveryFaultPointResumesByteIdentical) {
  const auto kp = test_product();
  int case_id = 0;
  for (const auto& point : all_fault_points()) {
    for (const std::uint64_t hits : {std::uint64_t{1}, std::uint64_t{7}}) {
      SCOPED_TRACE(point + " hits=" + std::to_string(hits));
      const auto dir = fresh_dir("matrix_" + std::to_string(case_id++));
      auto opt = test_options(dir);
      const bool done = run_with_kill(kp, opt, point, hits);
      if (!done) {
        // Resume with clean ops — must complete and reproduce the
        // uninterrupted run byte for byte.
        opt.resume = true;
        generate_durable(real_file_ops(), kp, opt);
      }
      EXPECT_EQ(store_bytes(dir), reference_store());
    }
  }
}

TEST(KillResumeMatrix, RepeatedKillsStillMakeProgress) {
  // A run that dies at every k-th segment seal, resumed each time, must
  // terminate and reproduce the reference — the commit protocol
  // guarantees at least one segment of progress per life.
  const auto kp = test_product();
  const auto dir = fresh_dir("kill_storm");
  auto opt = test_options(dir);
  int lives = 0;
  for (;; opt.resume = true) {
    ++lives;
    ASSERT_LT(lives, 200) << "kill storm failed to converge";
    if (run_with_kill(kp, opt, "segment:rename:after", 2)) break;
  }
  EXPECT_GT(lives, 2); // the plan actually fired
  EXPECT_EQ(store_bytes(dir), reference_store());
}

TEST(KillResumeMatrix, AdoptionCoversSealToCommitWindow) {
  // Killed after a segment seal but before the manifest commit: the
  // sealed segment is NOT in the manifest, and resume must adopt it
  // rather than regenerate (and must stay byte-identical).
  const auto kp = test_product();
  const auto dir = fresh_dir("adoption");
  auto opt = test_options(dir);
  ASSERT_FALSE(run_with_kill(kp, opt, "manifest:write:before", 2));
  opt.resume = true;
  const auto rep = generate_durable(real_file_ops(), kp, opt);
  EXPECT_GE(rep.adopted_segments, 1);
  EXPECT_EQ(store_bytes(dir), reference_store());
}

TEST(KillResumeMatrix, TornManifestNeverCommitsPartially) {
  // Death mid-manifest-write with a torn prefix on disk: the old
  // manifest was already replaced only on rename, so the store either
  // has the previous manifest or none — resume completes either way.
  const auto kp = test_product();
  const auto dir = fresh_dir("torn_manifest");
  auto opt = test_options(dir);
  ASSERT_FALSE(run_with_kill(kp, opt, "manifest:write:torn", 3));
  opt.resume = true;
  generate_durable(real_file_ops(), kp, opt);
  EXPECT_EQ(store_bytes(dir), reference_store());
}

// ---------------------------------------------------------------------------
// Fail injection (io_error, no crash) and short writes.

TEST(FaultInjection, FailedOpsThrowIoErrorAndStoreStaysResumable) {
  const auto kp = test_product();
  for (const std::string point :
       {"segment:sync:before", "manifest:rename:before",
        "segment:write:before"}) {
    SCOPED_TRACE(point);
    const auto dir = fresh_dir("fail_inject");
    auto opt = test_options(dir);
    FsFaultPlan plan;
    plan.fail_point = point;
    plan.fail_hits = 3;
    FaultyFileOps faulty(real_file_ops(), plan);
    EXPECT_THROW(generate_durable(faulty, kp, opt), io_error);
    opt.resume = true;
    generate_durable(real_file_ops(), kp, opt);
    EXPECT_EQ(store_bytes(dir), reference_store());
  }
}

TEST(FaultInjection, ShortWritesAreLoopedOver) {
  const auto kp = test_product();
  const auto dir = fresh_dir("short_writes");
  FsFaultPlan plan;
  plan.short_write_cap = 3; // pathological: 3 bytes per write call
  FaultyFileOps faulty(real_file_ops(), plan);
  generate_durable(faulty, kp, test_options(dir));
  EXPECT_EQ(store_bytes(dir), reference_store());
}

TEST(FaultInjection, PointsHitAreRecordedInOrder) {
  const auto kp = test_product();
  const auto dir = fresh_dir("points_hit");
  FaultyFileOps faulty(real_file_ops(), FsFaultPlan{});
  generate_durable(faulty, kp, test_options(dir));
  const auto& points = faulty.points_hit();
  ASSERT_FALSE(points.empty());
  // A seal is write* → sync → rename, manifest after segment.
  EXPECT_EQ(points.front(), "segment:write:before");
  bool saw_manifest_rename = false;
  for (const auto& p : points) {
    saw_manifest_rename |= p == "manifest:rename:after";
  }
  EXPECT_TRUE(saw_manifest_rename);
}

// ---------------------------------------------------------------------------
// Torn-segment fuzz: random corruption of a killed store's tail.

TEST(TornSegmentFuzz, RandomTailCorruptionIsDetectedOrDiscarded) {
  const auto kp = test_product();
  const int iters = static_cast<int>(12 * fault_rate_scale());
  Rng rng(1234);
  FileOps& ops = real_file_ops();
  for (int it = 0; it < iters; ++it) {
    SCOPED_TRACE(it);
    const auto dir = fresh_dir("fuzz");
    auto opt = test_options(dir);
    // Die somewhere mid-run (vary the seal at which death strikes).
    const std::uint64_t hits = 1 + rng.next_below(6);
    ASSERT_FALSE(run_with_kill(kp, opt, "segment:rename:after", hits));
    // Corrupt the tail: pick any non-manifest file and mangle it.
    auto names = ops.list_dir(dir);
    std::vector<std::string> segs;
    for (const auto& n : names) {
      if (n.rfind(".krnlseg") != std::string::npos) segs.push_back(n);
    }
    ASSERT_FALSE(segs.empty());
    const auto& victim =
        segs[static_cast<std::size_t>(rng.next_below(segs.size()))];
    std::string bytes = *ops.read_file(dir + "/" + victim);
    const bool truncate = rng.next_below(2) == 0;
    if (truncate) {
      bytes.resize(static_cast<std::size_t>(rng.next_below(bytes.size())));
    } else {
      const auto at =
          static_cast<std::size_t>(rng.next_below(bytes.size()));
      bytes[at] = static_cast<char>(bytes[at] ^ 0x5a);
    }
    {
      auto f = ops.create(dir + "/" + victim);
      write_all(*f, bytes.data(), bytes.size());
      f->close();
    }
    // The corrupted file is either inside the committed range — resume
    // must refuse with a typed validation_error — or past it — resume
    // must discard and regenerate it, landing byte-identical.
    opt.resume = true;
    try {
      generate_durable(ops, kp, opt);
      EXPECT_EQ(store_bytes(dir), reference_store());
    } catch (const validation_error&) {
      // Corruption inside the committed range: correctly refused.
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming validation against the ground-truth oracle.

TEST(StreamValidation, PerturbedEdgeIsCaught) {
  const auto kp = test_product();
  kron::GroundTruthOracle oracle(kp);
  const kron::PartitionedStream part(kp, 1);
  StreamValidator v(oracle, /*seed=*/1, /*rate=*/1);
  v.begin_shard(false);
  count_t n = 0;
  EXPECT_THROW(
      {
        part.for_each_entry(0, [&](index_t p, index_t q) {
          // Perturb the 10th edge to a guaranteed non-edge (q out of
          // range maps to "not an edge", the try_edge probe form).
          v.observe(p, ++n == 10 ? kp.num_vertices() + 7 : q);
        });
        v.end_shard();
      },
      validation_error);
}

TEST(StreamValidation, DroppedEdgeIsCaughtByDegreeCheck) {
  const auto kp = test_product();
  kron::GroundTruthOracle oracle(kp);
  const kron::PartitionedStream part(kp, 1);
  StreamValidator v(oracle, /*seed=*/1, /*rate=*/1);
  v.begin_shard(false);
  count_t n = 0;
  EXPECT_THROW(
      {
        part.for_each_entry(0, [&](index_t p, index_t q) {
          if (++n != 5) v.observe(p, q); // silently drop one edge
        });
        v.end_shard();
      },
      validation_error);
}

TEST(StreamValidation, CleanStreamPassesAndSamplesSublinearly) {
  const auto kp = test_product();
  kron::GroundTruthOracle oracle(kp);
  const kron::PartitionedStream part(kp, 1);
  const count_t total = part.entries_of(0);
  // rate=1 checks everything…
  StreamValidator all(oracle, 1, 1);
  all.begin_shard(false);
  part.for_each_entry(0, [&](index_t p, index_t q) { all.observe(p, q); });
  all.end_shard();
  EXPECT_EQ(all.edges_checked(), total);
  EXPECT_GT(all.rows_checked(), 0);
  // …while a high rate probes a strict sample (sublinear work), from
  // O(1) validator state either way.
  StreamValidator sparse(oracle, 1, 64);
  sparse.begin_shard(false);
  part.for_each_entry(0,
                      [&](index_t p, index_t q) { sparse.observe(p, q); });
  sparse.end_shard();
  EXPECT_LT(sparse.edges_checked(), total / 8);
  static_assert(sizeof(StreamValidator) < 128,
                "validator must hold O(1) state, not per-row structures");
}

TEST(StreamValidation, VerifyStoreCatchesCommittedCorruption) {
  const auto kp = test_product();
  const auto dir = fresh_dir("verify_corrupt");
  const auto opt = test_options(dir);
  generate_durable(real_file_ops(), kp, opt);
  EXPECT_NO_THROW((void)verify_store(real_file_ops(), kp, opt));
  // Flip one payload byte of a committed segment.
  const std::string path = dir + "/" + segment_name(1, 1);
  std::string bytes = *real_file_ops().read_file(path);
  bytes[48] = static_cast<char>(bytes[48] ^ 2);
  auto f = real_file_ops().create(path);
  write_all(*f, bytes.data(), bytes.size());
  f->close();
  EXPECT_THROW((void)verify_store(real_file_ops(), kp, opt),
               validation_error);
}

TEST(StreamValidation, ResumeAgainstDifferentSpecIsRefused) {
  const auto kp = test_product();
  const auto dir = fresh_dir("spec_mismatch");
  auto opt = test_options(dir);
  generate_durable(real_file_ops(), kp, opt);
  Rng rng(99);
  const auto other = kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(9, 16, rng),
      gen::preferential_bipartite(3, 4, 8, rng));
  opt.resume = true;
  EXPECT_THROW(generate_durable(real_file_ops(), other, opt),
               validation_error);
}

// ---------------------------------------------------------------------------
// Resume cursor arithmetic.

TEST(ResumeCursor, ForEachEntryFromMatchesSuffixAtEveryOffset) {
  const auto kp = test_product();
  const kron::PartitionedStream part(kp, 3);
  for (index_t r = 0; r < 3; ++r) {
    std::vector<std::pair<index_t, index_t>> full;
    part.for_each_entry(
        r, [&](index_t p, index_t q) { full.emplace_back(p, q); });
    // Every offset: boundaries, row interiors, pair interiors, the end.
    for (count_t skip = 0; skip <= static_cast<count_t>(full.size());
         ++skip) {
      std::vector<std::pair<index_t, index_t>> tail;
      part.for_each_entry_from(
          r, skip, [&](index_t p, index_t q) { tail.emplace_back(p, q); });
      ASSERT_EQ(tail.size(), full.size() - static_cast<std::size_t>(skip))
          << "rank " << r << " skip " << skip;
      ASSERT_TRUE(std::equal(tail.begin(), tail.end(),
                             full.begin() + static_cast<std::ptrdiff_t>(skip)))
          << "rank " << r << " skip " << skip;
    }
  }
}

TEST(ResumeCursor, ScaleChainCollapseStreamsTheSameProduct) {
  // collapse_pair regroups the chain; the streamed edge set must equal
  // the materialized chain product's.
  Rng rng(5);
  auto a = gen::random_nonbipartite_connected(5, 8, rng);
  auto b = gen::preferential_bipartite(2, 3, 5, rng);
  const auto chain = kron::ChainKronecker::of({a, b, b});
  auto [l, r] = chain.collapse_pair();
  const auto kp = kron::BipartiteKronecker::raw(l, r);
  EXPECT_EQ(kp.num_vertices(), chain.num_vertices());
  EXPECT_EQ(kp.num_edges(), chain.num_edges());
  const auto direct = chain.materialize();
  const auto via_pair = kp.materialize();
  EXPECT_EQ(direct.row_ptr(), via_pair.row_ptr());
  EXPECT_EQ(direct.col_idx(), via_pair.col_idx());
}

// ---------------------------------------------------------------------------
// Report bookkeeping.

TEST(Report, CountersAreConsistent) {
  const auto kp = test_product();
  const auto dir = fresh_dir("report");
  auto opt = test_options(dir);
  const auto cold = generate_durable(real_file_ops(), kp, opt);
  const kron::PartitionedStream part(kp, opt.shards);
  count_t total = 0;
  for (index_t s = 0; s < opt.shards; ++s) total += part.entries_of(s);
  EXPECT_EQ(cold.edges_written, total);
  EXPECT_EQ(cold.edges_resumed, 0);
  EXPECT_EQ(cold.manifest.total_edges(), total);
  EXPECT_GT(cold.segments_sealed, opt.shards); // several per shard
  EXPECT_GT(cold.rows_checked, 0);
  EXPECT_GT(cold.edges_checked, 0);

  opt.resume = true;
  const auto warm = generate_durable(real_file_ops(), kp, opt);
  EXPECT_EQ(warm.edges_written, 0);
  EXPECT_EQ(warm.edges_resumed, total);
  EXPECT_EQ(warm.verified_segments, cold.segments_sealed);
}

} // namespace
} // namespace kronlab::io
