// Tests for MatrixMarket and bipartite edge-list I/O, including malformed
// inputs (failure injection).

#include <gtest/gtest.h>

#include <sstream>

#include "kronlab/grb/io.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::grb {
namespace {

TEST(MatrixMarket, ReadsGeneralInteger) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 5\n"
      "3 1 7\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.nrows(), 3);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_EQ(a.at(0, 1), 5);
  EXPECT_EQ(a.at(2, 0), 7);
}

TEST(MatrixMarket, ReadsSymmetricPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.at(1, 0), 1);
  EXPECT_EQ(a.at(0, 1), 1); // mirrored
  EXPECT_EQ(a.at(2, 2), 1); // diagonal not doubled
  EXPECT_EQ(a.nnz(), 3);
}

TEST(MatrixMarket, RoundTripsThroughWrite) {
  Coo<count_t> coo(3, 4);
  coo.push(0, 3, 2);
  coo.push(2, 1, -5);
  const auto a = Csr<count_t>::from_coo(coo);
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in(out.str());
  EXPECT_EQ(read_matrix_market(in), a);
}

TEST(MatrixMarket, RejectsMalformedInputs) {
  {
    std::istringstream in("not a matrix\n1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n1 1\n1.0\n");
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "3 1 1\n"); // out of range
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 2\n"
        "1 1 1\n"); // truncated
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex hermitian\n"
        "1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
}

TEST(EdgeList, ReadsKonectStyle) {
  std::istringstream in(
      "% bip comment\n"
      "# another comment\n"
      "1 2\n"
      "3 1 4.5 1234567\n" // weight + timestamp columns ignored
      "2 2\n");
  const auto el = read_bipartite_edge_list(in);
  EXPECT_EQ(el.n_left, 3);
  EXPECT_EQ(el.n_right, 2);
  ASSERT_EQ(el.edges.size(), 3u);
  EXPECT_EQ(el.edges[0], (std::pair<index_t, index_t>{0, 1}));
  EXPECT_EQ(el.edges[1], (std::pair<index_t, index_t>{2, 0}));
}

TEST(EdgeList, RejectsMalformedLines) {
  {
    std::istringstream in("1\n");
    EXPECT_THROW(read_bipartite_edge_list(in), io_error);
  }
  {
    std::istringstream in("0 1\n"); // 1-based required
    EXPECT_THROW(read_bipartite_edge_list(in), io_error);
  }
  {
    std::istringstream in("a b\n");
    EXPECT_THROW(read_bipartite_edge_list(in), io_error);
  }
}

TEST(EdgeList, RoundTripsThroughWrite) {
  BipartiteEdgeList el;
  el.n_left = 3;
  el.n_right = 4;
  el.edges = {{0, 3}, {2, 1}};
  std::ostringstream out;
  write_bipartite_edge_list(out, el);
  std::istringstream in(out.str());
  const auto back = read_bipartite_edge_list(in);
  EXPECT_EQ(back.edges, el.edges);
  EXPECT_EQ(back.n_left, 3);
  EXPECT_EQ(back.n_right, 4);
}

TEST(Files, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), io_error);
  EXPECT_THROW(read_bipartite_edge_list_file("/nonexistent/out.x"),
               io_error);
}

} // namespace
} // namespace kronlab::grb
