// Tests for MatrixMarket and bipartite edge-list I/O, including malformed
// inputs (failure injection).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "kronlab/grb/io.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::grb {
namespace {

TEST(MatrixMarket, ReadsGeneralInteger) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 5\n"
      "3 1 7\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.nrows(), 3);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_EQ(a.at(0, 1), 5);
  EXPECT_EQ(a.at(2, 0), 7);
}

TEST(MatrixMarket, ReadsSymmetricPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.at(1, 0), 1);
  EXPECT_EQ(a.at(0, 1), 1); // mirrored
  EXPECT_EQ(a.at(2, 2), 1); // diagonal not doubled
  EXPECT_EQ(a.nnz(), 3);
}

TEST(MatrixMarket, RoundTripsThroughWrite) {
  Coo<count_t> coo(3, 4);
  coo.push(0, 3, 2);
  coo.push(2, 1, -5);
  const auto a = Csr<count_t>::from_coo(coo);
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in(out.str());
  EXPECT_EQ(read_matrix_market(in), a);
}

TEST(MatrixMarket, RejectsMalformedInputs) {
  {
    std::istringstream in("not a matrix\n1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n1 1\n1.0\n");
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "3 1 1\n"); // out of range
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 2\n"
        "1 1 1\n"); // truncated
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex hermitian\n"
        "1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), io_error);
  }
}

TEST(EdgeList, ReadsKonectStyle) {
  std::istringstream in(
      "% bip comment\n"
      "# another comment\n"
      "1 2\n"
      "3 1 4.5 1234567\n" // weight + timestamp columns ignored
      "2 2\n");
  const auto el = read_bipartite_edge_list(in);
  EXPECT_EQ(el.n_left, 3);
  EXPECT_EQ(el.n_right, 2);
  ASSERT_EQ(el.edges.size(), 3u);
  EXPECT_EQ(el.edges[0], (std::pair<index_t, index_t>{0, 1}));
  EXPECT_EQ(el.edges[1], (std::pair<index_t, index_t>{2, 0}));
}

TEST(EdgeList, RejectsMalformedLines) {
  // Table-driven: every malformed shape the KONECT-style parser guards
  // against, with the 1-based line number it must report.
  struct Case {
    const char* name;
    const char* input;
    const char* expect_in_what; // substring of the io_error message
  };
  const Case cases[] = {
      {"too few fields", "1 2\n1\n", "line 2"},
      {"zero id", "0 1\n", "must be positive"},
      {"negative id", "1 2\n-3 4\n", "must be positive"},
      {"alphabetic token", "a b\n", "non-numeric"},
      {"numeric prefix with junk", "12x 3\n", "non-numeric"},
      {"junk weight column", "1 2 heavy\n", "non-numeric"},
      {"too many fields", "1 2 3 4 5\n", "too many fields"},
      {"lone sign", "+ 2\n", "non-numeric"},
      {"line number is counted", "1 1\n\n% c\n2 2\nbad 3\n", "line 5"},
  };
  for (const auto& c : cases) {
    std::istringstream in(c.input);
    try {
      read_bipartite_edge_list(in);
      FAIL() << "accepted malformed input: " << c.name;
    } catch (const io_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_what),
                std::string::npos)
          << c.name << " — got: " << e.what();
    }
  }
}

TEST(EdgeList, AcceptsCrlfAndFractionalWeights) {
  std::istringstream in("1 2\r\n2 1 0.5\r\n% comment\r\n\r\n3 2 1.25 99\r\n");
  const auto el = read_bipartite_edge_list(in);
  EXPECT_EQ(el.edges.size(), 3u);
  EXPECT_EQ(el.n_left, 3);
  EXPECT_EQ(el.n_right, 2);
}

TEST(EdgeList, DuplicateEdgesToleratedUnlessStrict) {
  const char* input = "1 2\n1 2\n2 1\n";
  {
    std::istringstream in(input);
    EXPECT_EQ(read_bipartite_edge_list(in).edges.size(), 3u);
  }
  {
    std::istringstream in(input);
    EdgeListOptions opt;
    opt.reject_duplicates = true;
    try {
      read_bipartite_edge_list(in, opt);
      FAIL() << "duplicate accepted in strict mode";
    } catch (const io_error& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate edge"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
  }
}

TEST(EdgeList, EnforcesVertexIdCap) {
  EdgeListOptions opt;
  opt.max_vertex_id = 100;
  {
    std::istringstream in("1 100\n");
    EXPECT_EQ(read_bipartite_edge_list(in, opt).n_right, 100);
  }
  {
    std::istringstream in("1 101\n");
    EXPECT_THROW(read_bipartite_edge_list(in, opt), io_error);
  }
  {
    // Default cap guards against ids that would overflow allocation math
    // (e.g. 20 digits of garbage parsed as a vertex id).
    std::istringstream in("1 99999999999999999999\n");
    EXPECT_THROW(read_bipartite_edge_list(in), io_error);
  }
}

TEST(EdgeList, FileErrorsArePrefixedWithPath) {
  const std::string path = "/tmp/kronlab_test_badedges.txt";
  {
    std::ofstream out(path);
    out << "1 2\nnot numeric\n";
  }
  try {
    read_bipartite_edge_list_file(path);
    FAIL() << "malformed file accepted";
  } catch (const io_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("line 2"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(EdgeList, RoundTripsThroughWrite) {
  BipartiteEdgeList el;
  el.n_left = 3;
  el.n_right = 4;
  el.edges = {{0, 3}, {2, 1}};
  std::ostringstream out;
  write_bipartite_edge_list(out, el);
  std::istringstream in(out.str());
  const auto back = read_bipartite_edge_list(in);
  EXPECT_EQ(back.edges, el.edges);
  EXPECT_EQ(back.n_left, 3);
  EXPECT_EQ(back.n_right, 4);
}

TEST(Files, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), io_error);
  EXPECT_THROW(read_bipartite_edge_list_file("/nonexistent/out.x"),
               io_error);
}

} // namespace
} // namespace kronlab::grb
