// Tests for Def. 11 community statistics on bipartite graphs.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/community.hpp"

namespace kronlab::graph {
namespace {

TEST(Community, IndicatorVector) {
  BipartiteSubset s;
  s.r = {0, 2};
  s.t = {5};
  const auto ind = s.indicator(6);
  EXPECT_EQ(ind.data(), (std::vector<count_t>{1, 0, 1, 0, 0, 1}));
  EXPECT_THROW(s.indicator(4), invalid_argument); // member out of range
}

TEST(Community, IndicatorRejectsDoubleListing) {
  BipartiteSubset s;
  s.r = {1};
  s.t = {1};
  EXPECT_THROW(s.indicator(3), invalid_argument);
}

TEST(Community, CompleteBipartiteCounts) {
  // K_{3,4}: S = {u0,u1} ∪ {w0,w1,w2}: m_in = 2·3 = 6,
  // m_out = edges from S to outside = u0,u1→w3 (2) + u2→w0..2 (3) = 5.
  const auto a = gen::complete_bipartite(3, 4);
  const auto part = two_color(a).value();
  BipartiteSubset s;
  s.r = {0, 1};
  s.t = {3, 4, 5};
  const auto st = community_stats(a, part, s);
  EXPECT_EQ(st.m_in, 6);
  EXPECT_EQ(st.m_out, 5);
  EXPECT_DOUBLE_EQ(st.rho_in, 1.0);
  // denom = |R||W| + |U||T| − 2|R||T| = 2·4 + 3·3 − 2·2·3 = 5.
  EXPECT_DOUBLE_EQ(st.rho_out, 1.0);
}

TEST(Community, SideMembershipIsValidated) {
  const auto a = gen::complete_bipartite(2, 2);
  const auto part = two_color(a).value();
  BipartiteSubset s;
  s.r = {2}; // vertex 2 is on side W
  EXPECT_THROW(community_stats(a, part, s), invalid_argument);
}

TEST(Community, AlgebraicEqualsCombinatorial) {
  Rng rng(31);
  const auto a = gen::random_bipartite(8, 10, 35, rng);
  const auto part = two_color(a).value();
  BipartiteSubset s;
  s.r = {0, 1, 2};
  s.t = {8, 9, 11, 13};
  const auto ind = s.indicator(a.nrows());
  // Brute-force counts.
  count_t in_bf = 0, out_bf = 0;
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (const index_t j : a.row_cols(i)) {
      if (i < j) {
        const bool si = ind[i] == 1, sj = ind[j] == 1;
        if (si && sj) ++in_bf;
        if (si != sj) ++out_bf;
      }
    }
  }
  EXPECT_EQ(internal_edges(a, ind), in_bf);
  EXPECT_EQ(external_edges(a, ind), out_bf);
}

TEST(Community, EmptySubsetIsZero) {
  const auto a = gen::complete_bipartite(2, 3);
  const auto part = two_color(a).value();
  const BipartiteSubset s; // empty
  const auto st = community_stats(a, part, s);
  EXPECT_EQ(st.m_in, 0);
  EXPECT_EQ(st.m_out, 0);
  EXPECT_DOUBLE_EQ(st.rho_in, 0.0);
}

} // namespace
} // namespace kronlab::graph
