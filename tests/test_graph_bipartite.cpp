// Tests for two-coloring, bipartition structure and biadjacency blocks.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/graph/bipartite.hpp"

namespace kronlab::graph {
namespace {

TEST(TwoColor, EvenCycleIsBipartite) {
  const auto part = two_color(gen::cycle_graph(6));
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->size_u(), 3);
  EXPECT_EQ(part->size_w(), 3);
  // Alternating colors along the cycle.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(part->side[i], i % 2);
}

TEST(TwoColor, OddCycleIsNot) {
  EXPECT_FALSE(is_bipartite(gen::cycle_graph(5)));
  EXPECT_FALSE(is_bipartite(gen::complete_graph(3)));
}

TEST(TwoColor, SelfLoopBreaksBipartiteness) {
  const auto a = from_undirected_edges(2, {{0, 1}, {1, 1}});
  EXPECT_FALSE(is_bipartite(a));
}

TEST(TwoColor, DisconnectedGraphColorsEachComponent) {
  const auto g =
      gen::disjoint_union(gen::path_graph(3), gen::cycle_graph(4));
  const auto part = two_color(g);
  ASSERT_TRUE(part.has_value());
  // Every edge must cross the sides.
  for (index_t i = 0; i < g.nrows(); ++i) {
    for (const index_t j : g.row_cols(i)) {
      EXPECT_NE(part->side[static_cast<std::size_t>(i)],
                part->side[static_cast<std::size_t>(j)]);
    }
  }
}

TEST(TwoColor, MixedComponentsDetectOddCycleAnywhere) {
  const auto g =
      gen::disjoint_union(gen::path_graph(3), gen::cycle_graph(5));
  EXPECT_FALSE(is_bipartite(g));
}

TEST(Bipartition, VertexListsPartition) {
  const auto part = two_color(gen::complete_bipartite(2, 3)).value();
  const auto u = part.u_vertices();
  const auto w = part.w_vertices();
  EXPECT_EQ(u, (std::vector<index_t>{0, 1}));
  EXPECT_EQ(w, (std::vector<index_t>{2, 3, 4}));
}

TEST(Biadjacency, RoundTripThroughBlockForm) {
  const auto x = grb::Csr<count_t>::from_dense(2, 3, {1, 0, 1, 0, 1, 0});
  const auto a = bipartite_from_biadjacency(x);
  EXPECT_TRUE(is_bipartite(a));
  EXPECT_EQ(a.nnz(), 2 * x.nnz());
  EXPECT_EQ(biadjacency_block(a, 2), x);
}

TEST(Biadjacency, RejectsInSideEdges) {
  const auto k3 = gen::complete_graph(3);
  EXPECT_THROW(biadjacency_block(k3, 1), domain_error);
  // Edge entirely within the declared W side.
  const auto a = from_undirected_edges(4, {{2, 3}});
  EXPECT_THROW(biadjacency_block(a, 2), domain_error);
}

TEST(Biadjacency, CanonicalGeneratorsAreBlockOrdered) {
  // complete_bipartite and crown build U-before-W adjacency by
  // construction.
  const auto kb = gen::complete_bipartite(3, 2);
  EXPECT_EQ(biadjacency_block(kb, 3).nnz(), 6);
  const auto cr = gen::crown_graph(4);
  EXPECT_EQ(biadjacency_block(cr, 4).nnz(), 12);
}

} // namespace
} // namespace kronlab::graph
