// Tests for GroundTruthOracle: random-access queries, sampling, and the
// degree-histogram ground truth — all validated against the materialized
// product.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite_clustering.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/stats.hpp"
#include "kronlab/kron/oracle.hpp"

namespace kronlab::kron {
namespace {

class OracleTest : public ::testing::TestWithParam<int> {
protected:
  BipartiteKronecker make() const {
    switch (GetParam() % 3) {
      case 0:
        return BipartiteKronecker::assumption_i(
            gen::triangle_with_tail(GetParam() / 3),
            gen::complete_bipartite(2, 3));
      case 1: {
        Rng rng(7000 + static_cast<std::uint64_t>(GetParam()));
        return BipartiteKronecker::assumption_ii(
            gen::connected_random_bipartite(4, 4, 10, rng),
            gen::connected_random_bipartite(4, 5, 12, rng));
      }
      default: {
        Rng rng(8000 + static_cast<std::uint64_t>(GetParam()));
        return BipartiteKronecker::raw(
            grb::add_identity(gen::random_bipartite(4, 4, 8, rng)),
            gen::random_bipartite(5, 4, 10, rng));
      }
    }
  }
};

TEST_P(OracleTest, VertexRecordsMatchDirect) {
  const auto kp = make();
  const GroundTruthOracle oracle(kp);
  const auto c = kp.materialize();
  const auto d = graph::degrees(c);
  const auto w2 = graph::two_hop_walks(c);
  const auto s = graph::vertex_butterflies(c);
  const auto closure = graph::local_closure(c);
  for (index_t p = 0; p < c.nrows(); ++p) {
    const auto r = oracle.vertex(p);
    EXPECT_EQ(r.degree, d[p]);
    EXPECT_EQ(r.two_hop, w2[p]);
    EXPECT_EQ(r.squares, s[p]);
    EXPECT_DOUBLE_EQ(r.closure, closure[p]);
  }
}

TEST_P(OracleTest, EdgeRecordsMatchDirect) {
  const auto kp = make();
  const GroundTruthOracle oracle(kp);
  const auto c = kp.materialize();
  const auto sq = graph::edge_butterflies(c);
  const auto d = graph::degrees(c);
  for (index_t p = 0; p < c.nrows(); ++p) {
    const auto cols = sq.row_cols(p);
    const auto vals = sq.row_vals(p);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      const auto r = oracle.edge(p, cols[e]);
      EXPECT_EQ(r.squares, vals[e]);
      EXPECT_EQ(r.degree_p, d[p]);
      EXPECT_EQ(r.degree_q, d[cols[e]]);
    }
  }
}

TEST_P(OracleTest, DegreeHistogramMatchesDirect) {
  const auto kp = make();
  const GroundTruthOracle oracle(kp);
  EXPECT_EQ(oracle.degree_histogram(),
            graph::degree_histogram(kp.materialize()));
}

INSTANTIATE_TEST_SUITE_P(Products, OracleTest, ::testing::Range(0, 9));

TEST(Oracle, EdgeQueryRejectsNonEdges) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::path_graph(2),
                                                    gen::path_graph(2));
  const GroundTruthOracle oracle(kp);
  // C = C4 on {0,1,2,3}: (0,2) is a diagonal, not an edge.
  EXPECT_THROW((void)oracle.edge(0, 2), invalid_argument);
}

TEST_P(OracleTest, TryEdgeAgreesWithEdgeEverywhere) {
  // try_edge is the probe form: over the full p×q grid it must return a
  // record exactly where the materialized product has an edge, nullopt
  // everywhere else, and the record must equal what edge() returns.
  const auto kp = make();
  const GroundTruthOracle oracle(kp);
  const auto c = kp.materialize();
  for (index_t p = 0; p < c.nrows(); ++p) {
    for (index_t q = 0; q < c.ncols(); ++q) {
      const auto r = oracle.try_edge(p, q);
      ASSERT_EQ(r.has_value(), c.has(p, q)) << p << "," << q;
      if (r) {
        const auto direct = oracle.edge(p, q);
        EXPECT_EQ(r->p, direct.p);
        EXPECT_EQ(r->q, direct.q);
        EXPECT_EQ(r->degree_p, direct.degree_p);
        EXPECT_EQ(r->degree_q, direct.degree_q);
        EXPECT_EQ(r->squares, direct.squares);
        EXPECT_DOUBLE_EQ(r->gamma, direct.gamma);
      }
    }
  }
}

TEST(Oracle, TryEdgeIsNulloptOutOfRangeNotAnError) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::path_graph(2),
                                                    gen::path_graph(2));
  const GroundTruthOracle oracle(kp);
  const auto n = kp.num_vertices();
  // A query server forwards raw client input: out-of-range indices are an
  // answer (nullopt), never an exception or an out-of-bounds read.
  EXPECT_FALSE(oracle.try_edge(-1, 0).has_value());
  EXPECT_FALSE(oracle.try_edge(0, -1).has_value());
  EXPECT_FALSE(oracle.try_edge(n, 0).has_value());
  EXPECT_FALSE(oracle.try_edge(0, n).has_value());
  EXPECT_FALSE(oracle.try_edge(n, n).has_value());
  // The throwing form keeps its contract for in-range non-edges and
  // out-of-range indices alike.
  EXPECT_THROW((void)oracle.edge(n, 0), invalid_argument);
  EXPECT_THROW((void)oracle.edge(-1, -1), invalid_argument);
}

TEST(Oracle, SampledVerticesAreValidAndCover) {
  const auto kp = BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(0), gen::path_graph(3));
  const GroundTruthOracle oracle(kp);
  Rng rng(9);
  std::vector<int> seen(static_cast<std::size_t>(kp.num_vertices()), 0);
  for (int t = 0; t < 500; ++t) {
    const auto r = oracle.sample_vertex(rng);
    ASSERT_GE(r.p, 0);
    ASSERT_LT(r.p, kp.num_vertices());
    seen[static_cast<std::size_t>(r.p)] = 1;
  }
  // 9 vertices, 500 draws: all must appear.
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(Oracle, SampledEdgesAreRealAndRoughlyUniform) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::path_graph(2),
                                                    gen::path_graph(3));
  const GroundTruthOracle oracle(kp);
  const auto c = kp.materialize();
  Rng rng(10);
  std::map<std::pair<index_t, index_t>, int> freq;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto r = oracle.sample_edge(rng);
    ASSERT_TRUE(c.has(r.p, r.q)) << r.p << "," << r.q;
    auto key = std::minmax(r.p, r.q);
    ++freq[{key.first, key.second}];
  }
  // Every undirected edge should be drawn, each within a loose tolerance
  // of the uniform expectation.
  const auto edges = graph::num_edges(c);
  EXPECT_EQ(static_cast<count_t>(freq.size()), edges);
  const double expect = static_cast<double>(trials) /
                        static_cast<double>(edges);
  for (const auto& [e, n] : freq) {
    EXPECT_GT(n, expect * 0.5);
    EXPECT_LT(n, expect * 1.7);
  }
}

TEST(Oracle, LocalClosureVectorMatchesDirect) {
  Rng rng(11);
  const auto kp = BipartiteKronecker::assumption_ii(
      gen::connected_random_bipartite(3, 4, 9, rng),
      gen::connected_random_bipartite(4, 4, 11, rng));
  const GroundTruthOracle oracle(kp);
  const auto truth = oracle.local_closure();
  const auto direct = graph::local_closure(kp.materialize());
  ASSERT_EQ(truth.size(), direct.size());
  for (index_t p = 0; p < truth.size(); ++p) {
    EXPECT_DOUBLE_EQ(truth[p], direct[p]) << "vertex " << p;
  }
}

} // namespace
} // namespace kronlab::kron
