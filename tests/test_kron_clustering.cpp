// Tests for bipartite edge clustering coefficients (Def. 10) and the Thm 6
// scaling law.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/kron/clustering.hpp"

namespace kronlab::kron {
namespace {

TEST(EdgeClustering, DefinitionCases) {
  EXPECT_DOUBLE_EQ(edge_clustering(6, 3, 4).value(), 1.0);
  EXPECT_DOUBLE_EQ(edge_clustering(3, 3, 4).value(), 0.5);
  EXPECT_DOUBLE_EQ(edge_clustering(0, 5, 5).value(), 0.0);
  EXPECT_FALSE(edge_clustering(0, 1, 7).has_value());
  EXPECT_FALSE(edge_clustering(0, 7, 1).has_value());
}

TEST(EdgeClustering, CompleteBipartiteIsFullyClustered) {
  // In K_{m,n} every edge attains the maximum (d_i−1)(d_j−1) squares.
  const auto a = gen::complete_bipartite(3, 4);
  const auto g = edge_clustering_matrix(a);
  for (const double v : g.vals()) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(EdgeClustering, TreeEdgesAreZero) {
  const auto a = gen::double_star(3, 3);
  const auto g = edge_clustering_matrix(a);
  for (const double v : g.vals()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Psi, RangeMatchesThm6Note) {
  // ψ ∈ [1/9, 1): minimum at all degrees = 2.
  EXPECT_DOUBLE_EQ(psi(2, 2, 2, 2), 1.0 / 9.0);
  EXPECT_LT(psi(10, 10, 10, 10), 1.0);
  EXPECT_GT(psi(50, 50, 50, 50), 0.9);
  EXPECT_THROW(psi(1, 2, 2, 2), invalid_argument);
}

class Thm6Test : public ::testing::TestWithParam<int> {
protected:
  BipartiteKronecker make_product() const {
    switch (GetParam()) {
      case 0:
        return BipartiteKronecker::assumption_i(
            gen::complete_graph(4), gen::complete_bipartite(3, 3));
      case 1:
        return BipartiteKronecker::assumption_i(gen::complete_graph(3),
                                                gen::crown_graph(4));
      default: {
        Rng rng(800 + GetParam());
        return BipartiteKronecker::assumption_i(
            gen::random_nonbipartite_connected(7, 16, rng),
            gen::connected_random_bipartite(5, 5, 16, rng));
      }
    }
  }
};

TEST_P(Thm6Test, LowerBoundHoldsOnEveryQualifyingEdge) {
  const auto kp = make_product();
  const auto samples = clustering_samples(kp);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_GE(s.gamma_c, s.bound - 1e-12)
        << "edge (" << s.p << "," << s.q << ")";
    EXPECT_GE(s.psi, 1.0 / 9.0 - 1e-12);
    EXPECT_LT(s.psi, 1.0);
  }
}

TEST_P(Thm6Test, GammaCMatchesDirectComputation) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  const auto sq = graph::edge_butterflies(c);
  const auto d = graph::degrees(c);
  for (const auto& s : clustering_samples(kp)) {
    const auto expect = edge_clustering(sq.at(s.p, s.q), d[s.p], d[s.q]);
    ASSERT_TRUE(expect.has_value());
    EXPECT_DOUBLE_EQ(s.gamma_c, *expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Products, Thm6Test, ::testing::Range(0, 5));

TEST(Thm6, SampleTruncationIsHonored) {
  const auto kp = BipartiteKronecker::assumption_i(
      gen::complete_graph(4), gen::complete_bipartite(3, 3));
  EXPECT_EQ(static_cast<index_t>(clustering_samples(kp, 10).size()), 10);
}

TEST(Thm6, RejectsSelfLoopLeftFactor) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::path_graph(3),
                                                    gen::path_graph(4));
  EXPECT_THROW(clustering_samples(kp), domain_error);
}

} // namespace
} // namespace kronlab::kron
