// Malformed-frame battery for the query daemon: deterministic frame
// mutations (bad magic, truncated length, corrupted checksum, oversized
// batch, zero-length body, random byte flips) thrown at a live in-process
// server.  The contract under attack input is structural, not behavioral:
// every mutation yields a structured error response or a clean close —
// never a crash, never a leaked connection slot.  CI runs this suite under
// ASan+UBSan.

#include <gtest/gtest.h>

#include <cstring>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/serve/client.hpp"
#include "kronlab/serve/protocol.hpp"
#include "kronlab/serve/server.hpp"
#include "kronlab/serve/transport.hpp"

namespace kronlab::serve {
namespace {

kron::BipartiteKronecker make_product() {
  return kron::BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(1), gen::complete_bipartite(3, 4));
}

/// A well-formed one-probe frame to mutate.
std::vector<std::uint8_t> good_frame(std::uint64_t id = 1) {
  return seal_frame(encode_request({id, {Probe::stats()}}));
}

/// Expect a response frame with the given frame-level status.
void expect_status(Transport& t, Status want) {
  const auto frame = read_frame(t, std::chrono::milliseconds(5000));
  ASSERT_TRUE(frame.has_value()) << "connection closed, expected a "
                                 << status_name(want) << " response";
  const Response resp = decode_response(*frame);
  EXPECT_EQ(resp.status, want)
      << "got " << status_name(resp.status);
}

/// Expect the server to close the connection (clean EOF on our side).
void expect_close(Transport& t) {
  // Drain whatever the server sent (e.g. a best-effort malformed
  // response) until EOF; fail on anything but a clean close.
  for (int i = 0; i < 8; ++i) {
    std::optional<std::vector<word_t>> frame;
    try {
      frame = read_frame(t, std::chrono::milliseconds(5000));
    } catch (const error& e) {
      FAIL() << "expected clean close, got error: " << e.what();
    }
    if (!frame) return; // clean EOF
  }
  FAIL() << "server kept the connection open";
}

class ServeMalformedTest : public ::testing::Test {
protected:
  void SetUp() override {
    kp_ = std::make_unique<kron::BipartiteKronecker>(make_product());
    server_ = std::make_unique<Server>(*kp_);
  }

  /// Fresh adopted connection; returns the client end.
  std::unique_ptr<Transport> connect() {
    auto [client_end, server_end] = local_pair();
    server_->adopt(std::move(server_end));
    return std::move(client_end);
  }

  /// The server must still answer a well-formed request on a fresh
  /// connection — i.e. the attack did not take the daemon down or leak
  /// its connection slot.
  void assert_still_serving() {
    Client client(connect());
    const auto s = client.stats();
    EXPECT_EQ(s.num_vertices, kp_->num_vertices());
  }

  std::unique_ptr<kron::BipartiteKronecker> kp_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeMalformedTest, BadMagicGetsErrorThenClose) {
  auto t = connect();
  auto frame = good_frame();
  frame[0] = 'X'; // no longer "KRNLSRV1"
  t->write_all(frame.data(), frame.size());
  // The stream may be unsynchronized: best-effort malformed answer, then
  // the server must drop the connection.
  expect_status(*t, Status::malformed);
  expect_close(*t);
  assert_still_serving();
  EXPECT_GE(server_->stats().malformed, 1u);
}

TEST_F(ServeMalformedTest, ImplausibleLengthGetsErrorThenClose) {
  auto t = connect();
  auto frame = good_frame();
  const std::uint64_t huge = max_frame_bytes + 8;
  std::memcpy(frame.data() + 8, &huge, 8);
  t->write_all(frame.data(), frame.size());
  expect_status(*t, Status::malformed);
  expect_close(*t);
  assert_still_serving();
}

TEST_F(ServeMalformedTest, MisalignedLengthGetsErrorThenClose) {
  auto t = connect();
  auto frame = good_frame();
  const std::uint64_t odd = 33; // not a multiple of 8
  std::memcpy(frame.data() + 8, &odd, 8);
  t->write_all(frame.data(), frame.size());
  expect_status(*t, Status::malformed);
  expect_close(*t);
  assert_still_serving();
}

TEST_F(ServeMalformedTest, CorruptChecksumAnsweredConnectionSurvives) {
  auto t = connect();
  auto frame = good_frame(/*id=*/5);
  frame[frame.size() - 1] ^= 0xFF;
  t->write_all(frame.data(), frame.size());
  // Framing stayed intact, so the connection survives the corruption...
  expect_status(*t, Status::malformed);
  // ...and the very same connection still answers real requests.
  const auto good = good_frame(/*id=*/6);
  t->write_all(good.data(), good.size());
  const auto resp = read_frame(*t, std::chrono::milliseconds(5000));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(decode_response(*resp).status, Status::ok);
  EXPECT_EQ(decode_response(*resp).id, 6u);
}

TEST_F(ServeMalformedTest, CorruptPayloadByteIsDetected) {
  auto t = connect();
  auto frame = good_frame();
  frame[16] ^= 0x40; // flip a payload bit; checksum now mismatches
  t->write_all(frame.data(), frame.size());
  expect_status(*t, Status::malformed);
}

TEST_F(ServeMalformedTest, StatsFrameByteFlipRejectedThenAnswered) {
  // The SERVER_STATS introspection frame gets no special-case framing:
  // a flipped payload byte fails the checksum like any other request,
  // and the same connection then serves the intact frame.
  auto t = connect();
  auto frame = seal_frame(
      encode_request({11, {Probe::server_stats(StatsFormat::json)}}));
  auto corrupt = frame;
  corrupt[24] ^= 0x01; // flip a bit inside the probe words
  t->write_all(corrupt.data(), corrupt.size());
  expect_status(*t, Status::malformed);
  t->write_all(frame.data(), frame.size());
  const auto resp = read_frame(*t, std::chrono::milliseconds(5000));
  ASSERT_TRUE(resp.has_value());
  const Response r = decode_response(*resp);
  EXPECT_EQ(r.status, Status::ok);
  EXPECT_EQ(r.id, 11u);
  ASSERT_EQ(r.results.size(), 1u);
  const std::string text = decode_stats_text(r.results[0].words);
  EXPECT_NE(text.find("kronlab-stats-v1"), std::string::npos);
}

TEST_F(ServeMalformedTest, StatsProbeBadFormatGetsTypedStatus) {
  // An unknown snapshot format is a bad argument, not a protocol error:
  // the frame is well-formed, so the probe gets a typed per-probe status
  // and the connection lives on.
  auto t = connect();
  Probe p;
  p.op = Op::server_stats;
  p.args = {99}; // no such StatsFormat
  const auto frame = seal_frame(encode_request({12, {p}}));
  t->write_all(frame.data(), frame.size());
  const auto resp = read_frame(*t, std::chrono::milliseconds(5000));
  ASSERT_TRUE(resp.has_value());
  const Response r = decode_response(*resp);
  EXPECT_EQ(r.id, 12u);
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_EQ(r.results[0].status, Status::bad_probe);
}

TEST_F(ServeMalformedTest, ZeroLengthBodyIsMalformedNotFatal) {
  auto t = connect();
  // A syntactically sealed frame with an empty payload: the envelope is
  // fine, but the request grammar (id + probe count) cannot be read.
  const auto frame = seal_frame({});
  t->write_all(frame.data(), frame.size());
  expect_status(*t, Status::malformed);
  assert_still_serving();
}

TEST_F(ServeMalformedTest, OversizedBatchCountIsMalformed) {
  auto t = connect();
  // Payload claims max_batch_probes+1 probes; grammar rejects before any
  // allocation proportional to the count.
  const auto frame = seal_frame(
      {1, static_cast<word_t>(max_batch_probes) + 1, 6, 0});
  t->write_all(frame.data(), frame.size());
  expect_status(*t, Status::malformed);
  assert_still_serving();
}

TEST_F(ServeMalformedTest, TruncatedProbeBodyIsMalformed) {
  auto t = connect();
  // Claims 2 probes but carries only one.
  const auto frame = seal_frame({1, 2, 6, 0});
  t->write_all(frame.data(), frame.size());
  expect_status(*t, Status::malformed);
}

TEST_F(ServeMalformedTest, TruncatedFrameThenDisconnectLeaksNothing) {
  {
    auto t = connect();
    const auto frame = good_frame();
    // First half of a frame, then vanish mid-header/mid-payload.
    t->write_all(frame.data(), frame.size() / 2);
    t->shutdown();
  }
  assert_still_serving();
  // The half-frame never became a request.
  EXPECT_EQ(server_->stats().frames, 1u); // assert_still_serving's only
}

TEST_F(ServeMalformedTest, GarbageStreamNeverCrashes) {
  // Deterministic splitmix-style garbage, several connections' worth.
  std::uint64_t state = 0xDEADBEEF;
  const auto next = [&state] {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  for (int round = 0; round < 8; ++round) {
    auto t = connect();
    std::vector<std::uint8_t> junk(64 + (next() % 256));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(next());
    t->write_all(junk.data(), junk.size());
    expect_close(*t); // garbage never matches the magic
  }
  assert_still_serving();
}

TEST_F(ServeMalformedTest, EveryByteFlipIsStructuredOrClose) {
  // Exhaustive single-byte-flip fuzz over one well-formed frame: every
  // mutation must produce a structured response or a clean close on a
  // live server — never a crash, never a wedged connection.
  const auto base = good_frame();
  for (std::size_t i = 0; i < base.size(); ++i) {
    auto frame = base;
    frame[i] ^= 0xA5;
    auto t = connect();
    t->write_all(frame.data(), frame.size());
    t->shutdown_write(); // no more requests; drain what the server says
    // Whatever arrives must parse as a protocol response.  The loop ends
    // on EOF (server closed) or a short quiet timeout (server answered
    // and kept the connection, e.g. a checksum-only corruption).
    for (int guard = 0; guard < 8; ++guard) {
      std::optional<std::vector<word_t>> resp;
      try {
        resp = read_frame(*t, std::chrono::milliseconds(100));
      } catch (const timeout_error&) {
        break; // server is idle, connection intact — fine
      } catch (const error& e) {
        FAIL() << "byte " << i << ": transport error: " << e.what();
      }
      if (!resp) break;
      EXPECT_NO_THROW((void)decode_response(*resp)) << "byte " << i;
    }
  }
  assert_still_serving();
}

TEST_F(ServeMalformedTest, UnsealFrameMirrorsStreamErrors) {
  // unseal_frame is the in-memory twin of the reader path: same taxonomy.
  const auto base = good_frame();
  auto bad_magic = base;
  bad_magic[3] = '?';
  EXPECT_THROW((void)unseal_frame(bad_magic), protocol_error);

  auto bad_sum = base;
  bad_sum[bad_sum.size() - 2] ^= 0x01;
  EXPECT_THROW((void)unseal_frame(bad_sum), checksum_error);

  auto truncated = base;
  truncated.pop_back();
  EXPECT_THROW((void)unseal_frame(truncated), protocol_error);

  EXPECT_THROW((void)unseal_frame({}), protocol_error);
}

} // namespace
} // namespace kronlab::serve
