// Tests for the k-wing (bitruss) decomposition.

#include <gtest/gtest.h>

#include <algorithm>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/wing.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::graph {
namespace {

TEST(Wing, TreesAreZeroWing) {
  const auto d = wing_decomposition(gen::star_graph(5));
  EXPECT_EQ(d.max_wing, 0);
  for (const count_t w : d.wing.vals()) EXPECT_EQ(w, 0);
}

TEST(Wing, C4IsOneWing) {
  const auto d = wing_decomposition(gen::cycle_graph(4));
  EXPECT_EQ(d.max_wing, 1);
  for (const count_t w : d.wing.vals()) EXPECT_EQ(w, 1);
}

TEST(Wing, LongEvenCyclesAreZeroWing) {
  const auto d = wing_decomposition(gen::cycle_graph(8));
  EXPECT_EQ(d.max_wing, 0);
}

TEST(Wing, CompleteBipartiteUniformWing) {
  // K_{m,n} is edge-transitive: every edge has wing number
  // (m−1)(n−1) — its butterfly count, since nothing can be peeled first.
  const auto d = wing_decomposition(gen::complete_bipartite(3, 4));
  EXPECT_EQ(d.max_wing, 2 * 3);
  for (const count_t w : d.wing.vals()) EXPECT_EQ(w, 6);
}

TEST(Wing, HierarchyIsMonotone) {
  // k-wing edge sets are nested.
  Rng rng(55);
  const auto g = gen::random_bipartite(8, 8, 30, rng);
  const auto d = wing_decomposition(g);
  for (count_t k = 1; k <= d.max_wing; ++k) {
    const auto upper = d.wing_edges(k);
    const auto lower = d.wing_edges(k - 1);
    EXPECT_LE(upper.size(), lower.size());
    for (const auto& e : upper) {
      EXPECT_NE(std::find(lower.begin(), lower.end(), e), lower.end());
    }
  }
}

TEST(Wing, WingNumberNeverExceedsSupport) {
  Rng rng(56);
  const auto g = gen::random_bipartite(9, 9, 35, rng);
  const auto d = wing_decomposition(g);
  const auto sq = edge_butterflies(g);
  for (index_t i = 0; i < g.nrows(); ++i) {
    const auto cols = d.wing.row_cols(i);
    const auto wv = d.wing.row_vals(i);
    const auto sv = sq.row_vals(i);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      EXPECT_LE(wv[e], sv[e]);
    }
  }
}

TEST(Wing, KWingSubgraphSatisfiesDefinition) {
  // Every edge of the k-wing has ≥ k butterflies inside the k-wing.
  Rng rng(57);
  const auto g = gen::random_bipartite(8, 10, 36, rng);
  const auto d = wing_decomposition(g);
  for (count_t k = 1; k <= d.max_wing; ++k) {
    const auto edges = d.wing_edges(k);
    if (edges.empty()) continue;
    const auto sub = from_undirected_edges(g.nrows(), edges);
    const auto sq = edge_butterflies(sub);
    for (const auto& [i, j] : edges) {
      EXPECT_GE(sq.at(i, j), k) << "edge (" << i << "," << j << ") at k="
                                << k;
    }
  }
}

class WingOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(WingOracleTest, PeelingMatchesNaiveFixpoint) {
  Rng rng(600 + static_cast<std::uint64_t>(GetParam()));
  const auto g = gen::random_bipartite(6, 7, 10 + 2 * GetParam(), rng);
  const auto fast = wing_decomposition(g);
  const auto slow = wing_decomposition_naive(g);
  EXPECT_EQ(fast.wing, slow.wing);
  EXPECT_EQ(fast.max_wing, slow.max_wing);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WingOracleTest, ::testing::Range(0, 10));

TEST(Wing, RejectsNonBipartiteAndLoops) {
  EXPECT_THROW(wing_decomposition(gen::complete_graph(3)), domain_error);
  const auto looped = grb::add_identity(gen::path_graph(3));
  EXPECT_THROW(wing_decomposition(looped), domain_error);
}

TEST(Wing, PaperObservationProductsHaveNoCleanWingPlant) {
  // §I/§III-B: products acquire butterflies everywhere, so even when the
  // factors are square-free (wing number 0 on every edge), the product's
  // wing decomposition is non-trivial — one cannot plant wing ground
  // truth through the factors.
  const auto a = gen::double_star(2, 2);
  const auto b = gen::double_star(2, 2);
  ASSERT_EQ(wing_decomposition(a).max_wing, 0);
  const auto kp = kron::BipartiteKronecker::raw(a, b);
  const auto d = wing_decomposition(kp.materialize());
  EXPECT_GT(d.max_wing, 0);
}

} // namespace
} // namespace kronlab::graph
