// Tests for graph construction, predicates and basic statistics.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/graph/stats.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::graph {
namespace {

TEST(Graph, FromUndirectedEdgesSymmetrizesAndDedups) {
  const auto a = from_undirected_edges(4, {{0, 1}, {1, 0}, {2, 3}});
  EXPECT_EQ(a.nnz(), 4); // duplicate (0,1)/(1,0) collapses
  EXPECT_TRUE(is_undirected_adjacency(a));
  EXPECT_EQ(num_edges(a), 2);
}

TEST(Graph, FromUndirectedEdgesRejectsOutOfRange) {
  EXPECT_THROW(from_undirected_edges(2, {{0, 2}}), invalid_argument);
  EXPECT_THROW(from_undirected_edges(2, {{-1, 0}}), invalid_argument);
}

TEST(Graph, SelfLoopCountsAsOneEdge) {
  const auto a = from_undirected_edges(3, {{0, 0}, {1, 2}});
  EXPECT_EQ(num_self_loops(a), 1);
  EXPECT_EQ(num_edges(a), 2);
  EXPECT_EQ(degrees(a)[0], 1);
}

TEST(Graph, RequireUndirectedThrowsOnDirected) {
  grb::Coo<count_t> coo(2, 2);
  coo.push(0, 1, 1); // missing reverse edge
  const auto a = Adjacency::from_coo(coo);
  EXPECT_THROW(require_undirected(a, "test"), domain_error);
}

TEST(Graph, RequireUndirectedThrowsOnNonBoolean) {
  grb::Coo<count_t> coo(2, 2);
  coo.push(0, 1, 2);
  coo.push(1, 0, 2);
  const auto a = Adjacency::from_coo(coo);
  EXPECT_THROW(require_undirected(a, "test"), domain_error);
}

TEST(Graph, DegreesAndTwoHopWalks) {
  const auto p4 = gen::path_graph(4);
  EXPECT_EQ(degrees(p4).data(), (std::vector<count_t>{1, 2, 2, 1}));
  // w²_i = Σ_{j∈N(i)} d_j.
  EXPECT_EQ(two_hop_walks(p4).data(), (std::vector<count_t>{2, 3, 3, 2}));
  EXPECT_EQ(max_degree(p4), 2);
}

TEST(Graph, StripSelfLoops) {
  const auto a = from_undirected_edges(3, {{0, 0}, {0, 1}, {1, 2}});
  const auto b = strip_self_loops(a);
  EXPECT_EQ(num_self_loops(b), 0);
  EXPECT_EQ(num_edges(b), 2);
  EXPECT_TRUE(b.has(0, 1));
}

TEST(Stats, DegreeHistogram) {
  const auto s = gen::star_graph(5);
  const auto h = degree_histogram(s);
  EXPECT_EQ(h.at(1), 5);
  EXPECT_EQ(h.at(5), 1);
}

TEST(Stats, DegreeSummaryOnStar) {
  const auto s = gen::star_graph(9);
  const auto sum = degree_summary(s);
  EXPECT_EQ(sum.max_degree, 9);
  EXPECT_DOUBLE_EQ(sum.mean_degree, 1.8);
  EXPECT_EQ(sum.median_degree, 1);
  EXPECT_GT(sum.gini, 0.3); // a star is maximally skewed
}

TEST(Stats, DegreeSummaryOnRegularGraphHasZeroGini) {
  const auto c = gen::cycle_graph(6);
  const auto sum = degree_summary(c);
  EXPECT_EQ(sum.max_degree, 2);
  EXPECT_NEAR(sum.gini, 0.0, 1e-12);
}

TEST(Stats, DegreeBinnedAggregates) {
  const auto s = gen::star_graph(3); // hub degree 3, leaves degree 1
  grb::Vector<count_t> vals(std::vector<count_t>{10, 1, 2, 3});
  const auto bins = degree_binned(s, vals);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].degree, 1);
  EXPECT_EQ(bins[0].vertices, 3);
  EXPECT_DOUBLE_EQ(bins[0].mean, 2.0);
  EXPECT_EQ(bins[0].min, 1);
  EXPECT_EQ(bins[0].max, 3);
  EXPECT_EQ(bins[1].degree, 3);
  EXPECT_EQ(bins[1].vertices, 1);
  EXPECT_DOUBLE_EQ(bins[1].mean, 10.0);
}

TEST(Stats, DegreeBinnedRejectsSizeMismatch) {
  const auto s = gen::star_graph(3);
  EXPECT_THROW(degree_binned(s, grb::Vector<count_t>(2)),
               invalid_argument);
}

} // namespace
} // namespace kronlab::graph
