// Negative-compile fixture: accessing a GUARDED_BY field without holding
// its mutex MUST fail a Clang `-Werror -Wthread-safety` build.  The ctest
// wrapper (tests/CMakeLists.txt, clang only) compiles this file with
// -fsyntax-only and asserts a non-zero exit — proving the analysis is
// actually armed, not silently compiled away.
//
// Keep this file out of every real target: it is intentionally wrong.

#include "kronlab/common/sync.hpp"

namespace {

class Account {
public:
  void deposit(int amount) {
    balance_ += amount; // BAD: writes balance_ without holding mu_
  }

  int balance() const { return 0; }

private:
  kronlab::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

} // namespace

int main() {
  Account a;
  a.deposit(1);
  return a.balance();
}
