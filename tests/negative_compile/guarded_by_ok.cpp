// Positive control for the negative-compile check: the same shape as
// guarded_by_violation.cpp but with the lock held.  This file MUST compile
// cleanly under `-Werror -Wthread-safety -Wthread-safety-beta`; if it ever
// fails, the violation fixture's failure is environmental (wrong flags,
// broken include path), not proof the analysis caught the bug.

#include "kronlab/common/sync.hpp"

namespace {

class Account {
public:
  void deposit(int amount) {
    kronlab::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() {
    kronlab::MutexLock lock(mu_);
    return balance_;
  }

private:
  kronlab::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

} // namespace

int main() {
  Account a;
  a.deposit(1);
  return a.balance() == 1 ? 0 : 1;
}
