// Tests for the binary CSR format (factor persistence).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/unicode_like.hpp"
#include "kronlab/grb/binary_io.hpp"

namespace kronlab::grb {
namespace {

TEST(BinaryIo, RoundTripsRandomFactor) {
  Rng rng(3);
  const auto a = gen::random_bipartite(9, 11, 40, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, a);
  EXPECT_EQ(read_binary(buf), a);
}

TEST(BinaryIo, RoundTripsEmptyAndCanonical) {
  {
    const Csr<count_t> empty;
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    write_binary(buf, empty);
    EXPECT_EQ(read_binary(buf), empty);
  }
  {
    const auto u = gen::unicode_like();
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    write_binary(buf, u);
    EXPECT_EQ(read_binary(buf), u);
  }
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = "/tmp/kronlab_test_binary.krn";
  Rng rng(4);
  const auto a = gen::preferential_bipartite(8, 8, 20, rng);
  write_binary_file(path, a);
  EXPECT_EQ(read_binary_file(path), a);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << "NOTACSR1xxxxxxxxxxxxxxxx";
  EXPECT_THROW(read_binary(buf), io_error);
}

TEST(BinaryIo, RejectsTruncation) {
  Rng rng(5);
  const auto a = gen::random_bipartite(5, 5, 12, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, a);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << data;
  EXPECT_THROW(read_binary(cut), io_error);
}

TEST(BinaryIo, RejectsCorruptStructure) {
  Rng rng(6);
  const auto a = gen::random_bipartite(4, 4, 8, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, a);
  std::string data = buf.str();
  // Smash the high byte of col_idx[0] (offset: magic 8 + header 24 +
  // row_ptr (nrows+1)·8) so the column lands far out of range.
  const std::size_t col0 =
      8 + 24 + static_cast<std::size_t>(a.nrows() + 1) * 8;
  data[col0 + 7] = '\x7f';
  std::stringstream bad(std::ios::in | std::ios::out | std::ios::binary);
  bad << data;
  EXPECT_THROW(read_binary(bad), io_error);
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(read_binary_file("/nonexistent/factor.krn"), io_error);
}

namespace {

std::string serialized(const Csr<count_t>& a) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, a);
  return buf.str();
}

std::stringstream as_stream(std::string data) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << data;
  return buf;
}

/// A stream holding just a magic and a header — for header-validation
/// tests that must fail before any array is read.
std::stringstream header_only(const char* magic, std::int64_t nrows,
                              std::int64_t ncols, std::int64_t nnz) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf.write(magic, 8);
  const std::int64_t header[3] = {nrows, ncols, nnz};
  buf.write(reinterpret_cast<const char*>(header), sizeof header);
  return buf;
}

} // namespace

TEST(BinaryIo, ChecksumDetectsValueBitFlip) {
  Rng rng(7);
  const auto a = gen::random_bipartite(6, 6, 14, rng);
  std::string data = serialized(a);
  // Flip one bit in the last value word — structurally still a valid CSR
  // (values are unconstrained), so only the checksum can catch it.
  data[data.size() - 9] ^= 0x01;
  auto bad = as_stream(data);
  try {
    (void)read_binary(bad);
    FAIL() << "corrupt value accepted";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(BinaryIo, RejectsLegacyV1ByDefault) {
  // A checksum-less file read by default would silently defeat the
  // corruption-detection story — the refusal must be typed and must name
  // the opt-in escape hatch.
  Rng rng(8);
  const auto a = gen::random_bipartite(7, 5, 16, rng);
  std::string data = serialized(a);
  data[7] = '1';                   // KRNLCSR2 -> KRNLCSR1
  data.resize(data.size() - 8);    // V1 carries no trailing checksum
  auto legacy = as_stream(data);
  try {
    (void)read_binary(legacy);
    FAIL() << "legacy V1 file accepted without opt-in";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("allow_legacy_v1"),
              std::string::npos)
        << "refusal must name the escape hatch: " << e.what();
  }
}

TEST(BinaryIo, AcceptsLegacyChecksumlessV1WhenOptedIn) {
  Rng rng(8);
  const auto a = gen::random_bipartite(7, 5, 16, rng);
  std::string data = serialized(a);
  data[7] = '1';                   // KRNLCSR2 -> KRNLCSR1
  data.resize(data.size() - 8);    // V1 carries no trailing checksum
  ReadOptions opt;
  opt.allow_legacy_v1 = true;
  auto legacy = as_stream(data);
  EXPECT_EQ(read_binary(legacy, opt), a);
  // The opt-in widens acceptance only to V1: V2 files still checksum.
  auto modern = as_stream(serialized(a));
  EXPECT_EQ(read_binary(modern, opt), a);
  std::string corrupt = serialized(a);
  corrupt[24] = static_cast<char>(corrupt[24] ^ 1);
  auto bad = as_stream(corrupt);
  EXPECT_THROW((void)read_binary(bad, opt), io_error);
}

TEST(BinaryIo, RejectsNegativeDimensions) {
  auto buf = header_only("KRNLCSR2", -1, 4, 0);
  EXPECT_THROW(read_binary(buf), io_error);
}

TEST(BinaryIo, RejectsImplausibleDimensions) {
  // A few corrupt bytes must not trigger a terabyte allocation.
  auto buf = header_only("KRNLCSR2", std::int64_t{1} << 41, 4, 0);
  EXPECT_THROW(read_binary(buf), io_error);
}

TEST(BinaryIo, RejectsNnzExceedingMatrixCapacity) {
  auto buf = header_only("KRNLCSR2", 2, 2, 5); // nnz > nrows*ncols
  try {
    (void)read_binary(buf);
    FAIL() << "overfull header accepted";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Snapshot envelope (the distributed checkpoint format).

TEST(Snapshot, RoundTripsMetaAndPayload) {
  Rng rng(9);
  SnapshotEnvelope snap;
  snap.meta = {1, 42, -7, 1'000'000};
  snap.payload = gen::random_bipartite(5, 9, 20, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_snapshot(buf, snap);
  const auto back = read_snapshot(buf);
  EXPECT_EQ(back.meta, snap.meta);
  EXPECT_EQ(back.payload, snap.payload);
}

TEST(Snapshot, FileRoundTripIsAtomic) {
  const std::string path = "/tmp/kronlab_test_snapshot.ckpt";
  Rng rng(10);
  SnapshotEnvelope snap;
  snap.meta = {1, 2, 3};
  snap.payload = gen::random_bipartite(4, 4, 9, rng);
  write_snapshot_file(path, snap);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind after rename";
  const auto back = read_snapshot_file(path);
  EXPECT_EQ(back.meta, snap.meta);
  EXPECT_EQ(back.payload, snap.payload);
  std::remove(path.c_str());
}

TEST(Snapshot, MetaCorruptionIsDetected) {
  SnapshotEnvelope snap;
  snap.meta = {5, 6, 7};
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_snapshot(buf, snap);
  std::string data = buf.str();
  data[8 + 8 + 4] ^= 0x10; // flip a bit inside meta[0]
  auto bad = as_stream(data);
  try {
    (void)read_snapshot(bad);
    FAIL() << "corrupt metadata accepted";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("metadata checksum"),
              std::string::npos);
  }
}

TEST(Snapshot, PayloadCorruptionIsDetected) {
  Rng rng(11);
  SnapshotEnvelope snap;
  snap.meta = {1};
  snap.payload = gen::random_bipartite(4, 4, 10, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_snapshot(buf, snap);
  std::string data = buf.str();
  data[data.size() - 9] ^= 0x01; // inside the embedded CSR's last value
  auto bad = as_stream(data);
  EXPECT_THROW(read_snapshot(bad), io_error);
}

TEST(Snapshot, RejectsTruncationAndBadMagic) {
  SnapshotEnvelope snap;
  snap.meta = {1, 2};
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_snapshot(buf, snap);
  std::string data = buf.str();
  data.resize(20); // cut inside the metadata
  auto cut = as_stream(data);
  EXPECT_THROW(read_snapshot(cut), io_error);
  auto wrong = as_stream("KRNLCSR2whatever........");
  EXPECT_THROW(read_snapshot(wrong), io_error);
}

TEST(Snapshot, RejectsImplausibleMetaLength) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf.write("KRNLCKP1", 8);
  const std::int64_t n_meta = std::int64_t{1} << 30;
  buf.write(reinterpret_cast<const char*>(&n_meta), sizeof n_meta);
  EXPECT_THROW(read_snapshot(buf), io_error);
}

} // namespace
} // namespace kronlab::grb
