// Tests for the binary CSR format (factor persistence).

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/unicode_like.hpp"
#include "kronlab/grb/binary_io.hpp"

namespace kronlab::grb {
namespace {

TEST(BinaryIo, RoundTripsRandomFactor) {
  Rng rng(3);
  const auto a = gen::random_bipartite(9, 11, 40, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, a);
  EXPECT_EQ(read_binary(buf), a);
}

TEST(BinaryIo, RoundTripsEmptyAndCanonical) {
  {
    const Csr<count_t> empty;
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    write_binary(buf, empty);
    EXPECT_EQ(read_binary(buf), empty);
  }
  {
    const auto u = gen::unicode_like();
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    write_binary(buf, u);
    EXPECT_EQ(read_binary(buf), u);
  }
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = "/tmp/kronlab_test_binary.krn";
  Rng rng(4);
  const auto a = gen::preferential_bipartite(8, 8, 20, rng);
  write_binary_file(path, a);
  EXPECT_EQ(read_binary_file(path), a);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << "NOTACSR1xxxxxxxxxxxxxxxx";
  EXPECT_THROW(read_binary(buf), io_error);
}

TEST(BinaryIo, RejectsTruncation) {
  Rng rng(5);
  const auto a = gen::random_bipartite(5, 5, 12, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, a);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << data;
  EXPECT_THROW(read_binary(cut), io_error);
}

TEST(BinaryIo, RejectsCorruptStructure) {
  Rng rng(6);
  const auto a = gen::random_bipartite(4, 4, 8, rng);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, a);
  std::string data = buf.str();
  // Smash the high byte of col_idx[0] (offset: magic 8 + header 24 +
  // row_ptr (nrows+1)·8) so the column lands far out of range.
  const std::size_t col0 =
      8 + 24 + static_cast<std::size_t>(a.nrows() + 1) * 8;
  data[col0 + 7] = '\x7f';
  std::stringstream bad(std::ios::in | std::ios::out | std::ios::binary);
  bad << data;
  EXPECT_THROW(read_binary(bad), io_error);
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(read_binary_file("/nonexistent/factor.krn"), io_error);
}

} // namespace
} // namespace kronlab::grb
