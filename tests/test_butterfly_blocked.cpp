// Randomized cross-checks for the degree-ordered, cache-blocked counting
// kernels (graph/blocked.*): blocked vs retained reference kernels vs the
// factored ground truth (Thms 3–5), at every pool width the CI sanitizer
// jobs exercise.  The blocked kernels are the repo's default dispatch, so
// any relabeling bug (wrong mirror slot, cursor drift, rank collision) or
// scheduling bug (scratch leakage between chunks, dropped chunk) breaks
// bit-exact agreement here.

#include <gtest/gtest.h>

#include <vector>

#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/rmat.hpp"
#include "kronlab/graph/blocked.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"
#include "kronlab/parallel/thread_pool.hpp"

namespace kronlab {
namespace {

using graph::Adjacency;

Adjacency seeded_graph(int id) {
  Rng rng(7100 + static_cast<std::uint64_t>(id));
  switch (id % 6) {
    case 0: return gen::connected_random_bipartite(20, 24, 90, rng);
    case 1: return gen::preferential_bipartite(30, 36, 180, rng);
    case 2: return gen::random_bipartite(24, 24, 110, rng);
    case 3: return gen::random_nonbipartite_connected(40, 140, rng);
    case 4: {
      gen::RmatParams p;
      p.scale_u = 5;
      p.scale_w = 5;
      p.edges = 160;
      return gen::rmat_bipartite(p, rng);
    }
    default: return gen::preferential_bipartite(48, 40, 260, rng);
  }
}

// -------------------------------------------------------------------------
// Relabeling layer: DegreeOrder must be a degree-sorted permutation whose
// entry map really is the CSR mirror involution.

TEST(DegreeOrder, RanksSortByDegreeAndRoundTrip) {
  for (int id = 0; id < 6; ++id) {
    const auto a = seeded_graph(id);
    const graph::DegreeOrder ord(a);
    const auto& g = ord.relabeled;
    ASSERT_EQ(g.nrows(), a.nrows());
    ASSERT_EQ(g.nnz(), a.nnz());
    for (index_t c = 0; c + 1 < g.nrows(); ++c) {
      // Rank order is non-increasing degree.
      ASSERT_GE(g.row_cols(c).size(), g.row_cols(c + 1).size())
          << "graph " << id << " rank " << c;
    }
    for (index_t v = 0; v < a.nrows(); ++v) {
      ASSERT_EQ(ord.orig[ord.rank[v]], v) << "graph " << id;
      ASSERT_EQ(g.row_cols(ord.rank[v]).size(), a.row_cols(v).size())
          << "graph " << id;
    }
  }
}

TEST(DegreeOrder, EntryMapScattersRankEntriesToOriginalOffsets) {
  for (int id = 0; id < 6; ++id) {
    const auto a = seeded_graph(id);
    const graph::DegreeOrder ord(a, /*with_entry_map=*/true);
    const auto& g = ord.relabeled;
    ASSERT_EQ(ord.entry_map.size(), static_cast<std::size_t>(g.nnz()));

    // Original row of every original stored-entry offset.
    const auto& arp = a.row_ptr();
    std::vector<index_t> orig_row(static_cast<std::size_t>(a.nnz()));
    for (index_t u = 0; u < a.nrows(); ++u) {
      for (offset_t p = arp[static_cast<std::size_t>(u)];
           p < arp[static_cast<std::size_t>(u) + 1]; ++p) {
        orig_row[static_cast<std::size_t>(p)] = u;
      }
    }

    // entry_map must be a bijection: relabeled entry (r, c) ↦ the original
    // stored entry (orig[r], orig[c]).
    std::vector<char> seen(static_cast<std::size_t>(a.nnz()), 0);
    const auto& grp = g.row_ptr();
    for (index_t r = 0; r < g.nrows(); ++r) {
      for (offset_t p = grp[static_cast<std::size_t>(r)];
           p < grp[static_cast<std::size_t>(r) + 1]; ++p) {
        const auto q = static_cast<std::size_t>(
            ord.entry_map[static_cast<std::size_t>(p)]);
        ASSERT_FALSE(seen[q]) << "graph " << id << " entry " << p;
        seen[q] = 1;
        ASSERT_EQ(orig_row[q], ord.orig[static_cast<std::size_t>(r)])
            << "graph " << id << " entry " << p;
        ASSERT_EQ(a.col_idx()[q],
                  ord.orig[static_cast<std::size_t>(
                      g.col_idx()[static_cast<std::size_t>(p)])])
            << "graph " << id << " entry " << p;
      }
    }
  }
}

// -------------------------------------------------------------------------
// Kernel layer: blocked == reference, bit for bit, at every pool width.

class BlockedWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockedWidthTest, VertexBlockedMatchesReference) {
  ThreadPool pool(GetParam());
  ScopedPoolOverride guard(pool);
  for (int id = 0; id < 12; ++id) {
    const auto a = seeded_graph(id);
    const auto ref = graph::vertex_butterflies_reference(a);
    const auto blk = graph::vertex_butterflies_blocked(a);
    ASSERT_EQ(ref, blk) << "graph " << id << " width " << GetParam();
  }
}

TEST_P(BlockedWidthTest, EdgeBlockedMatchesReference) {
  ThreadPool pool(GetParam());
  ScopedPoolOverride guard(pool);
  for (int id = 0; id < 12; ++id) {
    const auto a = seeded_graph(id);
    const auto ref = graph::edge_butterflies_reference(a);
    const auto blk = graph::edge_butterflies_blocked(a);
    ASSERT_EQ(ref.nrows(), blk.nrows()) << "graph " << id;
    for (index_t i = 0; i < ref.nrows(); ++i) {
      const auto rc = ref.row_cols(i);
      const auto bc = blk.row_cols(i);
      const auto rv = ref.row_vals(i);
      const auto bv = blk.row_vals(i);
      ASSERT_EQ(rc.size(), bc.size()) << "graph " << id << " row " << i;
      for (std::size_t e = 0; e < rc.size(); ++e) {
        ASSERT_EQ(rc[e], bc[e]) << "graph " << id << " row " << i;
        ASSERT_EQ(rv[e], bv[e])
            << "graph " << id << " edge (" << i << "," << rc[e]
            << ") width " << GetParam();
      }
    }
  }
}

TEST_P(BlockedWidthTest, DispatchersUseBlockedAndStayExact) {
  // The public entry points dispatch to the blocked kernels; they must
  // still satisfy the Def. 8 / Def. 9 identity s = ½ ◇ 1.
  ThreadPool pool(GetParam());
  ScopedPoolOverride guard(pool);
  for (int id = 0; id < 6; ++id) {
    const auto a = seeded_graph(id);
    const auto s = graph::vertex_butterflies(a);
    const auto row_sums = grb::reduce_rows(graph::edge_butterflies(a));
    for (index_t i = 0; i < a.nrows(); ++i) {
      ASSERT_EQ(2 * s[i], row_sums[i]) << "graph " << id << " vertex " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PoolWidths, BlockedWidthTest,
                         ::testing::Values(1, 2, 4, 8));

// -------------------------------------------------------------------------
// Ground-truth layer: the paper's mutual-validation loop (Thms 3–5 vs the
// blocked direct counters on materialized products) at several widths.

TEST(BlockedGroundTruth, FactoredTruthMatchesBlockedCountersAcrossWidths) {
  Rng rng(88);
  const auto a = gen::connected_random_bipartite(6, 7, 20, rng);
  const auto b = gen::connected_random_bipartite(5, 6, 16, rng);
  const auto kp = kron::BipartiteKronecker::assumption_ii(a, b);
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(width);
    ScopedPoolOverride guard(pool);
    const auto check = kron::verify_ground_truth(kp);
    EXPECT_TRUE(check.vertex_ok) << "width " << width;
    EXPECT_TRUE(check.edge_ok) << "width " << width;
    EXPECT_TRUE(check.global_ok)
        << "width " << width << ": factored " << check.global_factored
        << " vs direct " << check.global_direct;
    EXPECT_GT(check.edges_checked, 0) << "width " << width;
  }
}

TEST(BlockedGroundTruth, RawLoopyProductStaysExact) {
  // M = A + I_A exercises the loop-aware branch of the factored forms and
  // a denser product than the loop-free cases above.
  Rng rng(89);
  const auto a = gen::connected_random_bipartite(5, 5, 14, rng);
  const auto b = gen::connected_random_bipartite(6, 5, 18, rng);
  const auto kp =
      kron::BipartiteKronecker::raw(grb::add_identity(a), b);
  const auto check = kron::verify_ground_truth(kp);
  EXPECT_TRUE(check.ok()) << "factored " << check.global_factored
                          << " vs direct " << check.global_direct;
}

} // namespace
} // namespace kronlab
