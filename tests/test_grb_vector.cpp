// Tests for grb::Vector and its element-wise algebra.

#include <gtest/gtest.h>

#include "kronlab/grb/vector.hpp"

namespace kronlab::grb {
namespace {

TEST(Vector, ConstructionAndFill) {
  const Vector<count_t> v(4, 7);
  EXPECT_EQ(v.size(), 4);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 7);
  EXPECT_THROW(Vector<count_t>(-1), invalid_argument);
}

TEST(Vector, OnesZerosCardinal) {
  EXPECT_EQ(reduce(ones<count_t>(5)), 5);
  EXPECT_EQ(reduce(zeros<count_t>(5)), 0);
  const auto e2 = cardinal<count_t>(4, 2);
  EXPECT_EQ(e2[2], 1);
  EXPECT_EQ(reduce(e2), 1);
  EXPECT_THROW(cardinal<count_t>(3, 3), invalid_argument);
}

TEST(Vector, ElementwiseAlgebra) {
  const Vector<count_t> a(std::vector<count_t>{1, 2, 3});
  const Vector<count_t> b(std::vector<count_t>{4, 5, 6});
  EXPECT_EQ(ewise_add(a, b).data(), (std::vector<count_t>{5, 7, 9}));
  EXPECT_EQ(ewise_sub(b, a).data(), (std::vector<count_t>{3, 3, 3}));
  EXPECT_EQ(ewise_mult(a, b).data(), (std::vector<count_t>{4, 10, 18}));
  EXPECT_EQ(scale(a, count_t{3}).data(), (std::vector<count_t>{3, 6, 9}));
  EXPECT_EQ(shift(a, count_t{1}).data(), (std::vector<count_t>{2, 3, 4}));
  EXPECT_EQ(dot(a, b), 32);
}

TEST(Vector, ShapeMismatchThrows) {
  const Vector<count_t> a(2), b(3);
  EXPECT_THROW(ewise_add(a, b), invalid_argument);
  EXPECT_THROW(ewise_mult(a, b), invalid_argument);
  EXPECT_THROW(dot(a, b), invalid_argument);
}

TEST(Vector, KroneckerProductLayout) {
  const Vector<count_t> a(std::vector<count_t>{2, 3});
  const Vector<count_t> b(std::vector<count_t>{5, 7, 11});
  const auto k = kron(a, b);
  // (a ⊗ b)[i·|b| + j] = a[i]·b[j] — the γ index map.
  EXPECT_EQ(k.data(),
            (std::vector<count_t>{10, 14, 22, 15, 21, 33}));
}

TEST(Vector, KroneckerReduceFactorizes) {
  const Vector<count_t> a(std::vector<count_t>{1, 2, 3});
  const Vector<count_t> b(std::vector<count_t>{4, 5});
  EXPECT_EQ(reduce(kron(a, b)), reduce(a) * reduce(b));
}

TEST(Vector, EqualityAndMutation) {
  Vector<count_t> a(3, 1);
  Vector<count_t> b(3, 1);
  EXPECT_EQ(a, b);
  a[1] = 9;
  EXPECT_NE(a, b);
}

} // namespace
} // namespace kronlab::grb
