// Randomized property sweeps: for a wide randomized family of factor pairs
// (seeded, reproducible), every structural invariant the paper relies on
// must hold simultaneously.  This is the belt-and-braces layer above the
// per-theorem tests.

#include <gtest/gtest.h>

#include <algorithm>

#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/graph/triangles.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/connectivity.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/oracle.hpp"
#include "kronlab/kron/stream.hpp"

namespace kronlab {
namespace {

using kron::BipartiteKronecker;

struct Scenario {
  std::uint64_t seed;
  bool self_loop_mode; // false: Assumption 1(i); true: Assumption 1(ii)
};

class RandomProductProperty : public ::testing::TestWithParam<int> {
protected:
  BipartiteKronecker make() const {
    const auto param = static_cast<std::uint64_t>(GetParam());
    Rng rng(0xABCD + param);
    const bool self_loops = (param % 2 == 1);
    const index_t nu = 3 + static_cast<index_t>(rng.uniform(0, 2));
    const index_t nw = 3 + static_cast<index_t>(rng.uniform(0, 2));
    const count_t mb =
        std::min<count_t>(nu * nw, nu + nw - 1 + rng.uniform(1, 5));
    auto b = gen::connected_random_bipartite(nu, nw, mb, rng);
    if (self_loops) {
      const index_t au = 3 + static_cast<index_t>(rng.uniform(0, 1));
      const index_t aw = 3 + static_cast<index_t>(rng.uniform(0, 1));
      const count_t ma =
          std::min<count_t>(au * aw, au + aw - 1 + rng.uniform(1, 4));
      return BipartiteKronecker::assumption_ii(
          gen::connected_random_bipartite(au, aw, ma, rng), std::move(b));
    }
    const index_t na = 5 + static_cast<index_t>(rng.uniform(0, 3));
    const count_t ma =
        std::min<count_t>(na * (na - 1) / 2, na + 2 + rng.uniform(0, 4));
    return BipartiteKronecker::assumption_i(
        gen::random_nonbipartite_connected(na, ma, rng), std::move(b));
  }
};

TEST_P(RandomProductProperty, StructuralInvariants) {
  const auto kp = make();
  const auto c = kp.materialize();
  // The product is a simple, undirected, bipartite, connected graph with no
  // triangles and no self loops.
  EXPECT_TRUE(graph::is_undirected_adjacency(c));
  EXPECT_TRUE(grb::has_no_self_loops(c));
  EXPECT_TRUE(graph::is_bipartite(c));
  EXPECT_TRUE(graph::is_connected(c));
  EXPECT_EQ(graph::global_triangles(c), 0);
}

TEST_P(RandomProductProperty, CountingPipelineAgreesEndToEnd) {
  const auto kp = make();
  const auto c = kp.materialize();

  const auto s_truth = kron::vertex_squares(kp).materialize();
  const auto s_direct = graph::vertex_butterflies(c);
  EXPECT_EQ(s_truth, s_direct);

  const auto global_truth = kron::global_squares(kp);
  EXPECT_EQ(global_truth, graph::global_butterflies(c));
  EXPECT_EQ(4 * global_truth, grb::reduce(s_direct));

  // Edge stream totals close the loop: Σ◇ over directed entries = 8·#C4.
  kron::GroundTruthStream gts(kp);
  count_t stream_total = 0;
  count_t stream_entries = 0;
  gts.for_each_entry([&](index_t, index_t, count_t sq) {
    stream_total += sq;
    ++stream_entries;
  });
  EXPECT_EQ(stream_total, 8 * global_truth);
  EXPECT_EQ(stream_entries, c.nnz());
}

TEST_P(RandomProductProperty, DegreeDistributionFactorizes) {
  const auto kp = make();
  const auto c = kp.materialize();
  const auto d_truth = kron::degrees(kp);
  const auto d_direct = graph::degrees(c);
  EXPECT_EQ(d_truth.materialize(), d_direct);
  // Total degree = 2|E| both ways.
  EXPECT_EQ(d_truth.reduce(), 2 * kp.num_edges());
}

TEST_P(RandomProductProperty, PredictionsMatchReality) {
  const auto kp = make();
  const auto pred = kron::predict(kp);
  const auto c = kp.materialize();
  EXPECT_EQ(pred.components, graph::connected_components(c).count);
  EXPECT_EQ(pred.bipartite, graph::is_bipartite(c));
}

TEST_P(RandomProductProperty, VertexSquaresPositiveWhereDegreesAdmit) {
  // Remark 1 localized: if both factor endpoints have degree ≥ 2 at some
  // product vertex with a qualifying neighbor, squares exist around it.
  // We check the weaker global form: factors with max degree ≥ 2 on both
  // sides give a product with at least one square.
  const auto kp = make();
  if (graph::max_degree(kp.left()) >= 2 &&
      graph::max_degree(kp.right()) >= 2) {
    EXPECT_GT(kron::global_squares(kp), 0);
  }
}

TEST_P(RandomProductProperty, OracleAndStreamAgreeOnEveryEdge) {
  // Two independently implemented per-edge ground-truth paths — the
  // aligned-table stream and the O(1) oracle — must agree entry-by-entry.
  const auto kp = make();
  const kron::GroundTruthOracle oracle(kp);
  kron::GroundTruthStream stream(kp);
  stream.for_each_entry([&](index_t p, index_t q, count_t sq) {
    ASSERT_EQ(oracle.edge(p, q).squares, sq)
        << "edge (" << p << "," << q << ")";
  });
}

TEST_P(RandomProductProperty, NoLargePrimeDegrees) {
  // The paper's noted peculiarity: product degrees are factor-degree
  // products, so any degree exceeding both factors' maxima must be
  // composite (a prime would force a degree-1 factor vertex).
  const auto kp = make();
  const auto threshold = std::max(graph::max_degree(kp.left()),
                                  graph::max_degree(kp.right()));
  const kron::GroundTruthOracle oracle(kp);
  const auto is_prime = [](count_t n) {
    if (n < 2) return false;
    for (count_t f = 2; f * f <= n; ++f) {
      if (n % f == 0) return false;
    }
    return true;
  };
  for (const auto& [deg, cnt] : oracle.degree_histogram()) {
    if (deg > threshold) {
      EXPECT_FALSE(is_prime(deg)) << "prime degree " << deg << " (x" << cnt
                                  << ") above factor maxima";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProductProperty,
                         ::testing::Range(0, 24));

// -------------------------------------------------------------------------
// Factor-level property sweep: Def. 8/9 formulas vs wedge counting on
// random bipartite and random non-bipartite graphs.

class RandomFactorProperty : public ::testing::TestWithParam<int> {
protected:
  graph::Adjacency make() const {
    Rng rng(0xF00D + static_cast<std::uint64_t>(GetParam()));
    if (GetParam() % 2 == 0) {
      const index_t nu = 5 + static_cast<index_t>(rng.uniform(0, 8));
      const index_t nw = 5 + static_cast<index_t>(rng.uniform(0, 8));
      const count_t maxm = nu * nw;
      return gen::random_bipartite(nu, nw,
                                   std::min<count_t>(maxm, 3 * (nu + nw)),
                                   rng);
    }
    const index_t n = 8 + static_cast<index_t>(rng.uniform(0, 8));
    return gen::random_nonbipartite_connected(n, 2 * n, rng);
  }
};

TEST_P(RandomFactorProperty, AllCountersAgree) {
  const auto a = make();
  const auto s_formula = kron::vertex_squares_formula(a);
  const auto s_wedge = graph::vertex_butterflies(a);
  EXPECT_EQ(s_formula, s_wedge);
  const auto e_formula = kron::edge_squares_formula(a);
  const auto e_wedge = graph::edge_butterflies(a);
  EXPECT_EQ(e_formula, e_wedge);
  if (a.nrows() <= 128) {
    EXPECT_EQ(s_wedge, graph::vertex_butterflies_naive(a));
    EXPECT_EQ(graph::global_butterflies(a),
              graph::global_butterflies_naive(a));
  }
}

TEST_P(RandomFactorProperty, SquareAccountingIdentities) {
  const auto a = make();
  const auto s = graph::vertex_butterflies(a);
  const auto e = graph::edge_butterflies(a);
  const auto g = graph::global_butterflies(a);
  EXPECT_EQ(grb::reduce(s), 4 * g);
  EXPECT_EQ(grb::reduce(e), 8 * g);
  const auto rows = grb::reduce_rows(e);
  for (index_t i = 0; i < a.nrows(); ++i) {
    EXPECT_EQ(rows[i], 2 * s[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFactorProperty,
                         ::testing::Range(0, 20));

} // namespace
} // namespace kronlab
