// Property-based cross-validation of every 4-cycle counter in the repo
// against every other, on seeded random bipartite and bipartite R-MAT
// factors: naive enumeration vs wedge-table counting vs the Def. 8/9
// linear-algebra formulas vs the factored Kronecker ground truth
// (Thms 3–5), per vertex and per edge, with and without self loops on M.
//
// This is the harness that validates the dynamically scheduled runtime:
// each counter runs through the dynamic dispatcher, and any scheduling bug
// (dropped chunk, double visit, scratch leakage between chunks) breaks the
// exact agreement demanded here.

#include <gtest/gtest.h>

#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/rmat.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/index_map.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab {
namespace {

using graph::Adjacency;
using kron::BipartiteKronecker;

Adjacency rmat_factor(int scale_u, int scale_w, count_t edges,
                      std::uint64_t seed) {
  gen::RmatParams p;
  p.scale_u = scale_u;
  p.scale_w = scale_w;
  p.edges = edges;
  Rng rng(seed);
  return gen::rmat_bipartite(p, rng);
}

// -------------------------------------------------------------------------
// Single-graph layer: naive vs wedge table vs Def. 8/9 formulas.

class CounterCrossTest : public ::testing::TestWithParam<int> {
protected:
  Adjacency make_graph() const {
    const int id = GetParam();
    Rng rng(1000 + static_cast<std::uint64_t>(id));
    switch (id) {
      case 0: return gen::connected_random_bipartite(5, 7, 15, rng);
      case 1: return gen::connected_random_bipartite(8, 8, 24, rng);
      case 2: return gen::random_bipartite(6, 9, 18, rng);
      case 3: return gen::preferential_bipartite(8, 10, 30, rng);
      case 4: return gen::random_nonbipartite_connected(12, 26, rng);
      case 5: return rmat_factor(3, 3, 24, 7);
      case 6: return rmat_factor(3, 4, 36, 8);
      case 7: return rmat_factor(4, 4, 56, 9);
      default: return gen::preferential_bipartite(10, 12, 44, rng);
    }
  }
};

TEST_P(CounterCrossTest, VertexCountersAgree) {
  const auto a = make_graph();
  const auto naive = graph::vertex_butterflies_naive(a);
  const auto wedge = graph::vertex_butterflies(a);
  const auto formula = kron::vertex_squares_formula(a);
  EXPECT_EQ(naive, wedge);
  EXPECT_EQ(naive, formula);
}

TEST_P(CounterCrossTest, EdgeCountersAgree) {
  const auto a = make_graph();
  const auto naive = graph::edge_butterflies_naive(a);
  const auto wedge = graph::edge_butterflies(a);
  const auto formula = kron::edge_squares_formula(a);
  EXPECT_EQ(naive, wedge);
  EXPECT_EQ(naive, formula);
}

TEST_P(CounterCrossTest, GlobalCountConsistentWithVertexCounts) {
  // #C4 = ¼ Σ_i s_i — every square is seen from its four corners.
  const auto a = make_graph();
  const auto s = graph::vertex_butterflies(a);
  count_t total = 0;
  for (index_t i = 0; i < s.size(); ++i) total += s[i];
  EXPECT_EQ(graph::global_butterflies(a), total / 4);
  EXPECT_EQ(graph::global_butterflies(a), graph::global_butterflies_naive(a));
}

TEST_P(CounterCrossTest, EdgeRowSumsAreTwiceVertexCounts) {
  // s = ½ ◇ 1 (Def. 8 vs Def. 9 consistency).
  const auto a = make_graph();
  const auto s = graph::vertex_butterflies(a);
  const auto row_sums = grb::reduce_rows(graph::edge_butterflies(a));
  for (index_t i = 0; i < a.nrows(); ++i) {
    ASSERT_EQ(2 * s[i], row_sums[i]) << "vertex " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(SeededFactors, CounterCrossTest,
                         ::testing::Range(0, 9));

// -------------------------------------------------------------------------
// Product layer: factored ground truth (Thms 3–5) vs direct counting on the
// materialized product, with and without self loops on M.

struct ProductSpec {
  const char* name;
  bool loops_on_m; ///< product uses M = A + I_A instead of M = A
  int graph_id;    ///< which seeded factor pair
};

class ProductCrossTest : public ::testing::TestWithParam<ProductSpec> {
protected:
  // Factor A: bipartite when loops are added (Assumption 1(ii) shape),
  // either way when loop-free (raw products are fine for the generic
  // factored forms).
  Adjacency make_a() const {
    Rng rng(500 + static_cast<std::uint64_t>(GetParam().graph_id));
    switch (GetParam().graph_id) {
      case 0: return gen::connected_random_bipartite(4, 5, 12, rng);
      case 1: return gen::connected_random_bipartite(5, 5, 14, rng);
      case 2: return rmat_factor(2, 3, 18, 21);
      default: return gen::preferential_bipartite(4, 6, 16, rng);
    }
  }
  Adjacency make_b() const {
    Rng rng(900 + static_cast<std::uint64_t>(GetParam().graph_id));
    switch (GetParam().graph_id) {
      case 0: return gen::connected_random_bipartite(3, 4, 9, rng);
      case 1: return rmat_factor(2, 2, 10, 33);
      case 2: return gen::connected_random_bipartite(4, 4, 11, rng);
      default: return gen::random_bipartite(3, 5, 10, rng);
    }
  }
  BipartiteKronecker make_product() const {
    const auto a = make_a();
    const auto b = make_b();
    return GetParam().loops_on_m
               ? BipartiteKronecker::raw(grb::add_identity(a), b)
               : BipartiteKronecker::raw(a, b);
  }
};

TEST_P(ProductCrossTest, VertexSquaresMatchAllDirectCounters) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  const auto truth = kron::vertex_squares(kp).materialize();
  EXPECT_EQ(truth, graph::vertex_butterflies(c));
  EXPECT_EQ(truth, kron::vertex_squares_formula(c));
  if (c.nrows() <= 128) {
    EXPECT_EQ(truth, graph::vertex_butterflies_naive(c));
  }
}

TEST_P(ProductCrossTest, EdgeSquaresMatchDirectPerEdge) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  const auto direct = graph::edge_butterflies(c);
  const auto factored = kron::edge_squares(kp);
  for (index_t p = 0; p < c.nrows(); ++p) {
    const auto cols = direct.row_cols(p);
    const auto vals = direct.row_vals(p);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      ASSERT_EQ(factored.at(p, cols[e]), vals[e])
          << "edge (" << p << "," << cols[e] << ")";
    }
  }
}

TEST_P(ProductCrossTest, GlobalSquaresMatch) {
  const auto kp = make_product();
  EXPECT_EQ(kron::global_squares(kp),
            graph::global_butterflies(kp.materialize()));
}

TEST_P(ProductCrossTest, RowReducedEdgeSquaresGiveVertexSquares) {
  // s_C = ½ ◇_C 1, evaluated entirely in factor space.
  const auto kp = make_product();
  EXPECT_EQ(kron::edge_squares(kp).row_reduce(2).materialize(),
            kron::vertex_squares(kp).materialize());
}

INSTANTIATE_TEST_SUITE_P(
    Pairings, ProductCrossTest,
    ::testing::Values(ProductSpec{"bip_x_bip", false, 0},
                      ProductSpec{"bip_x_rmat", false, 1},
                      ProductSpec{"rmat_x_bip", false, 2},
                      ProductSpec{"pref_x_bip", false, 3},
                      ProductSpec{"bip_x_bip_loops", true, 0},
                      ProductSpec{"bip_x_rmat_loops", true, 1},
                      ProductSpec{"rmat_x_bip_loops", true, 2},
                      ProductSpec{"pref_x_bip_loops", true, 3}),
    [](const ::testing::TestParamInfo<ProductSpec>& info) {
      return info.param.name;
    });

// -------------------------------------------------------------------------
// The paper's closed forms (Thms 3–5) against the same direct counters, on
// factors satisfying the theorems' hypotheses.

TEST(TheoremCross, Thm3MatchesDirectOnRandomFactors) {
  // Thm 3: C = A ⊗ B with A non-bipartite, both connected and loop-free.
  Rng rng(61);
  const auto a = gen::random_nonbipartite_connected(8, 16, rng);
  const auto b = gen::connected_random_bipartite(4, 5, 12, rng);
  const auto kp = BipartiteKronecker::assumption_i(a, b);
  EXPECT_EQ(kron::vertex_squares_thm3(a, b).materialize(),
            graph::vertex_butterflies(kp.materialize()));
}

TEST(TheoremCross, Thm4MatchesDirectOnRandomFactors) {
  // Thm 4: C = (A + I_A) ⊗ B with A, B bipartite connected loop-free.
  Rng rng(62);
  const auto a = gen::connected_random_bipartite(4, 5, 13, rng);
  const auto b = gen::connected_random_bipartite(5, 4, 12, rng);
  const auto kp = BipartiteKronecker::assumption_ii(a, b);
  const auto direct = graph::vertex_butterflies(kp.materialize());
  EXPECT_EQ(kron::vertex_squares_thm4(a, b).materialize(), direct);

  // Point-wise form from scalar factor statistics.
  const auto sa = graph::vertex_butterflies(a);
  const auto sb = graph::vertex_butterflies(b);
  const auto da = graph::degrees(a);
  const auto db = graph::degrees(b);
  const auto wa = graph::two_hop_walks(a);
  const auto wb = graph::two_hop_walks(b);
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (index_t k = 0; k < b.nrows(); ++k) {
      const index_t p = kron::gamma(i, k, b.nrows());
      ASSERT_EQ(kron::vertex_squares_pointwise_thm4(sa[i], da[i], wa[i],
                                                    sb[k], db[k], wb[k]),
                direct[p])
          << "product vertex (" << i << "," << k << ")";
    }
  }
}

TEST(TheoremCross, Thm5MatchesDirectPerEdgeOnRandomFactors) {
  // Thm 5: ◇_pq for loop-free A from factor-edge statistics.
  Rng rng(63);
  const auto a = gen::random_nonbipartite_connected(7, 14, rng);
  const auto b = gen::connected_random_bipartite(4, 4, 10, rng);
  const auto kp = BipartiteKronecker::assumption_i(a, b);
  const auto direct = graph::edge_butterflies(kp.materialize());

  const auto sq_a = graph::edge_butterflies(a);
  const auto sq_b = graph::edge_butterflies(b);
  const auto da = graph::degrees(a);
  const auto db = graph::degrees(b);
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto a_cols = sq_a.row_cols(i);
    const auto a_vals = sq_a.row_vals(i);
    for (std::size_t ea = 0; ea < a_cols.size(); ++ea) {
      const index_t j = a_cols[ea];
      for (index_t k = 0; k < b.nrows(); ++k) {
        const auto b_cols = sq_b.row_cols(k);
        const auto b_vals = sq_b.row_vals(k);
        for (std::size_t eb = 0; eb < b_cols.size(); ++eb) {
          const index_t l = b_cols[eb];
          const index_t p = kron::gamma(i, k, b.nrows());
          const index_t q = kron::gamma(j, l, b.nrows());
          ASSERT_EQ(kron::edge_squares_pointwise_thm5(a_vals[ea], da[i],
                                                      da[j], b_vals[eb],
                                                      db[k], db[l]),
                    direct.at(p, q))
              << "product edge (" << p << "," << q << ")";
        }
      }
    }
  }
}

} // namespace
} // namespace kronlab
