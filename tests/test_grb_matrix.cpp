// Tests for grb::Coo / grb::Csr construction, invariants, and accessors.

#include <gtest/gtest.h>

#include "kronlab/grb/coo.hpp"
#include "kronlab/grb/csr.hpp"

namespace kronlab::grb {
namespace {

TEST(Coo, PushValidatesRange) {
  Coo<count_t> coo(2, 3);
  EXPECT_NO_THROW(coo.push(1, 2, 5));
  EXPECT_THROW(coo.push(2, 0, 1), invalid_argument);
  EXPECT_THROW(coo.push(0, 3, 1), invalid_argument);
  EXPECT_THROW(coo.push(-1, 0, 1), invalid_argument);
}

TEST(Coo, PushSymmetricAddsBothDirections) {
  Coo<count_t> coo(3, 3);
  coo.push_symmetric(0, 1, 1);
  coo.push_symmetric(2, 2, 1); // loop added once
  EXPECT_EQ(coo.nnz(), 3);
}

TEST(Csr, FromCooSortsAndCombines) {
  Coo<count_t> coo(3, 3);
  coo.push(1, 2, 5);
  coo.push(0, 1, 1);
  coo.push(1, 2, 7); // duplicate → summed
  coo.push(1, 0, 2);
  const auto a = Csr<count_t>::from_coo(coo);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_EQ(a.at(1, 2), 12);
  EXPECT_EQ(a.at(0, 1), 1);
  EXPECT_EQ(a.at(1, 0), 2);
  EXPECT_EQ(a.at(2, 2), 0);
  a.check_invariants();
}

TEST(Csr, FromCooDropsExactZeroSums) {
  Coo<count_t> coo(2, 2);
  coo.push(0, 0, 3);
  coo.push(0, 0, -3);
  coo.push(1, 1, 1);
  const auto a = Csr<count_t>::from_coo(coo);
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_FALSE(a.has(0, 0));
  EXPECT_TRUE(a.has(1, 1));
}

TEST(Csr, IdentityHasUnitDiagonal) {
  const auto i3 = Csr<count_t>::identity(3);
  EXPECT_EQ(i3.nnz(), 3);
  for (index_t i = 0; i < 3; ++i) {
    EXPECT_EQ(i3.at(i, i), 1);
    EXPECT_EQ(i3.row_degree(i), 1);
  }
  EXPECT_EQ(i3.at(0, 1), 0);
}

TEST(Csr, FromDenseRoundTrip) {
  const std::vector<count_t> dense{0, 1, 2, 0, 0, 3};
  const auto a = Csr<count_t>::from_dense(2, 3, dense);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_EQ(a.to_dense(), dense);
}

TEST(Csr, FromDenseRejectsBadSize) {
  EXPECT_THROW(Csr<count_t>::from_dense(2, 2, {1, 2, 3}),
               invalid_argument);
}

TEST(Csr, RowSpansMatchStructure) {
  Coo<count_t> coo(3, 4);
  coo.push(1, 3, 9);
  coo.push(1, 0, 8);
  const auto a = Csr<count_t>::from_coo(coo);
  EXPECT_EQ(a.row_degree(0), 0);
  EXPECT_EQ(a.row_degree(1), 2);
  const auto cols = a.row_cols(1);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 3);
  const auto vals = a.row_vals(1);
  EXPECT_EQ(vals[0], 8);
  EXPECT_EQ(vals[1], 9);
}

TEST(Csr, AdoptingRawArraysValidates) {
  // Unsorted columns within a row must be rejected.
  EXPECT_THROW(Csr<count_t>(1, 3, {0, 2}, {2, 1}, {1, 1}),
               invalid_argument);
  // row_ptr not ending at nnz.
  EXPECT_THROW(Csr<count_t>(1, 3, {0, 1}, {0, 1}, {1, 1}),
               invalid_argument);
  // Column out of range.
  EXPECT_THROW(Csr<count_t>(1, 2, {0, 1}, {5}, {1}), invalid_argument);
  // Duplicate column in a row.
  EXPECT_THROW(Csr<count_t>(1, 3, {0, 2}, {1, 1}, {1, 1}),
               invalid_argument);
  // A valid adoption passes.
  EXPECT_NO_THROW(Csr<count_t>(2, 2, {0, 1, 2}, {1, 0}, {1, 1}));
}

TEST(Csr, EmptyMatrixBehaves) {
  const Csr<count_t> a;
  EXPECT_EQ(a.nrows(), 0);
  EXPECT_EQ(a.ncols(), 0);
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_TRUE(a.empty());
}

TEST(Csr, EqualityIsStructuralAndValued) {
  Coo<count_t> coo(2, 2);
  coo.push(0, 1, 1);
  const auto a = Csr<count_t>::from_coo(coo);
  auto b = a;
  EXPECT_EQ(a, b);
  b.vals()[0] = 2;
  EXPECT_NE(a, b);
}

} // namespace
} // namespace kronlab::grb
