// Fault-injection tests for the distributed runtime and the fault-tolerant
// generation + counting pipeline: seeded drop/delay/duplicate plans, rank
// kills at named fault points, deadline receives, retry exhaustion, and
// checkpoint/restart recovery verified against the factored ground truth.
//
// The CI release job re-runs this suite with KRONLAB_FAULT_RATE=high,
// which scales the probabilistic plans up (see fault_rate_scale below);
// every assertion here is rate-independent — the protocols must produce
// bit-identical counts under any plan they survive.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "kronlab/dist/comm.hpp"
#include "kronlab/dist/sharded.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/kron/ground_truth.hpp"

namespace kronlab::dist {
namespace {

/// KRONLAB_FAULT_RATE=high (or a numeric factor) scales the probabilistic
/// fault plans — the CI release job uses it to stress the retry budget.
double fault_rate_scale() {
  const char* env = std::getenv("KRONLAB_FAULT_RATE");
  if (!env) return 1.0;
  if (std::string(env) == "high") return 5.0;
  const double v = std::strtod(env, nullptr);
  return v > 0 ? v : 1.0;
}

std::string fresh_ckpt_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("kronlab_faults_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Small retry budget so exhaustion tests finish in milliseconds.
RetryConfig fast_retry() {
  RetryConfig cfg;
  cfg.timeout = std::chrono::milliseconds(2);
  cfg.max_retries = 2;
  cfg.max_backoff = std::chrono::milliseconds(8);
  return cfg;
}

// ---------------------------------------------------------------------------
// FaultPlan mechanics.

TEST(FaultPlan, ValidatesProbabilitiesAndKillRank) {
  FaultPlan plan;
  plan.drop = 0.6;
  plan.duplicate = 0.6;
  EXPECT_THROW(run(2, plan, [](Comm&) {}), invalid_argument);
  FaultPlan bad_kill;
  bad_kill.kill_rank = 5;
  bad_kill.kill_point = "gen-block";
  EXPECT_THROW(run(2, bad_kill, [](Comm&) {}), invalid_argument);
}

TEST(FaultPlan, DropsAreSeededAndDeterministic) {
  const auto survivors = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop = 0.3;
    std::vector<word_t> got;
    run(2, plan, [&](Comm& comm) {
      constexpr int kMessages = 200;
      if (comm.rank() == 0) {
        for (int i = 0; i < kMessages; ++i) comm.send(1, 1, {i});
        comm.barrier();
      } else {
        comm.barrier(); // all sends delivered (or dropped) by now
        while (const auto m =
                   comm.recv_deadline(0, 1, std::chrono::milliseconds(5))) {
          got.push_back(m->at(0));
        }
        const auto dropped = comm.fault_stats().dropped;
        EXPECT_EQ(static_cast<std::int64_t>(got.size()) + dropped,
                  kMessages);
        EXPECT_GT(dropped, 0);
        EXPECT_LT(dropped, kMessages);
      }
    });
    return got;
  };
  EXPECT_EQ(survivors(7), survivors(7)); // same seed, same drop pattern
  EXPECT_NE(survivors(7), survivors(8));
}

TEST(FaultPlan, DuplicatesAreDeliveredTwice) {
  FaultPlan plan;
  plan.duplicate = 1.0;
  run(2, plan, [](Comm& comm) {
    constexpr int kMessages = 10;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) comm.send(1, 1, {i});
      comm.barrier();
    } else {
      comm.barrier();
      int received = 0;
      while (comm.recv_deadline(0, 1, std::chrono::milliseconds(5))) {
        ++received;
      }
      EXPECT_EQ(received, 2 * kMessages);
      EXPECT_EQ(comm.fault_stats().duplicated, kMessages);
    }
  });
}

TEST(FaultPlan, CollectivesAreExemptByDefault) {
  FaultPlan plan;
  plan.drop = 1.0; // every application message lost ...
  run(4, plan, [](Comm& comm) {
    // ... yet the collectives (negative tags) still complete and agree.
    EXPECT_EQ(comm.allreduce_sum(comm.rank() + 1), 10);
    EXPECT_EQ(comm.allgather(comm.rank()).size(), 4u);
  });
}

// ---------------------------------------------------------------------------
// Deadline receives and delay (reorder) semantics.

TEST(Comm, RecvDeadlineExpiresWhenEverythingIsDropped) {
  FaultPlan plan;
  plan.drop = 1.0;
  run(2, plan, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, {42});
      comm.barrier();
    } else {
      comm.barrier();
      const auto got =
          comm.recv_deadline(0, 3, std::chrono::milliseconds(10));
      EXPECT_FALSE(got.has_value());
      EXPECT_GE(comm.fault_stats().dropped, 1);
    }
  });
}

TEST(Comm, DeadlineExpiryReleasesDelayedMessages) {
  FaultPlan plan;
  plan.delay = 1.0;
  plan.delay_deliveries = 1000; // parked until a deadline flushes it
  run(2, plan, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, {42});
      comm.barrier();
    } else {
      comm.barrier();
      // The message is parked as "delayed"; the deadline expiring models
      // the late packet finally arriving, so this receive still succeeds.
      const auto got =
          comm.recv_deadline(0, 3, std::chrono::milliseconds(10));
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, (Message{42}));
      EXPECT_EQ(comm.fault_stats().delayed, 1);
    }
  });
}

TEST(Comm, DelayedMessagesReorderBehindLaterTraffic) {
  FaultPlan plan;
  plan.seed = 3;
  plan.delay = 0.999; // first draw delays; make the release draw-free
  plan.delay_deliveries = 1;
  run(2, plan, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, {1}); // delayed with high probability
      comm.send(1, 3, {2}); // its delivery releases the first
      comm.barrier();
    } else {
      comm.barrier();
      int received = 0;
      while (comm.recv_deadline(0, 3, std::chrono::milliseconds(10))) {
        ++received;
      }
      EXPECT_EQ(received, 2); // reordered, never lost
      EXPECT_GE(comm.fault_stats().delayed, 1);
    }
  });
}

// Regression (found by the Clang thread-safety annotation pass over
// comm.cpp): mark_dead wakes every mailbox cv "so deadline receives
// re-check liveness promptly" — but take_deadline's wait never checked
// liveness, so a receive from a dead sender slept out its entire timeout
// on every retry.  It must now return nullopt as soon as the sender is
// dead and nothing is pending.
TEST(Comm, RecvDeadlineReturnsEarlyWhenSenderIsDead) {
  FaultPlan plan;
  plan.kill_rank = 1;
  plan.kill_point = "before-sending";
  std::atomic<long long> waited_ms{-1};
  run(2, plan, [&](Comm& comm) {
    if (comm.rank() == 1) {
      comm.fault_point("before-sending"); // dies here, never sends
      return;
    }
    while (comm.rank_alive(1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto got = comm.recv_deadline(1, 3, std::chrono::seconds(30));
    EXPECT_FALSE(got.has_value());
    waited_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  });
  ASSERT_GE(waited_ms.load(), 0) << "receiver never ran";
  // Seconds of slack for loaded CI machines — the point is that it did
  // not sleep anywhere near the 30 s deadline.
  EXPECT_LT(waited_ms.load(), 5000);
}

// Messages that arrived (or were fault-parked) before the sender died are
// still deliverable: early-return must not eat pending data.
TEST(Comm, RecvDeadlineDeliversPendingMessageFromDeadSender) {
  FaultPlan plan;
  plan.kill_rank = 1;
  plan.kill_point = "after-sending";
  run(2, plan, [](Comm& comm) {
    if (comm.rank() == 1) {
      comm.send(0, 3, {99});
      comm.fault_point("after-sending");
      return;
    }
    while (comm.rank_alive(1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto got = comm.recv_deadline(1, 3, std::chrono::seconds(30));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, (Message{99}));
    // A second receive finds the mailbox empty and the sender dead.
    EXPECT_FALSE(
        comm.recv_deadline(1, 3, std::chrono::seconds(30)).has_value());
  });
}

// ---------------------------------------------------------------------------
// The fault-tolerant exchange under probabilistic plans.

kron::BipartiteKronecker sample_product(std::uint64_t seed) {
  Rng rng(seed);
  return kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(16, 40, rng),
      gen::random_bipartite(5, 5, 12, rng));
}

TEST(FaultyExchange, AbsorbsDropsDuplicatesAndReorders) {
  const auto kp = sample_product(21);
  const count_t expect = kron::global_squares(kp);
  const double s = fault_rate_scale();
  FaultPlan plan;
  plan.seed = 99;
  plan.drop = std::min(0.15 * s, 0.3);
  plan.duplicate = std::min(0.15 * s, 0.3);
  plan.delay = std::min(0.15 * s, 0.3);
  const kron::PartitionedStream ps(kp, 4);
  run(4, plan, [&](Comm& comm) {
    const auto shard = generate_shard(kp, ps, comm.rank());
    ExchangeStats stats;
    const count_t counted =
        distributed_global_butterflies(comm, shard, {}, &stats);
    EXPECT_EQ(counted, expect);
    if (comm.rank() == 0) {
      const auto faults = comm.fault_stats();
      EXPECT_GT(faults.dropped + faults.duplicated + faults.delayed, 0);
    }
  });
}

TEST(FaultyExchange, RetryExhaustionThrowsTimeoutError) {
  const auto kp = sample_product(22);
  const kron::PartitionedStream ps(kp, 2);
  FaultPlan plan;
  plan.drop = 1.0; // no application message ever arrives
  EXPECT_THROW(run(2, plan,
                   [&](Comm& comm) {
                     const auto shard = generate_shard(kp, ps, comm.rank());
                     distributed_global_butterflies(comm, shard,
                                                    fast_retry());
                   }),
               timeout_error);
}

TEST(FaultyExchange, PeerKilledBeforeServingThrowsRankFailed) {
  const auto kp = sample_product(23);
  const kron::PartitionedStream ps(kp, 3);
  FaultPlan plan;
  plan.kill_rank = 2;
  plan.kill_point = "exchange-serve"; // dies after membership agreement
  EXPECT_THROW(run(3, plan,
                   [&](Comm& comm) {
                     const auto shard = generate_shard(kp, ps, comm.rank());
                     distributed_global_butterflies(comm, shard,
                                                    fast_retry());
                   }),
               rank_failed);
}

// ---------------------------------------------------------------------------
// Checkpoint/restart recovery, self-verified against the factored oracle.

/// Collect every survivor's report and require them to be identical on
/// the fields the supervisor aggregates.
struct ReportCollector {
  std::mutex mutex;
  std::vector<RecoveryReport> reports;
  void add(const RecoveryReport& r) {
    std::lock_guard lock(mutex);
    reports.push_back(r);
  }
  void expect_consistent(std::size_t survivors) {
    ASSERT_EQ(reports.size(), survivors);
    for (const auto& r : reports) {
      EXPECT_EQ(r.counted, reports.front().counted);
      EXPECT_EQ(r.ground_truth, reports.front().ground_truth);
      EXPECT_EQ(r.verified, reports.front().verified);
      EXPECT_EQ(r.dead_ranks, reports.front().dead_ranks);
      EXPECT_EQ(r.checkpoints_restored, reports.front().checkpoints_restored);
      EXPECT_EQ(r.left_rows_reassigned, reports.front().left_rows_reassigned);
    }
  }
};

TEST(Recovery, CleanSupervisedRunVerifies) {
  const auto kp = sample_product(31);
  const count_t expect = kron::global_squares(kp);
  const kron::PartitionedStream ps(kp, 4);
  run(4, [&](Comm& comm) {
    const auto report = supervised_global_butterflies(comm, kp, ps);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.counted, expect);
    EXPECT_EQ(report.ground_truth, expect);
    EXPECT_TRUE(report.dead_ranks.empty());
    EXPECT_EQ(report.left_rows_reassigned, 0);
  });
}

// The acceptance scenario: messages dropped and duplicated at ~1% (scaled
// by KRONLAB_FAULT_RATE in CI), rank 1 killed mid-generation, recovery
// from its last checkpoint — and the recovered distributed count must be
// bit-identical to the factored ground truth.
TEST(Recovery, KillMidGenerationRestoresCheckpointAndVerifies) {
  const auto kp = sample_product(32);
  const count_t expect = kron::global_squares(kp);
  const kron::PartitionedStream ps(kp, 4);
  // Rank 1 must run >= 2 generation blocks so a checkpoint exists when the
  // second "gen-block" fault point kills it.
  const auto [llo, lhi] = ps.owned_left_rows(1);
  ASSERT_GE(lhi - llo, 2);

  const double s = fault_rate_scale();
  FaultPlan plan;
  plan.seed = 404;
  plan.drop = std::min(0.01 * s, 0.2);
  plan.duplicate = std::min(0.01 * s, 0.2);
  plan.kill_rank = 1;
  plan.kill_point = "gen-block";
  plan.kill_hits = 2;

  CheckpointConfig ckpt;
  ckpt.dir = fresh_ckpt_dir("restore");
  ckpt.interval_left_rows = 1;

  ReportCollector collector;
  run(4, plan, [&](Comm& comm) {
    const auto report = supervised_global_butterflies(comm, kp, ps, ckpt);
    collector.add(report);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.counted, expect);
    EXPECT_EQ(report.ground_truth, expect);
    EXPECT_TRUE(report.shard_stats_ok);
    EXPECT_EQ(report.dead_ranks, (std::vector<index_t>{1}));
    EXPECT_EQ(report.checkpoints_restored, 1);
    EXPECT_EQ(report.left_rows_reassigned, lhi - llo);
    EXPECT_GT(report.checkpoints_written, 0);
  });
  collector.expect_consistent(3);
}

TEST(Recovery, KillWithoutCheckpointsRegeneratesFromFactors) {
  const auto kp = sample_product(33);
  const count_t expect = kron::global_squares(kp);
  const kron::PartitionedStream ps(kp, 4);
  const auto [llo, lhi] = ps.owned_left_rows(2);

  FaultPlan plan;
  plan.seed = 505;
  plan.kill_rank = 2;
  plan.kill_point = "gen-block";
  plan.kill_hits = 1;

  run(4, plan, [&](Comm& comm) {
    // ckpt disabled: the survivor regenerates the whole dead range.
    const auto report = supervised_global_butterflies(comm, kp, ps);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.counted, expect);
    EXPECT_EQ(report.dead_ranks, (std::vector<index_t>{2}));
    EXPECT_EQ(report.checkpoints_written, 0);
    EXPECT_EQ(report.checkpoints_restored, 0);
    EXPECT_EQ(report.left_rows_reassigned, lhi - llo);
  });
}

TEST(Recovery, CorruptCheckpointFallsBackToRegeneration) {
  const auto kp = sample_product(34);
  const count_t expect = kron::global_squares(kp);
  const kron::PartitionedStream ps(kp, 4);
  const auto [llo, lhi] = ps.owned_left_rows(1);
  ASSERT_GE(lhi - llo, 2);

  FaultPlan plan;
  plan.seed = 606;
  plan.kill_rank = 1;
  plan.kill_point = "gen-block";
  plan.kill_hits = 2;

  CheckpointConfig ckpt;
  ckpt.dir = fresh_ckpt_dir("corrupt");
  ckpt.interval_left_rows = 1;

  // Run once to produce rank 1's genuine checkpoint, flip one byte of the
  // payload checksum, and drive recovery a second time with an interval so
  // coarse that the killed rank never overwrites the corrupt file.
  run(4, plan, [&](Comm& comm) {
    supervised_global_butterflies(comm, kp, ps, ckpt);
  });
  {
    const auto path = checkpoint_path(ckpt, 1);
    ASSERT_TRUE(std::filesystem::exists(path));
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    char b = 0;
    f.seekg(-1, std::ios::end);
    f.get(b);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(b ^ 0x5a));
  }
  FaultPlan early_kill = plan;
  early_kill.kill_hits = 1;
  CheckpointConfig coarse = ckpt;
  coarse.interval_left_rows = 1 << 20; // one block: no snapshot rewritten
  run(4, early_kill, [&](Comm& comm) {
    const auto report =
        supervised_global_butterflies(comm, kp, ps, coarse);
    // The checksum rejects the planted file; recovery regenerates and the
    // self-verification still passes bit-identically.
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.counted, expect);
    EXPECT_EQ(report.checkpoints_restored, 0);
  });
}

TEST(Recovery, SupervisorDeathIsRejected) {
  const auto kp = sample_product(35);
  const kron::PartitionedStream ps(kp, 3);
  FaultPlan plan;
  plan.kill_rank = 0;
  plan.kill_point = "gen-block";
  EXPECT_THROW(run(3, plan,
                   [&](Comm& comm) {
                     supervised_global_butterflies(comm, kp, ps);
                   }),
               invalid_argument);
}

TEST(Recovery, KillAndMessageFaultsCombined) {
  // Everything at once: drops, duplicates, reorders, and a mid-generation
  // kill with checkpoint restore — the full production nightmare.
  const auto kp = sample_product(36);
  const count_t expect = kron::global_squares(kp);
  const kron::PartitionedStream ps(kp, 4);
  const double s = fault_rate_scale();
  FaultPlan plan;
  plan.seed = 707;
  plan.drop = std::min(0.05 * s, 0.25);
  plan.duplicate = std::min(0.05 * s, 0.25);
  plan.delay = std::min(0.05 * s, 0.25);
  plan.kill_rank = 3;
  plan.kill_point = "gen-block";
  plan.kill_hits = 2;

  CheckpointConfig ckpt;
  ckpt.dir = fresh_ckpt_dir("combined");
  ckpt.interval_left_rows = 1;

  ReportCollector collector;
  run(4, plan, [&](Comm& comm) {
    const auto report = supervised_global_butterflies(comm, kp, ps, ckpt);
    collector.add(report);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.counted, expect);
    EXPECT_EQ(report.dead_ranks, (std::vector<index_t>{3}));
  });
  collector.expect_consistent(3);
}

} // namespace
} // namespace kronlab::dist
