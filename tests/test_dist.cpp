// Tests for the simulated distributed runtime and the distributed
// generation + counting pipeline.

#include <gtest/gtest.h>

#include <numeric>

#include "kronlab/dist/comm.hpp"
#include "kronlab/dist/sharded.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/kron/ground_truth.hpp"

namespace kronlab::dist {
namespace {

TEST(Comm, PointToPointPreservesOrder) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, {1, 2});
      comm.send(1, 7, {3});
      comm.send(1, 8, {99});
    } else {
      EXPECT_EQ(comm.recv(0, 7), (Message{1, 2}));
      // Cross-tag traffic does not disturb per-tag FIFO order.
      EXPECT_EQ(comm.recv(0, 8), (Message{99}));
      EXPECT_EQ(comm.recv(0, 7), (Message{3}));
    }
  });
}

TEST(Comm, AllreduceSumsAcrossRanks) {
  for (const index_t p : {1, 2, 3, 7}) {
    run(p, [p](Comm& comm) {
      const word_t total = comm.allreduce_sum(comm.rank() + 1);
      EXPECT_EQ(total, p * (p + 1) / 2);
    });
  }
}

TEST(Comm, AllgatherCollectsRankValues) {
  run(4, [](Comm& comm) {
    const auto all = comm.allgather(10 * comm.rank());
    EXPECT_EQ(all, (std::vector<word_t>{0, 10, 20, 30}));
  });
}

TEST(Comm, AlltoallRoutesPerRankMessages) {
  run(3, [](Comm& comm) {
    std::vector<Message> out(3);
    for (index_t r = 0; r < 3; ++r) {
      out[static_cast<std::size_t>(r)] = {100 * comm.rank() + r};
    }
    const auto in = comm.alltoall(std::move(out));
    for (index_t r = 0; r < 3; ++r) {
      EXPECT_EQ(in[static_cast<std::size_t>(r)],
                (Message{100 * r + comm.rank()}));
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> phase1{0};
  run(4, [&](Comm& comm) {
    ++phase1;
    comm.barrier();
    // After the barrier every rank must observe all increments.
    EXPECT_EQ(phase1.load(), 4);
  });
}

TEST(Comm, RankExceptionsPropagate) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 1) {
                       throw domain_error("rank 1 failed");
                     }
                   }),
               domain_error);
}

TEST(Comm, ValidatesArguments) {
  EXPECT_THROW(run(0, [](Comm&) {}), invalid_argument);
  run(2, [](Comm& comm) {
    EXPECT_THROW(comm.send(5, 0, {}), invalid_argument);
    EXPECT_THROW(comm.recv(-1, 0), invalid_argument);
  });
}

// ---------------------------------------------------------------------------
// Distributed generation + counting.

kron::BipartiteKronecker sample_product(std::uint64_t seed) {
  Rng rng(seed);
  return kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(8, 18, rng),
      gen::random_bipartite(5, 5, 12, rng));
}

TEST(ShardedGeneration, ShardsReassembleTheProduct) {
  const auto kp = sample_product(1);
  const auto c = kp.materialize();
  for (const index_t parts : {1, 2, 3, 5}) {
    const kron::PartitionedStream ps(kp, parts);
    offset_t total_entries = 0;
    for (index_t r = 0; r < parts; ++r) {
      const auto shard = generate_shard(kp, ps, r);
      EXPECT_EQ(shard.n, c.nrows());
      for (index_t lv = 0; lv < shard.rows.nrows(); ++lv) {
        const index_t v = shard.row_begin + lv;
        const auto local_cols = shard.rows.row_cols(lv);
        const auto global_cols = c.row_cols(v);
        ASSERT_EQ(local_cols.size(), global_cols.size()) << "row " << v;
        for (std::size_t k = 0; k < local_cols.size(); ++k) {
          EXPECT_EQ(local_cols[k], global_cols[k]);
        }
      }
      total_entries += shard.rows.nnz();
    }
    EXPECT_EQ(total_entries, c.nnz());
  }
}

class DistCountTest : public ::testing::TestWithParam<int> {};

TEST_P(DistCountTest, DistributedCountMatchesGroundTruth) {
  const auto kp = sample_product(10 + static_cast<std::uint64_t>(GetParam()));
  const count_t expect = kron::global_squares(kp);
  for (const index_t parts : {1, 2, 4}) {
    const kron::PartitionedStream ps(kp, parts);
    run(parts, [&](Comm& comm) {
      const auto shard = generate_shard(kp, ps, comm.rank());
      const count_t counted = distributed_global_butterflies(comm, shard);
      EXPECT_EQ(counted, expect) << "parts=" << parts;
      const count_t truth =
          distributed_ground_truth_squares(comm, kp, ps);
      EXPECT_EQ(truth, expect);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistCountTest, ::testing::Range(0, 6));

TEST(DistCount, AgreesWithSerialWedgeCountOnMaterialized) {
  const auto kp = sample_product(99);
  const auto expect = graph::global_butterflies(kp.materialize());
  const kron::PartitionedStream ps(kp, 3);
  run(3, [&](Comm& comm) {
    const auto shard = generate_shard(kp, ps, comm.rank());
    EXPECT_EQ(distributed_global_butterflies(comm, shard), expect);
  });
}

} // namespace
} // namespace kronlab::dist
