// Tests for the obs/trace subsystem: disabled-mode inertness, span
// nesting from pooled workers, ring-buffer wrap accounting, binary
// round-trips, Chrome JSON export, multi-file merge, and the distributed
// runtime's fault/retry annotations lining up event-for-event with the
// runtime's own fault statistics.
//
// CI runs this suite under TSan: concurrent span emission from pool
// workers and rank threads against a quiescent-snapshot reader is exactly
// the race surface the ring buffers claim to handle.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "kronlab/dist/comm.hpp"
#include "kronlab/dist/sharded.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/obs/trace.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::trace {
namespace {

/// Every test records into a clean, enabled registry and leaves tracing
/// off for the rest of the process (other suites must not pay for it).
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
    set_buffer_capacity(16384);
  }
};

std::vector<TraceEvent> events_of_kind(const std::vector<TraceEvent>& evs,
                                       Kind kind) {
  std::vector<TraceEvent> out;
  for (const auto& e : evs) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::size_t count_named(const std::vector<TraceEvent>& evs,
                        const std::string& name) {
  std::size_t n = 0;
  for (const auto& e : evs) n += e.name == name ? 1 : 0;
  return n;
}

/// Spans on one thread must be properly nested: any two either disjoint
/// or one containing the other.
void expect_well_nested(const std::vector<TraceEvent>& evs) {
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const auto& e : evs) {
    if (e.kind == Kind::span) by_tid[e.tid].push_back(&e);
  }
  for (auto& [tid, spans] : by_tid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_ns != b->ts_ns) return a->ts_ns < b->ts_ns;
                       return a->dur_ns > b->dur_ns;
                     });
    std::vector<const TraceEvent*> stack;
    for (const TraceEvent* e : spans) {
      while (!stack.empty() &&
             stack.back()->ts_ns + stack.back()->dur_ns <= e->ts_ns) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        // Enclosing span must fully contain this one.
        EXPECT_LE(stack.back()->ts_ns, e->ts_ns);
        EXPECT_GE(stack.back()->ts_ns + stack.back()->dur_ns,
                  e->ts_ns + e->dur_ns)
            << "span " << e->name << " straddles the end of "
            << stack.back()->name << " on tid " << tid;
      }
      stack.push_back(e);
    }
  }
}

// ---------------------------------------------------------------------------
// Enable/disable semantics.

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  set_enabled(false);
  {
    Span s("test", "ignored");
    instant("test", "ignored");
    counter("test", "ignored", 1.0);
    KRONLAB_TRACE_SPAN("test", "macro_ignored");
  }
  EXPECT_TRUE(snapshot().empty());
  EXPECT_EQ(dropped_events(), 0u);
}

TEST_F(TraceTest, SpanEnabledAtConstructionRecordsOnceAtDestruction) {
  {
    Span s("test", "outer");
    EXPECT_TRUE(snapshot().empty()); // nothing until the span closes
  }
  const auto evs = snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "outer");
  EXPECT_EQ(evs[0].cat, "test");
  EXPECT_EQ(evs[0].kind, Kind::span);
}

TEST_F(TraceTest, NestedSpansAreWellNestedAndOrdered) {
  {
    Span outer("test", "outer");
    {
      Span inner("test", "inner");
      instant("test", "tick", intern(std::string("detail=") + "x"));
    }
    { Span sibling("test", "sibling"); }
  }
  const auto evs = snapshot();
  ASSERT_EQ(evs.size(), 4u);
  expect_well_nested(evs);
  const auto spans = events_of_kind(evs, Kind::span);
  ASSERT_EQ(spans.size(), 3u);
  // snapshot() sorts by begin timestamp: outer starts first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_GE(spans[0].dur_ns, spans[1].dur_ns);
  const auto ticks = events_of_kind(evs, Kind::instant);
  ASSERT_EQ(ticks.size(), 1u);
  EXPECT_EQ(ticks[0].detail, "detail=x");
}

TEST_F(TraceTest, CountersCarryValues) {
  counter("test", "progress", 0.25);
  counter("test", "progress", 0.75);
  const auto evs = events_of_kind(snapshot(), Kind::counter);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_DOUBLE_EQ(evs[0].value, 0.25);
  EXPECT_DOUBLE_EQ(evs[1].value, 0.75);
}

// ---------------------------------------------------------------------------
// Concurrent emission from pooled workers.

TEST_F(TraceTest, PooledWorkerSpansAreWellNestedPerThread) {
  metrics::set_enabled(true);
  {
    metrics::KernelScope scope("trace_test_kernel");
    std::atomic<long> sink{0};
    parallel_for_dynamic(0, 200000,
                         [&](index_t i) {
                           sink.fetch_add(i % 7, std::memory_order_relaxed);
                         });
  }
  metrics::set_enabled(false);
  metrics::reset();
  const auto evs = snapshot(); // pool joined: quiescent
  expect_well_nested(evs);
  // The KernelScope span appears with cat "kernel", and each worker that
  // participated contributed one "parallel" span labelled with the kernel.
  std::size_t kernel_spans = 0, worker_spans = 0;
  for (const auto& e : evs) {
    if (e.kind != Kind::span) continue;
    if (e.cat == "kernel") ++kernel_spans;
    if (e.cat == "parallel") ++worker_spans;
  }
  EXPECT_EQ(kernel_spans, 1u);
  if (global_pool().size() > 1) {
    EXPECT_GE(worker_spans, 1u);
    // Worker spans nest inside the kernel span's interval.
    const TraceEvent* kernel = nullptr;
    for (const auto& e : evs) {
      if (e.kind == Kind::span && e.cat == "kernel") kernel = &e;
    }
    ASSERT_NE(kernel, nullptr);
    for (const auto& e : evs) {
      if (e.kind != Kind::span || e.cat != "parallel") continue;
      EXPECT_EQ(e.name, "trace_test_kernel");
      EXPECT_GE(e.ts_ns, kernel->ts_ns);
      EXPECT_LE(e.ts_ns + e.dur_ns, kernel->ts_ns + kernel->dur_ns);
    }
  }
}

TEST_F(TraceTest, RingWrapKeepsNewestEventsAndCountsDrops) {
  set_buffer_capacity(32);
  std::thread t([] {
    set_thread_name("wrapper");
    for (int i = 0; i < 100; ++i) {
      instant("test", i >= 68 ? "kept" : "lost");
    }
  });
  t.join();
  const auto evs = snapshot();
  std::size_t kept = 0;
  for (const auto& e : evs) {
    if (e.thread_name != "wrapper") continue;
    ++kept;
    EXPECT_EQ(e.name, "kept"); // oldest events were overwritten
  }
  EXPECT_EQ(kept, 32u);
  EXPECT_EQ(dropped_events(), 68u);
}

// ---------------------------------------------------------------------------
// Export formats.

TEST_F(TraceTest, BinaryRoundTripIsLossless) {
  set_thread_name("main");
  {
    Span s("cat_a", "span_one", intern("path=/tmp/x"));
    instant("cat_b", "mark");
  }
  counter("cat_c", "value", 42.5);
  const auto before = snapshot();
  ASSERT_EQ(before.size(), 3u);

  const auto path = (std::filesystem::temp_directory_path() /
                     "kronlab_test_roundtrip.trace")
                        .string();
  write_binary_file(path, before);
  const TraceFile after = read_binary_file(path);
  std::filesystem::remove(path);

  EXPECT_GT(after.epoch_unix_ns, 0u);
  ASSERT_EQ(after.events.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after.events[i].ts_ns, before[i].ts_ns);
    EXPECT_EQ(after.events[i].dur_ns, before[i].dur_ns);
    EXPECT_EQ(after.events[i].kind, before[i].kind);
    EXPECT_EQ(after.events[i].tid, before[i].tid);
    EXPECT_DOUBLE_EQ(after.events[i].value, before[i].value);
    EXPECT_EQ(after.events[i].name, before[i].name);
    EXPECT_EQ(after.events[i].cat, before[i].cat);
    EXPECT_EQ(after.events[i].detail, before[i].detail);
    EXPECT_EQ(after.events[i].thread_name, before[i].thread_name);
  }
}

TEST_F(TraceTest, CorruptBinaryFilesAreRejected) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto missing = (dir / "kronlab_test_missing.trace").string();
  std::filesystem::remove(missing);
  EXPECT_THROW(read_binary_file(missing), io_error);

  const auto bad = (dir / "kronlab_test_badmagic.trace").string();
  {
    std::FILE* f = std::fopen(bad.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_binary_file(bad), io_error);
  std::filesystem::remove(bad);
}

TEST_F(TraceTest, ChromeJsonCarriesEventsAndSchema) {
  { Span s("kernels", "spgemm"); }
  instant("dist", "fault/drop", intern("from=0 to=1 tag=7 seq=3"));
  const auto json = chrome_json(snapshot());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"kronlab-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_unix_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"spgemm\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("fault/drop"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos); // thread names
}

TEST_F(TraceTest, MergeAlignsEpochsAndSeparatesThreads) {
  TraceFile a;
  a.epoch_unix_ns = 1000000;
  TraceEvent ea;
  ea.ts_ns = 10;
  ea.tid = 0;
  ea.name = "a";
  ea.cat = "test";
  ea.thread_name = "rank 0";
  a.events.push_back(ea);

  TraceFile b;
  b.epoch_unix_ns = 1000500; // started 500ns later on the shared clock
  TraceEvent eb = ea;
  eb.name = "b";
  eb.thread_name = "rank 1";
  b.events.push_back(eb);

  const auto merged = merge({a, b});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].name, "a");
  EXPECT_EQ(merged[0].ts_ns, 10u);
  EXPECT_EQ(merged[1].name, "b");
  EXPECT_EQ(merged[1].ts_ns, 510u); // shifted onto a's epoch
  EXPECT_NE(merged[0].tid, merged[1].tid); // tracks never collide
}

// ---------------------------------------------------------------------------
// Distributed runtime annotations.

TEST_F(TraceTest, DroppedMessagesEmitOneAnnotationEach) {
  dist::FaultPlan plan;
  plan.seed = 7;
  plan.drop = 0.3;
  std::atomic<std::int64_t> dropped{0};
  dist::run(2, plan, [&](dist::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 200; ++i) comm.send(1, 1, {i});
      comm.barrier();
    } else {
      comm.barrier();
      while (comm.recv_deadline(0, 1, std::chrono::milliseconds(5))) {
      }
      dropped = comm.fault_stats().dropped;
    }
  });
  const auto evs = snapshot();
  EXPECT_GT(dropped.load(), 0);
  EXPECT_EQ(count_named(evs, "fault/drop"),
            static_cast<std::size_t>(dropped.load()));
  // Annotations carry the channel coordinates for the timeline.
  for (const auto& e : evs) {
    if (e.name != "fault/drop") continue;
    EXPECT_NE(e.detail.find("from=0"), std::string::npos);
    EXPECT_NE(e.detail.find("seq="), std::string::npos);
  }
  // Rank threads announce themselves on the timeline.
  std::size_t rank_spans = 0;
  for (const auto& e : evs) {
    if (e.kind == Kind::span && e.name == "rank") {
      ++rank_spans;
      EXPECT_TRUE(e.thread_name == "rank 0" || e.thread_name == "rank 1");
    }
  }
  EXPECT_EQ(rank_spans, 2u);
}

TEST_F(TraceTest, ExchangeRetriesEmitOneAnnotationEach) {
  Rng rng(21);
  const auto kp = kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(16, 40, rng),
      gen::random_bipartite(5, 5, 12, rng));
  const count_t expect = kron::global_squares(kp);
  const kron::PartitionedStream ps(kp, 4);

  dist::FaultPlan plan;
  plan.seed = 99;
  plan.drop = 0.2;
  plan.duplicate = 0.2;
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> dup_requests{0};
  dist::run(4, plan, [&](dist::Comm& comm) {
    const auto shard = dist::generate_shard(kp, ps, comm.rank());
    dist::ExchangeStats stats;
    const count_t counted =
        dist::distributed_global_butterflies(comm, shard, {}, &stats);
    EXPECT_EQ(counted, expect);
    retries += stats.retries;
    dup_requests += stats.dup_requests;
  });
  const auto evs = snapshot();
  EXPECT_EQ(count_named(evs, "exchange/retry"),
            static_cast<std::size_t>(retries.load()));
  EXPECT_EQ(count_named(evs, "exchange/dup_request"),
            static_cast<std::size_t>(dup_requests.load()));
  for (const auto& e : evs) {
    if (e.name != "exchange/retry") continue;
    EXPECT_NE(e.detail.find("epoch="), std::string::npos);
    EXPECT_NE(e.detail.find("attempt="), std::string::npos);
  }
  // The exchange itself shows up as one span per rank.
  EXPECT_EQ(count_named(evs, "ghost_exchange"), 4u);
}

} // namespace
} // namespace kronlab::trace
