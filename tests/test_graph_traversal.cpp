// Tests for BFS, connected components, eccentricity and diameter.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/graph/eccentricity.hpp"
#include "kronlab/graph/traversal.hpp"

namespace kronlab::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const auto p5 = gen::path_graph(5);
  const auto d = bfs_distances(p5, 0);
  EXPECT_EQ(d, (std::vector<index_t>{0, 1, 2, 3, 4}));
  const auto d2 = bfs_distances(p5, 2);
  EXPECT_EQ(d2, (std::vector<index_t>{2, 1, 0, 1, 2}));
}

TEST(Bfs, UnreachableVerticesMarked) {
  const auto g =
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2));
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], unreachable);
  EXPECT_EQ(d[3], unreachable);
}

TEST(Bfs, RejectsBadSource) {
  const auto p = gen::path_graph(3);
  EXPECT_THROW(bfs_distances(p, 3), invalid_argument);
  EXPECT_THROW(bfs_distances(p, -1), invalid_argument);
}

TEST(Components, CountsAndLabels) {
  const auto g = gen::disjoint_union(
      gen::cycle_graph(4), gen::disjoint_union(gen::path_graph(3),
                                               gen::path_graph(1)));
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3);
  const auto sizes = c.sizes();
  EXPECT_EQ(sizes, (std::vector<index_t>{4, 3, 1}));
  // Vertices in the same block share labels.
  EXPECT_EQ(c.label[0], c.label[3]);
  EXPECT_NE(c.label[0], c.label[4]);
}

TEST(Components, ConnectedPredicates) {
  EXPECT_TRUE(is_connected(gen::cycle_graph(5)));
  EXPECT_FALSE(is_connected(
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2))));
  EXPECT_TRUE(is_connected(Adjacency())); // empty graph
  EXPECT_TRUE(is_connected(gen::path_graph(1)));
}

TEST(Eccentricity, PathValues) {
  const auto p5 = gen::path_graph(5);
  EXPECT_EQ(eccentricities(p5),
            (std::vector<index_t>{4, 3, 2, 3, 4}));
  EXPECT_EQ(diameter(p5), 4);
  EXPECT_EQ(radius(p5), 2);
}

TEST(Eccentricity, CycleIsVertexTransitive) {
  const auto c6 = gen::cycle_graph(6);
  for (const index_t e : eccentricities(c6)) EXPECT_EQ(e, 3);
  EXPECT_EQ(diameter(c6), 3);
  EXPECT_EQ(radius(c6), 3);
}

TEST(Eccentricity, ThrowsOnDisconnected) {
  const auto g =
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2));
  EXPECT_THROW(eccentricities(g), domain_error);
  EXPECT_THROW(diameter(g), domain_error);
}

TEST(Eccentricity, HypercubeDiameterIsDimension) {
  EXPECT_EQ(diameter(gen::hypercube(4)), 4);
  EXPECT_EQ(radius(gen::hypercube(4)), 4);
}

} // namespace
} // namespace kronlab::graph
