// Tests for the per-destination message aggregator (dist/aggregator.hpp)
// and its integration with the row-granular ghost-row exchange.
//
// Covers, per the aggregation design contract:
//   * wire format: singles ship raw, batches frame/unpack losslessly,
//     malformed batches are rejected with typed errors;
//   * flush policy determinism: capacity flushes split a frame stream
//     into predictable batches, deadline flushes fire exactly when the
//     oldest buffered frame ages out (poll()/next_deadline());
//   * counter accounting: frames_enqueued == rows_coalesced +
//     single_flushes in both aggregated and disabled (per-row) modes;
//   * batched retry idempotence: under drop/duplicate/delay fault plans
//     a retried or duplicated batch delivers each ghost row exactly once
//     (the distributed count stays bit-identical to the factored truth);
//   * a many-rank chaos soak with every rank enqueueing, polling, and
//     draining concurrently — the TSan target for this subsystem.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/dist/aggregator.hpp"
#include "kronlab/dist/comm.hpp"
#include "kronlab/dist/sharded.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/kron/ground_truth.hpp"

namespace kronlab::dist {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr int kTag = 42;

/// Options that never flush on their own: unit tests drive every flush
/// explicitly so batch boundaries are deterministic.
AggregatorOptions manual_only() {
  AggregatorOptions opt;
  opt.capacity_words = 1 << 20;
  opt.deadline = microseconds(3'600'000'000); // one hour: never in-test
  return opt;
}

double fault_rate_scale() {
  const char* env = std::getenv("KRONLAB_FAULT_RATE");
  if (env != nullptr && std::string(env) == "high") return 5.0;
  return 1.0;
}

RetryConfig fast_retry() {
  RetryConfig cfg;
  cfg.timeout = milliseconds(2);
  cfg.max_retries = 2;
  cfg.max_backoff = milliseconds(8);
  return cfg;
}

kron::BipartiteKronecker sample_product(std::uint64_t seed) {
  Rng rng(seed);
  return kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(16, 40, rng),
      gen::random_bipartite(5, 5, 12, rng));
}

// ---------------------------------------------------------------------------
// Wire format.

TEST(AggregatorWire, SingleFrameShipsRawOnTheWire) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, manual_only());
      agg.enqueue(1, {5, 1, 2, 3});
      agg.flush(1);
      EXPECT_EQ(agg.stats().single_flushes, 1);
      EXPECT_EQ(agg.stats().batches_sent, 0);
    } else {
      // The receiver sees the frame byte-identical to an unaggregated
      // send — no batch header for a buffer of one.
      const auto msg = comm.recv(0, kTag);
      EXPECT_FALSE(Aggregator::is_batch(msg));
      EXPECT_EQ(msg, (Message{5, 1, 2, 3}));
    }
  });
}

TEST(AggregatorWire, BatchRoundTripsLosslesslyInOrder) {
  run(2, [](Comm& comm) {
    const std::vector<Message> frames = {
        {7, 0, 11}, {7, 1, 22, 23}, {7, 2}, {9, 0, 44, 45, 46}};
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, manual_only());
      for (const auto& f : frames) agg.enqueue(1, Message(f));
      agg.flush_all();
      EXPECT_EQ(agg.stats().batches_sent, 1);
      EXPECT_EQ(agg.stats().rows_coalesced, 4);
      EXPECT_GT(agg.stats().bytes_saved, 0);
    } else {
      const auto raw = comm.recv(0, kTag);
      ASSERT_TRUE(Aggregator::is_batch(raw));
      const auto got = Aggregator::unpack(raw);
      ASSERT_EQ(got.size(), frames.size());
      for (std::size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ(got[i], frames[i]);
      }
    }
  });
}

TEST(AggregatorWire, RecvFramesUnpacksBatchesAndWrapsSingles) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, manual_only());
      agg.enqueue(1, {1, 10});
      agg.enqueue(1, {1, 20});
      agg.flush(1); // batch of two
      agg.enqueue(1, {1, 30});
      agg.flush(1); // raw single
    } else {
      Aggregator agg(comm, kTag, manual_only());
      const auto batch = agg.recv_frames(milliseconds(2000));
      ASSERT_TRUE(batch.has_value());
      EXPECT_EQ(batch->first, 0);
      ASSERT_EQ(batch->second.size(), 2u);
      EXPECT_EQ(batch->second[0], (Message{1, 10}));
      EXPECT_EQ(batch->second[1], (Message{1, 20}));
      const auto single = agg.recv_frames(milliseconds(2000));
      ASSERT_TRUE(single.has_value());
      ASSERT_EQ(single->second.size(), 1u);
      EXPECT_EQ(single->second[0], (Message{1, 30}));
    }
  });
}

TEST(AggregatorWire, MalformedBatchesAreRejected) {
  const word_t magic = Aggregator::kBatchMagic;
  // Header truncated.
  EXPECT_THROW((void)Aggregator::unpack({magic}), invalid_argument);
  // Negative frame count.
  EXPECT_THROW((void)Aggregator::unpack({magic, -1}), invalid_argument);
  // Frame length runs past the end.
  EXPECT_THROW((void)Aggregator::unpack({magic, 1, 5, 1, 2}),
               invalid_argument);
  // Fewer frames than the count promises.
  EXPECT_THROW((void)Aggregator::unpack({magic, 2, 1, 7}),
               invalid_argument);
  // Trailing words after the last frame.
  EXPECT_THROW((void)Aggregator::unpack({magic, 1, 1, 7, 99}),
               invalid_argument);
  // A well-formed batch of one empty + one 2-word frame parses.
  const auto frames = Aggregator::unpack({magic, 2, 0, 2, 4, 5});
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].empty());
  EXPECT_EQ(frames[1], (Message{4, 5}));
}

// ---------------------------------------------------------------------------
// Flush policy.

TEST(AggregatorFlush, CapacityFlushesAreDeterministic) {
  run(2, [](Comm& comm) {
    AggregatorOptions opt = manual_only();
    opt.capacity_words = 8; // exactly two 4-word frames per batch
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, opt);
      for (word_t i = 0; i < 6; ++i) agg.enqueue(1, {1, 0, i, 99});
      EXPECT_EQ(agg.stats().capacity_flushes, 3);
      EXPECT_EQ(agg.stats().batches_sent, 3);
      EXPECT_EQ(agg.stats().rows_coalesced, 6);
      EXPECT_EQ(agg.stats().single_flushes, 0);
      EXPECT_EQ(agg.stats().deadline_flushes, 0);
    } else {
      Aggregator agg(comm, kTag, opt);
      for (int b = 0; b < 3; ++b) {
        const auto got = agg.recv_frames(milliseconds(2000));
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(got->second.size(), 2u);
        EXPECT_EQ(got->second[0][2], 2 * b);
        EXPECT_EQ(got->second[1][2], 2 * b + 1);
      }
    }
  });
}

TEST(AggregatorFlush, OversizeFrameFlushesBufferThenItself) {
  run(2, [](Comm& comm) {
    AggregatorOptions opt = manual_only();
    opt.capacity_words = 4;
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, opt);
      agg.enqueue(1, {1, 7});
      // Larger than capacity on its own: the buffered frame flushes as a
      // single, then the oversize frame flushes as its own single.
      agg.enqueue(1, {1, 1, 2, 3, 4, 5});
      EXPECT_EQ(agg.stats().single_flushes, 2);
      EXPECT_EQ(agg.stats().batches_sent, 0);
      EXPECT_EQ(agg.stats().capacity_flushes, 2);
    } else {
      EXPECT_EQ(comm.recv(0, kTag), (Message{1, 7}));
      EXPECT_EQ(comm.recv(0, kTag), (Message{1, 1, 2, 3, 4, 5}));
    }
  });
}

TEST(AggregatorFlush, DeadlineFlushFiresWhenOldestFrameAges) {
  run(2, [](Comm& comm) {
    AggregatorOptions opt = manual_only();
    opt.deadline = microseconds(2000);
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, opt);
      agg.enqueue(1, {1, 10});
      agg.enqueue(1, {1, 20});
      ASSERT_TRUE(agg.next_deadline().has_value());
      agg.poll(); // too early: nothing ages out yet
      EXPECT_EQ(agg.stats().deadline_flushes, 0);
      std::this_thread::sleep_for(milliseconds(5));
      agg.poll();
      EXPECT_EQ(agg.stats().deadline_flushes, 1);
      EXPECT_EQ(agg.stats().batches_sent, 1);
      EXPECT_EQ(agg.stats().rows_coalesced, 2);
      EXPECT_FALSE(agg.next_deadline().has_value());
    } else {
      Aggregator agg(comm, kTag, opt);
      const auto got = agg.recv_frames(milliseconds(2000));
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->second.size(), 2u);
    }
  });
}

TEST(AggregatorFlush, DestructorFlushesAsManual) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, manual_only());
      agg.enqueue(1, {1, 10});
      agg.enqueue(1, {1, 20});
      // No explicit flush: the destructor drains the buffer.
    } else {
      Aggregator agg(comm, kTag, manual_only());
      const auto got = agg.recv_frames(milliseconds(2000));
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->second.size(), 2u);
    }
  });
}

// ---------------------------------------------------------------------------
// Counter accounting.

TEST(AggregatorCounters, EnqueuedEqualsCoalescedPlusSingles) {
  run(2, [](Comm& comm) {
    AggregatorOptions opt = manual_only();
    opt.capacity_words = 10;
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, opt);
      // A mix of capacity flushes, a manual batch, and a manual single.
      for (word_t i = 0; i < 9; ++i) agg.enqueue(1, {1, i, 0, 0});
      agg.flush_all();
      agg.enqueue(1, {1, 100});
      agg.flush_all();
      const auto& st = agg.stats();
      EXPECT_EQ(st.frames_enqueued, 10);
      EXPECT_EQ(st.frames_enqueued, st.rows_coalesced + st.single_flushes);
      EXPECT_EQ(st.capacity_flushes + st.deadline_flushes +
                    st.manual_flushes,
                st.batches_sent + st.single_flushes);
    } else {
      Aggregator agg(comm, kTag, opt);
      count_t frames = 0;
      while (frames < 10) {
        const auto got = agg.recv_frames(milliseconds(2000));
        ASSERT_TRUE(got.has_value());
        frames += static_cast<count_t>(got->second.size());
      }
      EXPECT_EQ(frames, 10);
    }
  });
}

TEST(AggregatorCounters, DisabledModeCountsEveryFrameAsSingle) {
  run(2, [](Comm& comm) {
    AggregatorOptions opt;
    opt.enabled = false;
    if (comm.rank() == 0) {
      Aggregator agg(comm, kTag, opt);
      for (word_t i = 0; i < 5; ++i) agg.enqueue(1, {1, i});
      agg.flush_all(); // no-op: nothing ever buffers
      const auto& st = agg.stats();
      EXPECT_EQ(st.frames_enqueued, 5);
      EXPECT_EQ(st.single_flushes, 5);
      EXPECT_EQ(st.rows_coalesced, 0);
      EXPECT_EQ(st.batches_sent, 0);
      EXPECT_EQ(st.bytes_saved, 0);
      EXPECT_EQ(st.frames_enqueued, st.rows_coalesced + st.single_flushes);
    } else {
      for (word_t i = 0; i < 5; ++i) {
        const auto msg = comm.recv(0, kTag);
        EXPECT_FALSE(Aggregator::is_batch(msg));
        EXPECT_EQ(msg, (Message{1, i}));
      }
    }
  });
}

TEST(AggregatorCounters, StatsMergeSumsEveryField) {
  AggregatorStats a;
  a.frames_enqueued = 10;
  a.rows_coalesced = 7;
  a.single_flushes = 3;
  a.batches_sent = 2;
  a.capacity_flushes = 1;
  a.deadline_flushes = 1;
  a.manual_flushes = 3;
  a.bytes_saved = 256;
  AggregatorStats b = a;
  b.merge(a);
  EXPECT_EQ(b.frames_enqueued, 20);
  EXPECT_EQ(b.rows_coalesced, 14);
  EXPECT_EQ(b.single_flushes, 6);
  EXPECT_EQ(b.batches_sent, 4);
  EXPECT_EQ(b.capacity_flushes, 2);
  EXPECT_EQ(b.deadline_flushes, 2);
  EXPECT_EQ(b.manual_flushes, 6);
  EXPECT_EQ(b.bytes_saved, 512);
}

TEST(AggregatorOptionsEnv, NoAggregateEnvDisables) {
  // from_env() is the CI escape hatch; exercise both polarities without
  // leaking the variable into other tests.
  const char* prev = std::getenv("KRONLAB_NO_AGGREGATE");
  const std::string saved = prev ? prev : "";
  setenv("KRONLAB_NO_AGGREGATE", "1", 1);
  EXPECT_FALSE(AggregatorOptions::from_env().enabled);
  setenv("KRONLAB_NO_AGGREGATE", "0", 1);
  EXPECT_TRUE(AggregatorOptions::from_env().enabled);
  unsetenv("KRONLAB_NO_AGGREGATE");
  EXPECT_TRUE(AggregatorOptions::from_env().enabled);
  if (prev) setenv("KRONLAB_NO_AGGREGATE", saved.c_str(), 1);
}

// ---------------------------------------------------------------------------
// Exchange integration: retry/dedup semantics through the aggregator.

TEST(AggregatedExchange, AggregatedAndPerRowCountsAgree) {
  const auto kp = sample_product(31);
  const count_t expect = kron::global_squares(kp);
  const kron::PartitionedStream ps(kp, 4);
  for (const bool aggregate : {true, false}) {
    AggregatorOptions opt;
    opt.enabled = aggregate;
    run(4, [&](Comm& comm) {
      const auto shard = generate_shard(kp, ps, comm.rank());
      ExchangeStats stats;
      EXPECT_EQ(
          distributed_global_butterflies(comm, shard, {}, &stats, opt),
          expect);
      EXPECT_EQ(stats.agg.frames_enqueued,
                stats.agg.rows_coalesced + stats.agg.single_flushes);
      if (aggregate) {
        // Ghost-row traffic at 4 ranks must actually coalesce.
        EXPECT_GT(stats.agg.rows_coalesced, 0);
        EXPECT_GT(stats.agg.batches_sent, 0);
      } else {
        EXPECT_EQ(stats.agg.rows_coalesced, 0);
        EXPECT_EQ(stats.agg.batches_sent, 0);
        EXPECT_GT(stats.agg.single_flushes, 0);
      }
    });
  }
}

TEST(AggregatedExchange, DuplicatedBatchesDeliverEachRowOnce) {
  // Heavy duplication: whole batched wire messages are delivered twice,
  // and the per-row dedup (pending-set on the requester, reply cache on
  // the responder) must absorb every copy — an exact count proves no row
  // was double-merged into the ghost cache.
  const auto kp = sample_product(32);
  const count_t expect = kron::global_squares(kp);
  const double s = fault_rate_scale();
  FaultPlan plan;
  plan.seed = 77;
  plan.duplicate = std::min(0.3 * s, 0.6);
  const kron::PartitionedStream ps(kp, 4);
  run(4, plan, [&](Comm& comm) {
    const auto shard = generate_shard(kp, ps, comm.rank());
    ExchangeStats stats;
    EXPECT_EQ(distributed_global_butterflies(comm, shard, {}, &stats),
              expect);
    if (comm.rank() == 0) {
      EXPECT_GT(comm.fault_stats().duplicated, 0);
    }
  });
}

TEST(AggregatedExchange, RetriedBatchesAreDedupedUnderDrops) {
  // Drops force request retries; a retried request narrows to the rows
  // still missing, and re-served rows are absorbed as duplicates.  Runs
  // both aggregated and per-row so the batched and single-frame retry
  // paths both stay exact.
  const auto kp = sample_product(33);
  const count_t expect = kron::global_squares(kp);
  const double s = fault_rate_scale();
  FaultPlan plan;
  plan.seed = 78;
  plan.drop = std::min(0.15 * s, 0.3);
  plan.duplicate = std::min(0.15 * s, 0.3);
  plan.delay = std::min(0.15 * s, 0.3);
  const kron::PartitionedStream ps(kp, 4);
  for (const bool aggregate : {true, false}) {
    AggregatorOptions opt;
    opt.enabled = aggregate;
    run(4, plan, [&](Comm& comm) {
      const auto shard = generate_shard(kp, ps, comm.rank());
      ExchangeStats stats;
      EXPECT_EQ(
          distributed_global_butterflies(comm, shard, {}, &stats, opt),
          expect);
      if (comm.rank() == 0) {
        const auto faults = comm.fault_stats();
        EXPECT_GT(faults.dropped + faults.duplicated + faults.delayed, 0);
      }
    });
  }
}

TEST(AggregatedExchange, RetryExhaustionStillThrowsTimeout) {
  const auto kp = sample_product(34);
  const kron::PartitionedStream ps(kp, 2);
  FaultPlan plan;
  plan.drop = 1.0; // no application message ever arrives
  AggregatorOptions opt; // aggregation on: batched requests also time out
  EXPECT_THROW(
      run(2, plan,
          [&](Comm& comm) {
            const auto shard = generate_shard(kp, ps, comm.rank());
            distributed_global_butterflies(comm, shard, fast_retry(),
                                           nullptr, opt);
          }),
      timeout_error);
}

// ---------------------------------------------------------------------------
// Chaos soak: every rank enqueues to every other rank while draining its
// own tag — the TSan target exercising concurrent aggregator instances
// over one Comm fabric.

TEST(AggregatorChaos, AllRanksExchangeThroughAggregatorsConcurrently) {
  const index_t ranks = 6;
  const word_t per_peer = 200;
  run(ranks, [&](Comm& comm) {
    AggregatorOptions opt;
    opt.capacity_words = 32;
    opt.deadline = microseconds(500);
    Aggregator agg(comm, kTag, opt);
    std::vector<count_t> got_from(static_cast<std::size_t>(ranks), 0);
    word_t payload_sum = 0;
    const auto drain = [&](milliseconds timeout) -> bool {
      const auto got = agg.recv_frames(timeout);
      if (!got) return false;
      for (const auto& f : got->second) {
        EXPECT_EQ(f.size(), 3u);
        if (f.size() != 3u) continue;
        EXPECT_EQ(f[1], got->first);
        ++got_from[static_cast<std::size_t>(f[1])];
        payload_sum += f[2];
      }
      return true;
    };
    for (word_t i = 0; i < per_peer; ++i) {
      for (index_t r = 0; r < ranks; ++r) {
        if (r == comm.rank()) continue;
        agg.enqueue(r, {1, comm.rank(), i});
      }
      agg.poll();
      drain(milliseconds(0));
    }
    agg.flush_all();
    const count_t want =
        static_cast<count_t>(ranks - 1) * static_cast<count_t>(per_peer);
    count_t total = 0;
    for (;;) {
      total = 0;
      for (const count_t c : got_from) total += c;
      if (total >= want) break;
      const bool progressed = drain(milliseconds(2000));
      ASSERT_TRUE(progressed)
          << "stalled at " << total << "/" << want << " frames";
    }
    EXPECT_EQ(total, want);
    for (index_t r = 0; r < ranks; ++r) {
      EXPECT_EQ(got_from[static_cast<std::size_t>(r)],
                r == comm.rank() ? 0 : static_cast<count_t>(per_peer));
    }
    // Every peer sent Σ i = per_peer*(per_peer-1)/2.
    EXPECT_EQ(payload_sum, static_cast<word_t>(ranks - 1) * per_peer *
                               (per_peer - 1) / 2);
    const auto& st = agg.stats();
    EXPECT_EQ(st.frames_enqueued, want);
    EXPECT_EQ(st.frames_enqueued, st.rows_coalesced + st.single_flushes);
    EXPECT_GT(st.rows_coalesced, 0);
    comm.barrier(); // nobody tears down while peers still drain
  });
}

} // namespace
} // namespace kronlab::dist
