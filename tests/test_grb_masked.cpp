// Tests for masked mxm, select, and extract (the GraphBLAS-style
// structure-restricted operations).

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/grb/masked.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::grb {
namespace {

TEST(MxmMasked, MatchesUnmaskedProductOnMaskStructure) {
  Rng rng(81);
  const auto a = gen::random_bipartite(6, 7, 18, rng);
  const auto full = mxm(a, a);
  const auto masked = mxm_masked(a, a, a);
  EXPECT_EQ(masked.nnz(), a.nnz()); // mask structure preserved
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (const index_t j : a.row_cols(i)) {
      EXPECT_EQ(masked.at(i, j), full.at(i, j));
    }
  }
}

TEST(MxmMasked, KeepsZeroAccumulations) {
  // mask has an entry where the product is 0 → entry stored with value 0.
  const auto mask = Csr<count_t>::from_dense(2, 2, {1, 1, 0, 0});
  const auto a = Csr<count_t>::from_dense(2, 2, {0, 1, 0, 0});
  const auto m = mxm_masked(mask, a, a); // a² = [[0,0],[0,0]]
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.at(0, 0), 0);
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(MxmMasked, TriangleCountingIdiom) {
  // (A²∘A)/2 row sums give per-vertex triangle counts — the classic
  // GraphBLAS kernel the §I GraphBLAS discussion leans on.
  const auto k4 = gen::complete_graph(4);
  const auto a2_masked = mxm_masked(k4, k4, k4);
  const auto t = reduce_rows(a2_masked);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t[i] / 2, 3); // each K4 vertex is in 3 triangles
  }
}

TEST(MxmMasked, M3HadamardMIdiom) {
  // The paper's Def. 9 ingredient: (M³ ∘ M) via mask.
  Rng rng(82);
  const auto m = gen::random_nonbipartite_connected(8, 16, rng);
  const auto m2 = mxm(m, m);
  const auto direct = ewise_mult(mxm(m2, m), m);
  const auto masked = mxm_masked(m, m2, m);
  // Same values on every stored edge of m (direct may drop zero values,
  // masked never does).
  for (index_t i = 0; i < m.nrows(); ++i) {
    for (const index_t j : m.row_cols(i)) {
      EXPECT_EQ(masked.at(i, j), direct.at(i, j));
    }
  }
}

TEST(MxmMasked, ValidatesShapes) {
  const auto a22 = Csr<count_t>::from_dense(2, 2, {1, 1, 1, 1});
  const auto a23 = Csr<count_t>::from_dense(2, 3, {1, 1, 1, 1, 1, 1});
  EXPECT_THROW(mxm_masked(a22, a22, a23), invalid_argument); // mask 2x2 vs 2x3
  EXPECT_THROW(mxm_masked(a23, a23, a23), invalid_argument); // inner dim
}

TEST(Select, FiltersByPredicate) {
  const auto a = Csr<count_t>::from_dense(2, 3, {1, 5, 2, 7, 0, 3});
  const auto big = select(a, [](index_t, index_t, count_t v) {
    return v >= 3;
  });
  EXPECT_EQ(big.nnz(), 3);
  EXPECT_EQ(big.at(0, 1), 5);
  EXPECT_EQ(big.at(1, 0), 7);
  const auto upper = select(a, [](index_t i, index_t j, count_t) {
    return i < j;
  });
  EXPECT_EQ(upper.nnz(), 3);
}

TEST(Extract, SubmatrixRenumbers) {
  const auto a = Csr<count_t>::from_dense(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const auto sub = extract(a, {0, 2}, {1, 2});
  EXPECT_EQ(sub.nrows(), 2);
  EXPECT_EQ(sub.ncols(), 2);
  EXPECT_EQ(sub.at(0, 0), 2);
  EXPECT_EQ(sub.at(0, 1), 3);
  EXPECT_EQ(sub.at(1, 0), 8);
  EXPECT_EQ(sub.at(1, 1), 9);
}

TEST(Extract, ValidatesIndexLists) {
  const auto a = Csr<count_t>::from_dense(2, 2, {1, 1, 1, 1});
  EXPECT_THROW(extract(a, {1, 0}, {0}), invalid_argument); // not increasing
  EXPECT_THROW(extract(a, {0, 2}, {0}), invalid_argument); // out of range
  EXPECT_THROW(extract(a, {0}, {0, 5}), invalid_argument);
}

TEST(Extract, InducedSubgraphIdiom) {
  // extract(A, S, S) is the induced-subgraph adjacency — used by the
  // community benches.
  const auto k5 = gen::complete_graph(5);
  const auto sub = extract(k5, {0, 2, 4}, {0, 2, 4});
  EXPECT_EQ(sub, gen::complete_graph(3));
}

} // namespace
} // namespace kronlab::grb
