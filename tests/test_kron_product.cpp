// Tests for BipartiteKronecker construction, validation, index maps and
// materialization.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/index_map.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::kron {
namespace {

TEST(IndexMap, AlphaBetaGammaRoundTrip) {
  const index_t n = 7;
  for (index_t p = 0; p < 35; ++p) {
    EXPECT_EQ(gamma(alpha(p, n), beta(p, n), n), p);
  }
  for (index_t x = 0; x < 5; ++x) {
    for (index_t y = 0; y < n; ++y) {
      const index_t p = gamma(x, y, n);
      EXPECT_EQ(alpha(p, n), x);
      EXPECT_EQ(beta(p, n), y);
    }
  }
}

TEST(IndexMap, ProductShapeSplitsAndComposes) {
  const ProductShape sh{3, 3, 4, 4};
  EXPECT_EQ(sh.rows(), 12);
  const auto [i, k] = sh.split_row(sh.row(2, 3));
  EXPECT_EQ(i, 2);
  EXPECT_EQ(k, 3);
  const auto [j, l] = sh.split_col(sh.col(1, 0));
  EXPECT_EQ(j, 1);
  EXPECT_EQ(l, 0);
}

TEST(AssumptionI, AcceptsValidFactors) {
  const auto kp = BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(1), gen::path_graph(3));
  EXPECT_EQ(kp.mode(), BipartiteKronecker::Mode::assumption_i);
  EXPECT_EQ(kp.num_vertices(), 4 * 3);
}

TEST(AssumptionI, RejectsBipartiteA) {
  EXPECT_THROW(BipartiteKronecker::assumption_i(gen::path_graph(3),
                                                gen::path_graph(3)),
               domain_error);
}

TEST(AssumptionI, RejectsNonBipartiteB) {
  EXPECT_THROW(BipartiteKronecker::assumption_i(gen::complete_graph(3),
                                                gen::cycle_graph(5)),
               domain_error);
}

TEST(AssumptionI, RejectsDisconnectedFactors) {
  const auto disc =
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2));
  EXPECT_THROW(
      BipartiteKronecker::assumption_i(gen::complete_graph(3), disc),
      domain_error);
  const auto disc_a =
      gen::disjoint_union(gen::complete_graph(3), gen::complete_graph(3));
  EXPECT_THROW(BipartiteKronecker::assumption_i(disc_a, gen::path_graph(3)),
               domain_error);
}

TEST(AssumptionI, RejectsSelfLoopsInB) {
  const auto b = graph::from_undirected_edges(2, {{0, 1}, {0, 0}});
  EXPECT_THROW(BipartiteKronecker::assumption_i(gen::complete_graph(3), b),
               domain_error);
}

TEST(AssumptionII, AddsSelfLoopsToLeftFactor) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::path_graph(3),
                                                    gen::path_graph(4));
  EXPECT_EQ(kp.mode(), BipartiteKronecker::Mode::assumption_ii);
  EXPECT_TRUE(grb::has_full_self_loops(kp.left()));
  EXPECT_EQ(kp.left().nnz(), 4 + 3); // 2·(3−1) path entries + 3 loops
}

TEST(AssumptionII, RejectsPreloopedA) {
  const auto a = grb::add_identity(gen::path_graph(3));
  EXPECT_THROW(BipartiteKronecker::assumption_ii(a, gen::path_graph(3)),
               domain_error);
}

TEST(AssumptionII, RejectsNonBipartiteFactors) {
  EXPECT_THROW(BipartiteKronecker::assumption_ii(gen::complete_graph(3),
                                                 gen::path_graph(3)),
               domain_error);
  EXPECT_THROW(BipartiteKronecker::assumption_ii(gen::path_graph(3),
                                                 gen::cycle_graph(5)),
               domain_error);
}

TEST(Raw, RequiresLoopFreeB) {
  const auto b = graph::from_undirected_edges(2, {{0, 1}, {1, 1}});
  EXPECT_THROW(BipartiteKronecker::raw(gen::path_graph(2), b),
               domain_error);
}

TEST(Raw, RequiresUndirectedFactors) {
  grb::Coo<count_t> coo(2, 2);
  coo.push(0, 1, 1); // directed
  const auto a = graph::Adjacency::from_coo(coo);
  EXPECT_THROW(BipartiteKronecker::raw(a, gen::path_graph(2)),
               domain_error);
}

TEST(Product, CountsMatchFactorArithmetic) {
  const auto kp = BipartiteKronecker::assumption_i(gen::complete_graph(4),
                                                   gen::path_graph(5));
  EXPECT_EQ(kp.num_vertices(), 20);
  EXPECT_EQ(kp.num_edges(), (12 * 8) / 2);
  const auto c = kp.materialize();
  EXPECT_EQ(graph::num_edges(c), kp.num_edges());
}

TEST(Product, DegreeQueriesMatchMaterialized) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::star_graph(3),
                                                    gen::path_graph(3));
  const auto c = kp.materialize();
  const auto d = graph::degrees(c);
  for (index_t p = 0; p < kp.num_vertices(); ++p) {
    EXPECT_EQ(kp.degree(p), d[p]);
  }
}

TEST(Product, HasEdgeMatchesMaterialized) {
  const auto kp = BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(1), gen::path_graph(3));
  const auto c = kp.materialize();
  for (index_t p = 0; p < c.nrows(); ++p) {
    for (index_t q = 0; q < c.ncols(); ++q) {
      EXPECT_EQ(kp.has_edge(p, q), c.has(p, q));
    }
  }
}

TEST(Product, KroneckerOfBipartiteFactorsIsBipartite) {
  // §III: one bipartite factor forces a bipartite product — even with a
  // non-bipartite co-factor.
  const auto kp = BipartiteKronecker::assumption_i(gen::complete_graph(3),
                                                   gen::path_graph(4));
  EXPECT_TRUE(graph::is_bipartite(kp.materialize()));
  const auto kp2 = BipartiteKronecker::assumption_ii(
      gen::path_graph(3), gen::complete_bipartite(2, 2));
  EXPECT_TRUE(graph::is_bipartite(kp2.materialize()));
}

} // namespace
} // namespace kronlab::kron
