// Tests for the paper's closed-form theorem statements: Thm 3 and Thm 4
// (vertex 4-cycles), the Thm 4 point-wise form, and the Thm 5 point-wise
// edge form — each validated against the generic factored engine and
// against direct counting on the materialized product.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/index_map.hpp"

namespace kronlab::kron {
namespace {

// -------------------------------------------------------------------------
// Thm 3: C = A ⊗ B, A non-bipartite loop-free, B bipartite loop-free.

class Thm3Test : public ::testing::TestWithParam<int> {
protected:
  std::pair<Adjacency, Adjacency> factors() const {
    switch (GetParam()) {
      case 0:
        return {gen::complete_graph(4), gen::path_graph(4)};
      case 1:
        return {gen::triangle_with_tail(2), gen::crown_graph(3)};
      case 2:
        return {gen::cycle_graph(5), gen::complete_bipartite(3, 2)};
      default: {
        Rng rng(500 + GetParam());
        return {gen::random_nonbipartite_connected(8, 15, rng),
                gen::connected_random_bipartite(4, 5, 13, rng)};
      }
    }
  }
};

TEST_P(Thm3Test, ClosedFormEqualsGenericEngine) {
  const auto [a, b] = factors();
  const auto kp = BipartiteKronecker::assumption_i(a, b);
  EXPECT_EQ(vertex_squares_thm3(a, b).materialize(),
            vertex_squares(kp).materialize());
}

TEST_P(Thm3Test, ClosedFormEqualsDirectCounting) {
  const auto [a, b] = factors();
  const auto kp = BipartiteKronecker::assumption_i(a, b);
  EXPECT_EQ(vertex_squares_thm3(a, b).materialize(),
            graph::vertex_butterflies(kp.materialize()));
}

INSTANTIATE_TEST_SUITE_P(Factors, Thm3Test, ::testing::Range(0, 6));

// -------------------------------------------------------------------------
// Thm 4: C = (A + I_A) ⊗ B, both factors bipartite loop-free.

class Thm4Test : public ::testing::TestWithParam<int> {
protected:
  std::pair<Adjacency, Adjacency> factors() const {
    switch (GetParam()) {
      case 0:
        return {gen::path_graph(2), gen::path_graph(2)}; // → C4
      case 1:
        return {gen::star_graph(3), gen::crown_graph(3)};
      case 2:
        return {gen::complete_bipartite(2, 3), gen::hypercube(3)};
      default: {
        Rng rng(600 + GetParam());
        return {gen::connected_random_bipartite(4, 4, 11, rng),
                gen::connected_random_bipartite(5, 4, 14, rng)};
      }
    }
  }
};

TEST_P(Thm4Test, ClosedFormEqualsGenericEngine) {
  const auto [a, b] = factors();
  const auto kp = BipartiteKronecker::assumption_ii(a, b);
  EXPECT_EQ(vertex_squares_thm4(a, b).materialize(),
            vertex_squares(kp).materialize());
}

TEST_P(Thm4Test, ClosedFormEqualsDirectCounting) {
  const auto [a, b] = factors();
  const auto kp = BipartiteKronecker::assumption_ii(a, b);
  EXPECT_EQ(vertex_squares_thm4(a, b).materialize(),
            graph::vertex_butterflies(kp.materialize()));
}

TEST_P(Thm4Test, PointwiseFormMatches) {
  const auto [a, b] = factors();
  const auto kp = BipartiteKronecker::assumption_ii(a, b);
  const auto s_c = graph::vertex_butterflies(kp.materialize());
  const auto s_a = vertex_squares_formula(a);
  const auto s_b = vertex_squares_formula(b);
  const auto d_a = graph::degrees(a);
  const auto d_b = graph::degrees(b);
  const auto w_a = graph::two_hop_walks(a);
  const auto w_b = graph::two_hop_walks(b);
  const index_t nb = b.nrows();
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (index_t k = 0; k < nb; ++k) {
      EXPECT_EQ(vertex_squares_pointwise_thm4(s_a[i], d_a[i], w_a[i],
                                              s_b[k], d_b[k], w_b[k]),
                s_c[gamma(i, k, nb)])
          << "vertex (" << i << "," << k << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, Thm4Test, ::testing::Range(0, 6));

// Documenting the sign typo: the canonical C4 example that pins it down.
TEST(Thm4SignNote, P2SelfLoopProductIsC4WithOneSquarePerVertex) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::path_graph(2),
                                                    gen::path_graph(2));
  const auto s = vertex_squares(kp).materialize();
  for (index_t p = 0; p < 4; ++p) EXPECT_EQ(s[p], 1);
  // The published Thm 4 signs would give 3 per vertex here; the corrected
  // implementation gives 1 — matching the direct count on the explicit C4.
  EXPECT_EQ(graph::global_butterflies(kp.materialize()), 1);
}

// -------------------------------------------------------------------------
// Thm 5: edge participation point-wise form (loop-free factors).

class Thm5Test : public ::testing::TestWithParam<int> {
protected:
  std::pair<Adjacency, Adjacency> factors() const {
    switch (GetParam()) {
      case 0:
        return {gen::complete_graph(3), gen::path_graph(2)}; // C6, no squares
      case 1:
        return {gen::complete_graph(4), gen::complete_bipartite(2, 2)};
      case 2:
        return {gen::triangle_with_tail(3), gen::crown_graph(3)};
      default: {
        Rng rng(700 + GetParam());
        return {gen::random_nonbipartite_connected(7, 14, rng),
                gen::connected_random_bipartite(4, 4, 10, rng)};
      }
    }
  }
};

TEST_P(Thm5Test, PointwiseFormMatchesDirectCounting) {
  const auto [a, b] = factors();
  const auto kp = BipartiteKronecker::assumption_i(a, b);
  const auto c = kp.materialize();
  const auto direct = graph::edge_butterflies(c);
  const auto sq_a = edge_squares_formula(a);
  const auto sq_b = edge_squares_formula(b);
  const auto d_a = graph::degrees(a);
  const auto d_b = graph::degrees(b);
  const index_t nb = b.nrows();
  // Enumerate product edges through factor-edge pairs.
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (const index_t j : a.row_cols(i)) {
      for (index_t k = 0; k < nb; ++k) {
        for (const index_t l : b.row_cols(k)) {
          const index_t p = gamma(i, k, nb);
          const index_t q = gamma(j, l, nb);
          EXPECT_EQ(edge_squares_pointwise_thm5(sq_a.at(i, j), d_a[i],
                                                d_a[j], sq_b.at(k, l),
                                                d_b[k], d_b[l]),
                    direct.at(p, q))
              << "edge (" << p << "," << q << ")";
        }
      }
    }
  }
}

TEST_P(Thm5Test, MatrixFormEqualsPointwiseForm) {
  const auto [a, b] = factors();
  const auto kp = BipartiteKronecker::assumption_i(a, b);
  const auto factored = edge_squares(kp);
  const auto sq_a = edge_squares_formula(a);
  const auto sq_b = edge_squares_formula(b);
  const auto d_a = graph::degrees(a);
  const auto d_b = graph::degrees(b);
  const index_t nb = b.nrows();
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (const index_t j : a.row_cols(i)) {
      for (index_t k = 0; k < nb; ++k) {
        for (const index_t l : b.row_cols(k)) {
          EXPECT_EQ(factored.at(gamma(i, k, nb), gamma(j, l, nb)),
                    edge_squares_pointwise_thm5(sq_a.at(i, j), d_a[i],
                                                d_a[j], sq_b.at(k, l),
                                                d_b[k], d_b[l]));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, Thm5Test, ::testing::Range(0, 6));

// -------------------------------------------------------------------------
// Domain checks for the closed forms.

TEST(TheoremPreconditions, Thm4RequiresBipartiteLoopFreeA) {
  EXPECT_THROW(
      vertex_squares_thm4(gen::complete_graph(3), gen::path_graph(3)),
      domain_error);
  const auto looped = grb::add_identity(gen::path_graph(3));
  EXPECT_THROW(vertex_squares_thm4(looped, gen::path_graph(3)),
               domain_error);
}

TEST(TheoremPreconditions, FormulasRejectSelfLoops) {
  const auto looped = grb::add_identity(gen::path_graph(3));
  EXPECT_THROW(vertex_squares_formula(looped), domain_error);
  EXPECT_THROW(edge_squares_formula(looped), domain_error);
}

} // namespace
} // namespace kronlab::kron
