// Tests for the grb matrix kernels: mxv, mxm (semiring-parameterized),
// element-wise ops, transpose, reductions, diagonal operators, scalings.

#include <gtest/gtest.h>

#include "kronlab/grb/ops.hpp"
#include "kronlab/grb/semiring.hpp"

namespace kronlab::grb {
namespace {

Csr<count_t> small() {
  // [1 2 0]
  // [0 0 3]
  // [4 0 5]
  return Csr<count_t>::from_dense(3, 3, {1, 2, 0, 0, 0, 3, 4, 0, 5});
}

TEST(Mxv, PlusTimesMatchesDense) {
  const auto a = small();
  const Vector<count_t> x(std::vector<count_t>{1, 10, 100});
  const auto y = mxv(a, x);
  EXPECT_EQ(y.data(), (std::vector<count_t>{21, 300, 504}));
}

TEST(Mxv, ShapeMismatchThrows) {
  EXPECT_THROW(mxv(small(), Vector<count_t>(4)), invalid_argument);
}

TEST(Mxv, OrAndSemiringGivesReachability) {
  const auto a = small();
  const Vector<count_t> x(std::vector<count_t>{0, 0, 7});
  const auto y = mxv<count_t, OrAnd<count_t>>(a, x);
  EXPECT_EQ(y.data(), (std::vector<count_t>{0, 1, 1}));
}

TEST(Mxm, MatchesDenseMultiplication) {
  const auto a = small();
  const auto c = mxm(a, a);
  // Dense square of the matrix above.
  const auto expect = Csr<count_t>::from_dense(
      3, 3, {1, 2, 6, 12, 0, 15, 24, 8, 25});
  EXPECT_EQ(c, expect);
}

TEST(Mxm, RectangularShapes) {
  const auto a = Csr<count_t>::from_dense(2, 3, {1, 0, 2, 0, 3, 0});
  const auto b = Csr<count_t>::from_dense(3, 2, {1, 1, 0, 1, 1, 0});
  const auto c = mxm(a, b);
  EXPECT_EQ(c, Csr<count_t>::from_dense(2, 2, {3, 1, 0, 3}));
  const auto d = mxm(b, a); // 3×2 · 2×3 → 3×3
  EXPECT_EQ(d.nrows(), 3);
  EXPECT_EQ(d.ncols(), 3);
}

TEST(Mxm, ShapeMismatchThrows) {
  const auto a = Csr<count_t>::from_dense(2, 3, {1, 0, 2, 0, 3, 0});
  EXPECT_THROW(mxm(a, a), invalid_argument);
}

TEST(Mxm, MinPlusComputesHopCosts) {
  // Path 0-1-2 with unit weights; A² over min-plus gives 2-hop costs.
  const count_t inf = MinPlus<count_t>::zero();
  Coo<count_t> coo(3, 3);
  coo.push_symmetric(0, 1, 1);
  coo.push_symmetric(1, 2, 1);
  const auto a = Csr<count_t>::from_coo(coo);
  const auto a2 = mxm<count_t, MinPlus<count_t>>(a, a);
  EXPECT_EQ(a2.at(0, 2), 2);
  EXPECT_EQ(a2.at(0, 0), 2); // back and forth
  (void)inf;
}

TEST(MatrixPower, ZeroGivesIdentity) {
  const auto a = small();
  EXPECT_EQ(matrix_power(a, 0), Csr<count_t>::identity(3));
  EXPECT_EQ(matrix_power(a, 1), a);
  EXPECT_EQ(matrix_power(a, 2), mxm(a, a));
  EXPECT_THROW(matrix_power(a, -1), invalid_argument);
}

TEST(Ewise, AddSubMult) {
  const auto a = Csr<count_t>::from_dense(2, 2, {1, 2, 0, 3});
  const auto b = Csr<count_t>::from_dense(2, 2, {5, 0, 7, 3});
  EXPECT_EQ(ewise_add(a, b),
            Csr<count_t>::from_dense(2, 2, {6, 2, 7, 6}));
  EXPECT_EQ(ewise_sub(a, b),
            Csr<count_t>::from_dense(2, 2, {-4, 2, -7, 0}));
  EXPECT_EQ(ewise_mult(a, b), Csr<count_t>::from_dense(2, 2, {5, 0, 0, 9}));
}

TEST(Ewise, HadamardIntersectsStructure) {
  const auto a = Csr<count_t>::from_dense(2, 2, {1, 2, 0, 0});
  const auto b = Csr<count_t>::from_dense(2, 2, {0, 3, 4, 0});
  const auto h = ewise_mult(a, b);
  EXPECT_EQ(h.nnz(), 1);
  EXPECT_EQ(h.at(0, 1), 6);
}

TEST(Ewise, ShapeMismatchThrows) {
  const auto a = Csr<count_t>::from_dense(2, 2, {1, 0, 0, 1});
  const auto b = Csr<count_t>::from_dense(2, 3, {1, 0, 0, 0, 1, 0});
  EXPECT_THROW(ewise_add(a, b), invalid_argument);
}

TEST(Transpose, RoundTripsAndMoves) {
  const auto a = Csr<count_t>::from_dense(2, 3, {1, 0, 2, 0, 3, 0});
  const auto at = transpose(a);
  EXPECT_EQ(at.nrows(), 3);
  EXPECT_EQ(at.ncols(), 2);
  EXPECT_EQ(at.at(2, 0), 2);
  EXPECT_EQ(at.at(1, 1), 3);
  EXPECT_EQ(transpose(at), a);
}

TEST(Reduce, RowsAndScalar) {
  const auto a = small();
  EXPECT_EQ(reduce_rows(a).data(), (std::vector<count_t>{3, 3, 9}));
  EXPECT_EQ(reduce(a), 15);
}

TEST(Vxm, MatchesTransposedMxv) {
  const auto a = Csr<count_t>::from_dense(2, 3, {1, 0, 2, 0, 3, 0});
  const Vector<count_t> x(std::vector<count_t>{5, 7});
  const auto y = vxm(x, a);
  EXPECT_EQ(y.data(), mxv(transpose(a), x).data());
  EXPECT_EQ(y.data(), (std::vector<count_t>{5, 21, 10}));
  EXPECT_THROW(vxm(Vector<count_t>(3), a), invalid_argument);
}

TEST(Vxm, QuadraticFormMatchesDot) {
  // dᵗ A d = dot(d, mxv(A, d)) = dot(vxm(d, A), d) — the #P3 kernel.
  const auto a = small();
  const Vector<count_t> d(std::vector<count_t>{1, 2, 3});
  EXPECT_EQ(dot(vxm(d, a), d), dot(d, mxv(a, d)));
}

TEST(Reduce, ColsMatchTransposedRows) {
  const auto a = small();
  EXPECT_EQ(reduce_cols(a).data(), reduce_rows(transpose(a)).data());
  EXPECT_EQ(reduce_cols(a).data(), (std::vector<count_t>{5, 2, 8}));
}

TEST(Diag, VectorAndMatrixOperators) {
  const auto a = small();
  EXPECT_EQ(diag_vector(a).data(), (std::vector<count_t>{1, 0, 5}));
  const auto d = diag_matrix(a);
  EXPECT_EQ(d.nnz(), 2);
  EXPECT_EQ(d.at(0, 0), 1);
  EXPECT_EQ(d.at(2, 2), 5);
}

TEST(Diag, SelfLoopPredicates) {
  const auto i3 = Csr<count_t>::identity(3);
  EXPECT_TRUE(has_full_self_loops(i3));
  EXPECT_FALSE(has_no_self_loops(i3));
  const auto a = Csr<count_t>::from_dense(2, 2, {0, 1, 1, 0});
  EXPECT_TRUE(has_no_self_loops(a));
  EXPECT_FALSE(has_full_self_loops(a));
  const auto m = add_identity(a);
  EXPECT_TRUE(has_full_self_loops(m));
  EXPECT_EQ(m.nnz(), 4);
}

TEST(Scaling, RowAndColScale) {
  const auto a = small();
  const Vector<count_t> u(std::vector<count_t>{2, 3, 4});
  const auto ra = row_scale(a, u);
  EXPECT_EQ(ra.at(0, 1), 4);  // 2·2
  EXPECT_EQ(ra.at(2, 2), 20); // 4·5
  const auto ca = col_scale(a, u);
  EXPECT_EQ(ca.at(0, 1), 6);  // 2·3
  EXPECT_EQ(ca.at(2, 0), 8);  // 4·2
  EXPECT_THROW(row_scale(a, Vector<count_t>(2)), invalid_argument);
}

TEST(Symmetry, DetectsSymmetricMatrices) {
  const auto sym = Csr<count_t>::from_dense(2, 2, {0, 7, 7, 1});
  EXPECT_TRUE(is_symmetric(sym));
  const auto asym = Csr<count_t>::from_dense(2, 2, {0, 7, 6, 1});
  EXPECT_FALSE(is_symmetric(asym));
  const auto rect = Csr<count_t>::from_dense(1, 2, {1, 1});
  EXPECT_FALSE(is_symmetric(rect));
}

TEST(Apply, TransformsValues) {
  const auto a = small();
  const auto sq = apply(a, [](count_t v) { return v * v; });
  EXPECT_EQ(sq.at(2, 2), 25);
  EXPECT_EQ(sq.at(0, 1), 4);
}

TEST(Mxm, CancellationDropsZeroEntries) {
  // [1 1; -1 -1]² has an all-zero product — Gustavson must drop them.
  const auto a = Csr<count_t>::from_dense(2, 2, {1, 1, -1, -1});
  const auto c = mxm(a, a);
  EXPECT_EQ(c.nnz(), 0);
}

} // namespace
} // namespace kronlab::grb
