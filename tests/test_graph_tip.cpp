// Tests for the tip (vertex-peeling) decomposition.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/tip.hpp"

namespace kronlab::graph {
namespace {

Bipartition coloring(const Adjacency& a) { return two_color(a).value(); }

TEST(Tip, TreesAreZeroTip) {
  const auto a = gen::double_star(3, 3);
  const auto part = coloring(a);
  for (int side = 0; side < 2; ++side) {
    const auto d = tip_decomposition(a, part, side);
    EXPECT_EQ(d.max_tip, 0);
  }
}

TEST(Tip, CompleteBipartiteUniform) {
  // In K_{m,n}, peeling side U: every U vertex sits in (m−1)·C(n,2)
  // butterflies and symmetry forbids earlier peeling.
  const auto a = gen::complete_bipartite(3, 4);
  const auto part = coloring(a);
  const auto d = tip_decomposition(a, part, 0);
  EXPECT_EQ(d.max_tip, 2 * 6);
  for (index_t v = 0; v < 3; ++v) {
    EXPECT_EQ(d.tip[static_cast<std::size_t>(v)], 12);
  }
  // W side untouched.
  for (index_t v = 3; v < 7; ++v) {
    EXPECT_FALSE(d.peeled_side[static_cast<std::size_t>(v)]);
    EXPECT_EQ(d.tip[static_cast<std::size_t>(v)], 0);
  }
}

TEST(Tip, C4BothSides) {
  const auto a = gen::cycle_graph(4);
  const auto part = coloring(a);
  for (int side = 0; side < 2; ++side) {
    const auto d = tip_decomposition(a, part, side);
    EXPECT_EQ(d.max_tip, 1);
  }
}

TEST(Tip, TipBoundedBySupport) {
  Rng rng(91);
  const auto a = gen::random_bipartite(8, 9, 32, rng);
  const auto part = coloring(a);
  const auto s = vertex_butterflies(a);
  for (int side = 0; side < 2; ++side) {
    const auto d = tip_decomposition(a, part, side);
    for (index_t v = 0; v < a.nrows(); ++v) {
      if (d.peeled_side[static_cast<std::size_t>(v)]) {
        EXPECT_LE(d.tip[static_cast<std::size_t>(v)], s[v]);
      }
    }
  }
}

TEST(Tip, KTipSatisfiesDefinition) {
  Rng rng(92);
  const auto a = gen::random_bipartite(7, 8, 28, rng);
  const auto part = coloring(a);
  const auto d = tip_decomposition(a, part, 0);
  for (count_t k = 1; k <= d.max_tip; ++k) {
    // Build the k-tip: side-0 vertices with tip >= k plus all of side 1.
    std::vector<std::pair<index_t, index_t>> edges;
    for (index_t i = 0; i < a.nrows(); ++i) {
      if (d.peeled_side[static_cast<std::size_t>(i)] &&
          d.tip[static_cast<std::size_t>(i)] < k) {
        continue;
      }
      for (const index_t j : a.row_cols(i)) {
        if (i >= j) continue;
        if (d.peeled_side[static_cast<std::size_t>(j)] &&
            d.tip[static_cast<std::size_t>(j)] < k) {
          continue;
        }
        edges.emplace_back(i, j);
      }
    }
    const auto sub = from_undirected_edges(a.nrows(), edges);
    const auto s = vertex_butterflies(sub);
    for (index_t v = 0; v < a.nrows(); ++v) {
      if (d.peeled_side[static_cast<std::size_t>(v)] &&
          d.tip[static_cast<std::size_t>(v)] >= k) {
        EXPECT_GE(s[v], k) << "vertex " << v << " at k=" << k;
      }
    }
  }
}

class TipOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TipOracleTest, PeelingMatchesNaiveFixpoint) {
  Rng rng(700 + static_cast<std::uint64_t>(GetParam()));
  const auto a = gen::random_bipartite(6, 6, 9 + 2 * GetParam(), rng);
  const auto part = coloring(a);
  for (int side = 0; side < 2; ++side) {
    const auto fast = tip_decomposition(a, part, side);
    const auto slow = tip_decomposition_naive(a, part, side);
    EXPECT_EQ(fast.tip, slow.tip) << "side " << side;
    EXPECT_EQ(fast.max_tip, slow.max_tip);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TipOracleTest, ::testing::Range(0, 10));

TEST(Tip, ValidatesInputs) {
  const auto a = gen::complete_bipartite(2, 2);
  const auto part = coloring(a);
  EXPECT_THROW(tip_decomposition(a, part, 2), invalid_argument);
  EXPECT_THROW(tip_decomposition(gen::complete_graph(3),
                                 Bipartition{{0, 1, 0}}, 0),
               domain_error);
  // Wrong-size bipartition.
  EXPECT_THROW(tip_decomposition(a, Bipartition{{0, 1}}, 0),
               invalid_argument);
  // Coloring that isn't a proper 2-coloring: edge (0,2) is monochrome.
  EXPECT_THROW(tip_decomposition(a, Bipartition{{0, 1, 0, 1}}, 0),
               invalid_argument);
}

} // namespace
} // namespace kronlab::graph
