// The central cross-validation suite: factored ground-truth statistics of
// Kronecker products must agree exactly with direct combinatorial counting
// on the materialized product, across factor families and both Assumption
// 1(i) and 1(ii) constructions.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/graph/triangles.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"
#include "kronlab/kron/triangles.hpp"

namespace kronlab {
namespace {

using gen::Adjacency;
using kron::BipartiteKronecker;

// -------------------------------------------------------------------------
// Def. 8 / Def. 9 linear-algebra formulas vs direct counting on one graph.

class FactorFormulaTest : public ::testing::TestWithParam<int> {
protected:
  Adjacency make_graph() const {
    switch (GetParam()) {
      case 0: return gen::cycle_graph(8);
      case 1: return gen::complete_bipartite(3, 4);
      case 2: return gen::crown_graph(4);
      case 3: return gen::hypercube(3);
      case 4: return gen::complete_graph(5);
      case 5: return gen::triangle_with_tail(3);
      case 6: {
        Rng rng(100 + GetParam());
        return gen::connected_random_bipartite(6, 9, 20, rng);
      }
      case 7: {
        Rng rng(200);
        return gen::random_nonbipartite_connected(10, 22, rng);
      }
      case 8: return gen::grid_graph(3, 4);
      default: {
        Rng rng(300);
        return gen::random_bipartite(8, 8, 24, rng);
      }
    }
  }
};

TEST_P(FactorFormulaTest, Def8MatchesWedgeCounting) {
  const auto a = make_graph();
  EXPECT_EQ(kron::vertex_squares_formula(a), graph::vertex_butterflies(a));
}

TEST_P(FactorFormulaTest, Def9MatchesWedgeCounting) {
  const auto a = make_graph();
  EXPECT_EQ(kron::edge_squares_formula(a), graph::edge_butterflies(a));
}

TEST_P(FactorFormulaTest, NaiveOracleAgrees) {
  const auto a = make_graph();
  EXPECT_EQ(graph::vertex_butterflies(a),
            graph::vertex_butterflies_naive(a));
  EXPECT_EQ(graph::edge_butterflies(a), graph::edge_butterflies_naive(a));
  EXPECT_EQ(graph::global_butterflies(a),
            graph::global_butterflies_naive(a));
}

TEST_P(FactorFormulaTest, VertexEdgeRelationHolds) {
  // s = ½ ◇ 1 (each square at a vertex uses two incident edges).
  const auto a = make_graph();
  const auto sq_edges = kron::edge_squares_formula(a);
  const auto s = kron::vertex_squares_formula(a);
  const auto row_sums = grb::reduce_rows(sq_edges);
  for (index_t i = 0; i < a.nrows(); ++i) {
    EXPECT_EQ(s[i], row_sums[i] / 2) << "vertex " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(FactorFamilies, FactorFormulaTest,
                         ::testing::Range(0, 10));

// -------------------------------------------------------------------------
// Product-level factored ground truth vs direct counting on materialize().

struct ProductCase {
  const char* name;
  int id;
};

class ProductGroundTruthTest : public ::testing::TestWithParam<int> {
protected:
  BipartiteKronecker make_product() const {
    switch (GetParam()) {
      case 0: // Fig. 1 lower-left style: triangle ⊗ path
        return BipartiteKronecker::assumption_i(gen::triangle_with_tail(0),
                                                gen::path_graph(4));
      case 1:
        return BipartiteKronecker::assumption_i(gen::complete_graph(4),
                                                gen::star_graph(3));
      case 2:
        return BipartiteKronecker::assumption_i(
            gen::triangle_with_tail(2), gen::complete_bipartite(2, 3));
      case 3: // Fig. 1 lower-right style: (P3 + I) ⊗ P4
        return BipartiteKronecker::assumption_ii(gen::path_graph(3),
                                                 gen::path_graph(4));
      case 4:
        return BipartiteKronecker::assumption_ii(gen::star_graph(3),
                                                 gen::crown_graph(3));
      case 5:
        return BipartiteKronecker::assumption_ii(
            gen::complete_bipartite(2, 3), gen::hypercube(3));
      case 6: {
        Rng rng(42);
        return BipartiteKronecker::assumption_i(
            gen::random_nonbipartite_connected(7, 13, rng),
            gen::connected_random_bipartite(4, 5, 12, rng));
      }
      case 7: {
        Rng rng(43);
        return BipartiteKronecker::assumption_ii(
            gen::connected_random_bipartite(4, 4, 10, rng),
            gen::connected_random_bipartite(5, 4, 13, rng));
      }
      case 8: // raw: disconnected bipartite ⊗ bipartite (Fig. 1 top)
        return BipartiteKronecker::raw(gen::path_graph(3),
                                       gen::cycle_graph(4));
      default: { // raw with a disconnected factor (unicode is disconnected)
        Rng rng(44);
        return BipartiteKronecker::raw(
            grb::add_identity(gen::random_bipartite(5, 6, 10, rng)),
            gen::random_bipartite(4, 5, 8, rng));
      }
    }
  }
};

TEST_P(ProductGroundTruthTest, ProductIsLoopFree) {
  const auto kp = make_product();
  EXPECT_TRUE(grb::has_no_self_loops(kp.materialize()));
}

TEST_P(ProductGroundTruthTest, EdgeAndVertexCountsMatch) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  EXPECT_EQ(kp.num_vertices(), graph::num_vertices(c));
  EXPECT_EQ(kp.num_edges(), graph::num_edges(c));
}

TEST_P(ProductGroundTruthTest, DegreesMatch) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  EXPECT_EQ(kron::degrees(kp).materialize(), graph::degrees(c));
}

TEST_P(ProductGroundTruthTest, TwoHopWalksMatch) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  EXPECT_EQ(kron::two_hop_walks(kp).materialize(),
            graph::two_hop_walks(c));
}

TEST_P(ProductGroundTruthTest, VertexSquaresMatchDirectCounting) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  EXPECT_EQ(kron::vertex_squares(kp).materialize(),
            graph::vertex_butterflies(c));
}

TEST_P(ProductGroundTruthTest, EdgeSquaresMatchDirectCounting) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  const auto direct = graph::edge_butterflies(c);
  const auto factored = kron::edge_squares(kp);
  // Compare entry-wise on C's structure (the factored materialization drops
  // structural zeros, so query instead).
  for (index_t p = 0; p < c.nrows(); ++p) {
    const auto cols = direct.row_cols(p);
    const auto vals = direct.row_vals(p);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      EXPECT_EQ(factored.at(p, cols[e]), vals[e])
          << "edge (" << p << "," << cols[e] << ")";
    }
  }
}

TEST_P(ProductGroundTruthTest, TriangleGroundTruthMatchesDirect) {
  // The prior-work formulas ([3],[12]) this paper extends: exact triangle
  // counts — identically zero whenever a factor is bipartite (§III).
  const auto kp = make_product();
  const auto c = kp.materialize();
  EXPECT_EQ(kron::vertex_triangles(kp).materialize(),
            graph::vertex_triangles(c));
  EXPECT_EQ(kron::global_triangles(kp), graph::global_triangles(c));
  const auto et_direct = graph::edge_triangles(c);
  const auto et_truth = kron::edge_triangles(kp);
  for (index_t p = 0; p < c.nrows(); ++p) {
    const auto cols = et_direct.row_cols(p);
    const auto vals = et_direct.row_vals(p);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      ASSERT_EQ(et_truth.at(p, cols[e]), vals[e])
          << "edge (" << p << "," << cols[e] << ")";
    }
  }
}

TEST_P(ProductGroundTruthTest, GlobalSquaresMatchDirectCounting) {
  const auto kp = make_product();
  const auto c = kp.materialize();
  EXPECT_EQ(kron::global_squares(kp), graph::global_butterflies(c));
}

TEST_P(ProductGroundTruthTest, EdgeSquaresRowReduceGivesVertexSquares) {
  // s_C = ½ ◇_C 1 evaluated wholly in factor space.
  const auto kp = make_product();
  const auto s_from_edges = kron::edge_squares(kp).row_reduce(2);
  const auto s_direct = kron::vertex_squares(kp);
  EXPECT_EQ(s_from_edges.materialize(), s_direct.materialize());
}

INSTANTIATE_TEST_SUITE_P(ProductFamilies, ProductGroundTruthTest,
                         ::testing::Range(0, 10));

// -------------------------------------------------------------------------
// Sublinearity sanity: factored objects expose size-independent queries.

TEST(FactoredGroundTruth, PointQueryMatchesMaterialization) {
  const auto kp = BipartiteKronecker::assumption_ii(
      gen::complete_bipartite(2, 3), gen::crown_graph(3));
  const auto sv = kron::vertex_squares(kp);
  const auto dense = sv.materialize();
  for (index_t p = 0; p < sv.size(); ++p) EXPECT_EQ(sv.at(p), dense[p]);
}

TEST(FactoredGroundTruth, ReduceMatchesMaterializedSum) {
  const auto kp = BipartiteKronecker::assumption_i(gen::complete_graph(4),
                                                   gen::hypercube(3));
  const auto sv = kron::vertex_squares(kp);
  EXPECT_EQ(sv.reduce(), grb::reduce(sv.materialize()));
  const auto em = kron::edge_squares(kp);
  count_t total = 0;
  const auto c = kp.materialize();
  for (index_t p = 0; p < c.nrows(); ++p) {
    for (const index_t q : c.row_cols(p)) total += em.at(p, q);
  }
  EXPECT_EQ(em.reduce(), total);
}

// -------------------------------------------------------------------------
// Remark 1: nontrivial products always contain squares.

TEST(Remark1, SquareFreeFactorsWithDegreeTwoYieldSquares) {
  // Double stars are square-free; their product must contain 4-cycles
  // because both factors have a vertex of degree ≥ 2.
  const auto a = gen::double_star(2, 2);
  const auto b = gen::double_star(1, 2);
  ASSERT_EQ(graph::global_butterflies(a), 0);
  ASSERT_EQ(graph::global_butterflies(b), 0);
  const auto kp = BipartiteKronecker::raw(a, b);
  EXPECT_GT(kron::global_squares(kp), 0);
}

TEST(Remark1, DisjointEdgesFactorGivesNoSquares) {
  // The only degree-1 graphs are disjoint edge unions; their products are
  // square-free — the limiting case the remark names.
  const auto edge = gen::path_graph(2);
  const auto a = gen::disjoint_union(edge, edge);
  const auto kp = BipartiteKronecker::raw(a, a);
  EXPECT_EQ(kron::global_squares(kp), 0);
}

} // namespace
} // namespace kronlab
