// Tests for the factor generators: structural guarantees, determinism,
// and parameter validation.

#include <gtest/gtest.h>

#include "kronlab/gen/bter.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/konect.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/rmat.hpp"
#include "kronlab/gen/unicode_like.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/community.hpp"
#include "kronlab/graph/stats.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/graph/triangles.hpp"
#include "kronlab/grb/ops.hpp"

#include <sstream>

namespace kronlab::gen {
namespace {

TEST(Canonical, PathCycleStarShapes) {
  EXPECT_EQ(graph::num_edges(path_graph(5)), 4);
  EXPECT_EQ(graph::num_edges(cycle_graph(5)), 5);
  EXPECT_EQ(graph::num_edges(star_graph(7)), 7);
  EXPECT_EQ(graph::num_edges(complete_graph(5)), 10);
  EXPECT_EQ(graph::num_edges(complete_bipartite(3, 4)), 12);
  EXPECT_EQ(graph::num_edges(crown_graph(4)), 12);
  EXPECT_EQ(graph::num_edges(hypercube(4)), 32);
  EXPECT_EQ(graph::num_edges(grid_graph(3, 4)), 17);
  EXPECT_EQ(graph::num_edges(double_star(2, 3)), 6);
  EXPECT_EQ(graph::num_edges(triangle_with_tail(2)), 5);
}

TEST(Canonical, BipartitenessMatrix) {
  EXPECT_TRUE(graph::is_bipartite(path_graph(6)));
  EXPECT_TRUE(graph::is_bipartite(cycle_graph(6)));
  EXPECT_FALSE(graph::is_bipartite(cycle_graph(7)));
  EXPECT_TRUE(graph::is_bipartite(star_graph(4)));
  EXPECT_FALSE(graph::is_bipartite(complete_graph(3)));
  EXPECT_TRUE(graph::is_bipartite(complete_bipartite(2, 5)));
  EXPECT_TRUE(graph::is_bipartite(crown_graph(3)));
  EXPECT_TRUE(graph::is_bipartite(hypercube(5)));
  EXPECT_TRUE(graph::is_bipartite(grid_graph(4, 4)));
  EXPECT_FALSE(graph::is_bipartite(triangle_with_tail(4)));
}

TEST(Canonical, ParameterValidation) {
  EXPECT_THROW(path_graph(0), invalid_argument);
  EXPECT_THROW(cycle_graph(2), invalid_argument);
  EXPECT_THROW(star_graph(0), invalid_argument);
  EXPECT_THROW(crown_graph(2), invalid_argument);
  EXPECT_THROW(hypercube(-1), invalid_argument);
  EXPECT_THROW(grid_graph(0, 3), invalid_argument);
}

TEST(Canonical, DisjointUnionBlocks) {
  const auto g = disjoint_union(cycle_graph(3), path_graph(2));
  EXPECT_EQ(g.nrows(), 5);
  EXPECT_EQ(graph::num_edges(g), 4);
  EXPECT_FALSE(graph::is_connected(g));
  EXPECT_FALSE(g.has(2, 3)); // no cross-block edges
}

TEST(RandomBipartite, ExactEdgeCountAndBipartite) {
  Rng rng(1);
  const auto g = random_bipartite(10, 15, 60, rng);
  EXPECT_EQ(graph::num_edges(g), 60);
  EXPECT_TRUE(graph::is_bipartite(g));
  EXPECT_EQ(graph::global_triangles(g), 0);
}

TEST(RandomBipartite, Determinism) {
  Rng r1(7), r2(7);
  EXPECT_EQ(random_bipartite(6, 6, 18, r1), random_bipartite(6, 6, 18, r2));
}

TEST(RandomBipartite, RejectsOverfullRequests) {
  Rng rng(1);
  EXPECT_THROW(random_bipartite(3, 3, 10, rng), invalid_argument);
}

TEST(ConnectedRandomBipartite, IsConnectedAndSized) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const auto g = connected_random_bipartite(7, 9, 30, rng);
    EXPECT_TRUE(graph::is_connected(g)) << "seed " << seed;
    EXPECT_TRUE(graph::is_bipartite(g));
    EXPECT_EQ(graph::num_edges(g), 30);
  }
}

TEST(ConnectedRandomBipartite, RejectsTooFewEdges) {
  Rng rng(1);
  EXPECT_THROW(connected_random_bipartite(5, 5, 8, rng), invalid_argument);
}

TEST(PreferentialBipartite, HeavyTailSkew) {
  Rng rng(3);
  const auto g = preferential_bipartite(60, 60, 350, rng);
  EXPECT_EQ(graph::num_edges(g), 350);
  EXPECT_TRUE(graph::is_bipartite(g));
  const auto sum = graph::degree_summary(g);
  // Preferential attachment must produce hubs well above the mean.
  EXPECT_GT(static_cast<double>(sum.max_degree), 3.0 * sum.mean_degree);
}

TEST(PreferentialBipartite, NearCompleteFallbackTerminates) {
  Rng rng(3);
  const auto g = preferential_bipartite(4, 4, 16, rng); // complete
  EXPECT_EQ(graph::num_edges(g), 16);
}

TEST(ChungLu, ExpectedDegreesTrackWeights) {
  Rng rng(12);
  std::vector<double> wu(40, 2.0), ww(40, 2.0);
  wu[0] = 30.0; // one heavy left vertex
  const auto g = chung_lu_bipartite(wu, ww, rng);
  EXPECT_TRUE(graph::is_bipartite(g));
  const auto d = graph::degrees(g);
  EXPECT_GT(d[0], 10); // ~28 expected
}

TEST(ChungLu, RejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(chung_lu_bipartite({}, {1.0}, rng), invalid_argument);
  EXPECT_THROW(chung_lu_bipartite({-1.0}, {1.0}, rng), invalid_argument);
  EXPECT_THROW(chung_lu_bipartite({0.0}, {0.0}, rng), invalid_argument);
}

TEST(PlantedCommunity, DenseBlockIsDense) {
  PlantedCommunity pc;
  pc.nu = 30;
  pc.nw = 30;
  pc.r = 10;
  pc.t = 10;
  pc.p_in = 0.9;
  pc.p_out = 0.01;
  Rng rng(8);
  const auto g = planted_community_bipartite(pc, rng);
  const auto part = graph::two_color(g).value();
  graph::BipartiteSubset s;
  for (index_t i = 0; i < pc.r; ++i) s.r.push_back(i);
  for (index_t k = 0; k < pc.t; ++k) s.t.push_back(pc.nu + k);
  const auto st = graph::community_stats(g, part, s);
  EXPECT_GT(st.rho_in, 0.7);
  EXPECT_LT(st.rho_out, 0.1);
}

TEST(RandomNonbipartite, ConnectedWithOddCycle) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const auto g = random_nonbipartite_connected(9, 16, rng);
    EXPECT_TRUE(graph::is_connected(g)) << "seed " << seed;
    EXPECT_FALSE(graph::is_bipartite(g)) << "seed " << seed;
    EXPECT_TRUE(grb::has_no_self_loops(g));
  }
}

TEST(Rmat, GeneratesWithinGrid) {
  RmatParams p;
  p.scale_u = 6;
  p.scale_w = 7;
  p.edges = 500;
  Rng rng(5);
  const auto g = rmat_bipartite(p, rng);
  EXPECT_EQ(g.nrows(), 64 + 128);
  EXPECT_TRUE(graph::is_bipartite(g));
  EXPECT_LE(graph::num_edges(g), 500); // dedup may drop duplicates
  EXPECT_GT(graph::num_edges(g), 300);
}

TEST(Rmat, SkewedQuadrantsProduceSkewedDegrees) {
  RmatParams p;
  p.scale_u = 7;
  p.scale_w = 7;
  p.edges = 1000;
  Rng rng(6);
  const auto g = rmat_bipartite(p, rng);
  EXPECT_GT(graph::degree_summary(g).gini, 0.3);
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatParams p;
  p.a = 0.5;
  p.b = 0.5;
  p.c = 0.5;
  p.d = 0.5;
  Rng rng(1);
  EXPECT_THROW(rmat_bipartite(p, rng), invalid_argument);
}

TEST(Bter, DiagonalBlocksAreDenser) {
  BterParams p;
  p.blocks = 3;
  p.block_u = 10;
  p.block_w = 10;
  p.p_in = 0.5;
  p.p_out = 0.01;
  Rng rng(2);
  const auto g = bter_bipartite(p, rng);
  EXPECT_TRUE(graph::is_bipartite(g));
  const index_t nu = 30;
  count_t in_block = 0, off_block = 0;
  for (index_t u = 0; u < nu; ++u) {
    for (const index_t c : g.row_cols(u)) {
      const index_t w = c - nu;
      if (u / 10 == w / 10) {
        ++in_block;
      } else {
        ++off_block;
      }
    }
  }
  EXPECT_GT(in_block, 5 * off_block);
}

TEST(UnicodeLike, MatchesKonectShape) {
  const auto g = unicode_like();
  EXPECT_EQ(g.nrows(), 254 + 614);
  EXPECT_EQ(graph::num_edges(g), 1256);
  EXPECT_TRUE(graph::is_bipartite(g));
  // Heavy-tail shape comparable to the real dataset.
  const auto sum = graph::degree_summary(g);
  EXPECT_GT(sum.max_degree, 30);
  EXPECT_GT(sum.gini, 0.4);
  // Like the real unicode network, the stand-in is disconnected.
  EXPECT_FALSE(graph::is_connected(g));
}

TEST(UnicodeLike, DeterministicCanonicalInstance) {
  EXPECT_EQ(unicode_like(), unicode_like());
}

TEST(Konect, EdgeListToAdjacency) {
  grb::BipartiteEdgeList el;
  el.n_left = 3;
  el.n_right = 2;
  el.edges = {{0, 0}, {2, 1}, {0, 0}}; // duplicate collapses
  const auto a = bipartite_adjacency_from_edge_list(el);
  EXPECT_EQ(a.nrows(), 5);
  EXPECT_TRUE(graph::is_bipartite(a));
  EXPECT_EQ(graph::num_edges(a), 2);
  EXPECT_TRUE(a.has(0, 3));
  EXPECT_TRUE(a.has(2, 4));
}

} // namespace
} // namespace kronlab::gen
