// Wire-protocol tests for the query daemon (serve/protocol.hpp): encoder /
// decoder round trips for every request and response shape, a golden-bytes
// frame (the literal on-the-wire layout "KRNLSRV1" | length | payload |
// fnv1a64), and an end-to-end check that records served over a live
// in-process connection are byte-for-byte what a direct GroundTruthOracle
// call returns on the same spec.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/serve/client.hpp"
#include "kronlab/serve/protocol.hpp"
#include "kronlab/serve/server.hpp"
#include "kronlab/serve/transport.hpp"

namespace kronlab::serve {
namespace {

kron::BipartiteKronecker make_product() {
  Rng rng(7001);
  return kron::BipartiteKronecker::assumption_ii(
      gen::connected_random_bipartite(4, 4, 10, rng),
      gen::connected_random_bipartite(4, 5, 12, rng));
}

TEST(ServeProtocol, RequestRoundTripsEveryOpcode) {
  Request req;
  req.id = 42;
  req.probes = {Probe::vertex(3),        Probe::edge(1, 9),
                Probe::degree_hist(2, 8), Probe::sample_vertex(77),
                Probe::sample_edge(78),   Probe::stats()};
  const Request back = decode_request(encode_request(req));
  EXPECT_EQ(back.id, req.id);
  ASSERT_EQ(back.probes.size(), req.probes.size());
  for (std::size_t i = 0; i < req.probes.size(); ++i) {
    EXPECT_EQ(back.probes[i].op, req.probes[i].op) << "probe " << i;
    EXPECT_EQ(back.probes[i].args, req.probes[i].args) << "probe " << i;
  }
}

TEST(ServeProtocol, ResponseRoundTripsEveryStatus) {
  Response resp;
  resp.id = 43;
  resp.status = Status::ok;
  resp.results = {
      {Op::vertex, Status::ok, {3, 4, 20, 6, double_bits(0.5)}},
      {Op::edge, Status::not_an_edge, {}},
      {Op::degree_hist, Status::ok, {1, 2, 7}},
      {Op::stats, Status::bad_probe, {}},
  };
  const Response back = decode_response(encode_response(resp));
  EXPECT_EQ(back.id, resp.id);
  EXPECT_EQ(back.status, resp.status);
  ASSERT_EQ(back.results.size(), resp.results.size());
  for (std::size_t i = 0; i < resp.results.size(); ++i) {
    EXPECT_EQ(back.results[i].op, resp.results[i].op) << "result " << i;
    EXPECT_EQ(back.results[i].status, resp.results[i].status)
        << "result " << i;
    EXPECT_EQ(back.results[i].words, resp.results[i].words)
        << "result " << i;
  }
}

TEST(ServeProtocol, ErrorResponsesRoundTrip) {
  for (const Status s : {Status::overloaded, Status::malformed,
                         Status::shutting_down}) {
    const Response back = decode_response(encode_response({9, s, {}}));
    EXPECT_EQ(back.id, 9u);
    EXPECT_EQ(back.status, s);
    EXPECT_TRUE(back.results.empty());
  }
}

TEST(ServeProtocol, RecordsRoundTripBitExact) {
  kron::VertexRecord v;
  v.p = 11;
  v.degree = 6;
  v.two_hop = 60;
  v.squares = 81;
  v.closure = 0.6;
  const auto v2 = decode_vertex_record(encode_record(v));
  EXPECT_EQ(v2.p, v.p);
  EXPECT_EQ(v2.degree, v.degree);
  EXPECT_EQ(v2.two_hop, v.two_hop);
  EXPECT_EQ(v2.squares, v.squares);
  EXPECT_EQ(double_bits(v2.closure), double_bits(v.closure));

  kron::EdgeRecord e;
  e.p = 2;
  e.q = 11;
  e.degree_p = 8;
  e.degree_q = 6;
  e.squares = 23;
  e.gamma = 0.657142857142857;
  const auto e2 = decode_edge_record(encode_record(e));
  EXPECT_EQ(e2.p, e.p);
  EXPECT_EQ(e2.q, e.q);
  EXPECT_EQ(e2.degree_p, e.degree_p);
  EXPECT_EQ(e2.degree_q, e.degree_q);
  EXPECT_EQ(e2.squares, e.squares);
  EXPECT_EQ(double_bits(e2.gamma), double_bits(e.gamma));

  const StatsRecord s{28, 96, 654};
  const auto s2 = decode_stats_record(encode_record(s));
  EXPECT_EQ(s2.num_vertices, s.num_vertices);
  EXPECT_EQ(s2.num_edges, s.num_edges);
  EXPECT_EQ(s2.global_squares, s.global_squares);

  const std::vector<std::pair<count_t, index_t>> hist = {{3, 4}, {6, 8}};
  EXPECT_EQ(decode_hist(encode_hist(hist)), hist);
}

TEST(ServeProtocol, RecordDecodersIgnoreAppendedWords) {
  // The versioning rule: within a protocol version, records may only grow
  // by appending words, and clients ignore trailing words they don't know.
  auto words = encode_record(StatsRecord{5, 6, 7});
  words.push_back(999);
  const auto s = decode_stats_record(words);
  EXPECT_EQ(s.num_vertices, 5);
  EXPECT_EQ(s.num_edges, 6);
  EXPECT_EQ(s.global_squares, 7);
}

TEST(ServeProtocol, GoldenStatsFrameBytes) {
  // Request{id=7, probes={stats}} sealed: the exact wire bytes.  This is
  // the compatibility contract — if this test breaks, the magic digit must
  // be bumped (see the versioning rule in protocol.hpp).
  const Request req{7, {Probe::stats()}};
  const auto frame = seal_frame(encode_request(req));
  const std::uint8_t expected[] = {
      0x4b, 0x52, 0x4e, 0x4c, 0x53, 0x52, 0x56, 0x31, // "KRNLSRV1"
      0x20, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 32 payload bytes
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id = 7
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 1 probe
      0x06, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // Op::stats
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 0 args
      0x05, 0x4f, 0x3c, 0x48, 0x90, 0xcc, 0x1b, 0xc1, // fnv1a64
  };
  ASSERT_EQ(frame.size(), sizeof expected);
  for (std::size_t i = 0; i < sizeof expected; ++i) {
    EXPECT_EQ(frame[i], expected[i]) << "byte " << i;
  }
  const Request back = decode_request(unseal_frame(frame));
  EXPECT_EQ(back.id, 7u);
  ASSERT_EQ(back.probes.size(), 1u);
  EXPECT_EQ(back.probes[0].op, Op::stats);
}

TEST(ServeProtocol, GoldenServerStatsFrameBytes) {
  // The introspection probe's wire layout is part of the same
  // compatibility contract as the stats frame above: one arg selecting
  // the snapshot format.
  const Request req{9, {Probe::server_stats(StatsFormat::json)}};
  const auto frame = seal_frame(encode_request(req));
  const std::uint8_t expected[] = {
      0x4b, 0x52, 0x4e, 0x4c, 0x53, 0x52, 0x56, 0x31, // "KRNLSRV1"
      0x28, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 40 payload bytes
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id = 9
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 1 probe
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // Op::server_stats
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 1 arg
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // StatsFormat::json
      0x4b, 0x30, 0x86, 0x92, 0x91, 0xa8, 0x7a, 0x77, // fnv1a64
  };
  ASSERT_EQ(frame.size(), sizeof expected);
  for (std::size_t i = 0; i < sizeof expected; ++i) {
    EXPECT_EQ(frame[i], expected[i]) << "byte " << i;
  }
  const Request back = decode_request(unseal_frame(frame));
  ASSERT_EQ(back.probes.size(), 1u);
  EXPECT_EQ(back.probes[0].op, Op::server_stats);
  ASSERT_EQ(back.probes[0].args.size(), 1u);
  EXPECT_EQ(back.probes[0].args[0],
            static_cast<word_t>(StatsFormat::json));
}

TEST(ServeProtocol, StatsTextRoundTripsUtf8) {
  const std::string text =
      "{\"schema\":\"kronlab-stats-v1\",\"uptime_seconds\":1.5}";
  for (const auto format :
       {StatsFormat::json, StatsFormat::prometheus}) {
    const auto words = encode_stats_text(format, text);
    ASSERT_GE(words.size(), 2u);
    EXPECT_EQ(words[0], static_cast<word_t>(format));
    EXPECT_EQ(words[1], static_cast<word_t>(text.size()));
    EXPECT_EQ(decode_stats_text(words), text);
  }
  // Non-multiple-of-8 lengths exercise the zero-padded tail word.
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u}) {
    const std::string t(len, 'x');
    EXPECT_EQ(decode_stats_text(encode_stats_text(StatsFormat::json, t)),
              t);
  }
}

TEST(ServeProtocol, StatsTextDecodeIgnoresTrailingWords) {
  auto words = encode_stats_text(StatsFormat::json, "{}");
  words.push_back(12345); // future appended word
  EXPECT_EQ(decode_stats_text(words), "{}");
}

TEST(ServeProtocol, StatsTextRejectsMalformedWords) {
  EXPECT_THROW((void)decode_stats_text({}), protocol_error);
  EXPECT_THROW((void)decode_stats_text({0}), protocol_error);
  // Claimed length larger than the words actually carried.
  EXPECT_THROW((void)decode_stats_text({0, 64, 0}), protocol_error);
  // Negative length.
  EXPECT_THROW((void)decode_stats_text({0, -1}), protocol_error);
  // Oversized text refuses to encode (it could never frame).
  const std::string huge(max_frame_bytes, 'x');
  EXPECT_THROW((void)encode_stats_text(StatsFormat::json, huge),
               protocol_error);
}

TEST(ServeProtocol, DoubleBitsAreLossless) {
  for (const double v : {0.0, 1.0, -1.0, 0.6, 1e-300, 1e300, 1.0 / 3.0}) {
    EXPECT_EQ(bits_double(double_bits(v)), v);
  }
}

TEST(ServeProtocol, DecodeRejectsGrammarViolations) {
  EXPECT_THROW((void)decode_request({}), protocol_error);
  EXPECT_THROW((void)decode_request({1}), protocol_error);   // no count
  EXPECT_THROW((void)decode_request({1, 0}), protocol_error); // empty batch
  EXPECT_THROW(
      (void)decode_request({1, static_cast<word_t>(max_batch_probes) + 1}),
      protocol_error);
  EXPECT_THROW((void)decode_request({1, 1, 1, 99}), protocol_error); // args
  // Trailing garbage past the last probe.
  auto words = encode_request({1, {Probe::stats()}});
  words.push_back(0);
  EXPECT_THROW((void)decode_request(words), protocol_error);
  // Response-side: negative result count, truncated result body.
  EXPECT_THROW((void)decode_response({1, 0, -1}), protocol_error);
  EXPECT_THROW((void)decode_response({1, 0, 1, 1, 0, 5}), protocol_error);
}

TEST(ServeProtocol, SealRejectsOversizedPayloads) {
  const std::vector<word_t> huge(max_frame_bytes / sizeof(word_t) + 1, 0);
  EXPECT_THROW((void)seal_frame(huge), protocol_error);
}

// ---------------------------------------------------------------------------
// Served records equal direct oracle records, byte for byte.

TEST(ServeEndToEnd, ServedRecordsMatchDirectOracle) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  Client client(std::move(client_end));

  const kron::GroundTruthOracle direct(kp);
  for (index_t p = 0; p < kp.num_vertices(); ++p) {
    const auto got = client.vertex(p);
    const auto want = direct.vertex(p);
    EXPECT_EQ(encode_record(got), encode_record(want)) << "vertex " << p;
    for (index_t q = 0; q < kp.num_vertices(); ++q) {
      const auto ge = client.try_edge(p, q);
      const auto we = direct.try_edge(p, q);
      ASSERT_EQ(ge.has_value(), we.has_value()) << p << "," << q;
      if (we) {
        EXPECT_EQ(encode_record(*ge), encode_record(*we)) << p << "," << q;
      }
    }
  }
  server.stop();
}

TEST(ServeEndToEnd, ServedHistogramAndStatsMatchDirect) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  Client client(std::move(client_end));

  const kron::GroundTruthOracle direct(kp);
  const auto hist_map = direct.degree_histogram();
  const std::vector<std::pair<count_t, index_t>> full(hist_map.begin(),
                                                      hist_map.end());
  EXPECT_EQ(client.degree_histogram(0, kp.num_vertices()), full);
  // A genuine slice: drop the first and last degree class.
  if (full.size() >= 3) {
    const std::vector<std::pair<count_t, index_t>> inner(
        full.begin() + 1, full.end() - 1);
    EXPECT_EQ(client.degree_histogram(full.front().first + 1,
                                      full.back().first - 1),
              inner);
  }
  const auto s = client.stats();
  EXPECT_EQ(s.num_vertices, kp.num_vertices());
  EXPECT_EQ(s.num_edges, kp.num_edges());
  EXPECT_EQ(s.global_squares, kron::global_squares(kp));
  server.stop();
}

TEST(ServeEndToEnd, SeededSamplesAreDeterministic) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  Client client(std::move(client_end));

  // Same seed → same record (the property that makes retries idempotent);
  // the draw must match a direct oracle draw from the same seed.
  const auto a = client.sample_edge(1234);
  const auto b = client.sample_edge(1234);
  EXPECT_EQ(encode_record(a), encode_record(b));
  Rng rng(1234);
  const auto want = server.oracle().sample_edge(rng);
  EXPECT_EQ(encode_record(a), encode_record(want));
  server.stop();
}

TEST(ServeEndToEnd, BatchedFrameAnswersInOrder) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  Client client(std::move(client_end));

  std::vector<Probe> probes;
  for (index_t p = 0; p < 8; ++p) probes.push_back(Probe::vertex(p));
  probes.push_back(Probe::edge(-1, 0)); // not_an_edge mixed into the batch
  probes.push_back(Probe::stats());
  const Response resp = client.call(std::move(probes));
  EXPECT_EQ(resp.status, Status::ok);
  ASSERT_EQ(resp.results.size(), 10u);
  for (index_t p = 0; p < 8; ++p) {
    const auto& r = resp.results[static_cast<std::size_t>(p)];
    EXPECT_EQ(r.op, Op::vertex);
    EXPECT_EQ(r.status, Status::ok);
    EXPECT_EQ(decode_vertex_record(r.words).p, p);
  }
  EXPECT_EQ(resp.results[8].status, Status::not_an_edge);
  EXPECT_EQ(resp.results[9].status, Status::ok);
  server.stop();
}

TEST(ServeEndToEnd, BadProbesGetTypedStatusNotDisconnect) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));
  Client client(std::move(client_end));

  const Response resp = client.call({
      {static_cast<Op>(99), {}},            // unknown opcode
      {Op::vertex, {}},                     // missing arg
      {Op::vertex, {kp.num_vertices()}},    // out of range
      {Op::degree_hist, {5, 1}},            // lo > hi
      Probe::stats(),                       // still answered
  });
  EXPECT_EQ(resp.status, Status::ok);
  ASSERT_EQ(resp.results.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(resp.results[static_cast<std::size_t>(i)].status,
              Status::bad_probe)
        << "probe " << i;
  }
  EXPECT_EQ(resp.results[4].status, Status::ok);
  server.stop();
}

} // namespace
} // namespace kronlab::serve
