// Tests for degeneracy ordering and k-core decomposition.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/degeneracy.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::graph {
namespace {

TEST(Degeneracy, ClosedForms) {
  EXPECT_EQ(degeneracy(gen::path_graph(8)), 1);
  EXPECT_EQ(degeneracy(gen::star_graph(9)), 1);
  EXPECT_EQ(degeneracy(gen::cycle_graph(7)), 2);
  EXPECT_EQ(degeneracy(gen::complete_graph(6)), 5);
  EXPECT_EQ(degeneracy(gen::complete_bipartite(3, 7)), 3);
  EXPECT_EQ(degeneracy(gen::grid_graph(5, 5)), 2);
  EXPECT_EQ(degeneracy(gen::hypercube(4)), 4);
  EXPECT_EQ(degeneracy(gen::crown_graph(5)), 4);
}

TEST(Degeneracy, EmptyAndSingleton) {
  EXPECT_EQ(degeneracy(gen::path_graph(1)), 0);
  EXPECT_EQ(degeneracy(Adjacency()), 0);
}

TEST(CoreNumbers, StarAndTriangleTail) {
  const auto d = core_decomposition(gen::triangle_with_tail(3));
  // Triangle vertices are 2-core; tail vertices 1-core.
  EXPECT_EQ(d.core[0], 2);
  EXPECT_EQ(d.core[1], 2);
  EXPECT_EQ(d.core[2], 2);
  EXPECT_EQ(d.core[4], 1);
  EXPECT_EQ(d.degeneracy, 2);
}

TEST(CoreNumbers, DefinitionHolds) {
  // Every vertex of the k-core subgraph has >= k neighbors inside it.
  Rng rng(15);
  const auto g = gen::preferential_bipartite(20, 20, 90, rng);
  const auto d = core_decomposition(g);
  for (count_t k = 1; k <= d.degeneracy; ++k) {
    for (index_t v = 0; v < g.nrows(); ++v) {
      if (d.core[static_cast<std::size_t>(v)] < k) continue;
      count_t inside = 0;
      for (const index_t u : g.row_cols(v)) {
        inside += (d.core[static_cast<std::size_t>(u)] >= k);
      }
      EXPECT_GE(inside, k) << "vertex " << v << " at k=" << k;
    }
  }
}

TEST(Degeneracy, OrderingWitnessesDegeneracy) {
  // In peel order, each vertex has at most δ later-ordered neighbors.
  Rng rng(16);
  const auto g = gen::random_bipartite(15, 15, 70, rng);
  const auto d = core_decomposition(g);
  ASSERT_EQ(d.order.size(), static_cast<std::size_t>(g.nrows()));
  std::vector<index_t> pos(static_cast<std::size_t>(g.nrows()));
  for (std::size_t i = 0; i < d.order.size(); ++i) {
    pos[static_cast<std::size_t>(d.order[i])] = static_cast<index_t>(i);
  }
  for (index_t v = 0; v < g.nrows(); ++v) {
    count_t later = 0;
    for (const index_t u : g.row_cols(v)) {
      later += (pos[static_cast<std::size_t>(u)] >
                pos[static_cast<std::size_t>(v)]);
    }
    EXPECT_LE(later, d.degeneracy);
  }
}

TEST(Degeneracy, RejectsSelfLoops) {
  const auto looped = grb::add_identity(gen::path_graph(3));
  EXPECT_THROW(core_decomposition(looped), domain_error);
}

} // namespace
} // namespace kronlab::graph
