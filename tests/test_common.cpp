// Tests for kronlab/common: error macros, timer formatting, PRNG.

#include <gtest/gtest.h>

#include <set>

#include "kronlab/common/error.hpp"
#include "kronlab/common/random.hpp"
#include "kronlab/common/timer.hpp"

namespace kronlab {
namespace {

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(KRONLAB_REQUIRE(false, "boom"), invalid_argument);
  EXPECT_NO_THROW(KRONLAB_REQUIRE(true, "fine"));
}

TEST(Error, MessageNamesConditionAndNote) {
  try {
    KRONLAB_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw domain_error("d"), error);
  EXPECT_THROW(throw io_error("i"), error);
  EXPECT_THROW(throw invalid_argument("a"), error);
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(format_duration(2.5), "2.500 s");
  EXPECT_EQ(format_duration(0.0125), "12.500 ms");
  EXPECT_EQ(format_duration(25e-6), "25.0 us");
}

TEST(Timer, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(3155072), "3,155,072");
  EXPECT_EQ(format_count(-1234567), "-1,234,567");
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  volatile long sink = 0;
  for (long i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds()); // ms numerically >= s for t>0
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const index_t v = rng.uniform(3, 6);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, ZipfSamplesInRangeAndSkewed) {
  Rng rng(5);
  const index_t n = 100;
  std::vector<int> hist(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < 20000; ++i) {
    const index_t v = zipf_sample(rng, n, 1.8);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, n);
    ++hist[static_cast<std::size_t>(v)];
  }
  // Rank 1 must dominate rank 10 decisively for alpha = 1.8.
  EXPECT_GT(hist[1], 5 * hist[10]);
}

TEST(Rng, ZipfRejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(zipf_sample(rng, 0, 1.5), invalid_argument);
  EXPECT_THROW(zipf_sample(rng, 10, -1.0), invalid_argument);
}

TEST(Rng, ZipfDegenerateSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf_sample(rng, 1, 2.0), 1);
}

} // namespace
} // namespace kronlab
