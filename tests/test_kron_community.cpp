// Tests for §III-C: Def. 12 product subsets, Thm 7 exact edge counts, and
// the Cor. 1 / Cor. 2 density scaling laws.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/kron/community.hpp"

namespace kronlab::kron {
namespace {

// Build a FactorCommunity over the first r left and first t right vertices
// of a bipartite block-ordered adjacency.
FactorCommunity prefix_community(const Adjacency& a, index_t n_u, index_t r,
                                 index_t t) {
  const auto part = graph::two_color(a).value();
  graph::BipartiteSubset s;
  for (index_t i = 0; i < r; ++i) s.r.push_back(i);
  for (index_t k = 0; k < t; ++k) s.t.push_back(n_u + k);
  return measure_factor_community(a, part, s);
}

TEST(FactorCommunity, DensitiesMatchDef11) {
  const auto a = gen::complete_bipartite(3, 4);
  const auto fc = prefix_community(a, 3, 2, 3);
  EXPECT_EQ(fc.m_in, 6);
  EXPECT_EQ(fc.m_out, 5);
  EXPECT_DOUBLE_EQ(fc.rho_in(), 1.0);
  EXPECT_DOUBLE_EQ(fc.rho_out(), 1.0);
}

class Thm7Test : public ::testing::TestWithParam<int> {
protected:
  struct Setup {
    Adjacency a, b;
    index_t nu_a, r_a, t_a;
    index_t nu_b, r_b, t_b;
  };

  Setup make() const {
    switch (GetParam()) {
      case 0:
        return {gen::complete_bipartite(3, 3), gen::complete_bipartite(4, 4),
                3, 2, 2, 4, 2, 3};
      case 1:
        return {gen::crown_graph(4), gen::complete_bipartite(3, 5),
                4, 2, 3, 3, 1, 2};
      default: {
        Rng rng(900 + GetParam());
        return {gen::connected_random_bipartite(5, 6, 18, rng),
                gen::connected_random_bipartite(6, 5, 19, rng),
                5, 3, 2, 6, 3, 2};
      }
    }
  }
};

TEST_P(Thm7Test, ProductCountsMatchDirectMeasurement) {
  const auto su = make();
  const auto fa = prefix_community(su.a, su.nu_a, su.r_a, su.t_a);
  const auto fb = prefix_community(su.b, su.nu_b, su.r_b, su.t_b);
  const auto predicted = product_community(fa, fb);

  // Direct measurement on the materialized product.
  const auto kp = BipartiteKronecker::assumption_ii(su.a, su.b);
  const auto c = kp.materialize();
  const auto sc = product_subset(fa, fb, graph::two_color(su.b).value(),
                                 su.b.nrows());
  const auto ind = sc.indicator(c.nrows());
  EXPECT_EQ(predicted.m_in, graph::internal_edges(c, ind));
  EXPECT_EQ(predicted.m_out, graph::external_edges(c, ind));
  EXPECT_EQ(predicted.r_size, static_cast<index_t>(sc.r.size()));
  EXPECT_EQ(predicted.t_size, static_cast<index_t>(sc.t.size()));
}

TEST_P(Thm7Test, Cor1LowerBoundHolds) {
  const auto su = make();
  const auto fa = prefix_community(su.a, su.nu_a, su.r_a, su.t_a);
  const auto fb = prefix_community(su.b, su.nu_b, su.r_b, su.t_b);
  const auto pc = product_community(fa, fb);
  EXPECT_GE(pc.rho_in(), cor1_lower_bound(fa, fb) - 1e-12);
}

TEST_P(Thm7Test, Cor2UpperBoundHolds) {
  const auto su = make();
  const auto fa = prefix_community(su.a, su.nu_a, su.r_a, su.t_a);
  const auto fb = prefix_community(su.b, su.nu_b, su.r_b, su.t_b);
  if (fa.m_out == 0 || fb.m_out == 0) GTEST_SKIP();
  const auto pc = product_community(fa, fb);
  EXPECT_LE(pc.rho_out(), cor2_upper_bound(fa, fb) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Setups, Thm7Test, ::testing::Range(0, 6));

TEST(ProductSubset, GeometryMatchesDef12) {
  const auto a = gen::complete_bipartite(2, 2);
  const auto b = gen::complete_bipartite(3, 3);
  const auto fa = prefix_community(a, 2, 1, 1);
  const auto fb = prefix_community(b, 3, 2, 1);
  const auto part_b = graph::two_color(b).value();
  const auto sc = product_subset(fa, fb, part_b, b.nrows());
  // |R_C| = |S_A|·|R_B| = 2·2, |T_C| = |S_A|·|T_B| = 2·1.
  EXPECT_EQ(sc.r.size(), 4u);
  EXPECT_EQ(sc.t.size(), 2u);
  // R_C members lie on side U of the product (B-side determines side).
  for (const index_t p : sc.r) {
    EXPECT_EQ(part_b.side[static_cast<std::size_t>(p % b.nrows())], 0);
  }
  for (const index_t p : sc.t) {
    EXPECT_EQ(part_b.side[static_cast<std::size_t>(p % b.nrows())], 1);
  }
}

TEST(Cor2, RequiresExternalEdges) {
  // A community covering the whole factor has m_out = 0.
  const auto a = gen::complete_bipartite(2, 2);
  const auto fa = prefix_community(a, 2, 2, 2);
  EXPECT_THROW(cor2_upper_bound(fa, fa), invalid_argument);
}

TEST(Cor1, OmegaReflectsSideImbalance) {
  // Perfectly balanced S_A: ω = 1/2; fully one-sided: ω = 0 → bound 0.
  const auto a = gen::complete_bipartite(4, 4);
  const auto balanced = prefix_community(a, 4, 2, 2);
  const auto lopsided = prefix_community(a, 4, 4, 0);
  const auto b = gen::complete_bipartite(3, 3);
  const auto fb = prefix_community(b, 3, 2, 2);
  EXPECT_GT(cor1_lower_bound(balanced, fb), 0.0);
  EXPECT_DOUBLE_EQ(cor1_lower_bound(lopsided, fb), 0.0);
}

} // namespace
} // namespace kronlab::kron
