// Tests for parity distances and product distance/eccentricity ground
// truth, validated against BFS on materialized products.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/eccentricity.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/distance.hpp"

namespace kronlab::kron {
namespace {

TEST(ParityDistances, PathParityStructure) {
  const auto pd = ParityDistances::compute(gen::path_graph(4));
  // Same-parity endpoints reachable only with even walks, etc.
  EXPECT_EQ(pd.even(0, 0), 0);
  EXPECT_EQ(pd.even(0, 2), 2);
  EXPECT_EQ(pd.odd(0, 1), 1);
  EXPECT_EQ(pd.odd(0, 3), 3);
  // P4 is bipartite: no odd walk between same-side vertices.
  EXPECT_EQ(pd.odd(0, 0), dist_unreachable);
  EXPECT_EQ(pd.odd(0, 2), dist_unreachable);
  // Even walk 0→1 exists by going 0→1→2→1: length... shortest even is 2?
  // 0→1→0→1 has length 3 (odd). Even walks 0→1: 0→1 is odd; shortest even
  // walk must not exist of length 2 (0→x→1 with x∈N(0)∩N(1)=∅)... P4:
  // N(0)={1}, N(1)={0,2} → no. Length 4: 0→1→2→1→... ends at 1? 0→1→0→1→?
  // Even walks to an opposite-side vertex are impossible in bipartite
  // graphs.
  EXPECT_EQ(pd.even(0, 1), dist_unreachable);
}

TEST(ParityDistances, OddCycleGivesBothParities) {
  const auto pd = ParityDistances::compute(gen::cycle_graph(5));
  EXPECT_EQ(pd.even(0, 0), 0);
  EXPECT_EQ(pd.odd(0, 0), 5); // around the cycle
  EXPECT_EQ(pd.odd(0, 1), 1);
  EXPECT_EQ(pd.even(0, 1), 4); // the long way
  EXPECT_EQ(pd.dist(0, 2), 2);
}

TEST(ParityDistances, SelfLoopFlipsParity) {
  const auto a = grb::add_identity(gen::path_graph(3));
  const auto pd = ParityDistances::compute(a);
  EXPECT_EQ(pd.odd(0, 0), 1); // the loop itself
  EXPECT_EQ(pd.even(0, 1), 2); // loop then step
}

TEST(ParityDistances, DisconnectedPairsUnreachable) {
  const auto g =
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2));
  const auto pd = ParityDistances::compute(g);
  EXPECT_EQ(pd.even(0, 2), dist_unreachable);
  EXPECT_EQ(pd.odd(0, 2), dist_unreachable);
  EXPECT_EQ(pd.dist(0, 2), dist_unreachable);
}

class ProductDistanceTest : public ::testing::TestWithParam<int> {
protected:
  BipartiteKronecker make() const {
    switch (GetParam() % 4) {
      case 0:
        return BipartiteKronecker::assumption_i(
            gen::triangle_with_tail(1 + GetParam() / 4),
            gen::path_graph(3 + GetParam() / 4));
      case 1:
        return BipartiteKronecker::assumption_ii(
            gen::path_graph(3), gen::cycle_graph(4 + 2 * (GetParam() / 4)));
      case 2: {
        Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
        return BipartiteKronecker::assumption_i(
            gen::random_nonbipartite_connected(6, 10, rng),
            gen::connected_random_bipartite(3, 4, 8, rng));
      }
      default: {
        Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
        return BipartiteKronecker::assumption_ii(
            gen::connected_random_bipartite(3, 3, 7, rng),
            gen::connected_random_bipartite(4, 3, 8, rng));
      }
    }
  }
};

TEST_P(ProductDistanceTest, DistancesMatchBfs) {
  const auto kp = make();
  const auto c = kp.materialize();
  const auto pd_m = ParityDistances::compute(kp.left());
  const auto pd_b = ParityDistances::compute(kp.right());
  for (index_t p = 0; p < c.nrows(); ++p) {
    const auto bfs = graph::bfs_distances(c, p);
    for (index_t q = 0; q < c.nrows(); ++q) {
      const index_t expect =
          bfs[static_cast<std::size_t>(q)] == graph::unreachable
              ? dist_unreachable
              : bfs[static_cast<std::size_t>(q)];
      EXPECT_EQ(product_distance(kp, pd_m, pd_b, p, q), expect)
          << "pair (" << p << "," << q << ")";
    }
  }
}

TEST_P(ProductDistanceTest, EccentricitiesMatchBfs) {
  const auto kp = make();
  const auto c = kp.materialize();
  const auto ecc_truth = product_eccentricities(kp);
  const auto ecc_bfs = graph::eccentricities(c);
  EXPECT_EQ(ecc_truth, ecc_bfs);
  EXPECT_EQ(product_diameter(kp), graph::diameter(c));
  EXPECT_EQ(product_radius(kp), graph::radius(c));
}

INSTANTIATE_TEST_SUITE_P(Products, ProductDistanceTest,
                         ::testing::Range(0, 12));

TEST(ProductDistance, DisconnectedProductDetected) {
  // bipartite ⊗ bipartite: 2 components — eccentricities must throw, and
  // cross-component distances must read unreachable.
  const auto kp =
      BipartiteKronecker::raw(gen::path_graph(3), gen::path_graph(4));
  EXPECT_THROW(product_eccentricities(kp), domain_error);
  const auto c = kp.materialize();
  const auto comp = graph::connected_components(c);
  const auto pd_m = ParityDistances::compute(kp.left());
  const auto pd_b = ParityDistances::compute(kp.right());
  for (index_t p = 0; p < c.nrows(); ++p) {
    for (index_t q = 0; q < c.nrows(); ++q) {
      const bool same =
          comp.label[static_cast<std::size_t>(p)] ==
          comp.label[static_cast<std::size_t>(q)];
      EXPECT_EQ(product_distance(kp, pd_m, pd_b, p, q) != dist_unreachable,
                same);
    }
  }
}

TEST(ProductDistance, IsolatedFactorVertexHandled) {
  // A factor with an isolated vertex: the trivial 0-walk cannot be padded,
  // so (isolated, x) pairs must be unreachable from everything but
  // themselves.
  const auto lonely =
      gen::disjoint_union(gen::triangle_with_tail(0), gen::path_graph(1));
  const auto b = gen::path_graph(2);
  const auto kp = BipartiteKronecker::raw(lonely, b);
  const auto c = kp.materialize();
  const auto pd_m = ParityDistances::compute(kp.left());
  const auto pd_b = ParityDistances::compute(kp.right());
  for (index_t p = 0; p < c.nrows(); ++p) {
    const auto bfs = graph::bfs_distances(c, p);
    for (index_t q = 0; q < c.nrows(); ++q) {
      const index_t expect =
          bfs[static_cast<std::size_t>(q)] == graph::unreachable
              ? dist_unreachable
              : bfs[static_cast<std::size_t>(q)];
      EXPECT_EQ(product_distance(kp, pd_m, pd_b, p, q), expect)
          << "pair (" << p << "," << q << ")";
    }
  }
}

TEST(ProductDistance, KnownDiameterExample) {
  // C6 = K3 ⊗ P2 — diameter 3... verify against the closed form via BFS.
  const auto kp = BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(0), gen::path_graph(2));
  EXPECT_EQ(product_diameter(kp), graph::diameter(kp.materialize()));
}

} // namespace
} // namespace kronlab::kron
