// Tests for the dynamically scheduled runtime: atomic-counter chunk
// dispatch, worker-local scratch reuse, nested-call serialization,
// exception propagation, skewed reductions, and the per-kernel metrics
// layer.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "kronlab/common/error.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"
#include "kronlab/parallel/thread_pool.hpp"

namespace kronlab {
namespace {

// ---------------------------------------------------------------------
// Coverage: every index visited exactly once under adversarial grains.

class DynamicCoverageTest
    : public ::testing::TestWithParam<std::tuple<index_t, std::size_t>> {};

TEST_P(DynamicCoverageTest, EveryIndexVisitedExactlyOnce) {
  const auto [n, threads] = GetParam();
  ThreadPool pool(threads);
  // grain 0 = auto-pick; 1 = maximal dispatch traffic; n = single chunk;
  // n + 7 = grain larger than the range.
  for (const index_t grain : {index_t{0}, index_t{1}, n, n + 7}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    parallel_for_dynamic(
        0, n, [&](index_t i) { ++hits[static_cast<std::size_t>(i)]; }, pool,
        grain);
    for (const auto& h : hits) {
      ASSERT_EQ(h.load(), 1) << "n=" << n << " grain=" << grain;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DynamicCoverageTest,
    ::testing::Combine(::testing::Values<index_t>(1, 5, 1000, 4096),
                       ::testing::Values<std::size_t>(1, 2, 4)));

TEST(ParallelForDynamic, EmptyRangeRunsNothing) {
  std::atomic<int> count{0};
  parallel_for_dynamic(5, 5, [&](index_t) { ++count; });
  parallel_for_dynamic(9, 3, [&](index_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelForRangeDynamic, ChunksPartitionTheRangeAtOddGrain) {
  ThreadPool pool(4);
  const index_t n = 10000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  std::atomic<index_t> chunks{0};
  parallel_for_range_dynamic(
      0, n,
      [&](index_t b, index_t e) {
        ASSERT_LT(b, e);
        ASSERT_LE(e - b, 7);
        ++chunks;
        for (index_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
      },
      pool, /*grain=*/7);
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  EXPECT_EQ(chunks.load(), (n + 6) / 7);
}

// ---------------------------------------------------------------------
// Worker-local scratch: allocated once per worker, reused across chunks.

TEST(DynamicScratch, AllocatedPerWorkerNotPerChunk) {
  ThreadPool pool(4);
  const index_t n = 8192;
  std::atomic<int> constructions{0};
  std::atomic<index_t> total{0};
  parallel_for_range_dynamic_scratch(
      0, n,
      [&](std::size_t) {
        ++constructions;
        return std::vector<index_t>(); // per-worker chunk log
      },
      [&](std::vector<index_t>& log, index_t b, index_t e) {
        log.push_back(b);
        total += e - b;
      },
      pool, /*grain=*/16); // 512 chunks, at most 4 scratch objects
  EXPECT_EQ(total.load(), n);
  EXPECT_GE(constructions.load(), 1);
  EXPECT_LE(constructions.load(), 4);
}

TEST(DynamicScratch, ScratchStateSurvivesAcrossChunks) {
  ThreadPool pool(2);
  const index_t n = 4096;
  std::atomic<index_t> chunks_via_scratch{0};
  parallel_for_range_dynamic_scratch(
      0, n, [&](std::size_t) { return index_t{0}; },
      [&](index_t& my_chunks, index_t, index_t) { ++my_chunks; }, pool,
      /*grain=*/8);
  // Can't observe the per-worker counters after the fact here; rerun with
  // a scratch that flushes its count on every chunk instead.
  parallel_for_range_dynamic_scratch(
      0, n, [&](std::size_t) { return index_t{0}; },
      [&](index_t& my_chunks, index_t, index_t) {
        ++my_chunks;
        chunks_via_scratch.fetch_add(1);
        // The scratch accumulates monotonically across this worker's
        // chunks — it would be 1 every time if rebuilt per chunk.
        ASSERT_GE(my_chunks, 1);
      },
      pool, /*grain=*/8);
  EXPECT_EQ(chunks_via_scratch.load(), n / 8);
}

// ---------------------------------------------------------------------
// Nested parallel calls serialize on the calling worker, covering the
// whole inner range (no dropped chunks, no deadlock).

TEST(DynamicNesting, InnerLoopsCoverTheirRange) {
  ThreadPool pool(4);
  const index_t outer = 64;
  const index_t inner = 100;
  std::vector<std::atomic<count_t>> sums(static_cast<std::size_t>(outer));
  parallel_for_dynamic(
      0, outer,
      [&](index_t o) {
        count_t local = 0;
        parallel_for_dynamic(
            0, inner, [&](index_t i) { local += i; }, pool,
            /*grain=*/3);
        sums[static_cast<std::size_t>(o)] = local;
      },
      pool, /*grain=*/1);
  for (const auto& s : sums) {
    ASSERT_EQ(s.load(), inner * (inner - 1) / 2);
  }
}

TEST(DynamicNesting, NestedReduceMatchesSerial) {
  ThreadPool pool(3);
  const auto total = parallel_reduce_dynamic<count_t>(
      0, 32, 0,
      [&](index_t o) {
        return parallel_reduce_dynamic<count_t>(
            0, 50, 0, [&](index_t i) { return o * i; },
            [](count_t x, count_t y) { return x + y; }, pool);
      },
      [](count_t x, count_t y) { return x + y; }, pool);
  count_t expected = 0;
  for (index_t o = 0; o < 32; ++o) {
    for (index_t i = 0; i < 50; ++i) expected += o * i;
  }
  EXPECT_EQ(total, expected);
}

TEST(DynamicNesting, PoolRunFromInsideRegionDegradesInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.run([&](std::size_t) {
    // Nested run() must not deadlock; it executes fn(0) inline.
    pool.run([&](std::size_t id) {
      EXPECT_EQ(id, 0u);
      ++inner_calls;
    });
  });
  EXPECT_EQ(inner_calls.load(), 4);
}

// ---------------------------------------------------------------------
// Exceptions.

TEST(DynamicExceptions, PropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_dynamic(
          0, 10000,
          [&](index_t i) {
            if (i == 4321) throw domain_error("dynamic body failed");
          },
          pool, /*grain=*/8),
      domain_error);
  // The pool stays usable after the failure.
  std::atomic<index_t> n{0};
  parallel_for_dynamic(0, 100, [&](index_t) { ++n; }, pool);
  EXPECT_EQ(n.load(), 100);
}

TEST(DynamicExceptions, PropagateFromReduce) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_reduce_dynamic<count_t>(
                   0, 5000, 0,
                   [](index_t i) -> count_t {
                     if (i == 2500) throw domain_error("reduce body failed");
                     return i;
                   },
                   [](count_t x, count_t y) { return x + y; }, pool),
               domain_error);
}

TEST(DynamicExceptions, SerialPathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      parallel_for_dynamic(
          0, 10, [&](index_t i) {
            if (i == 3) throw domain_error("serial body failed");
          },
          pool),
      domain_error);
}

// ---------------------------------------------------------------------
// Reductions on skewed work.

TEST(DynamicReduce, MatchesSerialOnSkewedWork) {
  ThreadPool pool(4);
  const index_t n = 20000;
  // Work per item varies by two orders of magnitude: item i spins over
  // (i % 199) + 1 inner iterations, mimicking hub rows.
  const auto body = [](index_t i) {
    count_t acc = 0;
    const index_t reps = (i % 199) + 1;
    for (index_t r = 0; r < reps; ++r) acc += (i ^ r) & 1023;
    return acc;
  };
  count_t serial = 0;
  for (index_t i = 0; i < n; ++i) serial += body(i);
  for (const index_t grain : {index_t{0}, index_t{1}, index_t{64}, n + 7}) {
    const auto parallel = parallel_reduce_dynamic<count_t>(
        0, n, 0, body, [](count_t x, count_t y) { return x + y; }, pool,
        grain);
    EXPECT_EQ(parallel, serial) << "grain=" << grain;
  }
}

TEST(DynamicReduce, EmptyRangeReturnsInit) {
  const auto v = parallel_reduce_dynamic<int>(
      7, 7, 42, [](index_t) { return 1; },
      [](int x, int y) { return x + y; });
  EXPECT_EQ(v, 42);
}

// ---------------------------------------------------------------------
// Metrics layer.

TEST(Metrics, KernelScopeRecordsChunksItemsAndImbalance) {
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  metrics::reset();
  ThreadPool pool(4);
  const index_t n = 5000;
  {
    metrics::KernelScope scope("test/metrics_kernel");
    parallel_for_dynamic(0, n, [](index_t) {}, pool, /*grain=*/50);
  }
  const auto snap = metrics::snapshot();
  metrics::set_enabled(was_enabled);
  const auto it = snap.find("test/metrics_kernel");
  ASSERT_NE(it, snap.end());
  EXPECT_EQ(it->second.calls, 1u);
  EXPECT_EQ(it->second.items, static_cast<std::uint64_t>(n));
  EXPECT_EQ(it->second.chunks, static_cast<std::uint64_t>(n / 50));
  EXPECT_GE(it->second.max_workers, 1u);
  EXPECT_LE(it->second.max_workers, 4u);
  EXPECT_GE(it->second.imbalance(), 1.0);
  EXPECT_GE(it->second.wall_seconds, 0.0);
  EXPECT_GE(it->second.busy_seconds, 0.0);
}

TEST(Metrics, NestedScopesAttributeToInnermost) {
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  metrics::reset();
  ThreadPool pool(2);
  {
    metrics::KernelScope outer("test/outer");
    {
      metrics::KernelScope inner("test/inner");
      parallel_for_dynamic(0, 1000, [](index_t) {}, pool, /*grain=*/10);
    }
  }
  const auto snap = metrics::snapshot();
  metrics::set_enabled(was_enabled);
  ASSERT_TRUE(snap.count("test/inner"));
  ASSERT_TRUE(snap.count("test/outer"));
  EXPECT_EQ(snap.at("test/inner").items, 1000u);
  EXPECT_EQ(snap.at("test/outer").items, 0u); // dispatch went to inner
}

TEST(Metrics, DisabledScopesRecordNothing) {
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(false);
  metrics::reset();
  {
    metrics::KernelScope scope("test/disabled");
    parallel_for_dynamic(0, 100, [](index_t) {});
  }
  const auto snap = metrics::snapshot();
  metrics::set_enabled(was_enabled);
  EXPECT_EQ(snap.count("test/disabled"), 0u);
}

TEST(Metrics, ReportsContainRecordedKernels) {
  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  metrics::reset();
  ThreadPool pool(2);
  {
    metrics::KernelScope scope("test/report_kernel");
    parallel_for_dynamic(0, 2000, [](index_t) {}, pool);
  }
  const auto text = metrics::report_text();
  const auto json = metrics::report_json();
  metrics::set_enabled(was_enabled);
  EXPECT_NE(text.find("test/report_kernel"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test/report_kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"imbalance\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// Pool override used by benches and determinism tests.

TEST(ScopedPoolOverride, RedirectsGlobalPoolAndNests) {
  ThreadPool small(1);
  ThreadPool wide(4);
  auto& base = global_pool();
  {
    ScopedPoolOverride use_small(small);
    EXPECT_EQ(&global_pool(), &small);
    {
      ScopedPoolOverride use_wide(wide);
      EXPECT_EQ(&global_pool(), &wide);
    }
    EXPECT_EQ(&global_pool(), &small);
  }
  EXPECT_EQ(&global_pool(), &base);
}

} // namespace
} // namespace kronlab
