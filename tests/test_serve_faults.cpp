// Fault-injection battery for the serve path, in the dist/comm FaultPlan
// idiom: a deterministic socket-level fault shim (FaultyTransport) drops
// or delays whole frames, and the client's retry loop plus the server's
// idempotent, seeded probes must hide every injected fault.  Also the
// admission-control story: a 1-slot queue in front of a wedged executor
// answers OVERLOADED instead of queueing without bound.

#include <gtest/gtest.h>

#include <thread>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/serve/client.hpp"
#include "kronlab/serve/protocol.hpp"
#include "kronlab/serve/server.hpp"
#include "kronlab/serve/transport.hpp"

namespace kronlab::serve {
namespace {

kron::BipartiteKronecker make_product() {
  return kron::BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(1), gen::complete_bipartite(3, 4));
}

TEST(ServeFaults, DroppedRequestsAreRetriedToSuccess) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));

  // 40% of the client's request frames vanish; every drop costs one
  // timeout and one resend.  The plan is deterministic in (seed, write
  // number), so this test replays identically on every run.
  TransportFaultPlan plan;
  plan.seed = 0xF00D;
  plan.drop = 0.4;
  auto faulty =
      std::make_unique<FaultyTransport>(std::move(client_end), plan);
  auto* shim = faulty.get();
  Client client(std::move(faulty),
                RetryPolicy{8, std::chrono::milliseconds(250)});

  const kron::GroundTruthOracle direct(kp);
  for (int i = 0; i < 8; ++i) {
    const index_t p = i % kp.num_vertices();
    const auto got = client.vertex(p);
    const auto want = direct.vertex(p);
    EXPECT_EQ(encode_record(got), encode_record(want)) << "call " << i;
  }
  // Every dropped request write produced exactly one absorbed timeout.
  const auto stats = shim->fault_stats();
  EXPECT_GT(stats.dropped, 0);
  EXPECT_EQ(client.retries(), static_cast<std::uint64_t>(stats.dropped));
  server.stop();
}

TEST(ServeFaults, DroppedResponsesAreRetriedIdempotently) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();

  // This time the *server's* writes are lossy: responses vanish, the
  // client resends, and the server re-executes.  Correct because every
  // probe is a pure read and samples are client-seeded — the re-executed
  // probe returns bit-identical words.
  TransportFaultPlan plan;
  plan.seed = 0xBEEF;
  plan.drop = 0.3;
  auto faulty =
      std::make_unique<FaultyTransport>(std::move(server_end), plan);
  auto* shim = faulty.get();
  server.adopt(std::move(faulty));
  Client client(std::move(client_end),
                RetryPolicy{8, std::chrono::milliseconds(250)});

  Rng rng(4242);
  const auto want = server.oracle().sample_edge(rng);
  for (int i = 0; i < 6; ++i) {
    const auto got = client.sample_edge(4242);
    EXPECT_EQ(encode_record(got), encode_record(want)) << "call " << i;
  }
  EXPECT_GT(shim->fault_stats().dropped, 0);
  server.stop();
  // Re-executions answered more frames than the client saw; all of them
  // were drained before stop() returned.
  EXPECT_EQ(server.in_flight(), 0u);
}

TEST(ServeFaults, DelayedFramesStayUnderTheDeadline) {
  const auto kp = make_product();
  Server server(kp);
  auto [client_end, server_end] = local_pair();
  server.adopt(std::move(server_end));

  TransportFaultPlan plan;
  plan.seed = 0xCAFE;
  plan.delay = 1.0; // every request frame arrives late...
  plan.delay_for = std::chrono::milliseconds(30);
  auto faulty =
      std::make_unique<FaultyTransport>(std::move(client_end), plan);
  auto* shim = faulty.get();
  // ...but well inside the deadline, so no retry ever fires.
  Client client(std::move(faulty),
                RetryPolicy{3, std::chrono::milliseconds(2000)});

  Timer t;
  const auto s = client.stats();
  EXPECT_EQ(s.num_vertices, kp.num_vertices());
  EXPECT_GE(t.seconds(), 0.029); // the injected latency really happened
  EXPECT_GT(shim->fault_stats().delayed, 0);
  EXPECT_EQ(client.retries(), 0u);
  server.stop();
}

TEST(ServeFaults, FaultPlanReplaysDeterministically) {
  // Two shims with the same plan over the same traffic inject the same
  // faults — the property every assertion above leans on.
  const auto run_once = [] {
    const auto kp = make_product();
    Server server(kp);
    auto [client_end, server_end] = local_pair();
    server.adopt(std::move(server_end));
    TransportFaultPlan plan;
    plan.seed = 0x5EED;
    plan.drop = 0.5;
    auto faulty =
        std::make_unique<FaultyTransport>(std::move(client_end), plan);
    auto* shim = faulty.get();
    Client client(std::move(faulty),
                  RetryPolicy{10, std::chrono::milliseconds(200)});
    for (int i = 0; i < 4; ++i) (void)client.stats();
    const auto dropped = shim->fault_stats().dropped;
    server.stop();
    return dropped;
  };
  const auto first = run_once();
  EXPECT_GT(first, 0);
  EXPECT_EQ(run_once(), first);
}

TEST(ServeFaults, OneSlotQueueAnswersOverloadedNotUnbounded) {
  const auto kp = make_product();
  ServerOptions opt;
  opt.executors = 1;
  opt.queue_depth = 1;
  Server server(kp, opt);

  // Connection A wedges the executor: three maximal batches whose
  // responses (~262 KB each) overrun the socket buffer of a client that
  // never reads, so the executor blocks in write and the queue stays
  // full.  Raw frames, not a Client — A must pipeline without reading.
  auto [a_end, a_server] = local_pair();
  server.adopt(std::move(a_server));
  std::vector<Probe> big(max_batch_probes, Probe::vertex(0));
  for (std::uint64_t id = 1; id <= 3; ++id) {
    write_frame(*a_end, encode_request({id, big}));
  }

  // Connection B sees backpressure as data: with the queue wedged, a
  // probe is answered OVERLOADED (or parked until the 1 queue slot is
  // taken by an earlier B frame and then refused — either way, a typed
  // refusal arrives within a bounded number of attempts).
  auto [b_end, b_server] = local_pair();
  server.adopt(std::move(b_server));
  Client b(std::move(b_end), RetryPolicy{1, std::chrono::milliseconds(300)});
  bool saw_overloaded = false;
  for (int tries = 0; tries < 10 && !saw_overloaded; ++tries) {
    try {
      const Response resp = b.call({Probe::stats()});
      saw_overloaded = resp.status == Status::overloaded;
    } catch (const timeout_error&) {
      // Frame admitted into the wedged queue; the next one is refused.
    }
  }
  EXPECT_TRUE(saw_overloaded);
  EXPECT_GE(server.stats().overloaded, 1u);

  // Unwedge: drain A's stream until its three frames are answered (ids
  // 1..3 in some order, refusals included), freeing the executor so the
  // shutdown drain below can finish every admitted frame.
  std::uint64_t seen = 0;
  while (seen != 0b1110u) {
    const auto frame =
        read_frame(*a_end, std::chrono::milliseconds(10000));
    ASSERT_TRUE(frame.has_value());
    const Response resp = decode_response(*frame);
    ASSERT_GE(resp.id, 1u);
    ASSERT_LE(resp.id, 3u);
    seen |= 1u << resp.id;
  }
  server.stop();
  EXPECT_EQ(server.in_flight(), 0u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.responses + stats.overloaded + stats.shed_shutdown,
            stats.frames);
}

} // namespace
} // namespace kronlab::serve
