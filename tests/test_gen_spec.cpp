// Tests for the textual graph-spec parser used by the kronlab_gen CLI.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/spec.hpp"
#include "kronlab/gen/unicode_like.hpp"
#include "kronlab/graph/graph.hpp"

namespace kronlab::gen {
namespace {

TEST(Spec, CanonicalForms) {
  EXPECT_EQ(parse_graph_spec("path:5"), path_graph(5));
  EXPECT_EQ(parse_graph_spec("cycle:6"), cycle_graph(6));
  EXPECT_EQ(parse_graph_spec("star:4"), star_graph(4));
  EXPECT_EQ(parse_graph_spec("complete:4"), complete_graph(4));
  EXPECT_EQ(parse_graph_spec("kbip:2,3"), complete_bipartite(2, 3));
  EXPECT_EQ(parse_graph_spec("crown:4"), crown_graph(4));
  EXPECT_EQ(parse_graph_spec("hypercube:3"), hypercube(3));
  EXPECT_EQ(parse_graph_spec("grid:2,4"), grid_graph(2, 4));
  EXPECT_EQ(parse_graph_spec("dstar:2,3"), double_star(2, 3));
  EXPECT_EQ(parse_graph_spec("tritail:2"), triangle_with_tail(2));
  EXPECT_EQ(parse_graph_spec("wheel:6"), wheel_graph(6));
  EXPECT_EQ(parse_graph_spec("book:4"), book_graph(4));
  EXPECT_EQ(parse_graph_spec("unicode"), unicode_like());
}

TEST(Spec, RandomFormsAreSeedDeterministic) {
  EXPECT_EQ(parse_graph_spec("randbip:5,6,12,42"),
            parse_graph_spec("randbip:5,6,12,42"));
  EXPECT_NE(parse_graph_spec("randbip:5,6,12,42"),
            parse_graph_spec("randbip:5,6,12,43"));
  const auto c = parse_graph_spec("connbip:4,5,12,7");
  EXPECT_EQ(graph::num_edges(c), 12);
  const auto n = parse_graph_spec("nonbip:8,14,3");
  EXPECT_EQ(graph::num_edges(n), 14);
  const auto p = parse_graph_spec("prefbip:6,6,14,1");
  EXPECT_EQ(graph::num_edges(p), 14);
}

TEST(Spec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_graph_spec("nosuch:3"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("path"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("path:3,4"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("kbip:3"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("path:x"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("path:3x"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("unicode:7"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("konect:"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("mtx:"), invalid_argument);
}

TEST(Spec, PropagatesGeneratorValidation) {
  EXPECT_THROW(parse_graph_spec("cycle:2"), invalid_argument);
  EXPECT_THROW(parse_graph_spec("randbip:2,2,100,1"), invalid_argument);
}

TEST(Spec, FileFormsRoundTrip) {
  // mtx: write a small symmetric adjacency and parse it back.
  const std::string mtx_path = "/tmp/kronlab_test_spec.mtx";
  {
    std::ofstream out(mtx_path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "3 3 2\n"
        << "2 1\n"
        << "3 2\n";
  }
  const auto a = parse_graph_spec("mtx:" + mtx_path);
  EXPECT_EQ(a, path_graph(3));
  std::remove(mtx_path.c_str());

  const std::string el_path = "/tmp/kronlab_test_spec.el";
  {
    std::ofstream out(el_path);
    out << "% two-mode\n1 1\n2 2\n2 1\n";
  }
  const auto b = parse_graph_spec("konect:" + el_path);
  EXPECT_EQ(b.nrows(), 4);
  EXPECT_EQ(graph::num_edges(b), 3);
  std::remove(el_path.c_str());

  EXPECT_THROW(parse_graph_spec("mtx:/nonexistent.mtx"), io_error);
  EXPECT_THROW(parse_graph_spec("konect:/nonexistent.el"), io_error);
}

TEST(Spec, HelpMentionsEveryForm) {
  const auto help = graph_spec_help();
  for (const char* form :
       {"path", "cycle", "star", "kbip", "crown", "hypercube", "grid",
        "dstar", "tritail", "wheel", "book", "randbip", "connbip", "prefbip", "nonbip",
        "unicode", "konect", "mtx"}) {
    EXPECT_NE(help.find(form), std::string::npos) << form;
  }
}

} // namespace
} // namespace kronlab::gen
