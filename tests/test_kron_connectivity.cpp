// Tests for Thm 1, Thm 2, and the Weichsel disconnection case — the
// connectivity/bipartiteness predictions of §III-A, validated by BFS on
// materialized products (the three panels of Fig. 1).

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/connectivity.hpp"

namespace kronlab::kron {
namespace {

TEST(FactorStructure, ClassifiesCanonicalGraphs) {
  const auto p = factor_structure(gen::path_graph(4));
  EXPECT_TRUE(p.connected);
  EXPECT_TRUE(p.bipartite);
  EXPECT_FALSE(p.has_odd_closed_walk);

  const auto k3 = factor_structure(gen::complete_graph(3));
  EXPECT_TRUE(k3.connected);
  EXPECT_FALSE(k3.bipartite);
  EXPECT_TRUE(k3.has_odd_closed_walk);

  const auto looped =
      factor_structure(grb::add_identity(gen::path_graph(3)));
  EXPECT_TRUE(looped.connected);
  EXPECT_FALSE(looped.bipartite);       // loops break bipartiteness
  EXPECT_TRUE(looped.has_odd_closed_walk); // a loop is an odd closed walk

  const auto disc = factor_structure(
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2)));
  EXPECT_FALSE(disc.connected);
}

// Fig. 1 top: bipartite ⊗ bipartite (both connected, loop-free) is
// disconnected with exactly two components.
TEST(Fig1, BipartiteTimesBipartiteSplitsInTwo) {
  const auto kp =
      BipartiteKronecker::raw(gen::path_graph(3), gen::cycle_graph(4));
  const auto pred = predict(kp);
  EXPECT_TRUE(pred.bipartite);
  EXPECT_FALSE(pred.connected);
  EXPECT_EQ(pred.components, 2);
  const auto c = kp.materialize();
  EXPECT_EQ(graph::connected_components(c).count, 2);
  EXPECT_TRUE(graph::is_bipartite(c));
}

// Fig. 1 lower-left / Thm 1: non-bipartite ⊗ bipartite is connected.
TEST(Thm1, NonBipartiteFactorConnects) {
  const auto kp = BipartiteKronecker::assumption_i(
      gen::triangle_with_tail(1), gen::path_graph(4));
  const auto pred = predict(kp);
  EXPECT_TRUE(pred.bipartite);
  EXPECT_TRUE(pred.connected);
  const auto c = kp.materialize();
  EXPECT_TRUE(graph::is_connected(c));
  EXPECT_TRUE(graph::is_bipartite(c));
}

// Fig. 1 lower-right / Thm 2: (A + I_A) ⊗ B is connected.
TEST(Thm2, SelfLoopsConnect) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::path_graph(3),
                                                    gen::cycle_graph(4));
  const auto pred = predict(kp);
  EXPECT_TRUE(pred.bipartite);
  EXPECT_TRUE(pred.connected);
  const auto c = kp.materialize();
  EXPECT_TRUE(graph::is_connected(c));
  EXPECT_TRUE(graph::is_bipartite(c));
}

class PredictionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PredictionSweep, RandomFactorsMatchBfsGroundTruth) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  // Mix of the three regimes, chosen by parameter.
  BipartiteKronecker kp = [&]() {
    switch (GetParam() % 3) {
      case 0:
        return BipartiteKronecker::assumption_i(
            gen::random_nonbipartite_connected(6, 11, rng),
            gen::connected_random_bipartite(3, 4, 9, rng));
      case 1:
        return BipartiteKronecker::assumption_ii(
            gen::connected_random_bipartite(3, 4, 8, rng),
            gen::connected_random_bipartite(4, 3, 9, rng));
      default:
        return BipartiteKronecker::raw(
            gen::connected_random_bipartite(4, 3, 8, rng),
            gen::connected_random_bipartite(3, 3, 7, rng));
    }
  }();
  const auto pred = predict(kp);
  const auto c = kp.materialize();
  EXPECT_EQ(pred.components, graph::connected_components(c).count);
  EXPECT_EQ(pred.bipartite, graph::is_bipartite(c));
}

INSTANTIATE_TEST_SUITE_P(Regimes, PredictionSweep, ::testing::Range(0, 12));

TEST(Predict, NonBipartiteTimesNonBipartiteIsConnectedNotBipartite) {
  const auto kp = BipartiteKronecker::raw(gen::complete_graph(3),
                                          gen::triangle_with_tail(1));
  const auto pred = predict(kp);
  EXPECT_FALSE(pred.bipartite);
  EXPECT_TRUE(pred.connected);
  const auto c = kp.materialize();
  EXPECT_TRUE(graph::is_connected(c));
  EXPECT_FALSE(graph::is_bipartite(c));
}

TEST(Predict, RejectsDisconnectedOrEdgelessFactors) {
  const auto disc =
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2));
  EXPECT_THROW(
      predict(BipartiteKronecker::raw(disc, gen::path_graph(2))),
      domain_error);
  const auto lonely = gen::path_graph(1); // connected, but no edges
  EXPECT_THROW(
      predict(BipartiteKronecker::raw(lonely, gen::path_graph(2))),
      domain_error);
}

} // namespace
} // namespace kronlab::kron
