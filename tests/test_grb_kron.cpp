// Tests for the sparse Kronecker product kernel and its algebraic
// properties (Prop. 1 of the paper's appendix).

#include <gtest/gtest.h>

#include "kronlab/grb/kron.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/index_map.hpp"

namespace kronlab::grb {
namespace {

Csr<count_t> dense2(const std::vector<count_t>& v) {
  return Csr<count_t>::from_dense(2, 2, v);
}

TEST(Kron, MatchesDefinitionEntrywise) {
  const auto a = Csr<count_t>::from_dense(2, 3, {1, 2, 0, 0, 3, 4});
  const auto b = Csr<count_t>::from_dense(3, 2, {5, 0, 6, 7, 0, 8});
  const auto c = kron(a, b);
  ASSERT_EQ(c.nrows(), 6);
  ASSERT_EQ(c.ncols(), 6);
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (index_t j = 0; j < a.ncols(); ++j) {
      for (index_t k = 0; k < b.nrows(); ++k) {
        for (index_t l = 0; l < b.ncols(); ++l) {
          EXPECT_EQ(c.at(kron::gamma(i, k, b.nrows()),
                         kron::gamma(j, l, b.ncols())),
                    a.at(i, j) * b.at(k, l));
        }
      }
    }
  }
  c.check_invariants();
}

TEST(Kron, NnzIsProductOfNnz) {
  const auto a = dense2({1, 1, 0, 1});
  const auto b = dense2({0, 2, 2, 0});
  EXPECT_EQ(kron(a, b).nnz(), a.nnz() * b.nnz());
}

TEST(Kron, IdentityIsNeutralUpToShape) {
  const auto a = dense2({1, 2, 3, 4});
  const auto i1 = Csr<count_t>::identity(1);
  EXPECT_EQ(kron(i1, a), a);
  EXPECT_EQ(kron(a, i1), a);
}

TEST(Kron, MixedProductProperty) {
  // (A1 ⊗ A2)(A3 ⊗ A4) = (A1·A3) ⊗ (A2·A4)  — Prop. 1(d).
  const auto a1 = dense2({1, 2, 0, 1});
  const auto a2 = dense2({0, 1, 1, 1});
  const auto a3 = dense2({2, 0, 1, 1});
  const auto a4 = dense2({1, 1, 0, 2});
  EXPECT_EQ(mxm(kron(a1, a2), kron(a3, a4)),
            kron(mxm(a1, a3), mxm(a2, a4)));
}

TEST(Kron, TranspositionProperty) {
  // (A ⊗ B)ᵗ = Aᵗ ⊗ Bᵗ — Prop. 1(c).
  const auto a = Csr<count_t>::from_dense(2, 3, {1, 0, 2, 3, 0, 0});
  const auto b = dense2({0, 5, 6, 0});
  EXPECT_EQ(transpose(kron(a, b)), kron(transpose(a), transpose(b)));
}

TEST(Kron, DistributivityOverAddition) {
  // (A1 + A2) ⊗ A3 = A1⊗A3 + A2⊗A3 — Prop. 1(b).
  const auto a1 = dense2({1, 0, 0, 2});
  const auto a2 = dense2({0, 3, 4, 0});
  const auto a3 = dense2({1, 1, 1, 0});
  EXPECT_EQ(kron(ewise_add(a1, a2), a3),
            ewise_add(kron(a1, a3), kron(a2, a3)));
}

TEST(Kron, HadamardKroneckerDistributivity) {
  // (A1⊗A2) ∘ (A3⊗A4) = (A1∘A3) ⊗ (A2∘A4) — Prop. 2(e).
  const auto a1 = dense2({1, 2, 3, 0});
  const auto a2 = dense2({0, 1, 1, 1});
  const auto a3 = dense2({1, 0, 3, 4});
  const auto a4 = dense2({2, 1, 0, 1});
  EXPECT_EQ(ewise_mult(kron(a1, a2), kron(a3, a4)),
            kron(ewise_mult(a1, a3), ewise_mult(a2, a4)));
}

TEST(Kron, DiagonalKroneckerDistributivity) {
  // diag(A1 ⊗ A2) = diag(A1) ⊗ diag(A2) — Prop. 2(f).
  const auto a1 = dense2({3, 1, 0, 5});
  const auto a2 = dense2({2, 0, 1, 7});
  EXPECT_EQ(diag_vector(kron(a1, a2)).data(),
            kron(diag_vector(a1), diag_vector(a2)).data());
}

TEST(Kron, EmptyFactorGivesEmptyProduct) {
  const Csr<count_t> empty(2, 2, {0, 0, 0}, {}, {});
  const auto a = dense2({1, 1, 1, 1});
  EXPECT_EQ(kron(empty, a).nnz(), 0);
  EXPECT_EQ(kron(a, empty).nnz(), 0);
}

} // namespace
} // namespace kronlab::grb
