// Tests for the bipartite clustering-coefficient variants and their
// product-level ground truth.

#include <gtest/gtest.h>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite_clustering.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab {
namespace {

TEST(ThreePaths, ClosedForms) {
  // P4 contains exactly one 3-path.
  EXPECT_EQ(graph::three_paths(gen::path_graph(4)), 1);
  // C4: each of the 4 edges is interior to (2−1)(2−1) = 1 path → 4.
  EXPECT_EQ(graph::three_paths(gen::cycle_graph(4)), 4);
  // Stars have no 3-paths (one interior vertex would need degree ≥ 2 on
  // both interior endpoints).
  EXPECT_EQ(graph::three_paths(gen::star_graph(9)), 0);
  // K_{m,n}: m·n edges, each interior to (m−1)(n−1) paths.
  EXPECT_EQ(graph::three_paths(gen::complete_bipartite(3, 4)),
            12 * (2 * 3));
}

TEST(ThreePaths, BruteForceAgreement) {
  Rng rng(71);
  const auto g = gen::random_bipartite(7, 8, 25, rng);
  // Brute force: ordered walks x–p–q–y with 4 distinct vertices, /2.
  count_t brute = 0;
  for (index_t p = 0; p < g.nrows(); ++p) {
    for (const index_t q : g.row_cols(p)) {
      for (const index_t x : g.row_cols(p)) {
        if (x == q) continue;
        for (const index_t y : g.row_cols(q)) {
          if (y == p || y == x) continue;
          ++brute;
        }
      }
    }
  }
  EXPECT_EQ(graph::three_paths(g), brute / 2);
}

TEST(RobinsAlexander, ExtremeValues) {
  // Complete bipartite graphs are maximally clustered: every 3-path
  // closes.
  EXPECT_DOUBLE_EQ(graph::robins_alexander_cc(gen::complete_bipartite(3, 4)),
                   1.0);
  EXPECT_DOUBLE_EQ(graph::robins_alexander_cc(gen::complete_bipartite(5, 2)),
                   1.0);
  // Trees: no squares.
  EXPECT_DOUBLE_EQ(graph::robins_alexander_cc(gen::double_star(3, 3)), 0.0);
  // C4 closes all 4 of its paths: 4·1/4 = 1.
  EXPECT_DOUBLE_EQ(graph::robins_alexander_cc(gen::cycle_graph(4)), 1.0);
  // C8: 8 paths, no squares.
  EXPECT_DOUBLE_EQ(graph::robins_alexander_cc(gen::cycle_graph(8)), 0.0);
  // Degenerate: no paths at all.
  EXPECT_DOUBLE_EQ(graph::robins_alexander_cc(gen::star_graph(3)), 0.0);
}

TEST(RobinsAlexander, CoefficientIsAClosureFraction) {
  Rng rng(72);
  for (int t = 0; t < 5; ++t) {
    const auto g = gen::random_bipartite(8, 9, 30 + t, rng);
    const double cc = graph::robins_alexander_cc(g);
    EXPECT_GE(cc, 0.0);
    EXPECT_LE(cc, 1.0);
  }
}

TEST(LocalClosure, HubsOfTreesAreOpen) {
  const auto closure = graph::local_closure(gen::double_star(3, 3));
  for (index_t v = 0; v < closure.size(); ++v) {
    EXPECT_DOUBLE_EQ(closure[v], 0.0);
  }
}

TEST(LocalClosure, CompleteBipartiteFullyClosed) {
  const auto closure = graph::local_closure(gen::complete_bipartite(3, 3));
  for (index_t v = 0; v < closure.size(); ++v) {
    EXPECT_DOUBLE_EQ(closure[v], 1.0);
  }
}

TEST(LocalClosure, InUnitInterval) {
  Rng rng(73);
  const auto g = gen::random_bipartite(10, 10, 40, rng);
  const auto closure = graph::local_closure(g);
  for (index_t v = 0; v < closure.size(); ++v) {
    EXPECT_GE(closure[v], 0.0);
    EXPECT_LE(closure[v], 1.0);
  }
}

TEST(ClusteringVariants, RejectNonBipartite) {
  EXPECT_THROW(graph::three_paths(gen::complete_graph(4)), domain_error);
  EXPECT_THROW(graph::robins_alexander_cc(gen::cycle_graph(5)),
               domain_error);
  EXPECT_THROW(graph::local_closure(gen::complete_graph(3)), domain_error);
}

// -------------------------------------------------------------------------
// Product-level ground truth.

class ProductCcTest : public ::testing::TestWithParam<int> {
protected:
  kron::BipartiteKronecker make() const {
    switch (GetParam() % 3) {
      case 0:
        return kron::BipartiteKronecker::assumption_i(
            gen::triangle_with_tail(GetParam() / 3),
            gen::complete_bipartite(2, 3));
      case 1:
        return kron::BipartiteKronecker::assumption_ii(
            gen::star_graph(2 + GetParam() / 3), gen::crown_graph(3));
      default: {
        Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
        return kron::BipartiteKronecker::raw(
            grb::add_identity(gen::random_bipartite(4, 4, 9, rng)),
            gen::random_bipartite(4, 5, 11, rng));
      }
    }
  }
};

TEST_P(ProductCcTest, ThreePathsMatchDirect) {
  const auto kp = make();
  EXPECT_EQ(kron::product_three_paths(kp),
            graph::three_paths(kp.materialize()));
}

TEST_P(ProductCcTest, RobinsAlexanderMatchesDirect) {
  const auto kp = make();
  EXPECT_DOUBLE_EQ(kron::product_robins_alexander_cc(kp),
                   graph::robins_alexander_cc(kp.materialize()));
}

INSTANTIATE_TEST_SUITE_P(Products, ProductCcTest, ::testing::Range(0, 9));

TEST(ProductCc, RequiresBipartiteRightFactor) {
  const auto kp = kron::BipartiteKronecker::raw(
      gen::complete_graph(3), gen::triangle_with_tail(1));
  EXPECT_THROW(kron::product_three_paths(kp), domain_error);
}

} // namespace
} // namespace kronlab
