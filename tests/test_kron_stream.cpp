// Tests for the streaming edge generator and the on-the-fly ground-truth
// stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/kron/stream.hpp"

namespace kronlab::kron {
namespace {

BipartiteKronecker sample_product() {
  return BipartiteKronecker::assumption_i(gen::triangle_with_tail(1),
                                          gen::complete_bipartite(2, 2));
}

TEST(EdgeStream, EntriesMatchMaterializedStructure) {
  const auto kp = sample_product();
  const auto c = kp.materialize();
  EdgeStream es(kp);
  std::set<std::pair<index_t, index_t>> streamed;
  es.for_each_entry([&](index_t p, index_t q) {
    EXPECT_TRUE(streamed.emplace(p, q).second) << "duplicate entry";
  });
  EXPECT_EQ(static_cast<offset_t>(streamed.size()), c.nnz());
  for (const auto& [p, q] : streamed) EXPECT_TRUE(c.has(p, q));
}

TEST(EdgeStream, EntriesAreRowMajorSorted) {
  const auto kp = sample_product();
  EdgeStream es(kp);
  index_t last_p = -1, last_q = -1;
  es.for_each_entry([&](index_t p, index_t q) {
    EXPECT_TRUE(p > last_p || (p == last_p && q > last_q));
    last_p = p;
    last_q = q;
  });
}

TEST(EdgeStream, UndirectedEdgeVisitSeesEachOnce) {
  const auto kp = sample_product();
  EdgeStream es(kp);
  count_t n = 0;
  es.for_each_edge([&](index_t p, index_t q) {
    EXPECT_LT(p, q);
    ++n;
  });
  EXPECT_EQ(n, kp.num_edges());
}

TEST(EdgeStream, CountMatchesFactorArithmetic) {
  const auto kp = sample_product();
  EXPECT_EQ(EdgeStream(kp).count_entries(),
            kp.left().nnz() * kp.right().nnz());
}

TEST(EdgeStream, ParallelVisitCoversSameSet) {
  Rng rng(15);
  const auto kp = BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(6, 12, rng),
      gen::random_bipartite(4, 4, 9, rng));
  EdgeStream es(kp);
  std::vector<std::pair<index_t, index_t>> serial;
  es.for_each_entry([&](index_t p, index_t q) { serial.emplace_back(p, q); });
  std::mutex mu;
  std::vector<std::pair<index_t, index_t>> par;
  es.for_each_entry_parallel([&](index_t p, index_t q) {
    std::lock_guard lock(mu);
    par.emplace_back(p, q);
  });
  std::sort(par.begin(), par.end());
  std::sort(serial.begin(), serial.end());
  EXPECT_EQ(par, serial);
}

TEST(EdgeStream, WriteEdgeListIsOneBasedAndComplete) {
  const auto kp = BipartiteKronecker::assumption_ii(gen::path_graph(2),
                                                    gen::path_graph(2));
  std::ostringstream out;
  EdgeStream(kp).write_edge_list(out);
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header[0], '%');
  count_t edges = 0;
  index_t p, q;
  while (in >> p >> q) {
    EXPECT_GE(p, 1);
    EXPECT_LE(q, kp.num_vertices());
    EXPECT_LT(p, q);
    ++edges;
  }
  EXPECT_EQ(edges, kp.num_edges());
}

TEST(GroundTruthStream, SquaresMatchDirectCountingAssumptionI) {
  const auto kp = sample_product();
  const auto c = kp.materialize();
  const auto direct = graph::edge_butterflies(c);
  GroundTruthStream gts(kp);
  count_t entries = 0;
  gts.for_each_entry([&](index_t p, index_t q, count_t sq) {
    EXPECT_EQ(sq, direct.at(p, q)) << "edge (" << p << "," << q << ")";
    ++entries;
  });
  EXPECT_EQ(entries, c.nnz());
}

TEST(GroundTruthStream, SquaresMatchDirectCountingAssumptionII) {
  Rng rng(21);
  const auto kp = BipartiteKronecker::assumption_ii(
      gen::connected_random_bipartite(3, 4, 9, rng),
      gen::connected_random_bipartite(4, 3, 10, rng));
  const auto c = kp.materialize();
  const auto direct = graph::edge_butterflies(c);
  GroundTruthStream gts(kp);
  gts.for_each_entry([&](index_t p, index_t q, count_t sq) {
    ASSERT_EQ(sq, direct.at(p, q)) << "edge (" << p << "," << q << ")";
  });
}

TEST(GroundTruthStream, ParallelVisitMatchesSerial) {
  Rng rng(33);
  const auto kp = BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(7, 14, rng),
      gen::random_bipartite(4, 5, 11, rng));
  GroundTruthStream gts(kp);
  std::map<std::pair<index_t, index_t>, count_t> serial;
  gts.for_each_entry(
      [&](index_t p, index_t q, count_t sq) { serial[{p, q}] = sq; });
  std::mutex mu;
  std::map<std::pair<index_t, index_t>, count_t> par;
  gts.for_each_entry_parallel([&](index_t p, index_t q, count_t sq) {
    std::lock_guard lock(mu);
    par[{p, q}] = sq;
  });
  EXPECT_EQ(par, serial);
}

TEST(GroundTruthStream, GlobalAggregationMatches) {
  // Σ over directed entries of ◇ = 8 · #squares.
  const auto kp = sample_product();
  GroundTruthStream gts(kp);
  count_t total = 0;
  gts.for_each_entry([&](index_t, index_t, count_t sq) { total += sq; });
  EXPECT_EQ(total / 8, graph::global_butterflies(kp.materialize()));
}

} // namespace
} // namespace kronlab::kron
