// §II-B design-choice ablation: self loops and formula complexity.
//
// The paper restricts to "no self loops in at least one factor" so the
// product is a simple graph and the derivations stay at ~4 Kronecker terms
// (it estimates up to 25 terms with loops in both factors and up to 256
// with partial loops).  This bench makes the design space concrete:
//
//   * term counts of kronlab's factored engines under each admissible mode,
//   * the rejection of inadmissible configurations (loops in B, partial
//     loops),
//   * the runtime effect of mode (i) vs mode (ii) on ground-truth
//     evaluation and on streaming with per-edge truth at matched |E_C|.

#include <algorithm>
#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/stream.hpp"

using namespace kronlab;

int main(int argc, char** argv) {
  bench::Harness h("ablation_selfloops", bench::parse_args(argc, argv));
  std::printf("== §II-B ablation: self-loop placement vs formula cost "
              "==\n\n");

  Rng rng(31);
  const auto a_nonbip = gen::random_nonbipartite_connected(24, 60, rng);
  const auto a_bip = gen::connected_random_bipartite(12, 12, 40, rng);
  const auto b = gen::connected_random_bipartite(40, 40, 140, rng);

  struct Row {
    const char* name;
    kron::BipartiteKronecker kp;
  };
  const Row rows[] = {
      {"mode i : A(nonbip) (x) B",
       kron::BipartiteKronecker::assumption_i(a_nonbip, b)},
      {"mode ii: (A+I) (x) B",
       kron::BipartiteKronecker::assumption_ii(a_bip, b)},
  };

  std::printf("%-26s %10s %8s %8s %12s %14s\n", "construction", "|E_C|",
              "s terms", "◇ terms", "truth time", "stream Medg/s");
  int mode = 0;
  count_t max_terms = 0;
  for (const auto& r : rows) {
    ++mode;
    const auto sv = kron::vertex_squares(r.kp);
    const auto em = kron::edge_squares(r.kp);
    Timer t_truth;
    const count_t g = kron::global_squares(r.kp);
    const double truth_s = t_truth.seconds();
    Timer t_stream;
    count_t sink = 0;
    kron::GroundTruthStream gts(r.kp);
    gts.for_each_entry([&](index_t, index_t, count_t sq) { sink += sq; });
    const double stream_s = t_stream.seconds();
    const std::string tag = "mode" + std::to_string(mode);
    h.time_value("truth_" + tag, truth_s);
    h.time_value("stream_" + tag, stream_s);
    max_terms = std::max({max_terms, sv.num_terms(), em.num_terms()});
    std::printf("%-26s %10s %8lld %8lld %12s %14.1f\n", r.name,
                format_count(r.kp.num_edges()).c_str(),
                static_cast<long long>(sv.num_terms()),
                static_cast<long long>(em.num_terms()),
                format_duration(truth_s).c_str(),
                static_cast<double>(2 * r.kp.num_edges()) / stream_s / 1e6);
    if (sink < 0 || g < 0) std::printf("(impossible)\n");
  }
  h.counter("max_kron_terms", static_cast<double>(max_terms));

  std::printf("\ninadmissible configurations are rejected up front:\n");
  int rejections = 0;
  const auto looped_b = grb::add_identity(a_bip);
  try {
    (void)kron::BipartiteKronecker::raw(a_nonbip, looped_b);
    std::printf("  loops in factor B      : ACCEPTED (bug!)\n");
  } catch (const domain_error&) {
    ++rejections;
    std::printf("  loops in factor B      : rejected (product would have "
                "self loops)\n");
  }
  // Partial loops: §II-B's 256-term nightmare.
  auto partial = a_bip;
  {
    grb::Coo<count_t> coo(partial.nrows(), partial.ncols());
    coo.push(0, 0, 1);
    partial = grb::ewise_add(partial, graph::Adjacency::from_coo(coo));
  }
  try {
    (void)kron::BipartiteKronecker::assumption_ii(partial, b);
    std::printf("  partial loops in A     : ACCEPTED (bug!)\n");
  } catch (const domain_error&) {
    ++rejections;
    std::printf("  partial loops in A     : rejected (assumption_ii adds "
                "the full diagonal itself)\n");
  }
  h.counter("inadmissible_rejected", static_cast<double>(rejections));

  std::printf(
      "\nboth admissible modes keep every statistic at 4 Kronecker terms —\n"
      "the paper's point: loop placement is a *design* decision that caps\n"
      "derivation complexity (4 terms here vs up to 25/256 otherwise).\n");
  return 0;
}
