// bench_served — sustained throughput and tail latency of the query
// daemon (EXPERIMENTS.md X15).
//
// Runs an in-process Server over local_pair() transports and hammers it
// from N client threads, each issuing batched mixed probes (vertex /
// edge / sample / stats in a fixed rotation) for a fixed frame count.
// Per-frame latencies are collected client-side; the harness reports
// sustained queries/sec plus p50/p99 frame latency in the
// kronlab-bench-v1 JSON schema (counters qps, p50_ms, p99_ms).
//
// The telemetry cost (EXPERIMENTS.md X18, budgeted at <= 2%) is measured
// with interleaved paired rounds: several alternating off/on sub-runs,
// comparing the best round of each arm.  A single off-then-on pair is
// useless on a shared machine — a control with telemetry disabled in
// BOTH arms still reports "overhead" anywhere from -29% to +6% from
// scheduling drift alone; best-of-k per arm cancels that drift.
//
// The serve path itself is traced (one "request" span per frame), so a
// --trace run doubles as the CI check that the daemon's spans appear in
// kronlab_trace summary.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness/harness.hpp"
#include "kronlab/kronlab.hpp"
#include "kronlab/obs/stats.hpp"

using namespace kronlab;

namespace {

struct LoadResult {
  double seconds = 0;
  std::uint64_t frames = 0;
  std::uint64_t probes = 0;
  std::vector<double> latencies_ms;
};

/// One client thread's closed loop: `frames` frames of `batch` mixed
/// probes each, recording per-frame round-trip latency.
LoadResult client_loop(serve::Client& client, const serve::StatsRecord& dims,
                       int frames, int batch, std::uint64_t seed) {
  LoadResult out;
  out.latencies_ms.reserve(static_cast<std::size_t>(frames));
  Rng rng(seed);
  const auto pick_vertex = [&] {
    return static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(dims.num_vertices)));
  };
  Timer wall;
  for (int f = 0; f < frames; ++f) {
    std::vector<serve::Probe> probes;
    probes.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      switch (i % 4) {
      case 0:
        probes.push_back(serve::Probe::vertex(pick_vertex()));
        break;
      case 1:
        probes.push_back(serve::Probe::edge(pick_vertex(), pick_vertex()));
        break;
      case 2:
        probes.push_back(serve::Probe::sample_edge(rng.next()));
        break;
      default:
        probes.push_back(serve::Probe::stats());
        break;
      }
    }
    Timer t;
    const auto resp = client.call(std::move(probes));
    out.latencies_ms.push_back(t.seconds() * 1e3);
    KRONLAB_REQUIRE(resp.status == serve::Status::ok,
                    "bench frame not answered ok");
    ++out.frames;
    out.probes += static_cast<std::uint64_t>(batch);
  }
  out.seconds = wall.seconds();
  return out;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("served", bench::parse_args(argc, argv));

  // A mid-size product: big enough that vertex records exercise real
  // factor walks, small enough to construct instantly.
  Rng rng_m(7), rng_b(11);
  const auto m = gen::random_bipartite(40, 60, 360, rng_m);
  const auto b = gen::preferential_bipartite(50, 70, 560, rng_b);
  const auto kp = kron::BipartiteKronecker::raw(m, b);
  h.label("instance", "rbip:40,60,360,7 (x) prefbip:50,70,560,11");

  const int clients = h.quick() ? 2 : 4;
  const int frames = h.quick() ? 40 : 400;
  const int batch = h.quick() ? 8 : 32;
  h.counter("clients", clients);
  h.counter("frames_per_client", frames);
  h.counter("probes_per_frame", batch);

  serve::ServerOptions opt;
  opt.executors = static_cast<std::size_t>(clients);
  serve::Server server(kp, opt);

  std::vector<std::unique_ptr<serve::Client>> pool;
  for (int c = 0; c < clients; ++c) {
    auto [client_end, server_end] = serve::local_pair();
    server.adopt(std::move(server_end));
    pool.push_back(
        std::make_unique<serve::Client>(std::move(client_end)));
  }
  const serve::StatsRecord dims{kp.num_vertices(), kp.num_edges(), 0};

  std::vector<LoadResult> results(static_cast<std::size_t>(clients));
  const auto run_load = [&](int run_frames, std::uint64_t seed_base) {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        results[static_cast<std::size_t>(c)] =
            client_loop(*pool[static_cast<std::size_t>(c)], dims,
                        run_frames, batch,
                        seed_base + std::uint64_t(c));
      });
    }
    for (auto& t : threads) t.join();
  };
  const auto qps_of = [&] {
    double seconds = 0;
    std::uint64_t probes = 0;
    for (const auto& r : results) {
      seconds = std::max(seconds, r.seconds);
      probes += r.probes;
    }
    return seconds > 0 ? static_cast<double>(probes) / seconds : 0.0;
  };

  // Warm caches and code paths so the off/on comparison below is not
  // just measuring first-touch effects.
  run_load(std::max(1, frames / 8), /*seed_base=*/0xC0FFEEull);

  // Paired rounds, alternating telemetry off (every record() is one
  // relaxed load and a branch) and on, same per-round frame budget and
  // seeds.  Best-of per arm: environmental slowdowns only ever subtract
  // throughput, so the max over rounds is each arm's least-disturbed
  // measurement.
  const int pair_rounds = h.quick() ? 3 : 5;
  const int pair_frames = std::max(64, frames / 4);
  double qps_off = 0, qps_on = 0;
  h.time_section(
      "serve/load_stats_off",
      [&] {
        for (int round = 0; round < pair_rounds; ++round) {
          const auto seed = 0xD15ABull + std::uint64_t(round) * 0x1000;
          obs::set_stats_enabled(false);
          run_load(pair_frames, seed);
          qps_off = std::max(qps_off, qps_of());
          obs::set_stats_enabled(true);
          run_load(pair_frames, seed + 0x800);
          qps_on = std::max(qps_on, qps_of());
        }
      },
      /*default_reps=*/1);

  h.time_section("serve/load",
                 [&] { run_load(frames, /*seed_base=*/0x5EEDull); },
                 /*default_reps=*/1);

  double seconds = 0;
  std::uint64_t total_frames = 0, total_probes = 0;
  std::vector<double> latencies;
  for (const auto& r : results) {
    seconds = std::max(seconds, r.seconds);
    total_frames += r.frames;
    total_probes += r.probes;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  const double qps =
      seconds > 0 ? static_cast<double>(total_probes) / seconds : 0;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double overhead_pct =
      qps_off > 0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
  h.counter("total_probes", static_cast<double>(total_probes));
  h.counter("total_frames", static_cast<double>(total_frames));
  h.counter("qps", qps);
  h.counter("p50_ms", p50);
  h.counter("p99_ms", p99);
  h.counter("qps_stats_off", qps_off);
  h.counter("stats_overhead_pct", overhead_pct);

  server.stop();
  const auto stats = server.stats();
  h.counter("cache_hits", static_cast<double>(stats.cache_hits));
  h.counter("cache_misses", static_cast<double>(stats.cache_misses));
  h.counter("in_flight_after_stop", static_cast<double>(server.in_flight()));

  std::printf("bench_served: %d clients x %d frames x %d probes\n", clients,
              frames, batch);
  std::printf("  sustained    : %.0f probes/s (%.0f frames/s)\n", qps,
              seconds > 0 ? static_cast<double>(total_frames) / seconds : 0);
  std::printf("  frame latency: p50 %.3f ms, p99 %.3f ms\n", p50, p99);
  std::printf("  stats overhead: %.2f%% (best of %d paired rounds: "
              "%.0f off vs %.0f on probes/s)\n",
              overhead_pct, pair_rounds, qps_off, qps_on);
  std::printf("  cache        : %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));
  return 0;
}
