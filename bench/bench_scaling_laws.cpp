// Scaling-law benches: Thm 6 (bipartite edge clustering coefficient) and
// Cors. 1–2 (community density bounds).
//
// Thm 6 claims Γ_C(p,q) ≥ ψ·Γ_A·Γ_B with ψ ∈ [1/9, 1) and notes the bound
// is loose ("typically ◇_pq is much greater than ◇_ij·◇_kl").  We measure
// the bound's slack over all qualifying edges for a sweep of factor
// densities.
//
// Cors. 1–2 claim ρ_in(S_C) is bounded below and ρ_out(S_C) above by
// factor-density products; we sweep the community balance ω and the planted
// density to show both are controllable — the paper's headline for §III-C.

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/kron/clustering.hpp"
#include "kronlab/kron/community.hpp"

using namespace kronlab;

namespace {

count_t thm6_violations = 0;
double thm6_min_ratio_seen = 1e300;

void thm6_row(const char* name, const kron::BipartiteKronecker& kp) {
  const auto samples = kron::clustering_samples(kp);
  if (samples.empty()) {
    std::printf("%-26s (no qualifying edges)\n", name);
    return;
  }
  double min_ratio = 1e300, sum_ratio = 0, min_gap = 1e300;
  count_t violations = 0;
  for (const auto& s : samples) {
    const double base = s.gamma_a * s.gamma_b;
    const double ratio = base > 0 ? s.gamma_c / base : 0.0;
    if (base > 0) {
      min_ratio = std::min(min_ratio, ratio);
      sum_ratio += ratio;
    }
    min_gap = std::min(min_gap, s.gamma_c - s.bound);
    if (s.gamma_c < s.bound - 1e-12) ++violations;
  }
  thm6_violations += violations;
  thm6_min_ratio_seen = std::min(thm6_min_ratio_seen, min_ratio);
  std::printf("%-26s edges=%7zu  min Γ_C/(Γ_AΓ_B)=%7.3f  mean=%8.3f  "
              "ψ_min=1/9=%.3f  violations=%lld\n",
              name, samples.size(), min_ratio,
              sum_ratio / static_cast<double>(samples.size()), 1.0 / 9.0,
              static_cast<long long>(violations));
}

kron::FactorCommunity prefix_community(const graph::Adjacency& a,
                                       index_t n_u, index_t r, index_t t) {
  const auto part = graph::two_color(a).value();
  graph::BipartiteSubset s;
  for (index_t i = 0; i < r; ++i) s.r.push_back(i);
  for (index_t k = 0; k < t; ++k) s.t.push_back(n_u + k);
  return kron::measure_factor_community(a, part, s);
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("scaling_laws", bench::parse_args(argc, argv));
  std::printf("== Thm 6: edge clustering coefficient scaling law ==\n\n");
  {
    Rng rng(2024);
    for (const count_t extra : {4, 10, 18}) {
      const auto a = gen::random_nonbipartite_connected(8, 8 + 2 + extra, rng);
      const auto b =
          gen::connected_random_bipartite(6, 6, 11 + extra, rng);
      char name[64];
      std::snprintf(name, sizeof name, "density sweep (+%lld edges)",
                    static_cast<long long>(extra));
      thm6_row(name, kron::BipartiteKronecker::assumption_i(a, b));
    }
    // Dense extreme: K4 ⊗ K_{4,4} has maximal clustering everywhere.
    thm6_row("K4 (x) K44 (dense)",
             kron::BipartiteKronecker::assumption_i(
                 gen::complete_graph(4), gen::complete_bipartite(4, 4)));
  }
  std::printf("\n(the min ratio stays >= psi >= 1/9 — the Thm 6 guarantee — "
              "while the mean\nratio is far larger, matching the paper's "
              "'typically much greater' remark.)\n");

  std::printf("\n== Cors. 1-2: community density scaling laws ==\n\n");
  std::printf("%-30s %9s %9s %9s | %9s %9s %9s\n", "scenario", "rho_inC",
              "Cor1 lb", "slack", "rho_outC", "Cor2 ub", "slack");

  // ω sweep: community balance in S_A from lopsided to balanced.
  Rng rng(99);
  const gen::PlantedCommunity base{.nu = 20,
                                   .nw = 20,
                                   .r = 8,
                                   .t = 8,
                                   .p_in = 0.8,
                                   .p_out = 0.05};
  const auto b_factor = gen::planted_community_bipartite(base, rng);
  const auto fb = prefix_community(b_factor, base.nu, base.r, base.t);

  for (const auto& [r_a, t_a] : {std::pair<index_t, index_t>{8, 8},
                                 {12, 4},
                                 {14, 2}}) {
    gen::PlantedCommunity pa = base;
    pa.r = r_a;
    pa.t = t_a;
    const auto a_factor = gen::planted_community_bipartite(pa, rng);
    const auto fa = prefix_community(a_factor, pa.nu, r_a, t_a);
    const auto pc = kron::product_community(fa, fb);
    const double lb = kron::cor1_lower_bound(fa, fb);
    const double ub = kron::cor2_upper_bound(fa, fb);
    char name[64];
    std::snprintf(name, sizeof name, "omega sweep |R_A|=%lld |T_A|=%lld",
                  static_cast<long long>(r_a), static_cast<long long>(t_a));
    std::printf("%-30s %9.4f %9.4f %9.4f | %9.5f %9.5f %9.5f\n", name,
                pc.rho_in(), lb, pc.rho_in() - lb, pc.rho_out(), ub,
                ub - pc.rho_out());
  }

  // Density sweep: stronger planted communities stay stronger in C.
  for (const double p_in : {0.3, 0.6, 0.9}) {
    gen::PlantedCommunity pa = base;
    pa.p_in = p_in;
    const auto a_factor = gen::planted_community_bipartite(pa, rng);
    const auto fa = prefix_community(a_factor, pa.nu, pa.r, pa.t);
    const auto pc = kron::product_community(fa, fb);
    const double lb = kron::cor1_lower_bound(fa, fb);
    const double ub = kron::cor2_upper_bound(fa, fb);
    char name[64];
    std::snprintf(name, sizeof name, "density sweep p_in=%.1f", p_in);
    std::printf("%-30s %9.4f %9.4f %9.4f | %9.5f %9.5f %9.5f\n", name,
                pc.rho_in(), lb, pc.rho_in() - lb, pc.rho_out(), ub,
                ub - pc.rho_out());
  }

  std::printf("\n(rho_in(S_C) tracks rho_in(S_A)*rho_in(S_B) from above — "
              "dense factor\ncommunities yield dense product communities; "
              "rho_out stays bounded — the\n'controllable' claim of "
              "contributions (c)-(d).)\n");
  h.counter("thm6_violations", static_cast<double>(thm6_violations));
  h.counter("thm6_min_ratio", thm6_min_ratio_seen);
  return thm6_violations == 0 ? 0 : 1;
}
