// Table I reproduction (§IV): graph statistics for the unicode-like factor
// A and the Kronecker product C = (A + I_A) ⊗ A.
//
// The paper's row for C reports |U_C| = 220,472, |W_C| = 532,952,
// |E_C| = 3,155,072, and 946,565,889 global 4-cycles, computed on the real
// KONECT `unicode` dataset.  We use the documented synthetic stand-in
// (gen::unicode_like — same two-mode shape and edge count, heavy-tail
// degrees), so vertex-set sizes match exactly and edge/4-cycle counts match
// in order of magnitude.
//
// Note on |E_C|: with C = (A+I_A) ⊗ A, |E_C| = nnz(A+I_A)·nnz(A)/2
// = 4,245,280 for the real factor sizes.  The printed 3,155,072 equals
// nnz(A)²/2 — the A ⊗ A edge count without the identity block — so the
// paper's table appears to omit the I_A ⊗ A edges; we report both.

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/unicode_like.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/stats.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

int main(int argc, char** argv) {
  bench::Harness h("table1", bench::parse_args(argc, argv));
  std::printf("== Table I: unicode-like factor and C = (A + I_A) ⊗ A ==\n\n");

  Timer total;
  const gen::UnicodeLikeParams params; // konect `unicode` shape
  const auto a = gen::unicode_like();
  // Sides by construction (two-coloring would assign isolated vertices
  // arbitrarily): left block is U, right block is W, as in the dataset.
  const index_t n_u = params.n_left;
  const index_t n_w = params.n_right;

  Timer t_factor;
  const count_t factor_squares = graph::global_butterflies(a);
  const double factor_time = t_factor.seconds();

  // Paper's construction; `raw` because the real unicode factor is
  // disconnected (Thm 2's connectivity guarantee needs connected factors,
  // but every ground-truth formula only needs loop-free B).
  const auto kp =
      kron::BipartiteKronecker::raw(grb::add_identity(a), a);

  Timer t_product;
  const count_t product_squares = kron::global_squares(kp);
  const double product_time = t_product.seconds();

  const index_t n_u_c = a.nrows() * n_u;
  const index_t n_w_c = a.nrows() * n_w;
  const count_t e_c = kp.num_edges();
  const count_t e_axa = a.nnz() * a.nnz() / 2;

  std::printf("%-28s %20s %20s\n", "", "measured", "paper (unicode)");
  std::printf("%-28s %20s %20s\n", "A: |U_A|",
              format_count(n_u).c_str(), "254");
  std::printf("%-28s %20s %20s\n", "A: |W_A|",
              format_count(n_w).c_str(), "614");
  std::printf("%-28s %20s %20s\n", "A: |E_A|",
              format_count(graph::num_edges(a)).c_str(), "1,256");
  std::printf("%-28s %20s %20s\n", "A: global 4-cycles",
              format_count(factor_squares).c_str(), "1,662");
  std::printf("%-28s %20s %20s\n", "C: |U_C|",
              format_count(n_u_c).c_str(), "220,472");
  std::printf("%-28s %20s %20s\n", "C: |W_C|",
              format_count(n_w_c).c_str(), "532,952");
  std::printf("%-28s %20s %20s\n", "C: |E_C| (full (A+I)⊗A)",
              format_count(e_c).c_str(), "4,245,280*");
  std::printf("%-28s %20s %20s\n", "C: |E_C| (A⊗A part only)",
              format_count(e_axa).c_str(), "3,155,072");
  std::printf("%-28s %20s %20s\n", "C: global 4-cycles",
              format_count(product_squares).c_str(), "946,565,889");
  std::printf("\n(*) see header note: the paper's |E_C| equals nnz(A)^2/2.\n");

  const auto sum_a = graph::degree_summary(a);
  std::printf("\nfactor degree shape: max=%lld mean=%.2f gini=%.3f\n",
              static_cast<long long>(sum_a.max_degree), sum_a.mean_degree,
              sum_a.gini);

  std::printf("\nground-truth timing (factor-space only, |E_C| never "
              "materialized):\n");
  std::printf("  factor 4-cycles (direct wedge count): %s\n",
              format_duration(factor_time).c_str());
  std::printf("  product global 4-cycles (factored)  : %s\n",
              format_duration(product_time).c_str());
  std::printf("  total                                : %s\n",
              format_duration(total.seconds()).c_str());
  h.time_value("factor_direct_count", factor_time);
  h.time_value("product_global_squares_factored", product_time);
  h.counter("factor_squares", static_cast<double>(factor_squares));
  h.counter("product_squares", static_cast<double>(product_squares));
  h.counter("product_edges_full", static_cast<double>(e_c));
  h.counter("under_30s", total.seconds() < 30.0 ? 1.0 : 0.0);
  std::printf("\n\"local and global 4-cycle counts are done in seconds on a "
              "commodity laptop\" (§IV): %s\n",
              total.seconds() < 30.0 ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
