// Fig. 1 reproduction: the three small Kronecker constructions.
//
//   (top)         bipartite ⊗ bipartite            → bipartite, DISCONNECTED
//   (lower-left)  non-bipartite ⊗ bipartite (Thm 1) → bipartite, connected
//   (lower-right) (bipartite + I) ⊗ bipartite (Thm 2)→ bipartite, connected
//
// For each panel we print the factor-level prediction (computed without
// materializing C) next to the BFS-measured reality on the materialized
// product.

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/connectivity.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

namespace {

bool all_ok = true;
int panels_run = 0;

void panel(const char* name, const kron::BipartiteKronecker& kp) {
  ++panels_run;
  const auto pred = kron::predict(kp);
  const auto c = kp.materialize();
  const auto comp = graph::connected_components(c);
  const bool bip = graph::is_bipartite(c);
  const bool ok = pred.components == comp.count && pred.bipartite == bip;
  all_ok &= ok;
  std::printf("%-34s |V_C|=%4lld |E_C|=%5lld  predicted: %-12s measured: "
              "%lld component%s, %s%s\n",
              name, static_cast<long long>(kp.num_vertices()),
              static_cast<long long>(kp.num_edges()),
              pred.connected ? "connected" : "2 components",
              static_cast<long long>(comp.count), comp.count == 1 ? "" : "s",
              bip ? "bipartite" : "NON-bipartite",
              ok ? "" : "  << MISMATCH");
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("fig1_connectivity", bench::parse_args(argc, argv));
  std::printf("== Fig. 1: connectivity of bipartite Kronecker products ==\n\n");

  // The figure's factors are path/cycle-sized; we use P3, P4, a triangle,
  // and C4 in the same spirit.
  const auto p3 = gen::path_graph(3);
  const auto p4 = gen::path_graph(4);
  const auto c4 = gen::cycle_graph(4);
  const auto tri = gen::triangle_with_tail(0);

  std::printf("(top) two connected bipartite factors:\n");
  panel("  P3 (x) P4", kron::BipartiteKronecker::raw(p3, p4));
  panel("  P3 (x) C4", kron::BipartiteKronecker::raw(p3, c4));
  panel("  C4 (x) C4", kron::BipartiteKronecker::raw(c4, c4));

  std::printf("\n(lower-left) Thm 1 — non-bipartite (x) bipartite:\n");
  panel("  K3 (x) P4", kron::BipartiteKronecker::assumption_i(tri, p4));
  panel("  K3 (x) C4", kron::BipartiteKronecker::assumption_i(tri, c4));

  std::printf("\n(lower-right) Thm 2 — (bipartite + I) (x) bipartite:\n");
  panel("  (P3+I) (x) P4",
        kron::BipartiteKronecker::assumption_ii(p3, p4));
  panel("  (P3+I) (x) C4",
        kron::BipartiteKronecker::assumption_ii(p3, c4));
  panel("  (C4+I) (x) C4",
        kron::BipartiteKronecker::assumption_ii(c4, c4));

  std::printf("\n%s\n", all_ok
                            ? "every prediction matched the BFS measurement."
                            : "PREDICTION MISMATCH — see rows above.");
  h.counter("panels", static_cast<double>(panels_run));
  h.counter("predictions_ok", all_ok ? 1.0 : 0.0);
  return all_ok ? 0 : 1;
}
