// Distance/eccentricity ground truth bench (§I: "formulas for ground truth
// of many graph properties (including degree, diameter, and eccentricity)
// carry over directly").
//
// We compare exact factor-space eccentricities against all-sources BFS on
// the materialized product, reporting agreement and the cost ratio, plus a
// diameter table across the paper's three constructions.

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/eccentricity.hpp"
#include "kronlab/kron/distance.hpp"

using namespace kronlab;

namespace {

bool all_exact = true;
int rows_run = 0;

void row(bench::Harness& h, const char* name,
         const kron::BipartiteKronecker& kp) {
  ++rows_run;
  const std::string tag = "row" + std::to_string(rows_run);

  Timer t_truth;
  const auto ecc_truth = kron::product_eccentricities(kp);
  const double truth_s = t_truth.seconds();
  h.time_value("truth_" + tag, truth_s);

  Timer t_bfs;
  const auto c = kp.materialize();
  const auto ecc_bfs = graph::eccentricities(c);
  const double bfs_s = t_bfs.seconds();
  h.time_value("bfs_" + tag, bfs_s);

  const bool ok = ecc_truth == ecc_bfs;
  all_exact &= ok;
  index_t diam = 0, rad = ecc_truth.empty() ? 0 : ecc_truth[0];
  for (const index_t e : ecc_truth) {
    diam = std::max(diam, e);
    rad = std::min(rad, e);
  }
  std::printf("%-30s |V_C|=%6lld  diam=%3lld rad=%3lld  truth=%9s "
              "bfs=%9s  %s\n",
              name, static_cast<long long>(kp.num_vertices()),
              static_cast<long long>(diam), static_cast<long long>(rad),
              format_duration(truth_s).c_str(),
              format_duration(bfs_s).c_str(),
              ok ? "exact" : "MISMATCH");
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("distance", bench::parse_args(argc, argv));
  std::printf("== eccentricity/diameter ground truth for products ==\n\n");

  row(h, "K3 (x) P8 (Thm 1)",
      kron::BipartiteKronecker::assumption_i(gen::triangle_with_tail(0),
                                             gen::path_graph(8)));
  row(h, "(P5+I) (x) C8 (Thm 2)",
      kron::BipartiteKronecker::assumption_ii(gen::path_graph(5),
                                              gen::cycle_graph(8)));
  row(h, "(C6+I) (x) Q4 (Thm 2)",
      kron::BipartiteKronecker::assumption_ii(gen::cycle_graph(6),
                                              gen::hypercube(4)));
  Rng rng(23);
  row(h, "random (Thm 1)",
      kron::BipartiteKronecker::assumption_i(
          gen::random_nonbipartite_connected(20, 45, rng),
          gen::connected_random_bipartite(12, 12, 40, rng)));
  row(h, "random (Thm 2)",
      kron::BipartiteKronecker::assumption_ii(
          gen::connected_random_bipartite(10, 10, 28, rng),
          gen::connected_random_bipartite(12, 10, 32, rng)));
  if (!h.quick()) {
    row(h, "larger random (Thm 1)",
        kron::BipartiteKronecker::assumption_i(
            gen::random_nonbipartite_connected(30, 70, rng),
            gen::connected_random_bipartite(20, 20, 70, rng)));
  }

  std::printf("\nfactor-space eccentricities agree with BFS on every "
              "product; the ground\ntruth needs only O(n_A² + n_B²) parity "
              "BFS state vs the product's\nO(|V_C|·|E_C|) all-sources "
              "BFS.\n");
  h.counter("rows", static_cast<double>(rows_run));
  h.counter("rows_exact", all_exact ? 1.0 : 0.0);
  return all_exact ? 0 : 1;
}
