// X3: google-benchmark microbenchmarks for the grb kernels the ground-truth
// pipeline is built from: mxv, SpGEMM, Hadamard, Kronecker product, and the
// factor-statistics bundle.  Per-kernel parallel metrics (chunk counts,
// busy time, load imbalance) accumulate across all iterations and are
// dumped after the benchmark table.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/kron.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/parallel/metrics.hpp"

using namespace kronlab;

namespace {

graph::Adjacency factor(index_t scale) {
  Rng rng(42 + static_cast<std::uint64_t>(scale));
  return gen::preferential_bipartite(4 * scale, 6 * scale, 20 * scale, rng);
}

void BM_Mxv(benchmark::State& state) {
  const auto a = factor(state.range(0));
  const auto x = grb::ones<count_t>(a.ncols());
  for (auto _ : state) {
    benchmark::DoNotOptimize(grb::mxv(a, x));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Mxv)->Arg(4)->Arg(16)->Arg(64);

void BM_Spgemm(benchmark::State& state) {
  const auto a = factor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grb::mxm(a, a));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spgemm)->Arg(4)->Arg(16)->Arg(64);

void BM_Hadamard(benchmark::State& state) {
  const auto a = factor(state.range(0));
  const auto a2 = grb::mxm(a, a);
  const auto a3 = grb::mxm(a2, a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grb::ewise_mult(a3, a));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Hadamard)->Arg(4)->Arg(16)->Arg(64);

void BM_KroneckerMaterialize(benchmark::State& state) {
  const auto a = factor(4);
  const auto b = factor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grb::kron(a, b));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * b.nnz());
}
BENCHMARK(BM_KroneckerMaterialize)->Arg(2)->Arg(4)->Arg(8);

void BM_FactorStats(benchmark::State& state) {
  const auto a = factor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kron::FactorStats::compute(a));
  }
}
BENCHMARK(BM_FactorStats)->Arg(4)->Arg(16)->Arg(64);

void BM_DirectButterflies(benchmark::State& state) {
  const auto a = factor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::vertex_butterflies(a));
  }
}
BENCHMARK(BM_DirectButterflies)->Arg(4)->Arg(16)->Arg(64);

void BM_Transpose(benchmark::State& state) {
  const auto a = factor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grb::transpose(a));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose)->Arg(4)->Arg(16)->Arg(64);

} // namespace

int main(int argc, char** argv) {
  // Two flag namespaces share argv: --benchmark_* goes to google-benchmark,
  // everything else to the shared harness (which rejects unknown flags).
  std::vector<char*> bm_args{argv[0]};
  std::vector<char*> our_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    (std::strncmp(argv[i], "--benchmark", 11) == 0 ? bm_args : our_args)
        .push_back(argv[i]);
  }
  auto our_argc = static_cast<int>(our_args.size());
  bench::Harness h("grb_micro",
                   bench::parse_args(our_argc, our_args.data()));

  // Quick mode trims each family to its smallest instances; the harness
  // JSON still carries the full per-kernel parallel metrics snapshot.
  std::string quick_filter = "--benchmark_filter=.*/(2|4)$";
  if (h.quick()) bm_args.push_back(quick_filter.data());

  auto bm_argc = static_cast<int>(bm_args.size());
  benchmark::Initialize(&bm_argc, bm_args.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_args.data())) {
    return 1;
  }
  const auto run = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  h.counter("benchmarks_run", static_cast<double>(run));
  std::printf("\n== per-kernel parallel metrics ==\n%s",
              metrics::report_text().c_str());
  return 0;
}
