// X2: generator throughput — nonstochastic Kronecker (stream vs
// materialize) against the bipartite R-MAT stochastic baseline (§I).
//
// The contrast the paper draws: R-MAT is a fast sampler but gives only
// in-expectation properties and must store the result to reuse it; the
// nonstochastic generator streams a *reproducible* graph from two tiny
// factors, with exact statistics available at generation time.  We measure
// edges/second for:
//   * Kronecker streaming (no product materialization)
//   * Kronecker streaming with on-the-fly ground-truth ◇ per edge
//   * Kronecker materialization into CSR
//   * bipartite R-MAT sampling (dedup off, matching stream semantics)

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/rmat.hpp"
#include "kronlab/kron/stream.hpp"
#include "kronlab/parallel/metrics.hpp"

using namespace kronlab;

namespace {

double rate(count_t edges, double seconds) {
  return static_cast<double>(edges) / std::max(1e-9, seconds) / 1e6;
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("generation", bench::parse_args(argc, argv));
  std::printf("== X2: generation throughput (Medges/s) ==\n\n");
  std::printf("%12s | %10s %14s %12s | %10s\n", "|E_C|", "stream",
              "stream+truth", "materialize", "R-MAT");

  Rng rng(3);
  const std::vector<index_t> scales = h.quick()
                                          ? std::vector<index_t>{8, 16}
                                          : std::vector<index_t>{8, 16, 32};
  for (const index_t scale : scales) {
    const auto a = gen::random_nonbipartite_connected(12, 30, rng);
    const auto b = gen::preferential_bipartite(6 * scale, 8 * scale,
                                               24 * scale, rng);
    const auto kp = kron::BipartiteKronecker::raw(a, b);
    const count_t entries = a.nnz() * b.nnz();

    Timer t_stream;
    count_t sink = 0;
    kron::EdgeStream(kp).for_each_entry(
        [&](index_t p, index_t q) { sink += p ^ q; });
    const double stream_s = t_stream.seconds();

    Timer t_truth;
    count_t sq_sink = 0;
    kron::GroundTruthStream gts(kp);
    gts.for_each_entry(
        [&](index_t, index_t, count_t sq) { sq_sink += sq; });
    const double truth_s = t_truth.seconds();

    Timer t_mat;
    const auto c = kp.materialize();
    const double mat_s = t_mat.seconds();

    gen::RmatParams rp;
    rp.scale_u = 1;
    while ((index_t{1} << rp.scale_u) < 6 * scale) ++rp.scale_u;
    rp.scale_w = rp.scale_u + 1;
    rp.edges = entries / 2;
    rp.dedup = false;
    Timer t_rmat;
    Rng rmat_rng(11);
    count_t rmat_sink = 0;
    for (count_t e = 0; e < rp.edges; ++e) {
      const auto [u, w] = gen::rmat_edge(rp, rmat_rng);
      rmat_sink += u ^ w;
    }
    const double rmat_s = t_rmat.seconds();

    const std::string tag = "scale" + std::to_string(scale);
    h.time_value("stream_" + tag, stream_s);
    h.time_value("stream_truth_" + tag, truth_s);
    h.time_value("materialize_" + tag, mat_s);
    h.time_value("rmat_" + tag, rmat_s);
    if (scale == scales.back()) {
      h.counter("stream_medges_per_s", rate(entries, stream_s));
      h.counter("stream_truth_medges_per_s", rate(entries, truth_s));
      h.counter("materialize_medges_per_s", rate(entries, mat_s));
      h.counter("rmat_medges_per_s", rate(rp.edges, rmat_s));
    }
    std::printf("%12s | %10.1f %14.1f %12.1f | %10.1f\n",
                format_count(entries / 2).c_str(),
                rate(entries, stream_s), rate(entries, truth_s),
                rate(entries, mat_s), rate(rp.edges, rmat_s));
    // Keep the sinks alive.
    if (sink == 0x7fffffff && sq_sink == 1 && rmat_sink == 1 && c.nnz() < 0) {
      std::printf("(impossible)\n");
    }
  }

  std::printf("\nshape: streaming matches or beats sampling throughput while "
              "also carrying\nexact per-edge ground truth — the §I pitch for "
              "nonstochastic generators as\nvalidation tools.\n");

  std::printf("\n== per-kernel parallel metrics ==\n%s",
              metrics::report_text().c_str());
  return 0;
}
