// Approximate-counting validation bench — the paper's §I use case:
// "graph generators that produce massive graphs with ground truth 4-cycle
//  counts [are] attractive for validating both direct and approximate
//  computation techniques."
//
// We generate a Kronecker product whose exact global count is known from
// the factors, materialize it as the "massive input" a sampling algorithm
// would see, and score three estimator families at increasing sample
// budgets: relative error vs ground truth, plus wall time vs the exact
// wedge count.

#include <cmath>
#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/approx_butterflies.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

int main(int argc, char** argv) {
  bench::Harness h("approx", bench::parse_args(argc, argv));
  std::printf("== scoring approximate butterfly counters against ground "
              "truth ==\n\n");

  Rng rng(271828);
  // raw: the heavy-tail right factor may be disconnected (like real data);
  // the ground-truth formulas don't care.
  const auto kp = kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(20, 48, rng),
      gen::preferential_bipartite(60, 80, 260, rng));
  const count_t truth = kron::global_squares(kp);
  const auto c = kp.materialize();
  std::printf("instance: |V_C|=%s |E_C|=%s   exact #C4 = %s (from "
              "factors)\n\n",
              format_count(kp.num_vertices()).c_str(),
              format_count(kp.num_edges()).c_str(),
              format_count(truth).c_str());

  Timer t_exact;
  const count_t direct = graph::global_butterflies(c);
  const double exact_s = t_exact.seconds();
  if (direct != truth) {
    std::printf("GROUND TRUTH MISMATCH\n");
    return 1;
  }
  h.time_value("exact_recount", exact_s);
  h.counter("ground_truth_ok", 1.0);
  h.counter("exact_squares", static_cast<double>(truth));
  std::printf("exact recount (wedge algorithm): %s\n\n",
              format_duration(exact_s).c_str());

  std::printf("%8s | %22s | %22s | %22s\n", "samples", "vertex est (err)",
              "edge est (err)", "wedge est (err)");
  const std::vector<index_t> budgets =
      h.quick() ? std::vector<index_t>{100, 400, 1600}
                : std::vector<index_t>{100, 400, 1600, 6400, 25600};
  for (const index_t samples : budgets) {
    double est[3], err[3];
    double secs[3];
    Rng r(99);
    {
      Timer t;
      est[0] = graph::approx_butterflies_vertex(c, samples, r).estimate;
      secs[0] = t.seconds();
    }
    {
      Timer t;
      est[1] = graph::approx_butterflies_edge(c, samples, r).estimate;
      secs[1] = t.seconds();
    }
    {
      Timer t;
      est[2] = graph::approx_butterflies_wedge(c, samples, r).estimate;
      secs[2] = t.seconds();
    }
    for (int i = 0; i < 3; ++i) {
      err[i] = std::abs(est[i] / static_cast<double>(truth) - 1.0) * 100.0;
    }
    std::printf("%8lld | %13.3e (%5.1f%%) | %13.3e (%5.1f%%) | %13.3e "
                "(%5.1f%%)\n",
                static_cast<long long>(samples), est[0], err[0], est[1],
                err[1], est[2], err[2]);
    if (samples == budgets.back()) {
      h.counter("err_pct_vertex_largest_budget", err[0]);
      h.counter("err_pct_edge_largest_budget", err[1]);
      h.counter("err_pct_wedge_largest_budget", err[2]);
      h.time_value("approx_vertex_largest_budget", secs[0]);
      h.time_value("approx_edge_largest_budget", secs[1]);
      h.time_value("approx_wedge_largest_budget", secs[2]);
    }
  }

  std::printf("\nshape: all three estimator families converge toward the "
              "exact count as the\nsample budget grows — and only because "
              "the generator supplies that exact\ncount can the error "
              "column be computed at all on a graph this size.\n");
  return 0;
}
