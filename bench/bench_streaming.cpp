// Durable streaming-generation bench — the crash-tolerance backbone in
// miniature (DESIGN.md §12): stream a Kronecker product's edges into a
// KRNLSEG1/KRNLMAN1 store with on-the-fly oracle validation, then measure
// what resumability costs.
//
// Sections:
//   cold_generate     fresh store, full stream, validation on — the
//                     baseline edges/sec of the durable pipeline.
//   interrupted_total kill the writer mid-run (FaultyFileOps, a
//                     deterministic crash at a segment seal) and resume;
//                     the sum must stay within 5% of a cold run, and the
//                     resumed manifest must be chain-hash-identical.
//   resume_scan       no-op resume of a complete store — the pure scan /
//                     re-checksum overhead every restart pays.
//   verify_store      full offline re-validation (read every segment,
//                     replay through the oracle validator).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/io/file_ops.hpp"
#include "kronlab/io/stream_gen.hpp"
#include "kronlab/kron/partition.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

namespace {

/// Wipe and recreate the bench's store directory.
std::string fresh_dir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("kronlab_bench_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("streaming", bench::parse_args(argc, argv));
  std::printf("== durable streaming generation (crash-tolerant store) ==\n\n");

  // Instance sized so a cold run is long enough for the ≤5% resume-
  // overhead check to sit above timer noise even in --quick.
  Rng rng(909);
  const index_t m_edges = h.quick() ? 300 : 700;
  const index_t b_edges = h.quick() ? 1200 : 3600;
  const auto kp = kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(40, m_edges, rng),
      gen::preferential_bipartite(64, 96, b_edges, rng));

  io::StreamGenOptions opt;
  opt.shards = 4;
  opt.segment_edges = 1 << 13;
  opt.sample_rate = 64;

  const kron::PartitionedStream parts(kp, opt.shards);
  count_t total_entries = 0, total_segments = 0;
  for (index_t s = 0; s < opt.shards; ++s) {
    const count_t e = parts.entries_of(s);
    total_entries += e;
    total_segments += (e + opt.segment_edges - 1) / opt.segment_edges;
  }
  std::printf("instance: |V|=%s |E|=%s -> %s records, %lld shards x %lld "
              "records/segment (%lld segments)\n\n",
              format_count(kp.num_vertices()).c_str(),
              format_count(kp.num_edges()).c_str(),
              format_count(total_entries).c_str(),
              static_cast<long long>(opt.shards),
              static_cast<long long>(opt.segment_edges),
              static_cast<long long>(total_segments));

  // -------------------------------------------------------------------
  // Cold baseline: fresh directory each rep, validation on.  One untimed
  // warmup first — quick mode runs a single rep, and a cold page cache /
  // first oracle build would inflate the baseline the resume sections
  // are compared against.
  {
    io::StreamGenOptions o = opt;
    o.dir = fresh_dir("stream_warmup");
    (void)io::generate_durable(io::real_file_ops(), kp, o);
  }
  // -------------------------------------------------------------------
  // Cold baseline vs interrupted + resumed, measured as PAIRS: each rep
  // times a fresh cold run, then a run crashed at a quarter-way segment
  // seal (FaultyFileOps) plus its resume, back to back.  The overhead
  // ratio is taken per pair and the best pair wins — machine-load noise
  // hits both sides of a pair alike, where independent best-of-N on a
  // busy box can swing the ratio by tens of percent.
  double best_cold = -1.0, best_total = -1.0;
  double best_killed = 0.0, best_resume = 0.0;
  double overhead_pct = 1e9;
  bool identical = true;
  const int reps = std::max(2, h.reps_for(3));
  const count_t kill_seg = std::max<count_t>(1, total_segments / 4);
  for (int r = 0; r < reps; ++r) {
    io::StreamGenOptions o = opt;
    o.dir = fresh_dir("stream_cold");
    Timer t_cold;
    const auto cold_rep = io::generate_durable(io::real_file_ops(), kp, o);
    const double cold_s = t_cold.seconds();
    if (best_cold < 0 || cold_s < best_cold) best_cold = cold_s;

    o.dir = fresh_dir("stream_resume");
    io::FsFaultPlan plan;
    plan.kill_point = "segment:rename:after";
    plan.kill_hits = static_cast<std::uint64_t>(kill_seg);
    io::FaultyFileOps faulty(io::real_file_ops(), plan);

    Timer t_killed;
    bool killed = false;
    try {
      (void)io::generate_durable(faulty, kp, o);
    } catch (const io::killed_at&) {
      killed = true;
    }
    const double killed_s = t_killed.seconds();
    if (!killed) {
      std::printf("FAULT PLAN DID NOT FIRE — instance too small?\n");
      return 1;
    }

    o.resume = true;
    Timer t_resume;
    const auto rep = io::generate_durable(io::real_file_ops(), kp, o);
    const double resume_s = t_resume.seconds();

    identical = identical &&
                rep.manifest.shards.size() == cold_rep.manifest.shards.size();
    for (std::size_t s = 0; identical && s < rep.manifest.shards.size(); ++s) {
      identical = rep.manifest.shards[s].chain_hash ==
                      cold_rep.manifest.shards[s].chain_hash &&
                  rep.manifest.shards[s].edges ==
                      cold_rep.manifest.shards[s].edges;
    }

    const double over = (killed_s + resume_s - cold_s) / cold_s * 100.0;
    if (over < overhead_pct) {
      overhead_pct = over;
      best_total = killed_s + resume_s;
      best_killed = killed_s;
      best_resume = resume_s;
    }
  }
  h.time_value("cold_generate", best_cold);
  h.time_value("interrupted_total", best_total);
  const double eps = static_cast<double>(total_entries) / best_cold;
  h.counter("edges_per_sec", eps);
  std::printf("cold run: %s in %s  (%s records/sec, validation 1-in-%llu)\n",
              format_count(total_entries).c_str(),
              format_duration(best_cold).c_str(),
              format_count(static_cast<count_t>(eps)).c_str(),
              static_cast<unsigned long long>(opt.sample_rate));
  h.counter("resume_overhead_pct", overhead_pct);
  h.counter("resume_bit_identical", identical ? 1.0 : 0.0);
  std::printf("interrupted at segment %lld/%lld, resumed: %s + %s = %s  "
              "(overhead %+.2f%% vs paired cold run, store %s)\n",
              static_cast<long long>(kill_seg),
              static_cast<long long>(total_segments),
              format_duration(best_killed).c_str(),
              format_duration(best_resume).c_str(),
              format_duration(best_total).c_str(), overhead_pct,
              identical ? "chain-hash identical" : "DIVERGED");

  // -------------------------------------------------------------------
  // Pure restart cost: resuming a complete store generates nothing — the
  // whole run is manifest scan + segment re-checksum.
  {
    io::StreamGenOptions o = opt;
    o.dir = fresh_dir("stream_scan");
    (void)io::generate_durable(io::real_file_ops(), kp, o);
    o.resume = true;
    const auto scan = h.time_section(
        "resume_scan",
        [&] { (void)io::generate_durable(io::real_file_ops(), kp, o); }, 3);
    std::printf("no-op resume (scan + re-checksum only): %s  (%.2f%% of a "
                "cold run)\n",
                format_duration(scan.min_seconds).c_str(),
                scan.min_seconds / best_cold * 100.0);

    const auto verify = h.time_section(
        "verify_store",
        [&] { (void)io::verify_store(io::real_file_ops(), kp, o); }, 3);
    std::printf("offline verify_store (full oracle replay): %s\n",
                format_duration(verify.min_seconds).c_str());
  }

  std::printf("\nresume overhead %+.2f%% (budget 5%%) — the durable store "
              "costs one\nre-generated segment plus a checksum scan, never "
              "a restart from zero.\n",
              overhead_pct);
  if (!identical) return 1;
  if (overhead_pct > 5.0) {
    std::printf("RESUME OVERHEAD EXCEEDS the 5%% budget\n");
    return 1;
  }
  return 0;
}
