// Generator-comparison bench: the §I qualitative claims about stochastic
// baselines.
//
//   * "A bipartite version of R-MAT exists, although the probability of
//      generating high-order graph structure between medium-low degree
//      vertices is much too low to mimic many real-world bipartite
//      graphs."  (R-MAT butterflies concentrate on its hub corner.)
//   * BTER "is fairly capable of matching degree-binned averages of a type
//      of bipartite clustering coefficient" — community blocks give
//      low-degree vertices closed structure.
//   * Nonstochastic Kronecker: closed structure everywhere, with every
//     local count known exactly.
//
// Metric: among *medium-low degree* vertices (2 ≤ d ≤ 8), what fraction
// participate in at least one butterfly, and what is their mean local
// closure?  Plus the global Robins–Alexander coefficient for context.

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/bter.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/rmat.hpp"
#include "kronlab/graph/bipartite_clustering.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/stats.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

namespace {

struct RowStats {
  count_t edges = 0;
  double ra_cc = 0.0;
  double midlow_hit = 0.0;     ///< fraction of 2..8-degree vertices in ≥1 C4
  double midlow_closure = 0.0; ///< mean local closure over those vertices
  index_t midlow_n = 0;
};

RowStats measure(const graph::Adjacency& g,
                 const grb::Vector<count_t>& squares) {
  RowStats rs;
  rs.edges = graph::num_edges(g);
  rs.ra_cc = graph::robins_alexander_cc(g);
  const auto d = graph::degrees(g);
  const auto closure = graph::local_closure(g);
  count_t hit = 0;
  double closure_sum = 0.0;
  for (index_t v = 0; v < g.nrows(); ++v) {
    if (d[v] < 2 || d[v] > 8) continue;
    ++rs.midlow_n;
    hit += (squares[v] > 0);
    closure_sum += closure[v];
  }
  if (rs.midlow_n > 0) {
    rs.midlow_hit =
        static_cast<double>(hit) / static_cast<double>(rs.midlow_n);
    rs.midlow_closure = closure_sum / static_cast<double>(rs.midlow_n);
  }
  return rs;
}

void print_row(const char* name, const RowStats& rs, const char* how) {
  std::printf("%-24s %8s %8.4f | %9lld %10.3f %12.4f   %s\n", name,
              format_count(rs.edges).c_str(), rs.ra_cc,
              static_cast<long long>(rs.midlow_n), rs.midlow_hit,
              rs.midlow_closure, how);
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("generator_cc", bench::parse_args(argc, argv));
  std::printf("== generator families: closed structure at medium-low "
              "degrees ==\n\n");
  std::printf("%-24s %8s %8s | %9s %10s %12s\n", "generator", "edges",
              "RA-cc", "deg2-8 n", "frac in C4", "mean closure");

  Rng rng(41);

  // Nonstochastic Kronecker with community-rich factors.  Per-vertex
  // square counts come from ground truth, measured on the materialized
  // product only to feed the shared metric code.
  const auto fa = gen::connected_random_bipartite(10, 10, 22, rng);
  const auto fb = gen::connected_random_bipartite(14, 14, 30, rng);
  const auto kp = kron::BipartiteKronecker::assumption_ii(fa, fb);
  {
    Timer t;
    const auto c = kp.materialize();
    const auto s_truth = kron::vertex_squares(kp).materialize();
    const auto rs = measure(c, s_truth);
    h.time_value("kronecker_measure", t.seconds());
    h.counter("kronecker_midlow_frac_in_c4", rs.midlow_hit);
    h.counter("kronecker_midlow_mean_closure", rs.midlow_closure);
    print_row("kronecker (A+I)(x)B", rs, "(per-vertex counts EXACT)");
  }
  const count_t target_edges = kp.num_edges();

  // Bipartite R-MAT at the same requested edge count.
  {
    gen::RmatParams rp;
    rp.scale_u = 8;
    rp.scale_w = 8;
    rp.edges = target_edges;
    const auto g = gen::rmat_bipartite(rp, rng);
    const auto rs = measure(g, graph::vertex_butterflies(g));
    h.counter("rmat_midlow_frac_in_c4", rs.midlow_hit);
    print_row("bipartite R-MAT", rs, "(measured)");
  }

  // BTER-lite tuned to the same scale.
  {
    gen::BterParams bp;
    bp.blocks = 8;
    bp.block_u = 16;
    bp.block_w = 16;
    bp.p_in = 0.16;
    bp.p_out = 0.004;
    const auto g = gen::bter_bipartite(bp, rng);
    const auto rs = measure(g, graph::vertex_butterflies(g));
    h.counter("bter_midlow_frac_in_c4", rs.midlow_hit);
    print_row("BTER-lite", rs, "(measured)");
  }

  // Uniform bipartite baseline.
  {
    const auto g = gen::random_bipartite(280, 280, target_edges, rng);
    const auto rs = measure(g, graph::vertex_butterflies(g));
    h.counter("uniform_midlow_frac_in_c4", rs.midlow_hit);
    print_row("uniform G(nu,nw,m)", rs, "(measured)");
  }

  std::printf(
      "\nshape to reproduce (§I): medium-low-degree closure is strongest "
      "in the\nKronecker graph (inherited deterministically from the "
      "factors, Thm 6), weaker\nunder R-MAT (what closure its sparse "
      "vertices have comes from hub adjacency,\nnot community structure), "
      "community-driven but in-expectation-only for BTER,\nand near zero "
      "for uniform sampling.  Only the Kronecker column is exact\nrather "
      "than measured.\n");
  return 0;
}
