// Distributed validation bench — the extreme-scale workflow in miniature
// (the lineage of [3], [13]: generate shards per rank, run the analytic
// with ghost exchange, validate against generation-time ground truth).
//
// Prints, per rank count: shard balance, distributed-count wall time, and
// the three-way agreement (distributed count == factored ground truth ==
// serial recount).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "kronlab/common/registry.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/dist/sharded.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/obs/trace.hpp"

using namespace kronlab;

int main(int argc, char** argv) {
  // --no-aggregate (this bench only) forces the per-row ghost exchange
  // for every default-configured run below — the A/B escape hatch.  The
  // flag is peeled off before parse_args, which exits on unknown args.
  bool no_aggregate = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--no-aggregate") == 0) {
      no_aggregate = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (no_aggregate) setenv(kronlab::env::kNoAggregate, "1", 1);
  bench::Harness h("distributed", bench::parse_args(
                                      static_cast<int>(args.size()),
                                      args.data()));
  h.label("aggregation", no_aggregate ? "off (per-row)" : "on");
  std::printf("== distributed generation + validated counting ==\n\n");

  Rng rng(515);
  const auto kp = kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(24, 70, rng),
      gen::preferential_bipartite(40, 50, 180, rng));
  const count_t truth = kron::global_squares(kp);
  std::printf("instance: |V_C|=%s |E_C|=%s   ground truth #C4 = %s\n\n",
              format_count(kp.num_vertices()).c_str(),
              format_count(kp.num_edges()).c_str(),
              format_count(truth).c_str());

  Timer t_serial;
  const count_t serial = graph::global_butterflies(kp.materialize());
  const double serial_s = t_serial.seconds();
  h.time_value("serial_recount", serial_s);
  std::printf("serial recount: %s in %s\n\n", format_count(serial).c_str(),
              format_duration(serial_s).c_str());

  std::printf("%6s | %22s | %12s | %s\n", "ranks", "shard entries min/max",
              "count time", "agreement");
  const std::vector<index_t> rank_counts =
      h.quick() ? std::vector<index_t>{1, 4}
                : std::vector<index_t>{1, 2, 4, 8};
  for (const index_t ranks : rank_counts) {
    const kron::PartitionedStream ps(kp, ranks);
    count_t min_e = -1, max_e = 0;
    for (index_t r = 0; r < ranks; ++r) {
      const count_t e = ps.entries_of(r);
      min_e = (min_e < 0 || e < min_e) ? e : min_e;
      max_e = std::max(max_e, e);
    }

    count_t counted = -1, truth_dist = -1;
    Timer t;
    dist::run(ranks, [&](dist::Comm& comm) {
      const auto shard = dist::generate_shard(kp, ps, comm.rank());
      const count_t c = dist::distributed_global_butterflies(comm, shard);
      const count_t g =
          dist::distributed_ground_truth_squares(comm, kp, ps);
      if (comm.rank() == 0) {
        counted = c;
        truth_dist = g;
      }
    });
    const double secs = t.seconds();

    const bool ok = counted == truth && truth_dist == truth;
    h.time_value("distributed_count_ranks" +
                     std::to_string(static_cast<long long>(ranks)),
                 secs);
    std::printf("%6lld | %10s / %-9s | %12s | %s\n",
                static_cast<long long>(ranks),
                format_count(min_e).c_str(), format_count(max_e).c_str(),
                format_duration(secs).c_str(),
                ok ? "exact (count == truth == serial)" : "MISMATCH");
    if (!ok) return 1;
  }
  h.counter("rank_sweeps_exact", 1.0);

  // -------------------------------------------------------------------
  // Aggregated vs per-row ghost exchange at the highest rank count of the
  // sweep, clean and under the 3% fault plan.  This is the Grappa
  // RDMAAggregator story in miniature: identical protocol, identical row
  // payloads — the only difference is whether frames bound for one rank
  // coalesce into batched wire messages or each pay their own envelope.
  const index_t ab_ranks = rank_counts.back();
  std::printf("\n== aggregated vs per-row ghost exchange (%lld ranks) ==\n\n",
              static_cast<long long>(ab_ranks));
  const kron::PartitionedStream ab_ps(kp, ab_ranks);
  dist::FaultPlan ab_plan;
  ab_plan.seed = 7;
  ab_plan.drop = 0.03;
  ab_plan.duplicate = 0.01;

  struct AbResult {
    double secs = -1.0;
    bool exact = false;
    dist::ExchangeStats xs; // summed across ranks, best rep
  };
  const auto run_exchange = [&](bool aggregate, bool faulted) {
    dist::AggregatorOptions opt;
    opt.enabled = aggregate;
    AbResult best;
    for (int rep = 0; rep < 3; ++rep) { // best-of-3 absorbs scheduler noise
      std::mutex mu;
      dist::ExchangeStats sum;
      count_t counted = -1;
      const auto body = [&](dist::Comm& comm) {
        const auto shard = dist::generate_shard(kp, ab_ps, comm.rank());
        dist::ExchangeStats xs;
        const count_t c =
            dist::distributed_global_butterflies(comm, shard, {}, &xs, opt);
        const std::lock_guard<std::mutex> lock(mu);
        sum.retries += xs.retries;
        sum.reply_resends += xs.reply_resends;
        sum.dup_requests += xs.dup_requests;
        sum.dup_replies += xs.dup_replies;
        sum.agg.merge(xs.agg);
        if (comm.rank() == 0) counted = c;
      };
      Timer t;
      if (faulted) {
        dist::run(ab_ranks, ab_plan, body);
      } else {
        dist::run(ab_ranks, body);
      }
      const double secs = t.seconds();
      if (best.secs < 0 || secs < best.secs) {
        best.secs = secs;
        best.xs = sum;
        best.exact = counted == truth;
      }
    }
    return best;
  };

  const auto edges = static_cast<double>(kp.num_edges());
  bool ab_exact = true;
  bool ab_wins = true;
  for (const bool faulted : {false, true}) {
    const auto agg = run_exchange(/*aggregate=*/true, faulted);
    const auto row = run_exchange(/*aggregate=*/false, faulted);
    const char* kind = faulted ? "faulted" : "clean";
    const double speedup = agg.secs > 0 ? row.secs / agg.secs : 0.0;
    std::printf("%-7s: aggregated %s (%s edges/s) | per-row %s "
                "(%s edges/s) | speedup %.2fx\n",
                kind, format_duration(agg.secs).c_str(),
                format_count(static_cast<count_t>(edges / agg.secs)).c_str(),
                format_duration(row.secs).c_str(),
                format_count(static_cast<count_t>(edges / row.secs)).c_str(),
                speedup);
    std::printf("         %s frames -> %s batches (%s coalesced, %s raw); "
                "flushes cap/ddl/man=%s/%s/%s; ~%s envelope bytes saved\n",
                format_count(agg.xs.agg.frames_enqueued).c_str(),
                format_count(agg.xs.agg.batches_sent).c_str(),
                format_count(agg.xs.agg.rows_coalesced).c_str(),
                format_count(agg.xs.agg.single_flushes).c_str(),
                format_count(agg.xs.agg.capacity_flushes).c_str(),
                format_count(agg.xs.agg.deadline_flushes).c_str(),
                format_count(agg.xs.agg.manual_flushes).c_str(),
                format_count(agg.xs.agg.bytes_saved).c_str());
    h.time_value(std::string("exchange_aggregated_") + kind, agg.secs);
    h.time_value(std::string("exchange_per_row_") + kind, row.secs);
    h.counter(std::string("agg_speedup_") + kind, speedup);
    h.counter(std::string("agg_edges_per_sec_") + kind,
              agg.secs > 0 ? edges / agg.secs : 0.0);
    ab_exact = ab_exact && agg.exact && row.exact;
    ab_wins = ab_wins && agg.secs < row.secs;
  }
  h.counter("agg_exchange_exact", ab_exact ? 1.0 : 0.0);
  h.counter("agg_beats_per_row", ab_wins ? 1.0 : 0.0);
  // The acceptance bar: identical counts in both modes, and aggregation
  // strictly faster (the observed margin is an order of magnitude, so
  // this is not a knife-edge comparison).
  if (!ab_exact || !ab_wins) return 1;

  // -------------------------------------------------------------------
  // Fault-injected recovery: the same pipeline under a hostile network
  // (3% drop, 1% duplicate) with one rank killed mid-generation.  The
  // supervisor reassigns the dead rank's rows, restores its checkpoint,
  // and the count must still be bit-identical to the factored truth.
  std::printf("\n== fault-injected recovery (supervised pipeline) ==\n\n");

  const index_t ft_ranks = 4;
  const auto ckpt_dir =
      std::filesystem::temp_directory_path() / "kronlab_bench_ckpt";
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::create_directories(ckpt_dir);
  dist::CheckpointConfig ckpt;
  ckpt.dir = ckpt_dir.string();
  ckpt.interval_left_rows = 2;

  dist::RecoveryReport clean_rep;
  Timer t_clean;
  dist::run(ft_ranks, [&](dist::Comm& comm) {
    const kron::PartitionedStream ps(kp, comm.size());
    const auto rep = dist::supervised_global_butterflies(comm, kp, ps, ckpt);
    if (comm.rank() == 0) clean_rep = rep;
  });
  const double clean_s = t_clean.seconds();
  std::printf("clean run   (%lld ranks): %s  verified=%s  ckpts=%s\n",
              static_cast<long long>(ft_ranks),
              format_duration(clean_s).c_str(),
              clean_rep.verified ? "yes" : "NO",
              format_count(clean_rep.checkpoints_written).c_str());

  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::create_directories(ckpt_dir);
  dist::FaultPlan plan;
  plan.seed = 1;
  plan.drop = 0.03;
  plan.duplicate = 0.01;
  plan.kill_rank = 1;
  plan.kill_point = "gen-block";
  plan.kill_hits = 2;

  dist::RecoveryReport rep;
  Timer t_fault;
  dist::run(ft_ranks, plan, [&](dist::Comm& comm) {
    const kron::PartitionedStream ps(kp, comm.size());
    const auto r = dist::supervised_global_butterflies(comm, kp, ps, ckpt);
    if (comm.rank() == 0) rep = r;
  });
  const double fault_s = t_fault.seconds();
  std::filesystem::remove_all(ckpt_dir);

  std::string dead;
  for (const auto r : rep.dead_ranks) {
    if (!dead.empty()) dead += ',';
    dead += std::to_string(r);
  }
  std::printf("faulted run (%lld ranks): %s  verified=%s\n",
              static_cast<long long>(ft_ranks),
              format_duration(fault_s).c_str(),
              rep.verified ? "yes" : "NO");
  std::printf("  plan: drop=3%% dup=1%% kill rank 1 at gen-block (hit 2), "
              "seed=%llu\n",
              static_cast<unsigned long long>(plan.seed));
  std::printf("  injected: %lld dropped, %lld duplicated, %lld delayed\n",
              static_cast<long long>(rep.faults.dropped),
              static_cast<long long>(rep.faults.duplicated),
              static_cast<long long>(rep.faults.delayed));
  std::printf("  recovery: dead ranks {%s}, %s left rows reassigned, "
              "%s checkpoint(s) restored\n",
              dead.c_str(), format_count(rep.left_rows_reassigned).c_str(),
              format_count(rep.checkpoints_restored).c_str());
  std::printf("  protocol: %s req retries, %s reply resends, %s dup "
              "requests, %s dup replies absorbed\n",
              format_count(rep.exchange.retries).c_str(),
              format_count(rep.exchange.reply_resends).c_str(),
              format_count(rep.exchange.dup_requests).c_str(),
              format_count(rep.exchange.dup_replies).c_str());
  std::printf("  count: %s vs truth %s — %s\n",
              format_count(rep.counted).c_str(),
              format_count(rep.ground_truth).c_str(),
              rep.counted == truth ? "exact" : "MISMATCH");
  std::printf("  recovery overhead: %.2fx the clean supervised run\n",
              clean_s > 0 ? fault_s / clean_s : 0.0);
  h.time_value("supervised_clean", clean_s);
  h.time_value("supervised_faulted", fault_s);
  h.counter("recovery_overhead_x", clean_s > 0 ? fault_s / clean_s : 0.0);
  h.counter("faulted_run_verified",
            rep.verified && rep.counted == truth ? 1.0 : 0.0);
  if (!rep.verified || rep.counted != truth || !clean_rep.verified) return 1;

  // Under --trace <dir>, split the timeline into per-rank binary traces —
  // the miniature of each MPI rank writing its own file — for
  // `kronlab_trace convert` to merge back into one clock-aligned view.
  if (!h.trace_dir().empty()) {
    const auto events = trace::snapshot();
    for (index_t r = 0; r < ft_ranks; ++r) {
      const std::string want = "rank " + std::to_string(r);
      std::vector<trace::TraceEvent> mine;
      for (const auto& e : events) {
        if (e.thread_name == want) mine.push_back(e);
      }
      const std::string path =
          (std::filesystem::path(h.trace_dir()) /
           ("rank_" + std::to_string(r) + ".trace"))
              .string();
      trace::write_binary_file(path, mine);
      std::fprintf(stderr, "[bench harness] wrote %s (%zu events)\n",
                   path.c_str(), mine.size());
    }
  }

  std::printf("\nthe same message pattern (replicated factors, shard-local "
              "generation,\nghost-row exchange, all-reduce of validated "
              "counts) is what the distributed\nGraphBLAS port in the "
              "paper's future work would run per MPI rank.\n");
  return 0;
}
