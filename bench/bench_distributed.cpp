// Distributed validation bench — the extreme-scale workflow in miniature
// (the lineage of [3], [13]: generate shards per rank, run the analytic
// with ghost exchange, validate against generation-time ground truth).
//
// Prints, per rank count: shard balance, distributed-count wall time, and
// the three-way agreement (distributed count == factored ground truth ==
// serial recount).

#include <cstdio>

#include "kronlab/common/timer.hpp"
#include "kronlab/dist/sharded.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/kron/ground_truth.hpp"

using namespace kronlab;

int main() {
  std::printf("== distributed generation + validated counting ==\n\n");

  Rng rng(515);
  const auto kp = kron::BipartiteKronecker::raw(
      gen::random_nonbipartite_connected(24, 70, rng),
      gen::preferential_bipartite(40, 50, 180, rng));
  const count_t truth = kron::global_squares(kp);
  std::printf("instance: |V_C|=%s |E_C|=%s   ground truth #C4 = %s\n\n",
              format_count(kp.num_vertices()).c_str(),
              format_count(kp.num_edges()).c_str(),
              format_count(truth).c_str());

  Timer t_serial;
  const count_t serial = graph::global_butterflies(kp.materialize());
  const double serial_s = t_serial.seconds();
  std::printf("serial recount: %s in %s\n\n", format_count(serial).c_str(),
              format_duration(serial_s).c_str());

  std::printf("%6s | %22s | %12s | %s\n", "ranks", "shard entries min/max",
              "count time", "agreement");
  for (const index_t ranks : {1, 2, 4, 8}) {
    const kron::PartitionedStream ps(kp, ranks);
    count_t min_e = -1, max_e = 0;
    for (index_t r = 0; r < ranks; ++r) {
      const count_t e = ps.entries_of(r);
      min_e = (min_e < 0 || e < min_e) ? e : min_e;
      max_e = std::max(max_e, e);
    }

    count_t counted = -1, truth_dist = -1;
    Timer t;
    dist::run(ranks, [&](dist::Comm& comm) {
      const auto shard = dist::generate_shard(kp, ps, comm.rank());
      const count_t c = dist::distributed_global_butterflies(comm, shard);
      const count_t g =
          dist::distributed_ground_truth_squares(comm, kp, ps);
      if (comm.rank() == 0) {
        counted = c;
        truth_dist = g;
      }
    });
    const double secs = t.seconds();

    const bool ok = counted == truth && truth_dist == truth;
    std::printf("%6lld | %10s / %-9s | %12s | %s\n",
                static_cast<long long>(ranks),
                format_count(min_e).c_str(), format_count(max_e).c_str(),
                format_duration(secs).c_str(),
                ok ? "exact (count == truth == serial)" : "MISMATCH");
    if (!ok) return 1;
  }

  std::printf("\nthe same message pattern (replicated factors, shard-local "
              "generation,\nghost-row exchange, all-reduce of validated "
              "counts) is what the distributed\nGraphBLAS port in the "
              "paper's future work would run per MPI rank.\n");
  return 0;
}
