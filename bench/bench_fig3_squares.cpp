// Fig. 3 reproduction: 4-cycle placement in the Fig. 1 example products,
// illustrating Remark 1 — Kronecker products of square-free factors still
// contain 4-cycles wherever both factors supply a wedge (degree ≥ 2).
//
// For each example we print per-vertex ground-truth square counts grouped
// by the factor-vertex pair they come from, plus the Remark-1 checks:
// factor square counts are zero, product counts are not.
//
// A second section exercises the dynamically scheduled runtime on a
// heavy-tailed factor: direct butterfly counting under the old static
// chunking vs the dynamic dispatcher, with the per-kernel imbalance
// metrics dumped at the end.

#include <atomic>
#include <cstdio>

#include "kronlab/common/timer.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/index_map.hpp"
#include "kronlab/kron/product.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

using namespace kronlab;

namespace {

void example(const char* name, const kron::BipartiteKronecker& kp,
             count_t squares_a, count_t squares_b) {
  const count_t total = kron::global_squares(kp);
  const auto s = kron::vertex_squares(kp).materialize();
  const auto c = kp.materialize();
  const auto direct = graph::global_butterflies(c);

  std::printf("%-22s factor squares: A=%lld B=%lld   product squares: %lld "
              "(direct recount: %lld)%s\n",
              name, static_cast<long long>(squares_a),
              static_cast<long long>(squares_b),
              static_cast<long long>(total),
              static_cast<long long>(direct),
              total == direct ? "" : "  << MISMATCH");

  // Distribution of per-vertex counts.
  count_t zero = 0, nonzero = 0, maxs = 0;
  for (index_t p = 0; p < s.size(); ++p) {
    if (s[p] == 0) {
      ++zero;
    } else {
      ++nonzero;
    }
    maxs = std::max(maxs, s[p]);
  }
  std::printf("%22s vertices with squares: %lld / %lld (max per-vertex %lld)\n",
              "", static_cast<long long>(nonzero),
              static_cast<long long>(s.size()),
              static_cast<long long>(maxs));
}

/// Direct vertex butterfly counting with the pre-dynamic-runtime schedule:
/// one contiguous chunk per worker, wedge table allocated per chunk.  Kept
/// here as the baseline the dynamic runtime is measured against.
grb::Vector<count_t> vertex_butterflies_static(const graph::Adjacency& a,
                                               ThreadPool& pool) {
  grb::Vector<count_t> s(a.nrows(), 0);
  metrics::KernelScope scope("bench/vertex_butterflies_static");
  std::atomic<std::size_t> chunk_id{0};
  parallel_for_range(
      0, a.nrows(),
      [&](index_t lo, index_t hi) {
        // Static = one chunk per worker, so the chunk index doubles as a
        // worker id for the imbalance report.
        const std::size_t worker = chunk_id.fetch_add(1);
        Timer busy;
        std::vector<count_t> cnt(static_cast<std::size_t>(a.nrows()), 0);
        std::vector<index_t> touched;
        for (index_t i = lo; i < hi; ++i) {
          touched.clear();
          for (const index_t j : a.row_cols(i)) {
            for (const index_t k : a.row_cols(j)) {
              if (k == i) continue;
              if (cnt[static_cast<std::size_t>(k)] == 0) touched.push_back(k);
              ++cnt[static_cast<std::size_t>(k)];
            }
          }
          count_t acc = 0;
          for (const index_t k : touched) {
            const count_t c = cnt[static_cast<std::size_t>(k)];
            acc += c * (c - 1) / 2;
            cnt[static_cast<std::size_t>(k)] = 0;
          }
          s[i] = acc;
        }
        scope.note_worker(worker, busy.seconds(), 1,
                          static_cast<std::uint64_t>(hi - lo));
      },
      pool);
  return s;
}

void static_vs_dynamic() {
  std::printf("\n== dynamic runtime: static vs dynamic chunking on a "
              "heavy-tailed factor ==\n\n");
  metrics::set_enabled(true);
  metrics::reset();

  // Preferential attachment concentrates wedges on the early (hub)
  // vertices, so the static split's first chunk carries most of the work.
  Rng rng(7);
  const auto a = gen::preferential_bipartite(4000, 6000, 48000, rng);
  std::printf("factor: %lld vertices, %lld edges, max degree %lld\n",
              static_cast<long long>(a.nrows()),
              static_cast<long long>(a.nnz() / 2),
              static_cast<long long>(graph::max_degree(a)));

  for (const std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride use_pool(pool);

    Timer t_static;
    const auto s_static = vertex_butterflies_static(a, pool);
    const double static_s = t_static.seconds();

    Timer t_dynamic;
    const auto s_dynamic = graph::vertex_butterflies(a);
    const double dynamic_s = t_dynamic.seconds();

    std::printf("pool %zu: static %8.2f ms   dynamic %8.2f ms   "
                "speedup %.2fx   %s\n",
                threads, static_s * 1e3, dynamic_s * 1e3,
                static_s / std::max(1e-9, dynamic_s),
                s_static == s_dynamic ? "(results agree)"
                                      : "<< RESULT MISMATCH");
  }

  std::printf("\nper-kernel metrics (dynamic runs):\n%s",
              metrics::report_text().c_str());
  std::printf("json: %s\n", metrics::report_json().c_str());
}

} // namespace

int main() {
  std::printf("== Fig. 3 / Remark 1: 4-cycles in products of square-free "
              "factors ==\n\n");

  const auto p3 = gen::path_graph(3);
  const auto p4 = gen::path_graph(4);
  const auto tri = gen::triangle_with_tail(0);
  const auto star = gen::star_graph(3);

  // All four factors are square-free.
  example("P3 (x) P4 (raw)", kron::BipartiteKronecker::raw(p3, p4),
          graph::global_butterflies(p3), graph::global_butterflies(p4));
  example("K3 (x) P4 (Thm 1)",
          kron::BipartiteKronecker::assumption_i(tri, p4),
          graph::global_butterflies(tri), graph::global_butterflies(p4));
  example("(P3+I) (x) P4 (Thm 2)",
          kron::BipartiteKronecker::assumption_ii(p3, p4),
          graph::global_butterflies(p3), graph::global_butterflies(p4));
  example("(S3+I) (x) S3 (Thm 2)",
          kron::BipartiteKronecker::assumption_ii(star, star),
          graph::global_butterflies(star), graph::global_butterflies(star));

  // The Remark-1 contrast: products of disjoint-edge factors stay
  // square-free (the only escape hatch).
  const auto edges2 =
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2));
  example("2K2 (x) 2K2 (raw)", kron::BipartiteKronecker::raw(edges2, edges2),
          graph::global_butterflies(edges2),
          graph::global_butterflies(edges2));

  std::printf("\nRemark 1 reproduced: every product of connected square-free "
              "factors with\ndegree-2 vertices contains squares; only "
              "disjoint-edge factors avoid them.\nThis is why ground-truth "
              "k-wing/truss-style decompositions are hard to plant\n(§I, "
              "§III-B).\n");

  static_vs_dynamic();
  return 0;
}
