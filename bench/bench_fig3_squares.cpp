// Fig. 3 reproduction: 4-cycle placement in the Fig. 1 example products,
// illustrating Remark 1 — Kronecker products of square-free factors still
// contain 4-cycles wherever both factors supply a wedge (degree ≥ 2).
//
// For each example we print per-vertex ground-truth square counts grouped
// by the factor-vertex pair they come from, plus the Remark-1 checks:
// factor square counts are zero, product counts are not.

#include <cstdio>

#include "kronlab/gen/canonical.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/index_map.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

namespace {

void example(const char* name, const kron::BipartiteKronecker& kp,
             count_t squares_a, count_t squares_b) {
  const count_t total = kron::global_squares(kp);
  const auto s = kron::vertex_squares(kp).materialize();
  const auto c = kp.materialize();
  const auto direct = graph::global_butterflies(c);

  std::printf("%-22s factor squares: A=%lld B=%lld   product squares: %lld "
              "(direct recount: %lld)%s\n",
              name, static_cast<long long>(squares_a),
              static_cast<long long>(squares_b),
              static_cast<long long>(total),
              static_cast<long long>(direct),
              total == direct ? "" : "  << MISMATCH");

  // Distribution of per-vertex counts.
  count_t zero = 0, nonzero = 0, maxs = 0;
  for (index_t p = 0; p < s.size(); ++p) {
    if (s[p] == 0) {
      ++zero;
    } else {
      ++nonzero;
    }
    maxs = std::max(maxs, s[p]);
  }
  std::printf("%22s vertices with squares: %lld / %lld (max per-vertex %lld)\n",
              "", static_cast<long long>(nonzero),
              static_cast<long long>(s.size()),
              static_cast<long long>(maxs));
}

} // namespace

int main() {
  std::printf("== Fig. 3 / Remark 1: 4-cycles in products of square-free "
              "factors ==\n\n");

  const auto p3 = gen::path_graph(3);
  const auto p4 = gen::path_graph(4);
  const auto tri = gen::triangle_with_tail(0);
  const auto star = gen::star_graph(3);

  // All four factors are square-free.
  example("P3 (x) P4 (raw)", kron::BipartiteKronecker::raw(p3, p4),
          graph::global_butterflies(p3), graph::global_butterflies(p4));
  example("K3 (x) P4 (Thm 1)",
          kron::BipartiteKronecker::assumption_i(tri, p4),
          graph::global_butterflies(tri), graph::global_butterflies(p4));
  example("(P3+I) (x) P4 (Thm 2)",
          kron::BipartiteKronecker::assumption_ii(p3, p4),
          graph::global_butterflies(p3), graph::global_butterflies(p4));
  example("(S3+I) (x) S3 (Thm 2)",
          kron::BipartiteKronecker::assumption_ii(star, star),
          graph::global_butterflies(star), graph::global_butterflies(star));

  // The Remark-1 contrast: products of disjoint-edge factors stay
  // square-free (the only escape hatch).
  const auto edges2 =
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2));
  example("2K2 (x) 2K2 (raw)", kron::BipartiteKronecker::raw(edges2, edges2),
          graph::global_butterflies(edges2),
          graph::global_butterflies(edges2));

  std::printf("\nRemark 1 reproduced: every product of connected square-free "
              "factors with\ndegree-2 vertices contains squares; only "
              "disjoint-edge factors avoid them.\nThis is why ground-truth "
              "k-wing/truss-style decompositions are hard to plant\n(§I, "
              "§III-B).\n");
  return 0;
}
