// Fig. 3 reproduction: 4-cycle placement in the Fig. 1 example products,
// illustrating Remark 1 — Kronecker products of square-free factors still
// contain 4-cycles wherever both factors supply a wedge (degree ≥ 2).
//
// For each example we print per-vertex ground-truth square counts grouped
// by the factor-vertex pair they come from, plus the Remark-1 checks:
// factor square counts are zero, product counts are not.
//
// A second section is the counting-kernel shootout this bench anchors in
// the perf trajectory: the retained reference wedge-table counters vs the
// degree-ordered cache-blocked kernels (graph/blocked.hpp), on
// heavy-tailed preferential-attachment factors of increasing size, with
// exact-agreement checks and the per-kernel dispatch metrics dumped into
// BENCH_fig3_squares.json by the shared harness.

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/blocked.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/index_map.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

namespace {

void example(const char* name, const kron::BipartiteKronecker& kp,
             count_t squares_a, count_t squares_b) {
  const count_t total = kron::global_squares(kp);
  const auto s = kron::vertex_squares(kp).materialize();
  const auto c = kp.materialize();
  const auto direct = graph::global_butterflies(c);

  std::printf("%-22s factor squares: A=%lld B=%lld   product squares: %lld "
              "(direct recount: %lld)%s\n",
              name, static_cast<long long>(squares_a),
              static_cast<long long>(squares_b),
              static_cast<long long>(total),
              static_cast<long long>(direct),
              total == direct ? "" : "  << MISMATCH");

  // Distribution of per-vertex counts.
  count_t zero = 0, nonzero = 0, maxs = 0;
  for (index_t p = 0; p < s.size(); ++p) {
    if (s[p] == 0) {
      ++zero;
    } else {
      ++nonzero;
    }
    maxs = std::max(maxs, s[p]);
  }
  std::printf("%22s vertices with squares: %lld / %lld (max per-vertex %lld)\n",
              "", static_cast<long long>(nonzero),
              static_cast<long long>(s.size()),
              static_cast<long long>(maxs));
}

struct Instance {
  index_t nu, nw;
  count_t m;
};

/// Reference vs blocked kernels on one heavy-tailed factor; returns false
/// on any count disagreement.
bool shootout(bench::Harness& h, const Instance& inst, bool largest) {
  Rng rng(7);
  const auto a = gen::preferential_bipartite(inst.nu, inst.nw, inst.m, rng);
  const std::string tag = std::to_string(static_cast<long long>(a.nrows())) +
                          "v_" +
                          std::to_string(static_cast<long long>(a.nnz() / 2)) +
                          "e";
  std::printf("factor: %lld vertices, %lld edges, max degree %lld\n",
              static_cast<long long>(a.nrows()),
              static_cast<long long>(a.nnz() / 2),
              static_cast<long long>(graph::max_degree(a)));

  grb::Vector<count_t> v_ref, v_blk;
  grb::Csr<count_t> e_ref, e_blk;
  const auto t_vref = h.time_section(
      "vertex_reference_" + tag,
      [&] { v_ref = graph::vertex_butterflies_reference(a); });
  const auto t_vblk = h.time_section(
      "vertex_blocked_" + tag,
      [&] { v_blk = graph::vertex_butterflies_blocked(a); });
  const auto t_eref = h.time_section(
      "edge_reference_" + tag,
      [&] { e_ref = graph::edge_butterflies_reference(a); });
  const auto t_eblk = h.time_section(
      "edge_blocked_" + tag,
      [&] { e_blk = graph::edge_butterflies_blocked(a); });

  const bool agree = v_ref == v_blk && e_ref == e_blk;
  // Speedups compare minima over reps — the usual noise-robust estimator
  // on a shared box, where the mean absorbs scheduler interference.
  const double v_speedup = t_vref.min_seconds /
                           std::max(1e-9, t_vblk.min_seconds);
  const double e_speedup = t_eref.min_seconds /
                           std::max(1e-9, t_eblk.min_seconds);
  std::printf("  vertex: reference %8.2f ms   blocked %8.2f ms   %.2fx\n",
              t_vref.min_seconds * 1e3, t_vblk.min_seconds * 1e3,
              v_speedup);
  std::printf("  edge:   reference %8.2f ms   blocked %8.2f ms   %.2fx   "
              "%s\n",
              t_eref.min_seconds * 1e3, t_eblk.min_seconds * 1e3,
              e_speedup,
              agree ? "(counts bit-identical)" : "<< COUNT MISMATCH");
  if (largest) {
    const double combined =
        (t_vref.min_seconds + t_eref.min_seconds) /
        std::max(1e-9, t_vblk.min_seconds + t_eblk.min_seconds);
    h.counter("vertex_speedup_largest", v_speedup);
    h.counter("edge_speedup_largest", e_speedup);
    h.counter("speedup_largest", combined);
    h.counter("largest_vertices", static_cast<double>(a.nrows()));
    h.counter("largest_edges", static_cast<double>(a.nnz() / 2));
    h.label("largest_instance", tag);
  }
  return agree;
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("fig3_squares", bench::parse_args(argc, argv));

  std::printf("== Fig. 3 / Remark 1: 4-cycles in products of square-free "
              "factors ==\n\n");

  const auto p3 = gen::path_graph(3);
  const auto p4 = gen::path_graph(4);
  const auto tri = gen::triangle_with_tail(0);
  const auto star = gen::star_graph(3);

  // All four factors are square-free.
  example("P3 (x) P4 (raw)", kron::BipartiteKronecker::raw(p3, p4),
          graph::global_butterflies(p3), graph::global_butterflies(p4));
  example("K3 (x) P4 (Thm 1)",
          kron::BipartiteKronecker::assumption_i(tri, p4),
          graph::global_butterflies(tri), graph::global_butterflies(p4));
  example("(P3+I) (x) P4 (Thm 2)",
          kron::BipartiteKronecker::assumption_ii(p3, p4),
          graph::global_butterflies(p3), graph::global_butterflies(p4));
  example("(S3+I) (x) S3 (Thm 2)",
          kron::BipartiteKronecker::assumption_ii(star, star),
          graph::global_butterflies(star), graph::global_butterflies(star));

  // The Remark-1 contrast: products of disjoint-edge factors stay
  // square-free (the only escape hatch).
  const auto edges2 =
      gen::disjoint_union(gen::path_graph(2), gen::path_graph(2));
  example("2K2 (x) 2K2 (raw)", kron::BipartiteKronecker::raw(edges2, edges2),
          graph::global_butterflies(edges2),
          graph::global_butterflies(edges2));

  std::printf("\nRemark 1 reproduced: every product of connected square-free "
              "factors with\ndegree-2 vertices contains squares; only "
              "disjoint-edge factors avoid them.\nThis is why ground-truth "
              "k-wing/truss-style decompositions are hard to plant\n(§I, "
              "§III-B).\n");

  std::printf("\n== counting kernels: reference wedge table vs "
              "degree-ordered blocked ==\n\n");

  // Preferential attachment concentrates wedges on the early (hub)
  // vertices — the regime the degree ordering is built for.
  const std::vector<Instance> instances =
      h.quick() ? std::vector<Instance>{{2000, 3000, 24000},
                                        {10000, 15000, 150000}}
                : std::vector<Instance>{{4000, 6000, 48000},
                                        {20000, 30000, 300000},
                                        {60000, 90000, 1200000}};
  bool all_agree = true;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    all_agree &=
        shootout(h, instances[i], /*largest=*/i + 1 == instances.size());
    std::printf("\n");
  }
  h.counter("kernels_agree", all_agree ? 1.0 : 0.0);

  std::printf("per-kernel metrics:\n%s", metrics::report_text().c_str());
  return all_agree ? 0 : 1;
}
