// Kronecker-power scaling (Graph500 lineage): statistics and ground-truth
// cost of k-fold chains F^{⊗k}.
//
// The earlier nonstochastic work generates trillion-edge graphs as
// iterated powers; this bench shows kronlab's chain engine delivering
// exact global 4-cycle counts for products that grow geometrically while
// the evaluation cost stays at factor scale (times k).

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/kron/power.hpp"

using namespace kronlab;

int main(int argc, char** argv) {
  bench::Harness h("kron_power", bench::parse_args(argc, argv));
  std::printf("== k-fold Kronecker power scaling ==\n\n");

  Rng rng(73);
  const auto base = gen::random_nonbipartite_connected(8, 18, rng);
  const auto tail = gen::connected_random_bipartite(4, 4, 10, rng);

  std::printf("chain: base^(k-1) (x) bipartite-tail   (base: 8 vertices / "
              "18 edges)\n\n");
  std::printf("%3s %14s %16s %22s %12s\n", "k", "|V_C|", "|E_C|",
              "global 4-cycles", "truth time");
  const int max_k = h.quick() ? 4 : 6;
  int validated = 0;
  for (int k = 1; k <= max_k; ++k) {
    std::vector<graph::Adjacency> factors(static_cast<std::size_t>(k - 1),
                                          base);
    factors.push_back(tail);
    const auto ck = kron::ChainKronecker::of(std::move(factors));
    count_t squares = 0;
    const auto st = h.time_section(
        "global_squares_k" + std::to_string(k),
        [&] { squares = ck.global_squares(); });
    std::printf("%3d %14s %16s %22s %12s\n", k,
                format_count(ck.num_vertices()).c_str(),
                format_count(ck.num_edges()).c_str(),
                format_count(squares).c_str(),
                format_duration(st.mean_seconds).c_str());
    // Validate against direct counting while that is still feasible.
    if (ck.num_edges() <= (h.quick() ? 200'000 : 2'000'000)) {
      const auto direct =
          graph::global_butterflies(ck.materialize());
      if (direct != squares) {
        std::printf("MISMATCH at k=%d: direct=%lld\n", k,
                    static_cast<long long>(direct));
        return 1;
      }
      ++validated;
    }
    if (k == max_k) {
      h.counter("max_k", static_cast<double>(k));
      h.counter("largest_edges", static_cast<double>(ck.num_edges()));
      h.counter("largest_squares", static_cast<double>(squares));
    }
  }
  h.counter("levels_validated_directly", static_cast<double>(validated));

  std::printf("\n(rows with |E_C| <= 2M were re-counted directly and match "
              "exactly; beyond\nthat the product is never materialized — "
              "the evaluation cost column barely\nmoves while |E_C| grows "
              "18x per level.)\n");
  return 0;
}
