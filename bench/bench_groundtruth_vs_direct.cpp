// X1: the paper's complexity claim (§I, §IV).
//
// Direct local/global 4-cycle counting on a sparse graph costs
// O(Σ_j d_j²) ≈ O(|V||E|)-class work and needs the |E_C|-sized graph in
// memory; the Kronecker ground-truth formulas cost factor-space work —
// sublinear in |E_C| for the global count, linear only when the full
// per-vertex vector is materialized.
//
// We sweep product size (by growing the factors) and time:
//   * materialize + direct wedge counting         (the validator's cost)
//   * factored ground truth, global count          (sublinear path)
//   * factored ground truth, full vertex vector    (linear path)
// and print the speedup.  The shape to reproduce: ground-truth cost grows
// orders of magnitude slower than direct counting; the gap widens with
// scale (the paper's trillion-edge extrapolation rests on this).

#include <cstdio>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

int main(int argc, char** argv) {
  bench::Harness h("groundtruth_vs_direct", bench::parse_args(argc, argv));
  std::printf("== X1: ground-truth formulas vs direct counting ==\n\n");
  std::printf("%10s %12s | %12s %14s | %12s %12s | %9s\n", "|V_C|", "|E_C|",
              "direct(s)", "(count+build)", "truth-glob(s)",
              "truth-vec(s)", "speedup");

  Rng rng(7);
  const std::vector<index_t> scales =
      h.quick() ? std::vector<index_t>{4, 8, 16}
                : std::vector<index_t>{4, 8, 16, 32, 48};
  for (const index_t scale : scales) {
    // Grow BOTH factors: |E_C| = nnz(A)·nnz(B)/2 grows quadratically in
    // scale while factor-space work grows ~linearly — that separation is
    // the paper's complexity argument.
    const auto a =
        gen::random_nonbipartite_connected(4 * scale, 10 * scale, rng);
    const auto b = gen::connected_random_bipartite(5 * scale, 5 * scale,
                                                   20 * scale, rng);
    const auto kp = kron::BipartiteKronecker::raw(a, b);

    count_t direct_total = 0;
    Timer t_direct;
    {
      const auto c = kp.materialize();
      direct_total = graph::global_butterflies(c);
    }
    const double direct_s = t_direct.seconds();

    Timer t_glob;
    const count_t truth_total = kron::global_squares(kp);
    const double glob_s = t_glob.seconds();

    Timer t_vec;
    const auto s_vec = kron::vertex_squares(kp).materialize();
    const double vec_s = t_vec.seconds();

    if (direct_total != truth_total) {
      std::printf("MISMATCH at scale %lld: direct=%lld truth=%lld\n",
                  static_cast<long long>(scale),
                  static_cast<long long>(direct_total),
                  static_cast<long long>(truth_total));
      return 1;
    }
    const std::string tag = "scale" + std::to_string(scale);
    h.time_value("direct_" + tag, direct_s);
    h.time_value("truth_global_" + tag, glob_s);
    h.time_value("truth_vector_" + tag, vec_s);
    if (scale == scales.back()) {
      h.counter("speedup_largest", direct_s / std::max(1e-9, glob_s));
      h.counter("largest_edges", static_cast<double>(kp.num_edges()));
    }
    std::printf("%10s %12s | %12.4f %14s | %12.5f %12.5f | %8.1fx\n",
                format_count(kp.num_vertices()).c_str(),
                format_count(kp.num_edges()).c_str(), direct_s, "",
                glob_s, vec_s, direct_s / std::max(1e-9, glob_s));
    (void)s_vec;
  }

  std::printf("\nshape: direct cost grows with |E_C| (and its wedge count); "
              "ground-truth\nglobal cost grows only with factor size — the "
              "crossover favors formulas\nimmediately and the gap widens "
              "with scale, as §I claims.\n");
  return 0;
}
