// Wing-decomposition ablation: the paper's §I observation that bipartite
// truss-style ground truth cannot be planted through Kronecker factors.
//
// For non-bipartite graphs, earlier work plants triangle/truss ground
// truth by keeping factors triangle-free in chosen regions.  The 4-cycle
// analogue fails: Remark 1 shows products sprout butterflies wherever both
// factors have wedges.  We make that concrete by printing the wing (k-wing
// / bitruss) spectrum of products whose factors are entirely wing-0.

#include <algorithm>
#include <cstdio>
#include <map>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/graph/wing.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

namespace {

bench::Harness* harness = nullptr;
int rows_run = 0;
count_t max_wing_seen = 0;

void spectrum_row(const char* name, const graph::Adjacency& g) {
  ++rows_run;
  Timer t;
  const auto d = graph::wing_decomposition(g);
  harness->time_value("wing_row" + std::to_string(rows_run), t.seconds());
  max_wing_seen = std::max(max_wing_seen, d.max_wing);
  std::map<count_t, count_t> hist;
  for (index_t i = 0; i < g.nrows(); ++i) {
    const auto cols = d.wing.row_cols(i);
    const auto vals = d.wing.row_vals(i);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      if (i < cols[e]) ++hist[vals[e]];
    }
  }
  std::printf("%-26s edges=%5lld  max wing=%4lld  (%s)\n", name,
              static_cast<long long>(graph::num_edges(g)),
              static_cast<long long>(d.max_wing),
              format_duration(t.seconds()).c_str());
  std::printf("%26s wing histogram:", "");
  int shown = 0;
  for (const auto& [k, n] : hist) {
    if (shown++ == 8) {
      std::printf(" ...");
      break;
    }
    std::printf(" %lld:%lld", static_cast<long long>(k),
                static_cast<long long>(n));
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("wing", bench::parse_args(argc, argv));
  harness = &h;
  std::printf("== k-wing (bitruss) ground truth cannot be planted (§I) "
              "==\n\n");

  std::printf("wing-0 factors:\n");
  const auto ds = gen::double_star(3, 3);
  const auto star = gen::star_graph(4);
  spectrum_row("  double star (3,3)", ds);
  spectrum_row("  star S4", star);

  std::printf("\ntheir products are wing-positive everywhere dense:\n");
  spectrum_row("  dstar (x) dstar",
               kron::BipartiteKronecker::raw(ds, ds).materialize());
  spectrum_row(
      "  (S4+I) (x) S4",
      kron::BipartiteKronecker::assumption_ii(star, star).materialize());

  std::printf("\nfor contrast — a planted dense block DOES control wing "
              "mass in one graph:\n");
  Rng rng(17);
  gen::PlantedCommunity pc{.nu = 16,
                           .nw = 16,
                           .r = 6,
                           .t = 6,
                           .p_in = 0.9,
                           .p_out = 0.03};
  spectrum_row("  planted block (direct)",
               gen::planted_community_bipartite(pc, rng));

  h.counter("rows", static_cast<double>(rows_run));
  h.counter("max_wing_seen", static_cast<double>(max_wing_seen));

  std::printf("\nconclusion (matches §I): unlike triangles/trusses in the "
              "non-bipartite\nsetting, a zero-wing region of the factors "
              "does NOT give a zero-wing region\nof the product — Kronecker "
              "wing ground truth would have to be computed, not\nplanted.  "
              "kronlab ships the peeling decomposition so such computed "
              "baselines\ncan be validated on materializable scales.\n");
  return 0;
}
