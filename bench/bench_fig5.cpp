// Fig. 5 reproduction (§IV): vertex degree vs 4-cycle participation for the
// unicode-like factor A and the product C = (A + I_A) ⊗ A, on log-log axes.
//
// The bench prints the two series as degree-binned rows (degree, #vertices,
// min/mean/max 4-cycle count) — the exact data behind the paper's scatter
// plot.  The paper's qualitative shape: both series follow a power-law-ish
// upward trend, with the product series extending ~4 orders of magnitude
// further in both degree and count, plus wide vertical spread per degree.

#include <cmath>
#include <cstdio>
#include <map>

#include "harness/harness.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/gen/unicode_like.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"

using namespace kronlab;

namespace {

// Aggregate (degree, squares) points into ~4-per-decade geometric degree
// bins so the series is printable.
void print_series(const char* title, const grb::Vector<count_t>& deg,
                  const grb::Vector<count_t>& squares) {
  struct Acc {
    index_t n = 0;
    count_t min = 0, max = 0;
    double sum = 0;
  };
  std::map<int, Acc> bins;
  for (index_t v = 0; v < deg.size(); ++v) {
    if (deg[v] == 0) continue;
    const int bin = static_cast<int>(
        std::floor(4.0 * std::log10(static_cast<double>(deg[v]))));
    auto& b = bins[bin];
    if (b.n == 0) {
      b.min = b.max = squares[v];
    } else {
      b.min = std::min(b.min, squares[v]);
      b.max = std::max(b.max, squares[v]);
    }
    ++b.n;
    b.sum += static_cast<double>(squares[v]);
  }
  std::printf("\n-- %s --\n", title);
  std::printf("%12s %10s %14s %16s %14s\n", "degree~", "vertices",
              "min 4-cycles", "mean 4-cycles", "max 4-cycles");
  for (const auto& [bin, acc] : bins) {
    const double dlo = std::pow(10.0, bin / 4.0);
    std::printf("%12.0f %10lld %14lld %16.1f %14lld\n", dlo,
                static_cast<long long>(acc.n),
                static_cast<long long>(acc.min),
                acc.sum / static_cast<double>(acc.n),
                static_cast<long long>(acc.max));
  }
}

} // namespace

int main(int argc, char** argv) {
  bench::Harness h("fig5", bench::parse_args(argc, argv));
  std::printf("== Fig. 5: vertex degree vs 4-cycle participation ==\n");
  Timer total;

  const auto a = gen::unicode_like();
  const auto deg_a = graph::degrees(a);
  grb::Vector<count_t> sq_a;
  h.time_section("factor_vertex_butterflies",
                 [&] { sq_a = graph::vertex_butterflies(a); });
  print_series("factor A (unicode-like, direct count)", deg_a, sq_a);

  const auto kp = kron::BipartiteKronecker::raw(grb::add_identity(a), a);
  // Ground truth in factor space; materializing the *statistic* (vector of
  // |V_C| counts) is linear and cheap, the graph itself is never formed.
  const auto deg_c = kron::degrees(kp).materialize();
  grb::Vector<count_t> sq_c;
  h.time_section("product_vertex_squares_factored",
                 [&] { sq_c = kron::vertex_squares(kp).materialize(); });
  print_series("product C = (A+I)⊗A (ground-truth formulas)", deg_c, sq_c);

  // Shape checks the paper's plot conveys.
  count_t max_sq_a = 0, max_sq_c = 0;
  for (index_t i = 0; i < sq_a.size(); ++i)
    max_sq_a = std::max(max_sq_a, sq_a[i]);
  for (index_t i = 0; i < sq_c.size(); ++i)
    max_sq_c = std::max(max_sq_c, sq_c[i]);
  std::printf("\nshape summary:\n");
  std::printf("  max vertex 4-cycles: factor %s, product %s (x%.0f)\n",
              format_count(max_sq_a).c_str(), format_count(max_sq_c).c_str(),
              static_cast<double>(max_sq_c) /
                  std::max<count_t>(1, max_sq_a));
  std::printf("  product series spans %.1f decades of degree\n",
              std::log10(static_cast<double>(graph::max_degree(
                  kp.left()) * graph::max_degree(kp.right()))));
  h.counter("max_vertex_squares_factor", static_cast<double>(max_sq_a));
  h.counter("max_vertex_squares_product", static_cast<double>(max_sq_c));
  std::printf("\ncompleted in %s\n", format_duration(total.seconds()).c_str());
  return 0;
}
