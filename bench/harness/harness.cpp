#include "harness/harness.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "kronlab/obs/stats.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab::bench {

namespace {

[[noreturn]] void usage_error(const char* arg) {
  std::fprintf(stderr,
               "unknown bench argument '%s'\n"
               "usage: bench_* [--quick] [--reps N] [--json PATH] "
               "[--no-json] [--trace PATH]\n",
               arg);
  std::exit(2);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.9g keeps full double precision while staying JSON-parsable (no
/// trailing garbage, never NaN/Inf — callers must record finite values).
std::string num(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

} // namespace

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(arg, "--no-json") == 0) {
      opt.no_json = true;
    } else if (std::strcmp(arg, "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
      if (opt.reps <= 0) usage_error(arg);
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else {
      usage_error(arg);
    }
  }
  return opt;
}

Harness::Harness(std::string name, Options opt)
    : name_(std::move(name)), opt_(std::move(opt)) {
  // Start every bench from a clean telemetry registry so the folded
  // counters/percentiles describe this run, not process history.
  obs::stats_reset();
  if (!opt_.trace_path.empty()) {
    trace::set_enabled(true);
    trace::set_thread_name("main");
    const auto& p = opt_.trace_path;
    const bool json_only =
        p.size() > 5 && p.compare(p.size() - 5, 5, ".json") == 0;
    if (!json_only) {
      trace_dir_ = p;
      std::error_code ec;
      std::filesystem::create_directories(trace_dir_, ec);
      if (ec) {
        std::fprintf(stderr, "bench harness: cannot create trace dir %s\n",
                     trace_dir_.c_str());
        std::exit(3);
      }
    }
  }
}

Harness::~Harness() {
  // Dump even if the bench is mid-exit via an uncaught error path?  No:
  // a partially run bench must not masquerade as a result, so only the
  // normal return path (stack unwinding without exception) writes.
  if (std::uncaught_exceptions() == 0) write();
}

int Harness::reps_for(int default_reps) const {
  if (opt_.reps > 0) return opt_.reps;
  return opt_.quick ? 1 : default_reps;
}

TimingStats Harness::record_samples(const std::string& section,
                                    const std::vector<double>& samples) {
  TimingStats st;
  st.reps = static_cast<int>(samples.size());
  if (samples.empty()) return st;
  st.min_seconds = samples.front();
  st.max_seconds = samples.front();
  double sum = 0.0;
  for (const double s : samples) {
    sum += s;
    st.min_seconds = std::min(st.min_seconds, s);
    st.max_seconds = std::max(st.max_seconds, s);
  }
  st.mean_seconds = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (const double s : samples) {
    var += (s - st.mean_seconds) * (s - st.mean_seconds);
  }
  st.stddev_seconds =
      std::sqrt(var / static_cast<double>(samples.size()));
  timings_.emplace_back(section, st);
  return st;
}

TimingStats Harness::time_value(const std::string& section, double seconds) {
  return record_samples(section, {seconds});
}

void Harness::fold_registry(bool into_last) {
  const auto snap = metrics::snapshot();
  const auto counters = metrics::counters_snapshot();
  if (snap.empty() && counters.empty()) return;
  metrics::reset();
  for (const auto& [kernel, stats] : snap) {
    metrics::merge(total_[kernel], stats);
    if (into_last) metrics::merge(last_[kernel], stats);
  }
  for (const auto& [name, value] : counters) {
    total_counters_[name] += value;
    if (into_last) last_counters_[name] += value;
  }
}

void Harness::fold_obs_stats() {
  const auto snap = obs::stats_snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;
    // emplace: a bench's explicit counter() under the same name wins.
    counters_.emplace(name, static_cast<double>(value));
  }
  for (const auto& [name, hist] : snap.histograms) {
    if (hist.count == 0) continue;
    counters_.emplace(name + ".count", static_cast<double>(hist.count));
    counters_.emplace(name + ".p50_ms",
                      static_cast<double>(hist.quantile(0.5)) / 1e6);
    counters_.emplace(name + ".p99_ms",
                      static_cast<double>(hist.quantile(0.99)) / 1e6);
  }
  if (opt_.trace_path.empty()) return;
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;
    trace::counter("stats", trace::intern(name),
                   static_cast<double>(value));
  }
  for (const auto& [name, hist] : snap.histograms) {
    if (hist.count == 0) continue;
    trace::counter("stats", trace::intern(name + ".p50_ms"),
                   static_cast<double>(hist.quantile(0.5)) / 1e6);
    trace::counter("stats", trace::intern(name + ".p99_ms"),
                   static_cast<double>(hist.quantile(0.99)) / 1e6);
  }
}

void Harness::counter(const std::string& name, double value) {
  counters_[name] = value;
}

void Harness::label(const std::string& name, std::string value) {
  labels_[name] = std::move(value);
}

std::string Harness::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"kronlab-bench-v1\",\n";
  out += "  \"name\": \"" + json_escape(name_) + "\",\n";
  out += std::string("  \"quick\": ") + (opt_.quick ? "true" : "false") +
         ",\n";
  out += "  \"wall_seconds\": " + num(wall_.seconds()) + ",\n";
  out += "  \"peak_rss_bytes\": " + num(peak_rss_bytes()) + ",\n";

  out += "  \"timings\": [";
  for (std::size_t i = 0; i < timings_.size(); ++i) {
    const auto& [section, st] = timings_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"section\": \"" + json_escape(section) + "\"";
    out += ", \"reps\": " + std::to_string(st.reps);
    out += ", \"mean_seconds\": " + num(st.mean_seconds);
    out += ", \"min_seconds\": " + num(st.min_seconds);
    out += ", \"max_seconds\": " + num(st.max_seconds);
    out += ", \"stddev_seconds\": " + num(st.stddev_seconds) + "}";
  }
  out += timings_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + num(value);
    first = false;
  }
  out += counters_.empty() ? "},\n" : "\n  },\n";

  out += "  \"labels\": {";
  first = true;
  for (const auto& [name, value] : labels_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": \"" + json_escape(value) +
           "\"";
    first = false;
  }
  out += labels_.empty() ? "},\n" : "\n  },\n";

  out += "  \"parallel_metrics\": " +
         metrics::report_json(last_, last_counters_) + ",\n";
  out += "  \"parallel_metrics_total\": " +
         metrics::report_json(total_, total_counters_) + "\n";
  out += "}\n";
  return out;
}

void Harness::export_trace() {
  if (opt_.trace_path.empty()) return;
  // Metrics ride along as counter tracks so kernel totals line up with
  // the spans that produced them on one timeline.
  for (const auto& [kernel, stats] : total_) {
    trace::counter("metrics", trace::intern(kernel + ".wall_seconds"),
                   stats.wall_seconds);
    trace::counter("metrics", trace::intern(kernel + ".busy_seconds"),
                   stats.busy_seconds);
    trace::counter("metrics", trace::intern(kernel + ".calls"),
                   static_cast<double>(stats.calls));
  }
  for (const auto& [name, value] : total_counters_) {
    trace::counter("metrics", trace::intern(name), value);
  }
  const auto events = trace::snapshot();
  try {
    if (trace_dir_.empty()) {
      trace::write_chrome_file(opt_.trace_path, events);
      std::fprintf(stderr, "[bench harness] wrote %s\n",
                   opt_.trace_path.c_str());
    } else {
      const std::string bin = trace_dir_ + "/trace.bin";
      const std::string json = trace_dir_ + "/trace.json";
      trace::write_binary_file(bin, events);
      trace::write_chrome_file(json, events);
      std::fprintf(stderr, "[bench harness] wrote %s and %s\n", bin.c_str(),
                   json.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench harness: trace export failed: %s\n",
                 e.what());
    std::exit(3);
  }
  if (const auto dropped = trace::dropped_events()) {
    std::fprintf(stderr,
                 "[bench harness] trace ring overflow: %llu events lost "
                 "(raise KRONLAB_TRACE_BUFFER)\n",
                 static_cast<unsigned long long>(dropped));
  }
}

void Harness::write() {
  if (written_ || opt_.no_json) return;
  written_ = true;
  // Catch kernels recorded after the final section; benches that only
  // use time_value() get their whole run reported as the "last" snapshot.
  fold_registry(/*into_last=*/last_.empty());
  fold_obs_stats();
  export_trace();
  const std::string path =
      opt_.json_path.empty() ? "BENCH_" + name_ + ".json" : opt_.json_path;
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "bench harness: cannot write %s\n", path.c_str());
    std::exit(3);
  }
  f << to_json();
  f.close();
  std::fprintf(stderr, "[bench harness] wrote %s\n", path.c_str());
}

double peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(ru.ru_maxrss) * 1024.0;
}

} // namespace kronlab::bench
