// bench/harness/harness.hpp
//
// Shared measurement harness for every bench_* target.
//
// Each bench constructs one Harness, times its phases through it, records
// scalar counters and text labels, and on destruction the harness writes a
// schema-stable machine-readable dump `BENCH_<name>.json` (schema
// "kronlab-bench-v1", validated in CI by scripts/check_bench_json.py).
// The JSON carries:
//
//   * per-section timing statistics (repetitions, mean/min/max/stddev),
//   * scalar counters and string labels the bench chose to record,
//   * two per-kernel parallel/metrics snapshots: "parallel_metrics" holds
//     each section's final repetition only (warm-cache numbers, no
//     cross-rep skew) and "parallel_metrics_total" sums every repetition
//     (the harness opens a metrics::ScopedRecording at construction and
//     folds the registry after each rep),
//   * peak RSS and total wall time.
//
// Command line (parse_args): every bench accepts
//   --quick        sub-second smoke sizes (CI's bench-smoke job)
//   --reps N       override per-section repetition counts
//   --json PATH    where to write the dump (default BENCH_<name>.json in
//                  the working directory)
//   --no-json      skip the dump (interactive runs that only want stdout)
//   --trace PATH   enable obs/trace recording and export the timeline on
//                  exit.  PATH ending in ".json" writes Chrome trace JSON
//                  only; anything else is treated as a directory that
//                  receives trace.bin + trace.json (and, for distributed
//                  benches, per-rank rank_<r>.trace files).

#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "kronlab/common/timer.hpp"
#include "kronlab/parallel/metrics.hpp"

namespace kronlab::bench {

struct Options {
  bool quick = false;
  int reps = 0; ///< 0 = keep each section's default
  std::string json_path; ///< empty = BENCH_<name>.json
  bool no_json = false;
  std::string trace_path; ///< empty = tracing off (see --trace above)
};

/// Parse the common bench flags; exits with a usage message on unknown
/// arguments (typos in CI must fail loudly, not silently run the default).
Options parse_args(int argc, char** argv);

/// Timing statistics over `reps` repetitions of one section.
struct TimingStats {
  int reps = 0;
  double mean_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double stddev_seconds = 0.0;
};

class Harness {
public:
  /// `name` is the suffix of the emitting target: bench_fig5 → "fig5".
  Harness(std::string name, Options opt);

  /// Writes the JSON dump unless --no-json or write() already ran.
  ~Harness();

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  [[nodiscard]] bool quick() const { return opt_.quick; }
  [[nodiscard]] const Options& options() const { return opt_; }

  /// Repetitions a section should run: --reps if given, else the
  /// section's default (quick mode clamps to 1 so smoke runs stay fast).
  [[nodiscard]] int reps_for(int default_reps) const;

  /// Run `fn` reps_for(default_reps) times, record and return the stats.
  /// The metrics registry is folded away after every repetition so one
  /// rep's kernel stats never bleed into the next: the final rep lands in
  /// both the "last" and "total" snapshots, earlier reps in "total" only.
  template <typename F>
  TimingStats time_section(const std::string& section, F&& fn,
                           int default_reps = 3) {
    const int reps = reps_for(default_reps);
    fold_registry(false); // out-of-section kernels count toward the total
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      Timer t;
      fn();
      samples.push_back(t.seconds());
      fold_registry(/*into_last=*/r == reps - 1);
    }
    return record_samples(section, samples);
  }

  /// Record one externally measured duration under `section`.
  TimingStats time_value(const std::string& section, double seconds);

  /// Record a scalar result (count, speedup, error, …).
  void counter(const std::string& name, double value);

  /// Record a free-text result (instance name, mode, …).
  void label(const std::string& name, std::string value);

  /// Write BENCH_<name>.json now (idempotent; the destructor then skips).
  /// When --trace was given, also folds the metrics totals into the trace
  /// as counter events and exports the timeline (see the --trace doc).
  void write();

  /// Directory receiving trace files, or "" when --trace is off or names
  /// a single .json file.  Distributed benches drop per-rank binaries
  /// here before write() runs.
  [[nodiscard]] const std::string& trace_dir() const { return trace_dir_; }

private:
  TimingStats record_samples(const std::string& section,
                             const std::vector<double>& samples);
  /// Snapshot + reset the metrics registry, merging into the run total
  /// and, when `into_last`, into the reported per-section-final snapshot.
  void fold_registry(bool into_last);
  /// Fold the obs/stats registry (reset at harness construction) into
  /// the exported counters: non-zero counters under their registry name,
  /// histograms as <name>.count/.p50_ms/.p99_ms.  With --trace, the same
  /// values ride along as cat "stats" counter events so kronlab_trace
  /// summary can cross-reference them.
  void fold_obs_stats();
  void export_trace();
  [[nodiscard]] std::string to_json() const;

  std::string name_;
  Options opt_;
  Timer wall_;
  metrics::ScopedRecording recording_;
  std::vector<std::pair<std::string, TimingStats>> timings_;
  std::map<std::string, double> counters_;
  std::map<std::string, std::string> labels_;
  std::map<std::string, metrics::KernelStats> last_;  ///< final reps only
  std::map<std::string, metrics::KernelStats> total_; ///< every rep
  /// Named metrics counters (metrics::counter_add — e.g. the dist
  /// aggregator's agg_* flush counters), folded like the kernel registry.
  std::map<std::string, double> last_counters_;
  std::map<std::string, double> total_counters_;
  std::string trace_dir_;
  bool written_ = false;
};

/// Peak resident set size of this process so far, in bytes (getrusage).
[[nodiscard]] double peak_rss_bytes();

} // namespace kronlab::bench
