// kronlab/obs/stats.cpp — see stats.hpp for the contract.

#include "kronlab/obs/stats.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "kronlab/common/registry.hpp"
#include "kronlab/common/sync.hpp"

namespace kronlab::obs {
namespace {

bool env_stats_enabled() {
  const char* v = std::getenv(env::kStats);
  if (v == nullptr) return true; // default on
  const std::string_view s(v);
  return !(s == "0" || s == "off" || s == "false" || s.empty());
}

std::atomic<bool> g_enabled{env_stats_enabled()};

} // namespace

bool stats_enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_stats_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

struct RegistryImpl {
  struct HistEntry {
    std::unique_ptr<Histogram> hist;
    std::vector<std::unique_ptr<Histogram::Shard>> shards;
    std::string name;
  };

  Mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      GUARDED_BY(mu);
  std::map<std::string, std::size_t, std::less<>> hist_ids GUARDED_BY(mu);
  std::vector<HistEntry> hists GUARDED_BY(mu); ///< indexed by Histogram::id_

  static RegistryImpl& get() {
    // Deliberately leaked (the trace-registry idiom): metric objects and
    // shards must stay valid through thread teardown at process exit.
    // kronlab-lint: allow(naked-new)
    static RegistryImpl* r = new RegistryImpl;
    return *r;
  }
};

// Per-thread shard cache, indexed by Histogram::id_.  The shards
// themselves are owned by the (leaked) registry, so a thread dying only
// discards its pointers, never the data.
namespace {
thread_local std::vector<Histogram::Shard*> tl_shards;
} // namespace

Counter& counter(std::string_view name) {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    it = r.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name) {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  auto it = r.hist_ids.find(name);
  if (it == r.hist_ids.end()) {
    const std::size_t id = r.hists.size();
    RegistryImpl::HistEntry e;
    // Histogram's ctor is private (a free-standing instance would alias
    // another histogram's shard slot), so make_unique can't reach it.
    // kronlab-lint: allow(naked-new)
    e.hist = std::unique_ptr<Histogram>(new Histogram);
    e.hist->id_ = id;
    e.name = std::string(name);
    r.hists.push_back(std::move(e));
    it = r.hist_ids.emplace(std::string(name), id).first;
  }
  return *r.hists[it->second].hist;
}

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_of(std::uint64_t v) {
  constexpr std::uint64_t kSubMask = (1u << kSubBits) - 1;
  if (v < (1u << kSubBits)) return static_cast<std::size_t>(v);
  const int h = 63 - std::countl_zero(v);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(h - kSubBits + 1) << kSubBits) |
      ((v >> (h - kSubBits)) & kSubMask));
}

std::uint64_t Histogram::bucket_mid(std::size_t bucket) {
  if (bucket < (1u << kSubBits)) return bucket;
  const std::uint64_t group = bucket >> kSubBits; // >= 1
  const std::uint64_t sub = bucket & ((1u << kSubBits) - 1);
  const int h = static_cast<int>(group) + kSubBits - 1;
  const std::uint64_t lo = (1ull << h) | (sub << (h - kSubBits));
  return lo + (1ull << (h - kSubBits)) / 2;
}

Histogram::Shard& Histogram::shard() {
  if (id_ < tl_shards.size() && tl_shards[id_] != nullptr) {
    return *tl_shards[id_];
  }
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  r.hists[id_].shards.push_back(std::move(shard));
  if (tl_shards.size() <= id_) tl_shards.resize(id_ + 1, nullptr);
  tl_shards[id_] = raw;
  return *raw;
}

void Histogram::record(std::uint64_t value) {
  if (!stats_enabled()) return;
  Shard& s = shard();
  // Single writer per shard: plain load+store relaxed beats fetch_add
  // (no lock prefix) and stays race-free for concurrent snapshots.
  std::atomic<std::uint64_t>& b = s.buckets[bucket_of(value)];
  b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  s.count.store(s.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  s.sum.store(s.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  if (value > s.max.load(std::memory_order_relaxed)) {
    s.max.store(value, std::memory_order_relaxed);
  }
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q >= 1.0) return max;
  if (q < 0.0) q = 0.0;
  // 0-based nearest rank: the sample index floor(q * count).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum > rank) {
      // Midpoint of the bucket the rank falls in, clamped by the exact
      // max so the top bucket never over-reports.
      return std::min(Histogram::bucket_mid(i), max);
    }
  }
  return max;
}

// ---------------------------------------------------------------------------
// Snapshot / reset

StatsSnapshot stats_snapshot() {
  RegistryImpl& r = RegistryImpl::get();
  StatsSnapshot out;
  MutexLock lock(r.mu);
  for (const auto& [name, c] : r.counters) out.counters[name] = c->value();
  for (const auto& [name, g] : r.gauges) out.gauges[name] = g->value();
  for (const auto& entry : r.hists) {
    HistogramSnapshot hs;
    hs.buckets.assign(Histogram::kBuckets, 0);
    for (const auto& shard : entry.shards) {
      hs.count += shard->count.load(std::memory_order_relaxed);
      hs.sum += shard->sum.load(std::memory_order_relaxed);
      hs.max = std::max(hs.max, shard->max.load(std::memory_order_relaxed));
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        hs.buckets[i] += shard->buckets[i].load(std::memory_order_relaxed);
      }
    }
    out.histograms.emplace(entry.name, std::move(hs));
  }
  return out;
}

void stats_reset() {
  RegistryImpl& r = RegistryImpl::get();
  MutexLock lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& entry : r.hists) {
    for (auto& shard : entry.shards) {
      shard->count.store(0, std::memory_order_relaxed);
      shard->sum.store(0, std::memory_order_relaxed);
      shard->max.store(0, std::memory_order_relaxed);
      for (auto& b : shard->buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Renderers

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

double ns_to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// Prometheus metric name: kronlab_ prefix, [^a-zA-Z0-9_] -> '_'.
std::string prom_name(std::string_view name) {
  std::string out = "kronlab_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

} // namespace

std::string stats_json(const StatsSnapshot& s) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":{\"count\":" + std::to_string(h.count);
    out += ",\"mean_us\":";
    append_double(out, ns_to_us(static_cast<std::uint64_t>(h.mean())));
    out += ",\"p50_us\":";
    append_double(out, ns_to_us(h.quantile(0.50)));
    out += ",\"p90_us\":";
    append_double(out, ns_to_us(h.quantile(0.90)));
    out += ",\"p99_us\":";
    append_double(out, ns_to_us(h.quantile(0.99)));
    out += ",\"max_us\":";
    append_double(out, ns_to_us(h.max));
    out += '}';
  }
  out += "}}";
  return out;
}

std::string stats_prometheus(const StatsSnapshot& s) {
  std::string out;
  for (const auto& [name, v] : s.counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : s.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const std::string p = prom_name(name) + "_seconds";
    out += "# TYPE " + p + " summary\n";
    for (const double q : {0.50, 0.90, 0.99}) {
      char line[128];
      std::snprintf(line, sizeof line, "%s{quantile=\"%.2f\"} %.9f\n",
                    p.c_str(), q, static_cast<double>(h.quantile(q)) / 1e9);
      out += line;
    }
    char sbuf[64];
    std::snprintf(sbuf, sizeof sbuf, "%.9f",
                  static_cast<double>(h.sum) / 1e9);
    out += p + "_sum " + sbuf + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

} // namespace kronlab::obs
