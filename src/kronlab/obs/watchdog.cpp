// kronlab/obs/watchdog.cpp — see watchdog.hpp for the contract.

#include "kronlab/obs/watchdog.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "kronlab/common/sync.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/obs/log.hpp"
#include "kronlab/obs/stats.hpp"

namespace kronlab::obs {
namespace {

constexpr std::size_t kSlots = 128;

/// One entry in the fixed active-operation table.  start_ns == 0 means
/// free; `what` is published before start_ns (release) so a sampler that
/// sees a nonzero start also sees the label.  A slot recycled between a
/// sampler's two reads only makes the op look *younger* — harmless.
struct Slot {
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<const char*> what{nullptr};
  /// Elapsed-at-last-warning, watchdog bookkeeping for exponential
  /// re-warn spacing.  Reset on release.
  std::atomic<std::uint64_t> warned_ns{0};
};

Slot g_slots[kSlots];

std::uint64_t guard_now_ns() {
  // timer::now_ns() is 0 at the process epoch; 0 is the free sentinel.
  return std::max<std::uint64_t>(1, timer::now_ns());
}

struct WatchdogState {
  Mutex mu;
  std::thread thread GUARDED_BY(mu);
  bool running GUARDED_BY(mu) = false;
  bool stop_requested GUARDED_BY(mu) = false;
  WatchdogOptions options GUARDED_BY(mu);
  CondVar cv;

  static WatchdogState& get() {
    // Leaked (trace-registry idiom): guards may outlive static dtors.
    // kronlab-lint: allow(naked-new)
    static WatchdogState* s = new WatchdogState;
    return *s;
  }
};

void watchdog_scan(const WatchdogOptions& options) {
  const std::uint64_t now = guard_now_ns();
  const std::uint64_t deadline_ns =
      static_cast<std::uint64_t>(options.deadline.count()) * 1000000ull;
  for (Slot& slot : g_slots) {
    const std::uint64_t start = slot.start_ns.load(std::memory_order_acquire);
    if (start == 0 || now <= start) continue;
    const std::uint64_t elapsed = now - start;
    if (elapsed < deadline_ns) continue;
    // Warn at deadline, then re-warn each time elapsed doubles.
    std::uint64_t warned = slot.warned_ns.load(std::memory_order_relaxed);
    if (warned != 0 && elapsed < warned * 2) continue;
    if (!slot.warned_ns.compare_exchange_strong(warned, elapsed,
                                                std::memory_order_relaxed)) {
      continue; // raced with release/reacquire — skip this round
    }
    const char* what = slot.what.load(std::memory_order_acquire);
    counter("watchdog/stalls").add();
    log(LogLevel::warn, "watchdog", "stall")
        .field("op", what != nullptr ? what : "?")
        .field("elapsed_ms", elapsed / 1000000)
        .field("deadline_ms",
               static_cast<std::int64_t>(options.deadline.count()));
  }
}

void watchdog_loop() {
  WatchdogState& s = WatchdogState::get();
  for (;;) {
    WatchdogOptions options;
    {
      MutexLock lock(s.mu);
      if (s.stop_requested) return;
      options = s.options;
      s.cv.wait_until(s.mu, std::chrono::steady_clock::now() + options.poll);
      if (s.stop_requested) return;
    }
    watchdog_scan(options);
  }
}

} // namespace

StallGuard::StallGuard(const char* what) : slot_(kSlots) {
  const std::uint64_t now = guard_now_ns();
  for (std::size_t i = 0; i < kSlots; ++i) {
    std::uint64_t expected = 0;
    if (g_slots[i].start_ns.compare_exchange_strong(
            expected, now, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      // Label published after winning the slot; a sampler racing the
      // store sees nullptr and reports "?" for one poll at most.
      g_slots[i].what.store(what, std::memory_order_release);
      slot_ = i;
      return;
    }
  }
  counter("watchdog/slots_exhausted").add();
}

StallGuard::~StallGuard() {
  if (slot_ >= kSlots) return;
  g_slots[slot_].warned_ns.store(0, std::memory_order_relaxed);
  g_slots[slot_].what.store(nullptr, std::memory_order_relaxed);
  g_slots[slot_].start_ns.store(0, std::memory_order_release);
}

std::vector<ActiveOp> active_ops_older_than(std::uint64_t min_elapsed_ns) {
  const std::uint64_t now = guard_now_ns();
  std::vector<ActiveOp> out;
  for (Slot& slot : g_slots) {
    const std::uint64_t start = slot.start_ns.load(std::memory_order_acquire);
    if (start == 0 || now <= start) continue;
    const std::uint64_t elapsed = now - start;
    if (elapsed < min_elapsed_ns) continue;
    const char* what = slot.what.load(std::memory_order_acquire);
    out.push_back({what != nullptr ? what : "?", elapsed});
  }
  return out;
}

void watchdog_start(const WatchdogOptions& options) {
  WatchdogState& s = WatchdogState::get();
  MutexLock lock(s.mu);
  if (s.running) return;
  s.options = options;
  s.stop_requested = false;
  s.thread = std::thread(watchdog_loop);
  s.running = true;
  log(LogLevel::debug, "watchdog", "start")
      .field("poll_ms", static_cast<std::int64_t>(options.poll.count()))
      .field("deadline_ms",
             static_cast<std::int64_t>(options.deadline.count()));
}

void watchdog_stop() {
  WatchdogState& s = WatchdogState::get();
  std::thread joinable;
  {
    MutexLock lock(s.mu);
    if (!s.running) return;
    s.stop_requested = true;
    s.cv.notify_all();
    joinable = std::move(s.thread);
    s.running = false;
  }
  joinable.join();
}

bool watchdog_running() {
  WatchdogState& s = WatchdogState::get();
  MutexLock lock(s.mu);
  return s.running;
}

} // namespace kronlab::obs
