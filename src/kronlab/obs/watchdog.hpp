// kronlab/obs/watchdog.hpp
//
// Stall detection for long-running operations.  Instrumented code brackets
// each potentially-stalling operation (an executor request, a ghost-row
// exchange epoch, a durable segment commit) with a StallGuard; a single
// watchdog thread samples the active-operation table and emits a
// structured warning —
//
//   level=warn subsys=watchdog event=stall op=serve/request
//       elapsed_ms=312 deadline_ms=100  (one line)
//
// — for every operation older than the configured deadline, and bumps the
// "watchdog/stalls" registry counter.  Re-warns with exponential spacing
// (deadline, 2x, 4x, ...) so a hung operation stays visible without
// flooding the log.
//
// StallGuard is always armed (no env gate): acquiring a slot is one CAS
// into a fixed lock-free table and releasing is one store, negligible
// next to the macro-operations it brackets.  The watchdog *thread* only
// runs between watchdog_start() and watchdog_stop() — the daemon starts
// one; library code never does.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kronlab::obs {

/// RAII bracket around one potentially-stalling operation.  `what` must
/// outlive the guard (string literal by convention).  If the fixed table
/// is full the guard is inert (counted in "watchdog/slots_exhausted").
class StallGuard {
public:
  explicit StallGuard(const char* what);
  ~StallGuard();
  StallGuard(const StallGuard&) = delete;
  StallGuard& operator=(const StallGuard&) = delete;

private:
  std::size_t slot_;
};

/// One in-flight operation, as sampled from the table.
struct ActiveOp {
  const char* what;
  std::uint64_t elapsed_ns;
};

/// All operations currently in flight for at least `min_elapsed_ns`
/// (pass 0 for everything).  Used by the watchdog thread and by tests.
[[nodiscard]] std::vector<ActiveOp>
active_ops_older_than(std::uint64_t min_elapsed_ns);

struct WatchdogOptions {
  /// Sampling interval.
  std::chrono::milliseconds poll{50};
  /// An operation in flight longer than this is a stall.
  std::chrono::milliseconds deadline{1000};
};

/// Start the watchdog thread (no-op if already running).
void watchdog_start(const WatchdogOptions& options);

/// Stop and join the watchdog thread (no-op if not running).
void watchdog_stop();

[[nodiscard]] bool watchdog_running();

} // namespace kronlab::obs
