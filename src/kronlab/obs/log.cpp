// kronlab/obs/log.cpp — see log.hpp for the contract.

#include "kronlab/obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "kronlab/common/registry.hpp"
#include "kronlab/common/sync.hpp"

namespace kronlab::obs {
namespace {

LogLevel env_log_level() {
  const char* v = std::getenv(env::kLog);
  LogLevel lvl = LogLevel::info;
  if (v != nullptr) (void)parse_log_level(v, lvl);
  return lvl;
}

std::atomic<int> g_level{static_cast<int>(env_log_level())};

struct Writer {
  Mutex mu;
  std::function<void(std::string_view)> sink GUARDED_BY(mu);

  static Writer& get() {
    // Leaked so late-exiting threads can still log during teardown.
    // kronlab-lint: allow(naked-new)
    static Writer* w = new Writer;
    return *w;
  }

  void emit(std::string_view line) {
    MutexLock lock(mu);
    if (sink) {
      sink(line);
      return;
    }
    // Default sink: one whole line to stderr.  The single fwrite keeps
    // the line atomic even if something else writes to fd 2.
    // kronlab-lint: allow(obs-log)
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  }
};

/// RFC3339 UTC timestamp with millisecond precision.
void append_timestamp(std::string& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  out += buf;
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

void append_value(std::string& out, std::string_view v) {
  if (!needs_quoting(v)) {
    out += v;
    return;
  }
  out += '"';
  for (char c : v) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    default: out += c;
    }
  }
  out += '"';
}

} // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool parse_log_level(std::string_view text, LogLevel& out) {
  if (text == "debug") out = LogLevel::debug;
  else if (text == "info") out = LogLevel::info;
  else if (text == "warn") out = LogLevel::warn;
  else if (text == "error") out = LogLevel::error;
  else if (text == "off") out = LogLevel::off;
  else return false;
  return true;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
  case LogLevel::debug: return "debug";
  case LogLevel::info: return "info";
  case LogLevel::warn: return "warn";
  case LogLevel::error: return "error";
  case LogLevel::off: return "off";
  }
  return "?";
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::off;
}

void set_log_sink(std::function<void(std::string_view)> sink) {
  Writer& w = Writer::get();
  MutexLock lock(w.mu);
  w.sink = std::move(sink);
}

LogEvent::LogEvent(LogLevel level, const char* subsys, const char* event)
    : active_(log_enabled(level)) {
  if (!active_) return;
  line_.reserve(128);
  line_ += "ts=";
  append_timestamp(line_);
  line_ += " level=";
  line_ += log_level_name(level);
  line_ += " subsys=";
  append_value(line_, subsys);
  line_ += " event=";
  append_value(line_, event);
}

LogEvent::~LogEvent() {
  if (active_) Writer::get().emit(line_);
}

LogEvent& LogEvent::field(const char* key, std::string_view value) {
  if (!active_) return *this;
  line_ += ' ';
  line_ += key;
  line_ += '=';
  append_value(line_, value);
  return *this;
}

LogEvent& LogEvent::field(const char* key, std::int64_t value) {
  if (!active_) return *this;
  return field(key, std::string_view(std::to_string(value)));
}

LogEvent& LogEvent::field(const char* key, std::uint64_t value) {
  if (!active_) return *this;
  return field(key, std::string_view(std::to_string(value)));
}

LogEvent& LogEvent::field(const char* key, double value) {
  if (!active_) return *this;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  return field(key, std::string_view(buf));
}

LogEvent log(LogLevel level, const char* subsys, const char* event) {
  // Guaranteed elision: the prvalue is constructed straight into the
  // caller's temporary, so the deleted copy is never needed.
  return LogEvent(level, subsys, event);
}

} // namespace kronlab::obs
