// kronlab/obs/trace.hpp
//
// End-to-end tracing: per-thread ring buffers of timestamped events
// (spans, instants, named counters) captured across the whole pipeline —
// grb kernels, kron ground-truth phases, counting kernels, io, and the
// simulated distributed runtime — and exported as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing) or a compact self-describing
// binary format that `kronlab_trace` converts, merges, summarizes, and
// diffs.
//
// Everything is disabled (one relaxed atomic load per call site) until
// trace::set_enabled(true) is called or the process starts with
// KRONLAB_TRACE=1 — the same convention parallel/metrics uses.  When
// enabled, each thread appends fixed-size events to its own lock-free
// ring buffer (single writer, no allocation after the ring exists), so
// recording perturbs the measured code as little as possible.  The ring
// overwrites its oldest events when full (dropped_events() reports how
// many); snapshot()/export must only run while instrumented threads are
// quiescent — after pool joins and dist::run returns — which is when the
// release-store on each buffer head makes every slot write visible.
//
// Timestamps come from timer::now_ns(), the process-wide steady-clock
// epoch shared with parallel/metrics, so metrics counters folded into a
// trace line up exactly with the spans that produced them.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kronlab::trace {

/// True when recording is on (set_enabled(true) or KRONLAB_TRACE=1).
[[nodiscard]] bool enabled();

/// Turn recording on or off process-wide.
void set_enabled(bool on);

/// Ring capacity (events) for buffers created *after* this call; existing
/// buffers keep their size.  Default 16384, or KRONLAB_TRACE_BUFFER.
void set_buffer_capacity(std::size_t events);

/// Name the calling thread on the exported timeline ("main", "rank 2",
/// "worker 3", ...).  Cheap; safe to call whether or not tracing is on.
void set_thread_name(std::string name);

/// Copy `s` into the process-lifetime string arena and return a stable
/// pointer.  Use for dynamic detail strings (fault annotations, paths);
/// string literals can be passed to the event API directly.
[[nodiscard]] const char* intern(std::string_view s);

/// RAII span: records [construction, destruction) as one complete event
/// on the calling thread's track.  `cat` / `name` / `detail` must outlive
/// the trace (string literals or intern()ed strings).  Inert when tracing
/// is disabled at construction.
class Span {
public:
  Span(const char* cat, const char* name, const char* detail = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

private:
  const char* cat_ = nullptr; ///< nullptr = inert
  const char* name_ = nullptr;
  const char* detail_ = nullptr;
  std::uint64_t begin_ns_ = 0;
};

/// Record a complete span with explicit bounds (used by KernelScope,
/// which measures with its own timestamps).
void emit_span(const char* cat, const char* name, std::uint64_t begin_ns,
               std::uint64_t end_ns, const char* detail = nullptr);

/// Zero-duration annotation on the calling thread's track (fault
/// injections, retries, checkpoint writes, ...).
void instant(const char* cat, const char* name,
             const char* detail = nullptr);

/// Named counter sample (rendered as a counter track in Perfetto).
void counter(const char* cat, const char* name, double value);

// ---------------------------------------------------------------------------
// Collection & export.

enum class Kind : std::uint32_t { span = 0, instant = 1, counter = 2 };

/// One decoded event.  `ts_ns` is relative to timer::epoch_unix_ns().
struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0; ///< spans only
  Kind kind = Kind::span;
  std::uint32_t tid = 0;
  double value = 0.0; ///< counters only
  std::string name;
  std::string cat;
  std::string detail;      ///< empty when the event carried none
  std::string thread_name; ///< "thread <tid>" when never named
};

/// All recorded events from every thread, sorted by timestamp.  Must run
/// at quiescence (see the file comment).
[[nodiscard]] std::vector<TraceEvent> snapshot();

/// Drop all recorded events (buffers and thread names stay registered).
void reset();

/// Events lost to ring-buffer wrap since the last reset(), summed over
/// all threads.
[[nodiscard]] std::uint64_t dropped_events();

/// Chrome trace-event JSON for `events` (object form, "traceEvents" plus
/// thread-name metadata; otherData carries the schema tag and the
/// wall-clock epoch for cross-process alignment).  `epoch_unix_ns` == 0
/// means this process's own epoch; converters pass the trace file's.
[[nodiscard]] std::string chrome_json(const std::vector<TraceEvent>& events,
                                      std::uint64_t epoch_unix_ns = 0);

/// Write chrome_json(...) to `path`; throws io_error on failure.
void write_chrome_file(const std::string& path,
                       const std::vector<TraceEvent>& events,
                       std::uint64_t epoch_unix_ns = 0);

/// One parsed binary trace file.
struct TraceFile {
  std::uint64_t epoch_unix_ns = 0;
  std::vector<TraceEvent> events;
};

/// Write `events` as a self-describing binary trace (magic "KRNLTRC1",
/// string table, per-event records) stamped with this process's epoch.
void write_binary_file(const std::string& path,
                       const std::vector<TraceEvent>& events);

/// Read a binary trace file; throws io_error on a missing, truncated, or
/// corrupt file.
[[nodiscard]] TraceFile read_binary_file(const std::string& path);

/// Merge traces onto one clock-aligned timeline: timestamps shift onto
/// the earliest file's epoch and thread ids are re-assigned so tracks
/// from different files never collide.  Result is sorted by timestamp.
[[nodiscard]] std::vector<TraceEvent> merge(
    const std::vector<TraceFile>& files);

} // namespace kronlab::trace

// Convenience RAII macros (unique variable per line).
#define KRONLAB_TRACE_CAT2(a, b) a##b
#define KRONLAB_TRACE_CAT(a, b) KRONLAB_TRACE_CAT2(a, b)
#define KRONLAB_TRACE_SPAN(cat, name)                                       \
  ::kronlab::trace::Span KRONLAB_TRACE_CAT(kronlab_trace_span_, __LINE__) { \
    (cat), (name)                                                           \
  }
#define KRONLAB_TRACE_SPAN_D(cat, name, detail)                             \
  ::kronlab::trace::Span KRONLAB_TRACE_CAT(kronlab_trace_span_, __LINE__) { \
    (cat), (name), (detail)                                                 \
  }
