// kronlab/obs/stats.hpp
//
// Live telemetry: a process-wide registry of named counters, gauges, and
// log-bucketed latency histograms.  Where obs/trace answers "what
// happened, in order" after the fact, the stats registry answers "what is
// happening right now" — it is what the KRNLSRV1 SERVER_STATS admin
// request snapshots on a running daemon, what the bench harness folds
// into kronlab-bench-v1 counters (p50/p99 per instrumented phase), and
// what the stall watchdog samples.
//
// Hot-path contract (the trace idiom, PR 4):
//
//  * Disabled (`KRONLAB_STATS=0`): every record call is one relaxed
//    atomic load and a branch.  Nothing else — no clock read, no
//    allocation, no shared-line write.
//  * Enabled (the default): counters and gauges are single relaxed
//    atomic RMWs on dedicated cache lines.  Histogram recording writes
//    only the calling thread's shard — one relaxed load+store on a
//    bucket the thread owns — so concurrent recorders never contend.
//    Shards are merged under the registry mutex at snapshot time.
//
// Histogram buckets are logarithmic with 5 sub-bucket bits (HdrHistogram
// style): values below 32 are exact, larger values land in one of 32
// sub-buckets per power of two, bounding the relative quantile error at
// ~3%.  The per-histogram true maximum is tracked exactly, so max (and
// any quantile that resolves to the last occupied bucket) never
// over-reports by more than one sub-bucket width.
//
// Snapshots are *live*: recorders keep running while snapshot() reads
// the shards.  Relaxed reads may observe a bucket increment before the
// matching count increment (or vice versa), so a live snapshot can be
// off by the handful of events in flight — fine for telemetry.  Exact
// snapshots (tests, bench harness) are taken at quiescent points.
//
// The registry itself is append-only and deliberately leaked (again the
// trace idiom): metric objects live for the process lifetime, so a
// pointer obtained once from counter()/gauge()/histogram() stays valid
// forever and can be cached in a member or a static.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kronlab/common/timer.hpp"

namespace kronlab::obs {

/// True when the registry records (default on; KRONLAB_STATS=0 disables).
[[nodiscard]] bool stats_enabled();

/// Turn recording on or off process-wide.
void set_stats_enabled(bool on);

/// Monotonically increasing event count.  add() is a relaxed fetch_add.
class Counter {
public:
  void add(std::uint64_t delta = 1) {
    if (stats_enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, busy workers).  set() is a relaxed
/// store; add() is a relaxed fetch_add of a signed delta.
class Gauge {
public:
  void set(std::int64_t v) {
    if (stats_enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    if (stats_enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  alignas(64) std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed histogram of non-negative values (latencies in ns by
/// convention).  record() touches only the calling thread's shard.
class Histogram {
public:
  /// 5 sub-bucket bits: 32 exact buckets, then 32 sub-buckets per
  /// power of two up to 2^63 — 1920 buckets, ~3% relative error.
  static constexpr int kSubBits = 5;
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1)
                                          << kSubBits; // 1920

  void record(std::uint64_t value);

  /// Bucket index for a value (exposed for the golden-quantile tests).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value);
  /// Midpoint representative of a bucket (what quantiles report).
  [[nodiscard]] static std::uint64_t bucket_mid(std::size_t bucket);

  /// One recording thread's private slice, owned by the registry.
  /// Atomics because a live snapshot reads them concurrently;
  /// single-writer, so plain load+store (no RMW) keeps the hot path
  /// lock-prefix-free.
  struct Shard {
    Shard() : buckets(kBuckets) {}
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    /// Decimation counter for SampledLatencyScope.  Plain (not atomic):
    /// only the owning thread touches it, and snapshots never read it.
    std::uint32_t tick = 0;
  };

  /// Advance this thread's decimation counter and report whether the
  /// current event is one of the 1-in-`period` that should be timed.
  /// The counter starts at 0, so the FIRST event on each thread is
  /// always sampled — a histogram that saw any traffic is never empty.
  /// Per-histogram state (not a global tick) so a fixed rotation of
  /// operations cannot alias with the sampling period.
  [[nodiscard]] bool tick_sample(std::uint32_t period) {
    return shard().tick++ % period == 0;
  }

private:
  // Only the registry may construct: a free-standing Histogram would
  // alias another histogram's slot in the per-thread shard map.
  friend Histogram& histogram(std::string_view name);
  Histogram() = default;

  Shard& shard();

  std::size_t id_ = 0; ///< dense index into the thread-local shard map
};

/// RAII latency sample: records now()-construction into `h` in ns.
/// Inert (no clock read) when stats were disabled at construction.
class LatencyScope {
public:
  explicit LatencyScope(Histogram& h)
      : h_(&h), begin_ns_(stats_enabled() ? timer::now_ns() : 0) {}
  /// Nullable form: pass nullptr for an inert scope (e.g. an unknown
  /// opcode with no per-verb histogram).
  explicit LatencyScope(Histogram* h)
      : h_(h), begin_ns_(h != nullptr && stats_enabled() ? timer::now_ns()
                                                         : 0) {}
  ~LatencyScope() {
    if (begin_ns_ != 0) h_->record(timer::now_ns() - begin_ns_);
  }
  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

private:
  Histogram* h_;
  std::uint64_t begin_ns_;
};

/// Sampled RAII latency scope for per-event hot paths where even two
/// clock reads per event are too much (the per-op serve histograms: a
/// probe executes in under a microsecond, so timing every one costs
/// ~10% of throughput — X18).  Times 1 in kPeriod events per thread;
/// the skipped events cost one thread-local lookup and a branch.  The
/// first event on each thread is always timed, so any histogram with
/// traffic has count >= 1.  Quantiles from the sample are unbiased;
/// `count` is the SAMPLE count — pair it with an exact event counter
/// (e.g. probes_by_op) when totals matter.
class SampledLatencyScope {
public:
  static constexpr std::uint32_t kPeriod = 8;
  /// Nullable: pass nullptr for an inert scope.
  explicit SampledLatencyScope(Histogram* h)
      : h_(h != nullptr && stats_enabled() && h->tick_sample(kPeriod)
               ? h
               : nullptr),
        begin_ns_(h_ != nullptr ? timer::now_ns() : 0) {}
  ~SampledLatencyScope() {
    if (h_ != nullptr) h_->record(timer::now_ns() - begin_ns_);
  }
  SampledLatencyScope(const SampledLatencyScope&) = delete;
  SampledLatencyScope& operator=(const SampledLatencyScope&) = delete;

private:
  Histogram* h_;
  std::uint64_t begin_ns_;
};

/// Look up (or create) a metric by name.  Names are hierarchical by
/// convention ("serve/op/vertex"); the returned reference is valid for
/// the process lifetime.  O(log n) with a lock — call once and cache.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Merged, point-in-time view of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets; ///< merged across shards

  /// Value at quantile q in [0,1] (bucket midpoint; exact max for q=1
  /// or when the rank lands in the top occupied bucket).  0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Point-in-time view of the whole registry.
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

[[nodiscard]] StatsSnapshot stats_snapshot();

/// Zero every metric (values only — registered names and cached
/// references stay valid).  Bench harness calls this at startup so each
/// JSON carries exactly one run's samples.
void stats_reset();

/// Render a snapshot as a JSON object fragment:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"mean_us":..,"p50_us":..,
///                          "p90_us":..,"p99_us":..,"max_us":..}}}
[[nodiscard]] std::string stats_json(const StatsSnapshot& s);

/// Render a snapshot in Prometheus text exposition format.  Metric names
/// are sanitized ([^a-zA-Z0-9_] -> '_') and prefixed "kronlab_";
/// histograms emit *_count/*_sum plus quantile gauges.
[[nodiscard]] std::string stats_prometheus(const StatsSnapshot& s);

} // namespace kronlab::obs
