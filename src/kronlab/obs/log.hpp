// kronlab/obs/log.hpp
//
// Structured, leveled logging for operational events: one logfmt line
// per event, machine-parseable and stable enough to grep in production:
//
//   ts=2026-08-09T12:34:56.789Z level=warn subsys=watchdog event=stall
//       op=serve/request elapsed_ms=312 deadline_ms=100  (one line)
//
// This replaces ad-hoc fprintf(stderr, ...) in the daemon, the dist
// runtime, and the durable-IO paths (the obs-log lint rule forbids new
// ones).  Contract:
//
//  * Leveled: debug < info < warn < error < off.  The threshold comes
//    from KRONLAB_LOG at startup (default info) or set_log_level().
//    A filtered event costs one relaxed atomic load; fields appended to
//    an inert event are not formatted.
//  * Single-writer: lines are formatted privately and emitted whole
//    under one mutex, so concurrent threads never interleave mid-line.
//  * Redirectable: set_log_sink() captures lines in-process (tests
//    assert on watchdog stall events this way); the default sink is
//    stderr.
//
// Usage — the temporary's destructor emits:
//
//   obs::log(obs::LogLevel::info, "served", "drain_progress")
//       .field("in_flight", n).field("elapsed_ms", ms);

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace kronlab::obs {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Current threshold (events below it are dropped).
[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug"/"info"/"warn"/"error"/"off" (as KRONLAB_LOG accepts).
/// Returns false and leaves `out` untouched on unknown input.
[[nodiscard]] bool parse_log_level(std::string_view text, LogLevel& out);

/// Name as emitted in `level=` (and accepted by parse_log_level).
[[nodiscard]] const char* log_level_name(LogLevel level);

/// True when an event at `level` would be emitted — use to guard
/// expensive field computation.
[[nodiscard]] bool log_enabled(LogLevel level);

/// Redirect emitted lines (without trailing newline) to `sink`; pass an
/// empty function to restore the default stderr sink.  Not for hot
/// paths — takes the writer mutex.
void set_log_sink(std::function<void(std::string_view line)> sink);

/// One structured event, emitted on destruction.  Obtain via obs::log();
/// append fields with .field(key, value).  Keys must be bare logfmt
/// tokens (no spaces/quotes/'='); values are quoted as needed.
class LogEvent {
public:
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& field(const char* key, std::string_view value);
  LogEvent& field(const char* key, const char* value) {
    return field(key, std::string_view(value));
  }
  LogEvent& field(const char* key, std::int64_t value);
  LogEvent& field(const char* key, std::uint64_t value);
  LogEvent& field(const char* key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  LogEvent& field(const char* key, double value);
  LogEvent& field(const char* key, bool value) {
    return field(key, value ? std::string_view("true")
                            : std::string_view("false"));
  }

private:
  friend LogEvent log(LogLevel level, const char* subsys, const char* event);
  LogEvent(LogLevel level, const char* subsys, const char* event);

  bool active_;      ///< false when filtered — every method is a no-op
  std::string line_; ///< "ts=... level=... subsys=... event=..." so far
};

/// Start a structured event (inert if `level` is below the threshold).
/// A bare call with no .field() chain emits just the envelope.
LogEvent log(LogLevel level, const char* subsys, const char* event);

} // namespace kronlab::obs
