#include "kronlab/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "kronlab/common/error.hpp"
#include "kronlab/common/registry.hpp"
#include "kronlab/common/sync.hpp"
#include "kronlab/common/timer.hpp"

namespace kronlab::trace {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv(kronlab::env::kTrace);
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

std::atomic<std::size_t> g_capacity{[]() -> std::size_t {
  if (const char* env = std::getenv(kronlab::env::kTraceBuffer)) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 16384;
}()};

/// Fixed-size in-ring record.  Strings are stable pointers (literals or
/// arena-interned); detail may be null.
struct RawEvent {
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  const char* name;
  const char* cat;
  const char* detail;
  double value;
  std::uint32_t kind;
  std::uint32_t pad;
};

/// One thread's track: single-writer ring plus identity.  `head` counts
/// every event ever pushed; the release-store pairs with snapshot()'s
/// acquire-load so slot writes are visible at quiescence.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::string name;                ///< registry mutex guards writes
  std::unique_ptr<RawEvent[]> ring;
  std::size_t capacity = 0;
  std::atomic<std::uint64_t> head{0};
};

struct Registry {
  Mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers GUARDED_BY(mu);
  std::unordered_set<std::string> arena GUARDED_BY(mu);
};

Registry& registry() {
  // Deliberately leaked: exiting rank/worker threads may still push into
  // their buffers during static destruction.  kronlab-lint: allow(naked-new)
  static Registry* r = new Registry;
  return *r;
}

thread_local ThreadBuffer* tl_buf = nullptr;

/// This thread's buffer, registering (and optionally allocating the ring
/// for) it on first use.  Buffers are never removed: a finished rank or
/// worker thread's events stay exportable.
ThreadBuffer& buffer(bool want_ring) {
  ThreadBuffer* b = tl_buf;
  if (b == nullptr) {
    auto& reg = registry();
    MutexLock lock(reg.mu);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = static_cast<std::uint32_t>(reg.buffers.size());
    b = owned.get();
    reg.buffers.push_back(std::move(owned));
    tl_buf = b;
  }
  if (want_ring && b->capacity == 0) {
    auto& reg = registry();
    MutexLock lock(reg.mu);
    b->capacity = std::max<std::size_t>(
        std::size_t{16}, g_capacity.load(std::memory_order_relaxed));
    b->ring = std::make_unique<RawEvent[]>(b->capacity);
  }
  return *b;
}

void push(const RawEvent& ev) {
  ThreadBuffer& b = buffer(/*want_ring=*/true);
  const std::uint64_t h = b.head.load(std::memory_order_relaxed);
  b.ring[h % b.capacity] = ev;
  b.head.store(h + 1, std::memory_order_release);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

} // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void set_buffer_capacity(std::size_t events) {
  g_capacity.store(std::max<std::size_t>(std::size_t{16}, events),
                   std::memory_order_relaxed);
}

void set_thread_name(std::string name) {
  ThreadBuffer& b = buffer(/*want_ring=*/false);
  auto& reg = registry();
  MutexLock lock(reg.mu);
  b.name = std::move(name);
}

const char* intern(std::string_view s) {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  return reg.arena.emplace(s).first->c_str();
}

Span::Span(const char* cat, const char* name, const char* detail) {
  if (!enabled() || cat == nullptr || name == nullptr) return;
  cat_ = cat;
  name_ = name;
  detail_ = detail;
  begin_ns_ = timer::now_ns();
}

Span::~Span() {
  if (cat_ == nullptr) return;
  emit_span(cat_, name_, begin_ns_, timer::now_ns(), detail_);
}

void emit_span(const char* cat, const char* name, std::uint64_t begin_ns,
               std::uint64_t end_ns, const char* detail) {
  if (!enabled()) return;
  push({begin_ns, end_ns >= begin_ns ? end_ns - begin_ns : 0, name, cat,
        detail, 0.0, static_cast<std::uint32_t>(Kind::span), 0});
}

void instant(const char* cat, const char* name, const char* detail) {
  if (!enabled()) return;
  push({timer::now_ns(), 0, name, cat, detail, 0.0,
        static_cast<std::uint32_t>(Kind::instant), 0});
}

void counter(const char* cat, const char* name, double value) {
  if (!enabled()) return;
  push({timer::now_ns(), 0, name, cat, nullptr, value,
        static_cast<std::uint32_t>(Kind::counter), 0});
}

std::vector<TraceEvent> snapshot() {
  std::vector<TraceEvent> out;
  auto& reg = registry();
  MutexLock lock(reg.mu);
  for (const auto& b : reg.buffers) {
    const std::uint64_t h = b->head.load(std::memory_order_acquire);
    if (h == 0) continue;
    const std::uint64_t kept =
        std::min<std::uint64_t>(h, static_cast<std::uint64_t>(b->capacity));
    const std::string tname =
        b->name.empty() ? "thread " + std::to_string(b->tid) : b->name;
    for (std::uint64_t k = h - kept; k < h; ++k) {
      const RawEvent& ev = b->ring[k % b->capacity];
      TraceEvent e;
      e.ts_ns = ev.ts_ns;
      e.dur_ns = ev.dur_ns;
      e.kind = static_cast<Kind>(ev.kind);
      e.tid = b->tid;
      e.value = ev.value;
      e.name = ev.name;
      e.cat = ev.cat;
      if (ev.detail != nullptr) e.detail = ev.detail;
      e.thread_name = tname;
      out.push_back(std::move(e));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void reset() {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  for (const auto& b : reg.buffers) {
    b->head.store(0, std::memory_order_release);
  }
}

std::uint64_t dropped_events() {
  std::uint64_t dropped = 0;
  auto& reg = registry();
  MutexLock lock(reg.mu);
  for (const auto& b : reg.buffers) {
    const std::uint64_t h = b->head.load(std::memory_order_acquire);
    const auto cap = static_cast<std::uint64_t>(b->capacity);
    if (h > cap) dropped += h - cap;
  }
  return dropped;
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON.

std::string chrome_json(const std::vector<TraceEvent>& events,
                        std::uint64_t epoch_unix_ns) {
  if (epoch_unix_ns == 0) epoch_unix_ns = timer::epoch_unix_ns();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  // Thread-name metadata first, one per track.
  std::map<std::uint32_t, std::string> names;
  for (const auto& e : events) names.emplace(e.tid, e.thread_name);
  for (const auto& [tid, name] : names) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(name) + "\"}}";
  }
  for (const auto& e : events) {
    sep();
    const double ts_us = static_cast<double>(e.ts_ns) / 1e3;
    out += "{\"pid\":0,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + num(ts_us) + ",\"cat\":\"" + json_escape(e.cat) +
           "\",\"name\":\"" + json_escape(e.name) + "\"";
    switch (e.kind) {
      case Kind::span:
        out += ",\"ph\":\"X\",\"dur\":" +
               num(static_cast<double>(e.dur_ns) / 1e3);
        if (!e.detail.empty()) {
          out += ",\"args\":{\"detail\":\"" + json_escape(e.detail) + "\"}";
        }
        break;
      case Kind::instant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        if (!e.detail.empty()) {
          out += ",\"args\":{\"detail\":\"" + json_escape(e.detail) + "\"}";
        }
        break;
      case Kind::counter:
        out += ",\"ph\":\"C\",\"args\":{\"value\":" + num(e.value) + "}";
        break;
    }
    out += "}";
  }
  out += first ? "]" : "\n]";
  out += ",\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":"
         "\"kronlab-trace-v1\",\"epoch_unix_ns\":\"" +
         std::to_string(epoch_unix_ns) + "\"}}\n";
  return out;
}

void write_chrome_file(const std::string& path,
                       const std::vector<TraceEvent>& events,
                       std::uint64_t epoch_unix_ns) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw io_error("trace: cannot write " + path);
  f << chrome_json(events, epoch_unix_ns);
  f.close();
  if (!f) throw io_error("trace: failed writing " + path);
}

// ---------------------------------------------------------------------------
// Binary format "KRNLTRC1".
//
//   magic[8] version:u32 reserved:u32 epoch_unix_ns:u64
//   nstrings:u32  { len:u32 bytes[len] } ...        (index 0 is always "")
//   nthreads:u32  { tid:u32 name_idx:u32 } ...
//   nevents:u64   { ts:u64 dur:u64 tid:u32 kind:u32
//                   name_idx:u32 cat_idx:u32 detail_idx:u32 pad:u32
//                   value:f64 } ...

namespace {

constexpr const char (&kMagic)[8] = magic::kTrc1;
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kMaxEvents = std::uint64_t{1} << 32;
constexpr std::uint32_t kMaxStrings = 1u << 24;
constexpr std::uint32_t kMaxStringLen = 1u << 20;

template <typename T>
void put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw io_error("trace: truncated trace file " + path);
  return v;
}

} // namespace

void write_binary_file(const std::string& path,
                       const std::vector<TraceEvent>& events) {
  std::map<std::string, std::uint32_t> strings{{"", 0}};
  const auto idx = [&](const std::string& s) {
    const auto [it, inserted] =
        strings.emplace(s, static_cast<std::uint32_t>(strings.size()));
    (void)inserted;
    return it->second;
  };
  std::map<std::uint32_t, std::uint32_t> threads; // tid → name idx
  struct Rec {
    std::uint32_t name, cat, detail;
  };
  std::vector<Rec> recs;
  recs.reserve(events.size());
  for (const auto& e : events) {
    threads.emplace(e.tid, idx(e.thread_name));
    recs.push_back({idx(e.name), idx(e.cat), idx(e.detail)});
  }
  // The map iterates in key order, not index order: rebuild by index.
  std::vector<const std::string*> table(strings.size());
  for (const auto& [s, i] : strings) table[i] = &s;

  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f) throw io_error("trace: cannot write " + path);
  f.write(kMagic, sizeof kMagic);
  put<std::uint32_t>(f, kVersion);
  put<std::uint32_t>(f, 0);
  put<std::uint64_t>(f, timer::epoch_unix_ns());
  put<std::uint32_t>(f, static_cast<std::uint32_t>(table.size()));
  for (const auto* s : table) {
    put<std::uint32_t>(f, static_cast<std::uint32_t>(s->size()));
    f.write(s->data(), static_cast<std::streamsize>(s->size()));
  }
  put<std::uint32_t>(f, static_cast<std::uint32_t>(threads.size()));
  for (const auto& [tid, name_idx] : threads) {
    put<std::uint32_t>(f, tid);
    put<std::uint32_t>(f, name_idx);
  }
  put<std::uint64_t>(f, static_cast<std::uint64_t>(events.size()));
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    put<std::uint64_t>(f, e.ts_ns);
    put<std::uint64_t>(f, e.dur_ns);
    put<std::uint32_t>(f, e.tid);
    put<std::uint32_t>(f, static_cast<std::uint32_t>(e.kind));
    put<std::uint32_t>(f, recs[i].name);
    put<std::uint32_t>(f, recs[i].cat);
    put<std::uint32_t>(f, recs[i].detail);
    put<std::uint32_t>(f, 0);
    put<double>(f, e.value);
  }
  f.close();
  if (!f) throw io_error("trace: failed writing " + path);
}

TraceFile read_binary_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw io_error("trace: cannot open " + path);
  char magic[8];
  f.read(magic, sizeof magic);
  if (!f || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw io_error("trace: " + path + " is not a KRNLTRC1 trace file");
  }
  const auto version = get<std::uint32_t>(f, path);
  if (version != kVersion) {
    throw io_error("trace: " + path + ": unsupported version " +
                   std::to_string(version));
  }
  (void)get<std::uint32_t>(f, path); // reserved
  TraceFile out;
  out.epoch_unix_ns = get<std::uint64_t>(f, path);

  const auto nstrings = get<std::uint32_t>(f, path);
  if (nstrings == 0 || nstrings > kMaxStrings) {
    throw io_error("trace: " + path + ": implausible string table");
  }
  std::vector<std::string> table(nstrings);
  for (auto& s : table) {
    const auto len = get<std::uint32_t>(f, path);
    if (len > kMaxStringLen) {
      throw io_error("trace: " + path + ": implausible string length");
    }
    s.resize(len);
    f.read(s.data(), len);
    if (!f) throw io_error("trace: truncated trace file " + path);
  }
  const auto str = [&](std::uint32_t i) -> const std::string& {
    if (i >= table.size()) {
      throw io_error("trace: " + path + ": string index out of range");
    }
    return table[i];
  };

  const auto nthreads = get<std::uint32_t>(f, path);
  if (nthreads > kMaxStrings) {
    throw io_error("trace: " + path + ": implausible thread count");
  }
  std::map<std::uint32_t, std::string> thread_names;
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    const auto tid = get<std::uint32_t>(f, path);
    const auto name_idx = get<std::uint32_t>(f, path);
    thread_names[tid] = str(name_idx);
  }

  const auto nevents = get<std::uint64_t>(f, path);
  if (nevents > kMaxEvents) {
    throw io_error("trace: " + path + ": implausible event count");
  }
  out.events.reserve(static_cast<std::size_t>(nevents));
  for (std::uint64_t i = 0; i < nevents; ++i) {
    TraceEvent e;
    e.ts_ns = get<std::uint64_t>(f, path);
    e.dur_ns = get<std::uint64_t>(f, path);
    e.tid = get<std::uint32_t>(f, path);
    const auto kind = get<std::uint32_t>(f, path);
    if (kind > static_cast<std::uint32_t>(Kind::counter)) {
      throw io_error("trace: " + path + ": unknown event kind");
    }
    e.kind = static_cast<Kind>(kind);
    e.name = str(get<std::uint32_t>(f, path));
    e.cat = str(get<std::uint32_t>(f, path));
    e.detail = str(get<std::uint32_t>(f, path));
    (void)get<std::uint32_t>(f, path); // pad
    e.value = get<double>(f, path);
    const auto it = thread_names.find(e.tid);
    e.thread_name = it != thread_names.end()
                        ? it->second
                        : "thread " + std::to_string(e.tid);
    out.events.push_back(std::move(e));
  }
  return out;
}

std::vector<TraceEvent> merge(const std::vector<TraceFile>& files) {
  std::vector<TraceEvent> out;
  if (files.empty()) return out;
  std::uint64_t base = files.front().epoch_unix_ns;
  for (const auto& f : files) base = std::min(base, f.epoch_unix_ns);
  std::map<std::pair<std::size_t, std::uint32_t>, std::uint32_t> tids;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::uint64_t shift = files[fi].epoch_unix_ns - base;
    for (const auto& e : files[fi].events) {
      const auto [it, inserted] = tids.emplace(
          std::make_pair(fi, e.tid), static_cast<std::uint32_t>(tids.size()));
      (void)inserted;
      TraceEvent copy = e;
      copy.ts_ns += shift;
      copy.tid = it->second;
      out.push_back(std::move(copy));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

} // namespace kronlab::trace
