// kronlab/io/file_ops.hpp
//
// Filesystem primitives behind the durable output pipeline — and the
// fault-injection shim that proves it durable.
//
// Everything the durable layer (io/durable.hpp) does to disk goes through
// a FileOps instance: create-for-write, fsync, atomic publish (rename),
// remove, list, read.  Production uses RealFileOps (stdio + POSIX fsync);
// tests substitute FaultyFileOps, which wraps the real one and injects
// the filesystem's unkind moments deterministically per seed:
//
//   * short writes    — every write call may return having written fewer
//                       bytes than asked (correct writers loop);
//   * failed fsync / rename / write — the call throws io_error, exactly
//                       once per configured hit, and the caller must
//                       leave the store consistent;
//   * kill points     — the `kill_hits`-th time a named operation point
//                       is reached, the shim simulates the process dying
//                       at that instruction boundary: it reverts every
//                       open file to its last-fsynced length (the page
//                       cache is gone), optionally keeps a torn prefix of
//                       the in-flight write (some pages made it out), and
//                       throws `killed_at` — a type that deliberately
//                       does NOT derive from std::exception, so no
//                       cleanup path can accidentally absorb the "crash".
//
// Fault points are named "<tag>:<op>:<phase>": tag is the file class the
// durable layer assigns ("segment", "manifest"), op is write|sync|rename,
// phase is before|after (or "torn" for write).  The same idiom as the
// dist FaultPlan's Comm::fault_point, pushed down to the filesystem.

#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kronlab/common/error.hpp"

namespace kronlab::io {

/// Simulated process death at a named fault point.  Intentionally not a
/// std::exception: a crash must not be swallowed by generic catch blocks
/// in the code under test — only the test harness catches it by name.
struct killed_at {
  std::string point; ///< the fault point that fired
};

/// A file open for (over)writing.  Writers must treat write_some like
/// POSIX write(2): it may consume fewer bytes than offered.
class WritableFile {
public:
  virtual ~WritableFile() = default;

  /// Write up to `n` bytes; returns how many were consumed (>= 1 unless
  /// n == 0).  Throws io_error on a failed-write fault or a real error.
  virtual std::size_t write_some(const void* data, std::size_t n) = 0;

  /// Flush user-space buffers and fsync to stable storage.  Throws
  /// io_error on failure — after which none of the unsynced bytes may be
  /// assumed durable.
  virtual void sync() = 0;

  /// Flush and close.  Idempotent; the destructor closes without
  /// throwing.  Close does NOT imply durability — only sync() does.
  virtual void close() = 0;
};

/// Write all of `data`, looping over short writes.
void write_all(WritableFile& f, const void* data, std::size_t n);

class FileOps {
public:
  virtual ~FileOps() = default;

  /// Create (truncate) `path` for writing.
  [[nodiscard]] virtual std::unique_ptr<WritableFile> create(
      const std::string& path) = 0;

  /// Atomically replace `final_path` with `tmp_path` (rename(2)).  On
  /// return the new content is visible under `final_path`; durability of
  /// the rename itself is modeled as immediate.
  virtual void publish(const std::string& tmp_path,
                       const std::string& final_path) = 0;

  /// Remove `path`; missing files are not an error (returns false).
  virtual bool remove(const std::string& path) = 0;

  /// Names (not paths) of directory entries, sorted.  Missing directory
  /// throws io_error.
  [[nodiscard]] virtual std::vector<std::string> list_dir(
      const std::string& dir) = 0;

  /// Whole file as bytes, or nullopt when it does not exist.  Throws
  /// io_error on read failure.
  [[nodiscard]] virtual std::optional<std::string> read_file(
      const std::string& path) = 0;

  /// Create `dir` (and parents).  Existing directory is fine.
  virtual void make_dir(const std::string& dir) = 0;
};

/// The production FileOps (stdio writes, POSIX fsync, ::rename).
/// Stateless; one shared instance.
FileOps& real_file_ops();

/// Atomic replace through real_file_ops() — the one rename helper
/// non-durable code (e.g. grb::write_snapshot_file) is expected to use
/// instead of calling std::rename directly (enforced by the lint's
/// durable-io rule).
void publish_file(const std::string& tmp_path, const std::string& final_path);

/// Remove through real_file_ops(); missing files are not an error.
bool remove_file(const std::string& path);

/// Deterministic filesystem fault plan (the dist FaultPlan idiom).  Point
/// names are "<tag>:<op>:<phase>" as documented above, e.g.
/// "segment:rename:after", "manifest:sync:before", "segment:write:torn".
struct FsFaultPlan {
  std::uint64_t seed = 0;

  /// > 0: cap every write_some to this many bytes — forces writers to
  /// loop.  Purely a robustness stressor; no data is lost.
  std::size_t short_write_cap = 0;

  /// Kill (simulated crash) when `kill_point` is hit for the
  /// `kill_hits`-th time.  Empty = never.
  std::string kill_point;
  std::uint64_t kill_hits = 1;

  /// Fail (io_error, no crash) when `fail_point` is hit for the
  /// `fail_hits`-th time.  Phase is ignored for failures: the op itself
  /// fails.  Empty = never.
  std::string fail_point;
  std::uint64_t fail_hits = 1;
};

/// FileOps decorator injecting the plan above.  Classifies files by path:
/// anything whose basename starts with "MANIFEST" is tagged "manifest",
/// everything else "segment".  Not thread-safe with concurrent faulted
/// writers by design — fault matrices are sequential so kills land at a
/// deterministic instruction boundary.
class FaultyFileOps final : public FileOps {
public:
  FaultyFileOps(FileOps& inner, FsFaultPlan plan);
  ~FaultyFileOps() override;

  [[nodiscard]] std::unique_ptr<WritableFile> create(
      const std::string& path) override;
  void publish(const std::string& tmp_path,
               const std::string& final_path) override;
  bool remove(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list_dir(
      const std::string& dir) override;
  [[nodiscard]] std::optional<std::string> read_file(
      const std::string& path) override;
  void make_dir(const std::string& dir) override;

  /// Fault points hit so far, in order (test diagnostics).
  [[nodiscard]] const std::vector<std::string>& points_hit() const {
    return points_hit_;
  }

private:
  friend class FaultyWritableFile;
  struct OpenFile; ///< tracked durability state of one live file

  /// Record a hit on `point`; throws killed_at / io_error per the plan.
  /// `torn_keep` is the byte count of the in-flight write to preserve
  /// when a ":torn" kill fires here (write points only).
  void hit(const std::string& point);

  /// Apply crash semantics: truncate every open file back to its
  /// last-fsynced length, then throw killed_at{point}.
  [[noreturn]] void die(const std::string& point);

  [[nodiscard]] static std::string tag_of(const std::string& path);

  FileOps& inner_;
  FsFaultPlan plan_;
  std::uint64_t kill_seen_ = 0;
  std::uint64_t fail_seen_ = 0;
  bool dead_ = false; ///< after a kill the shim refuses further work
  /// Every file ever created; entries outlive their handles so a kill
  /// after close can still revert unsynced bytes.
  std::vector<std::unique_ptr<OpenFile>> open_;
  std::vector<std::string> points_hit_;
};

} // namespace kronlab::io
