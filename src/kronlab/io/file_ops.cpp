#include "kronlab/io/file_ops.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

// POSIX fsync/truncate — the durability primitives stdio does not expose.
#include <unistd.h>

namespace kronlab::io {

namespace fs = std::filesystem;

void write_all(WritableFile& f, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const std::size_t wrote = f.write_some(p, n);
    KRONLAB_DBG_ASSERT(wrote > 0 && wrote <= n,
                       "write_some must make progress");
    p += wrote;
    n -= wrote;
  }
}

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw io_error(what + " " + path + ": " + std::strerror(errno));
}

class RealWritableFile final : public WritableFile {
public:
  RealWritableFile(std::FILE* f, std::string path)
      : f_(f), path_(std::move(path)) {}

  ~RealWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  std::size_t write_some(const void* data, std::size_t n) override {
    if (n == 0) return 0;
    const std::size_t wrote = std::fwrite(data, 1, n, f_);
    if (wrote == 0) throw_errno("failed writing", path_);
    return wrote;
  }

  void sync() override {
    if (std::fflush(f_) != 0) throw_errno("failed flushing", path_);
    if (::fsync(fileno(f_)) != 0) throw_errno("failed fsync of", path_);
  }

  void close() override {
    if (f_ == nullptr) return;
    std::FILE* f = f_;
    f_ = nullptr;
    if (std::fclose(f) != 0) throw_errno("failed closing", path_);
  }

private:
  std::FILE* f_;
  std::string path_;
};

class RealFileOps final : public FileOps {
public:
  std::unique_ptr<WritableFile> create(const std::string& path) override {
    // kronlab-lint: allow(durable-io) — this IS the durable-io helper.
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) throw_errno("cannot create", path);
    return std::make_unique<RealWritableFile>(f, path);
  }

  void publish(const std::string& tmp_path,
               const std::string& final_path) override {
    // kronlab-lint: allow(durable-io)
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
      throw_errno("cannot rename " + tmp_path + " ->", final_path);
    }
  }

  bool remove(const std::string& path) override {
    // kronlab-lint: allow(durable-io)
    if (std::remove(path.c_str()) == 0) return true;
    if (errno == ENOENT) return false;
    throw_errno("cannot remove", path);
  }

  std::vector<std::string> list_dir(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) {
      throw io_error("cannot list " + dir + ": " + ec.message());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  std::optional<std::string> read_file(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (!fs::exists(path)) return std::nullopt;
      throw io_error("cannot open " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) throw io_error("failed reading " + path);
    return std::move(buf).str();
  }

  void make_dir(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) throw io_error("cannot create " + dir + ": " + ec.message());
  }
};

} // namespace

FileOps& real_file_ops() {
  static RealFileOps ops;
  return ops;
}

void publish_file(const std::string& tmp_path,
                  const std::string& final_path) {
  real_file_ops().publish(tmp_path, final_path);
}

bool remove_file(const std::string& path) {
  return real_file_ops().remove(path);
}

// ---------------------------------------------------------------------------
// FaultyFileOps

/// Durability bookkeeping for one live faulted file: the real file holds
/// everything written so far; `synced` is how much of it would survive a
/// crash; `keep` is raised past `synced` transiently for torn-write kills.
struct FaultyFileOps::OpenFile {
  std::string path;
  std::unique_ptr<WritableFile> real;
  std::size_t written = 0;
  std::size_t synced = 0;
  std::size_t keep_on_kill = 0; ///< max(synced, torn prefix)
  bool closed = false;
};

/// Faulted writable handle.  All fault decisions route through the owning
/// FaultyFileOps so kill/fail hit counters are global to the plan.  At
/// namespace scope (not anonymous) so the friend declaration in
/// FaultyFileOps resolves to this definition.
class FaultyWritableFile final : public WritableFile {
public:
  FaultyWritableFile(FaultyFileOps& owner, FaultyFileOps::OpenFile* state,
                     std::string tag)
      : owner_(owner), state_(state), tag_(std::move(tag)) {}

  ~FaultyWritableFile() override;

  std::size_t write_some(const void* data, std::size_t n) override;
  void sync() override;
  void close() override;

private:
  FaultyFileOps& owner_;
  FaultyFileOps::OpenFile* state_; ///< owned by owner_.open_
  std::string tag_;
};

FaultyFileOps::FaultyFileOps(FileOps& inner, FsFaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {}

FaultyFileOps::~FaultyFileOps() = default;

std::string FaultyFileOps::tag_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return base.rfind("MANIFEST", 0) == 0 ? "manifest" : "segment";
}

void FaultyFileOps::hit(const std::string& point) {
  points_hit_.push_back(point);
  if (!plan_.fail_point.empty() && point == plan_.fail_point &&
      ++fail_seen_ == plan_.fail_hits) {
    throw io_error("injected fault: " + point + " failed");
  }
  if (!plan_.kill_point.empty() && point == plan_.kill_point &&
      ++kill_seen_ == plan_.kill_hits) {
    die(point);
  }
}

void FaultyFileOps::die(const std::string& point) {
  dead_ = true;
  for (const auto& f : open_) {
    if (f->closed) continue;
    // The page cache dies with the process: revert to the last-fsynced
    // prefix (plus any torn bytes a kill chose to keep).
    const std::size_t keep = std::max(f->synced, f->keep_on_kill);
    f->real->close();
    f->closed = true;
    if (::truncate(f->path.c_str(), static_cast<off_t>(keep)) != 0) {
      throw io_error("FaultyFileOps: cannot truncate " + f->path);
    }
  }
  throw killed_at{point};
}

std::unique_ptr<WritableFile> FaultyFileOps::create(
    const std::string& path) {
  KRONLAB_REQUIRE(!dead_, "FaultyFileOps used after a kill");
  auto state = std::make_unique<OpenFile>();
  state->path = path;
  state->real = inner_.create(path);
  open_.push_back(std::move(state));
  return std::make_unique<FaultyWritableFile>(*this, open_.back().get(),
                                              tag_of(path));
}

void FaultyFileOps::publish(const std::string& tmp_path,
                            const std::string& final_path) {
  KRONLAB_REQUIRE(!dead_, "FaultyFileOps used after a kill");
  const std::string tag = tag_of(final_path);
  hit(tag + ":rename:before");
  inner_.publish(tmp_path, final_path);
  // Track the renamed file's durability state under its new name.
  for (const auto& f : open_) {
    if (f->path == tmp_path) f->path = final_path;
  }
  hit(tag + ":rename:after");
}

bool FaultyFileOps::remove(const std::string& path) {
  KRONLAB_REQUIRE(!dead_, "FaultyFileOps used after a kill");
  return inner_.remove(path);
}

std::vector<std::string> FaultyFileOps::list_dir(const std::string& dir) {
  return inner_.list_dir(dir);
}

std::optional<std::string> FaultyFileOps::read_file(
    const std::string& path) {
  return inner_.read_file(path);
}

void FaultyFileOps::make_dir(const std::string& dir) {
  inner_.make_dir(dir);
}

FaultyWritableFile::~FaultyWritableFile() {
  if (!state_->closed) {
    state_->real->close();
    state_->closed = true;
  }
}

std::size_t FaultyWritableFile::write_some(const void* data,
                                           std::size_t n) {
  KRONLAB_REQUIRE(!state_->closed, "write on closed file");
  owner_.hit(tag_ + ":write:before");
  // A ":torn" kill keeps a prefix of this very write on disk — the
  // "some pages were flushed before the crash" case a resume scan must
  // discard.  Half the bytes, at least one.
  if (!owner_.plan_.kill_point.empty() && n > 0 &&
      owner_.plan_.kill_point == tag_ + ":write:torn" &&
      ++owner_.kill_seen_ == owner_.plan_.kill_hits) {
    const std::size_t torn = std::max<std::size_t>(1, n / 2);
    write_all(*state_->real, data, torn);
    state_->real->sync(); // the torn prefix really is on disk
    state_->written += torn;
    state_->keep_on_kill = state_->written;
    owner_.points_hit_.push_back(tag_ + ":write:torn");
    owner_.die(tag_ + ":write:torn");
  }
  std::size_t cap = n;
  if (owner_.plan_.short_write_cap > 0) {
    cap = std::min(cap, owner_.plan_.short_write_cap);
  }
  const std::size_t wrote = state_->real->write_some(data, cap);
  state_->written += wrote;
  if (wrote == n) owner_.hit(tag_ + ":write:after");
  return wrote;
}

void FaultyWritableFile::sync() {
  KRONLAB_REQUIRE(!state_->closed, "sync on closed file");
  owner_.hit(tag_ + ":sync:before");
  state_->real->sync();
  state_->synced = state_->written;
  owner_.hit(tag_ + ":sync:after");
}

void FaultyWritableFile::close() {
  if (state_->closed) return;
  state_->real->close();
  state_->closed = true;
}

} // namespace kronlab::io
