#include "kronlab/io/durable.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "kronlab/common/registry.hpp"
#include "kronlab/obs/log.hpp"
#include "kronlab/obs/stats.hpp"
#include "kronlab/obs/trace.hpp"
#include "kronlab/obs/watchdog.hpp"

namespace kronlab::io {

namespace {

constexpr const char (&kSegMagic)[8] = magic::kSeg1;
constexpr const char (&kManMagic)[8] = magic::kMan1;
constexpr std::int64_t kManifestVersion = 1;
constexpr const char* kManifestName = "MANIFEST";

/// Hard cap on counts decoded from disk: four corrupt bytes must not
/// become a terabyte allocation (same posture as grb/binary_io).
constexpr std::int64_t kMaxPlausible = std::int64_t{1} << 40;

void append_words(std::string& out, const std::int64_t* words,
                  std::size_t n) {
  out.append(reinterpret_cast<const char*>(words),
             n * sizeof(std::int64_t));
}

/// Cursor over a byte buffer decoding 64-bit words; `what` labels the
/// failing field in errors.
struct WordReader {
  const std::string& bytes;
  std::size_t pos = 0;
  const std::string& path;

  std::int64_t next(const char* what) {
    if (pos + sizeof(std::int64_t) > bytes.size()) {
      throw validation_error("durable store: " + path +
                             " truncated while reading " + what);
    }
    std::int64_t w = 0;
    std::memcpy(&w, bytes.data() + pos, sizeof w);
    pos += sizeof w;
    return w;
  }
};

std::string shard_prefix(index_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%04lld-",
                static_cast<long long>(shard));
  return buf;
}

/// Write `bytes` to `<final>.tmp`, fsync, and atomically publish it under
/// `final_name` — the one commit primitive both segments and the
/// manifest use.
void write_sealed(FileOps& ops, const std::string& dir,
                  const std::string& final_name, const std::string& bytes) {
  static obs::Histogram& commit_hist = obs::histogram("io/segment_commit");
  obs::LatencyScope commit_latency(commit_hist);
  obs::StallGuard stall_guard("io/segment_commit");
  const std::string final_path = dir + "/" + final_name;
  const std::string tmp_path = final_path + ".tmp";
  {
    auto f = ops.create(tmp_path);
    write_all(*f, bytes.data(), bytes.size());
    f->sync();
    f->close();
  }
  ops.publish(tmp_path, final_path);
}

} // namespace

std::string segment_name(index_t shard, count_t seg_index) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "shard-%04lld-seg-%06lld.krnlseg",
                static_cast<long long>(shard),
                static_cast<long long>(seg_index));
  return buf;
}

count_t Manifest::total_edges() const {
  count_t total = 0;
  for (const auto& s : shards) total += s.edges;
  return total;
}

std::uint64_t write_segment(
    FileOps& ops, const std::string& dir, const SegmentHeader& header,
    const std::vector<std::pair<index_t, index_t>>& edges) {
  KRONLAB_TRACE_SPAN("io", "seal_segment");
  KRONLAB_REQUIRE(header.num_edges ==
                      static_cast<count_t>(edges.size()),
                  "segment header/payload edge count mismatch");
  std::string bytes(kSegMagic, sizeof kSegMagic);
  const std::int64_t head[5] = {
      static_cast<std::int64_t>(header.spec_hash), header.shard,
      header.seg_index, header.first_edge, header.num_edges};
  append_words(bytes, head, 5);
  const std::size_t payload_at = bytes.size();
  for (const auto& [p, q] : edges) {
    const std::int64_t rec[2] = {p, q};
    append_words(bytes, rec, 2);
  }
  const std::uint64_t payload_hash =
      fnv1a64_words(bytes.data() + payload_at, bytes.size() - payload_at);
  const std::uint64_t full_hash = fnv1a64_words(
      bytes.data() + sizeof kSegMagic, bytes.size() - sizeof kSegMagic);
  const auto trailer = static_cast<std::int64_t>(full_hash);
  append_words(bytes, &trailer, 1);
  write_sealed(ops, dir, segment_name(header.shard, header.seg_index),
               bytes);
  return payload_hash;
}

SegmentData read_segment(FileOps& ops, const std::string& path) {
  KRONLAB_TRACE_SPAN("io", "read_segment");
  const auto bytes = ops.read_file(path);
  if (!bytes) throw io_error("durable store: missing segment " + path);
  if (bytes->size() < sizeof kSegMagic ||
      std::memcmp(bytes->data(), kSegMagic, sizeof kSegMagic) != 0) {
    throw validation_error("durable store: " + path +
                           " is not a KRNLSEG1 segment (bad magic)");
  }
  WordReader r{*bytes, sizeof kSegMagic, path};
  SegmentData seg;
  seg.header.spec_hash = static_cast<std::uint64_t>(r.next("spec hash"));
  seg.header.shard = r.next("shard");
  seg.header.seg_index = r.next("segment index");
  seg.header.first_edge = r.next("first edge");
  seg.header.num_edges = r.next("edge count");
  if (seg.header.shard < 0 || seg.header.seg_index < 0 ||
      seg.header.first_edge < 0 || seg.header.num_edges < 0 ||
      seg.header.num_edges > kMaxPlausible) {
    throw validation_error("durable store: " + path +
                           " has an implausible header (corrupt)");
  }
  const std::size_t payload_at = r.pos;
  seg.edges.reserve(static_cast<std::size_t>(seg.header.num_edges));
  for (count_t e = 0; e < seg.header.num_edges; ++e) {
    const index_t p = r.next("edge record");
    const index_t q = r.next("edge record");
    seg.edges.emplace_back(p, q);
  }
  seg.payload_hash = fnv1a64_words(bytes->data() + payload_at, r.pos - payload_at);
  const auto stored = static_cast<std::uint64_t>(r.next("checksum"));
  const std::uint64_t computed = fnv1a64_words(
      bytes->data() + sizeof kSegMagic, r.pos - sizeof(std::int64_t) -
                                            sizeof kSegMagic);
  if (stored != computed) {
    throw validation_error("durable store: " + path +
                           " fails its FNV-1a checksum (corrupt segment)");
  }
  if (r.pos != bytes->size()) {
    throw validation_error("durable store: " + path +
                           " has trailing garbage past the checksum");
  }
  return seg;
}

void write_manifest(FileOps& ops, const std::string& dir,
                    const Manifest& man) {
  KRONLAB_TRACE_SPAN("io", "commit_manifest");
  std::string bytes(kManMagic, sizeof kManMagic);
  const std::int64_t head[5] = {
      kManifestVersion, static_cast<std::int64_t>(man.spec_hash),
      static_cast<std::int64_t>(man.shards.size()), man.segment_edges,
      man.total_edges()};
  append_words(bytes, head, 5);
  for (const auto& s : man.shards) {
    const std::int64_t rec[3] = {s.segments, s.edges,
                                 static_cast<std::int64_t>(s.chain_hash)};
    append_words(bytes, rec, 3);
  }
  const std::uint64_t hash = fnv1a64_words(bytes.data() + sizeof kManMagic,
                                     bytes.size() - sizeof kManMagic);
  const auto trailer = static_cast<std::int64_t>(hash);
  append_words(bytes, &trailer, 1);
  write_sealed(ops, dir, kManifestName, bytes);
}

std::optional<Manifest> read_manifest(FileOps& ops,
                                      const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  const auto bytes = ops.read_file(path);
  if (!bytes) return std::nullopt;
  if (bytes->size() < sizeof kManMagic ||
      std::memcmp(bytes->data(), kManMagic, sizeof kManMagic) != 0) {
    throw validation_error("durable store: " + path +
                           " is not a KRNLMAN1 manifest (bad magic)");
  }
  // The manifest is only ever published whole (atomic rename), so any
  // checksum failure here means corruption, not a crash window.
  if (bytes->size() < sizeof kManMagic + sizeof(std::int64_t)) {
    throw validation_error("durable store: " + path + " is truncated");
  }
  const std::uint64_t computed =
      fnv1a64_words(bytes->data() + sizeof kManMagic,
              bytes->size() - sizeof kManMagic - sizeof(std::int64_t));
  std::int64_t stored = 0;
  std::memcpy(&stored, bytes->data() + bytes->size() - sizeof stored,
              sizeof stored);
  if (static_cast<std::uint64_t>(stored) != computed) {
    throw validation_error("durable store: " + path +
                           " fails its FNV-1a checksum (corrupt manifest)");
  }
  WordReader r{*bytes, sizeof kManMagic, path};
  const std::int64_t version = r.next("version");
  if (version != kManifestVersion) {
    throw validation_error("durable store: " + path +
                           " has unsupported manifest version " +
                           std::to_string(version));
  }
  Manifest man;
  man.spec_hash = static_cast<std::uint64_t>(r.next("spec hash"));
  const std::int64_t shards = r.next("shard count");
  man.segment_edges = r.next("segment edges");
  const count_t total = r.next("total edges");
  if (shards < 0 || shards > (std::int64_t{1} << 20) ||
      man.segment_edges <= 0 || man.segment_edges > kMaxPlausible) {
    throw validation_error("durable store: " + path +
                           " has implausible shape (corrupt)");
  }
  man.shards.resize(static_cast<std::size_t>(shards));
  for (auto& s : man.shards) {
    s.segments = r.next("shard segments");
    s.edges = r.next("shard edges");
    s.chain_hash = static_cast<std::uint64_t>(r.next("shard chain hash"));
    if (s.segments < 0 || s.edges < 0 || s.segments > kMaxPlausible ||
        s.edges > kMaxPlausible) {
      throw validation_error("durable store: " + path +
                             " has implausible shard progress (corrupt)");
    }
  }
  if (man.total_edges() != total) {
    throw validation_error("durable store: " + path +
                           " total-edges field disagrees with its shards");
  }
  return man;
}

ScanResult scan_store(FileOps& ops, const std::string& dir,
                      const Manifest& expected) {
  KRONLAB_TRACE_SPAN("io", "scan_store");
  ScanResult res;
  const auto present = read_manifest(ops, dir);
  if (present) {
    if (present->spec_hash != expected.spec_hash) {
      throw validation_error(
          "durable store: " + dir +
          " was generated from a different spec (manifest spec hash "
          "mismatch) — refusing to resume into it");
    }
    if (present->shards.size() != expected.shards.size() ||
        present->segment_edges != expected.segment_edges) {
      throw validation_error(
          "durable store: " + dir +
          " has a different shard/segment layout (shards=" +
          std::to_string(present->shards.size()) + " segment_edges=" +
          std::to_string(present->segment_edges) +
          ") — resume must reuse the original layout");
    }
    res.manifest = *present;
  } else {
    res.manifest = expected; // fresh store
  }

  // Index every file in the directory up front.
  std::vector<std::string> names;
  {
    auto all = ops.list_dir(dir);
    names.assign(all.begin(), all.end());
  }
  for (const auto& name : names) {
    if (name.size() >= 4 && name.rfind(".tmp") == name.size() - 4) {
      obs::log(obs::LogLevel::warn, "io", "scan_discard_tmp")
          .field("dir", dir)
          .field("file", name);
      ops.remove(dir + "/" + name); // crash leftovers, never meaningful
      ++res.discarded_files;
    }
  }

  bool adopted_any = false;
  for (index_t s = 0;
       s < static_cast<index_t>(res.manifest.shards.size()); ++s) {
    auto& prog = res.manifest.shards[static_cast<std::size_t>(s)];
    // 1. Every committed segment must verify and chain-hash to the
    //    manifest record.
    std::uint64_t chain = kFnvBasis;
    count_t edges = 0;
    for (count_t g = 0; g < prog.segments; ++g) {
      static obs::Histogram& validate_hist =
          obs::histogram("io/segment_validate");
      obs::LatencyScope validate_latency(validate_hist);
      const std::string path = dir + "/" + segment_name(s, g);
      const SegmentData seg = read_segment(ops, path);
      if (seg.header.spec_hash != expected.spec_hash ||
          seg.header.shard != s || seg.header.seg_index != g ||
          seg.header.first_edge != edges) {
        throw validation_error("durable store: " + path +
                               " disagrees with the manifest's committed "
                               "range (corrupt store)");
      }
      for (const auto& [p, q] : seg.edges) {
        const std::int64_t rec[2] = {p, q};
        chain = fnv1a64_words(rec, sizeof rec, chain);
      }
      edges += seg.header.num_edges;
      ++res.verified_segments;
    }
    if (edges != prog.edges || chain != prog.chain_hash) {
      throw validation_error(
          "durable store: shard " + std::to_string(s) +
          " committed segments do not reproduce the manifest's cursor/"
          "chain hash (corrupt store)");
    }
    // 2. Adopt the crash window: the exact next sealed segment, if whole.
    for (;;) {
      const std::string next_name = segment_name(s, prog.segments);
      if (std::find(names.begin(), names.end(), next_name) ==
          names.end()) {
        break;
      }
      const std::string path = dir + "/" + next_name;
      bool ok = true;
      SegmentData seg;
      try {
        seg = read_segment(ops, path);
      } catch (const error&) {
        ok = false; // torn or corrupt — regenerate it instead
      }
      ok = ok && seg.header.spec_hash == expected.spec_hash &&
           seg.header.shard == s &&
           seg.header.seg_index == prog.segments &&
           seg.header.first_edge == prog.edges;
      if (!ok) {
        // The crash window's next segment is torn, corrupt, or from a
        // different spec: drop it and let generation redo the range.
        obs::log(obs::LogLevel::warn, "io", "scan_reject_next_segment")
            .field("path", path)
            .field("shard", static_cast<std::int64_t>(s));
        ops.remove(path);
        ++res.discarded_files;
        break;
      }
      for (const auto& [p, q] : seg.edges) {
        const std::int64_t rec[2] = {p, q};
        prog.chain_hash = fnv1a64_words(rec, sizeof rec, prog.chain_hash);
      }
      prog.edges += seg.header.num_edges;
      prog.segments += 1;
      ++res.adopted_segments;
      adopted_any = true;
      trace::instant("io", "resume_adopt_segment");
    }
    // 3. Anything of this shard past the (possibly extended) committed
    //    range is stale — delete so a later seal can never collide with
    //    a file from another life.
    for (const auto& name : names) {
      if (name.rfind(shard_prefix(s), 0) != 0) continue;
      if (name.size() < 8 || name.rfind(".krnlseg") != name.size() - 8) {
        continue;
      }
      // shard-XXXX-seg-NNNNNN.krnlseg → NNNNNN
      const auto seg_at = name.find("-seg-");
      if (seg_at == std::string::npos) continue;
      const count_t idx = std::strtoll(name.c_str() + seg_at + 5, nullptr, 10);
      if (idx >= prog.segments) {
        obs::log(obs::LogLevel::warn, "io", "scan_discard_stale_segment")
            .field("dir", dir)
            .field("file", name)
            .field("committed", static_cast<std::int64_t>(prog.segments));
        ops.remove(dir + "/" + name);
        ++res.discarded_files;
      }
    }
  }
  if (adopted_any) {
    write_manifest(ops, dir, res.manifest); // re-commit the adopted state
  }
  return res;
}

} // namespace kronlab::io
