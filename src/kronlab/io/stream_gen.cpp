#include "kronlab/io/stream_gen.hpp"

#include <utility>

#include "kronlab/grb/binary_io.hpp" // fnv1a64
#include "kronlab/obs/log.hpp"
#include "kronlab/obs/trace.hpp"
#include "kronlab/parallel/metrics.hpp"

namespace kronlab::io {

using grb::fnv1a64;

namespace {

void hash_factor(std::uint64_t& h, const graph::Adjacency& f) {
  const std::int64_t shape[2] = {f.nrows(), f.ncols()};
  h = fnv1a64(shape, sizeof shape, h);
  h = fnv1a64(f.row_ptr().data(),
              f.row_ptr().size() * sizeof(f.row_ptr()[0]), h);
  h = fnv1a64(f.col_idx().data(),
              f.col_idx().size() * sizeof(f.col_idx()[0]), h);
}

/// One shard's segment-buffered durable writer: collects edges, seals a
/// segment every `segment_edges` records, and commits the manifest after
/// every seal — the only points at which the store's cursor advances.
class ShardWriter {
public:
  ShardWriter(FileOps& ops, const std::string& dir, Manifest& man,
              index_t shard, std::uint64_t spec)
      : ops_(ops), dir_(dir), man_(man), shard_(shard), spec_(spec) {
    buf_.reserve(static_cast<std::size_t>(man.segment_edges));
  }

  void push(index_t p, index_t q) {
    buf_.emplace_back(p, q);
    if (static_cast<count_t>(buf_.size()) == man_.segment_edges) seal();
  }

  /// Seal whatever remains (the shard's final, possibly short, segment).
  void finish() {
    if (!buf_.empty()) seal();
  }

  [[nodiscard]] count_t segments_sealed() const { return sealed_; }

private:
  void seal() {
    auto& prog = man_.shards[static_cast<std::size_t>(shard_)];
    SegmentHeader h;
    h.spec_hash = spec_;
    h.shard = shard_;
    h.seg_index = prog.segments;
    h.first_edge = prog.edges;
    h.num_edges = static_cast<count_t>(buf_.size());
    const std::uint64_t payload_hash = write_segment(ops_, dir_, h, buf_);
    for (const auto& [p, q] : buf_) {
      const std::int64_t rec[2] = {p, q};
      prog.chain_hash = fnv1a64_words(rec, sizeof rec, prog.chain_hash);
    }
    prog.segments += 1;
    prog.edges += h.num_edges;
    buf_.clear();
    write_manifest(ops_, dir_, man_);
    ++sealed_;
    obs::log(obs::LogLevel::debug, "io", "segment_sealed")
        .field("shard", static_cast<std::int64_t>(shard_))
        .field("seg", static_cast<std::int64_t>(h.seg_index))
        .field("edges", static_cast<std::int64_t>(h.num_edges))
        .field("payload_hash", payload_hash);
    trace::counter("io", "edges_committed",
                   static_cast<double>(man_.total_edges()));
  }

  FileOps& ops_;
  const std::string& dir_;
  Manifest& man_;
  index_t shard_;
  std::uint64_t spec_;
  std::vector<std::pair<index_t, index_t>> buf_;
  count_t sealed_ = 0;
};

} // namespace

std::uint64_t spec_hash(const kron::BipartiteKronecker& kp) {
  std::uint64_t h = kFnvBasis;
  hash_factor(h, kp.left());
  hash_factor(h, kp.right());
  const std::int64_t mode = static_cast<std::int64_t>(kp.mode());
  h = fnv1a64(&mode, sizeof mode, h);
  return h;
}

// ---------------------------------------------------------------------------
// StreamValidator

StreamValidator::StreamValidator(const kron::GroundTruthOracle& oracle,
                                 std::uint64_t seed, std::uint64_t rate)
    : oracle_(&oracle), seed_(seed), rate_(rate) {
  KRONLAB_REQUIRE(rate_ >= 1, "sample rate must be >= 1");
}

bool StreamValidator::sampled(std::uint64_t x) const {
  if (rate_ == 1) return true;
  x ^= seed_;
  return fnv1a64(&x, sizeof x) % rate_ == 0;
}

void StreamValidator::begin_shard(bool first_row_partial) {
  row_ = -1;
  row_edges_ = 0;
  row_partial_ = false;
  next_row_partial_ = first_row_partial;
}

void StreamValidator::close_row() {
  if (row_ < 0 || row_partial_ ||
      !sampled(static_cast<std::uint64_t>(row_))) {
    return;
  }
  const count_t want = oracle_->vertex(row_).degree;
  if (row_edges_ != want) {
    throw validation_error(
        "stream validation: row " + std::to_string(row_) + " emitted " +
        std::to_string(row_edges_) + " edges but the ground-truth degree is " +
        std::to_string(want) + " — generated stream has drifted");
  }
  ++rows_checked_;
}

void StreamValidator::observe(index_t p, index_t q) {
  if (p != row_) {
    close_row();
    if (row_ >= 0 && p < row_) {
      throw validation_error(
          "stream validation: rows out of order (" + std::to_string(p) +
          " after " + std::to_string(row_) + ") — stream is not row-major");
    }
    row_ = p;
    row_edges_ = 0;
    row_partial_ = next_row_partial_;
    next_row_partial_ = false;
  }
  ++row_edges_;
  const auto key = static_cast<std::uint64_t>(p) * 0x9e3779b97f4a7c15ULL ^
                   static_cast<std::uint64_t>(q);
  if (sampled(key)) {
    if (!oracle_->try_edge(p, q)) {
      throw validation_error(
          "stream validation: (" + std::to_string(p) + ", " +
          std::to_string(q) +
          ") is not an edge of the product — generated stream has drifted");
    }
    ++edges_checked_;
  }
}

void StreamValidator::end_shard() {
  close_row();
  row_ = -1;
  row_edges_ = 0;
}

// ---------------------------------------------------------------------------
// generate_durable

StreamGenReport generate_durable(FileOps& ops,
                                 const kron::BipartiteKronecker& kp,
                                 const StreamGenOptions& opt) {
  KRONLAB_TRACE_SPAN("io", "generate_durable");
  metrics::KernelScope kernel("durable_stream_gen");
  KRONLAB_REQUIRE(!opt.dir.empty(), "output directory required");
  KRONLAB_REQUIRE(opt.shards >= 1, "need at least one shard");
  KRONLAB_REQUIRE(opt.segment_edges >= 1, "segment_edges must be >= 1");

  ops.make_dir(opt.dir);
  const std::uint64_t spec = spec_hash(kp);
  Manifest expected;
  expected.spec_hash = spec;
  expected.segment_edges = opt.segment_edges;
  expected.shards.resize(static_cast<std::size_t>(opt.shards));

  StreamGenReport rep;
  if (opt.resume) {
    const ScanResult scan = scan_store(ops, opt.dir, expected);
    rep.manifest = scan.manifest;
    rep.adopted_segments = scan.adopted_segments;
    rep.discarded_files = scan.discarded_files;
    rep.verified_segments = scan.verified_segments;
  } else {
    if (read_manifest(ops, opt.dir)) {
      throw io_error("durable store: " + opt.dir +
                     " already holds a manifest — pass --resume to "
                     "continue it, or generate into a fresh directory");
    }
    // Leftovers from a run that died before its first commit carry no
    // state worth adopting in fresh mode; clear them.
    for (const auto& name : ops.list_dir(opt.dir)) {
      if (ops.remove(opt.dir + "/" + name)) ++rep.discarded_files;
    }
    rep.manifest = expected;
  }

  const kron::PartitionedStream part(kp, opt.shards);
  kron::GroundTruthOracle oracle(kp);
  StreamValidator validator(oracle, opt.sample_seed,
                            opt.validate ? opt.sample_rate : 1);

  for (index_t s = 0; s < opt.shards; ++s) {
    KRONLAB_TRACE_SPAN("io", "generate_shard");
    const count_t cursor =
        rep.manifest.shards[static_cast<std::size_t>(s)].edges;
    const count_t total = part.entries_of(s);
    KRONLAB_DBG_ASSERT(cursor <= total, "cursor past the shard's stream");
    rep.edges_resumed += cursor;
    if (cursor == total) continue; // shard already complete
    ShardWriter writer(ops, opt.dir, rep.manifest, s, spec);
    if (opt.validate) validator.begin_shard(/*first_row_partial=*/cursor > 0);
    part.for_each_entry_from(s, cursor, [&](index_t p, index_t q) {
      if (opt.validate) validator.observe(p, q);
      writer.push(p, q);
      ++rep.edges_written;
    });
    if (opt.validate) validator.end_shard();
    writer.finish();
    rep.segments_sealed += writer.segments_sealed();
  }
  rep.rows_checked = validator.rows_checked();
  rep.edges_checked = validator.edges_checked();
  trace::counter("io", "edges_committed",
                 static_cast<double>(rep.manifest.total_edges()));
  return rep;
}

// ---------------------------------------------------------------------------
// verify_store

VerifyReport verify_store(FileOps& ops,
                          const kron::BipartiteKronecker& kp,
                          const StreamGenOptions& opt) {
  KRONLAB_TRACE_SPAN("io", "verify_store");
  metrics::KernelScope kernel("durable_verify");
  const auto man = read_manifest(ops, opt.dir);
  if (!man) {
    throw io_error("durable store: " + opt.dir + " has no manifest");
  }
  Manifest expected;
  expected.spec_hash = spec_hash(kp);
  expected.segment_edges = man->segment_edges;
  expected.shards.resize(man->shards.size());
  // scan_store re-checksums every committed segment and re-folds the
  // chains — the integrity half of verification.
  const ScanResult scan = scan_store(ops, opt.dir, expected);

  const auto shards = static_cast<index_t>(scan.manifest.shards.size());
  const kron::PartitionedStream part(kp, shards);
  kron::GroundTruthOracle oracle(kp);
  StreamValidator validator(oracle, opt.sample_seed, opt.sample_rate);

  VerifyReport rep;
  for (index_t s = 0; s < shards; ++s) {
    const auto& prog = scan.manifest.shards[static_cast<std::size_t>(s)];
    if (prog.edges != part.entries_of(s)) {
      throw validation_error(
          "durable store: shard " + std::to_string(s) + " holds " +
          std::to_string(prog.edges) + " of " +
          std::to_string(part.entries_of(s)) +
          " edges — store is incomplete, not verifiable as final output");
    }
    validator.begin_shard(/*first_row_partial=*/false);
    for (count_t g = 0; g < prog.segments; ++g) {
      const SegmentData seg =
          read_segment(ops, opt.dir + "/" + segment_name(s, g));
      for (const auto& [p, q] : seg.edges) validator.observe(p, q);
      rep.edges += seg.header.num_edges;
      ++rep.segments;
    }
    validator.end_shard();
  }
  rep.rows_checked = validator.rows_checked();
  rep.edges_checked = validator.edges_checked();
  return rep;
}

} // namespace kronlab::io
