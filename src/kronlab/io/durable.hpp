// kronlab/io/durable.hpp
//
// Durable sharded edge output: KRNLSEG1 segments + a KRNLMAN1 manifest.
//
// The crash-tolerance backbone of extreme-scale streaming generation
// (io/stream_gen.hpp): a multi-hour run must survive a kill at any
// instruction boundary losing at most one uncommitted segment.
//
// KRNLSEG1 segment file (little-endian 64-bit words after an 8-byte
// magic):
//
//   "KRNLSEG1" | spec_hash | shard | seg_index | first_edge | num_edges
//   | (p, q) * num_edges | fnv1a64_words(header..payload)
//
// Fixed-size binary edge records; the trailing FNV-1a word covers every
// word between the magic and itself, so a torn or bit-flipped segment is
// detected on read.  `first_edge` is the edge ordinal within the shard's
// deterministic stream — segments of one shard tile [0, edges) exactly.
//
// Commit protocol (all through io/file_ops.hpp):
//
//   1. the segment is written to `<final>.tmp`, fsync'd, and sealed by an
//      atomic rename to its final name — a crash mid-write leaves only a
//      `.tmp` the resume scan deletes;
//   2. the manifest is rewritten (same write-temp → fsync → rename
//      dance) recording the new per-shard committed state.
//
// KRNLMAN1 manifest:
//
//   "KRNLMAN1" | version | spec_hash | shards | segment_edges
//   | total_edges | per shard: (segments, edges, chain_hash)
//   | fnv1a64_words(all preceding words)
//
// `chain_hash` is the word-folded FNV-1a of the shard's committed
// payload words, folded segment after segment — the checksum over the
// concatenated committed segments that the kill/resume matrix compares
// against an uninterrupted run.  The stream cursor of shard s is simply
// (s, edges_s): generation resumes at that edge ordinal.
//
// Resume invariants (scan_store):
//   * the manifest, if present, must parse, checksum, and match the
//     spec hash / shard count / segment size of the resuming run;
//   * every committed segment must exist, checksum, and chain-hash to
//     the manifest's record — anything else is a validation_error (the
//     store is corrupt, not merely behind);
//   * a sealed segment PAST the committed range is adopted iff it is the
//     exact next segment (index, first_edge, spec hash, checksum all
//     match) — the crash-between-seal-and-manifest-commit window;
//     otherwise it is deleted and regenerated;
//   * `.tmp` files are always deleted.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "kronlab/common/types.hpp"
#include "kronlab/io/file_ops.hpp"

namespace kronlab::io {

/// FNV-1a offset basis — chain hashes start here.
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

/// Word-folded FNV-1a: one xor-multiply per little-endian int64 word
/// instead of per byte.  Every durable-store checksum and chain hash
/// uses this fold — resume re-verifies the whole committed prefix, so
/// the hash sits on the restart hot path, where byte-serial FNV would
/// make every restart pay a large fraction of a cold run just
/// re-hashing (bench_streaming's `resume_scan` section).  A flipped bit
/// still cascades through every later word.  `nbytes` must be a
/// multiple of 8: the formats are whole-word by construction.
[[nodiscard]] inline std::uint64_t fnv1a64_words(
    const void* data, std::size_t nbytes,
    std::uint64_t basis = kFnvBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = basis;
  for (std::size_t i = 0; i + 8 <= nbytes; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * 0x100000001b3ULL;
  }
  return h;
}

struct SegmentHeader {
  std::uint64_t spec_hash = 0;
  index_t shard = 0;
  count_t seg_index = 0;  ///< 0-based, dense per shard
  count_t first_edge = 0; ///< shard-stream ordinal of the first record
  count_t num_edges = 0;
};

/// One decoded segment.  `payload_hash` is the FNV-1a over the payload
/// words alone (the unit the manifest chains).
struct SegmentData {
  SegmentHeader header;
  std::vector<std::pair<index_t, index_t>> edges;
  std::uint64_t payload_hash = kFnvBasis;
};

/// Final name of shard `shard`'s segment `seg_index` inside the store
/// directory ("shard-0003-seg-000042.krnlseg").
[[nodiscard]] std::string segment_name(index_t shard, count_t seg_index);

/// Write + seal one segment (write-temp → fsync → atomic rename).
/// Returns the payload FNV-1a.  Throws io_error on any failed step; the
/// final name is never visible unless every byte is on disk.
[[nodiscard]] std::uint64_t write_segment(
    FileOps& ops, const std::string& dir, const SegmentHeader& header,
    const std::vector<std::pair<index_t, index_t>>& edges);

/// Read + verify one segment file; throws io_error when the file is
/// missing/unreadable and validation_error when it is torn or fails its
/// checksum.
[[nodiscard]] SegmentData read_segment(FileOps& ops,
                                       const std::string& path);

/// Per-shard committed state.
struct ShardProgress {
  count_t segments = 0; ///< committed (sealed + manifest-recorded)
  count_t edges = 0;    ///< committed edge records = resume cursor
  std::uint64_t chain_hash = kFnvBasis; ///< FNV over committed payloads
};

struct Manifest {
  std::uint64_t spec_hash = 0;
  count_t segment_edges = 0; ///< records per segment (last may be short)
  std::vector<ShardProgress> shards;

  [[nodiscard]] count_t total_edges() const;
};

/// Atomically replace the store's manifest (write-temp → fsync → rename).
void write_manifest(FileOps& ops, const std::string& dir,
                    const Manifest& man);

/// Read + verify the manifest; nullopt when none exists yet, io_error /
/// validation_error when present but unreadable / corrupt.
[[nodiscard]] std::optional<Manifest> read_manifest(FileOps& ops,
                                                    const std::string& dir);

/// Outcome of a resume scan.
struct ScanResult {
  Manifest manifest;
  count_t adopted_segments = 0;   ///< sealed-but-uncommitted, re-committed
  count_t discarded_files = 0;    ///< tmp / stale files deleted
  count_t verified_segments = 0;  ///< committed segments re-checksummed
};

/// Enforce the resume invariants on `dir` (see file comment) and return
/// the authoritative committed state.  `expected` carries the resuming
/// run's spec hash / shard count / segment size; a mismatch against a
/// present manifest throws validation_error (resuming a different spec
/// into an existing store is never silently "fixed").  When no manifest
/// exists the store is treated as fresh.
[[nodiscard]] ScanResult scan_store(FileOps& ops, const std::string& dir,
                                    const Manifest& expected);

} // namespace kronlab::io
