// kronlab/io/stream_gen.hpp
//
// Crash-tolerant resumable streaming generation.
//
// generate_durable streams a Kronecker product's edges shard by shard
// (kron::PartitionedStream row partition) into a durable store of
// KRNLSEG1 segments + a KRNLMAN1 manifest (io/durable.hpp).  The manifest
// commits only at segment boundaries, so after ANY crash the resume path
// (opt.resume) scans the store, discards torn tails, adopts the one
// possible sealed-but-uncommitted segment, fast-forwards the entry stream
// arithmetically to the committed cursor
// (PartitionedStream::for_each_entry_from), and continues — producing a
// store byte-identical to an uninterrupted run.
//
// While generating, a StreamValidator samples the edge stream against the
// factored ground-truth oracle in O(1) memory: hash-sampled rows get an
// exact degree check (edges arrive row-major, so one counter suffices)
// and hash-sampled edges get an exact membership probe.  Any disagreement
// is a validation_error — generation aborts rather than committing a
// drifting stream.

#pragma once

#include <cstdint>
#include <string>

#include "kronlab/io/durable.hpp"
#include "kronlab/kron/oracle.hpp"
#include "kronlab/kron/partition.hpp"

namespace kronlab::io {

/// Spec hash of the generation input: factor shapes, structure, and mode.
/// Two runs share a durable store iff their spec hashes agree (layout —
/// shard count, segment size — is checked separately by scan_store).
[[nodiscard]] std::uint64_t spec_hash(const kron::BipartiteKronecker& kp);

struct StreamGenOptions {
  std::string dir;            ///< store directory (created if missing)
  index_t shards = 4;         ///< PartitionedStream parts = output shards
  count_t segment_edges = 1 << 14; ///< records per segment (commit grain)
  bool resume = false;        ///< scan + continue instead of fresh start

  bool validate = true;       ///< on-the-fly oracle validation
  std::uint64_t sample_seed = 1;
  std::uint64_t sample_rate = 64; ///< 1-in-N hash sampling (1 = everything)
};

struct StreamGenReport {
  count_t edges_written = 0;  ///< records generated and sealed this run
  count_t edges_resumed = 0;  ///< records skipped (already committed)
  count_t segments_sealed = 0;
  count_t adopted_segments = 0;  ///< from scan_store
  count_t discarded_files = 0;   ///< from scan_store
  count_t verified_segments = 0; ///< from scan_store
  count_t rows_checked = 0;   ///< validator degree checks performed
  count_t edges_checked = 0;  ///< validator membership probes performed
  Manifest manifest;          ///< final committed state
};

/// O(1)-memory streaming validator: edges must arrive row-major per
/// shard.  Throws validation_error the moment the stream contradicts the
/// oracle.  Deterministic per (seed, rate).
class StreamValidator {
public:
  StreamValidator(const kron::GroundTruthOracle& oracle,
                  std::uint64_t seed, std::uint64_t rate);

  /// Start a shard's stream.  `first_row_partial` marks the first row
  /// seen as resumed-into (its prefix is already on disk), exempting it
  /// from the degree check.
  void begin_shard(bool first_row_partial);

  /// Observe the next edge of the current shard (row-major order).
  void observe(index_t p, index_t q);

  /// Close out the shard (checks the last open row).
  void end_shard();

  [[nodiscard]] count_t rows_checked() const { return rows_checked_; }
  [[nodiscard]] count_t edges_checked() const { return edges_checked_; }

private:
  [[nodiscard]] bool sampled(std::uint64_t x) const;
  void close_row();

  const kron::GroundTruthOracle* oracle_;
  std::uint64_t seed_;
  std::uint64_t rate_;
  index_t row_ = -1;          ///< current row, -1 = none yet
  count_t row_edges_ = 0;     ///< edges seen of the current row
  bool row_partial_ = false;  ///< current row resumed mid-way: skip check
  bool next_row_partial_ = false;
  count_t rows_checked_ = 0;
  count_t edges_checked_ = 0;
};

/// Stream kp's edges into a durable store under `ops` (see file comment).
/// Fresh runs refuse a directory that already holds a manifest (io_error)
/// — resuming a store is explicit, never accidental.  Throws
/// validation_error when resuming against a different spec/layout, when
/// the store is corrupt, or when validation catches stream drift.
StreamGenReport generate_durable(FileOps& ops,
                                 const kron::BipartiteKronecker& kp,
                                 const StreamGenOptions& opt);

struct VerifyReport {
  count_t segments = 0;
  count_t edges = 0;
  count_t rows_checked = 0;
  count_t edges_checked = 0;
};

/// Re-read a COMPLETE store and validate it end to end: every segment
/// checksums and tiles its shard exactly, the manifest chains reproduce,
/// per-shard totals equal the partition's entry counts, and the decoded
/// edge stream passes the StreamValidator at (seed, rate).  Throws
/// io_error / validation_error as appropriate.
VerifyReport verify_store(FileOps& ops,
                          const kron::BipartiteKronecker& kp,
                          const StreamGenOptions& opt);

} // namespace kronlab::io
