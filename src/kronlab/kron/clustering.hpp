// kronlab/kron/clustering.hpp
//
// Bipartite edge clustering coefficients (Def. 10) and the Thm 6 scaling
// law: Γ_C(p,q) ≥ ψ(i,j,k,l)·Γ_A(i,j)·Γ_B(k,l) with ψ ∈ [1/9, 1) whenever
// all four factor degrees are ≥ 2.

#pragma once

#include <optional>

#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::kron {

/// Γ_A(i,j) = ◇_ij / ((d_i−1)(d_j−1)).  Returns nullopt when a degree is 1
/// (the edge cannot participate in any square; the coefficient is 0/0).
std::optional<double> edge_clustering(count_t squares, count_t d_i,
                                      count_t d_j);

/// Per-edge clustering coefficients of one factor graph, aligned with its
/// CSR entries; degree-1 edges map to 0.
grb::Csr<double> edge_clustering_matrix(const Adjacency& a);

/// ψ(i,j,k,l) of Thm 6.
double psi(count_t d_i, count_t d_j, count_t d_k, count_t d_l);

/// One sampled product edge with everything Thm 6 relates.
struct ClusteringSample {
  index_t p = 0, q = 0;      ///< product edge
  double gamma_c = 0.0;      ///< Γ_C(p,q)
  double gamma_a = 0.0;      ///< Γ_M(i,j)
  double gamma_b = 0.0;      ///< Γ_B(k,l)
  double psi = 0.0;          ///< ψ(i,j,k,l)
  double bound = 0.0;        ///< ψ·Γ_M·Γ_B (the Thm 6 lower bound)
};

/// Evaluate Γ_C and the Thm 6 bound on every product edge whose factor
/// degrees are all ≥ 2 (the theorem's hypothesis), without materializing C.
/// `max_samples` truncates the scan for benches; 0 = all edges.
std::vector<ClusteringSample> clustering_samples(
    const BipartiteKronecker& kp, index_t max_samples = 0);

} // namespace kronlab::kron
