// kronlab/kron/factored.hpp
//
// Factored (sublinear-memory) representations of product-level statistics.
//
// The paper's key computational observation (§I): if a statistic of the
// product C = M ⊗ B has a Kronecker formula f(C) = Σ_s c_s · (g_s ⊗ h_s)
// with a small number of terms, then storing only the factor-sized g_s, h_s
// gives O(1) point queries, O(|f(C)|) materialization, and O(Σ|g_s|+|h_s|)
// global reductions — sublinear in |E_C|.
//
// FactoredVector covers vertex statistics (degrees, s_C of Thms 3–4);
// FactoredMatrix covers edge statistics (◇_C of Thm 5).  Both carry an
// integer `divisor` so formulas like s_C = ½[...] stay in exact integer
// arithmetic: the division is applied after the term sum, where the result
// is provably integral.

#pragma once

#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/csr.hpp"
#include "kronlab/grb/kron.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/grb/vector.hpp"
#include "kronlab/kron/index_map.hpp"

namespace kronlab::kron {

/// Σ_s c_s · (g_s ⊗ h_s) / divisor over dense factor vectors.
class FactoredVector {
public:
  struct Term {
    count_t coeff;
    grb::Vector<count_t> g; ///< left-factor vector (length n_M)
    grb::Vector<count_t> h; ///< right-factor vector (length n_B)
  };

  FactoredVector(index_t n_left, index_t n_right, count_t divisor = 1)
      : n_left_(n_left), n_right_(n_right), divisor_(divisor) {
    KRONLAB_REQUIRE(n_left >= 0 && n_right >= 0, "negative factor size");
    KRONLAB_REQUIRE(divisor >= 1, "divisor must be >= 1");
  }

  void add_term(count_t coeff, grb::Vector<count_t> g,
                grb::Vector<count_t> h) {
    KRONLAB_REQUIRE(g.size() == n_left_ && h.size() == n_right_,
                    "factored term has wrong factor sizes");
    terms_.push_back({coeff, std::move(g), std::move(h)});
  }

  [[nodiscard]] index_t size() const { return n_left_ * n_right_; }
  [[nodiscard]] index_t num_terms() const {
    return static_cast<index_t>(terms_.size());
  }
  [[nodiscard]] count_t divisor() const { return divisor_; }
  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }

  /// Point query: value at product index p = γ(i, k).  O(#terms).
  [[nodiscard]] count_t at(index_t p) const {
    KRONLAB_DBG_ASSERT(p >= 0 && p < size(), "product index out of range");
    const index_t i = alpha(p, n_right_);
    const index_t k = beta(p, n_right_);
    count_t acc = 0;
    for (const Term& t : terms_) acc += t.coeff * t.g[i] * t.h[k];
    KRONLAB_DBG_ASSERT(acc % divisor_ == 0,
                       "factored value not divisible — formula bug");
    return acc / divisor_;
  }

  /// Σ_p value(p), computed in factor space:
  /// Σ_s c_s·sum(g_s)·sum(h_s) / divisor.  O(Σ |g_s| + |h_s|).
  [[nodiscard]] count_t reduce() const {
    count_t acc = 0;
    for (const Term& t : terms_) {
      acc += t.coeff * grb::reduce(t.g) * grb::reduce(t.h);
    }
    KRONLAB_DBG_ASSERT(acc % divisor_ == 0,
                       "factored reduction not divisible — formula bug");
    return acc / divisor_;
  }

  /// Dense product-length vector (O(|V_C|) memory — validation only).
  [[nodiscard]] grb::Vector<count_t> materialize() const {
    grb::Vector<count_t> out(size(), 0);
    for (const Term& t : terms_) {
      index_t p = 0;
      for (index_t i = 0; i < n_left_; ++i) {
        const count_t gi = t.coeff * t.g[i];
        for (index_t k = 0; k < n_right_; ++k, ++p) out[p] += gi * t.h[k];
      }
    }
    for (index_t p = 0; p < size(); ++p) {
      KRONLAB_DBG_ASSERT(out[p] % divisor_ == 0,
                         "factored value not divisible — formula bug");
      out[p] /= divisor_;
    }
    return out;
  }

private:
  index_t n_left_;
  index_t n_right_;
  count_t divisor_;
  std::vector<Term> terms_;
};

/// Σ_s c_s · (G_s ⊗ H_s) / divisor over factor-sized sparse matrices.
class FactoredMatrix {
public:
  struct Term {
    count_t coeff;
    grb::Csr<count_t> g; ///< left-factor matrix (n_M × n_M)
    grb::Csr<count_t> h; ///< right-factor matrix (n_B × n_B)
  };

  FactoredMatrix(index_t n_left, index_t n_right, count_t divisor = 1)
      : n_left_(n_left), n_right_(n_right), divisor_(divisor) {
    KRONLAB_REQUIRE(n_left >= 0 && n_right >= 0, "negative factor size");
    KRONLAB_REQUIRE(divisor >= 1, "divisor must be >= 1");
  }

  void add_term(count_t coeff, grb::Csr<count_t> g, grb::Csr<count_t> h) {
    KRONLAB_REQUIRE(g.nrows() == n_left_ && g.ncols() == n_left_ &&
                        h.nrows() == n_right_ && h.ncols() == n_right_,
                    "factored term has wrong factor shapes");
    terms_.push_back({coeff, std::move(g), std::move(h)});
  }

  [[nodiscard]] index_t nrows() const { return n_left_ * n_right_; }
  [[nodiscard]] index_t ncols() const { return n_left_ * n_right_; }
  [[nodiscard]] index_t num_terms() const {
    return static_cast<index_t>(terms_.size());
  }
  [[nodiscard]] count_t divisor() const { return divisor_; }
  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }

  /// Point query at (p, q) via factor-entry lookups.  O(#terms · log deg).
  [[nodiscard]] count_t at(index_t p, index_t q) const {
    const index_t i = alpha(p, n_right_);
    const index_t k = beta(p, n_right_);
    const index_t j = alpha(q, n_right_);
    const index_t l = beta(q, n_right_);
    count_t acc = 0;
    for (const Term& t : terms_) {
      acc += t.coeff * t.g.at(i, j) * t.h.at(k, l);
    }
    KRONLAB_DBG_ASSERT(acc % divisor_ == 0,
                       "factored value not divisible — formula bug");
    return acc / divisor_;
  }

  /// Sum of all entries, in factor space.
  [[nodiscard]] count_t reduce() const {
    count_t acc = 0;
    for (const Term& t : terms_) {
      acc += t.coeff * grb::reduce(t.g) * grb::reduce(t.h);
    }
    KRONLAB_DBG_ASSERT(acc % divisor_ == 0,
                       "factored reduction not divisible — formula bug");
    return acc / divisor_;
  }

  /// Row sums as a FactoredVector: rowsum(G⊗H) = rowsum(G) ⊗ rowsum(H).
  /// This is how s_C = ½ ◇_C 1 is evaluated without leaving factor space.
  [[nodiscard]] FactoredVector row_reduce(count_t extra_divisor = 1) const {
    FactoredVector out(n_left_, n_right_, divisor_ * extra_divisor);
    for (const Term& t : terms_) {
      out.add_term(t.coeff, grb::reduce_rows(t.g), grb::reduce_rows(t.h));
    }
    return out;
  }

  /// Materialize as a product-sized CSR (validation only).
  [[nodiscard]] grb::Csr<count_t> materialize() const {
    KRONLAB_REQUIRE(!terms_.empty(), "cannot materialize empty sum");
    grb::Csr<count_t> acc =
        grb::scale(grb::kron(terms_[0].g, terms_[0].h), terms_[0].coeff);
    for (std::size_t s = 1; s < terms_.size(); ++s) {
      acc = grb::ewise_add(
          acc, grb::scale(grb::kron(terms_[s].g, terms_[s].h),
                          terms_[s].coeff));
    }
    if (divisor_ != 1) {
      for (auto& v : acc.vals()) {
        KRONLAB_DBG_ASSERT(v % divisor_ == 0,
                           "factored value not divisible — formula bug");
        v /= divisor_;
      }
    }
    return acc;
  }

private:
  index_t n_left_;
  index_t n_right_;
  count_t divisor_;
  std::vector<Term> terms_;
};

} // namespace kronlab::kron
