#include "kronlab/kron/clustering.hpp"

#include "kronlab/common/error.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab::kron {

std::optional<double> edge_clustering(count_t squares, count_t d_i,
                                      count_t d_j) {
  const count_t denom = (d_i - 1) * (d_j - 1);
  if (denom <= 0) return std::nullopt;
  return static_cast<double>(squares) / static_cast<double>(denom);
}

grb::Csr<double> edge_clustering_matrix(const Adjacency& a) {
  KRONLAB_TRACE_SPAN("kron", "edge_clustering_matrix");
  const auto sq = edge_squares_formula(a);
  const auto d = grb::reduce_rows(a);
  grb::Csr<double> out(
      a.nrows(), a.ncols(), a.row_ptr(), a.col_idx(),
      std::vector<double>(static_cast<std::size_t>(a.nnz()), 0.0));
  auto& vals = out.vals();
  const auto& rp = a.row_ptr();
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto sqv = sq.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto g = edge_clustering(sqv[k], d[i], d[cols[k]]);
      vals[static_cast<std::size_t>(rp[static_cast<std::size_t>(i)]) + k] =
          g.value_or(0.0);
    }
  }
  return out;
}

double psi(count_t d_i, count_t d_j, count_t d_k, count_t d_l) {
  KRONLAB_REQUIRE(d_i >= 2 && d_j >= 2 && d_k >= 2 && d_l >= 2,
                  "psi requires all degrees >= 2 (Thm 6 hypothesis)");
  const auto num = static_cast<double>((d_i - 1) * (d_k - 1)) *
                   static_cast<double>((d_j - 1) * (d_l - 1));
  const auto den = static_cast<double>(d_i * d_k - 1) *
                   static_cast<double>(d_j * d_l - 1);
  return num / den;
}

std::vector<ClusteringSample> clustering_samples(
    const BipartiteKronecker& kp, index_t max_samples) {
  KRONLAB_TRACE_SPAN("kron", "clustering_samples");
  const auto& m = kp.left();
  const auto& b = kp.right();
  if (!grb::has_no_self_loops(m)) {
    throw domain_error(
        "clustering_samples: Thm 6 applies to Assumption 1(i) products "
        "(loop-free left factor)");
  }
  const auto d_m = grb::reduce_rows(m);
  const auto d_b = grb::reduce_rows(b);
  const auto sq_m = edge_squares_formula(m);
  const auto sq_b = edge_squares_formula(b);

  std::vector<ClusteringSample> samples;
  const index_t nb = b.nrows();
  for (index_t i = 0; i < m.nrows(); ++i) {
    const auto mc = m.row_cols(i);
    const auto msq = sq_m.row_vals(i);
    for (index_t k = 0; k < nb; ++k) {
      const auto bc = b.row_cols(k);
      const auto bsq = sq_b.row_vals(k);
      const index_t p = i * nb + k;
      for (std::size_t em = 0; em < mc.size(); ++em) {
        const index_t j = mc[em];
        if (d_m[i] < 2 || d_m[j] < 2) continue;
        for (std::size_t eb = 0; eb < bc.size(); ++eb) {
          const index_t l = bc[eb];
          if (d_b[k] < 2 || d_b[l] < 2) continue;
          const index_t q = j * nb + l;
          if (p >= q) continue; // each undirected edge once
          ClusteringSample s;
          s.p = p;
          s.q = q;
          // ◇_pq from the streaming identity (Def. 9 on the product).
          const count_t sq_pq =
              edge_squares_pointwise_thm5(msq[em], d_m[i], d_m[j], bsq[eb],
                                          d_b[k], d_b[l]);
          const count_t dp = d_m[i] * d_b[k];
          const count_t dq = d_m[j] * d_b[l];
          s.gamma_c = *edge_clustering(sq_pq, dp, dq);
          s.gamma_a = *edge_clustering(msq[em], d_m[i], d_m[j]);
          s.gamma_b = *edge_clustering(bsq[eb], d_b[k], d_b[l]);
          s.psi = psi(d_m[i], d_m[j], d_b[k], d_b[l]);
          s.bound = s.psi * s.gamma_a * s.gamma_b;
          samples.push_back(s);
          if (max_samples > 0 &&
              static_cast<index_t>(samples.size()) >= max_samples) {
            return samples;
          }
        }
      }
    }
  }
  return samples;
}

} // namespace kronlab::kron
