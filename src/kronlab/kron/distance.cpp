#include "kronlab/kron/distance.hpp"

#include <algorithm>
#include <atomic>
#include <deque>

#include "kronlab/common/error.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::kron {

ParityDistances ParityDistances::compute(const Adjacency& a) {
  graph::require_undirected(a, "ParityDistances");
  ParityDistances pd;
  pd.n_ = a.nrows();
  pd.table_.assign(static_cast<std::size_t>(pd.n_) * pd.n_ * 2,
                   dist_unreachable);
  // BFS from each source on the layered (vertex, parity) graph: an edge
  // step flips parity; a self loop is an ordinary edge whose endpoints
  // coincide, so it also flips parity — giving odd closed walks.
  parallel_for(0, pd.n_, [&](index_t s) {
    auto at = [&](index_t v, int par) -> index_t& {
      return pd.table_[pd.idx(s, v, par)];
    };
    std::deque<std::pair<index_t, int>> frontier;
    at(s, 0) = 0;
    frontier.emplace_back(s, 0);
    while (!frontier.empty()) {
      const auto [u, par] = frontier.front();
      frontier.pop_front();
      const index_t du = at(u, par);
      const int next_par = 1 - par;
      for (const index_t v : a.row_cols(u)) {
        if (at(v, next_par) == dist_unreachable) {
          at(v, next_par) = du + 1;
          frontier.emplace_back(v, next_par);
        }
      }
    }
  });
  return pd;
}

index_t ParityDistances::dist(index_t i, index_t j) const {
  const index_t e = even(i, j);
  const index_t o = odd(i, j);
  if (e == dist_unreachable) return o;
  if (o == dist_unreachable) return e;
  return std::min(e, o);
}

namespace {

// Minimum h with walks of length h in both factors at parity `par`, or
// dist_unreachable.  A length-d^π walk extends to d^π + 2t by retracing an
// edge — valid except for the trivial 0-walk at an isolated vertex, hence
// the degree guards.
index_t combine_parity(index_t dm, index_t db, bool i_has_edge,
                       bool k_has_edge) {
  if (dm == dist_unreachable || db == dist_unreachable) {
    return dist_unreachable;
  }
  const index_t h = std::max(dm, db);
  if (h > dm && dm == 0 && !i_has_edge) return dist_unreachable;
  if (h > db && db == 0 && !k_has_edge) return dist_unreachable;
  return h;
}

} // namespace

index_t product_distance(const BipartiteKronecker& kp,
                         const ParityDistances& pd_m,
                         const ParityDistances& pd_b, index_t p,
                         index_t q) {
  const auto sh = kp.shape();
  const auto [i, k] = sh.split_row(p);
  const auto [j, l] = sh.split_col(q);
  const bool i_edge = kp.left().row_degree(i) > 0;
  const bool k_edge = kp.right().row_degree(k) > 0;
  index_t best = dist_unreachable;
  for (int par = 0; par < 2; ++par) {
    const index_t h =
        combine_parity(pd_m.parity(i, j, par), pd_b.parity(k, l, par),
                       i_edge, k_edge);
    if (h == dist_unreachable) continue;
    if (best == dist_unreachable || h < best) best = h;
  }
  return best;
}

std::vector<index_t> product_eccentricities(const BipartiteKronecker& kp) {
  const auto pd_m = ParityDistances::compute(kp.left());
  const auto pd_b = ParityDistances::compute(kp.right());
  const index_t nm = kp.left().nrows();
  const index_t nb = kp.right().nrows();
  std::vector<index_t> ecc(static_cast<std::size_t>(nm * nb), 0);
  std::atomic<bool> disconnected{false};
  parallel_for(0, nm * nb, [&](index_t p) {
    const index_t i = p / nb;
    const index_t k = p % nb;
    const bool i_edge = kp.left().row_degree(i) > 0;
    const bool k_edge = kp.right().row_degree(k) > 0;
    index_t e = 0;
    for (index_t j = 0; j < nm && !disconnected.load(std::memory_order_relaxed);
         ++j) {
      for (index_t l = 0; l < nb; ++l) {
        index_t best = dist_unreachable;
        for (int par = 0; par < 2; ++par) {
          const index_t h =
              combine_parity(pd_m.parity(i, j, par),
                             pd_b.parity(k, l, par), i_edge, k_edge);
          if (h == dist_unreachable) continue;
          if (best == dist_unreachable || h < best) best = h;
        }
        if (best == dist_unreachable) {
          disconnected.store(true, std::memory_order_relaxed);
          return;
        }
        e = std::max(e, best);
      }
    }
    ecc[static_cast<std::size_t>(p)] = e;
  });
  if (disconnected.load()) {
    throw domain_error("product_eccentricities: product is disconnected");
  }
  return ecc;
}

index_t product_diameter(const BipartiteKronecker& kp) {
  const auto ecc = product_eccentricities(kp);
  return ecc.empty() ? 0 : *std::max_element(ecc.begin(), ecc.end());
}

index_t product_radius(const BipartiteKronecker& kp) {
  const auto ecc = product_eccentricities(kp);
  return ecc.empty() ? 0 : *std::min_element(ecc.begin(), ecc.end());
}

} // namespace kronlab::kron
