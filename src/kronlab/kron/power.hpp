// kronlab/kron/power.hpp
//
// k-fold Kronecker chains: C = F_1 ⊗ F_2 ⊗ … ⊗ F_k.
//
// The paper's lineage (Graph500 [24], the earlier nonstochastic work
// [3], [12], [20]) builds massive graphs as iterated Kronecker powers.
// Every ground-truth identity kronlab uses is associative across ⊗ —
// diag((⊗F_i)⁴) = ⊗ diag(F_i⁴), (⊗F_i)·1 = ⊗ (F_i·1), … — so the
// factored statistics generalize from pairs to chains directly.  The
// product is loop-free as soon as ONE factor is loop-free, and bipartite
// as soon as one loop-free factor is bipartite (§III).
//
// KFactoredVector is the N-ary generalization of FactoredVector:
// Σ_s c_s ⊗_i g_{s,i} / divisor, with mixed-radix index decomposition for
// O(#terms · k) point queries.

#pragma once

#include <utility>
#include <vector>

#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/vector.hpp"

namespace kronlab::kron {

using graph::Adjacency;

/// Σ_s c_s · (g_{s,1} ⊗ … ⊗ g_{s,k}) / divisor.
class KFactoredVector {
public:
  struct Term {
    count_t coeff;
    std::vector<grb::Vector<count_t>> parts; ///< one vector per factor
  };

  KFactoredVector(std::vector<index_t> sizes, count_t divisor = 1);

  void add_term(count_t coeff, std::vector<grb::Vector<count_t>> parts);

  [[nodiscard]] index_t size() const { return total_; }
  [[nodiscard]] index_t num_factors() const {
    return static_cast<index_t>(sizes_.size());
  }
  [[nodiscard]] index_t num_terms() const {
    return static_cast<index_t>(terms_.size());
  }

  /// Value at product index p (mixed-radix split across the factors).
  [[nodiscard]] count_t at(index_t p) const;

  /// Σ_p value(p) in factor space.
  [[nodiscard]] count_t reduce() const;

  /// Dense product-length vector (validation only).
  [[nodiscard]] grb::Vector<count_t> materialize() const;

private:
  std::vector<index_t> sizes_;
  index_t total_ = 1;
  count_t divisor_ = 1;
  std::vector<Term> terms_;
};

/// A validated chain of Kronecker factors.
class ChainKronecker {
public:
  /// Factors must be undirected 0/1 adjacencies; at least one must be
  /// loop-free so the product is a simple graph.
  static ChainKronecker of(std::vector<Adjacency> factors);

  /// The k-fold Kronecker power A ⊗ … ⊗ A.
  static ChainKronecker power(const Adjacency& a, int k);

  [[nodiscard]] const std::vector<Adjacency>& factors() const {
    return factors_;
  }
  [[nodiscard]] index_t num_vertices() const;
  [[nodiscard]] count_t num_edges() const; ///< Π nnz(F_i) / 2

  /// True iff the product is bipartite (some loop-free factor bipartite).
  [[nodiscard]] bool product_bipartite() const;

  /// Materialize the full adjacency (validation scales only).
  [[nodiscard]] Adjacency materialize() const;

  /// Collapse the chain into two materialized halves (L, R) with
  /// C = L ⊗ R, choosing the split that balances the halves' vertex
  /// counts while keeping a loop-free factor in R — exactly what
  /// BipartiteKronecker::raw(L, R) requires.  Every ⊗-associative
  /// ground-truth identity is unchanged by the regrouping, so streaming
  /// machinery built for pairs (partitioning, oracles, durable
  /// generation) runs a whole chain at sqrt-of-product memory.  Requires
  /// at least two factors.
  [[nodiscard]] std::pair<Adjacency, Adjacency> collapse_pair() const;

  /// d_C = ⊗ d_i.
  [[nodiscard]] KFactoredVector degrees() const;

  /// s_C — per-vertex 4-cycle participation (Def. 8 factored across the
  /// whole chain; 4 terms, divisor 2).
  [[nodiscard]] KFactoredVector vertex_squares() const;

  /// Global 4-cycle count in factor space.
  [[nodiscard]] count_t global_squares() const;

private:
  explicit ChainKronecker(std::vector<Adjacency> factors)
      : factors_(std::move(factors)) {}
  std::vector<Adjacency> factors_;
};

} // namespace kronlab::kron
