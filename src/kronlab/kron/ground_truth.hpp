// kronlab/kron/ground_truth.hpp
//
// Ground-truth 4-cycle statistics for Kronecker products (§III-B).
//
// Two layers:
//
//  * Factor-level formulas (Defs. 8–9) evaluated with sparse linear algebra
//    on a single graph: vertex_squares_formula / edge_squares_formula.
//    These are the algebraic counterparts of the combinatorial counters in
//    graph/butterflies.hpp — the test suite checks all three against each
//    other.
//
//  * Product-level factored ground truth for C = M ⊗ B with loop-free B:
//    degrees, two-hop walks, vertex squares, edge squares, global squares —
//    each as a FactoredVector/FactoredMatrix built from factor-sized
//    objects, never materializing C.  The generic forms hold for any M
//    (plain A or A + I_A); the Thm 3 / Thm 4 closed forms are provided
//    separately so the paper's exact expressions are testable.
//
// NOTE on Thm 4: the published statement carries a sign typo — the C·1 and
// C·1∘C·1 expansion terms appear with flipped signs relative to Def. 8
// (check: A = B = P2 gives the 4-cycle C4, whose vertices each sit in one
// square; the published signs give 3).  We implement the corrected signs
// and record the discrepancy in EXPERIMENTS.md.

#pragma once

#include "kronlab/kron/factored.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::kron {

// ---------------------------------------------------------------------------
// Factor-level statistics.

/// Everything the product formulas need from one factor M (which may carry
/// self loops), computed once: degrees d = M1, two-hop walks w² = M²1,
/// squared degrees d∘d, closed 4-walks diag(M⁴), and M³∘M.
struct FactorStats {
  grb::Vector<count_t> d;
  grb::Vector<count_t> w2;
  grb::Vector<count_t> d2;
  grb::Vector<count_t> diag4;
  grb::Csr<count_t> m3_had_m; ///< M³ ∘ M

  static FactorStats compute(const Adjacency& m);
};

/// Def. 8 via linear algebra: s = ½(diag(A⁴) − d∘d − w² + d).
/// Requires loop-free undirected A.
grb::Vector<count_t> vertex_squares_formula(const Adjacency& a);

/// Def. 9 via linear algebra: ◇ = A³∘A − (d1ᵗ + 1dᵗ)∘A + A.
/// Requires loop-free undirected A.  Result has exactly A's structure
/// (zero counts are stored explicitly).
grb::Csr<count_t> edge_squares_formula(const Adjacency& a);

// ---------------------------------------------------------------------------
// Product-level factored ground truth (any BipartiteKronecker).

/// d_C = d_M ⊗ d_B (1 term).
FactoredVector degrees(const BipartiteKronecker& kp);

/// w²_C = w²_M ⊗ w²_B (1 term).
FactoredVector two_hop_walks(const BipartiteKronecker& kp);

/// s_C — vertex 4-cycle participation (generic factored form; 4 terms,
/// divisor 2).  Specializes to Thm 3 when M = A and Thm 4 when M = A + I_A.
FactoredVector vertex_squares(const BipartiteKronecker& kp);

/// ◇_C — edge 4-cycle participation (generic factored form; 4 terms).
FactoredMatrix edge_squares(const BipartiteKronecker& kp);

/// Global number of 4-cycles: Σ_p s_C(p) / 4, evaluated in factor space.
count_t global_squares(const BipartiteKronecker& kp);

// ---------------------------------------------------------------------------
// Closed forms as printed in the paper (for tests & benches).

/// Thm 3 statement: s_C for C = A ⊗ B in terms of (s, d, w²) of the
/// loop-free factors themselves.
FactoredVector vertex_squares_thm3(const Adjacency& a, const Adjacency& b);

/// Thm 4 (sign-corrected, see header note): s_C for C = (A + I_A) ⊗ B in
/// terms of loop-free bipartite A's own statistics.
FactoredVector vertex_squares_thm4(const Adjacency& a, const Adjacency& b);

/// Thm 4 point-wise form (sign-corrected): s_p from scalar factor stats of
/// i ∈ V_A and k ∈ V_B.
count_t vertex_squares_pointwise_thm4(count_t s_i, count_t d_i,
                                      count_t w2_i, count_t s_k,
                                      count_t d_k, count_t w2_k);

/// Thm 5 point-wise form: ◇_pq for product edge (p,q) from the factor-edge
/// statistics of (i,j) ∈ E_A and (k,l) ∈ E_B (loop-free A).  Uses the
/// pre-expansion identity ◇_pq = 1 + (◇_ij+d_i+d_j−1)(◇_kl+d_k+d_l−1)
/// − d_i·d_k − d_j·d_l, which is exact (the printed 19-term expansion drops
/// a constant).
count_t edge_squares_pointwise_thm5(count_t sq_ij, count_t d_i, count_t d_j,
                                    count_t sq_kl, count_t d_k,
                                    count_t d_l);

// ---------------------------------------------------------------------------
// Self-verification.

/// Outcome of cross-checking the factored ground truth of one product
/// against the direct (blocked, degree-ordered) counters on the
/// materialized C.  This is the paper's mutual-validation loop packaged as
/// one call: the formulas validate the counters and vice versa.
struct GroundTruthCheck {
  bool vertex_ok = false;  ///< s_C (Def. 8) matches per vertex
  bool edge_ok = false;    ///< ◇_C (Def. 9) matches per stored edge
  bool global_ok = false;  ///< #C4 matches
  count_t global_factored = 0;
  count_t global_direct = 0;
  index_t vertices_checked = 0;
  count_t edges_checked = 0;

  [[nodiscard]] bool ok() const { return vertex_ok && edge_ok && global_ok; }
};

/// Materialize C = M ⊗ B and verify every factored 4-cycle statistic
/// against direct counting.  O(|E_C| · d̄) — validation sizes only.
GroundTruthCheck verify_ground_truth(const BipartiteKronecker& kp);

} // namespace kronlab::kron
