#include "kronlab/kron/ground_truth.hpp"

#include "kronlab/common/error.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/grb/masked.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::kron {

namespace {

void require_loop_free_undirected(const Adjacency& a, const char* where) {
  graph::require_undirected(a, where);
  if (!grb::has_no_self_loops(a)) {
    throw domain_error(std::string(where) + ": factor must be loop-free");
  }
}

} // namespace

FactorStats FactorStats::compute(const Adjacency& m) {
  KRONLAB_REQUIRE(m.nrows() == m.ncols(), "factor must be square");
  metrics::KernelScope scope("kron/factor_stats");
  FactorStats st;
  st.d = grb::reduce_rows(m);
  const auto m2 = grb::mxm(m, m);
  st.w2 = grb::reduce_rows(m2);
  st.d2 = grb::ewise_mult(st.d, st.d);
  // diag(M⁴)_i = Σ_j (M²)_ij · (M²)_ji = Σ_j (M²)_ij² for symmetric M.
  st.diag4 = grb::Vector<count_t>(m.nrows(), 0);
  parallel_for_dynamic(0, m.nrows(), [&](index_t i) {
    count_t acc = 0;
    for (const count_t v : m2.row_vals(i)) acc += v * v;
    st.diag4[i] = acc;
  });
  // M³ ∘ M via a masked product: never materializes M³ (whose fill-in is
  // quadratic for hub-heavy factors).
  st.m3_had_m = grb::mxm_masked(m, m2, m);
  return st;
}

grb::Vector<count_t> vertex_squares_formula(const Adjacency& a) {
  require_loop_free_undirected(a, "vertex_squares_formula");
  metrics::KernelScope scope("kron/vertex_squares_formula");
  const auto st = FactorStats::compute(a);
  grb::Vector<count_t> s(a.nrows());
  parallel_for_dynamic(0, a.nrows(), [&](index_t i) {
    const count_t num = st.diag4[i] - st.d2[i] - st.w2[i] + st.d[i];
    KRONLAB_DBG_ASSERT(num % 2 == 0, "Def. 8 numerator must be even");
    s[i] = num / 2;
  });
  return s;
}

grb::Csr<count_t> edge_squares_formula(const Adjacency& a) {
  require_loop_free_undirected(a, "edge_squares_formula");
  metrics::KernelScope scope("kron/edge_squares_formula");
  // A³ restricted to A's structure — masked, so A³'s fill-in is never
  // materialized.
  const auto a3 = grb::mxm_masked(a, grb::mxm(a, a), a);
  const auto d = grb::reduce_rows(a);
  // ◇ keeps A's structure: fill values edge-by-edge so edges with zero
  // squares are stored explicitly (ewise arithmetic would drop them).
  grb::Csr<count_t> out = a;
  auto& vals = out.vals();
  const auto& rp = out.row_ptr();
  parallel_for_dynamic(0, a.nrows(), [&](index_t i) {
    const auto cols = out.row_cols(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      vals[static_cast<std::size_t>(rp[static_cast<std::size_t>(i)]) + k] =
          a3.at(i, j) - d[i] - d[j] + 1;
    }
  });
  return out;
}

FactoredVector degrees(const BipartiteKronecker& kp) {
  FactoredVector out(kp.left().nrows(), kp.right().nrows());
  out.add_term(1, grb::reduce_rows(kp.left()),
               grb::reduce_rows(kp.right()));
  return out;
}

FactoredVector two_hop_walks(const BipartiteKronecker& kp) {
  FactoredVector out(kp.left().nrows(), kp.right().nrows());
  out.add_term(1, graph::two_hop_walks(kp.left()),
               graph::two_hop_walks(kp.right()));
  return out;
}

FactoredVector vertex_squares(const BipartiteKronecker& kp) {
  // Def. 8 on the loop-free product, with every term factored:
  //   s_C = ½[ diag(M⁴)⊗diag(B⁴) − (d_M∘d_M)⊗(d_B∘d_B)
  //            − w²_M⊗w²_B + d_M⊗d_B ].
  const auto sm = FactorStats::compute(kp.left());
  const auto sb = FactorStats::compute(kp.right());
  FactoredVector out(kp.left().nrows(), kp.right().nrows(), /*divisor=*/2);
  out.add_term(+1, sm.diag4, sb.diag4);
  out.add_term(-1, sm.d2, sb.d2);
  out.add_term(-1, sm.w2, sb.w2);
  out.add_term(+1, sm.d, sb.d);
  return out;
}

FactoredMatrix edge_squares(const BipartiteKronecker& kp) {
  // Def. 9 on the loop-free product, factored:
  //   ◇_C = (M³∘M)⊗(B³∘B) − (d_M1ᵗ∘M)⊗(d_B1ᵗ∘B)
  //         − (1d_Mᵗ∘M)⊗(1d_Bᵗ∘B) + M⊗B.
  const auto sm = FactorStats::compute(kp.left());
  const auto sb = FactorStats::compute(kp.right());
  FactoredMatrix out(kp.left().nrows(), kp.right().nrows());
  out.add_term(+1, sm.m3_had_m, sb.m3_had_m);
  out.add_term(-1, grb::row_scale(kp.left(), sm.d),
               grb::row_scale(kp.right(), sb.d));
  out.add_term(-1, grb::col_scale(kp.left(), sm.d),
               grb::col_scale(kp.right(), sb.d));
  out.add_term(+1, kp.left(), kp.right());
  return out;
}

count_t global_squares(const BipartiteKronecker& kp) {
  // Each square contributes 4 to Σ_p s_C(p).
  return vertex_squares(kp).reduce() / 4;
}

FactoredVector vertex_squares_thm3(const Adjacency& a, const Adjacency& b) {
  require_loop_free_undirected(a, "vertex_squares_thm3");
  require_loop_free_undirected(b, "vertex_squares_thm3");
  const auto sa = FactorStats::compute(a);
  const auto sb = FactorStats::compute(b);
  const auto s_a = vertex_squares_formula(a);
  const auto s_b = vertex_squares_formula(b);

  // diag(A⁴) rewritten as 2s + d² + w² − d, exactly as the theorem prints.
  const auto closed4 = [](const grb::Vector<count_t>& s,
                          const FactorStats& st) {
    auto v = grb::scale(s, count_t{2});
    v = grb::ewise_add(v, st.d2);
    v = grb::ewise_add(v, st.w2);
    return grb::ewise_sub(v, st.d);
  };

  FactoredVector out(a.nrows(), b.nrows(), /*divisor=*/2);
  out.add_term(+1, closed4(s_a, sa), closed4(s_b, sb));
  out.add_term(-1, sa.d2, sb.d2);
  out.add_term(-1, sa.w2, sb.w2);
  out.add_term(+1, sa.d, sb.d);
  return out;
}

FactoredVector vertex_squares_thm4(const Adjacency& a, const Adjacency& b) {
  require_loop_free_undirected(a, "vertex_squares_thm4");
  require_loop_free_undirected(b, "vertex_squares_thm4");
  if (!graph::is_bipartite(a)) {
    throw domain_error("vertex_squares_thm4: factor A must be bipartite "
                       "(diag(A³) = 0 is used)");
  }
  const auto sa = FactorStats::compute(a);
  const auto sb = FactorStats::compute(b);
  const auto s_a = vertex_squares_formula(a);
  const auto s_b = vertex_squares_formula(b);
  const auto one_a = grb::ones<count_t>(a.nrows());

  // diag((A+I)⁴) = diag(A⁴ + 4A³ + 6A² + 4A + I)
  //             = 2s_A + d_A² + w²_A + 5d_A + 1   (A bipartite, loop-free)
  auto g1 = grb::scale(s_a, count_t{2});
  g1 = grb::ewise_add(g1, sa.d2);
  g1 = grb::ewise_add(g1, sa.w2);
  g1 = grb::ewise_add(g1, grb::scale(sa.d, count_t{5}));
  g1 = grb::ewise_add(g1, one_a);

  // diag(B⁴) = 2s_B + d_B² + w²_B − d_B.
  auto h1 = grb::scale(s_b, count_t{2});
  h1 = grb::ewise_add(h1, sb.d2);
  h1 = grb::ewise_add(h1, sb.w2);
  h1 = grb::ewise_sub(h1, sb.d);

  // (A+I)·1 = d_A + 1;  (A+I)²·1 = w²_A + 2d_A + 1;
  // ((A+I)1)∘((A+I)1) = d_A² + 2d_A + 1.
  const auto d_plus_1 = grb::shift(sa.d, count_t{1});
  auto w2_m = grb::ewise_add(sa.w2, grb::scale(sa.d, count_t{2}));
  w2_m = grb::ewise_add(w2_m, one_a);
  auto d2_m = grb::ewise_add(sa.d2, grb::scale(sa.d, count_t{2}));
  d2_m = grb::ewise_add(d2_m, one_a);

  // Def. 8 signs: + diag(C⁴) − C1∘C1 − C²1 + C1  (see header note on the
  // published statement's typo).
  FactoredVector out(a.nrows(), b.nrows(), /*divisor=*/2);
  out.add_term(+1, g1, h1);
  out.add_term(-1, d2_m, sb.d2);
  out.add_term(-1, w2_m, sb.w2);
  out.add_term(+1, d_plus_1, sb.d);
  return out;
}

count_t vertex_squares_pointwise_thm4(count_t s_i, count_t d_i,
                                      count_t w2_i, count_t s_k,
                                      count_t d_k, count_t w2_k) {
  const count_t t1 = (2 * s_i + d_i * d_i + w2_i + 5 * d_i + 1) *
                     (2 * s_k + d_k * d_k + w2_k - d_k);
  const count_t t2 = (d_i + 1) * (d_i + 1) * d_k * d_k; // C1∘C1
  const count_t t3 = (w2_i + 2 * d_i + 1) * w2_k;       // C²1
  const count_t t4 = (d_i + 1) * d_k;                   // C1
  const count_t num = t1 - t2 - t3 + t4;
  KRONLAB_DBG_ASSERT(num % 2 == 0, "Thm 4 numerator must be even");
  return num / 2;
}

count_t edge_squares_pointwise_thm5(count_t sq_ij, count_t d_i, count_t d_j,
                                    count_t sq_kl, count_t d_k,
                                    count_t d_l) {
  return 1 + (sq_ij + d_i + d_j - 1) * (sq_kl + d_k + d_l - 1) -
         d_i * d_k - d_j * d_l;
}

GroundTruthCheck verify_ground_truth(const BipartiteKronecker& kp) {
  metrics::KernelScope scope("kron/verify_ground_truth");
  GroundTruthCheck check;
  const auto c = kp.materialize();

  const auto truth_v = vertex_squares(kp).materialize();
  const auto direct_v = graph::vertex_butterflies(c);
  check.vertex_ok = truth_v == direct_v;
  check.vertices_checked = c.nrows();

  const auto factored_e = edge_squares(kp);
  const auto direct_e = graph::edge_butterflies(c);
  check.edge_ok = true;
  for (index_t p = 0; p < c.nrows(); ++p) {
    const auto cols = direct_e.row_cols(p);
    const auto vals = direct_e.row_vals(p);
    for (std::size_t e = 0; e < cols.size(); ++e) {
      if (factored_e.at(p, cols[e]) != vals[e]) {
        check.edge_ok = false;
      }
      ++check.edges_checked;
    }
  }

  check.global_factored = global_squares(kp);
  check.global_direct = graph::global_butterflies(c);
  check.global_ok = check.global_factored == check.global_direct;
  return check;
}

} // namespace kronlab::kron
