#include "kronlab/kron/community.hpp"

#include <algorithm>

#include "kronlab/common/error.hpp"
#include "kronlab/kron/index_map.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab::kron {

namespace {

double density_in(count_t m_in, index_t r, index_t t) {
  const double denom = static_cast<double>(r) * static_cast<double>(t);
  return denom > 0 ? static_cast<double>(m_in) / denom : 0.0;
}

double density_out(count_t m_out, index_t r, index_t t, index_t n_u,
                   index_t n_w) {
  const double denom = static_cast<double>(r) * static_cast<double>(n_w) +
                       static_cast<double>(n_u) * static_cast<double>(t) -
                       2.0 * static_cast<double>(r) *
                           static_cast<double>(t);
  return denom > 0 ? static_cast<double>(m_out) / denom : 0.0;
}

} // namespace

double FactorCommunity::rho_in() const {
  return density_in(m_in, static_cast<index_t>(subset.r.size()),
                    static_cast<index_t>(subset.t.size()));
}

double FactorCommunity::rho_out() const {
  return density_out(m_out, static_cast<index_t>(subset.r.size()),
                     static_cast<index_t>(subset.t.size()), n_u, n_w);
}

FactorCommunity measure_factor_community(const Adjacency& a,
                                         const graph::Bipartition& part,
                                         const graph::BipartiteSubset& s) {
  KRONLAB_TRACE_SPAN("kron", "measure_factor_community");
  const auto stats = graph::community_stats(a, part, s);
  FactorCommunity fc;
  fc.subset = s;
  fc.n_u = part.size_u();
  fc.n_w = part.size_w();
  fc.m_in = stats.m_in;
  fc.m_out = stats.m_out;
  return fc;
}

double ProductCommunity::rho_in() const {
  return density_in(m_in, r_size, t_size);
}

double ProductCommunity::rho_out() const {
  return density_out(m_out, r_size, t_size, n_u, n_w);
}

ProductCommunity product_community(const FactorCommunity& sa,
                                   const FactorCommunity& sb) {
  KRONLAB_TRACE_SPAN("kron", "product_community");
  const count_t size_a = sa.size();
  ProductCommunity pc;
  // Thm 7.
  pc.m_in = 2 * sa.m_in * sb.m_in + size_a * sb.m_in;
  pc.m_out = sa.m_out * sb.m_out + 2 * sa.m_out * sb.m_in +
             size_a * sb.m_out + 2 * sa.m_in * sb.m_out;
  // Def. 12 geometry: the product's bipartition follows factor B's sides.
  pc.r_size = size_a * static_cast<index_t>(sb.subset.r.size());
  pc.t_size = size_a * static_cast<index_t>(sb.subset.t.size());
  pc.n_u = (sa.n_u + sa.n_w) * sb.n_u;
  pc.n_w = (sa.n_u + sa.n_w) * sb.n_w;
  return pc;
}

graph::BipartiteSubset product_subset(const FactorCommunity& sa,
                                      const FactorCommunity& sb,
                                      const graph::Bipartition& part_b,
                                      index_t n_b) {
  KRONLAB_TRACE_SPAN("kron", "product_subset");
  KRONLAB_REQUIRE(static_cast<index_t>(part_b.side.size()) == n_b,
                  "bipartition size mismatch with n_b");
  graph::BipartiteSubset out;
  std::vector<index_t> all_a = sa.subset.r;
  all_a.insert(all_a.end(), sa.subset.t.begin(), sa.subset.t.end());
  std::sort(all_a.begin(), all_a.end());
  for (const index_t i : all_a) {
    for (const index_t k : sb.subset.r) {
      out.r.push_back(gamma(i, k, n_b));
    }
    for (const index_t k : sb.subset.t) {
      out.t.push_back(gamma(i, k, n_b));
    }
  }
  return out;
}

double cor1_lower_bound(const FactorCommunity& sa,
                        const FactorCommunity& sb) {
  const auto size_a = static_cast<double>(sa.size());
  KRONLAB_REQUIRE(size_a > 0, "cor1 requires non-empty S_A");
  const double omega =
      std::min(static_cast<double>(sa.subset.r.size()),
               static_cast<double>(sa.subset.t.size())) /
      size_a;
  return omega * sa.rho_in() * sb.rho_in();
}

double cor2_upper_bound(const FactorCommunity& sa,
                        const FactorCommunity& sb) {
  KRONLAB_REQUIRE(sa.m_out > 0 && sb.m_out > 0,
                  "cor2 requires external edges in both factor communities");
  const double xi_a =
      static_cast<double>(2 * sa.m_in + sa.size()) /
      static_cast<double>(sa.m_out);
  const double xi_b =
      static_cast<double>(2 * sb.m_in + sb.size()) /
      static_cast<double>(sb.m_out);
  const double eps = std::max(
      {static_cast<double>(sa.size()) /
           static_cast<double>(sa.n_u + sa.n_w),
       static_cast<double>(sb.subset.r.size()) / static_cast<double>(sb.n_u),
       static_cast<double>(sb.subset.t.size()) /
           static_cast<double>(sb.n_w)});
  KRONLAB_REQUIRE(eps < 1.0, "cor2 requires epsilon < 1");
  return (1.0 + xi_a) * (1.0 + xi_b) / (1.0 - eps * eps) * sa.rho_out() *
         sb.rho_out();
}

} // namespace kronlab::kron
