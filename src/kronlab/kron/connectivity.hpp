// kronlab/kron/connectivity.hpp
//
// Structural predictions for Kronecker products (§III, §III-A):
// bipartiteness of C, and the connectivity results of Weichsel / Thm 1 /
// Thm 2 — checked from the factors alone, never materializing C.

#pragma once

#include "kronlab/kron/product.hpp"

namespace kronlab::kron {

/// Structure of a factor as it affects the product.
struct FactorStructure {
  bool connected = false;
  bool bipartite = false;      ///< loop-free two-colorable
  bool has_odd_closed_walk = false; ///< odd cycle OR any self loop
};

FactorStructure factor_structure(const Adjacency& a);

/// Predicted properties of C = M ⊗ B.
struct ProductPrediction {
  bool bipartite = false;  ///< true iff either factor is bipartite (§III)
  bool connected = false;  ///< valid only when `components` is 1 or 2
  index_t components = 0;  ///< 1 or 2 (see below)
};

/// Predict bipartiteness and connectivity of the product of two *connected*
/// factors:
///  * C bipartite ⇔ at least one factor is bipartite (loop-free);
///  * C connected ⇔ at least one factor has an odd closed walk (Thm 1 when
///    that factor is non-bipartite; Thm 2 when it is a bipartite factor
///    with full self loops); otherwise C has exactly 2 components
///    (Weichsel, the Fig. 1 top case).
/// Throws domain_error if either factor is disconnected (the component
/// count of C is then not determined by this simple rule).
ProductPrediction predict(const BipartiteKronecker& kp);

} // namespace kronlab::kron
