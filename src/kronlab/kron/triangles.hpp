// kronlab/kron/triangles.hpp
//
// Triangle (3-cycle) ground truth for Kronecker products — the formulas of
// the earlier nonstochastic work ([3], [12]) that this paper extends to
// 4-cycles.  Included both for completeness and because they prove the
// paper's framing: with a bipartite factor, the product's triangle ground
// truth is identically zero (diag(B³) = 0), which is exactly why the
// 4-cycle formulas are needed.
//
// For loop-free C = M ⊗ B (B loop-free):
//   t_C  = ½ diag(C³)      = ½ (diag(M³) ⊗ diag(B³))       [vertices]
//   Δ_C  = C² ∘ C          = (M²∘M) ⊗ (B²∘B)               [edges]
//   #K3  = Σ t_C / 3
// (When M carries self loops, diag(M³) counts lazy closed walks too; the
// identities above remain those of the loop-free product C because every
// term is exactly the Def-driven expansion of C's own powers.)

#pragma once

#include "kronlab/kron/factored.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::kron {

/// t_C — per-vertex triangle counts of the product (1 term, divisor 2).
FactoredVector vertex_triangles(const BipartiteKronecker& kp);

/// Δ_C — per-edge triangle counts (1 term).
FactoredMatrix edge_triangles(const BipartiteKronecker& kp);

/// Global triangle count (0 whenever a factor is bipartite — §III).
count_t global_triangles(const BipartiteKronecker& kp);

} // namespace kronlab::kron
