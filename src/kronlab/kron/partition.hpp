// kronlab/kron/partition.hpp
//
// Partitioned generation — the shared-memory stand-in for the paper's
// stated future work ("implement this style of generator in a distributed
// version of GraphBLAS").
//
// The product's row space factors as (i, k) pairs, so contiguous blocks of
// left-factor rows induce a clean P-way partition of C's rows: rank r owns
// rows [cut_r, cut_{r+1}) of M, i.e. rows [cut_r·n_B, cut_{r+1}·n_B) of C.
// Each rank streams exactly its own edges from the two (tiny, replicated)
// factors — no communication, deterministic output, balanced by stored
// entries of M.  This is precisely how the distributed generator would lay
// out work per MPI rank; here the "ranks" are thread-pool workers or
// separate output files.

#pragma once

#include <algorithm>
#include <iosfwd>
#include <vector>

#include "kronlab/kron/product.hpp"
#include "kronlab/kron/stream.hpp"

namespace kronlab::kron {

/// A P-way row partition of a Kronecker product.
class PartitionedStream {
public:
  /// Split into `parts` ranks, balancing stored entries of the left
  /// factor (hence edges of C) across ranks.
  PartitionedStream(const BipartiteKronecker& kp, index_t parts);

  [[nodiscard]] index_t parts() const {
    return static_cast<index_t>(cuts_.size()) - 1;
  }

  /// Left-factor row range [begin, end) owned by `rank`.
  [[nodiscard]] std::pair<index_t, index_t> owned_left_rows(
      index_t rank) const;

  /// Product row range owned by `rank`.
  [[nodiscard]] std::pair<index_t, index_t> owned_product_rows(
      index_t rank) const;

  /// Number of stored entries rank `rank` will emit.
  [[nodiscard]] count_t entries_of(index_t rank) const;

  /// Visit fn(p, q) for every stored entry whose row is owned by `rank`,
  /// in row-major order.  The union over ranks is exactly the full entry
  /// stream; ranges are disjoint.
  template <typename Fn>
  void for_each_entry(index_t rank, Fn&& fn) const {
    const auto [lo, hi] = owned_left_rows(rank);
    const auto& m = kp_->left();
    const auto& b = kp_->right();
    const index_t nb = b.nrows();
    const index_t ncb = b.ncols();
    for (index_t i = lo; i < hi; ++i) {
      const auto mc = m.row_cols(i);
      for (index_t k = 0; k < nb; ++k) {
        const index_t p = i * nb + k;
        const auto bc = b.row_cols(k);
        for (const index_t j : mc) {
          const index_t base = j * ncb;
          for (const index_t l : bc) fn(p, base + l);
        }
      }
    }
  }

  /// As for_each_entry, but skip the first `skip` entries of the rank's
  /// stream arithmetically — O(owned rows), not O(skipped entries) — so a
  /// durable resume (io/stream_gen.hpp) fast-forwards to its cursor
  /// without regenerating the committed prefix.  Row i contributes
  /// deg_M(i)·nnz(B) entries, pair (i,k) contributes deg_M(i)·deg_B(k),
  /// and within a pair entries run j-major, so the cursor decomposes by
  /// division alone.
  template <typename Fn>
  void for_each_entry_from(index_t rank, count_t skip, Fn&& fn) const {
    KRONLAB_REQUIRE(skip >= 0 && skip <= entries_of(rank),
                    "resume cursor outside the rank's entry range");
    const auto [lo, hi] = owned_left_rows(rank);
    const auto& m = kp_->left();
    const auto& b = kp_->right();
    const index_t nb = b.nrows();
    const index_t ncb = b.ncols();
    const count_t bnnz = b.nnz();
    index_t i = lo;
    while (i < hi && skip >= m.row_degree(i) * bnnz) {
      skip -= m.row_degree(i) * bnnz;
      ++i;
    }
    for (; i < hi; ++i) {
      const auto mc = m.row_cols(i);
      const auto dm = static_cast<count_t>(mc.size());
      for (index_t k = 0; k < nb; ++k) {
        const index_t p = i * nb + k;
        const auto bc = b.row_cols(k);
        const auto db = static_cast<count_t>(bc.size());
        if (skip >= dm * db) {
          skip -= dm * db;
          continue;
        }
        // First (possibly partial) pair: j-major within-pair index math.
        const auto jj0 = static_cast<std::size_t>(skip / std::max<count_t>(db, 1));
        const auto ll0 = static_cast<std::size_t>(skip % std::max<count_t>(db, 1));
        skip = 0;
        for (std::size_t jj = jj0; jj < mc.size(); ++jj) {
          const index_t base = mc[jj] * ncb;
          for (std::size_t ll = jj == jj0 ? ll0 : 0; ll < bc.size(); ++ll) {
            fn(p, base + bc[ll]);
          }
        }
      }
    }
  }

  /// Stream rank `rank`'s entries as "p q" lines (1-based) with a rank
  /// header — one shard of a distributed edge-list dump.
  void write_shard(index_t rank, std::ostream& out) const;

private:
  const BipartiteKronecker* kp_;
  std::vector<index_t> cuts_; ///< parts+1 left-row cut points
};

} // namespace kronlab::kron
