#include "kronlab/kron/partition.hpp"

#include <ostream>

#include "kronlab/common/error.hpp"

namespace kronlab::kron {

PartitionedStream::PartitionedStream(const BipartiteKronecker& kp,
                                     index_t parts)
    : kp_(&kp) {
  KRONLAB_REQUIRE(parts >= 1, "need at least one partition");
  const auto& m = kp.left();
  // Greedy balanced cuts over M's stored entries: rank r takes rows until
  // it holds ≥ (r+1)/parts of the total.
  cuts_.reserve(static_cast<std::size_t>(parts) + 1);
  cuts_.push_back(0);
  const count_t total = m.nnz();
  index_t row = 0;
  count_t taken = 0;
  for (index_t r = 1; r < parts; ++r) {
    const count_t target = (total * r + parts - 1) / parts;
    while (row < m.nrows() && taken < target) {
      taken += m.row_degree(row);
      ++row;
    }
    cuts_.push_back(row);
  }
  cuts_.push_back(m.nrows());
}

std::pair<index_t, index_t> PartitionedStream::owned_left_rows(
    index_t rank) const {
  KRONLAB_REQUIRE(rank >= 0 && rank < parts(), "rank out of range");
  return {cuts_[static_cast<std::size_t>(rank)],
          cuts_[static_cast<std::size_t>(rank) + 1]};
}

std::pair<index_t, index_t> PartitionedStream::owned_product_rows(
    index_t rank) const {
  const auto [lo, hi] = owned_left_rows(rank);
  const index_t nb = kp_->right().nrows();
  return {lo * nb, hi * nb};
}

count_t PartitionedStream::entries_of(index_t rank) const {
  const auto [lo, hi] = owned_left_rows(rank);
  const auto& m = kp_->left();
  count_t m_entries = 0;
  for (index_t i = lo; i < hi; ++i) m_entries += m.row_degree(i);
  return m_entries * kp_->right().nnz();
}

void PartitionedStream::write_shard(index_t rank, std::ostream& out) const {
  const auto [plo, phi] = owned_product_rows(rank);
  out << "% shard " << rank << '/' << parts() << " rows [" << plo << ','
      << phi << ") entries " << entries_of(rank) << '\n';
  for_each_entry(rank, [&](index_t p, index_t q) {
    out << (p + 1) << ' ' << (q + 1) << '\n';
  });
}

} // namespace kronlab::kron
