#include "kronlab/kron/product.hpp"

#include "kronlab/common/error.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/grb/kron.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::kron {

namespace {

void require_structural(const Adjacency& m, const Adjacency& b,
                        const char* where) {
  graph::require_undirected(m, where);
  graph::require_undirected(b, where);
  if (!grb::has_no_self_loops(b)) {
    throw domain_error(std::string(where) +
                       ": right factor B must have no self loops (§II-B)");
  }
}

} // namespace

BipartiteKronecker BipartiteKronecker::assumption_i(Adjacency a,
                                                    Adjacency b) {
  require_structural(a, b, "assumption_i");
  if (!grb::has_no_self_loops(a)) {
    throw domain_error("assumption_i: factor A must have no self loops");
  }
  if (graph::is_bipartite(a)) {
    throw domain_error("assumption_i: factor A must be non-bipartite");
  }
  if (!graph::is_connected(a)) {
    throw domain_error("assumption_i: factor A must be connected");
  }
  if (!graph::is_bipartite(b)) {
    throw domain_error("assumption_i: factor B must be bipartite");
  }
  if (!graph::is_connected(b)) {
    throw domain_error("assumption_i: factor B must be connected");
  }
  return BipartiteKronecker(std::move(a), std::move(b), Mode::assumption_i);
}

BipartiteKronecker BipartiteKronecker::assumption_ii(const Adjacency& a,
                                                     Adjacency b) {
  require_structural(a, b, "assumption_ii");
  if (!grb::has_no_self_loops(a)) {
    throw domain_error(
        "assumption_ii: pass the loop-free bipartite A — the self loops "
        "are added here");
  }
  if (!graph::is_bipartite(a)) {
    throw domain_error("assumption_ii: factor A must be bipartite");
  }
  if (!graph::is_connected(a)) {
    throw domain_error("assumption_ii: factor A must be connected");
  }
  if (!graph::is_bipartite(b)) {
    throw domain_error("assumption_ii: factor B must be bipartite");
  }
  if (!graph::is_connected(b)) {
    throw domain_error("assumption_ii: factor B must be connected");
  }
  return BipartiteKronecker(grb::add_identity(a), std::move(b),
                            Mode::assumption_ii);
}

BipartiteKronecker BipartiteKronecker::raw(Adjacency m, Adjacency b) {
  require_structural(m, b, "raw");
  return BipartiteKronecker(std::move(m), std::move(b), Mode::raw);
}

bool BipartiteKronecker::has_edge(index_t p, index_t q) const {
  const auto sh = shape();
  const auto [i, k] = sh.split_row(p);
  const auto [j, l] = sh.split_col(q);
  return m_.has(i, j) && b_.has(k, l);
}

Adjacency BipartiteKronecker::materialize() const {
  return grb::kron(m_, b_);
}

} // namespace kronlab::kron
