// kronlab/kron/community.hpp
//
// Ground-truth community structure in Kronecker products (§III-C):
// the product-of-sets construction (Def. 12), exact internal/external edge
// counts (Thm 7), and the density scaling laws (Cors. 1–2).
//
// These apply to the Assumption 1(ii) construction C = (A + I_A) ⊗ B with
// bipartite factors.
//
// NOTE on Cor. 1: with ρ_in exactly as printed in Def. 11
// (ρ_in = m_in/(|R||T|)), the provable constant is ω, not 2ω — the paper's
// proof doubles the numerator relative to its own Def. 11.  We implement
// the provable bound ρ_in(S_C) ≥ ω·ρ_in(S_A)·ρ_in(S_B) and record the
// discrepancy in EXPERIMENTS.md.

#pragma once

#include "kronlab/graph/community.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::kron {

/// A factor community with its side split (R ⊂ U, T ⊂ W) plus the factor's
/// side sizes (needed by the density denominators).
struct FactorCommunity {
  graph::BipartiteSubset subset; ///< R and T vertex lists
  index_t n_u = 0;               ///< |U| of the factor
  index_t n_w = 0;               ///< |W| of the factor
  count_t m_in = 0;              ///< internal edge count (Def. 11)
  count_t m_out = 0;             ///< external edge count (Def. 11)

  [[nodiscard]] index_t size() const { return subset.size(); }
  [[nodiscard]] double rho_in() const;
  [[nodiscard]] double rho_out() const;
};

/// Measure a factor community directly on its graph.
FactorCommunity measure_factor_community(const Adjacency& a,
                                         const graph::Bipartition& part,
                                         const graph::BipartiteSubset& s);

/// Exact product-community statistics per Thm 7 plus the Def. 12 geometry.
struct ProductCommunity {
  count_t m_in = 0;
  count_t m_out = 0;
  index_t r_size = 0; ///< |R_C| = |S_A|·|R_B|
  index_t t_size = 0; ///< |T_C| = |S_A|·|T_B|
  index_t n_u = 0;    ///< |U_C| = n_A·|U_B|
  index_t n_w = 0;    ///< |W_C| = n_A·|W_B|

  [[nodiscard]] double rho_in() const;
  [[nodiscard]] double rho_out() const;
};

/// Thm 7: m_in(S_C) = 2·m_in(S_A)·m_in(S_B) + |S_A|·m_in(S_B), and the
/// four-term m_out expansion — evaluated purely from factor statistics.
ProductCommunity product_community(const FactorCommunity& sa,
                                   const FactorCommunity& sb);

/// Def. 12: the product subset S_C = S_A ⊗ S_B as explicit product vertex
/// ids, split into (R_C, T_C) by the B-side of each vertex.  For validating
/// Thm 7 against direct counting on a materialized product.
graph::BipartiteSubset product_subset(const FactorCommunity& sa,
                                      const FactorCommunity& sb,
                                      const graph::Bipartition& part_b,
                                      index_t n_b);

/// Cor. 1 lower bound on ρ_in(S_C): ω·ρ_in(S_A)·ρ_in(S_B) with
/// ω = min(|R_A|,|T_A|)/|S_A| (see header note on the constant).
double cor1_lower_bound(const FactorCommunity& sa,
                        const FactorCommunity& sb);

/// Cor. 2 upper bound on ρ_out(S_C):
/// (1+ξ_A)(1+ξ_B)/(1−ε²)·ρ_out(S_A)·ρ_out(S_B).  Requires m_out > 0 in
/// both factors and ε < 1.
double cor2_upper_bound(const FactorCommunity& sa,
                        const FactorCommunity& sb);

} // namespace kronlab::kron
