// kronlab/kron/distance.hpp
//
// Ground-truth shortest-path structure for Kronecker products.
//
// The paper (§I) notes that ground truth for distances, eccentricity and
// diameter "carries over directly" from the earlier nonstochastic
// Kronecker work.  The underlying identity: C = M ⊗ B has a length-h walk
// from (i,k) to (j,l) iff M has a length-h walk i→j AND B has a length-h
// walk k→l.  A graph has a length-h walk between two vertices iff
// h ≥ dist^{h mod 2}, where dist^π is the minimum walk length of parity π
// (walks extend by +2 by retracing any edge).  Therefore
//
//   dist_C((i,k),(j,l)) = min over π ∈ {even, odd} of
//                         max(dist_M^π(i,j), dist_B^π(k,l)),
//
// with ∞ where a parity class is empty (e.g. the odd class of a bipartite
// same-side pair, or any pair in different components).  Self loops are
// handled naturally: a loop is a parity-flipping step in the parity BFS —
// which is exactly why the (A + I_A) ⊗ B construction (Thm 2) is
// connected.
//
// Parity distance tables are O(n²) per factor — factor-sized, so cheap.
// Product eccentricities are exact but O(n_M²·n_B²) when computed for all
// vertices; use them on factor scales (the intended regime).

#pragma once

#include <vector>

#include "kronlab/kron/product.hpp"

namespace kronlab::kron {

/// Marker for "no walk of this parity exists".
inline constexpr index_t dist_unreachable = -1;

/// All-pairs minimum walk lengths split by parity, from BFS on the
/// (vertex × parity) layered graph.
class ParityDistances {
public:
  /// Compute for one factor (undirected; self loops allowed).
  static ParityDistances compute(const Adjacency& a);

  [[nodiscard]] index_t n() const { return n_; }

  /// Minimum even-length walk i→j, or dist_unreachable.
  /// (Note: even(i,i) = 0.)
  [[nodiscard]] index_t even(index_t i, index_t j) const {
    return table_[idx(i, j, 0)];
  }
  /// Minimum odd-length walk i→j, or dist_unreachable.
  [[nodiscard]] index_t odd(index_t i, index_t j) const {
    return table_[idx(i, j, 1)];
  }
  /// By parity flag (0 = even, 1 = odd).
  [[nodiscard]] index_t parity(index_t i, index_t j, int par) const {
    return table_[idx(i, j, par)];
  }
  /// Plain shortest-path distance: min of the two parities.
  [[nodiscard]] index_t dist(index_t i, index_t j) const;

private:
  [[nodiscard]] std::size_t idx(index_t i, index_t j, int par) const {
    KRONLAB_DBG_ASSERT(i >= 0 && i < n_ && j >= 0 && j < n_, "index range");
    return static_cast<std::size_t>((i * n_ + j) * 2 + par);
  }
  index_t n_ = 0;
  std::vector<index_t> table_;
};

/// Factor-space distance between product vertices p and q;
/// dist_unreachable if they lie in different components of C.
index_t product_distance(const BipartiteKronecker& kp,
                         const ParityDistances& pd_m,
                         const ParityDistances& pd_b, index_t p, index_t q);

/// Exact eccentricity of every product vertex, from factor parity tables
/// only.  Throws domain_error if the product is disconnected.
std::vector<index_t> product_eccentricities(const BipartiteKronecker& kp);

/// Exact diameter / radius of the product (throws if disconnected).
index_t product_diameter(const BipartiteKronecker& kp);
index_t product_radius(const BipartiteKronecker& kp);

} // namespace kronlab::kron
