#include "kronlab/kron/power.hpp"

#include <algorithm>

#include "kronlab/common/error.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/grb/kron.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab::kron {

KFactoredVector::KFactoredVector(std::vector<index_t> sizes,
                                 count_t divisor)
    : sizes_(std::move(sizes)), divisor_(divisor) {
  KRONLAB_REQUIRE(!sizes_.empty(), "need at least one factor");
  KRONLAB_REQUIRE(divisor >= 1, "divisor must be >= 1");
  for (const index_t n : sizes_) {
    KRONLAB_REQUIRE(n >= 0, "negative factor size");
    total_ *= n;
  }
}

void KFactoredVector::add_term(count_t coeff,
                               std::vector<grb::Vector<count_t>> parts) {
  KRONLAB_REQUIRE(parts.size() == sizes_.size(),
                  "term must carry one vector per factor");
  for (std::size_t i = 0; i < parts.size(); ++i) {
    KRONLAB_REQUIRE(parts[i].size() == sizes_[i],
                    "term part has wrong factor size");
  }
  terms_.push_back({coeff, std::move(parts)});
}

count_t KFactoredVector::at(index_t p) const {
  KRONLAB_DBG_ASSERT(p >= 0 && p < total_, "product index out of range");
  // Mixed-radix split, most-significant factor first.
  count_t acc = 0;
  for (const Term& t : terms_) {
    count_t prod = t.coeff;
    index_t rest = p;
    for (std::size_t f = sizes_.size(); f-- > 0;) {
      const index_t n = sizes_[f];
      prod *= t.parts[f][rest % n];
      rest /= n;
    }
    acc += prod;
  }
  KRONLAB_DBG_ASSERT(acc % divisor_ == 0,
                     "factored value not divisible — formula bug");
  return acc / divisor_;
}

count_t KFactoredVector::reduce() const {
  count_t acc = 0;
  for (const Term& t : terms_) {
    count_t prod = t.coeff;
    for (const auto& part : t.parts) prod *= grb::reduce(part);
    acc += prod;
  }
  KRONLAB_DBG_ASSERT(acc % divisor_ == 0,
                     "factored reduction not divisible — formula bug");
  return acc / divisor_;
}

grb::Vector<count_t> KFactoredVector::materialize() const {
  grb::Vector<count_t> out(total_, 0);
  for (const Term& t : terms_) {
    grb::Vector<count_t> acc(std::vector<count_t>{t.coeff});
    for (const auto& part : t.parts) acc = grb::kron(acc, part);
    for (index_t p = 0; p < total_; ++p) out[p] += acc[p];
  }
  for (index_t p = 0; p < total_; ++p) {
    KRONLAB_DBG_ASSERT(out[p] % divisor_ == 0,
                       "factored value not divisible — formula bug");
    out[p] /= divisor_;
  }
  return out;
}

ChainKronecker ChainKronecker::of(std::vector<Adjacency> factors) {
  KRONLAB_REQUIRE(!factors.empty(), "need at least one factor");
  bool some_loop_free = false;
  for (const auto& f : factors) {
    graph::require_undirected(f, "ChainKronecker");
    some_loop_free |= grb::has_no_self_loops(f);
  }
  if (!some_loop_free) {
    throw domain_error(
        "ChainKronecker: at least one factor must be loop-free so the "
        "product is a simple graph (§II-B)");
  }
  return ChainKronecker(std::move(factors));
}

ChainKronecker ChainKronecker::power(const Adjacency& a, int k) {
  KRONLAB_REQUIRE(k >= 1, "power requires k >= 1");
  return of(std::vector<Adjacency>(static_cast<std::size_t>(k), a));
}

index_t ChainKronecker::num_vertices() const {
  index_t n = 1;
  for (const auto& f : factors_) n *= f.nrows();
  return n;
}

count_t ChainKronecker::num_edges() const {
  count_t nnz = 1;
  for (const auto& f : factors_) nnz *= f.nnz();
  return nnz / 2;
}

bool ChainKronecker::product_bipartite() const {
  for (const auto& f : factors_) {
    if (grb::has_no_self_loops(f) && graph::is_bipartite(f)) return true;
  }
  return false;
}

Adjacency ChainKronecker::materialize() const {
  KRONLAB_TRACE_SPAN("kron", "chain_materialize");
  Adjacency acc = factors_.front();
  for (std::size_t f = 1; f < factors_.size(); ++f) {
    acc = grb::kron(acc, factors_[f]);
  }
  return acc;
}

std::pair<Adjacency, Adjacency> ChainKronecker::collapse_pair() const {
  KRONLAB_TRACE_SPAN("kron", "chain_collapse_pair");
  const auto k = factors_.size();
  KRONLAB_REQUIRE(k >= 2, "collapse_pair requires at least two factors");
  // The right half must keep a loop-free factor (the product of the
  // chain's tail is loop-free as soon as one tail factor is).
  std::size_t last_loop_free = k; // sentinel: none
  for (std::size_t f = 0; f < k; ++f) {
    if (grb::has_no_self_loops(factors_[f])) last_loop_free = f;
  }
  KRONLAB_DBG_ASSERT(last_loop_free < k,
                     "validated chain lost its loop-free factor");
  // Balance |V_L| vs |V_R| over admissible splits s (L = [0,s), R = [s,k)).
  const index_t total = num_vertices();
  std::size_t best = 1;
  index_t best_cost = total + 1;
  index_t left_n = 1;
  for (std::size_t s = 1; s < k; ++s) {
    left_n *= factors_[s - 1].nrows();
    if (s > last_loop_free) break; // R would have no loop-free factor
    const index_t cost = std::max(left_n, total / left_n);
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  const auto half = [&](std::size_t lo, std::size_t hi) {
    Adjacency acc = factors_[lo];
    for (std::size_t f = lo + 1; f < hi; ++f) acc = grb::kron(acc, factors_[f]);
    return acc;
  };
  return {half(0, best), half(best, k)};
}

KFactoredVector ChainKronecker::degrees() const {
  KRONLAB_TRACE_SPAN("kron", "chain_degrees");
  std::vector<index_t> sizes;
  std::vector<grb::Vector<count_t>> d;
  for (const auto& f : factors_) {
    sizes.push_back(f.nrows());
    d.push_back(grb::reduce_rows(f));
  }
  KFactoredVector out(std::move(sizes));
  out.add_term(1, std::move(d));
  return out;
}

KFactoredVector ChainKronecker::vertex_squares() const {
  KRONLAB_TRACE_SPAN("kron", "chain_vertex_squares");
  std::vector<index_t> sizes;
  std::vector<FactorStats> stats;
  for (const auto& f : factors_) {
    sizes.push_back(f.nrows());
    stats.push_back(FactorStats::compute(f));
  }
  KFactoredVector out(std::move(sizes), /*divisor=*/2);
  const auto collect = [&](auto member, count_t coeff) {
    std::vector<grb::Vector<count_t>> parts;
    parts.reserve(stats.size());
    for (const auto& st : stats) parts.push_back(st.*member);
    out.add_term(coeff, std::move(parts));
  };
  collect(&FactorStats::diag4, +1);
  collect(&FactorStats::d2, -1);
  collect(&FactorStats::w2, -1);
  collect(&FactorStats::d, +1);
  return out;
}

count_t ChainKronecker::global_squares() const {
  KRONLAB_TRACE_SPAN("kron", "chain_global_squares");
  return vertex_squares().reduce() / 4;
}

} // namespace kronlab::kron
