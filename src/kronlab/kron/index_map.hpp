// kronlab/kron/index_map.hpp
//
// Block index maps of §II-A, in 0-based form.
//
// The paper defines (1-based) α_n(i) = ⌊(i−1)/n⌋+1, β_n(i) = ((i−1) mod n)+1
// and γ_n(x,y) = (x−1)n + y.  kronlab uses 0-based indices throughout, so
// these become plain division/modulo; the tests verify the 1-based identity
// i = γ(α(i), β(i)) transported to 0-based form.

#pragma once

#include "kronlab/common/error.hpp"
#include "kronlab/common/types.hpp"

namespace kronlab::kron {

/// Block number of product index p for inner block size n (factor-A index).
constexpr index_t alpha(index_t p, index_t n) { return p / n; }

/// Intra-block index of p for inner block size n (factor-B index).
constexpr index_t beta(index_t p, index_t n) { return p % n; }

/// Compose factor indices (x = A-side, y = B-side) into a product index.
constexpr index_t gamma(index_t x, index_t y, index_t n) {
  return x * n + y;
}

/// Shape of a Kronecker product of an (m_a × n_a) and an (m_b × n_b) factor,
/// bundling the index maps with their block sizes.
struct ProductShape {
  index_t rows_a = 0;
  index_t cols_a = 0;
  index_t rows_b = 0;
  index_t cols_b = 0;

  [[nodiscard]] index_t rows() const { return rows_a * rows_b; }
  [[nodiscard]] index_t cols() const { return cols_a * cols_b; }

  /// Split a product row index p into (i, k).
  [[nodiscard]] std::pair<index_t, index_t> split_row(index_t p) const {
    KRONLAB_DBG_ASSERT(p >= 0 && p < rows(), "product row out of range");
    return {alpha(p, rows_b), beta(p, rows_b)};
  }
  /// Split a product column index q into (j, l).
  [[nodiscard]] std::pair<index_t, index_t> split_col(index_t q) const {
    KRONLAB_DBG_ASSERT(q >= 0 && q < cols(), "product col out of range");
    return {alpha(q, cols_b), beta(q, cols_b)};
  }
  /// Compose (i, k) into a product row index.
  [[nodiscard]] index_t row(index_t i, index_t k) const {
    KRONLAB_DBG_ASSERT(i >= 0 && i < rows_a && k >= 0 && k < rows_b,
                       "factor row out of range");
    return gamma(i, k, rows_b);
  }
  /// Compose (j, l) into a product column index.
  [[nodiscard]] index_t col(index_t j, index_t l) const {
    KRONLAB_DBG_ASSERT(j >= 0 && j < cols_a && l >= 0 && l < cols_b,
                       "factor col out of range");
    return gamma(j, l, cols_b);
  }
};

} // namespace kronlab::kron
