// kronlab/kron/stream.hpp
//
// Streaming edge generation for Kronecker products.
//
// A product with |E_C| = nnz(M)·nnz(B)/2 edges can be far too large to
// materialize; EdgeStream visits every stored (directed) entry of
// C = M ⊗ B in row-major order from the factor CSRs alone, in O(1) memory
// per edge.  This is the generator a massive-scale benchmark harness uses:
// stream edges to disk / to the system under test, while the factored
// ground truth (kron/ground_truth.hpp) provides the answers.
//
// GroundTruthStream additionally joins each edge with its exact 4-cycle
// participation ◇_pq on the fly, using factor-aligned per-edge tables —
// the "GraphBLAS code that samples 4-cycle counts at edges without
// materializing the product" the paper sketches in §I.

#pragma once

#include <iosfwd>

#include "kronlab/grb/ops.hpp"
#include "kronlab/kron/product.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::kron {

class EdgeStream {
public:
  explicit EdgeStream(const BipartiteKronecker& kp) : kp_(&kp) {}

  /// Visit fn(p, q) for every stored entry of C, rows in order.  Each
  /// undirected edge is seen twice (as (p,q) and (q,p)) — exactly the CSR
  /// entry set.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    const auto& m = kp_->left();
    const auto& b = kp_->right();
    const index_t nb = b.nrows();
    const index_t ncb = b.ncols();
    for (index_t i = 0; i < m.nrows(); ++i) {
      const auto mc = m.row_cols(i);
      for (index_t k = 0; k < nb; ++k) {
        const index_t p = i * nb + k;
        const auto bc = b.row_cols(k);
        for (const index_t j : mc) {
          const index_t base = j * ncb;
          for (const index_t l : bc) fn(p, base + l);
        }
      }
    }
  }

  /// Visit fn(p, q) for every stored entry whose product row derives from
  /// left-factor rows [left_lo, left_hi) — the restartable unit of the
  /// checkpointed sharded generator (dist/sharded.hpp): generation can
  /// resume at any left-row boundary with no other state.
  template <typename Fn>
  void for_each_entry_rows(index_t left_lo, index_t left_hi,
                           Fn&& fn) const {
    const auto& m = kp_->left();
    const auto& b = kp_->right();
    KRONLAB_REQUIRE(left_lo >= 0 && left_lo <= left_hi &&
                        left_hi <= m.nrows(),
                    "left-factor row range out of bounds");
    const index_t nb = b.nrows();
    const index_t ncb = b.ncols();
    for (index_t i = left_lo; i < left_hi; ++i) {
      const auto mc = m.row_cols(i);
      for (index_t k = 0; k < nb; ++k) {
        const index_t p = i * nb + k;
        const auto bc = b.row_cols(k);
        for (const index_t j : mc) {
          const index_t base = j * ncb;
          for (const index_t l : bc) fn(p, base + l);
        }
      }
    }
  }

  /// Visit fn(p, q) for every undirected edge once (p < q).
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for_each_entry([&](index_t p, index_t q) {
      if (p < q) fn(p, q);
    });
  }

  /// Parallel entry visit, partitioned over left-factor rows; fn must be
  /// safe to call concurrently.
  template <typename Fn>
  void for_each_entry_parallel(Fn&& fn) const {
    const auto& m = kp_->left();
    const auto& b = kp_->right();
    const index_t nb = b.nrows();
    const index_t ncb = b.ncols();
    parallel_for(0, m.nrows() * nb, [&](index_t p) {
      const index_t i = p / nb;
      const index_t k = p % nb;
      const auto mc = m.row_cols(i);
      const auto bc = b.row_cols(k);
      for (const index_t j : mc) {
        const index_t base = j * ncb;
        for (const index_t l : bc) fn(p, base + l);
      }
    });
  }

  /// Count stored entries by streaming (tests compare against
  /// nnz(M)·nnz(B)).
  [[nodiscard]] count_t count_entries() const;

  /// Write each undirected edge once as "p q" (1-based) with a header line.
  void write_edge_list(std::ostream& out) const;

private:
  const BipartiteKronecker* kp_;
};

/// Streams (p, q, ◇_pq): each product edge with its exact 4-cycle count.
///
/// Construction precomputes factor-aligned tables (O(nnz(M)+nnz(B))
/// memory); streaming then costs O(1) per edge via the factored identity
///   ◇_pq = (M³∘M)_ij·(B³∘B)_kl − d_M(i)·d_B(k) − d_M(j)·d_B(l) + 1.
class GroundTruthStream {
public:
  explicit GroundTruthStream(const BipartiteKronecker& kp);

  /// Visit fn(p, q, squares) for every stored entry.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    const auto& m = kp_->left();
    const auto& b = kp_->right();
    const index_t nb = b.nrows();
    const index_t ncb = b.ncols();
    const auto& mrp = m.row_ptr();
    const auto& brp = b.row_ptr();
    for (index_t i = 0; i < m.nrows(); ++i) {
      const auto mc = m.row_cols(i);
      const auto m_off = static_cast<std::size_t>(mrp[static_cast<std::size_t>(i)]);
      for (index_t k = 0; k < nb; ++k) {
        const index_t p = i * nb + k;
        const auto bc = b.row_cols(k);
        const auto b_off =
            static_cast<std::size_t>(brp[static_cast<std::size_t>(k)]);
        for (std::size_t em = 0; em < mc.size(); ++em) {
          const index_t j = mc[em];
          const count_t m3 = m3_aligned_[m_off + em];
          const count_t dj = d_m_[j];
          const index_t base = j * ncb;
          for (std::size_t eb = 0; eb < bc.size(); ++eb) {
            const index_t l = bc[eb];
            const count_t sq = m3 * b3_aligned_[b_off + eb] -
                               d_m_[i] * d_b_[k] - dj * d_b_[l] + 1;
            fn(p, base + l, sq);
          }
        }
      }
    }
  }

  /// Parallel entry visit partitioned over product rows; fn(p, q, squares)
  /// must be safe to call concurrently.
  template <typename Fn>
  void for_each_entry_parallel(Fn&& fn) const {
    const auto& m = kp_->left();
    const auto& b = kp_->right();
    const index_t nb = b.nrows();
    const index_t ncb = b.ncols();
    const auto& mrp = m.row_ptr();
    const auto& brp = b.row_ptr();
    parallel_for(0, m.nrows() * nb, [&](index_t p) {
      const index_t i = p / nb;
      const index_t k = p % nb;
      const auto mc = m.row_cols(i);
      const auto m_off =
          static_cast<std::size_t>(mrp[static_cast<std::size_t>(i)]);
      const auto bc = b.row_cols(k);
      const auto b_off =
          static_cast<std::size_t>(brp[static_cast<std::size_t>(k)]);
      for (std::size_t em = 0; em < mc.size(); ++em) {
        const index_t j = mc[em];
        const count_t m3 = m3_aligned_[m_off + em];
        const count_t dj = d_m_[j];
        const index_t base = j * ncb;
        for (std::size_t eb = 0; eb < bc.size(); ++eb) {
          const index_t l = bc[eb];
          const count_t sq = m3 * b3_aligned_[b_off + eb] -
                             d_m_[i] * d_b_[k] - dj * d_b_[l] + 1;
          fn(p, base + l, sq);
        }
      }
    });
  }

private:
  const BipartiteKronecker* kp_;
  grb::Vector<count_t> d_m_;
  grb::Vector<count_t> d_b_;
  std::vector<count_t> m3_aligned_; ///< (M³)_ij aligned with M's CSR entries
  std::vector<count_t> b3_aligned_; ///< (B³)_kl aligned with B's CSR entries
};

} // namespace kronlab::kron
