// kronlab/kron/oracle.hpp
//
// GroundTruthOracle — the random-access validation oracle for a Kronecker
// product: O(1)-per-query exact statistics (degree, two-hop walks, vertex
// and edge 4-cycle counts, local closure, edge clustering) plus uniform
// vertex/edge sampling, all from factor-sized state.
//
// This is the object a validation harness holds while the system under
// test processes the streamed graph: spot-check any vertex or edge the SUT
// reports, or draw uniform random probes, without materializing C.

#pragma once

#include <map>
#include <optional>

#include "kronlab/common/random.hpp"
#include "kronlab/kron/factored.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::kron {

/// Exact statistics of one product vertex.
struct VertexRecord {
  index_t p = 0;
  count_t degree = 0;
  count_t two_hop = 0; ///< w²(p)
  count_t squares = 0; ///< 4-cycle participation s_p
  double closure = 0;  ///< local closure (2s_p / interior 3-paths at p)
};

/// Exact statistics of one product edge.
struct EdgeRecord {
  index_t p = 0, q = 0;
  count_t degree_p = 0, degree_q = 0;
  count_t squares = 0; ///< ◇_pq
  double gamma = 0;    ///< Def. 10 edge clustering, 0 when degenerate
};

class GroundTruthOracle {
public:
  explicit GroundTruthOracle(const BipartiteKronecker& kp);

  [[nodiscard]] index_t num_vertices() const { return kp_->num_vertices(); }
  [[nodiscard]] count_t num_edges() const { return kp_->num_edges(); }

  /// O(#terms) exact vertex record.
  [[nodiscard]] VertexRecord vertex(index_t p) const;

  /// Exact edge record, or nullopt when (p, q) is not an edge of the
  /// product (including out-of-range indices).  This is the probe form a
  /// query server uses: a bad probe is an answer, not an exception.
  [[nodiscard]] std::optional<EdgeRecord> try_edge(index_t p,
                                                   index_t q) const;

  /// Exact edge record; throws invalid_argument if (p,q) is not an edge.
  [[nodiscard]] EdgeRecord edge(index_t p, index_t q) const;

  /// Uniform random vertex probe.
  [[nodiscard]] VertexRecord sample_vertex(Rng& rng) const;

  /// Uniform random edge probe (uniform over undirected edges).
  [[nodiscard]] EdgeRecord sample_edge(Rng& rng) const;

  /// Exact degree histogram of C from the factor histograms:
  /// hist_C[d] = Σ_{dm·db = d} hist_M[dm] · hist_B[db].
  [[nodiscard]] std::map<count_t, index_t> degree_histogram() const;

  /// Materialized local-closure vector (validation only; O(|V_C|)).
  [[nodiscard]] grb::Vector<double> local_closure() const;

private:
  const BipartiteKronecker* kp_;
  FactorStats stats_m_;
  FactorStats stats_b_;
  FactoredVector squares_;
  /// Row index of each stored factor entry (for uniform edge sampling).
  std::vector<index_t> entry_row_m_;
  std::vector<index_t> entry_row_b_;

  [[nodiscard]] count_t edge_squares_at(index_t i, index_t j, index_t k,
                                        index_t l) const;
};

} // namespace kronlab::kron
