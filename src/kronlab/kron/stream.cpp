#include "kronlab/kron/stream.hpp"

#include <ostream>

#include "kronlab/grb/ops.hpp"

namespace kronlab::kron {

count_t EdgeStream::count_entries() const {
  count_t n = 0;
  for_each_entry([&](index_t, index_t) { ++n; });
  return n;
}

void EdgeStream::write_edge_list(std::ostream& out) const {
  out << "% kronecker product edge list: " << kp_->num_vertices()
      << " vertices, " << kp_->num_edges() << " edges\n";
  for_each_edge([&](index_t p, index_t q) {
    out << (p + 1) << ' ' << (q + 1) << '\n';
  });
}

GroundTruthStream::GroundTruthStream(const BipartiteKronecker& kp)
    : kp_(&kp) {
  const auto& m = kp.left();
  const auto& b = kp.right();
  d_m_ = grb::reduce_rows(m);
  d_b_ = grb::reduce_rows(b);
  // (A³)_ij at stored edges only, via the masked product (A²·A) ∘ A:
  // value(i,j) = Σ_k (A²)_ik · A_kj, a sorted merge of A² row i with A row
  // j (A undirected ⇒ column j of A is row j).  This never materializes
  // A³, so streams over large heavy-tail factors stay cheap.
  const auto align3 = [](const Adjacency& a) {
    const auto a2 = grb::mxm(a, a);
    std::vector<count_t> aligned(static_cast<std::size_t>(a.nnz()));
    std::size_t o = 0;
    for (index_t i = 0; i < a.nrows(); ++i) {
      const auto a2c = a2.row_cols(i);
      const auto a2v = a2.row_vals(i);
      for (const index_t j : a.row_cols(i)) {
        const auto ajc = a.row_cols(j);
        const auto ajv = a.row_vals(j);
        count_t acc = 0;
        std::size_t x = 0, y = 0;
        while (x < a2c.size() && y < ajc.size()) {
          if (a2c[x] < ajc[y]) {
            ++x;
          } else if (ajc[y] < a2c[x]) {
            ++y;
          } else {
            acc += a2v[x] * ajv[y];
            ++x;
            ++y;
          }
        }
        aligned[o++] = acc;
      }
    }
    return aligned;
  };
  m3_aligned_ = align3(m);
  b3_aligned_ = align3(b);
}

} // namespace kronlab::kron
