#include "kronlab/kron/connectivity.hpp"

#include "kronlab/common/error.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::kron {

FactorStructure factor_structure(const Adjacency& a) {
  FactorStructure fs;
  fs.connected = graph::is_connected(a);
  const bool loop_free = grb::has_no_self_loops(a);
  const bool two_colorable = graph::is_bipartite(a); // self loop ⇒ false
  fs.bipartite = loop_free && two_colorable;
  fs.has_odd_closed_walk = !two_colorable;
  return fs;
}

ProductPrediction predict(const BipartiteKronecker& kp) {
  const auto fm = factor_structure(kp.left());
  const auto fb = factor_structure(kp.right());
  if (!fm.connected || !fb.connected) {
    throw domain_error(
        "predict: both factors must be connected (Assumption 1)");
  }
  if (kp.left().nnz() == 0 || kp.right().nnz() == 0) {
    throw domain_error("predict: factors must have at least one edge");
  }
  ProductPrediction pp;
  pp.bipartite = fm.bipartite || fb.bipartite;
  if (fm.has_odd_closed_walk || fb.has_odd_closed_walk) {
    pp.components = 1; // Thm 1 / Thm 2
  } else {
    pp.components = 2; // two connected bipartite loop-free factors
  }
  pp.connected = (pp.components == 1);
  return pp;
}

} // namespace kronlab::kron
