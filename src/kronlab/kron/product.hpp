// kronlab/kron/product.hpp
//
// The bipartite Kronecker generator — the paper's primary object.
//
// A BipartiteKronecker holds the two factors as used in the product
// C = M ⊗ B, where M is either a non-bipartite factor A (Assumption 1(i))
// or a bipartite factor with all self loops A + I_A (Assumption 1(ii)), and
// B is bipartite and loop-free.  The named constructors validate the
// assumptions of Thms 1 and 2 so every downstream ground-truth call is on
// solid footing; raw() admits any loop-free-B pair for experimentation
// (e.g. the disconnected bipartite⊗bipartite product of Fig. 1).

#pragma once

#include "kronlab/graph/graph.hpp"
#include "kronlab/kron/index_map.hpp"

namespace kronlab::kron {

using graph::Adjacency;

class BipartiteKronecker {
public:
  /// Which connectivity construction produced this generator.
  enum class Mode {
    assumption_i,  ///< C = A ⊗ B, A non-bipartite (Thm 1)
    assumption_ii, ///< C = (A + I_A) ⊗ B, A bipartite (Thm 2)
    raw,           ///< unvalidated beyond structural requirements
  };

  /// Assumption 1(i): A non-bipartite, undirected, connected, loop-free;
  /// B bipartite, undirected, connected, loop-free.  Throws domain_error on
  /// violation.
  static BipartiteKronecker assumption_i(Adjacency a, Adjacency b);

  /// Assumption 1(ii): A and B bipartite, undirected, connected, loop-free;
  /// the product uses M = A + I_A.
  static BipartiteKronecker assumption_ii(const Adjacency& a, Adjacency b);

  /// Any undirected 0/1 pair with loop-free B (the ground-truth formulas'
  /// minimal requirement, §II-B).  M may carry self loops.
  static BipartiteKronecker raw(Adjacency m, Adjacency b);

  [[nodiscard]] const Adjacency& left() const { return m_; }
  [[nodiscard]] const Adjacency& right() const { return b_; }
  [[nodiscard]] Mode mode() const { return mode_; }

  [[nodiscard]] ProductShape shape() const {
    return {m_.nrows(), m_.ncols(), b_.nrows(), b_.ncols()};
  }

  /// |V_C| = n_M · n_B.
  [[nodiscard]] index_t num_vertices() const {
    return m_.nrows() * b_.nrows();
  }

  /// |E_C| (undirected).  C is loop-free because B is, so this is
  /// nnz(M)·nnz(B)/2.
  [[nodiscard]] count_t num_edges() const {
    return m_.nnz() * b_.nnz() / 2;
  }

  /// Degree of product vertex p without materializing: d_p = d_M(i)·d_B(k).
  [[nodiscard]] count_t degree(index_t p) const {
    const auto [i, k] = shape().split_row(p);
    return m_.row_degree(i) * b_.row_degree(k);
  }

  /// True iff product edge (p, q) exists, via two factor lookups.
  [[nodiscard]] bool has_edge(index_t p, index_t q) const;

  /// Materialize C as a CSR adjacency (O(|E_C|) memory).
  [[nodiscard]] Adjacency materialize() const;

private:
  BipartiteKronecker(Adjacency m, Adjacency b, Mode mode)
      : m_(std::move(m)), b_(std::move(b)), mode_(mode) {}

  Adjacency m_;
  Adjacency b_;
  Mode mode_;
};

} // namespace kronlab::kron
