#include "kronlab/kron/triangles.hpp"

#include "kronlab/grb/masked.hpp"
#include "kronlab/grb/ops.hpp"

namespace kronlab::kron {

namespace {

/// diag(M³) via one SpGEMM and a masked row-dot: diag(M³)_i = Σ_j (M²)_ij
/// M_ji = Σ over M's row i of (M²)_ij (M symmetric).
grb::Vector<count_t> diag_cube(const Adjacency& m) {
  const auto m2 = grb::mxm(m, m);
  grb::Vector<count_t> d(m.nrows(), 0);
  for (index_t i = 0; i < m.nrows(); ++i) {
    count_t acc = 0;
    for (const index_t j : m.row_cols(i)) acc += m2.at(i, j);
    d[i] = acc;
  }
  return d;
}

} // namespace

FactoredVector vertex_triangles(const BipartiteKronecker& kp) {
  FactoredVector out(kp.left().nrows(), kp.right().nrows(), /*divisor=*/2);
  out.add_term(1, diag_cube(kp.left()), diag_cube(kp.right()));
  return out;
}

FactoredMatrix edge_triangles(const BipartiteKronecker& kp) {
  const auto& m = kp.left();
  const auto& b = kp.right();
  FactoredMatrix out(m.nrows(), b.nrows());
  // M² ∘ M via the masked product (A·A on the structure of A).
  out.add_term(1, grb::mxm_masked(m, m, m), grb::mxm_masked(b, b, b));
  return out;
}

count_t global_triangles(const BipartiteKronecker& kp) {
  return vertex_triangles(kp).reduce() / 3;
}

} // namespace kronlab::kron
