#include "kronlab/kron/oracle.hpp"

#include "kronlab/common/error.hpp"

namespace kronlab::kron {

namespace {

std::vector<index_t> entry_rows(const Adjacency& a) {
  std::vector<index_t> rows(static_cast<std::size_t>(a.nnz()));
  std::size_t o = 0;
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto deg = static_cast<std::size_t>(a.row_degree(i));
    for (std::size_t k = 0; k < deg; ++k) rows[o++] = i;
  }
  return rows;
}

} // namespace

GroundTruthOracle::GroundTruthOracle(const BipartiteKronecker& kp)
    : kp_(&kp),
      stats_m_(FactorStats::compute(kp.left())),
      stats_b_(FactorStats::compute(kp.right())),
      squares_(vertex_squares(kp)),
      entry_row_m_(entry_rows(kp.left())),
      entry_row_b_(entry_rows(kp.right())) {}

VertexRecord GroundTruthOracle::vertex(index_t p) const {
  const auto sh = kp_->shape();
  const auto [i, k] = sh.split_row(p);
  VertexRecord r;
  r.p = p;
  r.degree = stats_m_.d[i] * stats_b_.d[k];
  r.two_hop = stats_m_.w2[i] * stats_b_.w2[k];
  r.squares = squares_.at(p);
  // Interior 3-paths at p: (d_p − 1)·(w²_p − d_p); each 4-cycle at p
  // closes two of them.
  const count_t denom = (r.degree - 1) * (r.two_hop - r.degree);
  r.closure = denom > 0 ? 2.0 * static_cast<double>(r.squares) /
                              static_cast<double>(denom)
                        : 0.0;
  return r;
}

count_t GroundTruthOracle::edge_squares_at(index_t i, index_t j, index_t k,
                                           index_t l) const {
  // Def. 9 on the product, per entry:
  //   ◇_pq = (M³)_ij·(B³)_kl − d_p − d_q + 1.
  const count_t m3 = stats_m_.m3_had_m.at(i, j);
  const count_t b3 = stats_b_.m3_had_m.at(k, l);
  return m3 * b3 - stats_m_.d[i] * stats_b_.d[k] -
         stats_m_.d[j] * stats_b_.d[l] + 1;
}

std::optional<EdgeRecord> GroundTruthOracle::try_edge(index_t p,
                                                      index_t q) const {
  const auto sh = kp_->shape();
  if (p < 0 || p >= sh.rows() || q < 0 || q >= sh.cols()) {
    return std::nullopt;
  }
  const auto [i, k] = sh.split_row(p);
  const auto [j, l] = sh.split_col(q);
  if (!kp_->left().has(i, j) || !kp_->right().has(k, l)) {
    return std::nullopt;
  }
  EdgeRecord r;
  r.p = p;
  r.q = q;
  r.degree_p = stats_m_.d[i] * stats_b_.d[k];
  r.degree_q = stats_m_.d[j] * stats_b_.d[l];
  r.squares = edge_squares_at(i, j, k, l);
  const count_t denom = (r.degree_p - 1) * (r.degree_q - 1);
  r.gamma = denom > 0 ? static_cast<double>(r.squares) /
                            static_cast<double>(denom)
                      : 0.0;
  return r;
}

EdgeRecord GroundTruthOracle::edge(index_t p, index_t q) const {
  const auto r = try_edge(p, q);
  KRONLAB_REQUIRE(r.has_value(), "(p,q) is not an edge of the product");
  return *r;
}

VertexRecord GroundTruthOracle::sample_vertex(Rng& rng) const {
  return vertex(rng.uniform(0, num_vertices() - 1));
}

EdgeRecord GroundTruthOracle::sample_edge(Rng& rng) const {
  const auto& m = kp_->left();
  const auto& b = kp_->right();
  KRONLAB_REQUIRE(m.nnz() > 0 && b.nnz() > 0, "product has no edges");
  // A uniform stored entry of M × a uniform stored entry of B is a uniform
  // stored entry of C; every undirected edge has exactly two stored
  // entries, so the induced undirected edge is uniform too.
  const auto em = static_cast<std::size_t>(rng.uniform(0, m.nnz() - 1));
  const auto eb = static_cast<std::size_t>(rng.uniform(0, b.nnz() - 1));
  const index_t i = entry_row_m_[em];
  const index_t j = m.col_idx()[em];
  const index_t k = entry_row_b_[eb];
  const index_t l = b.col_idx()[eb];
  const auto sh = kp_->shape();
  return edge(sh.row(i, k), sh.col(j, l));
}

std::map<count_t, index_t> GroundTruthOracle::degree_histogram() const {
  std::map<count_t, index_t> hist_m;
  for (index_t i = 0; i < stats_m_.d.size(); ++i) ++hist_m[stats_m_.d[i]];
  std::map<count_t, index_t> hist_b;
  for (index_t k = 0; k < stats_b_.d.size(); ++k) ++hist_b[stats_b_.d[k]];
  std::map<count_t, index_t> out;
  for (const auto& [dm, nm] : hist_m) {
    for (const auto& [db, nb] : hist_b) {
      out[dm * db] += nm * nb;
    }
  }
  return out;
}

grb::Vector<double> GroundTruthOracle::local_closure() const {
  grb::Vector<double> out(num_vertices(), 0.0);
  for (index_t p = 0; p < num_vertices(); ++p) {
    out[p] = vertex(p).closure;
  }
  return out;
}

} // namespace kronlab::kron
