#include "kronlab/common/random.hpp"

#include <cmath>

#include "kronlab/common/error.hpp"

namespace kronlab {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
} // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro state must not be all-zero; splitmix64 seeding guarantees a
  // well-mixed nonzero state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  KRONLAB_DBG_ASSERT(bound > 0, "next_below requires positive bound");
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

index_t Rng::uniform(index_t lo, index_t hi) {
  KRONLAB_DBG_ASSERT(lo <= hi, "uniform requires lo <= hi");
  return lo + static_cast<index_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

Rng Rng::split() {
  // Derive an independent stream by hashing fresh output through splitmix.
  std::uint64_t s = next();
  return Rng(splitmix64(s));
}

index_t zipf_sample(Rng& rng, index_t n, double alpha) {
  KRONLAB_REQUIRE(n >= 1, "zipf_sample requires n >= 1");
  KRONLAB_REQUIRE(alpha > 0.0, "zipf_sample requires alpha > 0");
  if (n == 1) return 1;
  // Devroye's rejection sampler for the Zipf(alpha) distribution.
  const double b = std::pow(2.0, alpha - 1.0);
  for (;;) {
    const double u = rng.next_double();
    const double v = rng.next_double();
    const double x = std::floor(std::pow(u, -1.0 / (alpha - 1.0 + 1e-12)));
    if (x > static_cast<double>(n) || x < 1.0) continue;
    const double t = std::pow(1.0 + 1.0 / x, alpha - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<index_t>(x);
    }
  }
}

} // namespace kronlab
