// kronlab/common/random.hpp
//
// Deterministic, fast PRNG used by all synthetic generators.
//
// We use xoshiro256** seeded through splitmix64: it is reproducible across
// platforms (unlike std::mt19937 distributions, the helpers below avoid
// libstdc++-specific distribution algorithms), fast enough for edge-at-a-time
// generation, and streams can be split deterministically for parallel use.

#pragma once

#include <cstdint>

#include "kronlab/common/types.hpp"

namespace kronlab {

/// splitmix64 step — used for seeding and cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) with Lemire's rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform index in [lo, hi] inclusive.
  index_t uniform(index_t lo, index_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Jump to an independent substream (for deterministic parallel splits).
  [[nodiscard]] Rng split();

private:
  std::uint64_t s_[4];
};

/// Sample from a Zipf distribution on {1, ..., n} with exponent `alpha`
/// via inverse-CDF on precomputed weights is expensive; this free function
/// uses the rejection method of Devroye which is O(1) per sample.
index_t zipf_sample(Rng& rng, index_t n, double alpha);

} // namespace kronlab
