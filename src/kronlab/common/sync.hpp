// kronlab/common/sync.hpp
//
// Capability-annotated synchronization primitives.
//
// Clang's thread-safety analysis only tracks locks whose types carry
// capability attributes.  libstdc++'s std::mutex has none, so a
// `GUARDED_BY` field locked through std::lock_guard<std::mutex> would
// warn on every access.  These thin wrappers put the annotations on the
// kronlab side:
//
//  * Mutex      — std::mutex with ACQUIRE/RELEASE-annotated lock()/unlock().
//  * MutexLock  — lock_guard-style RAII guard (SCOPED_CAPABILITY).
//  * CondVar    — condition variable that waits directly on a Mutex
//                 (condition_variable_any), so wait loops stay inside the
//                 REQUIRES-annotated caller.
//
// Idiom note: the analysis treats lambda bodies as separate unannotated
// functions, so the `cv.wait(lock, pred)` form hides guarded reads from
// it.  Annotated call sites therefore write explicit wait loops —
// `while (!ready_) cv_.wait(mu_);` — which the analysis can follow.
//
// Zero overhead when the annotations compile away: Mutex is exactly a
// std::mutex, MutexLock is exactly a lock_guard.  CondVar uses
// std::condition_variable_any, whose extra cost is confined to
// fork/join edges and mailbox handoffs, never per-element work.

#pragma once

#include <condition_variable>
#include <mutex>

#include "kronlab/common/thread_annotations.hpp"

namespace kronlab {

/// Annotated mutual-exclusion capability wrapping std::mutex.
class CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
  std::mutex mu_;
};

/// RAII guard: acquires the Mutex for its scope (lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

private:
  Mutex& mu_;
};

/// Condition variable waiting directly on a kronlab::Mutex.  All waits
/// REQUIRE the mutex, so guarded predicate reads in the surrounding wait
/// loop check cleanly.
class CondVar {
public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Block until notified (spurious wakeups possible — always loop on the
  /// guarded predicate).
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Block until notified or `deadline`; true = timed out.
  template <typename Clock, typename Duration>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::timeout;
  }

private:
  std::condition_variable_any cv_;
};

} // namespace kronlab
