// kronlab/common/timer.hpp
//
// Wall-clock timing utilities for the benchmark harnesses.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace kronlab {

/// Simple monotonic stopwatch.
class Timer {
public:
  Timer() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

namespace timer {

/// Nanoseconds on the steady clock since the process-wide epoch (anchored
/// the first time any timing subsystem runs).  Both parallel/metrics and
/// obs/trace stamp with this, so their timestamps are directly comparable
/// and land on one timeline.
[[nodiscard]] std::uint64_t now_ns();

/// CLOCK_REALTIME nanoseconds corresponding to now_ns() == 0.  Stored in
/// trace file headers so traces from different processes can be aligned
/// onto one wall-clock timeline.
[[nodiscard]] std::uint64_t epoch_unix_ns();

} // namespace timer

/// Format a duration like "1.23 s" / "45.6 ms" / "789 us" for reports.
std::string format_duration(double seconds);

/// Format an integer with thousands separators ("3,155,072").
std::string format_count(long long v);

} // namespace kronlab
