// kronlab/common/thread_annotations.hpp
//
// Clang thread-safety-analysis attribute macros.
//
// These expand to Clang's `__attribute__((...))` capability annotations when
// compiling with a Clang that implements the analysis, and to nothing on
// every other compiler (GCC builds see plain, unannotated declarations).
// The macro names follow the upstream Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the annotated
// sources read like the reference material.
//
// The analysis itself is enabled by `-Wthread-safety -Wthread-safety-beta`,
// which the top-level CMakeLists turns on (as errors under KRONLAB_WERROR)
// whenever the compiler is Clang.  See common/sync.hpp for the annotated
// Mutex / MutexLock / CondVar wrappers that make the analysis work with
// libstdc++, whose std::mutex carries no capability attributes.
//
// Escape-hatch policy (see DESIGN.md §10): NO_THREAD_SAFETY_ANALYSIS is
// reserved for functions whose safety comes from an invariant the analysis
// cannot express (e.g. "runs strictly after the fork/join barrier"); every
// use must carry a why-comment naming that invariant.

#pragma once

#if defined(__clang__) && !defined(SWIG)
#define KRONLAB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define KRONLAB_THREAD_ANNOTATION_(x) // no-op outside Clang
#endif

/// Marks a class as a capability (a lock): acquiring it grants access to
/// the data it guards.  The string names the capability in diagnostics.
#define CAPABILITY(x) KRONLAB_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock-style guards).
#define SCOPED_CAPABILITY KRONLAB_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that the data member it annotates is protected by the given
/// capability: reads require the capability held shared or exclusive,
/// writes require it exclusive.
#define GUARDED_BY(x) KRONLAB_THREAD_ANNOTATION_(guarded_by(x))

/// Like GUARDED_BY, for the data *pointed to* by a pointer member.
#define PT_GUARDED_BY(x) KRONLAB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function must be called with the listed capabilities held
/// (and they are still held on return).
#define REQUIRES(...) \
  KRONLAB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  KRONLAB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities and does not
/// release them before returning.
#define ACQUIRE(...) \
  KRONLAB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Shared (reader) variant of ACQUIRE.
#define ACQUIRE_SHARED(...) \
  KRONLAB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities, which must be
/// held on entry.
#define RELEASE(...) \
  KRONLAB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Shared (reader) variant of RELEASE.
#define RELEASE_SHARED(...) \
  KRONLAB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns the given
/// value (try_lock-style interfaces).
#define TRY_ACQUIRE(...) \
  KRONLAB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called with the listed capabilities
/// held (deadlock prevention for self-locking functions).
#define EXCLUDES(...) KRONLAB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability; tells
/// the analysis to assume it from here on.
#define ASSERT_CAPABILITY(x) \
  KRONLAB_THREAD_ANNOTATION_(assert_capability(x))

/// The annotated function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) KRONLAB_THREAD_ANNOTATION_(lock_returned(x))

/// Turns the analysis off for one function.  Last resort — see the
/// escape-hatch policy in the file comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  KRONLAB_THREAD_ANNOTATION_(no_thread_safety_analysis)
