#include "kronlab/common/timer.hpp"

#include <cmath>
#include <cstdio>

namespace kronlab {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string format_count(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? -static_cast<unsigned long long>(v) : v;
  std::string digits = std::to_string(u);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

} // namespace kronlab
