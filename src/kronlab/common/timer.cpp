#include "kronlab/common/timer.hpp"

#include <cmath>
#include <cstdio>

namespace kronlab {

namespace timer {

namespace {

struct Epoch {
  std::chrono::steady_clock::time_point steady;
  std::uint64_t unix_ns;
};

const Epoch& epoch() {
  static const Epoch e = [] {
    Epoch out;
    out.steady = std::chrono::steady_clock::now();
    out.unix_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return out;
  }();
  return e;
}

} // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch().steady)
          .count());
}

std::uint64_t epoch_unix_ns() { return epoch().unix_ns; }

} // namespace timer

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string format_count(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? -static_cast<unsigned long long>(v) : v;
  std::string digits = std::to_string(u);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

} // namespace kronlab
