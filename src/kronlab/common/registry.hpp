// kronlab/common/registry.hpp
//
// The single definition point for every cross-cutting *name* the system
// exposes at its boundaries:
//
//  * environment variables (`KRONLAB_*`) that tune the runtime, and
//  * wire/file magics that version every durable or transported format.
//
// Why one header: these names are contracts.  An env var read in one
// place and documented nowhere, or a magic string typed twice, is exactly
// the class of drift the analyzer's `registry` rule
// (scripts/analyze/kronlab_analyze.py) exists to prevent.  The rule
// enforces that (a) every `getenv("KRONLAB_...")` outside this header
// goes through a `kronlab::env` constant, (b) every 8-byte magic literal
// is spelled only here, and (c) every name below is documented in
// README.md or DESIGN.md.  Adding a knob or a format starts here, or the
// static-analysis job fails.
//
// The magic arrays are 8 bytes with no NUL terminator — they are written
// and memcmp'd verbatim, never treated as C strings.

#pragma once

#include <cstdint>

namespace kronlab::env {

// --- runtime knobs (see README "Environment variables") -------------------

/// Worker-thread count of the global pool (default: hardware concurrency).
inline constexpr const char* kThreads = "KRONLAB_THREADS";

/// Enable per-kernel parallel-runtime metrics collection.
inline constexpr const char* kMetrics = "KRONLAB_METRICS";

/// Enable the tracing subsystem (spans/instants/counters).
inline constexpr const char* kTrace = "KRONLAB_TRACE";

/// Per-thread trace ring-buffer capacity (events).
inline constexpr const char* kTraceBuffer = "KRONLAB_TRACE_BUFFER";

/// Enable the live-telemetry metrics registry (counters/gauges/histograms).
inline constexpr const char* kStats = "KRONLAB_STATS";

/// Structured-log threshold: debug|info|warn|error|off (default info).
inline constexpr const char* kLog = "KRONLAB_LOG";

/// Disable ghost-row message aggregation (per-row exchange fallback).
inline constexpr const char* kNoAggregate = "KRONLAB_NO_AGGREGATE";

/// Scale fault-injection probabilities in the fault test suites
/// (tests read it directly; defined here so the name has one home).
inline constexpr const char* kFaultRate = "KRONLAB_FAULT_RATE";

} // namespace kronlab::env

namespace kronlab::magic {

// --- on-disk formats -------------------------------------------------------

/// Legacy checksum-less binary CSR (read-only, behind
/// grb::ReadOptions::allow_legacy_v1).
inline constexpr char kCsr1[8] = {'K', 'R', 'N', 'L', 'C', 'S', 'R', '1'};

/// Checksummed binary CSR (grb/binary_io.hpp).
inline constexpr char kCsr2[8] = {'K', 'R', 'N', 'L', 'C', 'S', 'R', '2'};

/// Checkpoint snapshot envelope: metadata words + embedded CSR.
inline constexpr char kCkp1[8] = {'K', 'R', 'N', 'L', 'C', 'K', 'P', '1'};

/// Durable edge-stream segment (io/durable.hpp).
inline constexpr char kSeg1[8] = {'K', 'R', 'N', 'L', 'S', 'E', 'G', '1'};

/// Durable store manifest (io/durable.hpp).
inline constexpr char kMan1[8] = {'K', 'R', 'N', 'L', 'M', 'A', 'N', '1'};

/// Binary trace file (obs/trace.hpp).
inline constexpr char kTrc1[8] = {'K', 'R', 'N', 'L', 'T', 'R', 'C', '1'};

// --- wire protocols --------------------------------------------------------

/// Query-daemon frame envelope (serve/protocol.hpp).  The trailing digit
/// is the protocol version.
inline constexpr char kSrv1[8] = {'K', 'R', 'N', 'L', 'S', 'R', 'V', '1'};

/// Aggregated ghost-row batch frame header word ("BATC", negated so it
/// can never collide with a plausible row length — see dist/aggregator).
inline constexpr std::int64_t kBatchWord = -0x42415443; // "BATC"

} // namespace kronlab::magic
