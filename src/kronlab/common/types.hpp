// kronlab/common/types.hpp
//
// Fundamental integer and value types used across kronlab.
//
// Graph sizes: the library targets Kronecker products whose dimensions are the
// product of two factor dimensions.  Factor graphs are small (thousands of
// vertices), products can exceed 2^32 edges, so all global indices and counts
// are 64-bit.

#pragma once

#include <cstdint>
#include <limits>

namespace kronlab {

/// Vertex / row / column index type.  Signed to make reverse loops and index
/// arithmetic (e.g. `i - 1` in block maps) safe; 64-bit so Kronecker products
/// of modest factors never overflow.
using index_t = std::int64_t;

/// Offset into a CSR structure (number of stored entries fits here).
using offset_t = std::int64_t;

/// Exact combinatorial counts (walks, cycles, wedges).  Walk counts of fourth
/// powers of small factors fit comfortably; product-level global counts are
/// sums of factor-level products and also fit in 64 bits for every workload
/// in the paper's evaluation (largest is ~9.5e8 squares).
using count_t = std::int64_t;

inline constexpr index_t invalid_index = std::numeric_limits<index_t>::min();

} // namespace kronlab
