// kronlab/common/error.hpp
//
// Typed error hierarchy and argument-checking macros.
//
// kronlab follows a "wide contract at API boundaries" policy: public entry
// points validate their structural preconditions (square matrices, sorted
// indices, loop-free factors, ...) and throw a typed exception describing the
// violated contract.  Hot inner loops use KRONLAB_DBG_ASSERT, which compiles
// away in release builds.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace kronlab {

/// Base class for all kronlab errors.
class error : public std::runtime_error {
public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// A structural precondition on an argument was violated (wrong shape,
/// unsorted indices, out-of-range vertex id, ...).
class invalid_argument : public error {
public:
  explicit invalid_argument(const std::string& what) : error(what) {}
};

/// The operation requires a property the input graph does not have
/// (e.g. ground-truth formulas require factor B to be loop-free).
class domain_error : public error {
public:
  explicit domain_error(const std::string& what) : error(what) {}
};

/// Generated or stored data contradicts the ground truth / its own
/// checksums: a corrupted durable segment, a drifting edge stream, a
/// resume against a different generation spec.  Derives from domain_error
/// so every tool's "validation failed" exit path (code 4) covers it.
class validation_error : public domain_error {
public:
  explicit validation_error(const std::string& what) : domain_error(what) {}
};

/// Input file could not be parsed.
class io_error : public error {
public:
  explicit io_error(const std::string& what) : error(what) {}
};

/// A communication deadline expired and the retry budget is exhausted,
/// but the peer is (as far as the failure detector knows) still alive.
class timeout_error : public error {
public:
  explicit timeout_error(const std::string& what) : error(what) {}
};

/// A peer rank died (was killed by a fault plan / crashed) while the
/// protocol still needed it.
class rank_failed : public error {
public:
  explicit rank_failed(const std::string& what) : error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "kronlab: requirement `" << cond << "` failed at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw invalid_argument(os.str());
}
} // namespace detail

} // namespace kronlab

/// Validate a public-API precondition; throws kronlab::invalid_argument.
#define KRONLAB_REQUIRE(cond, msg)                                        \
  do {                                                                    \
    if (!(cond))                                                          \
      ::kronlab::detail::throw_invalid(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Debug-only internal invariant check.
#ifndef NDEBUG
#define KRONLAB_DBG_ASSERT(cond, msg) KRONLAB_REQUIRE(cond, msg)
#else
#define KRONLAB_DBG_ASSERT(cond, msg) ((void)0)
#endif
