#include "kronlab/grb/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "kronlab/common/error.hpp"

namespace kronlab::grb {

namespace {

constexpr char kMagic[8] = {'K', 'R', 'N', 'L', 'C', 'S', 'R', '1'};

void put_words(std::ostream& out, const std::int64_t* data,
               std::size_t n) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(std::int64_t)));
}

void get_words(std::istream& in, std::int64_t* data, std::size_t n) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(std::int64_t)));
  if (!in) throw io_error("truncated kronlab binary matrix");
}

} // namespace

void write_binary(std::ostream& out, const Csr<count_t>& a) {
  out.write(kMagic, sizeof kMagic);
  const std::int64_t header[3] = {a.nrows(), a.ncols(), a.nnz()};
  put_words(out, header, 3);
  put_words(out, a.row_ptr().data(), a.row_ptr().size());
  put_words(out, a.col_idx().data(), a.col_idx().size());
  put_words(out, a.vals().data(), a.vals().size());
  if (!out) throw io_error("failed writing kronlab binary matrix");
}

Csr<count_t> read_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw io_error("not a kronlab binary matrix (bad magic)");
  }
  std::int64_t header[3];
  get_words(in, header, 3);
  const index_t nrows = header[0];
  const index_t ncols = header[1];
  const offset_t nnz = header[2];
  if (nrows < 0 || ncols < 0 || nnz < 0) {
    throw io_error("kronlab binary matrix: negative dimensions");
  }
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(nrows) + 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(nnz));
  std::vector<count_t> vals(static_cast<std::size_t>(nnz));
  get_words(in, row_ptr.data(), row_ptr.size());
  get_words(in, col_idx.data(), col_idx.size());
  get_words(in, vals.data(), vals.size());
  try {
    return Csr<count_t>(nrows, ncols, std::move(row_ptr),
                        std::move(col_idx), std::move(vals));
  } catch (const invalid_argument& e) {
    throw io_error(std::string("kronlab binary matrix: corrupt CSR — ") +
                   e.what());
  }
}

void write_binary_file(const std::string& path, const Csr<count_t>& a) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("cannot open for writing: " + path);
  write_binary(out, a);
}

Csr<count_t> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open: " + path);
  return read_binary(in);
}

} // namespace kronlab::grb
