#include "kronlab/grb/binary_io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "kronlab/common/error.hpp"
#include "kronlab/common/registry.hpp"
#include "kronlab/io/file_ops.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab::grb {

namespace {
/// Trace detail for file-io spans: the path, interned only when tracing.
const char* io_detail(const std::string& path) {
  return trace::enabled() ? trace::intern(path) : nullptr;
}
} // namespace

std::uint64_t fnv1a64(const void* data, std::size_t nbytes,
                      std::uint64_t basis) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = basis;
  for (std::size_t i = 0; i < nbytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// One definition per magic lives in common/registry.hpp (the analyzer's
// registry rule keeps it that way); these are local aliases.
constexpr const char (&kMagicV1)[8] = magic::kCsr1;
constexpr const char (&kMagicV2)[8] = magic::kCsr2;
constexpr const char (&kMagicCkp)[8] = magic::kCkp1;

/// Hard sanity cap on any single dimension/count read from a file: far
/// above every real workload, far below anything that could overflow the
/// size arithmetic below or trigger a multi-terabyte allocation from four
/// corrupt bytes.
constexpr std::int64_t kMaxPlausible = std::int64_t{1} << 40;

void put_words(std::ostream& out, const std::int64_t* data,
               std::size_t n) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(std::int64_t)));
}

/// Read `n` words, folding them into `hash` (FNV-1a) when non-null.
void get_words(std::istream& in, std::int64_t* data, std::size_t n,
               std::uint64_t* hash, const char* what) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(std::int64_t)));
  if (!in) {
    throw io_error(std::string("kronlab binary matrix: truncated while "
                               "reading ") +
                   what);
  }
  if (hash) *hash = fnv1a64(data, n * sizeof(std::int64_t), *hash);
}

} // namespace

void write_binary(std::ostream& out, const Csr<count_t>& a) {
  out.write(kMagicV2, sizeof kMagicV2);
  const std::int64_t header[3] = {a.nrows(), a.ncols(), a.nnz()};
  std::uint64_t hash = fnv1a64(header, sizeof header);
  const auto hashed_put = [&](const std::int64_t* data, std::size_t n) {
    hash = fnv1a64(data, n * sizeof(std::int64_t), hash);
    put_words(out, data, n);
  };
  put_words(out, header, 3);
  hashed_put(a.row_ptr().data(), a.row_ptr().size());
  hashed_put(a.col_idx().data(), a.col_idx().size());
  hashed_put(a.vals().data(), a.vals().size());
  const auto checksum = static_cast<std::int64_t>(hash);
  put_words(out, &checksum, 1);
  if (!out) throw io_error("failed writing kronlab binary matrix");
}

Csr<count_t> read_binary(std::istream& in, const ReadOptions& opt) {
  char magic[8];
  in.read(magic, sizeof magic);
  const bool v2 = in && std::memcmp(magic, kMagicV2, sizeof kMagicV2) == 0;
  const bool v1 = in && std::memcmp(magic, kMagicV1, sizeof kMagicV1) == 0;
  if (!v1 && !v2) {
    throw io_error("not a kronlab binary matrix (bad magic)");
  }
  if (v1 && !opt.allow_legacy_v1) {
    throw io_error(
        "kronlab binary matrix: legacy checksum-less KRNLCSR1 file "
        "refused — corruption in it would go undetected; re-save it as "
        "KRNLCSR2, or opt in explicitly with ReadOptions::allow_legacy_v1");
  }
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  std::uint64_t* hp = v2 ? &hash : nullptr;
  std::int64_t header[3];
  get_words(in, header, 3, hp, "header");
  const index_t nrows = header[0];
  const index_t ncols = header[1];
  const offset_t nnz = header[2];
  if (nrows < 0 || ncols < 0 || nnz < 0) {
    throw io_error("kronlab binary matrix: negative dimensions (nrows=" +
                   std::to_string(nrows) + " ncols=" + std::to_string(ncols) +
                   " nnz=" + std::to_string(nnz) + ")");
  }
  if (nrows > kMaxPlausible || ncols > kMaxPlausible ||
      nnz > kMaxPlausible) {
    throw io_error("kronlab binary matrix: implausible dimensions (likely "
                   "corrupt header): nrows=" +
                   std::to_string(nrows) + " ncols=" + std::to_string(ncols) +
                   " nnz=" + std::to_string(nnz));
  }
  // Division form of nnz > nrows*ncols — the product can overflow even
  // under the plausibility caps.  ceil-divide so e.g. nnz=5 in a 2x2
  // matrix is caught (5/2 truncates to nrows exactly).
  if (nnz > 0 && (ncols == 0 || (nnz - 1) / ncols >= nrows)) {
    throw io_error("kronlab binary matrix: nnz=" + std::to_string(nnz) +
                   " exceeds nrows*ncols (corrupt header)");
  }
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(nrows) + 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(nnz));
  std::vector<count_t> vals(static_cast<std::size_t>(nnz));
  get_words(in, row_ptr.data(), row_ptr.size(), hp, "row_ptr");
  get_words(in, col_idx.data(), col_idx.size(), hp, "col_idx");
  get_words(in, vals.data(), vals.size(), hp, "vals");
  if (v2) {
    std::int64_t stored = 0;
    get_words(in, &stored, 1, nullptr, "checksum");
    if (static_cast<std::uint64_t>(stored) != hash) {
      throw io_error("kronlab binary matrix: FNV-1a checksum mismatch "
                     "(file is corrupt)");
    }
  }
  try {
    return Csr<count_t>(nrows, ncols, std::move(row_ptr),
                        std::move(col_idx), std::move(vals));
  } catch (const invalid_argument& e) {
    throw io_error(std::string("kronlab binary matrix: corrupt CSR — ") +
                   e.what());
  }
}

void write_binary_file(const std::string& path, const Csr<count_t>& a) {
  trace::Span span("io", "write_binary", io_detail(path));
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("cannot open for writing: " + path);
  write_binary(out, a);
}

Csr<count_t> read_binary_file(const std::string& path,
                              const ReadOptions& opt) {
  trace::Span span("io", "read_binary", io_detail(path));
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open: " + path);
  return read_binary(in, opt);
}

void write_snapshot(std::ostream& out, const SnapshotEnvelope& snap) {
  out.write(kMagicCkp, sizeof kMagicCkp);
  const auto n_meta = static_cast<std::int64_t>(snap.meta.size());
  std::uint64_t hash = fnv1a64(&n_meta, sizeof n_meta);
  hash = fnv1a64(snap.meta.data(),
                 snap.meta.size() * sizeof(std::int64_t), hash);
  put_words(out, &n_meta, 1);
  put_words(out, snap.meta.data(), snap.meta.size());
  const auto checksum = static_cast<std::int64_t>(hash);
  put_words(out, &checksum, 1);
  write_binary(out, snap.payload);
  if (!out) throw io_error("failed writing kronlab snapshot");
}

SnapshotEnvelope read_snapshot(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagicCkp, sizeof kMagicCkp) != 0) {
    throw io_error("not a kronlab snapshot (bad magic)");
  }
  std::int64_t n_meta = 0;
  get_words(in, &n_meta, 1, nullptr, "snapshot meta length");
  if (n_meta < 0 || n_meta > (std::int64_t{1} << 20)) {
    throw io_error("kronlab snapshot: implausible metadata length " +
                   std::to_string(n_meta));
  }
  SnapshotEnvelope snap;
  snap.meta.resize(static_cast<std::size_t>(n_meta));
  get_words(in, snap.meta.data(), snap.meta.size(), nullptr,
            "snapshot metadata");
  std::int64_t stored = 0;
  get_words(in, &stored, 1, nullptr, "snapshot checksum");
  std::uint64_t hash = fnv1a64(&n_meta, sizeof n_meta);
  hash = fnv1a64(snap.meta.data(),
                 snap.meta.size() * sizeof(std::int64_t), hash);
  if (static_cast<std::uint64_t>(stored) != hash) {
    throw io_error("kronlab snapshot: metadata checksum mismatch "
                   "(file is corrupt)");
  }
  snap.payload = read_binary(in);
  return snap;
}

void write_snapshot_file(const std::string& path,
                         const SnapshotEnvelope& snap) {
  trace::Span span("io", "write_snapshot", io_detail(path));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw io_error("cannot open for writing: " + tmp);
    write_snapshot(out, snap);
  }
  io::publish_file(tmp, path);
}

SnapshotEnvelope read_snapshot_file(const std::string& path) {
  trace::Span span("io", "read_snapshot", io_detail(path));
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open: " + path);
  return read_snapshot(in);
}

} // namespace kronlab::grb
