// kronlab/grb/binary_io.hpp
//
// Binary CSR serialization.
//
// The paper's §I storage argument: stochastic generators must persist the
// full generated graph to reuse it, while nonstochastic Kronecker graphs
// are reproducible from their (tiny) factors.  kronlab therefore ships a
// compact binary format for *factors* — persist kilobytes, regenerate the
// massive product deterministically.
//
// Format (little-endian 64-bit words):
//   magic "KRNLCSR1" | nrows | ncols | nnz | row_ptr[nrows+1]
//   | col_idx[nnz] | vals[nnz]

#pragma once

#include <iosfwd>
#include <string>

#include "kronlab/common/types.hpp"
#include "kronlab/grb/csr.hpp"

namespace kronlab::grb {

void write_binary(std::ostream& out, const Csr<count_t>& a);
Csr<count_t> read_binary(std::istream& in);

void write_binary_file(const std::string& path, const Csr<count_t>& a);
Csr<count_t> read_binary_file(const std::string& path);

} // namespace kronlab::grb
