// kronlab/grb/binary_io.hpp
//
// Binary CSR serialization.
//
// The paper's §I storage argument: stochastic generators must persist the
// full generated graph to reuse it, while nonstochastic Kronecker graphs
// are reproducible from their (tiny) factors.  kronlab therefore ships a
// compact binary format for *factors* — persist kilobytes, regenerate the
// massive product deterministically.
//
// Format (little-endian 64-bit words):
//   magic "KRNLCSR2" | nrows | ncols | nnz | row_ptr[nrows+1]
//   | col_idx[nnz] | vals[nnz] | fnv1a64(header..vals bytes)
//
// The trailing word is an FNV-1a checksum of every byte between the magic
// and the checksum itself, so silent corruption (the failure mode the
// paper lineage's regenerate-and-validate workflow is built to catch) is
// detected at load time instead of producing a garbage CSR.  Legacy
// checksum-less "KRNLCSR1" files are accepted only when the caller opts
// in via ReadOptions::allow_legacy_v1 — an unchecksummed read silently
// defeats the corruption-detection story, so it must be a visible,
// per-call decision, never a default.
//
// A second envelope, "KRNLCKP1", wraps a metadata word vector plus an
// embedded CSR — the checkpoint format of the fault-tolerant distributed
// pipeline (dist/sharded.hpp).  The metadata words carry their own FNV-1a
// checksum; the embedded CSR is protected by its KRNLCSR2 checksum.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "kronlab/common/types.hpp"
#include "kronlab/grb/csr.hpp"

namespace kronlab::grb {

/// 64-bit FNV-1a over a byte range (the checksum used by both envelopes).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t nbytes,
                      std::uint64_t basis = 0xcbf29ce484222325ULL);

/// Read-side policy knobs.
struct ReadOptions {
  /// Accept legacy checksum-less KRNLCSR1 files.  Off by default: without
  /// a checksum, corruption reads as a (possibly invalid) CSR instead of
  /// a typed error.  Rejected V1 files produce an io_error naming this
  /// flag so the operator knows the escape hatch exists.
  bool allow_legacy_v1 = false;
};

void write_binary(std::ostream& out, const Csr<count_t>& a);
[[nodiscard]] Csr<count_t> read_binary(std::istream& in,
                                       const ReadOptions& opt = {});

void write_binary_file(const std::string& path, const Csr<count_t>& a);
[[nodiscard]] Csr<count_t> read_binary_file(const std::string& path,
                              const ReadOptions& opt = {});

/// Checksummed snapshot: free-form metadata words + one CSR payload.
struct SnapshotEnvelope {
  std::vector<std::int64_t> meta;
  Csr<count_t> payload;
};

void write_snapshot(std::ostream& out, const SnapshotEnvelope& snap);
[[nodiscard]] SnapshotEnvelope read_snapshot(std::istream& in);

/// File variants.  write_snapshot_file is atomic: it writes `path.tmp`
/// and renames, so a crash mid-checkpoint never leaves a torn file under
/// the final name.
void write_snapshot_file(const std::string& path,
                         const SnapshotEnvelope& snap);
[[nodiscard]] SnapshotEnvelope read_snapshot_file(const std::string& path);

} // namespace kronlab::grb
