// kronlab/grb/csr.hpp
//
// Compressed sparse row matrix — the computational format of the
// mini-GraphBLAS layer.
//
// Invariants (checked by check_invariants(), established by from_coo):
//  * row_ptr has nrows()+1 entries, is non-decreasing, spans [0, nnz];
//  * within each row, column indices are strictly increasing (no duplicate
//    entries) and in [0, ncols).
//
// Stored values may be zero only if explicitly inserted; from_coo drops
// combined entries that sum to exactly T{0} so adjacency matrices stay
// structurally minimal.

#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/common/types.hpp"
#include "kronlab/grb/coo.hpp"
#include "kronlab/grb/vector.hpp"

namespace kronlab::grb {

template <typename T>
class Csr {
public:
  Csr() : row_ptr_(1, 0) {}

  /// Adopt raw CSR arrays.  Validates the invariants above.
  Csr(index_t nrows, index_t ncols, std::vector<offset_t> row_ptr,
      std::vector<index_t> col_idx, std::vector<T> vals)
      : nrows_(nrows),
        ncols_(ncols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        vals_(std::move(vals)) {
    check_invariants();
  }

  /// Build from COO: sorts triplets, sums duplicates, drops exact zeros.
  static Csr from_coo(const Coo<T>& coo) {
    auto triplets = coo.entries(); // copy; sorted below
    std::sort(triplets.begin(), triplets.end(),
              [](const auto& a, const auto& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    Csr out;
    out.nrows_ = coo.nrows();
    out.ncols_ = coo.ncols();
    out.row_ptr_.assign(static_cast<std::size_t>(coo.nrows()) + 1, 0);
    out.col_idx_.reserve(triplets.size());
    out.vals_.reserve(triplets.size());
    std::size_t idx = 0;
    while (idx < triplets.size()) {
      const index_t r = triplets[idx].row;
      const index_t c = triplets[idx].col;
      T acc{};
      while (idx < triplets.size() && triplets[idx].row == r &&
             triplets[idx].col == c) {
        acc += triplets[idx].val;
        ++idx;
      }
      if (acc != T{}) {
        out.col_idx_.push_back(c);
        out.vals_.push_back(acc);
        ++out.row_ptr_[static_cast<std::size_t>(r) + 1];
      }
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(out.nrows_); ++r) {
      out.row_ptr_[r + 1] += out.row_ptr_[r];
    }
    return out;
  }

  /// n×n identity matrix.
  static Csr identity(index_t n) {
    KRONLAB_REQUIRE(n >= 0, "identity size must be non-negative");
    Csr out;
    out.nrows_ = out.ncols_ = n;
    out.row_ptr_.resize(static_cast<std::size_t>(n) + 1);
    out.col_idx_.resize(static_cast<std::size_t>(n));
    out.vals_.assign(static_cast<std::size_t>(n), T{1});
    for (index_t i = 0; i <= n; ++i)
      out.row_ptr_[static_cast<std::size_t>(i)] = i;
    for (index_t i = 0; i < n; ++i)
      out.col_idx_[static_cast<std::size_t>(i)] = i;
    return out;
  }

  /// Build from a dense row-major array (tests and tiny examples only).
  static Csr from_dense(index_t nrows, index_t ncols,
                        const std::vector<T>& dense) {
    KRONLAB_REQUIRE(static_cast<index_t>(dense.size()) == nrows * ncols,
                    "dense size mismatch");
    Coo<T> coo(nrows, ncols);
    for (index_t i = 0; i < nrows; ++i) {
      for (index_t j = 0; j < ncols; ++j) {
        const T v = dense[static_cast<std::size_t>(i * ncols + j)];
        if (v != T{}) coo.push(i, j, v);
      }
    }
    return from_coo(coo);
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const {
    return static_cast<offset_t>(col_idx_.size());
  }
  [[nodiscard]] bool empty() const { return nnz() == 0; }

  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const {
    KRONLAB_DBG_ASSERT(i >= 0 && i < nrows_, "row index out of range");
    const auto b = static_cast<std::size_t>(row_ptr_[i]);
    const auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
    return {col_idx_.data() + b, e - b};
  }
  [[nodiscard]] std::span<const T> row_vals(index_t i) const {
    KRONLAB_DBG_ASSERT(i >= 0 && i < nrows_, "row index out of range");
    const auto b = static_cast<std::size_t>(row_ptr_[i]);
    const auto e = static_cast<std::size_t>(row_ptr_[i + 1]);
    return {vals_.data() + b, e - b};
  }
  [[nodiscard]] offset_t row_degree(index_t i) const {
    return row_ptr_[static_cast<std::size_t>(i) + 1] -
           row_ptr_[static_cast<std::size_t>(i)];
  }

  /// Value at (i,j), or T{0} if the entry is not stored.  Binary search.
  [[nodiscard]] T at(index_t i, index_t j) const {
    const auto cols = row_cols(i);
    const auto it = std::lower_bound(cols.begin(), cols.end(), j);
    if (it == cols.end() || *it != j) return T{};
    return row_vals(i)[static_cast<std::size_t>(it - cols.begin())];
  }

  [[nodiscard]] bool has(index_t i, index_t j) const {
    const auto cols = row_cols(i);
    return std::binary_search(cols.begin(), cols.end(), j);
  }

  [[nodiscard]] const std::vector<offset_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<index_t>& col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<T>& vals() const { return vals_; }
  [[nodiscard]] std::vector<T>& vals() { return vals_; }

  /// Dense row-major copy (tests and tiny examples only).
  [[nodiscard]] std::vector<T> to_dense() const {
    std::vector<T> d(static_cast<std::size_t>(nrows_ * ncols_), T{});
    for (index_t i = 0; i < nrows_; ++i) {
      const auto cols = row_cols(i);
      const auto vals = row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        d[static_cast<std::size_t>(i * ncols_ + cols[k])] = vals[k];
      }
    }
    return d;
  }

  bool operator==(const Csr&) const = default;

  /// Validate the structural invariants; throws invalid_argument on
  /// violation.
  void check_invariants() const {
    KRONLAB_REQUIRE(nrows_ >= 0 && ncols_ >= 0, "negative dimensions");
    KRONLAB_REQUIRE(
        row_ptr_.size() == static_cast<std::size_t>(nrows_) + 1,
        "row_ptr must have nrows+1 entries");
    KRONLAB_REQUIRE(row_ptr_.front() == 0, "row_ptr must start at 0");
    KRONLAB_REQUIRE(
        row_ptr_.back() == static_cast<offset_t>(col_idx_.size()),
        "row_ptr must end at nnz");
    KRONLAB_REQUIRE(col_idx_.size() == vals_.size(),
                    "col_idx/vals length mismatch");
    for (index_t i = 0; i < nrows_; ++i) {
      KRONLAB_REQUIRE(row_ptr_[i] <= row_ptr_[i + 1],
                      "row_ptr must be non-decreasing");
      const auto cols = row_cols(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        KRONLAB_REQUIRE(cols[k] >= 0 && cols[k] < ncols_,
                        "column index out of range");
        KRONLAB_REQUIRE(k == 0 || cols[k - 1] < cols[k],
                        "columns must be strictly increasing within a row");
      }
    }
  }

private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<offset_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<T> vals_;
};

} // namespace kronlab::grb
