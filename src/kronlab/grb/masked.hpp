// kronlab/grb/masked.hpp
//
// Masked matrix multiply — the GraphBLAS `GrB_mxm(C, Mask, ...)` pattern.
//
// (A·B)∘mask computed without forming A·B: only accumulator entries whose
// column appears in the mask's row survive.  This is the kernel behind
// "count structures only where edges exist" idioms (triangle counting's
// A²∘A, this paper's M³∘M), and it is what keeps FactorStats cheap on
// factors whose cube would be dense.

#pragma once

#include "kronlab/grb/csr.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/grb/semiring.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::grb {

/// C = (A·B) ∘ structure(mask), over semiring S.  The mask contributes
/// structure only; output values are the semiring accumulation.  Entries
/// whose accumulated value equals S::zero() are kept (with that value) so
/// the result has exactly the mask's structure restricted to rows/cols in
/// range — callers that want them dropped can filter.
template <typename T, typename S = PlusTimes<T>>
Csr<T> mxm_masked(const Csr<T>& mask, const Csr<T>& a, const Csr<T>& b) {
  KRONLAB_REQUIRE(a.ncols() == b.nrows(), "mxm_masked shape mismatch");
  KRONLAB_REQUIRE(mask.nrows() == a.nrows() && mask.ncols() == b.ncols(),
                  "mask shape mismatch");
  metrics::KernelScope scope("grb/mxm_masked");
  std::vector<T> vals(static_cast<std::size_t>(mask.nnz()), S::zero());
  const auto& mrp = mask.row_ptr();

  // Dense gather over B's columns, one accumulator per worker (not per
  // chunk); hub rows are load-balanced by the dynamic schedule.
  parallel_for_range_dynamic_scratch(
      0, mask.nrows(),
      [&](std::size_t) {
        return detail::SpgemmScratch<T>(b.ncols(), S::zero());
      },
      [&](detail::SpgemmScratch<T>& ws, index_t lo, index_t hi) {
    auto& acc = ws.acc;
    auto& touched = ws.touched;
    for (index_t i = lo; i < hi; ++i) {
      const auto mcols = mask.row_cols(i);
      if (mcols.empty()) continue;
      touched.clear();
      const auto acols = a.row_cols(i);
      const auto avals = a.row_vals(i);
      for (std::size_t ka = 0; ka < acols.size(); ++ka) {
        const index_t j = acols[ka];
        const T va = avals[ka];
        const auto bcols = b.row_cols(j);
        const auto bvals = b.row_vals(j);
        for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
          auto& slot = acc[static_cast<std::size_t>(bcols[kb])];
          if (slot == S::zero()) touched.push_back(bcols[kb]);
          slot = S::add(slot, S::mult(va, bvals[kb]));
        }
      }
      const auto base = static_cast<std::size_t>(mrp[static_cast<std::size_t>(i)]);
      for (std::size_t km = 0; km < mcols.size(); ++km) {
        vals[base + km] = acc[static_cast<std::size_t>(mcols[km])];
      }
      for (const index_t c : touched) {
        acc[static_cast<std::size_t>(c)] = S::zero();
      }
    }
  });
  return Csr<T>(mask.nrows(), mask.ncols(), mask.row_ptr(),
                mask.col_idx(), std::move(vals));
}

/// Structure-only select: keep entries of `a` whose (value) satisfies
/// `pred` — GraphBLAS GrB_select with a value predicate.
template <typename T, typename Pred>
Csr<T> select(const Csr<T>& a, Pred&& pred) {
  Coo<T> coo(a.nrows(), a.ncols());
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (pred(i, cols[k], vals[k])) coo.push(i, cols[k], vals[k]);
    }
  }
  return Csr<T>::from_coo(coo);
}

/// Extract the sub-matrix a[rows, cols] (GraphBLAS GrB_extract with index
/// lists).  Lists must be strictly increasing.
template <typename T>
Csr<T> extract(const Csr<T>& a, const std::vector<index_t>& rows,
               const std::vector<index_t>& cols) {
  for (std::size_t k = 1; k < rows.size(); ++k) {
    KRONLAB_REQUIRE(rows[k - 1] < rows[k], "rows must be increasing");
  }
  for (std::size_t k = 1; k < cols.size(); ++k) {
    KRONLAB_REQUIRE(cols[k - 1] < cols[k], "cols must be increasing");
  }
  // Column renumbering map.
  std::vector<index_t> col_map(static_cast<std::size_t>(a.ncols()), -1);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    KRONLAB_REQUIRE(cols[k] >= 0 && cols[k] < a.ncols(),
                    "column out of range");
    col_map[static_cast<std::size_t>(cols[k])] =
        static_cast<index_t>(k);
  }
  Coo<T> coo(static_cast<index_t>(rows.size()),
             static_cast<index_t>(cols.size()));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    KRONLAB_REQUIRE(rows[r] >= 0 && rows[r] < a.nrows(),
                    "row out of range");
    const auto acols = a.row_cols(rows[r]);
    const auto avals = a.row_vals(rows[r]);
    for (std::size_t k = 0; k < acols.size(); ++k) {
      const index_t c = col_map[static_cast<std::size_t>(acols[k])];
      if (c >= 0) coo.push(static_cast<index_t>(r), c, avals[k]);
    }
  }
  return Csr<T>::from_coo(coo);
}

} // namespace kronlab::grb
