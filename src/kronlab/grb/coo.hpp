// kronlab/grb/coo.hpp
//
// Coordinate-format sparse matrix builder.
//
// COO is the ingestion format: generators and file loaders push triplets,
// then convert to CSR (the computational format) via Csr<T>::from_coo, which
// sorts and combines duplicates with the additive monoid.

#pragma once

#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/common/types.hpp"

namespace kronlab::grb {

template <typename T>
class Coo {
public:
  struct Triplet {
    index_t row;
    index_t col;
    T val;
  };

  Coo() = default;
  Coo(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {
    KRONLAB_REQUIRE(nrows >= 0 && ncols >= 0,
                    "matrix dimensions must be non-negative");
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const {
    return static_cast<offset_t>(entries_.size());
  }

  void reserve(offset_t n) { entries_.reserve(static_cast<std::size_t>(n)); }

  /// Append one triplet.  Duplicates are allowed; they are summed when the
  /// matrix is converted to CSR.
  void push(index_t row, index_t col, T val) {
    KRONLAB_REQUIRE(row >= 0 && row < nrows_, "COO row index out of range");
    KRONLAB_REQUIRE(col >= 0 && col < ncols_, "COO col index out of range");
    entries_.push_back({row, col, val});
  }

  /// Append both (i,j) and (j,i) — convenience for undirected edges.
  void push_symmetric(index_t i, index_t j, T val) {
    push(i, j, val);
    if (i != j) push(j, i, val);
  }

  [[nodiscard]] const std::vector<Triplet>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::vector<Triplet>& entries() { return entries_; }

private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<Triplet> entries_;
};

} // namespace kronlab::grb
