#include "kronlab/grb/io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/coo.hpp"

namespace kronlab::grb {

namespace {

std::string next_data_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;
    return line;
  }
  return {};
}

} // namespace

Csr<count_t> read_matrix_market(std::istream& in) {
  std::string header;
  KRONLAB_REQUIRE(static_cast<bool>(std::getline(in, header)),
                  "empty MatrixMarket stream");
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix") {
    throw io_error("not a MatrixMarket matrix file");
  }
  if (format != "coordinate") {
    throw io_error("only coordinate MatrixMarket format is supported");
  }
  const bool pattern = (field == "pattern");
  const bool symmetric = (symmetry == "symmetric");
  if (field != "pattern" && field != "integer" && field != "real") {
    throw io_error("unsupported MatrixMarket field: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw io_error("unsupported MatrixMarket symmetry: " + symmetry);
  }

  const std::string size_line = next_data_line(in);
  KRONLAB_REQUIRE(!size_line.empty(), "missing MatrixMarket size line");
  std::istringstream ss(size_line);
  index_t nrows = 0, ncols = 0;
  offset_t nnz = 0;
  ss >> nrows >> ncols >> nnz;
  if (!ss || nrows < 0 || ncols < 0 || nnz < 0) {
    throw io_error("malformed MatrixMarket size line: " + size_line);
  }

  Coo<count_t> coo(nrows, ncols);
  coo.reserve(symmetric ? 2 * nnz : nnz);
  for (offset_t e = 0; e < nnz; ++e) {
    const std::string line = next_data_line(in);
    if (line.empty()) throw io_error("truncated MatrixMarket file");
    std::istringstream ls(line);
    index_t i = 0, j = 0;
    double v = 1.0;
    ls >> i >> j;
    if (!pattern) ls >> v;
    if (!ls) throw io_error("malformed MatrixMarket entry: " + line);
    if (i < 1 || i > nrows || j < 1 || j > ncols) {
      throw io_error("MatrixMarket index out of range: " + line);
    }
    const auto val = static_cast<count_t>(v);
    coo.push(i - 1, j - 1, val);
    if (symmetric && i != j) coo.push(j - 1, i - 1, val);
  }
  return Csr<count_t>::from_coo(coo);
}

Csr<count_t> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr<count_t>& a) {
  out << "%%MatrixMarket matrix coordinate integer general\n";
  out << a.nrows() << ' ' << a.ncols() << ' ' << a.nnz() << '\n';
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

namespace {

[[noreturn]] void bad_line(std::int64_t lineno, const std::string& line,
                           const std::string& why) {
  std::string shown = line;
  if (shown.size() > 80) shown = shown.substr(0, 77) + "...";
  throw io_error("edge list line " + std::to_string(lineno) + ": " + why +
                 " — \"" + shown + "\"");
}

/// Parse one token as a strictly-numeric integer (optional sign).  KONECT
/// weight/time columns are numeric too, so any alphabetic junk anywhere
/// on a data line is a parse error, not a silently-ignored suffix.
bool numeric_token(const std::string& tok, index_t& out) {
  if (tok.empty()) return false;
  std::size_t i = (tok[0] == '-' || tok[0] == '+') ? 1 : 0;
  if (i == tok.size()) return false;
  index_t v = 0;
  bool overflow = false;
  for (; i < tok.size(); ++i) {
    // Tolerate fractional weights ("1 2 0.5"): validate digits after the
    // point but ignore them for the integer value.
    if (tok[i] == '.') {
      for (++i; i < tok.size(); ++i) {
        if (tok[i] < '0' || tok[i] > '9') return false;
      }
      break;
    }
    if (tok[i] < '0' || tok[i] > '9') return false;
    if (v > (std::numeric_limits<index_t>::max() - 9) / 10) {
      overflow = true;
    } else {
      v = v * 10 + (tok[i] - '0');
    }
  }
  out = overflow ? std::numeric_limits<index_t>::max()
                 : (tok[0] == '-' ? -v : v);
  return true;
}

} // namespace

BipartiteEdgeList read_bipartite_edge_list(std::istream& in,
                                           const EdgeListOptions& opt) {
  BipartiteEdgeList el;
  std::unordered_set<std::uint64_t> seen;
  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back(); // CRLF
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    std::vector<index_t> fields;
    while (ls >> tok) {
      index_t v = 0;
      if (!numeric_token(tok, v)) {
        bad_line(lineno, line, "non-numeric token \"" + tok + "\"");
      }
      fields.push_back(v);
      if (fields.size() > 4) {
        bad_line(lineno, line,
                 "too many fields (expected `u w [weight [time]]`)");
      }
    }
    if (fields.size() < 2) {
      bad_line(lineno, line, "expected at least two vertex ids");
    }
    const index_t u = fields[0];
    const index_t w = fields[1];
    if (u < 1 || w < 1) {
      bad_line(lineno, line, "vertex ids must be positive (1-based)");
    }
    if (u > opt.max_vertex_id || w > opt.max_vertex_id) {
      bad_line(lineno, line,
               "vertex id exceeds the plausibility cap " +
                   std::to_string(opt.max_vertex_id));
    }
    if (opt.reject_duplicates) {
      const auto key = static_cast<std::uint64_t>(u - 1) *
                           static_cast<std::uint64_t>(opt.max_vertex_id) +
                       static_cast<std::uint64_t>(w - 1);
      if (!seen.insert(key).second) {
        bad_line(lineno, line, "duplicate edge");
      }
    }
    el.edges.emplace_back(u - 1, w - 1);
    el.n_left = std::max(el.n_left, u);
    el.n_right = std::max(el.n_right, w);
  }
  if (in.bad()) throw io_error("I/O failure while reading edge list");
  return el;
}

BipartiteEdgeList read_bipartite_edge_list_file(const std::string& path,
                                                const EdgeListOptions& opt) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open file: " + path);
  try {
    return read_bipartite_edge_list(in, opt);
  } catch (const io_error& e) {
    throw io_error(path + ": " + e.what());
  }
}

void write_bipartite_edge_list(std::ostream& out,
                               const BipartiteEdgeList& el) {
  out << "% bip " << el.n_left << ' ' << el.n_right << ' '
      << el.edges.size() << '\n';
  for (const auto& [u, w] : el.edges) {
    out << (u + 1) << ' ' << (w + 1) << '\n';
  }
}

} // namespace kronlab::grb
