#include "kronlab/grb/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/coo.hpp"

namespace kronlab::grb {

namespace {

std::string next_data_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;
    return line;
  }
  return {};
}

} // namespace

Csr<count_t> read_matrix_market(std::istream& in) {
  std::string header;
  KRONLAB_REQUIRE(static_cast<bool>(std::getline(in, header)),
                  "empty MatrixMarket stream");
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix") {
    throw io_error("not a MatrixMarket matrix file");
  }
  if (format != "coordinate") {
    throw io_error("only coordinate MatrixMarket format is supported");
  }
  const bool pattern = (field == "pattern");
  const bool symmetric = (symmetry == "symmetric");
  if (field != "pattern" && field != "integer" && field != "real") {
    throw io_error("unsupported MatrixMarket field: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw io_error("unsupported MatrixMarket symmetry: " + symmetry);
  }

  const std::string size_line = next_data_line(in);
  KRONLAB_REQUIRE(!size_line.empty(), "missing MatrixMarket size line");
  std::istringstream ss(size_line);
  index_t nrows = 0, ncols = 0;
  offset_t nnz = 0;
  ss >> nrows >> ncols >> nnz;
  if (!ss || nrows < 0 || ncols < 0 || nnz < 0) {
    throw io_error("malformed MatrixMarket size line: " + size_line);
  }

  Coo<count_t> coo(nrows, ncols);
  coo.reserve(symmetric ? 2 * nnz : nnz);
  for (offset_t e = 0; e < nnz; ++e) {
    const std::string line = next_data_line(in);
    if (line.empty()) throw io_error("truncated MatrixMarket file");
    std::istringstream ls(line);
    index_t i = 0, j = 0;
    double v = 1.0;
    ls >> i >> j;
    if (!pattern) ls >> v;
    if (!ls) throw io_error("malformed MatrixMarket entry: " + line);
    if (i < 1 || i > nrows || j < 1 || j > ncols) {
      throw io_error("MatrixMarket index out of range: " + line);
    }
    const auto val = static_cast<count_t>(v);
    coo.push(i - 1, j - 1, val);
    if (symmetric && i != j) coo.push(j - 1, i - 1, val);
  }
  return Csr<count_t>::from_coo(coo);
}

Csr<count_t> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr<count_t>& a) {
  out << "%%MatrixMarket matrix coordinate integer general\n";
  out << a.nrows() << ' ' << a.ncols() << ' ' << a.nnz() << '\n';
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

BipartiteEdgeList read_bipartite_edge_list(std::istream& in) {
  BipartiteEdgeList el;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;
    std::istringstream ls(line);
    index_t u = 0, w = 0;
    ls >> u >> w;
    if (!ls) throw io_error("malformed edge list line: " + line);
    if (u < 1 || w < 1) throw io_error("edge list ids must be 1-based");
    el.edges.emplace_back(u - 1, w - 1);
    el.n_left = std::max(el.n_left, u);
    el.n_right = std::max(el.n_right, w);
  }
  return el;
}

BipartiteEdgeList read_bipartite_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open file: " + path);
  return read_bipartite_edge_list(in);
}

void write_bipartite_edge_list(std::ostream& out,
                               const BipartiteEdgeList& el) {
  out << "% bip " << el.n_left << ' ' << el.n_right << ' '
      << el.edges.size() << '\n';
  for (const auto& [u, w] : el.edges) {
    out << (u + 1) << ' ' << (w + 1) << '\n';
  }
}

} // namespace kronlab::grb
