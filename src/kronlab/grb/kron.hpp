// kronlab/grb/kron.hpp
//
// Kronecker product of sparse matrices (Def. 4) — the GrB_kronecker
// counterpart.  The product of CSR factors is built directly in CSR form:
// product row p = γ(i,k) is the outer merge of factor rows i (of A) and k
// (of B); since A's columns and B's columns are each sorted, the product's
// columns j·n_B + l come out sorted with no extra sorting pass.
//
// Materialization is O(nnz(A)·nnz(B)) work and memory, parallelized over
// product rows.  For products too large to materialize, use
// kron::EdgeStream (kronlab/kron/stream.hpp) instead.

#pragma once

#include "kronlab/grb/csr.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::grb {

template <typename T>
Csr<T> kron(const Csr<T>& a, const Csr<T>& b) {
  const index_t m = a.nrows() * b.nrows();
  const index_t n = a.ncols() * b.ncols();

  std::vector<offset_t> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  parallel_for(0, a.nrows(), [&](index_t i) {
    const offset_t da = a.row_degree(i);
    for (index_t k = 0; k < b.nrows(); ++k) {
      const index_t p = i * b.nrows() + k;
      row_ptr[static_cast<std::size_t>(p) + 1] = da * b.row_degree(k);
    }
  });
  for (std::size_t r = 1; r < row_ptr.size(); ++r) row_ptr[r] += row_ptr[r - 1];

  const auto total = static_cast<std::size_t>(row_ptr.back());
  std::vector<index_t> col_idx(total);
  std::vector<T> vals(total);

  parallel_for(0, m, [&](index_t p) {
    const index_t i = p / b.nrows();
    const index_t k = p % b.nrows();
    const auto acols = a.row_cols(i);
    const auto avals = a.row_vals(i);
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    auto o = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(p)]);
    for (std::size_t ka = 0; ka < acols.size(); ++ka) {
      const index_t base = acols[ka] * b.ncols();
      const T va = avals[ka];
      for (std::size_t kb = 0; kb < bcols.size(); ++kb, ++o) {
        col_idx[o] = base + bcols[kb];
        vals[o] = va * bvals[kb];
      }
    }
  });
  return Csr<T>(m, n, std::move(row_ptr), std::move(col_idx),
                std::move(vals));
}

} // namespace kronlab::grb
