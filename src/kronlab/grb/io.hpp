// kronlab/grb/io.hpp
//
// Matrix I/O: MatrixMarket coordinate files and KONECT-style bipartite
// edge lists.

#pragma once

#include <iosfwd>
#include <string>

#include "kronlab/common/types.hpp"
#include "kronlab/grb/csr.hpp"

namespace kronlab::grb {

/// Read a MatrixMarket `coordinate` file (real/integer/pattern;
/// general/symmetric).  Pattern entries get value 1.
Csr<count_t> read_matrix_market(std::istream& in);
Csr<count_t> read_matrix_market_file(const std::string& path);

/// Write `a` as MatrixMarket coordinate integer general.
void write_matrix_market(std::ostream& out, const Csr<count_t>& a);

/// Parsed bipartite (two-mode) edge list: edges (u, w) between left
/// vertices [0, n_left) and right vertices [0, n_right).
struct BipartiteEdgeList {
  index_t n_left = 0;
  index_t n_right = 0;
  std::vector<std::pair<index_t, index_t>> edges;
};

/// Read a KONECT-style two-mode edge list: lines `u w [weight [time]]`,
/// 1-based ids, `%` or `#` comment lines.  Duplicate edges are kept (the
/// caller's from_coo combine collapses them).
BipartiteEdgeList read_bipartite_edge_list(std::istream& in);
BipartiteEdgeList read_bipartite_edge_list_file(const std::string& path);

/// Write one `u w` line per edge (1-based), with a header comment.
void write_bipartite_edge_list(std::ostream& out,
                               const BipartiteEdgeList& el);

} // namespace kronlab::grb
