// kronlab/grb/io.hpp
//
// Matrix I/O: MatrixMarket coordinate files and KONECT-style bipartite
// edge lists.

#pragma once

#include <iosfwd>
#include <string>

#include "kronlab/common/types.hpp"
#include "kronlab/grb/csr.hpp"

namespace kronlab::grb {

/// Read a MatrixMarket `coordinate` file (real/integer/pattern;
/// general/symmetric).  Pattern entries get value 1.
Csr<count_t> read_matrix_market(std::istream& in);
Csr<count_t> read_matrix_market_file(const std::string& path);

/// Write `a` as MatrixMarket coordinate integer general.
void write_matrix_market(std::ostream& out, const Csr<count_t>& a);

/// Parsed bipartite (two-mode) edge list: edges (u, w) between left
/// vertices [0, n_left) and right vertices [0, n_right).
struct BipartiteEdgeList {
  index_t n_left = 0;
  index_t n_right = 0;
  std::vector<std::pair<index_t, index_t>> edges;
};

/// Parsing policy for KONECT-style edge lists.  Defaults match real
/// KONECT dumps (duplicate edges allowed — from_coo collapses them);
/// every violation is reported as a line-numbered io_error, never a
/// crash or a silently-garbage edge list.
struct EdgeListOptions {
  bool reject_duplicates = false; ///< strict mode: duplicate edge = error
  /// Sanity cap on vertex ids: a corrupt line can otherwise inflate
  /// n_left/n_right into a terabyte-scale adjacency allocation.
  index_t max_vertex_id = index_t{1} << 32;
};

/// Read a KONECT-style two-mode edge list: lines `u w [weight [time]]`,
/// 1-based ids, `%` or `#` comment lines, CRLF tolerated.  Malformed
/// lines (non-numeric tokens, ids < 1, ids beyond the cap, trailing
/// garbage, and — in strict mode — duplicate edges) throw io_error
/// naming the offending line number.
BipartiteEdgeList read_bipartite_edge_list(std::istream& in,
                                           const EdgeListOptions& opt = {});
BipartiteEdgeList read_bipartite_edge_list_file(
    const std::string& path, const EdgeListOptions& opt = {});

/// Write one `u w` line per edge (1-based), with a header comment.
void write_bipartite_edge_list(std::ostream& out,
                               const BipartiteEdgeList& el);

} // namespace kronlab::grb
