// kronlab/grb/ops.hpp
//
// Matrix kernels of the mini-GraphBLAS layer: mxv, mxm (Gustavson SpGEMM),
// element-wise add/mult (Hadamard), transpose, reductions, diagonal
// operators, and row/column scalings.
//
// All kernels are shape-checked at entry.  mxm and transpose parallelize
// over rows via the shared thread pool; the remaining kernels are
// memory-bound single passes that are applied to factor-sized matrices.

#pragma once

#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/csr.hpp"
#include "kronlab/grb/semiring.hpp"
#include "kronlab/grb/vector.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::grb {

/// y = A x over semiring S (default plus-times).
template <typename T, typename S = PlusTimes<T>>
Vector<T> mxv(const Csr<T>& a, const Vector<T>& x) {
  KRONLAB_REQUIRE(a.ncols() == x.size(), "mxv shape mismatch");
  metrics::KernelScope scope("grb/mxv");
  Vector<T> y(a.nrows(), S::zero());
  parallel_for_dynamic(0, a.nrows(), [&](index_t i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    T acc = S::zero();
    for (std::size_t k = 0; k < cols.size(); ++k) {
      acc = S::add(acc, S::mult(vals[k], x[cols[k]]));
    }
    y[i] = acc;
  });
  return y;
}

namespace detail {
/// Worker-local Gustavson accumulator, built once per worker by the
/// dynamic dispatcher and reused across chunks.
template <typename T>
struct SpgemmScratch {
  SpgemmScratch(index_t n, T zero)
      : acc(static_cast<std::size_t>(n), zero) {}
  std::vector<T> acc;
  std::vector<index_t> touched;
};
} // namespace detail

/// C = A·B over semiring S via row-wise Gustavson with a dense accumulator.
/// Intended for factor-sized operands (accumulator is O(ncols(B)) per
/// worker).
template <typename T, typename S = PlusTimes<T>>
Csr<T> mxm(const Csr<T>& a, const Csr<T>& b) {
  KRONLAB_REQUIRE(a.ncols() == b.nrows(), "mxm shape mismatch");
  metrics::KernelScope scope("grb/mxm");
  const index_t m = a.nrows();
  const index_t n = b.ncols();

  std::vector<std::vector<index_t>> row_cols(static_cast<std::size_t>(m));
  std::vector<std::vector<T>> row_vals(static_cast<std::size_t>(m));

  // Row cost is Σ_j∈row deg(B_j): hub rows dominate on heavy-tailed
  // factors, so chunks are claimed dynamically.
  parallel_for_range_dynamic_scratch(
      0, m,
      [&](std::size_t) { return detail::SpgemmScratch<T>(n, S::zero()); },
      [&](detail::SpgemmScratch<T>& ws, index_t lo, index_t hi) {
        auto& acc = ws.acc;
        auto& touched = ws.touched;
        for (index_t i = lo; i < hi; ++i) {
          touched.clear();
          const auto acols = a.row_cols(i);
          const auto avals = a.row_vals(i);
          for (std::size_t ka = 0; ka < acols.size(); ++ka) {
            const index_t j = acols[ka];
            const T va = avals[ka];
            const auto bcols = b.row_cols(j);
            const auto bvals = b.row_vals(j);
            for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
              const index_t c = bcols[kb];
              if (acc[static_cast<std::size_t>(c)] == S::zero()) {
                touched.push_back(c);
              }
              acc[static_cast<std::size_t>(c)] =
                  S::add(acc[static_cast<std::size_t>(c)],
                         S::mult(va, bvals[kb]));
            }
          }
          std::sort(touched.begin(), touched.end());
          auto& rc = row_cols[static_cast<std::size_t>(i)];
          auto& rv = row_vals[static_cast<std::size_t>(i)];
          rc.reserve(touched.size());
          rv.reserve(touched.size());
          for (const index_t c : touched) {
            const T v = acc[static_cast<std::size_t>(c)];
            acc[static_cast<std::size_t>(c)] = S::zero();
            if (v != S::zero()) { // additive cancellation can produce zeros
              rc.push_back(c);
              rv.push_back(v);
            }
          }
        }
      });

  std::vector<offset_t> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  for (index_t i = 0; i < m; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        static_cast<offset_t>(row_cols[static_cast<std::size_t>(i)].size());
  }
  std::vector<index_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<T> vals(static_cast<std::size_t>(row_ptr.back()));
  parallel_for_dynamic(0, m, [&](index_t i) {
    auto o = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    const auto& rc = row_cols[static_cast<std::size_t>(i)];
    const auto& rv = row_vals[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < rc.size(); ++k, ++o) {
      col_idx[o] = rc[k];
      vals[o] = rv[k];
    }
  });
  return Csr<T>(m, n, std::move(row_ptr), std::move(col_idx),
                std::move(vals));
}

/// Matrix power A^k (k >= 0) by repeated mxm; A must be square.
template <typename T, typename S = PlusTimes<T>>
Csr<T> matrix_power(const Csr<T>& a, int k) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(), "matrix_power requires square A");
  KRONLAB_REQUIRE(k >= 0, "matrix_power requires k >= 0");
  Csr<T> result = Csr<T>::identity(a.nrows());
  for (int i = 0; i < k; ++i) result = mxm<T, S>(result, a);
  return result;
}

namespace detail {
template <typename T, typename Combine>
Csr<T> ewise_merge(const Csr<T>& a, const Csr<T>& b, bool intersect,
                   Combine&& combine) {
  KRONLAB_REQUIRE(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                  "element-wise op shape mismatch");
  Coo<T> coo(a.nrows(), a.ncols());
  coo.reserve(intersect ? std::min(a.nnz(), b.nnz()) : a.nnz() + b.nnz());
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    const auto bc = b.row_cols(i);
    const auto bv = b.row_vals(i);
    std::size_t ka = 0, kb = 0;
    while (ka < ac.size() || kb < bc.size()) {
      if (kb == bc.size() || (ka < ac.size() && ac[ka] < bc[kb])) {
        if (!intersect) coo.push(i, ac[ka], combine(av[ka], T{}));
        ++ka;
      } else if (ka == ac.size() || bc[kb] < ac[ka]) {
        if (!intersect) coo.push(i, bc[kb], combine(T{}, bv[kb]));
        ++kb;
      } else {
        coo.push(i, ac[ka], combine(av[ka], bv[kb]));
        ++ka;
        ++kb;
      }
    }
  }
  return Csr<T>::from_coo(coo);
}
} // namespace detail

/// A + B (union merge).
template <typename T>
Csr<T> ewise_add(const Csr<T>& a, const Csr<T>& b) {
  return detail::ewise_merge(a, b, /*intersect=*/false,
                             [](T x, T y) { return x + y; });
}

/// A - B (union merge).
template <typename T>
Csr<T> ewise_sub(const Csr<T>& a, const Csr<T>& b) {
  return detail::ewise_merge(a, b, /*intersect=*/false,
                             [](T x, T y) { return x - y; });
}

/// Hadamard product A ∘ B (intersection merge).
template <typename T>
Csr<T> ewise_mult(const Csr<T>& a, const Csr<T>& b) {
  return detail::ewise_merge(a, b, /*intersect=*/true,
                             [](T x, T y) { return x * y; });
}

/// Aᵗ.
template <typename T>
Csr<T> transpose(const Csr<T>& a) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(a.ncols()) + 1, 0);
  for (const index_t c : a.col_idx()) {
    ++row_ptr[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];
  std::vector<index_t> col_idx(static_cast<std::size_t>(a.nnz()));
  std::vector<T> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<offset_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto v = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto o =
          static_cast<std::size_t>(cursor[static_cast<std::size_t>(cols[k])]++);
      col_idx[o] = i;
      vals[o] = v[k];
    }
  }
  return Csr<T>(a.ncols(), a.nrows(), std::move(row_ptr),
                std::move(col_idx), std::move(vals));
}

/// y = xᵗ·A over semiring S (GraphBLAS vxm).  Scatter-based: cheaper than
/// transposing when x is used once.
template <typename T, typename S = PlusTimes<T>>
Vector<T> vxm(const Vector<T>& x, const Csr<T>& a) {
  KRONLAB_REQUIRE(x.size() == a.nrows(), "vxm shape mismatch");
  Vector<T> y(a.ncols(), S::zero());
  for (index_t i = 0; i < a.nrows(); ++i) {
    const T xi = x[i];
    if (xi == S::zero()) continue;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      y[cols[k]] = S::add(y[cols[k]], S::mult(xi, vals[k]));
    }
  }
  return y;
}

/// Column sums 1ᵗ·A.
template <typename T>
Vector<T> reduce_cols(const Csr<T>& a) {
  return vxm(ones<T>(a.nrows()), a);
}

/// Row sums A·1 (the degree vector for an adjacency matrix).
template <typename T>
Vector<T> reduce_rows(const Csr<T>& a) {
  Vector<T> r(a.nrows(), T{0});
  parallel_for(0, a.nrows(), [&](index_t i) {
    T acc{0};
    for (const T v : a.row_vals(i)) acc += v;
    r[i] = acc;
  });
  return r;
}

/// Sum of all stored values, 1ᵗA1.
template <typename T>
T reduce(const Csr<T>& a) {
  return parallel_reduce<T>(
      0, a.nrows(), T{0},
      [&](index_t i) {
        T acc{0};
        for (const T v : a.row_vals(i)) acc += v;
        return acc;
      },
      [](T x, T y) { return x + y; });
}

/// diag(A) as a dense vector (Def. 6).
template <typename T>
Vector<T> diag_vector(const Csr<T>& a) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(), "diag requires a square matrix");
  Vector<T> d(a.nrows(), T{0});
  parallel_for(0, a.nrows(), [&](index_t i) { d[i] = a.at(i, i); });
  return d;
}

/// D_A = I ∘ A, the diagonal part as a matrix (Def. 6).
template <typename T>
Csr<T> diag_matrix(const Csr<T>& a) {
  return ewise_mult(a, Csr<T>::identity(a.nrows()));
}

/// A + I (adds full self loops; merges with any existing diagonal).
template <typename T>
Csr<T> add_identity(const Csr<T>& a) {
  KRONLAB_REQUIRE(a.nrows() == a.ncols(), "add_identity requires square A");
  return ewise_add(a, Csr<T>::identity(a.nrows()));
}

/// diag(u)·A — entry (i,j) becomes u[i]·A_ij.  For 0/1 adjacency A this is
/// the paper's (u 1ᵗ) ∘ A.
template <typename T>
Csr<T> row_scale(const Csr<T>& a, const Vector<T>& u) {
  KRONLAB_REQUIRE(u.size() == a.nrows(), "row_scale size mismatch");
  Csr<T> out = a;
  auto& vals = out.vals();
  const auto& rp = out.row_ptr();
  parallel_for(0, out.nrows(), [&](index_t i) {
    for (auto k = rp[static_cast<std::size_t>(i)];
         k < rp[static_cast<std::size_t>(i) + 1]; ++k) {
      vals[static_cast<std::size_t>(k)] *= u[i];
    }
  });
  return out;
}

/// A·diag(v) — entry (i,j) becomes A_ij·v[j]; the paper's (1 vᵗ) ∘ A for
/// 0/1 adjacency A.
template <typename T>
Csr<T> col_scale(const Csr<T>& a, const Vector<T>& v) {
  KRONLAB_REQUIRE(v.size() == a.ncols(), "col_scale size mismatch");
  Csr<T> out = a;
  auto& vals = out.vals();
  const auto& ci = out.col_idx();
  parallel_for_range(0, static_cast<index_t>(vals.size()),
                     [&](index_t lo, index_t hi) {
                       for (index_t k = lo; k < hi; ++k) {
                         vals[static_cast<std::size_t>(k)] *=
                             v[ci[static_cast<std::size_t>(k)]];
                       }
                     });
  return out;
}

/// Scalar multiple s·A.
template <typename T>
Csr<T> scale(const Csr<T>& a, T s) {
  Csr<T> out = a;
  for (auto& v : out.vals()) v *= s;
  return out;
}

/// Apply `fn` to every stored value.
template <typename T, typename Fn>
Csr<T> apply(const Csr<T>& a, Fn&& fn) {
  Csr<T> out = a;
  for (auto& v : out.vals()) v = fn(v);
  return out;
}

/// True iff A == Aᵗ (values included).
template <typename T>
bool is_symmetric(const Csr<T>& a) {
  if (a.nrows() != a.ncols()) return false;
  return a == transpose(a);
}

/// True iff every diagonal entry is absent (no self loops, Def. 6).
template <typename T>
bool has_no_self_loops(const Csr<T>& a) {
  if (a.nrows() != a.ncols()) return false;
  for (index_t i = 0; i < a.nrows(); ++i) {
    if (a.has(i, i)) return false;
  }
  return true;
}

/// True iff every diagonal entry is present (full self loops, Def. 6).
template <typename T>
bool has_full_self_loops(const Csr<T>& a) {
  if (a.nrows() != a.ncols()) return false;
  for (index_t i = 0; i < a.nrows(); ++i) {
    if (!a.has(i, i)) return false;
  }
  return true;
}

} // namespace kronlab::grb
