// kronlab/grb/vector.hpp
//
// Dense vector type for the mini-GraphBLAS layer.
//
// The paper's ground-truth formulas are algebra over a handful of
// factor-sized dense vectors (degree d, two-hop walk counts w², square
// counts s, the all-ones vector 1).  A thin wrapper over std::vector with
// shape-checked element-wise helpers keeps those formulas readable and safe.

#pragma once

#include <numeric>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/common/types.hpp"

namespace kronlab::grb {

template <typename T>
class Vector {
public:
  Vector() = default;
  explicit Vector(index_t n, T fill = T{}) {
    KRONLAB_REQUIRE(n >= 0, "vector size must be non-negative");
    data_.assign(static_cast<std::size_t>(n), fill);
  }
  explicit Vector(std::vector<T> data) : data_(std::move(data)) {}

  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(data_.size());
  }

  T& operator[](index_t i) {
    KRONLAB_DBG_ASSERT(i >= 0 && i < size(), "vector index out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  const T& operator[](index_t i) const {
    KRONLAB_DBG_ASSERT(i >= 0 && i < size(), "vector index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] const std::vector<T>& data() const { return data_; }
  [[nodiscard]] std::vector<T>& data() { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  bool operator==(const Vector&) const = default;

private:
  std::vector<T> data_;
};

/// The all-ones vector 1_n.
template <typename T>
Vector<T> ones(index_t n) {
  return Vector<T>(n, T{1});
}

/// The all-zeros vector 0_n.
template <typename T>
Vector<T> zeros(index_t n) {
  return Vector<T>(n, T{0});
}

/// Cardinal (one-hot) vector e_i.
template <typename T>
Vector<T> cardinal(index_t n, index_t i) {
  KRONLAB_REQUIRE(i >= 0 && i < n, "cardinal index out of range");
  Vector<T> v(n, T{0});
  v[i] = T{1};
  return v;
}

namespace detail {
template <typename T>
void require_same_size(const Vector<T>& a, const Vector<T>& b,
                       const char* op) {
  KRONLAB_REQUIRE(a.size() == b.size(),
                  std::string("vector size mismatch in ") + op);
}
} // namespace detail

/// Element-wise sum a + b.
template <typename T>
Vector<T> ewise_add(const Vector<T>& a, const Vector<T>& b) {
  detail::require_same_size(a, b, "ewise_add");
  Vector<T> r(a.size());
  for (index_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

/// Element-wise difference a - b.
template <typename T>
Vector<T> ewise_sub(const Vector<T>& a, const Vector<T>& b) {
  detail::require_same_size(a, b, "ewise_sub");
  Vector<T> r(a.size());
  for (index_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

/// Hadamard product a ∘ b.
template <typename T>
Vector<T> ewise_mult(const Vector<T>& a, const Vector<T>& b) {
  detail::require_same_size(a, b, "ewise_mult");
  Vector<T> r(a.size());
  for (index_t i = 0; i < a.size(); ++i) r[i] = a[i] * b[i];
  return r;
}

/// Scalar multiple s·a.
template <typename T>
Vector<T> scale(const Vector<T>& a, T s) {
  Vector<T> r(a.size());
  for (index_t i = 0; i < a.size(); ++i) r[i] = a[i] * s;
  return r;
}

/// Add scalar s to every entry.
template <typename T>
Vector<T> shift(const Vector<T>& a, T s) {
  Vector<T> r(a.size());
  for (index_t i = 0; i < a.size(); ++i) r[i] = a[i] + s;
  return r;
}

/// Sum of all entries.
template <typename T>
T reduce(const Vector<T>& a) {
  return std::accumulate(a.begin(), a.end(), T{0});
}

/// Kronecker product of vectors: (a ⊗ b)[γ(i,k)] = a[i]·b[k].
template <typename T>
Vector<T> kron(const Vector<T>& a, const Vector<T>& b) {
  Vector<T> r(a.size() * b.size());
  index_t p = 0;
  for (index_t i = 0; i < a.size(); ++i) {
    for (index_t k = 0; k < b.size(); ++k) r[p++] = a[i] * b[k];
  }
  return r;
}

/// Inner product aᵗb.
template <typename T>
T dot(const Vector<T>& a, const Vector<T>& b) {
  detail::require_same_size(a, b, "dot");
  T acc{0};
  for (index_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

} // namespace kronlab::grb
