// kronlab/grb/semiring.hpp
//
// Semiring abstractions in the spirit of the GraphBLAS C API: matrix
// operations are parameterized on an (add-monoid, multiply-op) pair, so one
// SpMV/SpGEMM kernel serves arithmetic counting (plus-times), reachability
// (or-and), and shortest hops (min-plus).

#pragma once

#include <algorithm>
#include <limits>

namespace kronlab::grb {

/// Classic arithmetic semiring (+, ×, 0) — used by all counting formulas.
template <typename T>
struct PlusTimes {
  using value_type = T;
  static constexpr T zero() { return T{0}; }
  static constexpr T add(T a, T b) { return a + b; }
  static constexpr T mult(T a, T b) { return a * b; }
};

/// Boolean semiring (∨, ∧, false) over any arithmetic carrier — used for
/// reachability and structural products.
template <typename T>
struct OrAnd {
  using value_type = T;
  static constexpr T zero() { return T{0}; }
  static constexpr T add(T a, T b) { return (a != T{0} || b != T{0}) ? T{1} : T{0}; }
  static constexpr T mult(T a, T b) { return (a != T{0} && b != T{0}) ? T{1} : T{0}; }
};

/// Tropical semiring (min, +, +inf) — hop-count style computations.
template <typename T>
struct MinPlus {
  using value_type = T;
  static constexpr T zero() { return std::numeric_limits<T>::max(); }
  static constexpr T add(T a, T b) { return std::min(a, b); }
  static constexpr T mult(T a, T b) {
    // Saturating addition so zero() behaves as annihilator-free infinity.
    if (a == zero() || b == zero()) return zero();
    return a + b;
  }
};

} // namespace kronlab::grb
