// kronlab/kronlab.hpp
//
// Umbrella header: the full public API.
//
//   grb::      mini-GraphBLAS (vectors, CSR matrices, semiring kernels,
//              Kronecker products, I/O)
//   graph::    graph algorithms over adjacency matrices (BFS, components,
//              bipartiteness, eccentricity, direct triangle & butterfly
//              counting, community metrics, degree statistics)
//   gen::      factor generators (canonical, random, R-MAT, BTER-lite,
//              KONECT loader, unicode-like stand-in)
//   kron::     the bipartite Kronecker generator with ground truth
//              (products, streaming, factored statistics, Thm 1–7 / Cor 1–2)
//   serve::    the ground-truth oracle as a service (wire protocol,
//              transports, query server, client — kronlab_served)

#pragma once

#include "kronlab/common/error.hpp"
#include "kronlab/common/random.hpp"
#include "kronlab/common/timer.hpp"
#include "kronlab/common/types.hpp"
#include "kronlab/dist/comm.hpp"
#include "kronlab/dist/sharded.hpp"
#include "kronlab/gen/bter.hpp"
#include "kronlab/gen/canonical.hpp"
#include "kronlab/gen/konect.hpp"
#include "kronlab/gen/random_bipartite.hpp"
#include "kronlab/gen/rmat.hpp"
#include "kronlab/gen/spec.hpp"
#include "kronlab/gen/unicode_like.hpp"
#include "kronlab/graph/approx_butterflies.hpp"
#include "kronlab/graph/bipartite.hpp"
#include "kronlab/graph/bipartite_clustering.hpp"
#include "kronlab/graph/butterflies.hpp"
#include "kronlab/graph/community.hpp"
#include "kronlab/graph/degeneracy.hpp"
#include "kronlab/graph/eccentricity.hpp"
#include "kronlab/graph/graph.hpp"
#include "kronlab/graph/stats.hpp"
#include "kronlab/graph/tip.hpp"
#include "kronlab/graph/traversal.hpp"
#include "kronlab/graph/triangles.hpp"
#include "kronlab/graph/wing.hpp"
#include "kronlab/grb/binary_io.hpp"
#include "kronlab/grb/csr.hpp"
#include "kronlab/grb/io.hpp"
#include "kronlab/grb/kron.hpp"
#include "kronlab/grb/masked.hpp"
#include "kronlab/grb/ops.hpp"
#include "kronlab/grb/semiring.hpp"
#include "kronlab/grb/vector.hpp"
#include "kronlab/io/durable.hpp"
#include "kronlab/io/file_ops.hpp"
#include "kronlab/io/stream_gen.hpp"
#include "kronlab/kron/clustering.hpp"
#include "kronlab/kron/community.hpp"
#include "kronlab/kron/connectivity.hpp"
#include "kronlab/kron/distance.hpp"
#include "kronlab/kron/factored.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/index_map.hpp"
#include "kronlab/kron/oracle.hpp"
#include "kronlab/kron/partition.hpp"
#include "kronlab/kron/power.hpp"
#include "kronlab/kron/product.hpp"
#include "kronlab/kron/stream.hpp"
#include "kronlab/kron/triangles.hpp"
#include "kronlab/serve/client.hpp"
#include "kronlab/serve/lru.hpp"
#include "kronlab/serve/protocol.hpp"
#include "kronlab/serve/server.hpp"
#include "kronlab/serve/transport.hpp"
