// kronlab/dist/aggregator.hpp
//
// Per-destination message aggregation for the distributed runtime — the
// Grappa RDMAAggregator idiom scaled to kronlab's simulated ranks.
//
// Why it exists: the ghost-row exchange in dist/sharded.cpp is naturally
// row-granular — one request, one row payload, one ack per ghost row —
// and at high rank counts the per-message envelope cost (an MPI header
// and injection-rate slot in production; a mailbox lock + allocation in
// the simulated runtime) dominates the bytes actually moved.  Grappa's
// answer is to coalesce many small application messages bound for the
// same destination into large buffers that flush when full or when the
// oldest buffered message has waited too long; the application keeps its
// small-message programming model and the wire carries big frames.
//
// This layer does exactly that over Comm: callers enqueue *frames*
// (ordinary Message payloads) per destination rank; the aggregator packs
// them into one batched wire message per flush.  Flushes happen on
//
//   * capacity  — a destination's buffered payload reaches
//                 AggregatorOptions::capacity_words,
//   * deadline  — the oldest frame buffered for a destination has aged
//                 past AggregatorOptions::deadline (poll() / the caller's
//                 event loop drives this; the aggregator owns no thread),
//   * flush     — an explicit flush()/flush_all() at a protocol phase
//                 boundary (requests posted, retry sweep finished).
//
// A buffer holding exactly one frame is sent raw — byte-identical to the
// unaggregated send — so aggregation never pessimizes sparse traffic.
// Batches are framed [kBatchMagic, n, {len, words...} x n]; raw frames
// are required to start with a non-negative word (the exchange protocol
// starts every frame with its positive epoch), which is what makes the
// magic unambiguous on the receive side.
//
// Delivery guarantees are exactly Comm's: frames for one destination are
// delivered in enqueue order (they ride one tag in FIFO order), and a
// dropped batch drops all its frames — the exchange's epoch/seq retry
// protocol treats that the same as today's dropped single messages, and
// its per-row dedup absorbs a retried batch row by row.
//
// `enabled = false` (or KRONLAB_NO_AGGREGATE=1 via from_env()) is the
// A/B escape hatch: every frame goes out immediately as its own wire
// message — the per-row baseline bench_distributed compares against.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "kronlab/common/registry.hpp"
#include "kronlab/common/types.hpp"
#include "kronlab/dist/comm.hpp"

namespace kronlab::dist {

/// Flush policy knobs.  Defaults are sized for the ghost-row exchange:
/// 2048-word (16 KiB) buffers keep several row payloads per wire message
/// on the bench instances, and a 1 ms deadline bounds the latency a
/// buffered frame can add to the exchange's retry clocks (protocol
/// timeouts start at 50 ms).
struct AggregatorOptions {
  bool enabled = true;
  std::size_t capacity_words = 2048;       ///< flush-on-capacity threshold
  std::chrono::microseconds deadline{1000}; ///< flush-on-age threshold

  /// Process defaults: aggregation on unless KRONLAB_NO_AGGREGATE is set
  /// to a non-empty, non-"0" value (CI's fault-stress job runs the fault
  /// suites both ways through this knob).
  [[nodiscard]] static AggregatorOptions from_env();
};

/// Flush-reason and coalescing counters, surfaced through
/// parallel/metrics (agg_* counters) and ExchangeStats/RecoveryReport.
struct AggregatorStats {
  count_t frames_enqueued = 0;  ///< frames handed to enqueue()
  count_t rows_coalesced = 0;   ///< frames that shipped inside a batch
  count_t single_flushes = 0;   ///< frames that shipped raw (buffer of 1)
  count_t batches_sent = 0;     ///< multi-frame wire messages sent
  count_t capacity_flushes = 0; ///< flushes triggered by capacity_words
  count_t deadline_flushes = 0; ///< flushes triggered by frame age
  count_t manual_flushes = 0;   ///< flush()/flush_all()/destructor flushes
  count_t bytes_saved = 0;      ///< modeled envelope bytes not sent

  /// Fold `other` into this (plain sums).
  void merge(const AggregatorStats& other);
};

/// Per-destination frame aggregator over one Comm tag.  Single-threaded
/// by design: it lives inside one rank's protocol event loop, like every
/// Comm handle.  The destructor flushes anything still buffered.
class Aggregator {
public:
  using clock = std::chrono::steady_clock;

  Aggregator(Comm& comm, int tag, AggregatorOptions opt = {});
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Buffer `frame` for rank `to`; sends immediately when aggregation is
  /// disabled, and flushes the destination's buffer first when adding the
  /// frame would exceed capacity_words (capacity flush).
  void enqueue(index_t to, Message frame);

  /// Flush one destination / all destinations now (manual flush).
  void flush(index_t to);
  void flush_all();

  /// Earliest instant at which a buffered frame crosses the deadline —
  /// the caller caps its event-loop wait with this.  nullopt when nothing
  /// is buffered.
  [[nodiscard]] std::optional<clock::time_point> next_deadline() const;

  /// Flush every destination whose oldest frame has aged past the
  /// deadline (deadline flush).  Call on every event-loop wakeup.
  void poll();

  /// Receive the next wire message on the tag (via Comm::recv_any) and
  /// return its frames: a batch is unpacked into its constituent frames,
  /// a raw message comes back as a single frame.  Unpacking is always on,
  /// so mixed aggregated / per-row peers interoperate.
  std::optional<std::pair<index_t, std::vector<Message>>> recv_frames(
      std::chrono::milliseconds timeout);

  [[nodiscard]] const AggregatorStats& stats() const { return stats_; }

  /// Publish stats() as agg_* named counters in parallel/metrics (no-op
  /// while metrics recording is off).
  void publish_metrics() const;

  // -- wire format (exposed for tests and the protocol's validation) ----

  /// First word of a batched wire message.  Raw frames must start with a
  /// non-negative word.
  static constexpr word_t kBatchMagic = magic::kBatchWord;

  [[nodiscard]] static bool is_batch(const Message& msg);

  /// Split a batched message into frames; throws protocol-shaped
  /// invalid_argument (KRONLAB_REQUIRE) on malformed framing.
  [[nodiscard]] static std::vector<Message> unpack(const Message& msg);

private:
  struct Buffer {
    std::vector<Message> frames;
    std::size_t words = 0;             ///< payload words buffered
    clock::time_point oldest;          ///< enqueue time of frames.front()
  };

  enum class FlushReason { capacity, deadline, manual };
  void flush_buffer(index_t to, Buffer& buf, FlushReason reason);

  Comm& comm_;
  int tag_;
  AggregatorOptions opt_;
  AggregatorStats stats_;
  // Destination buffers, keyed by rank.  A rank count is small (the
  // simulated runtime tops out at tens of ranks), so a flat vector
  // indexed by rank beats a hash map on every enqueue.
  std::vector<Buffer> buffers_;
};

} // namespace kronlab::dist
