#include "kronlab/dist/aggregator.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "kronlab/common/error.hpp"
#include "kronlab/common/registry.hpp"
#include "kronlab/obs/stats.hpp"
#include "kronlab/obs/trace.hpp"
#include "kronlab/parallel/metrics.hpp"

namespace kronlab::dist {

namespace {

/// Modeled per-wire-message envelope cost, used for the bytes_saved
/// counter.  In the simulated runtime each Comm::send pays a vector
/// allocation, a deque node, and a mailbox lock round; in an MPI port it
/// would be the eager-protocol header plus an injection-rate slot.  64
/// bytes is the conventional ballpark for both — the counter is a model,
/// not a measurement, and DESIGN.md §13 says so.
constexpr count_t kEnvelopeBytes = 64;
constexpr count_t kWordBytes = static_cast<count_t>(sizeof(word_t));

const char* reason_name(int r) {
  switch (r) {
    case 0: return "capacity";
    case 1: return "deadline";
    default: return "manual";
  }
}

} // namespace

AggregatorOptions AggregatorOptions::from_env() {
  AggregatorOptions opt;
  const char* env = std::getenv(kronlab::env::kNoAggregate);
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    opt.enabled = false;
  }
  return opt;
}

void AggregatorStats::merge(const AggregatorStats& other) {
  frames_enqueued += other.frames_enqueued;
  rows_coalesced += other.rows_coalesced;
  single_flushes += other.single_flushes;
  batches_sent += other.batches_sent;
  capacity_flushes += other.capacity_flushes;
  deadline_flushes += other.deadline_flushes;
  manual_flushes += other.manual_flushes;
  bytes_saved += other.bytes_saved;
}

Aggregator::Aggregator(Comm& comm, int tag, AggregatorOptions opt)
    : comm_(comm), tag_(tag), opt_(opt),
      buffers_(static_cast<std::size_t>(comm.size())) {
  KRONLAB_REQUIRE(opt_.capacity_words > 0,
                  "aggregator capacity must be positive");
}

Aggregator::~Aggregator() { flush_all(); }

bool Aggregator::is_batch(const Message& msg) {
  return !msg.empty() && msg.front() == kBatchMagic;
}

std::vector<Message> Aggregator::unpack(const Message& msg) {
  KRONLAB_REQUIRE(msg.size() >= 2 && msg[0] == kBatchMagic,
                  "malformed aggregator batch header");
  const auto count = msg[1];
  KRONLAB_REQUIRE(count >= 0, "malformed aggregator batch count");
  std::vector<Message> frames;
  frames.reserve(static_cast<std::size_t>(count));
  std::size_t i = 2;
  for (word_t f = 0; f < count; ++f) {
    KRONLAB_REQUIRE(i < msg.size(), "truncated aggregator batch");
    const auto len = msg[i++];
    KRONLAB_REQUIRE(len >= 0 && i + static_cast<std::size_t>(len) <=
                                    msg.size(),
                    "malformed aggregator frame length");
    frames.emplace_back(msg.begin() + static_cast<std::ptrdiff_t>(i),
                        msg.begin() + static_cast<std::ptrdiff_t>(
                                          i + static_cast<std::size_t>(len)));
    i += static_cast<std::size_t>(len);
  }
  KRONLAB_REQUIRE(i == msg.size(), "trailing words after aggregator batch");
  return frames;
}

void Aggregator::enqueue(index_t to, Message frame) {
  KRONLAB_REQUIRE(!frame.empty() && frame.front() >= 0,
                  "aggregated frames must start with a non-negative word");
  ++stats_.frames_enqueued;
  if (!opt_.enabled) {
    // Escape hatch: the per-row baseline.  Every frame is its own wire
    // message, accounted as a single flush so the enqueued ==
    // coalesced + singles invariant holds in both modes.
    ++stats_.single_flushes;
    comm_.send(to, tag_, std::move(frame));
    return;
  }
  auto& buf = buffers_[static_cast<std::size_t>(to)];
  if (!buf.frames.empty() &&
      buf.words + frame.size() > opt_.capacity_words) {
    flush_buffer(to, buf, FlushReason::capacity);
  }
  if (buf.frames.empty()) buf.oldest = clock::now();
  buf.words += frame.size();
  buf.frames.push_back(std::move(frame));
  if (buf.words >= opt_.capacity_words) {
    flush_buffer(to, buf, FlushReason::capacity);
  }
}

void Aggregator::flush_buffer(index_t to, Buffer& buf, FlushReason reason) {
  if (buf.frames.empty()) return;
  switch (reason) {
    case FlushReason::capacity: ++stats_.capacity_flushes; break;
    case FlushReason::deadline: ++stats_.deadline_flushes; break;
    case FlushReason::manual: ++stats_.manual_flushes; break;
  }
  static obs::Counter& flush_counter = obs::counter("dist/agg_flushes");
  flush_counter.add();
  static obs::Histogram& flush_hist = obs::histogram("dist/agg_flush");
  obs::LatencyScope flush_latency(flush_hist);
  if (trace::enabled()) {
    trace::instant(
        "dist", "agg/flush",
        trace::intern("rank=" + std::to_string(comm_.rank()) +
                      " dest=" + std::to_string(to) +
                      " frames=" + std::to_string(buf.frames.size()) +
                      " words=" + std::to_string(buf.words) + " reason=" +
                      reason_name(static_cast<int>(reason))));
  }
  if (buf.frames.size() == 1) {
    // A lone frame ships raw — zero framing overhead, byte-identical to
    // the unaggregated path.
    ++stats_.single_flushes;
    comm_.send(to, tag_, std::move(buf.frames.front()));
  } else {
    const auto n = static_cast<count_t>(buf.frames.size());
    Message batch;
    batch.reserve(2 + buf.frames.size() + buf.words);
    batch.push_back(kBatchMagic);
    batch.push_back(n);
    for (auto& frame : buf.frames) {
      batch.push_back(static_cast<word_t>(frame.size()));
      batch.insert(batch.end(), frame.begin(), frame.end());
    }
    stats_.rows_coalesced += n;
    ++stats_.batches_sent;
    // n frames in one envelope instead of n: n-1 envelopes saved, minus
    // the batch header (magic + count + one length word per frame).
    stats_.bytes_saved +=
        (n - 1) * kEnvelopeBytes - (2 + n) * kWordBytes;
    comm_.send(to, tag_, std::move(batch));
  }
  buf.frames.clear();
  buf.words = 0;
}

void Aggregator::flush(index_t to) {
  flush_buffer(to, buffers_[static_cast<std::size_t>(to)],
               FlushReason::manual);
}

void Aggregator::flush_all() {
  for (index_t r = 0; r < static_cast<index_t>(buffers_.size()); ++r) {
    flush_buffer(r, buffers_[static_cast<std::size_t>(r)],
                 FlushReason::manual);
  }
}

std::optional<Aggregator::clock::time_point> Aggregator::next_deadline()
    const {
  std::optional<clock::time_point> next;
  for (const auto& buf : buffers_) {
    if (buf.frames.empty()) continue;
    const auto due = buf.oldest + opt_.deadline;
    if (!next || due < *next) next = due;
  }
  return next;
}

void Aggregator::poll() {
  const auto now = clock::now();
  for (index_t r = 0; r < static_cast<index_t>(buffers_.size()); ++r) {
    auto& buf = buffers_[static_cast<std::size_t>(r)];
    if (!buf.frames.empty() && now >= buf.oldest + opt_.deadline) {
      flush_buffer(r, buf, FlushReason::deadline);
    }
  }
}

std::optional<std::pair<index_t, std::vector<Message>>>
Aggregator::recv_frames(std::chrono::milliseconds timeout) {
  auto got = comm_.recv_any(tag_, timeout);
  if (!got) return std::nullopt;
  if (is_batch(got->second)) {
    return std::make_pair(got->first, unpack(got->second));
  }
  std::vector<Message> one;
  one.push_back(std::move(got->second));
  return std::make_pair(got->first, std::move(one));
}

void Aggregator::publish_metrics() const {
  if (!metrics::enabled()) return;
  metrics::counter_add("agg_frames_enqueued",
                       static_cast<double>(stats_.frames_enqueued));
  metrics::counter_add("agg_rows_coalesced",
                       static_cast<double>(stats_.rows_coalesced));
  metrics::counter_add("agg_single_flushes",
                       static_cast<double>(stats_.single_flushes));
  metrics::counter_add("agg_batches_sent",
                       static_cast<double>(stats_.batches_sent));
  metrics::counter_add("agg_capacity_flushes",
                       static_cast<double>(stats_.capacity_flushes));
  metrics::counter_add("agg_deadline_flushes",
                       static_cast<double>(stats_.deadline_flushes));
  metrics::counter_add("agg_manual_flushes",
                       static_cast<double>(stats_.manual_flushes));
  metrics::counter_add("agg_bytes_saved",
                       static_cast<double>(stats_.bytes_saved));
}

} // namespace kronlab::dist
