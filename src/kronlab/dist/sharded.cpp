#include "kronlab/dist/sharded.hpp"

#include <unordered_map>
#include <unordered_set>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/coo.hpp"
#include "kronlab/kron/ground_truth.hpp"

namespace kronlab::dist {

Shard generate_shard(const kron::BipartiteKronecker& kp,
                     const kron::PartitionedStream& ps, index_t rank) {
  Shard shard;
  shard.n = kp.num_vertices();
  const auto [plo, phi] = ps.owned_product_rows(rank);
  shard.row_begin = plo;
  shard.row_end = phi;
  grb::Coo<count_t> coo(phi - plo, shard.n);
  coo.reserve(ps.entries_of(rank));
  ps.for_each_entry(rank, [&](index_t p, index_t q) {
    coo.push(p - plo, q, 1);
  });
  shard.rows = grb::Csr<count_t>::from_coo(coo);
  return shard;
}

namespace {

/// Tags for the two exchange phases.
constexpr int kRequestTag = 1;
constexpr int kRowsTag = 2;

/// Owner of global row v given the rank-ordered cut vector.
index_t owner_of(const std::vector<word_t>& row_begins, index_t v) {
  // row_begins[r] = first row of rank r; ranks cover [0, n) in order.
  index_t lo = 0;
  index_t hi = static_cast<index_t>(row_begins.size()) - 1;
  while (lo < hi) {
    const index_t mid = (lo + hi + 1) / 2;
    if (row_begins[static_cast<std::size_t>(mid)] <= v) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

} // namespace

count_t distributed_global_butterflies(Comm& comm, const Shard& shard) {
  const index_t p = comm.size();
  // Every rank learns the global row layout.
  const auto row_begins = comm.allgather(shard.row_begin);

  // ---- phase 1: figure out which remote rows this rank needs ----------
  // Wedge counting of owned v walks rows of every neighbor j of v.
  std::vector<std::unordered_set<index_t>> needed(
      static_cast<std::size_t>(p));
  for (index_t lv = 0; lv < shard.rows.nrows(); ++lv) {
    for (const index_t j : shard.rows.row_cols(lv)) {
      if (!shard.owns(j)) {
        needed[static_cast<std::size_t>(owner_of(row_begins, j))].insert(j);
      }
    }
  }
  std::vector<Message> requests(static_cast<std::size_t>(p));
  for (index_t r = 0; r < p; ++r) {
    requests[static_cast<std::size_t>(r)]
        .assign(needed[static_cast<std::size_t>(r)].begin(),
                needed[static_cast<std::size_t>(r)].end());
  }
  const auto incoming_requests = comm.alltoall(std::move(requests));

  // ---- phase 2: serve the requested rows ------------------------------
  std::vector<Message> replies(static_cast<std::size_t>(p));
  for (index_t r = 0; r < p; ++r) {
    Message& reply = replies[static_cast<std::size_t>(r)];
    for (const word_t vw : incoming_requests[static_cast<std::size_t>(r)]) {
      const auto v = static_cast<index_t>(vw);
      KRONLAB_REQUIRE(shard.owns(v), "request routed to wrong owner");
      const auto cols = shard.rows.row_cols(shard.local(v));
      reply.push_back(v);
      reply.push_back(static_cast<word_t>(cols.size()));
      reply.insert(reply.end(), cols.begin(), cols.end());
    }
  }
  const auto incoming_rows = comm.alltoall(std::move(replies));

  // Ghost cache: global row id → column list.
  std::unordered_map<index_t, std::vector<index_t>> ghost;
  for (const Message& msg : incoming_rows) {
    std::size_t i = 0;
    while (i < msg.size()) {
      const auto v = static_cast<index_t>(msg[i++]);
      const auto deg = static_cast<std::size_t>(msg[i++]);
      std::vector<index_t> cols(deg);
      for (std::size_t k = 0; k < deg; ++k) {
        cols[k] = static_cast<index_t>(msg[i++]);
      }
      ghost.emplace(v, std::move(cols));
    }
  }
  const auto row_of = [&](index_t j) -> std::span<const index_t> {
    if (shard.owns(j)) return shard.rows.row_cols(shard.local(j));
    const auto it = ghost.find(j);
    KRONLAB_DBG_ASSERT(it != ghost.end(), "missing ghost row");
    return {it->second.data(), it->second.size()};
  };

  // ---- phase 3: local wedge counting of owned vertices ----------------
  std::vector<count_t> cnt(static_cast<std::size_t>(shard.n), 0);
  std::vector<index_t> touched;
  count_t local_sum = 0;
  for (index_t lv = 0; lv < shard.rows.nrows(); ++lv) {
    const index_t v = shard.row_begin + lv;
    touched.clear();
    for (const index_t j : shard.rows.row_cols(lv)) {
      for (const index_t k : row_of(j)) {
        if (k == v) continue;
        if (cnt[static_cast<std::size_t>(k)] == 0) touched.push_back(k);
        ++cnt[static_cast<std::size_t>(k)];
      }
    }
    for (const index_t k : touched) {
      const count_t c = cnt[static_cast<std::size_t>(k)];
      local_sum += c * (c - 1) / 2;
      cnt[static_cast<std::size_t>(k)] = 0;
    }
  }

  // Σ_v s_v = 4 · #C4.
  return comm.allreduce_sum(local_sum) / 4;
}

count_t distributed_ground_truth_squares(
    Comm& comm, const kron::BipartiteKronecker& kp,
    const kron::PartitionedStream& ps) {
  // Rank-local share of Σ_p s_C(p): the factored sum restricted to owned
  // left-factor rows — Σ_s c_s · (Σ_{i owned} g_s[i]) · sum(h_s).
  const auto sv = kron::vertex_squares(kp);
  const auto [lo, hi] = ps.owned_left_rows(comm.rank());
  count_t local = 0;
  for (const auto& term : sv.terms()) {
    count_t g_part = 0;
    for (index_t i = lo; i < hi; ++i) g_part += term.g[i];
    local += term.coeff * g_part * grb::reduce(term.h);
  }
  const count_t total = comm.allreduce_sum(local);
  KRONLAB_DBG_ASSERT(total % (sv.divisor() * 4) == 0,
                     "factored sum not divisible");
  return total / sv.divisor() / 4;
}

} // namespace kronlab::dist
