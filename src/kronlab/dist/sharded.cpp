#include "kronlab/dist/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "kronlab/common/error.hpp"
#include "kronlab/grb/binary_io.hpp"
#include "kronlab/obs/stats.hpp"
#include "kronlab/obs/trace.hpp"
#include "kronlab/obs/watchdog.hpp"
#include "kronlab/grb/coo.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/kron/stream.hpp"

namespace kronlab::dist {

Shard generate_shard(const kron::BipartiteKronecker& kp,
                     const kron::PartitionedStream& ps, index_t rank) {
  Shard shard;
  shard.n = kp.num_vertices();
  const auto [plo, phi] = ps.owned_product_rows(rank);
  shard.row_begin = plo;
  shard.row_end = phi;
  grb::Coo<count_t> coo(phi - plo, shard.n);
  coo.reserve(ps.entries_of(rank));
  ps.for_each_entry(rank, [&](index_t p, index_t q) {
    coo.push(p - plo, q, 1);
  });
  shard.rows = grb::Csr<count_t>::from_coo(coo);
  return shard;
}

std::string checkpoint_path(const CheckpointConfig& cfg, index_t rank) {
  return cfg.dir + "/kronlab-shard-" + std::to_string(rank) + ".ckpt";
}

namespace {

using clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

/// Snapshot metadata layout: {version, n, left_lo, left_hi, left_done}.
constexpr std::int64_t kCkptVersion = 1;
constexpr std::size_t kCkptMetaWords = 5;

/// Exchange protocol: one tag, typed by the second payload word.  The
/// first word is the exchange epoch (per-rank counter advanced in
/// collective order), which sequence-numbers every frame so duplicates
/// and stragglers from earlier exchanges are absorbed.  The protocol is
/// row-granular — one REQ and one ROWS frame per ghost row, plus an
/// epoch-level empty handshake for peers a rank needs nothing from — and
/// every frame ships through the per-destination Aggregator, which
/// coalesces frames bound for one rank into batched wire messages.
/// Epochs are positive, so raw frames never collide with the batch magic.
constexpr int kExchTag = 10;
constexpr word_t kMsgReq = 0;  ///< [epoch, REQ, v] or handshake [epoch, REQ]
constexpr word_t kMsgRows = 1; ///< [epoch, ROWS, v, deg, cols...] or
                               ///< handshake [epoch, ROWS]
constexpr word_t kMsgAck = 2;  ///< [epoch, ACK] (peer-level, per epoch)

/// Quiescence announcements ride the reliable control channel (negative
/// tag): a rank that finished its own requests and had its replies acked
/// may still owe a re-ack for a peer's resend (its last ACK could have
/// been dropped), so it lingers in the event loop — serving stragglers —
/// until every live peer has announced DONE.
constexpr int kExchCtlTag = -6;
constexpr word_t kMsgDone = 3; ///< [epoch, DONE]

/// Stored entries C owns for left-factor rows [lo, hi): the factor-space
/// expectation Σ_{i∈[lo,hi)} deg_M(i) · nnz(B) used by self-verification.
count_t expected_entries(const kron::BipartiteKronecker& kp, index_t lo,
                         index_t hi) {
  count_t m_entries = 0;
  for (index_t i = lo; i < hi; ++i) {
    m_entries += kp.left().row_degree(i);
  }
  return m_entries * kp.right().nnz();
}

/// Append every stored entry of `csr` into `coo`, shifting rows.
void append_csr_rows(grb::Coo<count_t>& coo, const grb::Csr<count_t>& csr,
                     index_t row_offset) {
  for (index_t r = 0; r < csr.nrows(); ++r) {
    for (const index_t c : csr.row_cols(r)) {
      coo.push(r + row_offset, c, 1);
    }
  }
}

/// Member position owning global row v given member-ordered row begins.
std::size_t owner_pos(const std::vector<word_t>& row_begins, index_t v) {
  std::size_t lo = 0;
  std::size_t hi = row_begins.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (row_begins[mid] <= static_cast<word_t>(v)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

/// Timeline annotation for a protocol event: this rank, the peer, the
/// exchange epoch (the protocol's message sequence number), and the
/// attempt count.  Only formatted when tracing is live.
void note_protocol(const char* what, index_t rank, index_t peer,
                   word_t epoch, int attempt) {
  if (!trace::enabled()) return;
  trace::instant("dist", what,
                 trace::intern("rank=" + std::to_string(rank) +
                               " peer=" + std::to_string(peer) +
                               " epoch=" + std::to_string(epoch) +
                               " attempt=" + std::to_string(attempt)));
}

milliseconds backed_off(milliseconds t, const RetryConfig& cfg) {
  const auto next = milliseconds(
      static_cast<milliseconds::rep>(static_cast<double>(t.count()) *
                                     cfg.backoff));
  return std::min(std::max(next, milliseconds(1)), cfg.max_backoff);
}

/// Worst-case per-peer wait: every attempt's deadline, plus slack for
/// peers that started the exchange late.
milliseconds retry_horizon(const RetryConfig& cfg) {
  milliseconds total{0};
  milliseconds t = cfg.timeout;
  for (int a = 0; a <= cfg.max_retries; ++a) {
    total += t;
    t = backed_off(t, cfg);
  }
  return total * 3;
}

/// Per-peer protocol state for one exchange epoch.
struct PeerState {
  index_t rank = -1;
  // Requester side: waiting on this peer's row replies to our requests.
  // have_reply rises when every requested row has landed (pending empty)
  // and at least one current-epoch ROWS frame arrived (got_rows — the
  // empty handshake for zero-need peers).
  bool have_reply = false;
  bool got_rows = false;
  std::unordered_set<index_t> pending; // rows still missing from this peer
  int req_attempts = 0;
  milliseconds req_timeout{0};
  clock::time_point req_deadline;
  // Responder side: waiting on this peer's ack of our reply frames.
  bool served = false;
  bool handshake_served = false;
  bool acked = false;
  int reply_attempts = 0;
  milliseconds ack_timeout{0};
  clock::time_point ack_deadline;
  // Row id → cached ROWS frame, for idempotent re-serve and resend.
  std::unordered_map<index_t, Message> reply_cache;
};

/// Serialize one owned row as a ROWS frame: [epoch, ROWS, v, deg, cols...].
Message build_row_frame(const Shard& shard, word_t epoch, index_t v) {
  const auto cols = shard.rows.row_cols(shard.local(v));
  Message frame;
  frame.reserve(4 + cols.size());
  frame.push_back(epoch);
  frame.push_back(kMsgRows);
  frame.push_back(v);
  frame.push_back(static_cast<word_t>(cols.size()));
  frame.insert(frame.end(), cols.begin(), cols.end());
  return frame;
}

/// The idempotent request/reply/ack ghost-row exchange.  Returns the
/// ghost cache (global row id → column list) for every remote row in
/// `needed`; `needed` is indexed by member position.  All REQ/ROWS/ACK
/// frames ride the aggregator; retry semantics are unchanged — a retried
/// batch is deduplicated row by row on both sides.
std::unordered_map<index_t, std::vector<index_t>> exchange_ghost_rows(
    Comm& comm, const Shard& shard, const std::vector<index_t>& members,
    const std::vector<std::vector<index_t>>& needed, word_t epoch,
    const RetryConfig& cfg, const AggregatorOptions& agg_opt,
    ExchangeStats& stats) {
  trace::Span exchange_span(
      "dist", "ghost_exchange",
      trace::enabled()
          ? trace::intern("rank=" + std::to_string(comm.rank()) +
                          " epoch=" + std::to_string(epoch))
          : nullptr);
  static obs::Histogram& epoch_hist = obs::histogram("dist/exchange_epoch");
  obs::LatencyScope epoch_latency(epoch_hist);
  obs::StallGuard stall_guard("dist/exchange_epoch");
  std::unordered_map<index_t, std::vector<index_t>> ghost;
  Aggregator agg(comm, kExchTag, agg_opt);
  std::vector<PeerState> peers;
  std::unordered_map<index_t, std::size_t> peer_pos;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == comm.rank()) continue;
    PeerState ps;
    ps.rank = members[i];
    ps.pending.insert(needed[i].begin(), needed[i].end());
    peers.push_back(std::move(ps));
    peer_pos[members[i]] = peers.size() - 1;
  }
  if (peers.empty()) return ghost;

  // One REQ frame per still-missing row — a retry automatically narrows
  // to the rows that have not landed yet.  A peer this rank needs nothing
  // from gets the empty handshake so the REQ/ROWS/ACK round (and with it
  // quiescence accounting) stays uniform across all peer pairs.
  const auto post_requests = [&](PeerState& ps) {
    if (ps.pending.empty()) {
      agg.enqueue(ps.rank, {epoch, kMsgReq});
    } else {
      for (const index_t v : ps.pending) {
        agg.enqueue(ps.rank, {epoch, kMsgReq, v});
      }
    }
  };

  const auto start = clock::now();
  const auto hard_deadline = start + retry_horizon(cfg);
  for (auto& ps : peers) {
    post_requests(ps);
    ps.req_timeout = cfg.timeout;
    ps.req_deadline = clock::now() + ps.req_timeout;
  }
  agg.flush_all(); // phase boundary: all initial requests posted

  std::size_t awaiting_replies = peers.size();
  std::size_t awaiting_acks = peers.size();
  bool done_sent = false;
  std::vector<bool> done_from(peers.size(), false);
  std::size_t done_count = 0;
  const auto announce_done = [&] {
    if (done_sent) return;
    for (const auto& ps : peers) {
      // Quiescence control frames ride the reliable negative-tag channel,
      // not the aggregated data tag. kronlab-lint: allow(dist-send)
      comm.send(ps.rank, kExchCtlTag, {epoch, kMsgDone});
    }
    done_sent = true;
  };

  const auto handle_frame = [&](index_t from, const Message& msg,
                                std::vector<word_t>& ack_epochs) {
    KRONLAB_REQUIRE(msg.size() >= 2, "malformed exchange message");
    const word_t msg_epoch = msg[0];
    const word_t type = msg[1];
    const auto it = peer_pos.find(from);
    PeerState* ps = it != peer_pos.end() ? &peers[it->second] : nullptr;
    if (type == kMsgReq) {
      KRONLAB_REQUIRE(msg.size() <= 3, "malformed REQ frame");
      if (ps && msg_epoch == epoch) {
        if (!ps->served) {
          ps->served = true;
          ps->ack_timeout = cfg.timeout;
          ps->ack_deadline = clock::now() + ps->ack_timeout;
        }
        if (msg.size() == 2) { // empty handshake: peer needs none of ours
          if (ps->handshake_served) {
            ++stats.dup_requests;
            note_protocol("exchange/dup_request", comm.rank(), from, epoch,
                          ps->reply_attempts);
          }
          ps->handshake_served = true;
          agg.enqueue(from, {epoch, kMsgRows});
        } else {
          const auto v = static_cast<index_t>(msg[2]);
          KRONLAB_REQUIRE(shard.owns(v), "request routed to wrong owner");
          auto [cached, inserted] = ps->reply_cache.try_emplace(v);
          if (inserted) {
            cached->second = build_row_frame(shard, epoch, v);
          } else {
            // Retried row (the original REQ or our ROWS frame was lost):
            // re-serve the cached frame idempotently.
            ++stats.dup_requests;
            note_protocol("exchange/dup_request", comm.rank(), from, epoch,
                          ps->reply_attempts);
          }
          agg.enqueue(from, Message(cached->second));
        }
      } else {
        // Straggler from an earlier exchange (or a non-member): serve
        // whatever we still own, stamped with *its* epoch — the sender
        // absorbs or ignores it by sequence number.
        if (msg.size() == 2) {
          agg.enqueue(from, {msg_epoch, kMsgRows});
        } else if (const auto v = static_cast<index_t>(msg[2]);
                   shard.owns(v)) {
          agg.enqueue(from, build_row_frame(shard, msg_epoch, v));
        } // not owned: stale request predating a row reassignment
      }
    } else if (type == kMsgRows) {
      bool fresh = false;
      if (ps && msg_epoch == epoch) {
        if (msg.size() == 2) { // empty-handshake reply
          fresh = !ps->got_rows;
        } else {
          KRONLAB_REQUIRE(msg.size() >= 4, "malformed ROWS frame");
          const auto v = static_cast<index_t>(msg[2]);
          const auto deg = static_cast<std::size_t>(msg[3]);
          KRONLAB_REQUIRE(msg.size() == 4 + deg, "malformed ROWS frame");
          if (ps->pending.erase(v) > 0) {
            std::vector<index_t> cols(deg);
            for (std::size_t k = 0; k < deg; ++k) {
              cols[k] = static_cast<index_t>(msg[4 + k]);
            }
            ghost.emplace(v, std::move(cols));
            fresh = true;
          }
        }
        ps->got_rows = true;
        if (!ps->have_reply && ps->pending.empty()) {
          ps->have_reply = true;
          --awaiting_replies;
        }
      }
      if (!fresh) {
        ++stats.dup_replies;
        note_protocol("exchange/dup_reply", comm.rank(), from, msg_epoch, 0);
      }
      // Always (re-)ack with the frame's own epoch so a responder stuck
      // on a lost ack from an earlier exchange can retire it.  Acks are
      // collected per wire message (below), one per distinct epoch, so a
      // re-served batch triggers one ack rather than an ack storm.
      if (std::find(ack_epochs.begin(), ack_epochs.end(), msg_epoch) ==
          ack_epochs.end()) {
        ack_epochs.push_back(msg_epoch);
      }
    } else if (type == kMsgAck) {
      if (ps && msg_epoch == epoch && ps->served && !ps->acked) {
        ps->acked = true;
        --awaiting_acks;
      }
    } else {
      KRONLAB_REQUIRE(false, "unknown exchange message type");
    }
  };

  // Process one wire message — all frames of a batch, or a lone raw
  // frame — then flush whatever replies/acks it produced.
  const auto handle_wire = [&](index_t from, std::vector<Message>&& frames) {
    std::vector<word_t> ack_epochs;
    for (const auto& msg : frames) handle_frame(from, msg, ack_epochs);
    for (const word_t e : ack_epochs) agg.enqueue(from, {e, kMsgAck});
    agg.flush_all();
  };

  while (awaiting_replies > 0 || awaiting_acks > 0 ||
         done_count < peers.size()) {
    if (awaiting_replies == 0 && awaiting_acks == 0) announce_done();
    for (std::size_t i = 0; i < peers.size(); ++i) {
      if (done_from[i]) continue;
      while (const auto d = comm.recv_deadline(peers[i].rank, kExchCtlTag,
                                               milliseconds(0))) {
        if (d->size() >= 2 && (*d)[0] == epoch && (*d)[1] == kMsgDone) {
          done_from[i] = true;
          ++done_count;
          break;
        } // stale epoch: a straggler from an earlier exchange, discard
      }
      if (!done_from[i] && !comm.rank_alive(peers[i].rank)) {
        done_from[i] = true; // a dead peer will never announce
        ++done_count;
      }
    }
    if (awaiting_replies == 0 && awaiting_acks == 0 &&
        done_count >= peers.size()) {
      break;
    }
    const auto now = clock::now();
    if (now > hard_deadline) {
      std::string detail;
      for (std::size_t i = 0; i < peers.size(); ++i) {
        const auto& ps = peers[i];
        detail += " peer" + std::to_string(ps.rank) +
                  "[reply=" + std::to_string(ps.have_reply) +
                  ",served=" + std::to_string(ps.served) +
                  ",acked=" + std::to_string(ps.acked) +
                  ",done=" + std::to_string(done_from[i] ? 1 : 0) + "]";
      }
      throw timeout_error("ghost-row exchange did not quiesce within the "
                          "retry horizon (rank " +
                          std::to_string(comm.rank()) + ":" + detail + ")");
    }
    // Earliest pending deadline, capped so liveness is re-checked often.
    // The aggregator's flush deadline caps the wait too, so buffered
    // frames never outlive their age budget while we block on receive.
    auto next = now + cfg.timeout;
    for (const auto& ps : peers) {
      if (!ps.have_reply) next = std::min(next, ps.req_deadline);
      if (ps.served && !ps.acked) next = std::min(next, ps.ack_deadline);
    }
    if (const auto due = agg.next_deadline()) next = std::min(next, *due);
    const auto wait = std::chrono::duration_cast<milliseconds>(
        std::max(next - clock::now(), clock::duration::zero()));
    if (auto got = agg.recv_frames(wait)) {
      handle_wire(got->first, std::move(got->second));
      continue;
    }
    agg.poll(); // flush buffers whose oldest frame aged past the deadline
    // Deadline sweep.
    const auto t = clock::now();
    for (auto& ps : peers) {
      if (!ps.have_reply && t >= ps.req_deadline) {
        if (!comm.rank_alive(ps.rank)) {
          throw rank_failed("rank " + std::to_string(ps.rank) +
                            " died while rank " +
                            std::to_string(comm.rank()) +
                            " still needed its ghost rows");
        }
        stats.backoff_seconds +=
            static_cast<double>(ps.req_timeout.count()) / 1e3;
        if (++ps.req_attempts > cfg.max_retries) {
          throw timeout_error(
              "ghost-row request to live rank " + std::to_string(ps.rank) +
              " unanswered after " + std::to_string(cfg.max_retries) +
              " retries (rank " + std::to_string(comm.rank()) + ")");
        }
        ++stats.retries;
        static obs::Counter& retry_counter =
            obs::counter("dist/exchange_retries");
        retry_counter.add();
        note_protocol("exchange/retry", comm.rank(), ps.rank, epoch,
                      ps.req_attempts);
        post_requests(ps); // only still-pending rows ride the retry
        ps.req_timeout = backed_off(ps.req_timeout, cfg);
        ps.req_deadline = t + ps.req_timeout;
      }
      if (ps.served && !ps.acked && t >= ps.ack_deadline) {
        if (!comm.rank_alive(ps.rank)) {
          ps.acked = true; // peer died; nobody left to ack
          --awaiting_acks;
          continue;
        }
        stats.backoff_seconds +=
            static_cast<double>(ps.ack_timeout.count()) / 1e3;
        if (++ps.reply_attempts > cfg.max_retries) {
          throw timeout_error(
              "reply to live rank " + std::to_string(ps.rank) +
              " never acked after " + std::to_string(cfg.max_retries) +
              " resends (rank " + std::to_string(comm.rank()) + ")");
        }
        ++stats.reply_resends;
        note_protocol("exchange/resend", comm.rank(), ps.rank, epoch,
                      ps.reply_attempts);
        if (ps.handshake_served) agg.enqueue(ps.rank, {epoch, kMsgRows});
        for (const auto& [v, frame] : ps.reply_cache) {
          agg.enqueue(ps.rank, Message(frame));
        }
        ps.ack_timeout = backed_off(ps.ack_timeout, cfg);
        ps.ack_deadline = t + ps.ack_timeout;
      }
      if (!ps.served && !ps.acked && !comm.rank_alive(ps.rank)) {
        ps.acked = true; // peer died before ever requesting
        --awaiting_acks;
      }
    }
    agg.flush_all(); // phase boundary: retry sweep finished
  }
  // Local quiescence can be reached mid-iteration (handle_wire() or the
  // sweep clears the last pending ack and the loop condition re-evaluates
  // before the top-of-loop announcement runs) — peers still wait for it.
  announce_done();
  agg.flush_all(); // drain before folding the flush-reason counters
  stats.agg.merge(agg.stats());
  agg.publish_metrics();
  return ghost;
}

} // namespace

Shard generate_shard_checkpointed(Comm& comm,
                                  const kron::BipartiteKronecker& kp,
                                  const kron::PartitionedStream& ps,
                                  const CheckpointConfig& ckpt,
                                  count_t* checkpoints_written) {
  KRONLAB_TRACE_SPAN("dist", "generate_shard");
  const auto [llo, lhi] = ps.owned_left_rows(comm.rank());
  const index_t nb = kp.right().nrows();
  Shard shard;
  shard.n = kp.num_vertices();
  shard.row_begin = llo * nb;
  shard.row_end = lhi * nb;
  grb::Coo<count_t> coo((lhi - llo) * nb, shard.n);
  coo.reserve(ps.entries_of(comm.rank()));
  const kron::EdgeStream es(kp);
  const index_t step = std::max<index_t>(1, ckpt.interval_left_rows);
  for (index_t i = llo; i < lhi; i += step) {
    const index_t end = std::min(lhi, i + step);
    es.for_each_entry_rows(i, end, [&](index_t p, index_t q) {
      coo.push(p - shard.row_begin, q, 1);
    });
    if (ckpt.enabled() && end < lhi) {
      grb::Coo<count_t> partial((end - llo) * nb, shard.n);
      partial.reserve(coo.nnz());
      for (const auto& t : coo.entries()) partial.push(t.row, t.col, t.val);
      grb::SnapshotEnvelope snap;
      snap.meta = {kCkptVersion, shard.n, llo, lhi, end};
      snap.payload = grb::Csr<count_t>::from_coo(partial);
      grb::write_snapshot_file(checkpoint_path(ckpt, comm.rank()), snap);
      if (checkpoints_written) ++*checkpoints_written;
      if (trace::enabled()) {
        trace::instant("dist", "checkpoint/write",
                       trace::intern("rank=" + std::to_string(comm.rank()) +
                                     " left_done=" + std::to_string(end)));
      }
    }
    // A fault plan can kill this rank here — "mid-generation", after the
    // checkpoint for the completed blocks has been persisted.
    comm.fault_point("gen-block");
  }
  shard.rows = grb::Csr<count_t>::from_coo(coo);
  return shard;
}

count_t distributed_global_butterflies(Comm& comm, const Shard& shard,
                                       const RetryConfig& retry,
                                       ExchangeStats* stats,
                                       const AggregatorOptions& agg_opt) {
  KRONLAB_TRACE_SPAN("dist", "distributed_butterflies");
  const word_t epoch = comm.next_epoch();
  const auto members = comm.live_ranks();
  const auto mcount = members.size();

  // Every member learns the member-ordered global row layout; validate
  // that the live shards really cover [0, n) contiguously.
  const auto row_begins = comm.allgather(shard.row_begin, members);
  const auto row_ends = comm.allgather(shard.row_end, members);
  KRONLAB_REQUIRE(row_begins.front() == 0,
                  "live shards do not start at row 0");
  for (std::size_t i = 0; i < mcount; ++i) {
    const word_t next = i + 1 < mcount
                            ? row_begins[i + 1]
                            : static_cast<word_t>(shard.n);
    KRONLAB_REQUIRE(row_ends[i] == next,
                    "live shards do not cover the row space contiguously");
  }

  // A fault plan can kill a rank here — after membership agreement, right
  // before it starts serving ghost rows — to exercise the rank_failed
  // path: survivors retry, see the death, and surface the typed error.
  comm.fault_point("exchange-serve");

  // ---- phase 1: figure out which remote rows this rank needs ----------
  // Wedge counting of owned v walks rows of every neighbor j of v.
  std::vector<std::unordered_set<index_t>> needed_sets(mcount);
  for (index_t lv = 0; lv < shard.rows.nrows(); ++lv) {
    for (const index_t j : shard.rows.row_cols(lv)) {
      if (!shard.owns(j)) {
        needed_sets[owner_pos(row_begins, j)].insert(j);
      }
    }
  }
  std::vector<std::vector<index_t>> needed(mcount);
  for (std::size_t i = 0; i < mcount; ++i) {
    needed[i].assign(needed_sets[i].begin(), needed_sets[i].end());
  }

  // ---- phase 2: fault-tolerant ghost-row exchange ---------------------
  ExchangeStats local_stats;
  const auto ghost = exchange_ghost_rows(comm, shard, members, needed,
                                         epoch, retry, agg_opt, local_stats);
  if (stats) *stats = local_stats;
  // The exchange quiesced, but a member may have died after serving us;
  // the reduction below needs every member, so surface it as a typed
  // failure instead of hanging.
  for (const index_t r : members) {
    if (!comm.rank_alive(r)) {
      throw rank_failed("rank " + std::to_string(r) +
                        " died during the ghost-row exchange");
    }
  }

  const auto row_of = [&](index_t j) -> std::span<const index_t> {
    if (shard.owns(j)) return shard.rows.row_cols(shard.local(j));
    const auto it = ghost.find(j);
    KRONLAB_DBG_ASSERT(it != ghost.end(), "missing ghost row");
    return {it->second.data(), it->second.size()};
  };

  // ---- phase 3: local wedge counting of owned vertices ----------------
  KRONLAB_TRACE_SPAN("dist", "wedge_count");
  std::vector<count_t> cnt(static_cast<std::size_t>(shard.n), 0);
  std::vector<index_t> touched;
  count_t local_sum = 0;
  for (index_t lv = 0; lv < shard.rows.nrows(); ++lv) {
    const index_t v = shard.row_begin + lv;
    touched.clear();
    for (const index_t j : shard.rows.row_cols(lv)) {
      for (const index_t k : row_of(j)) {
        if (k == v) continue;
        if (cnt[static_cast<std::size_t>(k)] == 0) touched.push_back(k);
        ++cnt[static_cast<std::size_t>(k)];
      }
    }
    for (const index_t k : touched) {
      const count_t c = cnt[static_cast<std::size_t>(k)];
      local_sum += c * (c - 1) / 2;
      cnt[static_cast<std::size_t>(k)] = 0;
    }
  }

  // Σ_v s_v = 4 · #C4.
  return comm.allreduce_sum(local_sum, members) / 4;
}

namespace {

count_t ground_truth_squares_impl(Comm& comm,
                                  const kron::BipartiteKronecker& kp,
                                  index_t lo, index_t hi,
                                  const std::vector<index_t>* members) {
  KRONLAB_TRACE_SPAN("dist", "ground_truth_squares");
  // Rank-local share of Σ_p s_C(p): the factored sum restricted to owned
  // left-factor rows — Σ_s c_s · (Σ_{i owned} g_s[i]) · sum(h_s).
  const auto sv = kron::vertex_squares(kp);
  count_t local = 0;
  for (const auto& term : sv.terms()) {
    count_t g_part = 0;
    for (index_t i = lo; i < hi; ++i) g_part += term.g[i];
    local += term.coeff * g_part * grb::reduce(term.h);
  }
  const count_t total = members ? comm.allreduce_sum(local, *members)
                                : comm.allreduce_sum(local);
  KRONLAB_DBG_ASSERT(total % (sv.divisor() * 4) == 0,
                     "factored sum not divisible");
  return total / sv.divisor() / 4;
}

} // namespace

count_t distributed_ground_truth_squares(
    Comm& comm, const kron::BipartiteKronecker& kp,
    const kron::PartitionedStream& ps) {
  const auto [lo, hi] = ps.owned_left_rows(comm.rank());
  return ground_truth_squares_impl(comm, kp, lo, hi, nullptr);
}

count_t distributed_ground_truth_squares(
    Comm& comm, const kron::BipartiteKronecker& kp,
    std::pair<index_t, index_t> owned_left_rows,
    const std::vector<index_t>& members) {
  return ground_truth_squares_impl(comm, kp, owned_left_rows.first,
                                   owned_left_rows.second, &members);
}

RecoveryReport supervised_global_butterflies(
    Comm& comm, const kron::BipartiteKronecker& kp,
    const kron::PartitionedStream& ps, const CheckpointConfig& ckpt,
    const RetryConfig& retry, const AggregatorOptions& agg_opt) {
  KRONLAB_TRACE_SPAN("dist", "supervised_butterflies");
  KRONLAB_REQUIRE(ps.parts() == comm.size(),
                  "partition width must equal the rank count");
  const index_t me = comm.rank();
  const index_t nb = kp.right().nrows();

  // ---- phase 1: checkpointed generation (kills happen in here) --------
  count_t ckpts_written = 0;
  Shard shard = generate_shard_checkpointed(comm, kp, ps, ckpt,
                                            &ckpts_written);
  auto [my_llo, my_lhi] = ps.owned_left_rows(me);

  // A dead rank never reaches this barrier; the runtime releases it for
  // the survivors once the death is recorded.
  comm.barrier();

  // ---- phase 2: supervisor view — detect deaths, reassign rows --------
  const auto members = comm.live_ranks();
  KRONLAB_REQUIRE(members.front() == 0, "supervisor (rank 0) must survive");
  count_t ckpts_restored = 0;
  count_t rows_reassigned = 0;
  if (static_cast<index_t>(members.size()) < comm.size()) {
    // Ownership heals by extension: each survivor's range grows to the
    // next survivor's begin, absorbing the dead ranks in between.
    const auto pos = static_cast<std::size_t>(
        std::lower_bound(members.begin(), members.end(), me) -
        members.begin());
    const index_t new_lhi =
        pos + 1 < members.size()
            ? ps.owned_left_rows(members[pos + 1]).first
            : kp.left().nrows();
    if (new_lhi > my_lhi) {
      KRONLAB_TRACE_SPAN("dist", "reassign_rows");
      grb::Coo<count_t> coo((new_lhi - my_llo) * nb, shard.n);
      coo.reserve(expected_entries(kp, my_llo, new_lhi));
      append_csr_rows(coo, shard.rows, 0);
      const kron::EdgeStream es(kp);
      for (index_t d = me + 1; d < comm.size() && !comm.rank_alive(d);
           ++d) {
        const auto [dlo, dhi] = ps.owned_left_rows(d);
        index_t done = dlo; // left rows recovered from the checkpoint
        if (ckpt.enabled()) {
          try {
            const auto snap =
                grb::read_snapshot_file(checkpoint_path(ckpt, d));
            const bool meta_ok =
                snap.meta.size() == kCkptMetaWords &&
                snap.meta[0] == kCkptVersion && snap.meta[1] == shard.n &&
                snap.meta[2] == dlo && snap.meta[3] == dhi &&
                snap.meta[4] > dlo && snap.meta[4] <= dhi;
            if (meta_ok &&
                snap.payload.nrows() == (snap.meta[4] - dlo) * nb &&
                snap.payload.nnz() ==
                    expected_entries(kp, dlo, snap.meta[4])) {
              append_csr_rows(coo, snap.payload, (dlo - my_llo) * nb);
              done = snap.meta[4];
              ++ckpts_restored;
              if (trace::enabled()) {
                trace::instant(
                    "dist", "checkpoint/restore",
                    trace::intern("dead_rank=" + std::to_string(d) +
                                  " left_done=" + std::to_string(done)));
              }
            }
          } catch (const io_error&) {
            // Missing or corrupt (checksum-failed) checkpoint: fall back
            // to regenerating the dead rank's whole range from factors.
          }
        }
        es.for_each_entry_rows(done, dhi, [&](index_t p, index_t q) {
          coo.push(p - my_llo * nb, q, 1);
        });
        rows_reassigned += dhi - dlo;
      }
      my_lhi = new_lhi;
      shard.row_end = new_lhi * nb;
      shard.rows = grb::Csr<count_t>::from_coo(coo);
    }
  }

  // ---- phase 3: resilient exchange + distributed count ----------------
  ExchangeStats xs;
  const count_t counted =
      distributed_global_butterflies(comm, shard, retry, &xs, agg_opt);

  // ---- phase 4: ground-truth self-verification ------------------------
  // The factored oracle (Thms 3–5) is cheap enough to re-evaluate after
  // every recovery: a corrupted or mis-recovered shard cannot produce a
  // bit-identical global count *and* a matching entry census.
  KRONLAB_TRACE_SPAN("dist", "self_verify");
  const count_t truth = distributed_ground_truth_squares(
      comm, kp, {my_llo, my_lhi}, members);
  const bool local_entries_ok =
      shard.rows.nnz() == expected_entries(kp, my_llo, my_lhi);
  const word_t bad_shards =
      comm.allreduce_sum(local_entries_ok ? 0 : 1, members);

  // ---- report: aggregate protocol counters across survivors -----------
  comm.barrier(); // quiesce before reading global fault counters
  RecoveryReport report;
  report.ranks = comm.size();
  for (index_t r = 0; r < comm.size(); ++r) {
    if (!comm.rank_alive(r)) report.dead_ranks.push_back(r);
  }
  report.faults = comm.fault_stats();
  report.exchange.retries = comm.allreduce_sum(xs.retries, members);
  report.exchange.reply_resends =
      comm.allreduce_sum(xs.reply_resends, members);
  report.exchange.dup_requests =
      comm.allreduce_sum(xs.dup_requests, members);
  report.exchange.dup_replies =
      comm.allreduce_sum(xs.dup_replies, members);
  report.exchange.backoff_seconds =
      static_cast<double>(comm.allreduce_sum(
          static_cast<word_t>(xs.backoff_seconds * 1e6), members)) /
      1e6;
  report.exchange.agg.frames_enqueued =
      comm.allreduce_sum(xs.agg.frames_enqueued, members);
  report.exchange.agg.rows_coalesced =
      comm.allreduce_sum(xs.agg.rows_coalesced, members);
  report.exchange.agg.single_flushes =
      comm.allreduce_sum(xs.agg.single_flushes, members);
  report.exchange.agg.batches_sent =
      comm.allreduce_sum(xs.agg.batches_sent, members);
  report.exchange.agg.capacity_flushes =
      comm.allreduce_sum(xs.agg.capacity_flushes, members);
  report.exchange.agg.deadline_flushes =
      comm.allreduce_sum(xs.agg.deadline_flushes, members);
  report.exchange.agg.manual_flushes =
      comm.allreduce_sum(xs.agg.manual_flushes, members);
  report.exchange.agg.bytes_saved =
      comm.allreduce_sum(xs.agg.bytes_saved, members);
  report.checkpoints_written =
      comm.allreduce_sum(ckpts_written, members);
  report.checkpoints_restored =
      comm.allreduce_sum(ckpts_restored, members);
  report.left_rows_reassigned =
      comm.allreduce_sum(rows_reassigned, members);
  report.counted = counted;
  report.ground_truth = truth;
  report.shard_stats_ok = bad_shards == 0;
  report.verified = report.shard_stats_ok && counted == truth;
  return report;
}

} // namespace kronlab::dist
