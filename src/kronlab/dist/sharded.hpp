// kronlab/dist/sharded.hpp
//
// Distributed Kronecker generation and validation over the simulated
// runtime (dist/comm.hpp) — the miniature of the paper group's
// extreme-scale workflow: every rank generates its row shard of
// C = M ⊗ B from replicated factor matrices (no communication), runs the
// distributed analytic (global 4-cycle count via ghost-row exchange), and
// the result is validated against the factored ground truth, which each
// rank also evaluates for its own rows in factor space.

#pragma once

#include "kronlab/dist/comm.hpp"
#include "kronlab/grb/csr.hpp"
#include "kronlab/kron/partition.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::dist {

/// A row shard of a global n×n adjacency: this rank owns rows
/// [row_begin, row_end); `rows` is their local CSR with global column ids.
struct Shard {
  index_t n = 0;
  index_t row_begin = 0;
  index_t row_end = 0;
  grb::Csr<count_t> rows;

  [[nodiscard]] bool owns(index_t v) const {
    return v >= row_begin && v < row_end;
  }
  [[nodiscard]] index_t local(index_t v) const { return v - row_begin; }
};

/// Generate this rank's shard of the product — communication-free, from
/// the replicated factors.
Shard generate_shard(const kron::BipartiteKronecker& kp,
                     const kron::PartitionedStream& ps, index_t rank);

/// Distributed exact global 4-cycle count over a row-sharded graph:
/// 2-phase ghost-row exchange (request ids, receive rows), then local
/// wedge counting of owned vertices, then an all-reduce.  Every rank
/// returns the global count.  The sharding must cover [0, n) disjointly
/// across ranks, in rank order.
count_t distributed_global_butterflies(Comm& comm, const Shard& shard);

/// Each rank's share of the *ground-truth* Σ_p s_C(p) over its owned
/// product rows, evaluated in factor space (no product data touched);
/// all-reduced so every rank returns the exact global 4-cycle count.
count_t distributed_ground_truth_squares(Comm& comm,
                                         const kron::BipartiteKronecker& kp,
                                         const kron::PartitionedStream& ps);

} // namespace kronlab::dist
