// kronlab/dist/sharded.hpp
//
// Distributed Kronecker generation and validation over the simulated
// runtime (dist/comm.hpp) — the miniature of the paper group's
// extreme-scale workflow: every rank generates its row shard of
// C = M ⊗ B from replicated factor matrices (no communication), runs the
// distributed analytic (global 4-cycle count via ghost-row exchange), and
// the result is validated against the factored ground truth, which each
// rank also evaluates for its own rows in factor space.
//
// Fault tolerance (the production posture the paper lineage demands — at
// a million processes, dropped messages and dead ranks are the norm):
//  * the ghost-row exchange is an idempotent request/reply/ack protocol
//    with sequence-numbered (epoch-stamped) messages, bounded retry and
//    exponential backoff — duplicates are absorbed, losses are retried,
//    exhaustion surfaces a typed timeout_error / rank_failed, and a rank
//    lingers (re-acking resends) until every live peer announces
//    quiescence, so a dropped final ack cannot strand a peer; the
//    protocol is row-granular and its frames ship through the
//    per-destination message aggregator (dist/aggregator.hpp), which
//    coalesces them into capacity/deadline-flushed batches without
//    touching the retry semantics;
//  * generation can checkpoint progress through the checksummed snapshot
//    envelope (grb/binary_io.hpp), and supervised_global_butterflies
//    reassigns a dead rank's row range to the next surviving rank,
//    restoring from the last checkpoint and regenerating the tail from
//    the (replicated) factors;
//  * after recovery every rank cross-checks its shard statistics and the
//    distributed count against the factor-space ground truth — the
//    paper's exact oracle doubling as an online corruption detector —
//    and the run emits a structured RecoveryReport.

#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "kronlab/dist/aggregator.hpp"
#include "kronlab/dist/comm.hpp"
#include "kronlab/grb/csr.hpp"
#include "kronlab/kron/partition.hpp"
#include "kronlab/kron/product.hpp"

namespace kronlab::dist {

/// A row shard of a global n×n adjacency: this rank owns rows
/// [row_begin, row_end); `rows` is their local CSR with global column ids.
struct Shard {
  index_t n = 0;
  index_t row_begin = 0;
  index_t row_end = 0;
  grb::Csr<count_t> rows;

  [[nodiscard]] bool owns(index_t v) const {
    return v >= row_begin && v < row_end;
  }
  [[nodiscard]] index_t local(index_t v) const { return v - row_begin; }
};

/// Retry/backoff policy for the fault-tolerant exchange protocol.
struct RetryConfig {
  std::chrono::milliseconds timeout{50}; ///< first-attempt deadline
  int max_retries = 8;                   ///< resends before giving up
  double backoff = 2.0;                  ///< deadline multiplier per retry
  std::chrono::milliseconds max_backoff{400}; ///< deadline cap
};

/// Per-rank protocol counters, aggregated into RecoveryReport.  The
/// exchange is row-granular: dup_requests / dup_replies count duplicate
/// *row frames* absorbed idempotently (a retried batch contributes one
/// per already-served row), while retries / reply_resends count per-peer
/// deadline expiries, exactly as before aggregation.
struct ExchangeStats {
  count_t retries = 0;       ///< request resends after a deadline expired
  count_t reply_resends = 0; ///< reply resends while awaiting an ack
  count_t dup_requests = 0;  ///< duplicate request frames served idempotently
  count_t dup_replies = 0;   ///< duplicate / stale reply frames absorbed
  double backoff_seconds = 0; ///< total time spent in expired deadlines
  AggregatorStats agg;        ///< message-aggregation layer counters
};

/// Checkpoint policy for generate_shard_checkpointed.
struct CheckpointConfig {
  std::string dir; ///< checkpoint directory; empty disables checkpointing
  index_t interval_left_rows = 4; ///< snapshot every this many left rows

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// Checkpoint file for `rank`'s shard under `cfg.dir`.
std::string checkpoint_path(const CheckpointConfig& cfg, index_t rank);

/// Structured outcome of one supervised fault-tolerant run.  Every
/// surviving rank returns an identical report.
struct RecoveryReport {
  index_t ranks = 0;                ///< ranks the run started with
  std::vector<index_t> dead_ranks;  ///< ranks killed by the fault plan
  FaultStats faults;                ///< faults the runtime injected
  ExchangeStats exchange;           ///< protocol totals across ranks
  count_t checkpoints_written = 0;
  count_t checkpoints_restored = 0;
  count_t left_rows_reassigned = 0; ///< left-factor rows taken over
  count_t counted = -1;             ///< distributed 4-cycle count
  count_t ground_truth = -1;        ///< factored ground truth (Thms 3–5)
  bool shard_stats_ok = false; ///< factor-space entry-count cross-check
  bool verified = false;       ///< counted == ground_truth && stats ok
};

/// Generate this rank's shard of the product — communication-free, from
/// the replicated factors.
Shard generate_shard(const kron::BipartiteKronecker& kp,
                     const kron::PartitionedStream& ps, index_t rank);

/// Checkpointed variant: generates in blocks of `ckpt.interval_left_rows`
/// left-factor rows, writing a checksummed snapshot after each block (when
/// checkpointing is enabled) and hitting the "gen-block" fault point so a
/// fault plan can kill the rank mid-generation.  `checkpoints_written`
/// (optional) receives the number of snapshots persisted.
Shard generate_shard_checkpointed(Comm& comm,
                                  const kron::BipartiteKronecker& kp,
                                  const kron::PartitionedStream& ps,
                                  const CheckpointConfig& ckpt,
                                  count_t* checkpoints_written = nullptr);

/// Distributed exact global 4-cycle count over a row-sharded graph.
/// The ghost-row exchange runs the idempotent request/reply/ack protocol
/// with bounded retry + exponential backoff over the *live* ranks; the
/// shards of the live ranks must cover [0, n) disjointly, contiguously,
/// in rank order.  Every rank returns the global count.  Throws
/// timeout_error when a live peer stops answering within the retry
/// budget, rank_failed when a peer dies while its rows are still needed.
/// Row request / reply / ack frames ship through the per-destination
/// Aggregator (dist/aggregator.hpp); `agg_opt` selects the flush policy
/// or, with enabled=false (KRONLAB_NO_AGGREGATE), the per-row baseline.
count_t distributed_global_butterflies(
    Comm& comm, const Shard& shard, const RetryConfig& retry = {},
    ExchangeStats* stats = nullptr,
    const AggregatorOptions& agg_opt = AggregatorOptions::from_env());

/// Each rank's share of the *ground-truth* Σ_p s_C(p) over its owned
/// product rows, evaluated in factor space (no product data touched);
/// all-reduced so every rank returns the exact global 4-cycle count.
count_t distributed_ground_truth_squares(Comm& comm,
                                         const kron::BipartiteKronecker& kp,
                                         const kron::PartitionedStream& ps);

/// Recovery variant: explicit owned left-factor row range and explicit
/// member set (the survivors), for use after row reassignment.
count_t distributed_ground_truth_squares(
    Comm& comm, const kron::BipartiteKronecker& kp,
    std::pair<index_t, index_t> owned_left_rows,
    const std::vector<index_t>& members);

/// The full fault-tolerant pipeline: checkpointed generation, death
/// detection, reassignment of dead ranks' row ranges to survivors
/// (checkpoint restore + tail regeneration), resilient exchange + count,
/// and ground-truth self-verification.  Rank 0 acts as supervisor and
/// must survive the fault plan.  Every surviving rank returns the same
/// RecoveryReport; `report.verified` is the bit a production deployment
/// would alarm on.
RecoveryReport supervised_global_butterflies(
    Comm& comm, const kron::BipartiteKronecker& kp,
    const kron::PartitionedStream& ps, const CheckpointConfig& ckpt = {},
    const RetryConfig& retry = {},
    const AggregatorOptions& agg_opt = AggregatorOptions::from_env());

} // namespace kronlab::dist
