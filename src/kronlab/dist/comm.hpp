// kronlab/dist/comm.hpp
//
// A simulated distributed-memory runtime: MPI-flavored ranks, point-to-
// point messages, barriers and collectives — implemented over threads and
// mailboxes.
//
// Why it exists: the paper's lineage is distributed generation and
// validation at extreme scale (the cited trillion-edge triangle validation
// ran on a million processes).  kronlab cannot assume MPI in its test
// environment, but the *algorithms* — shard-local generation, ghost-row
// exchange, reduction of validated counts — are communication-pattern
// code that deserves real tests.  This runtime executes them with the
// exact message discipline an MPI port would use: every transfer is an
// explicit send/recv pair, there is no shared mutable state between
// ranks, and collectives are built from the same primitives.
//
// Model: `run(P, fn)` spawns P rank threads, each receiving a Comm bound
// to its rank.  Messages are typed vectors of 64-bit words with an integer
// tag; recv blocks; collectives are synchronizing.  Exceptions in any rank
// are captured and rethrown from run().

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "kronlab/common/types.hpp"

namespace kronlab::dist {

/// Payload word: every message is a vector of these.
using word_t = std::int64_t;
using Message = std::vector<word_t>;

namespace detail {
struct Runtime;
} // namespace detail

/// Per-rank communicator handle.  Valid only inside the rank function.
class Comm {
public:
  [[nodiscard]] index_t rank() const { return rank_; }
  [[nodiscard]] index_t size() const;

  /// Asynchronous-buffered send (never blocks).
  void send(index_t to, int tag, Message msg);

  /// Blocking receive of the next message with `tag` from `from`
  /// (messages from one sender with one tag arrive in send order).
  Message recv(index_t from, int tag);

  /// Synchronize all ranks.
  void barrier();

  /// Sum a value across ranks; every rank gets the total.
  word_t allreduce_sum(word_t value);

  /// Gather one value from each rank; every rank gets the full vector.
  std::vector<word_t> allgather(word_t value);

  /// All-to-all exchange: element [r] of `outgoing` goes to rank r; the
  /// result holds what every rank sent here.
  std::vector<Message> alltoall(std::vector<Message> outgoing);

private:
  friend struct detail::Runtime;
  friend void run(index_t, const std::function<void(Comm&)>&);
  Comm(detail::Runtime* rt, index_t rank) : rt_(rt), rank_(rank) {}
  detail::Runtime* rt_;
  index_t rank_;
};

/// Execute `fn` on `ranks` simulated ranks; returns when all finish.
/// Rethrows the first rank exception.
void run(index_t ranks, const std::function<void(Comm&)>& fn);

} // namespace kronlab::dist
