// kronlab/dist/comm.hpp
//
// A simulated distributed-memory runtime: MPI-flavored ranks, point-to-
// point messages, barriers and collectives — implemented over threads and
// mailboxes.
//
// Why it exists: the paper's lineage is distributed generation and
// validation at extreme scale (the cited trillion-edge triangle validation
// ran on a million processes).  kronlab cannot assume MPI in its test
// environment, but the *algorithms* — shard-local generation, ghost-row
// exchange, reduction of validated counts — are communication-pattern
// code that deserves real tests.  This runtime executes them with the
// exact message discipline an MPI port would use: every transfer is an
// explicit send/recv pair, there is no shared mutable state between
// ranks, and collectives are built from the same primitives.
//
// Model: `run(P, fn)` spawns P rank threads, each receiving a Comm bound
// to its rank.  Messages are typed vectors of 64-bit words with an integer
// tag; recv blocks; collectives are synchronizing.  Exceptions in any rank
// are captured and rethrown from run().
//
// Fault injection: `run(P, plan, fn)` threads a seeded FaultPlan through
// the mailbox layer.  The plan can drop, delay (reorder), and duplicate
// application messages (tag >= 0), and kill a rank at a named fault point
// (`Comm::fault_point`).  Negative tags — the built-in collectives and the
// member-collectives used by recovery protocols — model a reliable
// out-of-band control channel and are exempt by default.  Protocols that
// must survive faults use the deadline receive variants plus the liveness
// queries (`rank_alive` / `live_ranks`; the runtime is a perfect failure
// detector) and surface `timeout_error` / `rank_failed` on exhaustion.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kronlab/common/types.hpp"

namespace kronlab::dist {

/// Payload word: every message is a vector of these.
using word_t = std::int64_t;
using Message = std::vector<word_t>;

/// Seeded fault-injection plan for one `run`.  Probabilities are per
/// message and mutually exclusive (one uniform draw decides the action);
/// draws are deterministic per (sender, receiver, channel-sequence) given
/// `seed`, so a plan replays identically for identical traffic.
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop = 0;      ///< P(message silently lost)
  double duplicate = 0; ///< P(message delivered twice)
  double delay = 0;     ///< P(message deferred past later traffic — reorder)

  /// A delayed message is released after this many subsequent deliveries
  /// to the same mailbox (or when a deadline receive on that mailbox
  /// expires — the "late packet finally arrives" case).
  int delay_deliveries = 2;

  /// Kill `kill_rank` the `kill_hits`-th time it reaches the fault point
  /// named `kill_point` (see Comm::fault_point).  -1 = no kill.
  index_t kill_rank = -1;
  std::string kill_point;
  std::uint64_t kill_hits = 1;

  /// Inject faults only into application messages (tag >= 0); negative
  /// (collective / control) tags stay reliable.  Turning this off makes
  /// the built-in collectives unsafe under faults — test use only.
  bool exempt_collectives = true;

  [[nodiscard]] bool injects_message_faults() const {
    return drop > 0 || duplicate > 0 || delay > 0;
  }
};

/// Counters of faults the runtime actually injected (across all ranks).
struct FaultStats {
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t delayed = 0;
};

namespace detail {
struct Runtime;
} // namespace detail

/// Per-rank communicator handle.  Valid only inside the rank function.
class Comm {
public:
  [[nodiscard]] index_t rank() const { return rank_; }
  [[nodiscard]] index_t size() const;

  /// Asynchronous-buffered send (never blocks).  Subject to the fault
  /// plan; sends to dead ranks vanish silently (network to a dead host).
  void send(index_t to, int tag, Message msg);

  /// Blocking receive of the next message with `tag` from `from`
  /// (messages from one sender with one tag arrive in send order).
  /// Throws rank_failed if the sender dies before a message arrives —
  /// a blocking receive from a dead rank can never complete.
  [[nodiscard]] Message recv(index_t from, int tag);

  /// Deadline receive: like recv, but returns nullopt once `timeout`
  /// elapses with no matching message.  Expiry releases any fault-delayed
  /// messages parked at this rank's mailbox (they are then visible to the
  /// retry that follows).  Returns nullopt *early* — without waiting out
  /// the deadline — once the sender is dead and no message is pending:
  /// nothing new can ever arrive, so retry loops fail over promptly
  /// instead of burning their full timeout budget per attempt.
  [[nodiscard]] std::optional<Message> recv_deadline(index_t from, int tag,
                                       std::chrono::milliseconds timeout);

  /// Deadline receive from *any* sender on `tag`; returns (from, message).
  [[nodiscard]] std::optional<std::pair<index_t, Message>> recv_any(
      int tag, std::chrono::milliseconds timeout);

  /// Perfect failure detector: false once `r` was killed at a fault point.
  [[nodiscard]] bool rank_alive(index_t r) const;

  /// All currently-live ranks, ascending (always contains this rank).
  [[nodiscard]] std::vector<index_t> live_ranks() const;

  /// Named kill point: if the fault plan targets (this rank, `point`) and
  /// the hit count is reached, this rank dies here — its thread unwinds,
  /// the failure detector flips, and barrier bookkeeping is released.
  void fault_point(const char* point);

  /// Faults injected so far across the whole runtime (all ranks).
  [[nodiscard]] FaultStats fault_stats() const;

  /// Synchronize all *live* ranks (a rank dying releases the barrier).
  void barrier();

  /// Sum a value across ranks; every rank gets the total.
  [[nodiscard]] word_t allreduce_sum(word_t value);

  /// Member-collective variant: only `members` (ascending, containing
  /// this rank) participate; members[0] is the root.  Used by recovery
  /// protocols after dead ranks have been excluded.
  [[nodiscard]] word_t allreduce_sum(word_t value,
                                     const std::vector<index_t>& members);

  /// Gather one value from each rank; every rank gets the full vector.
  [[nodiscard]] std::vector<word_t> allgather(word_t value);

  /// Member-collective allgather (result aligned with `members`).
  [[nodiscard]] std::vector<word_t> allgather(word_t value,
                                const std::vector<index_t>& members);

  /// All-to-all exchange: element [r] of `outgoing` goes to rank r; the
  /// result holds what every rank sent here.
  [[nodiscard]] std::vector<Message> alltoall(std::vector<Message> outgoing);

  /// Monotonic per-rank protocol epoch (see sharded.cpp's exchange):
  /// collective-order calls on every rank yield matching values.
  word_t next_epoch() { return ++epoch_; }

private:
  friend struct detail::Runtime;
  friend void run(index_t, const std::function<void(Comm&)>&);
  friend void run(index_t, const FaultPlan&,
                  const std::function<void(Comm&)>&);
  Comm(detail::Runtime* rt, index_t rank) : rt_(rt), rank_(rank) {}
  detail::Runtime* rt_;
  index_t rank_;
  word_t epoch_ = 0;
};

/// Execute `fn` on `ranks` simulated ranks; returns when all finish.
/// Rethrows the first rank exception.
void run(index_t ranks, const std::function<void(Comm&)>& fn);

/// Same, with fault injection.  A rank killed by the plan is not an
/// error; surviving ranks keep running and run() returns normally once
/// they finish.
void run(index_t ranks, const FaultPlan& plan,
         const std::function<void(Comm&)>& fn);

} // namespace kronlab::dist
