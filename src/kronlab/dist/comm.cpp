#include "kronlab/dist/comm.hpp"

#include <exception>
#include <map>
#include <thread>

#include "kronlab/common/error.hpp"

namespace kronlab::dist {

namespace detail {

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  // (from, tag) → FIFO of messages.
  std::map<std::pair<index_t, int>, std::deque<Message>> queues;
};

struct Runtime {
  explicit Runtime(index_t ranks)
      : size(ranks), mailboxes(static_cast<std::size_t>(ranks)) {}

  const index_t size;
  std::vector<Mailbox> mailboxes;

  // Sense-reversing barrier.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  index_t barrier_waiting = 0;
  std::uint64_t barrier_epoch = 0;

  void deliver(index_t to, index_t from, int tag, Message msg) {
    auto& box = mailboxes[static_cast<std::size_t>(to)];
    {
      std::lock_guard lock(box.mutex);
      box.queues[{from, tag}].push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  Message take(index_t me, index_t from, int tag) {
    auto& box = mailboxes[static_cast<std::size_t>(me)];
    std::unique_lock lock(box.mutex);
    auto& q = box.queues[{from, tag}];
    box.cv.wait(lock, [&] { return !q.empty(); });
    Message msg = std::move(q.front());
    q.pop_front();
    return msg;
  }

  void barrier() {
    std::unique_lock lock(barrier_mutex);
    const std::uint64_t my_epoch = barrier_epoch;
    if (++barrier_waiting == size) {
      barrier_waiting = 0;
      ++barrier_epoch;
      barrier_cv.notify_all();
    } else {
      barrier_cv.wait(lock, [&] { return barrier_epoch != my_epoch; });
    }
  }
};

} // namespace detail

index_t Comm::size() const { return rt_->size; }

void Comm::send(index_t to, int tag, Message msg) {
  KRONLAB_REQUIRE(to >= 0 && to < size(), "send: rank out of range");
  rt_->deliver(to, rank_, tag, std::move(msg));
}

Message Comm::recv(index_t from, int tag) {
  KRONLAB_REQUIRE(from >= 0 && from < size(), "recv: rank out of range");
  return rt_->take(rank_, from, tag);
}

void Comm::barrier() { rt_->barrier(); }

namespace {
constexpr int kReduceTag = -1;
constexpr int kGatherTag = -2;
constexpr int kAlltoallTag = -3;
} // namespace

word_t Comm::allreduce_sum(word_t value) {
  // Gather at rank 0, broadcast the sum — O(P) messages, plenty for the
  // simulated scale and identical semantics to MPI_Allreduce.
  if (rank_ == 0) {
    word_t total = value;
    for (index_t r = 1; r < size(); ++r) {
      total += recv(r, kReduceTag).at(0);
    }
    for (index_t r = 1; r < size(); ++r) {
      send(r, kReduceTag, {total});
    }
    return total;
  }
  send(0, kReduceTag, {value});
  return recv(0, kReduceTag).at(0);
}

std::vector<word_t> Comm::allgather(word_t value) {
  if (rank_ == 0) {
    std::vector<word_t> all(static_cast<std::size_t>(size()));
    all[0] = value;
    for (index_t r = 1; r < size(); ++r) {
      all[static_cast<std::size_t>(r)] = recv(r, kGatherTag).at(0);
    }
    for (index_t r = 1; r < size(); ++r) {
      send(r, kGatherTag, Message(all));
    }
    return all;
  }
  send(0, kGatherTag, {value});
  auto msg = recv(0, kGatherTag);
  return msg;
}

std::vector<Message> Comm::alltoall(std::vector<Message> outgoing) {
  KRONLAB_REQUIRE(static_cast<index_t>(outgoing.size()) == size(),
                  "alltoall: need one message per rank");
  std::vector<Message> incoming(static_cast<std::size_t>(size()));
  incoming[static_cast<std::size_t>(rank_)] =
      std::move(outgoing[static_cast<std::size_t>(rank_)]);
  for (index_t r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    send(r, kAlltoallTag, std::move(outgoing[static_cast<std::size_t>(r)]));
  }
  for (index_t r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    incoming[static_cast<std::size_t>(r)] = recv(r, kAlltoallTag);
  }
  return incoming;
}

void run(index_t ranks, const std::function<void(Comm&)>& fn) {
  KRONLAB_REQUIRE(ranks >= 1, "need at least one rank");
  detail::Runtime rt(ranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (index_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(&rt, r);
        fn(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

} // namespace kronlab::dist
