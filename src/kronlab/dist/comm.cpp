#include "kronlab/dist/comm.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <map>
#include <thread>

#include "kronlab/common/error.hpp"
#include "kronlab/common/sync.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab::dist {

namespace detail {

namespace {

/// splitmix64 finalizer — cheap stateless hash for per-message fault draws.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform_from(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Thrown to unwind a rank killed at a fault point.  Never escapes run().
struct killed {};

} // namespace

struct Mailbox {
  Mutex mutex;
  CondVar cv;
  // (from, tag) → FIFO of messages.
  std::map<std::pair<index_t, int>, std::deque<Message>> queues
      GUARDED_BY(mutex);

  // Fault-delayed messages parked here until `release_at` deliveries have
  // happened (or a deadline receive expires and flushes them).
  struct Delayed {
    index_t from;
    int tag;
    Message msg;
    std::uint64_t release_at;
  };
  std::vector<Delayed> delayed GUARDED_BY(mutex);
  std::uint64_t delivery_count GUARDED_BY(mutex) = 0;
};

struct Runtime {
  Runtime(index_t ranks, const FaultPlan* fault_plan)
      : size(ranks),
        plan(fault_plan),
        mailboxes(static_cast<std::size_t>(ranks)),
        dead(static_cast<std::size_t>(ranks)),
        channel_seq(static_cast<std::size_t>(ranks * ranks)),
        live_count(ranks) {
    for (auto& d : dead) d.store(false, std::memory_order_relaxed);
    for (auto& c : channel_seq) c.store(0, std::memory_order_relaxed);
  }

  const index_t size;
  const FaultPlan* plan; ///< null when running fault-free
  std::vector<Mailbox> mailboxes;
  std::vector<std::atomic<bool>> dead;
  std::vector<std::atomic<std::uint64_t>> channel_seq;
  std::atomic<std::uint64_t> kill_hits_seen{0};

  std::atomic<std::int64_t> stat_dropped{0};
  std::atomic<std::int64_t> stat_duplicated{0};
  std::atomic<std::int64_t> stat_delayed{0};

  // Sense-reversing barrier over *live* ranks.
  Mutex barrier_mutex;
  CondVar barrier_cv;
  index_t barrier_waiting GUARDED_BY(barrier_mutex) = 0;
  index_t live_count GUARDED_BY(barrier_mutex);
  std::uint64_t barrier_epoch GUARDED_BY(barrier_mutex) = 0;

  enum class Action { deliver, drop, duplicate, delay };

  Action decide(index_t from, index_t to, int tag, std::uint64_t* seq_out) {
    if (!plan || !plan->injects_message_faults()) return Action::deliver;
    if (tag < 0 && plan->exempt_collectives) return Action::deliver;
    const std::uint64_t seq =
        channel_seq[static_cast<std::size_t>(from * size + to)].fetch_add(
            1, std::memory_order_relaxed);
    if (seq_out) *seq_out = seq;
    const double u = uniform_from(mix64(
        plan->seed ^ mix64(static_cast<std::uint64_t>(from * size + to)) ^
        (seq * 0x9e3779b97f4a7c15ULL)));
    if (u < plan->drop) return Action::drop;
    if (u < plan->drop + plan->duplicate) return Action::duplicate;
    if (u < plan->drop + plan->duplicate + plan->delay) return Action::delay;
    return Action::deliver;
  }

  /// Timeline annotation for an injected fault: which message (channel
  /// sequence number) between which ranks, on which tag.
  static void note_fault(const char* what, index_t from, index_t to, int tag,
                         std::uint64_t seq) {
    if (!trace::enabled()) return;
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "from=%lld to=%lld tag=%d seq=%llu",
                  static_cast<long long>(from), static_cast<long long>(to),
                  tag, static_cast<unsigned long long>(seq));
    trace::instant("dist", what, trace::intern(buf));
  }

  static void release_due(Mailbox& box) REQUIRES(box.mutex) {
    auto it = box.delayed.begin();
    while (it != box.delayed.end()) {
      if (it->release_at <= box.delivery_count) {
        box.queues[{it->from, it->tag}].push_back(std::move(it->msg));
        it = box.delayed.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Deadline expiry: the "late" packets arrive.
  static bool flush_delayed(Mailbox& box) REQUIRES(box.mutex) {
    if (box.delayed.empty()) return false;
    for (auto& d : box.delayed) {
      box.queues[{d.from, d.tag}].push_back(std::move(d.msg));
    }
    box.delayed.clear();
    return true;
  }

  void deliver(index_t to, index_t from, int tag, Message msg) {
    if (dead[static_cast<std::size_t>(to)].load(std::memory_order_acquire)) {
      return; // network to a dead host
    }
    std::uint64_t seq = 0;
    const Action action = decide(from, to, tag, &seq);
    if (action == Action::drop) {
      stat_dropped.fetch_add(1, std::memory_order_relaxed);
      note_fault("fault/drop", from, to, tag, seq);
      return;
    }
    auto& box = mailboxes[static_cast<std::size_t>(to)];
    {
      MutexLock lock(box.mutex);
      ++box.delivery_count;
      release_due(box);
      switch (action) {
        case Action::duplicate:
          stat_duplicated.fetch_add(1, std::memory_order_relaxed);
          note_fault("fault/duplicate", from, to, tag, seq);
          box.queues[{from, tag}].push_back(msg);
          box.queues[{from, tag}].push_back(std::move(msg));
          break;
        case Action::delay:
          stat_delayed.fetch_add(1, std::memory_order_relaxed);
          note_fault("fault/delay", from, to, tag, seq);
          box.delayed.push_back(
              {from, tag, std::move(msg),
               box.delivery_count +
                   static_cast<std::uint64_t>(
                       plan ? plan->delay_deliveries : 0)});
          break;
        default:
          box.queues[{from, tag}].push_back(std::move(msg));
          break;
      }
    }
    box.cv.notify_all();
  }

  [[nodiscard]] bool rank_dead(index_t r) const {
    return dead[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
  }

  /// First non-empty queue on `tag` (any sender), or nullptr.  On a hit,
  /// `*from` names the sender.
  static std::deque<Message>* find_on_tag(Mailbox& box, int tag,
                                          index_t* from)
      REQUIRES(box.mutex) {
    for (auto& [key, q] : box.queues) {
      if (key.second == tag && !q.empty()) {
        *from = key.first;
        return &q;
      }
    }
    return nullptr;
  }

  Message take(index_t me, index_t from, int tag) {
    auto& box = mailboxes[static_cast<std::size_t>(me)];
    MutexLock lock(box.mutex);
    auto& q = box.queues[{from, tag}];
    // A blocking receive from a dead rank would hang forever — surface it
    // as the typed failure instead (mark_dead wakes all mailbox waiters).
    while (q.empty() && !rank_dead(from)) box.cv.wait(box.mutex);
    if (q.empty()) {
      throw rank_failed("rank " + std::to_string(from) +
                        " died while rank " + std::to_string(me) +
                        " was blocked receiving from it");
    }
    Message msg = std::move(q.front());
    q.pop_front();
    return msg;
  }

  std::optional<Message> take_deadline(index_t me, index_t from, int tag,
                                       std::chrono::milliseconds timeout) {
    auto& box = mailboxes[static_cast<std::size_t>(me)];
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(box.mutex);
    auto& q = box.queues[{from, tag}];
    // Give up early when the sender is dead: nothing new can arrive, so
    // waiting out the rest of the deadline only stalls the caller's retry
    // loop (mark_dead wakes this cv precisely so we notice promptly).
    bool timed_out = false;
    while (q.empty() && !timed_out && !rank_dead(from)) {
      timed_out = box.cv.wait_until(box.mutex, deadline);
    }
    if (q.empty()) {
      // Deadline expiry or sender death: the "late" packets arrive now.
      flush_delayed(box);
      if (q.empty()) return std::nullopt;
    }
    Message msg = std::move(q.front());
    q.pop_front();
    return msg;
  }

  std::optional<std::pair<index_t, Message>> take_any(
      index_t me, int tag, std::chrono::milliseconds timeout) {
    auto& box = mailboxes[static_cast<std::size_t>(me)];
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(box.mutex);
    index_t from = -1;
    std::deque<Message>* q = find_on_tag(box, tag, &from);
    bool timed_out = false;
    while (q == nullptr && !timed_out) {
      timed_out = box.cv.wait_until(box.mutex, deadline);
      q = find_on_tag(box, tag, &from);
    }
    if (q == nullptr) {
      flush_delayed(box);
      q = find_on_tag(box, tag, &from);
      if (q == nullptr) return std::nullopt;
    }
    Message msg = std::move(q->front());
    q->pop_front();
    return std::make_pair(from, std::move(msg));
  }

  void barrier() {
    MutexLock lock(barrier_mutex);
    const std::uint64_t my_epoch = barrier_epoch;
    if (++barrier_waiting >= live_count) {
      barrier_waiting = 0;
      ++barrier_epoch;
      barrier_cv.notify_all();
    } else {
      while (barrier_epoch == my_epoch) barrier_cv.wait(barrier_mutex);
    }
  }

  Comm make_comm(index_t r) { return Comm(this, r); }

  void mark_dead(index_t r) {
    dead[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
    {
      MutexLock lock(barrier_mutex);
      --live_count;
      // If everyone still alive is already parked at the barrier, release
      // them — the dead rank will never arrive.
      if (live_count > 0 && barrier_waiting >= live_count) {
        barrier_waiting = 0;
        ++barrier_epoch;
        barrier_cv.notify_all();
      }
    }
    barrier_cv.notify_all();
    // Wake any deadline receives so they re-check liveness promptly.
    for (auto& box : mailboxes) box.cv.notify_all();
  }
};

} // namespace detail

index_t Comm::size() const { return rt_->size; }

void Comm::send(index_t to, int tag, Message msg) {
  KRONLAB_REQUIRE(to >= 0 && to < size(), "send: rank out of range");
  rt_->deliver(to, rank_, tag, std::move(msg));
}

Message Comm::recv(index_t from, int tag) {
  KRONLAB_REQUIRE(from >= 0 && from < size(), "recv: rank out of range");
  return rt_->take(rank_, from, tag);
}

std::optional<Message> Comm::recv_deadline(index_t from, int tag,
                                           std::chrono::milliseconds timeout) {
  KRONLAB_REQUIRE(from >= 0 && from < size(), "recv: rank out of range");
  return rt_->take_deadline(rank_, from, tag, timeout);
}

std::optional<std::pair<index_t, Message>> Comm::recv_any(
    int tag, std::chrono::milliseconds timeout) {
  return rt_->take_any(rank_, tag, timeout);
}

bool Comm::rank_alive(index_t r) const {
  KRONLAB_REQUIRE(r >= 0 && r < size(), "rank out of range");
  return !rt_->dead[static_cast<std::size_t>(r)].load(
      std::memory_order_acquire);
}

std::vector<index_t> Comm::live_ranks() const {
  std::vector<index_t> live;
  for (index_t r = 0; r < size(); ++r) {
    if (rank_alive(r)) live.push_back(r);
  }
  return live;
}

void Comm::fault_point(const char* point) {
  const FaultPlan* plan = rt_->plan;
  if (!plan || plan->kill_rank != rank_ || plan->kill_point != point) return;
  const std::uint64_t hit =
      rt_->kill_hits_seen.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit == plan->kill_hits) {
    if (trace::enabled()) {
      trace::instant("dist", "fault/kill",
                     trace::intern("point=" + std::string(point) +
                                   " rank=" + std::to_string(rank_)));
    }
    throw detail::killed{};
  }
}

FaultStats Comm::fault_stats() const {
  return {rt_->stat_dropped.load(std::memory_order_relaxed),
          rt_->stat_duplicated.load(std::memory_order_relaxed),
          rt_->stat_delayed.load(std::memory_order_relaxed)};
}

void Comm::barrier() { rt_->barrier(); }

namespace {
constexpr int kReduceTag = -1;
constexpr int kGatherTag = -2;
constexpr int kAlltoallTag = -3;
constexpr int kMemberReduceTag = -4;
constexpr int kMemberGatherTag = -5;

void require_membership(const Comm& comm, const std::vector<index_t>& m) {
  KRONLAB_REQUIRE(!m.empty(), "member collective: empty member set");
  bool found = false;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i > 0) {
      KRONLAB_REQUIRE(m[i] > m[i - 1],
                      "member collective: members must be ascending");
    }
    found |= (m[i] == comm.rank());
  }
  KRONLAB_REQUIRE(found, "member collective: caller not in member set");
}
} // namespace

word_t Comm::allreduce_sum(word_t value) {
  // Gather at rank 0, broadcast the sum — O(P) messages, plenty for the
  // simulated scale and identical semantics to MPI_Allreduce.
  if (rank_ == 0) {
    word_t total = value;
    for (index_t r = 1; r < size(); ++r) {
      total += recv(r, kReduceTag).at(0);
    }
    for (index_t r = 1; r < size(); ++r) {
      send(r, kReduceTag, {total});
    }
    return total;
  }
  send(0, kReduceTag, {value});
  return recv(0, kReduceTag).at(0);
}

word_t Comm::allreduce_sum(word_t value,
                           const std::vector<index_t>& members) {
  require_membership(*this, members);
  const index_t root = members.front();
  if (rank_ == root) {
    word_t total = value;
    for (std::size_t i = 1; i < members.size(); ++i) {
      total += recv(members[i], kMemberReduceTag).at(0);
    }
    for (std::size_t i = 1; i < members.size(); ++i) {
      send(members[i], kMemberReduceTag, {total});
    }
    return total;
  }
  send(root, kMemberReduceTag, {value});
  return recv(root, kMemberReduceTag).at(0);
}

std::vector<word_t> Comm::allgather(word_t value) {
  if (rank_ == 0) {
    std::vector<word_t> all(static_cast<std::size_t>(size()));
    all[0] = value;
    for (index_t r = 1; r < size(); ++r) {
      all[static_cast<std::size_t>(r)] = recv(r, kGatherTag).at(0);
    }
    for (index_t r = 1; r < size(); ++r) {
      send(r, kGatherTag, Message(all));
    }
    return all;
  }
  send(0, kGatherTag, {value});
  auto msg = recv(0, kGatherTag);
  return msg;
}

std::vector<word_t> Comm::allgather(word_t value,
                                    const std::vector<index_t>& members) {
  require_membership(*this, members);
  const index_t root = members.front();
  if (rank_ == root) {
    std::vector<word_t> all(members.size());
    all[0] = value;
    for (std::size_t i = 1; i < members.size(); ++i) {
      all[i] = recv(members[i], kMemberGatherTag).at(0);
    }
    for (std::size_t i = 1; i < members.size(); ++i) {
      send(members[i], kMemberGatherTag, Message(all));
    }
    return all;
  }
  send(root, kMemberGatherTag, {value});
  return recv(root, kMemberGatherTag);
}

std::vector<Message> Comm::alltoall(std::vector<Message> outgoing) {
  KRONLAB_REQUIRE(static_cast<index_t>(outgoing.size()) == size(),
                  "alltoall: need one message per rank");
  std::vector<Message> incoming(static_cast<std::size_t>(size()));
  incoming[static_cast<std::size_t>(rank_)] =
      std::move(outgoing[static_cast<std::size_t>(rank_)]);
  for (index_t r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    send(r, kAlltoallTag, std::move(outgoing[static_cast<std::size_t>(r)]));
  }
  for (index_t r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    incoming[static_cast<std::size_t>(r)] = recv(r, kAlltoallTag);
  }
  return incoming;
}

namespace {

void run_impl(index_t ranks, const FaultPlan* plan,
              const std::function<void(Comm&)>& fn) {
  KRONLAB_REQUIRE(ranks >= 1, "need at least one rank");
  if (plan) {
    KRONLAB_REQUIRE(plan->drop + plan->duplicate + plan->delay <= 1.0,
                    "fault probabilities must sum to <= 1");
    KRONLAB_REQUIRE(plan->kill_rank < ranks, "kill_rank out of range");
  }
  detail::Runtime rt(ranks, plan);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (index_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      trace::set_thread_name("rank " + std::to_string(r));
      try {
        // The rank's whole lifetime is one span; a killed rank's span ends
        // at the kill, so truncated tracks are visible on the timeline.
        trace::Span span("dist", "rank");
        Comm comm = rt.make_comm(r);
        fn(comm);
      } catch (const detail::killed&) {
        rt.mark_dead(r); // planned death, not an error
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        rt.mark_dead(r); // don't leave survivors stuck at barriers
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

} // namespace

void run(index_t ranks, const std::function<void(Comm&)>& fn) {
  run_impl(ranks, nullptr, fn);
}

void run(index_t ranks, const FaultPlan& plan,
         const std::function<void(Comm&)>& fn) {
  run_impl(ranks, &plan, fn);
}

} // namespace kronlab::dist
