#include "kronlab/serve/client.hpp"

#include <string>

namespace kronlab::serve {

Client::Client(std::unique_ptr<Transport> transport, RetryPolicy retry)
    : transport_(std::move(transport)), retry_(retry) {
  KRONLAB_REQUIRE(transport_ != nullptr, "client needs a transport");
  KRONLAB_REQUIRE(retry_.attempts > 0, "retry policy needs >= 1 attempt");
}

Response Client::call(std::vector<Probe> probes) {
  Request req;
  req.id = next_id_++;
  req.probes = std::move(probes);
  const auto payload = encode_request(req);
  for (int attempt = 0; attempt < retry_.attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    write_frame(*transport_, payload);
    // Drain frames until the one answering *this* request: a response
    // with an older id is a late answer to an attempt we timed out on.
    while (true) {
      std::optional<std::vector<word_t>> frame;
      try {
        frame = read_frame(*transport_, retry_.timeout);
      } catch (const timeout_error&) {
        break; // next attempt resends
      }
      if (!frame) {
        throw io_error("kronlab serve: server closed the connection");
      }
      const Response resp = decode_response(*frame);
      if (resp.id == req.id) return resp;
      if (resp.id > req.id) {
        throw protocol_error("kronlab serve: response id " +
                             std::to_string(resp.id) +
                             " from the future (sent " +
                             std::to_string(req.id) + ")");
      }
      // resp.id < req.id: stale — discard and keep waiting.
    }
  }
  throw timeout_error("kronlab serve: no response to frame " +
                      std::to_string(req.id) + " after " +
                      std::to_string(retry_.attempts) + " attempts of " +
                      std::to_string(retry_.timeout.count()) + " ms");
}

ProbeResult Client::call_one(Probe probe, Status tolerated) {
  Response resp = call({std::move(probe)});
  if (resp.status != Status::ok) {
    throw invalid_argument(std::string("kronlab serve: request failed: ") +
                           status_name(resp.status));
  }
  if (resp.results.size() != 1) {
    throw protocol_error("kronlab serve: expected 1 result, got " +
                         std::to_string(resp.results.size()));
  }
  ProbeResult r = std::move(resp.results[0]);
  if (r.status != Status::ok && r.status != tolerated) {
    throw invalid_argument(std::string("kronlab serve: probe failed: ") +
                           status_name(r.status));
  }
  return r;
}

kron::VertexRecord Client::vertex(index_t p) {
  return decode_vertex_record(call_one(Probe::vertex(p)).words);
}

std::optional<kron::EdgeRecord> Client::try_edge(index_t p, index_t q) {
  const ProbeResult r =
      call_one(Probe::edge(p, q), Status::not_an_edge);
  if (r.status == Status::not_an_edge) return std::nullopt;
  return decode_edge_record(r.words);
}

std::vector<std::pair<count_t, index_t>> Client::degree_histogram(
    count_t lo, count_t hi) {
  return decode_hist(call_one(Probe::degree_hist(lo, hi)).words);
}

kron::VertexRecord Client::sample_vertex(std::uint64_t seed) {
  return decode_vertex_record(call_one(Probe::sample_vertex(seed)).words);
}

kron::EdgeRecord Client::sample_edge(std::uint64_t seed) {
  return decode_edge_record(call_one(Probe::sample_edge(seed)).words);
}

StatsRecord Client::stats() {
  return decode_stats_record(call_one(Probe::stats()).words);
}

std::string Client::server_stats(StatsFormat format) {
  return decode_stats_text(call_one(Probe::server_stats(format)).words);
}

} // namespace kronlab::serve
