// kronlab/serve/client.hpp
//
// Client side of the query protocol: batches probes into request frames,
// awaits the matching response with a deadline, and retries idempotently
// on timeout.
//
// Retry is safe because every probe is a pure read (samples are seeded by
// the client, so a re-executed sample returns the same record) and frame
// ids are monotonic per connection: a response whose id predates the
// in-flight request — a delayed answer to an attempt the client already
// gave up on — is discarded, not misdelivered.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "kronlab/serve/protocol.hpp"
#include "kronlab/serve/transport.hpp"

namespace kronlab::serve {

struct RetryPolicy {
  int attempts = 3; ///< total tries (first send included)
  std::chrono::milliseconds timeout{1000}; ///< per-attempt response wait
};

class Client {
public:
  explicit Client(std::unique_ptr<Transport> transport,
                  RetryPolicy retry = {});

  /// Issue one request frame and return its response.  Retries on
  /// timeout per the policy; throws timeout_error when every attempt
  /// times out, io_error / protocol_error when the connection breaks.
  /// The request's id is assigned here (monotonic per client).
  Response call(std::vector<Probe> probes);

  // Typed conveniences over call().  Each throws invalid_argument when
  // the server answers a non-ok status other than the one the signature
  // models (try_edge's not_an_edge → nullopt).
  [[nodiscard]] kron::VertexRecord vertex(index_t p);
  [[nodiscard]] std::optional<kron::EdgeRecord> try_edge(index_t p,
                                                         index_t q);
  [[nodiscard]] std::vector<std::pair<count_t, index_t>> degree_histogram(
      count_t lo, count_t hi);
  [[nodiscard]] kron::VertexRecord sample_vertex(std::uint64_t seed);
  [[nodiscard]] kron::EdgeRecord sample_edge(std::uint64_t seed);
  [[nodiscard]] StatsRecord stats();
  /// Live telemetry snapshot of the server (Op::server_stats): the
  /// kronlab-stats-v1 JSON or Prometheus text, verbatim.
  [[nodiscard]] std::string server_stats(
      StatsFormat format = StatsFormat::json);

  /// Timeouts the retry loop absorbed (for fault-injection assertions).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }

private:
  /// The single result of a one-probe call, with frame/result status
  /// folded into one check.
  ProbeResult call_one(Probe probe, Status tolerated = Status::ok);

  std::unique_ptr<Transport> transport_;
  RetryPolicy retry_;
  std::uint64_t next_id_ = 1;
  std::uint64_t retries_ = 0;
};

} // namespace kronlab::serve
