// kronlab/serve/server.hpp
//
// The ground-truth oracle query server behind kronlab_served.
//
// One Server owns a GroundTruthOracle over a BipartiteKronecker spec and
// answers protocol.hpp probes arriving on any number of connections.  The
// moving parts:
//
//   * an accept thread (when started with a Listener) admitting
//     connections up to a slot limit — a connection beyond it gets one
//     `overloaded` frame and a close, never a silent drop;
//   * one reader thread per connection, which does nothing but frame
//     decoding and admission: a decoded request frame is pushed onto a
//     bounded work queue, and when the queue is full the reader answers
//     `overloaded` immediately (clients see backpressure as data, not as
//     an ever-growing queue — the admission discipline of the ROADMAP's
//     "millions of users" story);
//   * a fixed pool of executor threads popping frames off the queue,
//     running every probe in the batch (large batches fan out through the
//     parallel runtime's dynamic dispatcher), and writing the response
//     under the connection's write mutex;
//   * an LRU cache (lru.hpp) of hot vertex records in front of the
//     oracle, keyed by product vertex id;
//   * per-request obs/trace spans and parallel/metrics kernel scopes, so
//     a traced run shows one "request" span per frame and the bench
//     harness folds serve-side dispatch stats into its JSON.
//
// Shutdown (stop(), also the SIGTERM path of kronlab_served) is a
// graceful drain: stop accepting, half-close every connection's read
// side, join the readers, let the executors finish every admitted frame
// (responses still flow — only reads are shut), then close the sockets.
// After stop() returns, in_flight() == 0 by construction, which
// test_serve_concurrency asserts under TSan.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "kronlab/common/sync.hpp"
#include "kronlab/kron/oracle.hpp"
#include "kronlab/obs/stats.hpp"
#include "kronlab/serve/lru.hpp"
#include "kronlab/serve/protocol.hpp"
#include "kronlab/serve/transport.hpp"

namespace kronlab::serve {

struct ServerOptions {
  std::size_t executors = 2;        ///< request-executor threads
  std::size_t queue_depth = 64;     ///< admitted-but-unserved frame cap
  std::size_t max_connections = 64; ///< concurrent connection slots
  std::size_t cache_capacity = 4096; ///< vertex-record LRU entries; 0 = off
  /// Batches with at least this many probes fan out through the parallel
  /// runtime (parallel_for_dynamic); smaller ones run on the executor.
  std::size_t parallel_batch_threshold = 256;
};

/// Monotonic counters, snapshotted by stats().  `probes_by_op` is indexed
/// by Op's integer value (slot 0 unused).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0; ///< over the slot limit
  std::uint64_t frames = 0;               ///< well-framed requests read
  std::uint64_t responses = 0;            ///< responses written
  std::uint64_t probes = 0;               ///< probes executed
  std::uint64_t overloaded = 0;           ///< frames refused at admission
  std::uint64_t malformed = 0;            ///< corrupt/ill-formed frames
  std::uint64_t shed_shutdown = 0;        ///< frames refused while draining
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::array<std::uint64_t, 8> probes_by_op{};
};

class Server {
public:
  explicit Server(const kron::BipartiteKronecker& kp,
                  ServerOptions opt = {});

  /// Graceful stop() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start accepting on `listener` (takes ownership; spawns the accept
  /// thread).  May be called at most once, before stop().
  void start(std::unique_ptr<Listener> listener);

  /// Serve a pre-connected transport (tests / in-process benches hand
  /// over one end of local_pair()).  Subject to the connection slot
  /// limit, like an accepted socket.
  void adopt(std::unique_ptr<Transport> conn);

  /// Graceful drain: stop accepting, finish every admitted frame, close
  /// every connection, join every thread.  Idempotent.
  void stop();

  /// Admitted frames not yet fully answered (queued + executing).  Zero
  /// after stop() returns — the drain invariant the tests assert.
  [[nodiscard]] std::uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;

  /// Live telemetry snapshot (what Op::server_stats answers): the
  /// ServerStats counters plus queue depth, in-flight count, cache hit
  /// rate, uptime, and the whole obs registry — per-verb latency
  /// histograms included — as kronlab-stats-v1 JSON or Prometheus text.
  [[nodiscard]] std::string stats_text(StatsFormat format);

  [[nodiscard]] const kron::GroundTruthOracle& oracle() const {
    return oracle_;
  }

private:
  struct Connection;
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    std::vector<word_t> payload;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void executor_loop(std::size_t id);
  void process(WorkItem& item);
  [[nodiscard]] ProbeResult exec_probe(const Probe& probe);
  [[nodiscard]] kron::VertexRecord cached_vertex(index_t p);
  void send(Connection& conn, const std::vector<word_t>& payload);
  /// Join reader threads of connections whose readers have exited.
  void reap_connections() REQUIRES(conn_mu_);

  [[nodiscard]] bool queue_push(WorkItem item);
  [[nodiscard]] std::optional<WorkItem> queue_pop();
  void queue_close();

  const kron::GroundTruthOracle oracle_;
  const ServerOptions opt_;
  StatsRecord stats_record_;
  /// Full degree histogram, precomputed (ascending degree) — sliced by
  /// Op::degree_hist without touching the oracle.
  std::vector<std::pair<count_t, index_t>> degree_hist_;

  /// Hash-sharded vertex-record cache: executors probing different
  /// vertices contend only on same-shard collisions.  Owns the hit/miss
  /// counters stats() reports.
  ShardedLru<index_t, kron::VertexRecord> cache_;

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<WorkItem> queue_ GUARDED_BY(queue_mu_);
  bool queue_closed_ GUARDED_BY(queue_mu_) = false;

  Mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ GUARDED_BY(conn_mu_);

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::vector<std::thread> executors_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> in_flight_{0};

  // Stats counters (relaxed increments; stats() snapshots).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> shed_shutdown_{0};
  std::array<std::atomic<std::uint64_t>, 8> probes_by_op_{};

  // Registry metrics (pointers resolved once in the ctor; the registry
  // owns them for the process lifetime).  request_hist_ is the whole
  // decode+execute+respond frame; op_hist_[op] is one probe's execution,
  // indexed like probes_by_op_.
  obs::Histogram* request_hist_;
  std::array<obs::Histogram*, 8> op_hist_{};
  obs::Gauge* queue_depth_gauge_;
  std::uint64_t start_ns_; ///< construction time, for uptime_seconds
};

} // namespace kronlab::serve
