#include "kronlab/serve/protocol.hpp"

#include <cstring>

#include "kronlab/grb/binary_io.hpp"

namespace kronlab::serve {

const char* status_name(Status s) {
  switch (s) {
    case Status::ok: return "ok";
    case Status::not_an_edge: return "not_an_edge";
    case Status::bad_probe: return "bad_probe";
    case Status::overloaded: return "overloaded";
    case Status::malformed: return "malformed";
    case Status::shutting_down: return "shutting_down";
  }
  return "unknown";
}

const char* op_name(Op op) {
  switch (op) {
    case Op::vertex: return "vertex";
    case Op::edge: return "edge";
    case Op::degree_hist: return "degree_hist";
    case Op::sample_vertex: return "sample_vertex";
    case Op::sample_edge: return "sample_edge";
    case Op::stats: return "stats";
    case Op::server_stats: return "server_stats";
  }
  return "unknown";
}

word_t double_bits(double v) {
  word_t w = 0;
  static_assert(sizeof w == sizeof v);
  std::memcpy(&w, &v, sizeof w);
  return w;
}

double bits_double(word_t w) {
  double v = 0;
  std::memcpy(&v, &w, sizeof v);
  return v;
}

namespace {

/// Bounds-checked word cursor: every decoder reads through one of these so
/// a truncated body is a typed protocol_error, never an out-of-range read.
class Cursor {
public:
  explicit Cursor(const std::vector<word_t>& words) : words_(&words) {}

  [[nodiscard]] std::size_t remaining() const {
    return words_->size() - pos_;
  }

  word_t next(const char* what) {
    if (pos_ >= words_->size()) {
      throw protocol_error(std::string("kronlab serve: payload truncated "
                                       "while reading ") +
                           what);
    }
    return (*words_)[pos_++];
  }

private:
  const std::vector<word_t>* words_;
  std::size_t pos_ = 0;
};

/// Probe argument counts are tiny; cap defensively so a corrupt count
/// cannot drive a giant loop (the payload length cap already bounds it,
/// but a typed error beats a confusing truncation message).
constexpr word_t kMaxProbeArgs = 16;

/// Result word counts: bounded by the frame, but cap for the same reason.
constexpr word_t kMaxResultWords = 1 << 16;

} // namespace

std::vector<word_t> encode_request(const Request& req) {
  std::vector<word_t> out;
  out.reserve(2 + req.probes.size() * 3);
  out.push_back(static_cast<word_t>(req.id));
  out.push_back(static_cast<word_t>(req.probes.size()));
  for (const Probe& p : req.probes) {
    out.push_back(static_cast<word_t>(p.op));
    out.push_back(static_cast<word_t>(p.args.size()));
    out.insert(out.end(), p.args.begin(), p.args.end());
  }
  return out;
}

Request decode_request(const std::vector<word_t>& words) {
  Cursor c(words);
  Request req;
  req.id = static_cast<std::uint64_t>(c.next("frame id"));
  const word_t n = c.next("probe count");
  if (n <= 0 || static_cast<std::size_t>(n) > max_batch_probes) {
    throw protocol_error("kronlab serve: probe count " + std::to_string(n) +
                         " outside (0, " + std::to_string(max_batch_probes) +
                         "]");
  }
  req.probes.reserve(static_cast<std::size_t>(n));
  for (word_t i = 0; i < n; ++i) {
    Probe p;
    p.op = static_cast<Op>(c.next("opcode"));
    const word_t nargs = c.next("arg count");
    if (nargs < 0 || nargs > kMaxProbeArgs) {
      throw protocol_error("kronlab serve: probe arg count " +
                           std::to_string(nargs) + " outside [0, " +
                           std::to_string(kMaxProbeArgs) + "]");
    }
    p.args.reserve(static_cast<std::size_t>(nargs));
    for (word_t a = 0; a < nargs; ++a) p.args.push_back(c.next("probe arg"));
    req.probes.push_back(std::move(p));
  }
  if (c.remaining() != 0) {
    throw protocol_error("kronlab serve: request carries " +
                         std::to_string(c.remaining()) +
                         " words past the last probe");
  }
  return req;
}

std::vector<word_t> encode_response(const Response& resp) {
  std::vector<word_t> out;
  out.reserve(3 + resp.results.size() * 3);
  out.push_back(static_cast<word_t>(resp.id));
  out.push_back(static_cast<word_t>(resp.status));
  out.push_back(static_cast<word_t>(resp.results.size()));
  for (const ProbeResult& r : resp.results) {
    out.push_back(static_cast<word_t>(r.op));
    out.push_back(static_cast<word_t>(r.status));
    out.push_back(static_cast<word_t>(r.words.size()));
    out.insert(out.end(), r.words.begin(), r.words.end());
  }
  return out;
}

Response decode_response(const std::vector<word_t>& words) {
  Cursor c(words);
  Response resp;
  resp.id = static_cast<std::uint64_t>(c.next("frame id"));
  resp.status = static_cast<Status>(c.next("frame status"));
  const word_t n = c.next("result count");
  if (n < 0 || static_cast<std::size_t>(n) > max_batch_probes) {
    throw protocol_error("kronlab serve: result count " + std::to_string(n) +
                         " outside [0, " +
                         std::to_string(max_batch_probes) + "]");
  }
  resp.results.reserve(static_cast<std::size_t>(n));
  for (word_t i = 0; i < n; ++i) {
    ProbeResult r;
    r.op = static_cast<Op>(c.next("result opcode"));
    r.status = static_cast<Status>(c.next("result status"));
    const word_t nwords = c.next("result word count");
    if (nwords < 0 || nwords > kMaxResultWords) {
      throw protocol_error("kronlab serve: result word count " +
                           std::to_string(nwords) + " outside [0, " +
                           std::to_string(kMaxResultWords) + "]");
    }
    r.words.reserve(static_cast<std::size_t>(nwords));
    for (word_t w = 0; w < nwords; ++w) {
      r.words.push_back(c.next("result word"));
    }
    resp.results.push_back(std::move(r));
  }
  if (c.remaining() != 0) {
    throw protocol_error("kronlab serve: response carries " +
                         std::to_string(c.remaining()) +
                         " words past the last result");
  }
  return resp;
}

std::uint64_t peek_request_id(const std::vector<word_t>& words) {
  return words.empty() ? 0 : static_cast<std::uint64_t>(words[0]);
}

std::vector<word_t> encode_record(const kron::VertexRecord& r) {
  return {r.p, r.degree, r.two_hop, r.squares, double_bits(r.closure)};
}

std::vector<word_t> encode_record(const kron::EdgeRecord& r) {
  return {r.p,       r.q,      r.degree_p,
          r.degree_q, r.squares, double_bits(r.gamma)};
}

std::vector<word_t> encode_record(const StatsRecord& r) {
  return {r.num_vertices, r.num_edges, r.global_squares};
}

std::vector<word_t> encode_hist(
    const std::vector<std::pair<count_t, index_t>>& pairs) {
  std::vector<word_t> out;
  out.reserve(1 + pairs.size() * 2);
  out.push_back(static_cast<word_t>(pairs.size()));
  for (const auto& [degree, vertices] : pairs) {
    out.push_back(degree);
    out.push_back(vertices);
  }
  return out;
}

kron::VertexRecord decode_vertex_record(const std::vector<word_t>& words) {
  // Trailing words are ignored by design: within one protocol version a
  // newer server may append fields (see the versioning rule).
  if (words.size() < 5) {
    throw protocol_error("kronlab serve: vertex record needs 5 words, got " +
                         std::to_string(words.size()));
  }
  kron::VertexRecord r;
  r.p = words[0];
  r.degree = words[1];
  r.two_hop = words[2];
  r.squares = words[3];
  r.closure = bits_double(words[4]);
  return r;
}

kron::EdgeRecord decode_edge_record(const std::vector<word_t>& words) {
  if (words.size() < 6) {
    throw protocol_error("kronlab serve: edge record needs 6 words, got " +
                         std::to_string(words.size()));
  }
  kron::EdgeRecord r;
  r.p = words[0];
  r.q = words[1];
  r.degree_p = words[2];
  r.degree_q = words[3];
  r.squares = words[4];
  r.gamma = bits_double(words[5]);
  return r;
}

StatsRecord decode_stats_record(const std::vector<word_t>& words) {
  if (words.size() < 3) {
    throw protocol_error("kronlab serve: stats record needs 3 words, got " +
                         std::to_string(words.size()));
  }
  StatsRecord r;
  r.num_vertices = words[0];
  r.num_edges = words[1];
  r.global_squares = words[2];
  return r;
}

std::vector<std::pair<count_t, index_t>> decode_hist(
    const std::vector<word_t>& words) {
  Cursor c(words);
  const word_t n = c.next("histogram pair count");
  if (n < 0 || static_cast<std::size_t>(n) > max_frame_bytes / 16) {
    throw protocol_error("kronlab serve: implausible histogram pair count " +
                         std::to_string(n));
  }
  std::vector<std::pair<count_t, index_t>> pairs;
  pairs.reserve(static_cast<std::size_t>(n));
  for (word_t i = 0; i < n; ++i) {
    const count_t degree = c.next("histogram degree");
    const index_t vertices = c.next("histogram count");
    pairs.emplace_back(degree, vertices);
  }
  return pairs;
}

std::vector<word_t> encode_stats_text(StatsFormat format,
                                      std::string_view text) {
  // 2 header words + the packed text must still seal into one frame.
  if (text.size() > max_frame_bytes - 4 * sizeof(word_t)) {
    throw protocol_error("kronlab serve: stats snapshot of " +
                         std::to_string(text.size()) +
                         " bytes exceeds the frame cap");
  }
  const std::size_t nwords = (text.size() + sizeof(word_t) - 1)
                             / sizeof(word_t);
  std::vector<word_t> out(2 + nwords, 0);
  out[0] = static_cast<word_t>(format);
  out[1] = static_cast<word_t>(text.size());
  if (!text.empty()) std::memcpy(out.data() + 2, text.data(), text.size());
  return out;
}

std::string decode_stats_text(const std::vector<word_t>& words) {
  if (words.size() < 2) {
    throw protocol_error("kronlab serve: server_stats result needs 2 header "
                         "words, got " + std::to_string(words.size()));
  }
  const word_t len = words[1];
  if (len < 0 || static_cast<std::size_t>(len) > max_frame_bytes) {
    throw protocol_error("kronlab serve: implausible stats text length " +
                         std::to_string(len));
  }
  const std::size_t nwords = (static_cast<std::size_t>(len) + sizeof(word_t)
                              - 1) / sizeof(word_t);
  // Trailing words beyond the text are ignored (versioning rule), but the
  // text itself must be fully present.
  if (words.size() < 2 + nwords) {
    throw protocol_error("kronlab serve: stats text of " +
                         std::to_string(len) + " bytes truncated at " +
                         std::to_string((words.size() - 2) * sizeof(word_t)) +
                         " bytes");
  }
  std::string text(static_cast<std::size_t>(len), '\0');
  if (len > 0) std::memcpy(text.data(), words.data() + 2, text.size());
  return text;
}

std::vector<std::uint8_t> seal_frame(const std::vector<word_t>& payload) {
  const std::size_t body = payload.size() * sizeof(word_t);
  if (body > max_frame_bytes) {
    throw protocol_error("kronlab serve: frame payload of " +
                         std::to_string(body) + " bytes exceeds the " +
                         std::to_string(max_frame_bytes) + "-byte cap");
  }
  std::vector<std::uint8_t> out(sizeof frame_magic + 8 + body + 8);
  std::uint8_t* w = out.data();
  std::memcpy(w, frame_magic, sizeof frame_magic);
  w += sizeof frame_magic;
  const auto len = static_cast<std::uint64_t>(body);
  std::memcpy(w, &len, 8);
  w += 8;
  if (body > 0) std::memcpy(w, payload.data(), body);
  w += body;
  const std::uint64_t sum = grb::fnv1a64(payload.data(), body);
  std::memcpy(w, &sum, 8);
  return out;
}

std::vector<word_t> unseal_frame(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof frame_magic + 16) {
    throw protocol_error("kronlab serve: frame shorter than its envelope");
  }
  if (std::memcmp(bytes.data(), frame_magic, sizeof frame_magic) != 0) {
    throw protocol_error("kronlab serve: bad frame magic");
  }
  std::uint64_t len = 0;
  std::memcpy(&len, bytes.data() + sizeof frame_magic, 8);
  if (len > max_frame_bytes || len % sizeof(word_t) != 0) {
    throw protocol_error("kronlab serve: implausible frame length " +
                         std::to_string(len));
  }
  if (bytes.size() != sizeof frame_magic + 8 + len + 8) {
    throw protocol_error("kronlab serve: frame truncated (" +
                         std::to_string(bytes.size()) + " bytes for a " +
                         std::to_string(len) + "-byte payload)");
  }
  std::vector<word_t> payload(len / sizeof(word_t));
  if (len > 0) {
    std::memcpy(payload.data(), bytes.data() + sizeof frame_magic + 8, len);
  }
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + sizeof frame_magic + 8 + len, 8);
  if (stored != grb::fnv1a64(payload.data(), len)) {
    throw checksum_error("kronlab serve: frame checksum mismatch");
  }
  return payload;
}

} // namespace kronlab::serve
