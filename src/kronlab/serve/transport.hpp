// kronlab/serve/transport.hpp
//
// Byte transports for the query daemon: TCP and Unix-domain stream
// sockets behind one small blocking interface, a listener that can be
// woken for graceful shutdown, an in-process socketpair for tests and
// benches, and a deterministic fault shim (the dist/comm FaultPlan idiom
// applied at the socket layer) that drops or delays whole writes.
//
// The interface is deliberately minimal — read exactly n bytes with a
// deadline, write all n bytes, wake a blocked reader — because the
// protocol layer above it (read_frame / write_frame) does all framing.
// One frame is always written with a single write_all call, which is what
// makes the fault shim's whole-write drop model a lost request rather
// than a torn stream.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kronlab/common/sync.hpp"
#include "kronlab/serve/protocol.hpp"

namespace kronlab::serve {

/// "Block forever" sentinel for read deadlines.
inline constexpr std::chrono::milliseconds no_deadline{-1};

/// A connected byte stream.  Implementations are safe for one concurrent
/// reader plus one concurrent writer (the server's reader thread and
/// executor writes hold a per-connection write mutex above this layer).
class Transport {
public:
  virtual ~Transport() = default;

  /// Read exactly `n` bytes into `buf`.  Returns false on clean EOF
  /// before the first byte (peer closed between messages); throws
  /// io_error on EOF mid-read or a socket error, timeout_error when
  /// `deadline` elapses first (no_deadline blocks forever).
  virtual bool read_exact(void* buf, std::size_t n,
                          std::chrono::milliseconds deadline) = 0;

  /// Write all `n` bytes; throws io_error on failure.
  virtual void write_all(const void* buf, std::size_t n) = 0;

  /// Half-close the read side: a blocked read_exact returns as if the
  /// peer closed, while in-flight responses can still be written.  This
  /// is the graceful-drain hook (see Server::stop).
  virtual void shutdown_read() = 0;

  /// Half-close the write side: the peer reads EOF after everything
  /// already written, while this end keeps reading.  Clients use it to
  /// say "no more requests" and then drain the remaining responses.
  virtual void shutdown_write() = 0;

  /// Full close: wake every blocked operation; subsequent calls fail.
  virtual void shutdown() = 0;
};

/// A bound, listening socket.  accept() blocks until a connection arrives
/// or close() is called from another thread (then it returns nullptr, as
/// it does for a closed listener fd).
class Listener {
public:
  virtual ~Listener() = default;
  [[nodiscard]] virtual std::unique_ptr<Transport> accept() = 0;
  virtual void close() = 0;
  /// Bound TCP port (useful with port 0 = ephemeral); -1 for Unix.
  [[nodiscard]] virtual int port() const = 0;
};

/// Listen on 127.0.0.1:`port` (0 picks an ephemeral port — read it back
/// with Listener::port()).  Throws io_error on bind failure.
[[nodiscard]] std::unique_ptr<Listener> listen_tcp(int port);

/// Listen on a Unix-domain socket at `path` (unlinked first if present).
[[nodiscard]] std::unique_ptr<Listener> listen_unix(const std::string& path);

/// Connect to a TCP endpoint ("127.0.0.1", 8080) — throws io_error.
[[nodiscard]] std::unique_ptr<Transport> connect_tcp(const std::string& host,
                                                     int port);

/// Connect to a Unix-domain socket — throws io_error.
[[nodiscard]] std::unique_ptr<Transport> connect_unix(
    const std::string& path);

/// A connected in-process pair (socketpair): .first talks to .second.
/// Tests and the bench hand one end to Server::adopt and drive the other.
[[nodiscard]] std::pair<std::unique_ptr<Transport>,
                        std::unique_ptr<Transport>>
local_pair();

// ---------------------------------------------------------------------------
// Fault shim — dist/comm's seeded FaultPlan idiom at the socket layer.

/// Per-write fault probabilities.  Draws are deterministic in (seed,
/// write sequence number), so a plan replays identically for identical
/// traffic — the property every test in test_serve_faults leans on.
/// Probabilities are mutually exclusive (one uniform draw per write).
struct TransportFaultPlan {
  std::uint64_t seed = 0;
  double drop = 0;  ///< P(write_all call silently discarded)
  double delay = 0; ///< P(write delivered late by `delay_for`)
  std::chrono::milliseconds delay_for{20};

  [[nodiscard]] bool injects_faults() const { return drop > 0 || delay > 0; }
};

/// Counters of faults a FaultyTransport actually injected.
struct TransportFaultStats {
  std::int64_t dropped = 0;
  std::int64_t delayed = 0;
};

/// Wraps a transport and applies a TransportFaultPlan to writes.  Because
/// the protocol writes one frame per write_all call, a drop models a lost
/// request/response frame and a delay models network latency; reads pass
/// through untouched.
class FaultyTransport : public Transport {
public:
  FaultyTransport(std::unique_ptr<Transport> inner, TransportFaultPlan plan);

  bool read_exact(void* buf, std::size_t n,
                  std::chrono::milliseconds deadline) override;
  void write_all(const void* buf, std::size_t n) override;
  void shutdown_read() override;
  void shutdown_write() override;
  void shutdown() override;

  [[nodiscard]] TransportFaultStats fault_stats() const;

private:
  std::unique_ptr<Transport> inner_;
  TransportFaultPlan plan_;
  mutable Mutex mu_;
  std::uint64_t writes_ GUARDED_BY(mu_) = 0;
  TransportFaultStats stats_ GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Framing over a transport.

/// Seal `payload` and write it as one frame (one write_all call).
void write_frame(Transport& t, const std::vector<word_t>& payload);

/// Read one complete frame.  nullopt on clean EOF at a frame boundary;
/// protocol_error on bad magic / implausible length (stream unsynchronized
/// — caller must close), checksum_error on a corrupt payload (framing
/// intact — caller may answer and continue), io_error on mid-frame EOF,
/// timeout_error when `deadline` expires.
[[nodiscard]] std::optional<std::vector<word_t>> read_frame(
    Transport& t, std::chrono::milliseconds deadline = no_deadline);

} // namespace kronlab::serve
