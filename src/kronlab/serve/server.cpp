#include "kronlab/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "kronlab/common/timer.hpp"
#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/obs/log.hpp"
#include "kronlab/obs/trace.hpp"
#include "kronlab/obs/watchdog.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::serve {

/// Per-connection state.  The Connection outlives its socket activity via
/// shared_ptr: the reader thread, the conns_ registry, and every queued
/// WorkItem hold references, so a client disconnecting mid-frame can
/// never leave an executor writing through freed memory.
struct Server::Connection {
  std::unique_ptr<Transport> transport;
  std::thread reader;
  Mutex write_mu; ///< serializes response frames onto the stream
  std::atomic<bool> reader_done{false};
};

Server::Server(const kron::BipartiteKronecker& kp, ServerOptions opt)
    : oracle_(kp), opt_(opt), cache_(opt.cache_capacity) {
  KRONLAB_REQUIRE(opt_.executors > 0, "server needs at least one executor");
  KRONLAB_REQUIRE(opt_.queue_depth > 0, "queue depth must be positive");
  KRONLAB_REQUIRE(opt_.max_connections > 0,
                  "connection limit must be positive");
  stats_record_ = {kp.num_vertices(), kp.num_edges(),
                   kron::global_squares(kp)};
  for (const auto& [degree, vertices] : oracle_.degree_histogram()) {
    degree_hist_.emplace_back(degree, vertices);
  }
  request_hist_ = &obs::histogram("serve/request");
  for (std::size_t i = 1; i < op_hist_.size(); ++i) {
    op_hist_[i] = &obs::histogram(std::string("serve/op/") +
                                  op_name(static_cast<Op>(i)));
  }
  queue_depth_gauge_ = &obs::gauge("serve/queue_depth");
  start_ns_ = timer::now_ns();
  executors_.reserve(opt_.executors);
  for (std::size_t i = 0; i < opt_.executors; ++i) {
    executors_.emplace_back([this, i] { executor_loop(i); });
  }
}

Server::~Server() { stop(); }

void Server::start(std::unique_ptr<Listener> listener) {
  KRONLAB_REQUIRE(listener != nullptr, "start() needs a listener");
  KRONLAB_REQUIRE(!listener_ && !stopped_.load(),
                  "start() may run once, before stop()");
  listener_ = std::move(listener);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  trace::set_thread_name("serve accept");
  while (auto conn = listener_->accept()) {
    adopt(std::move(conn));
  }
}

void Server::adopt(std::unique_ptr<Transport> transport) {
  auto conn = std::make_shared<Connection>();
  conn->transport = std::move(transport);
  if (draining_.load(std::memory_order_acquire)) {
    connections_rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::log(obs::LogLevel::info, "serve", "conn_rejected")
        .field("reason", "shutting_down");
    send(*conn, encode_response({0, Status::shutting_down, {}}));
    return; // transport closes with the Connection
  }
  std::size_t active = 0;
  {
    MutexLock lock(conn_mu_);
    reap_connections();
    for (const auto& c : conns_) {
      if (!c->reader_done.load(std::memory_order_acquire)) ++active;
    }
    if (active < opt_.max_connections) {
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
      conns_.push_back(std::move(conn));
      return;
    }
  }
  // Rejection answer outside conn_mu_: a slow peer must not be able to
  // stall the accept path behind its socket (found by kronlab_analyze's
  // blocking-under-lock rule).  The conn is not in conns_, so nothing
  // races the write.
  connections_rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::log(obs::LogLevel::warn, "serve", "conn_rejected")
      .field("reason", "overloaded")
      .field("active", static_cast<std::uint64_t>(active))
      .field("max", static_cast<std::uint64_t>(opt_.max_connections));
  send(*conn, encode_response({0, Status::overloaded, {}}));
}

void Server::reap_connections() {
  // Joining a finished reader is quick; live readers are left alone, so
  // the accept path never blocks behind a long-lived connection.
  std::erase_if(conns_, [](const std::shared_ptr<Connection>& c) {
    if (!c->reader_done.load(std::memory_order_acquire)) return false;
    if (c->reader.joinable()) c->reader.join();
    return true;
  });
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  trace::set_thread_name("serve reader");
  Transport& t = *conn->transport;
  while (true) {
    std::vector<word_t> payload;
    try {
      auto frame = read_frame(t, no_deadline);
      if (!frame) break; // clean EOF
      payload = std::move(*frame);
    } catch (const checksum_error& e) {
      // Framing is intact (the full frame was read): answer and go on.
      malformed_.fetch_add(1, std::memory_order_relaxed);
      obs::log(obs::LogLevel::warn, "serve", "frame_checksum_error")
          .field("what", e.what());
      send(*conn, encode_response({0, Status::malformed, {}}));
      continue;
    } catch (const protocol_error& e) {
      // Bad magic / implausible length: the byte stream may be out of
      // sync — answer best-effort and drop the connection.  The close is
      // immediate (not deferred to reaping) so the peer observes EOF, at
      // the cost of any still-executing responses on this stream.
      malformed_.fetch_add(1, std::memory_order_relaxed);
      obs::log(obs::LogLevel::warn, "serve", "frame_protocol_error")
          .field("what", e.what())
          .field("action", "drop_connection");
      send(*conn, encode_response({0, Status::malformed, {}}));
      t.shutdown();
      break;
    } catch (const error&) {
      break; // mid-frame disconnect or shutdown_read()
    }
    frames_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = peek_request_id(payload);
    if (draining_.load(std::memory_order_acquire)) {
      shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
      send(*conn, encode_response({id, Status::shutting_down, {}}));
      continue;
    }
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (!queue_push({conn, std::move(payload)})) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      send(*conn, encode_response({id, Status::overloaded, {}}));
    }
  }
  conn->reader_done.store(true, std::memory_order_release);
}

void Server::executor_loop(std::size_t id) {
  trace::set_thread_name("serve exec " + std::to_string(id));
  while (auto item = queue_pop()) {
    process(*item);
  }
}

void Server::process(WorkItem& item) {
  trace::Span span("serve", "request");
  metrics::KernelScope scope("serve/request");
  obs::LatencyScope latency(*request_hist_);
  obs::StallGuard stall_guard("serve/request");
  Response resp;
  try {
    const Request req = decode_request(item.payload);
    resp.id = req.id;
    const auto n = static_cast<index_t>(req.probes.size());
    resp.results.resize(req.probes.size());
    probes_.fetch_add(req.probes.size(), std::memory_order_relaxed);
    if (req.probes.size() >= opt_.parallel_batch_threshold) {
      // Large batches fan out through the dynamic dispatcher; concurrent
      // executors serialize on the pool's run mutex, which is the
      // documented multi-caller discipline of ThreadPool::run.
      parallel_for_dynamic(
          0, n,
          [&](index_t i) {
            resp.results[static_cast<std::size_t>(i)] =
                exec_probe(req.probes[static_cast<std::size_t>(i)]);
          },
          global_pool(), /*grain=*/32);
    } else {
      for (index_t i = 0; i < n; ++i) {
        resp.results[static_cast<std::size_t>(i)] =
            exec_probe(req.probes[static_cast<std::size_t>(i)]);
      }
    }
  } catch (const protocol_error&) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    resp = Response{peek_request_id(item.payload), Status::malformed, {}};
  }
  send(*item.conn, encode_response(resp));
  responses_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

ProbeResult Server::exec_probe(const Probe& probe) {
  ProbeResult r;
  r.op = probe.op;
  const auto opi = static_cast<std::size_t>(probe.op);
  if (opi < probes_by_op_.size()) {
    probes_by_op_[opi].fetch_add(1, std::memory_order_relaxed);
  }
  // Sampled (1-in-8): a probe runs in well under a microsecond, so the
  // two clock reads of an unconditional scope would cost ~10% of
  // throughput (X18).  probes_by_op_ above keeps the exact totals.
  obs::SampledLatencyScope latency(opi < op_hist_.size() ? op_hist_[opi]
                                                         : nullptr);
  const auto bad = [&r] {
    r.status = Status::bad_probe;
    r.words.clear();
    return r;
  };
  try {
    switch (probe.op) {
      case Op::vertex: {
        if (probe.args.size() != 1) return bad();
        const index_t p = probe.args[0];
        if (p < 0 || p >= oracle_.num_vertices()) return bad();
        r.words = encode_record(cached_vertex(p));
        return r;
      }
      case Op::edge: {
        if (probe.args.size() != 2) return bad();
        const auto rec = oracle_.try_edge(probe.args[0], probe.args[1]);
        if (!rec) {
          r.status = Status::not_an_edge;
          return r;
        }
        r.words = encode_record(*rec);
        return r;
      }
      case Op::degree_hist: {
        if (probe.args.size() != 2) return bad();
        const count_t lo = probe.args[0];
        const count_t hi = probe.args[1];
        if (lo > hi) return bad();
        const auto key = [](const std::pair<count_t, index_t>& e,
                            count_t d) { return e.first < d; };
        const auto begin = std::lower_bound(degree_hist_.begin(),
                                            degree_hist_.end(), lo, key);
        const auto end = std::lower_bound(degree_hist_.begin(),
                                          degree_hist_.end(), hi + 1, key);
        r.words = encode_hist({begin, end});
        return r;
      }
      case Op::sample_vertex: {
        if (probe.args.size() != 1) return bad();
        Rng rng(static_cast<std::uint64_t>(probe.args[0]));
        r.words = encode_record(oracle_.sample_vertex(rng));
        return r;
      }
      case Op::sample_edge: {
        if (probe.args.size() != 1) return bad();
        Rng rng(static_cast<std::uint64_t>(probe.args[0]));
        r.words = encode_record(oracle_.sample_edge(rng));
        return r;
      }
      case Op::stats: {
        if (!probe.args.empty()) return bad();
        r.words = encode_record(stats_record_);
        return r;
      }
      case Op::server_stats: {
        if (probe.args.size() != 1) return bad();
        const auto format = static_cast<StatsFormat>(probe.args[0]);
        if (format != StatsFormat::json &&
            format != StatsFormat::prometheus) {
          return bad();
        }
        r.words = encode_stats_text(format, stats_text(format));
        return r;
      }
    }
    return bad(); // unknown opcode
  } catch (const error&) {
    // A probe must never take the daemon down; the typed error becomes a
    // typed status (e.g. sample_edge on an edgeless product).
    return bad();
  }
}

kron::VertexRecord Server::cached_vertex(index_t p) {
  if (auto hit = cache_.get(p)) return *hit;
  // Miss: compute outside any shard lock so concurrent misses overlap; a
  // racing double-insert of the same record is benign.
  const auto rec = oracle_.vertex(p);
  cache_.put(p, rec);
  return rec;
}

void Server::send(Connection& conn, const std::vector<word_t>& payload) {
  MutexLock lock(conn.write_mu);
  try {
    // kronlab-analyze: allow(blocking-under-lock) write_mu is this
    // connection's dedicated frame mutex; it exists precisely to keep
    // concurrent responses from interleaving bytes, and nothing else
    // ever waits on it while doing work
    write_frame(*conn.transport, payload);
  } catch (const error& e) {
    // Peer vanished mid-response; its reader sees the close and the
    // connection is reaped.  Dropping the write is the only option left.
    obs::log(obs::LogLevel::debug, "serve", "response_write_failed")
        .field("what", e.what());
  }
}

bool Server::queue_push(WorkItem item) {
  MutexLock lock(queue_mu_);
  if (queue_closed_ || queue_.size() >= opt_.queue_depth) return false;
  queue_.push_back(std::move(item));
  queue_depth_gauge_->set(static_cast<std::int64_t>(queue_.size()));
  queue_cv_.notify_one();
  return true;
}

std::optional<Server::WorkItem> Server::queue_pop() {
  MutexLock lock(queue_mu_);
  while (queue_.empty() && !queue_closed_) queue_cv_.wait(queue_mu_);
  if (queue_.empty()) return std::nullopt;
  WorkItem item = std::move(queue_.front());
  queue_.pop_front();
  queue_depth_gauge_->set(static_cast<std::int64_t>(queue_.size()));
  return item;
}

void Server::queue_close() {
  MutexLock lock(queue_mu_);
  queue_closed_ = true;
  queue_cv_.notify_all();
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);
  // Structured drain progress at a fixed cadence: a drain that finishes
  // inside the first tick (the common case — and every unit test) logs
  // nothing; a long drain reports its in-flight count every 200ms so an
  // operator watching the daemon's log sees it converging.
  const std::uint64_t drain_begin = timer::now_ns();
  std::atomic<bool> drain_done{false};
  std::thread progress([this, &drain_done, drain_begin] {
    trace::set_thread_name("serve drain");
    int ticks = 0;
    while (!drain_done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (drain_done.load(std::memory_order_acquire)) break;
      if (++ticks % 4 != 0) continue;
      obs::log(obs::LogLevel::info, "serve", "drain_progress")
          .field("in_flight", in_flight())
          .field("elapsed_ms", (timer::now_ns() - drain_begin) / 1000000);
    }
  });
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Half-close every connection's read side: readers drain out on EOF
  // while responses to already-admitted frames still flow.
  {
    MutexLock lock(conn_mu_);
    for (const auto& c : conns_) c->transport->shutdown_read();
    for (const auto& c : conns_) {
      // kronlab-analyze: allow(blocking-under-lock) shutdown path: the
      // listener is closed and every read side is half-closed, so each
      // reader exits promptly; conn_mu_ is held to fence out adopt()
      if (c->reader.joinable()) c->reader.join();
    }
  }
  // No reader can push anymore; let the executors finish the backlog.
  queue_close();
  for (auto& e : executors_) e.join();
  executors_.clear();
  {
    MutexLock lock(conn_mu_);
    for (const auto& c : conns_) c->transport->shutdown();
    conns_.clear();
  }
  drain_done.store(true, std::memory_order_release);
  progress.join();
  obs::log(obs::LogLevel::debug, "serve", "drain_complete")
      .field("elapsed_ms", (timer::now_ns() - drain_begin) / 1000000)
      .field("responses", responses_.load(std::memory_order_relaxed));
}

std::string Server::stats_text(StatsFormat format) {
  const ServerStats s = stats();
  const obs::StatsSnapshot snap = obs::stats_snapshot();
  std::size_t queue_depth = 0;
  {
    MutexLock lock(queue_mu_);
    queue_depth = queue_.size();
  }
  const double uptime =
      static_cast<double>(timer::now_ns() - start_ns_) / 1e9;
  const std::uint64_t lookups = s.cache_hits + s.cache_misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(s.cache_hits) /
                         static_cast<double>(lookups);

  if (format == StatsFormat::prometheus) {
    std::string out;
    const auto scalar = [&out](const char* name, const char* type,
                               double v) {
      char line[160];
      std::snprintf(line, sizeof line, "# TYPE %s %s\n%s %.6f\n", name,
                    type, name, v);
      out += line;
    };
    scalar("kronlab_server_uptime_seconds", "gauge", uptime);
    scalar("kronlab_server_in_flight", "gauge",
           static_cast<double>(in_flight()));
    scalar("kronlab_server_queue_depth", "gauge",
           static_cast<double>(queue_depth));
    scalar("kronlab_server_cache_hit_rate", "gauge", hit_rate);
    scalar("kronlab_server_connections_accepted_total", "counter",
           static_cast<double>(s.connections_accepted));
    scalar("kronlab_server_connections_rejected_total", "counter",
           static_cast<double>(s.connections_rejected));
    scalar("kronlab_server_frames_total", "counter",
           static_cast<double>(s.frames));
    scalar("kronlab_server_responses_total", "counter",
           static_cast<double>(s.responses));
    scalar("kronlab_server_probes_total", "counter",
           static_cast<double>(s.probes));
    scalar("kronlab_server_overloaded_total", "counter",
           static_cast<double>(s.overloaded));
    scalar("kronlab_server_malformed_total", "counter",
           static_cast<double>(s.malformed));
    scalar("kronlab_server_shed_shutdown_total", "counter",
           static_cast<double>(s.shed_shutdown));
    out += obs::stats_prometheus(snap);
    return out;
  }

  std::string out = "{\"schema\":\"kronlab-stats-v1\"";
  out += ",\"stats_enabled\":";
  out += obs::stats_enabled() ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"uptime_seconds\":%.3f", uptime);
  out += buf;
  out += ",\"server\":{";
  out += "\"connections_accepted\":" + std::to_string(s.connections_accepted);
  out += ",\"connections_rejected\":" +
         std::to_string(s.connections_rejected);
  out += ",\"frames\":" + std::to_string(s.frames);
  out += ",\"responses\":" + std::to_string(s.responses);
  out += ",\"probes\":" + std::to_string(s.probes);
  out += ",\"overloaded\":" + std::to_string(s.overloaded);
  out += ",\"malformed\":" + std::to_string(s.malformed);
  out += ",\"shed_shutdown\":" + std::to_string(s.shed_shutdown);
  out += ",\"in_flight\":" + std::to_string(in_flight());
  out += ",\"queue_depth\":" + std::to_string(queue_depth);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  std::snprintf(buf, sizeof buf, ",\"cache_hit_rate\":%.4f", hit_rate);
  out += buf;
  out += "},\"probes_by_op\":{";
  for (std::size_t i = 1; i < s.probes_by_op.size(); ++i) {
    if (i > 1) out += ',';
    out += '"';
    out += op_name(static_cast<Op>(i));
    out += "\":" + std::to_string(s.probes_by_op[i]);
  }
  out += "},";
  // Splice in the registry fragment ({"counters":...,"gauges":...,
  // "histograms":...}) minus its opening brace, so the renderer in
  // obs/stats stays the single source of truth for metric formatting.
  out += obs::stats_json(snap).substr(1);
  return out;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.shed_shutdown = shed_shutdown_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  for (std::size_t i = 0; i < s.probes_by_op.size(); ++i) {
    s.probes_by_op[i] = probes_by_op_[i].load(std::memory_order_relaxed);
  }
  return s;
}

} // namespace kronlab::serve
