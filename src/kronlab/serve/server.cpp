#include "kronlab/serve/server.hpp"

#include <algorithm>

#include "kronlab/kron/ground_truth.hpp"
#include "kronlab/obs/trace.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/parallel_for.hpp"

namespace kronlab::serve {

/// Per-connection state.  The Connection outlives its socket activity via
/// shared_ptr: the reader thread, the conns_ registry, and every queued
/// WorkItem hold references, so a client disconnecting mid-frame can
/// never leave an executor writing through freed memory.
struct Server::Connection {
  std::unique_ptr<Transport> transport;
  std::thread reader;
  Mutex write_mu; ///< serializes response frames onto the stream
  std::atomic<bool> reader_done{false};
};

Server::Server(const kron::BipartiteKronecker& kp, ServerOptions opt)
    : oracle_(kp), opt_(opt), cache_(opt.cache_capacity) {
  KRONLAB_REQUIRE(opt_.executors > 0, "server needs at least one executor");
  KRONLAB_REQUIRE(opt_.queue_depth > 0, "queue depth must be positive");
  KRONLAB_REQUIRE(opt_.max_connections > 0,
                  "connection limit must be positive");
  stats_record_ = {kp.num_vertices(), kp.num_edges(),
                   kron::global_squares(kp)};
  for (const auto& [degree, vertices] : oracle_.degree_histogram()) {
    degree_hist_.emplace_back(degree, vertices);
  }
  executors_.reserve(opt_.executors);
  for (std::size_t i = 0; i < opt_.executors; ++i) {
    executors_.emplace_back([this, i] { executor_loop(i); });
  }
}

Server::~Server() { stop(); }

void Server::start(std::unique_ptr<Listener> listener) {
  KRONLAB_REQUIRE(listener != nullptr, "start() needs a listener");
  KRONLAB_REQUIRE(!listener_ && !stopped_.load(),
                  "start() may run once, before stop()");
  listener_ = std::move(listener);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  trace::set_thread_name("serve accept");
  while (auto conn = listener_->accept()) {
    adopt(std::move(conn));
  }
}

void Server::adopt(std::unique_ptr<Transport> transport) {
  auto conn = std::make_shared<Connection>();
  conn->transport = std::move(transport);
  if (draining_.load(std::memory_order_acquire)) {
    connections_rejected_.fetch_add(1, std::memory_order_relaxed);
    send(*conn, encode_response({0, Status::shutting_down, {}}));
    return; // transport closes with the Connection
  }
  MutexLock lock(conn_mu_);
  reap_connections();
  std::size_t active = 0;
  for (const auto& c : conns_) {
    if (!c->reader_done.load(std::memory_order_acquire)) ++active;
  }
  if (active >= opt_.max_connections) {
    connections_rejected_.fetch_add(1, std::memory_order_relaxed);
    send(*conn, encode_response({0, Status::overloaded, {}}));
    return;
  }
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  conn->reader = std::thread([this, conn] { reader_loop(conn); });
  conns_.push_back(std::move(conn));
}

void Server::reap_connections() {
  // Joining a finished reader is quick; live readers are left alone, so
  // the accept path never blocks behind a long-lived connection.
  std::erase_if(conns_, [](const std::shared_ptr<Connection>& c) {
    if (!c->reader_done.load(std::memory_order_acquire)) return false;
    if (c->reader.joinable()) c->reader.join();
    return true;
  });
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  trace::set_thread_name("serve reader");
  Transport& t = *conn->transport;
  while (true) {
    std::vector<word_t> payload;
    try {
      auto frame = read_frame(t, no_deadline);
      if (!frame) break; // clean EOF
      payload = std::move(*frame);
    } catch (const checksum_error&) {
      // Framing is intact (the full frame was read): answer and go on.
      malformed_.fetch_add(1, std::memory_order_relaxed);
      send(*conn, encode_response({0, Status::malformed, {}}));
      continue;
    } catch (const protocol_error&) {
      // Bad magic / implausible length: the byte stream may be out of
      // sync — answer best-effort and drop the connection.  The close is
      // immediate (not deferred to reaping) so the peer observes EOF, at
      // the cost of any still-executing responses on this stream.
      malformed_.fetch_add(1, std::memory_order_relaxed);
      send(*conn, encode_response({0, Status::malformed, {}}));
      t.shutdown();
      break;
    } catch (const error&) {
      break; // mid-frame disconnect or shutdown_read()
    }
    frames_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = peek_request_id(payload);
    if (draining_.load(std::memory_order_acquire)) {
      shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
      send(*conn, encode_response({id, Status::shutting_down, {}}));
      continue;
    }
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (!queue_push({conn, std::move(payload)})) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      send(*conn, encode_response({id, Status::overloaded, {}}));
    }
  }
  conn->reader_done.store(true, std::memory_order_release);
}

void Server::executor_loop(std::size_t id) {
  trace::set_thread_name("serve exec " + std::to_string(id));
  while (auto item = queue_pop()) {
    process(*item);
  }
}

void Server::process(WorkItem& item) {
  trace::Span span("serve", "request");
  metrics::KernelScope scope("serve/request");
  Response resp;
  try {
    const Request req = decode_request(item.payload);
    resp.id = req.id;
    const auto n = static_cast<index_t>(req.probes.size());
    resp.results.resize(req.probes.size());
    probes_.fetch_add(req.probes.size(), std::memory_order_relaxed);
    if (req.probes.size() >= opt_.parallel_batch_threshold) {
      // Large batches fan out through the dynamic dispatcher; concurrent
      // executors serialize on the pool's run mutex, which is the
      // documented multi-caller discipline of ThreadPool::run.
      parallel_for_dynamic(
          0, n,
          [&](index_t i) {
            resp.results[static_cast<std::size_t>(i)] =
                exec_probe(req.probes[static_cast<std::size_t>(i)]);
          },
          global_pool(), /*grain=*/32);
    } else {
      for (index_t i = 0; i < n; ++i) {
        resp.results[static_cast<std::size_t>(i)] =
            exec_probe(req.probes[static_cast<std::size_t>(i)]);
      }
    }
  } catch (const protocol_error&) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    resp = Response{peek_request_id(item.payload), Status::malformed, {}};
  }
  send(*item.conn, encode_response(resp));
  responses_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

ProbeResult Server::exec_probe(const Probe& probe) {
  ProbeResult r;
  r.op = probe.op;
  const auto opi = static_cast<std::size_t>(probe.op);
  if (opi < probes_by_op_.size()) {
    probes_by_op_[opi].fetch_add(1, std::memory_order_relaxed);
  }
  const auto bad = [&r] {
    r.status = Status::bad_probe;
    r.words.clear();
    return r;
  };
  try {
    switch (probe.op) {
      case Op::vertex: {
        if (probe.args.size() != 1) return bad();
        const index_t p = probe.args[0];
        if (p < 0 || p >= oracle_.num_vertices()) return bad();
        r.words = encode_record(cached_vertex(p));
        return r;
      }
      case Op::edge: {
        if (probe.args.size() != 2) return bad();
        const auto rec = oracle_.try_edge(probe.args[0], probe.args[1]);
        if (!rec) {
          r.status = Status::not_an_edge;
          return r;
        }
        r.words = encode_record(*rec);
        return r;
      }
      case Op::degree_hist: {
        if (probe.args.size() != 2) return bad();
        const count_t lo = probe.args[0];
        const count_t hi = probe.args[1];
        if (lo > hi) return bad();
        const auto key = [](const std::pair<count_t, index_t>& e,
                            count_t d) { return e.first < d; };
        const auto begin = std::lower_bound(degree_hist_.begin(),
                                            degree_hist_.end(), lo, key);
        const auto end = std::lower_bound(degree_hist_.begin(),
                                          degree_hist_.end(), hi + 1, key);
        r.words = encode_hist({begin, end});
        return r;
      }
      case Op::sample_vertex: {
        if (probe.args.size() != 1) return bad();
        Rng rng(static_cast<std::uint64_t>(probe.args[0]));
        r.words = encode_record(oracle_.sample_vertex(rng));
        return r;
      }
      case Op::sample_edge: {
        if (probe.args.size() != 1) return bad();
        Rng rng(static_cast<std::uint64_t>(probe.args[0]));
        r.words = encode_record(oracle_.sample_edge(rng));
        return r;
      }
      case Op::stats: {
        if (!probe.args.empty()) return bad();
        r.words = encode_record(stats_record_);
        return r;
      }
    }
    return bad(); // unknown opcode
  } catch (const error&) {
    // A probe must never take the daemon down; the typed error becomes a
    // typed status (e.g. sample_edge on an edgeless product).
    return bad();
  }
}

kron::VertexRecord Server::cached_vertex(index_t p) {
  if (auto hit = cache_.get(p)) return *hit;
  // Miss: compute outside any shard lock so concurrent misses overlap; a
  // racing double-insert of the same record is benign.
  const auto rec = oracle_.vertex(p);
  cache_.put(p, rec);
  return rec;
}

void Server::send(Connection& conn, const std::vector<word_t>& payload) {
  MutexLock lock(conn.write_mu);
  try {
    write_frame(*conn.transport, payload);
  } catch (const error&) {
    // Peer vanished mid-response; its reader sees the close and the
    // connection is reaped.  Dropping the write is the only option left.
  }
}

bool Server::queue_push(WorkItem item) {
  MutexLock lock(queue_mu_);
  if (queue_closed_ || queue_.size() >= opt_.queue_depth) return false;
  queue_.push_back(std::move(item));
  queue_cv_.notify_one();
  return true;
}

std::optional<Server::WorkItem> Server::queue_pop() {
  MutexLock lock(queue_mu_);
  while (queue_.empty() && !queue_closed_) queue_cv_.wait(queue_mu_);
  if (queue_.empty()) return std::nullopt;
  WorkItem item = std::move(queue_.front());
  queue_.pop_front();
  return item;
}

void Server::queue_close() {
  MutexLock lock(queue_mu_);
  queue_closed_ = true;
  queue_cv_.notify_all();
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Half-close every connection's read side: readers drain out on EOF
  // while responses to already-admitted frames still flow.
  {
    MutexLock lock(conn_mu_);
    for (const auto& c : conns_) c->transport->shutdown_read();
    for (const auto& c : conns_) {
      if (c->reader.joinable()) c->reader.join();
    }
  }
  // No reader can push anymore; let the executors finish the backlog.
  queue_close();
  for (auto& e : executors_) e.join();
  executors_.clear();
  {
    MutexLock lock(conn_mu_);
    for (const auto& c : conns_) c->transport->shutdown();
    conns_.clear();
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.shed_shutdown = shed_shutdown_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  for (std::size_t i = 0; i < s.probes_by_op.size(); ++i) {
    s.probes_by_op[i] = probes_by_op_[i].load(std::memory_order_relaxed);
  }
  return s;
}

} // namespace kronlab::serve
