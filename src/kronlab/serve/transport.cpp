#include "kronlab/serve/transport.hpp"

#include <cerrno>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "kronlab/common/random.hpp"
#include "kronlab/grb/binary_io.hpp"

namespace kronlab::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw io_error("kronlab serve: " + what + ": " + std::strerror(errno));
}

/// Deadline → remaining poll() timeout in ms (-1 = forever, 0 = expired).
int poll_timeout(std::chrono::steady_clock::time_point end, bool infinite) {
  if (infinite) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      end - std::chrono::steady_clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// Stream-socket transport over one connected fd (TCP, Unix, socketpair).
class SocketTransport final : public Transport {
public:
  explicit SocketTransport(int fd) : fd_(fd) {}

  ~SocketTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  bool read_exact(void* buf, std::size_t n,
                  std::chrono::milliseconds deadline) override {
    const bool infinite = deadline < std::chrono::milliseconds::zero();
    const auto end = std::chrono::steady_clock::now() + deadline;
    auto* out = static_cast<std::uint8_t*>(buf);
    std::size_t got = 0;
    while (got < n) {
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, poll_timeout(end, infinite));
      if (pr < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll");
      }
      if (pr == 0) {
        throw timeout_error("kronlab serve: read deadline expired after " +
                            std::to_string(got) + "/" + std::to_string(n) +
                            " bytes");
      }
      const ssize_t r = ::recv(fd_, out + got, n - got, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        throw_errno("recv");
      }
      if (r == 0) {
        if (got == 0) return false; // clean EOF at a message boundary
        throw io_error("kronlab serve: peer closed mid-message (" +
                       std::to_string(got) + "/" + std::to_string(n) +
                       " bytes)");
      }
      got += static_cast<std::size_t>(r);
    }
    return true;
  }

  void write_all(const void* buf, std::size_t n) override {
    const auto* in = static_cast<const std::uint8_t*>(buf);
    std::size_t put = 0;
    while (put < n) {
      // MSG_NOSIGNAL: a peer that vanished mid-write is an io_error on
      // this connection, not a process-wide SIGPIPE.
      const ssize_t w = ::send(fd_, in + put, n - put, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw_errno("send");
      }
      put += static_cast<std::size_t>(w);
    }
  }

  void shutdown_read() override { ::shutdown(fd_, SHUT_RD); }

  void shutdown_write() override { ::shutdown(fd_, SHUT_WR); }

  void shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

private:
  int fd_;
};

/// Listener over a bound fd, woken for close() through a self-pipe so a
/// blocked accept() returns promptly without racing on the fd's lifetime.
class SocketListener final : public Listener {
public:
  SocketListener(int fd, int port, std::string unlink_path)
      : fd_(fd), port_(port), unlink_path_(std::move(unlink_path)) {
    if (::pipe(wake_) != 0) {
      ::close(fd_);
      throw_errno("pipe");
    }
  }

  ~SocketListener() override {
    close();
    ::close(fd_);
    ::close(wake_[0]);
    ::close(wake_[1]);
    if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
  }

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  std::unique_ptr<Transport> accept() override {
    while (true) {
      pollfd pfds[2] = {{fd_, POLLIN, 0}, {wake_[0], POLLIN, 0}};
      const int pr = ::poll(pfds, 2, -1);
      if (pr < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll");
      }
      if ((pfds[1].revents & POLLIN) != 0) return nullptr; // close()d
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return nullptr; // listener torn down underneath us
      }
      return std::make_unique<SocketTransport>(conn);
    }
  }

  void close() override {
    const char byte = 0;
    // Best-effort wake; the pipe never fills (one byte per close call).
    [[maybe_unused]] const ssize_t w = ::write(wake_[1], &byte, 1);
  }

  [[nodiscard]] int port() const override { return port_; }

private:
  int fd_;
  int port_;
  std::string unlink_path_;
  int wake_[2] = {-1, -1};
};

} // namespace

std::unique_ptr<Listener> listen_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  return std::make_unique<SocketListener>(fd, ntohs(bound.sin_port), "");
}

std::unique_ptr<Listener> listen_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    throw io_error("kronlab serve: unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw_errno("bind " + path);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen " + path);
  }
  return std::make_unique<SocketListener>(fd, -1, path);
}

std::unique_ptr<Transport> connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw io_error("kronlab serve: not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  return std::make_unique<SocketTransport>(fd);
}

std::unique_ptr<Transport> connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    throw io_error("kronlab serve: unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    throw_errno("connect " + path);
  }
  return std::make_unique<SocketTransport>(fd);
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
local_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  return {std::make_unique<SocketTransport>(fds[0]),
          std::make_unique<SocketTransport>(fds[1])};
}

// ---------------------------------------------------------------------------
// Fault shim.

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 TransportFaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {}

bool FaultyTransport::read_exact(void* buf, std::size_t n,
                                 std::chrono::milliseconds deadline) {
  return inner_->read_exact(buf, n, deadline);
}

void FaultyTransport::write_all(const void* buf, std::size_t n) {
  std::chrono::milliseconds nap{0};
  {
    MutexLock lock(mu_);
    // One deterministic draw per write, keyed on (seed, sequence) the way
    // dist/comm keys on (sender, receiver, channel sequence).
    std::uint64_t state = plan_.seed ^ (0x9E3779B97F4A7C15ull * ++writes_);
    const double u =
        static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
    if (u < plan_.drop) {
      ++stats_.dropped;
      return;
    }
    if (u < plan_.drop + plan_.delay) {
      ++stats_.delayed;
      nap = plan_.delay_for;
    }
  }
  if (nap.count() > 0) std::this_thread::sleep_for(nap);
  inner_->write_all(buf, n);
}

void FaultyTransport::shutdown_read() { inner_->shutdown_read(); }

void FaultyTransport::shutdown_write() { inner_->shutdown_write(); }

void FaultyTransport::shutdown() { inner_->shutdown(); }

TransportFaultStats FaultyTransport::fault_stats() const {
  MutexLock lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Framing.

void write_frame(Transport& t, const std::vector<word_t>& payload) {
  const auto frame = seal_frame(payload);
  t.write_all(frame.data(), frame.size());
}

std::optional<std::vector<word_t>> read_frame(
    Transport& t, std::chrono::milliseconds deadline) {
  std::uint8_t header[sizeof frame_magic + 8];
  if (!t.read_exact(header, sizeof header, deadline)) return std::nullopt;
  if (std::memcmp(header, frame_magic, sizeof frame_magic) != 0) {
    throw protocol_error("kronlab serve: bad frame magic");
  }
  std::uint64_t len = 0;
  std::memcpy(&len, header + sizeof frame_magic, 8);
  if (len > max_frame_bytes || len % sizeof(word_t) != 0) {
    throw protocol_error("kronlab serve: implausible frame length " +
                         std::to_string(len));
  }
  std::vector<word_t> payload(len / sizeof(word_t));
  std::vector<std::uint8_t> tail(static_cast<std::size_t>(len) + 8);
  if (!t.read_exact(tail.data(), tail.size(), deadline)) {
    throw io_error("kronlab serve: peer closed mid-frame");
  }
  if (len > 0) std::memcpy(payload.data(), tail.data(), len);
  std::uint64_t stored = 0;
  std::memcpy(&stored, tail.data() + len, 8);
  if (stored != grb::fnv1a64(payload.data(), len)) {
    throw checksum_error("kronlab serve: frame checksum mismatch");
  }
  return payload;
}

} // namespace kronlab::serve
