// kronlab/serve/lru.hpp
//
// A small intrusive-list LRU cache, used by the query server to keep hot
// per-vertex oracle records.  An oracle probe is already O(#factor terms),
// but a serving workload is heavily skewed (hub vertices are probed far
// more often than tail vertices — the same power law the generator
// produces), so a few thousand cached records absorb most of the work.
//
// Not thread-safe by itself: the server guards its instance with a Mutex
// (one cache, short critical sections — lookup and insert only; misses
// are computed outside the lock).

#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace kronlab::serve {

template <typename K, typename V>
class LruCache {
public:
  /// `capacity` == 0 disables the cache (every get misses, puts drop).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Value for `key`, refreshing its recency; nullopt on miss.
  std::optional<V> get(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert (or refresh) `key`, evicting the least-recently-used entry
  /// when full.  Racing double-inserts of the same key are benign: the
  /// second put refreshes the value.
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
  }

private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_; ///< front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
};

} // namespace kronlab::serve
