// kronlab/serve/lru.hpp
//
// A small intrusive-list LRU cache, used by the query server to keep hot
// per-vertex oracle records.  An oracle probe is already O(#factor terms),
// but a serving workload is heavily skewed (hub vertices are probed far
// more often than tail vertices — the same power law the generator
// produces), so a few thousand cached records absorb most of the work.
//
// LruCache is not thread-safe by itself.  ShardedLru is the concurrent
// form the server uses: the key space is hash-partitioned across N
// independent (Mutex, LruCache) shards, so executor threads probing
// different vertices contend only when they hash to the same shard.
// Recency is per shard — an entry can only be evicted by inserts into
// its own shard, which preserves the skew-absorbing behavior (hot hub
// vertices spread across shards and each stays hot within its own).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kronlab/common/sync.hpp"

namespace kronlab::serve {

template <typename K, typename V>
class LruCache {
public:
  /// `capacity` == 0 disables the cache (every get misses, puts drop).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Value for `key`, refreshing its recency; nullopt on miss.
  std::optional<V> get(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert (or refresh) `key`, evicting the least-recently-used entry
  /// when full.  Racing double-inserts of the same key are benign: the
  /// second put refreshes the value.
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
  }

private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_; ///< front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
};

/// Thread-safe hash-sharded LRU with built-in hit/miss counters.
///
/// `capacity` entries total, split evenly across `shards` (each shard
/// gets at least one entry; the shard count is clamped so a tiny
/// capacity never produces zero-sized shards).  capacity == 0 disables
/// caching entirely, as with LruCache.
template <typename K, typename V>
class ShardedLru {
public:
  explicit ShardedLru(std::size_t capacity, std::size_t shards = 8)
      : capacity_(capacity) {
    if (shards == 0) shards = 1;
    if (capacity > 0 && shards > capacity) shards = capacity;
    const std::size_t base = capacity / (shards == 0 ? 1 : shards);
    const std::size_t extra = capacity % (shards == 0 ? 1 : shards);
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.push_back(
          std::make_unique<Shard>(base + (s < extra ? 1 : 0)));
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

  /// Entries currently cached, summed over shards (racy snapshot).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      MutexLock lock(s->mu);
      n += s->cache.size();
    }
    return n;
  }

  /// Value for `key`, refreshing its recency within the key's shard.
  /// Counts a hit or a miss.
  std::optional<V> get(const K& key) {
    if (capacity_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Shard& s = shard_of(key);
    MutexLock lock(s.mu);
    auto v = s.cache.get(key);
    (v ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    return v;
  }

  /// Insert (or refresh) `key` in its shard, evicting that shard's LRU
  /// entry when the shard is full.
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    Shard& s = shard_of(key);
    MutexLock lock(s.mu);
    s.cache.put(key, std::move(value));
  }

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Which shard `key` maps to (exposed so tests can assert the
  /// distribution and per-shard eviction independence).
  [[nodiscard]] std::size_t shard_index(const K& key) const {
    // splitmix64-style finalizer over std::hash: std::hash<int> is the
    // identity on most stdlibs, which would pin dense vertex-id ranges
    // to few shards.
    std::uint64_t x = static_cast<std::uint64_t>(std::hash<K>{}(key));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shards_.size());
  }

private:
  struct Shard {
    explicit Shard(std::size_t cap) : cache(cap) {}
    Mutex mu;
    LruCache<K, V> cache GUARDED_BY(mu);
  };

  Shard& shard_of(const K& key) { return *shards_[shard_index(key)]; }

  std::size_t capacity_;
  /// unique_ptr so Shard (holding a Mutex) needs no move support.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

} // namespace kronlab::serve
