// kronlab/serve/protocol.hpp
//
// Wire protocol of the ground-truth query daemon (kronlab_served).
//
// The paper's O(1)-per-probe oracle is exactly the shape of a long-running
// query service: a system under test streams the generated graph and asks
// the daemon "what is the exact truth at this vertex / edge?" while it
// runs.  This header defines the request/response frames those probes
// travel in; server.hpp executes them, client.hpp issues them.
//
// Frame envelope (all integers little-endian, same discipline as the
// KRNLCSR2/KRNLCKP1 envelopes in grb/binary_io):
//
//   magic "KRNLSRV1" | u64 payload bytes | payload | u64 fnv1a64(payload)
//
// The payload is a vector of 64-bit words.  The trailing checksum covers
// every payload byte, so a corrupt frame is detected before any word of it
// is interpreted.  The payload length must be a multiple of 8 and at most
// max_frame_bytes; anything else is unrecoverable (the stream may be
// unsynchronized) and the connection is closed.
//
// Request payload words:
//
//   [0] frame id (client-chosen, echoed in the response)
//   [1] probe count n            (0 < n <= max_batch_probes)
//   then per probe: opcode | arg count | args...
//
// Response payload words:
//
//   [0] frame id (echoed; 0 when the request was too corrupt to read one)
//   [1] frame status             (Status)
//   [2] result count n           (0 on frame-level errors)
//   then per result: opcode | status | word count | words...
//
// Result words per opcode (doubles travel as IEEE-754 bit patterns):
//
//   vertex, sample_vertex   p, degree, two_hop, squares, closure_bits
//   edge, sample_edge       p, q, degree_p, degree_q, squares, gamma_bits
//   degree_hist             pair count, then (degree, vertex count) pairs
//   stats                   num_vertices, num_edges, global_squares
//   server_stats            format, byte length, then ceil(len/8) words of
//                           UTF-8 text packed little-endian, zero-padded
//                           (a live telemetry snapshot — see obs/stats)
//
// Versioning rule: the magic carries the protocol version ("KRNLSRV1").
// Within a version, responses may only grow by appending words to a
// result (clients must ignore trailing words they do not know); any
// incompatible change — reordered words, changed semantics, new framing —
// bumps the digit, and a server drops connections whose magic it does not
// speak.  Opcodes and status codes are append-only.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kronlab/common/error.hpp"
#include "kronlab/common/registry.hpp"
#include "kronlab/common/types.hpp"
#include "kronlab/kron/oracle.hpp"

namespace kronlab::serve {

/// Payload word (mirrors dist::word_t: every field is a 64-bit word).
using word_t = std::int64_t;

/// The protocol magic, version included.
// Alias into the one-definition registry (common/registry.hpp); keeps
// sizeof frame_magic == 8 for the memcpy/memcmp framing below.
inline constexpr const char (&frame_magic)[8] = magic::kSrv1;

/// Hard cap on one frame's payload (bytes).  Far above any real batch,
/// far below anything that could turn eight corrupt length bytes into a
/// multi-gigabyte allocation.
inline constexpr std::size_t max_frame_bytes = std::size_t{1} << 20;

/// Cap on probes per request frame (admission is per frame, so a frame is
/// also the batching unit — see server.hpp).
inline constexpr std::size_t max_batch_probes = 4096;

/// Probe opcodes.  Append-only (see the versioning rule above).
enum class Op : word_t {
  vertex = 1,        ///< args: p            → vertex record
  edge = 2,          ///< args: p, q         → edge record
  degree_hist = 3,   ///< args: lo, hi       → histogram pairs, lo<=d<=hi
  sample_vertex = 4, ///< args: seed         → vertex record, seeded draw
  sample_edge = 5,   ///< args: seed         → edge record, seeded draw
  stats = 6,         ///< args: none         → global statistics
  server_stats = 7,  ///< args: format       → live telemetry snapshot (admin)
};

/// Snapshot formats accepted by Op::server_stats.
enum class StatsFormat : word_t {
  json = 0,       ///< kronlab-stats-v1 JSON object
  prometheus = 1, ///< Prometheus text exposition format
};

/// Status codes, per result and per frame.  Append-only.
enum class Status : word_t {
  ok = 0,
  not_an_edge = 1,   ///< edge probe on a non-edge (or out-of-range pair)
  bad_probe = 2,     ///< unknown opcode / wrong arg count / bad arg range
  overloaded = 3,    ///< admission queue full — retry later
  malformed = 4,     ///< frame decoded but violates the payload grammar
  shutting_down = 5, ///< server draining; no new work admitted
};

/// Human-readable status name ("ok", "overloaded", ...).
[[nodiscard]] const char* status_name(Status s);

/// Human-readable opcode name ("vertex", "degree_hist", ...).
[[nodiscard]] const char* op_name(Op op);

/// A frame that violates the envelope (bad magic, implausible length).
/// The stream may be unsynchronized: close the connection.
class protocol_error : public error {
public:
  explicit protocol_error(const std::string& what) : error(what) {}
};

/// Envelope intact but the payload checksum does not match.  Framing is
/// still synchronized, so the peer can answer `malformed` and keep the
/// connection.
class checksum_error : public protocol_error {
public:
  explicit checksum_error(const std::string& what) : protocol_error(what) {}
};

/// One probe of a request frame.
struct Probe {
  Op op = Op::stats;
  std::vector<word_t> args;

  static Probe vertex(index_t p) { return {Op::vertex, {p}}; }
  static Probe edge(index_t p, index_t q) { return {Op::edge, {p, q}}; }
  static Probe degree_hist(count_t lo, count_t hi) {
    return {Op::degree_hist, {lo, hi}};
  }
  static Probe sample_vertex(std::uint64_t seed) {
    return {Op::sample_vertex, {static_cast<word_t>(seed)}};
  }
  static Probe sample_edge(std::uint64_t seed) {
    return {Op::sample_edge, {static_cast<word_t>(seed)}};
  }
  static Probe stats() { return {Op::stats, {}}; }
  static Probe server_stats(StatsFormat format = StatsFormat::json) {
    return {Op::server_stats, {static_cast<word_t>(format)}};
  }
};

/// One result of a response frame.
struct ProbeResult {
  Op op = Op::stats;
  Status status = Status::ok;
  std::vector<word_t> words;
};

struct Request {
  std::uint64_t id = 0;
  std::vector<Probe> probes;
};

struct Response {
  std::uint64_t id = 0;
  Status status = Status::ok;
  std::vector<ProbeResult> results;
};

/// Global statistics answered by Op::stats.
struct StatsRecord {
  index_t num_vertices = 0;
  count_t num_edges = 0;
  count_t global_squares = 0;
};

// ---------------------------------------------------------------------------
// Payload grammar: words <-> structs.  Decoders throw protocol_error on
// grammar violations (oversized batch, wrong arg count, truncated body).

[[nodiscard]] std::vector<word_t> encode_request(const Request& req);
[[nodiscard]] Request decode_request(const std::vector<word_t>& words);

[[nodiscard]] std::vector<word_t> encode_response(const Response& resp);
[[nodiscard]] Response decode_response(const std::vector<word_t>& words);

/// Best-effort frame id of an undecodable request payload (word 0), for
/// the malformed response; 0 when the payload is empty.
[[nodiscard]] std::uint64_t peek_request_id(const std::vector<word_t>& words);

// Record <-> result words (the per-opcode layouts documented above).
[[nodiscard]] std::vector<word_t> encode_record(const kron::VertexRecord& r);
[[nodiscard]] std::vector<word_t> encode_record(const kron::EdgeRecord& r);
[[nodiscard]] std::vector<word_t> encode_record(const StatsRecord& r);
[[nodiscard]] std::vector<word_t> encode_hist(
    const std::vector<std::pair<count_t, index_t>>& pairs);

[[nodiscard]] kron::VertexRecord decode_vertex_record(
    const std::vector<word_t>& words);
[[nodiscard]] kron::EdgeRecord decode_edge_record(
    const std::vector<word_t>& words);
[[nodiscard]] StatsRecord decode_stats_record(
    const std::vector<word_t>& words);
[[nodiscard]] std::vector<std::pair<count_t, index_t>> decode_hist(
    const std::vector<word_t>& words);

/// server_stats result words: format | byte length | packed UTF-8 text.
/// encode_stats_text rejects text above max_frame_bytes; decode_stats_text
/// validates the length against the word count before unpacking.
[[nodiscard]] std::vector<word_t> encode_stats_text(StatsFormat format,
                                                    std::string_view text);
[[nodiscard]] std::string decode_stats_text(const std::vector<word_t>& words);

// ---------------------------------------------------------------------------
// Envelope: payload words <-> sealed byte frames.

/// magic | length | payload | checksum, as one contiguous byte buffer.
[[nodiscard]] std::vector<std::uint8_t> seal_frame(
    const std::vector<word_t>& payload);

/// Inverse of seal_frame over a complete in-memory frame.  Throws
/// protocol_error / checksum_error exactly as the streaming reader in
/// transport.hpp does — this is the hook the malformed-frame fuzz tests
/// drive byte mutations through.
[[nodiscard]] std::vector<word_t> unseal_frame(
    const std::vector<std::uint8_t>& bytes);

/// Bit-pattern transport for doubles (closure / gamma fields).
[[nodiscard]] word_t double_bits(double v);
[[nodiscard]] double bits_double(word_t w);

} // namespace kronlab::serve
