// kronlab/parallel/parallel_for.hpp
//
// Fork/join loop helpers over index ranges, built on ThreadPool.
//
// Kernels in kronlab are written as `parallel_for(0, n, body)` where `body`
// receives a contiguous [begin, end) chunk; chunking (rather than
// element-at-a-time dispatch) keeps per-element overhead at zero and gives
// each worker cache-friendly contiguous slices, as recommended by the HPC
// guides for data-parallel loops.

#pragma once

#include <algorithm>
#include <vector>

#include "kronlab/common/types.hpp"
#include "kronlab/parallel/thread_pool.hpp"

namespace kronlab {

/// Minimum work per chunk below which the loop runs serially: parallel
/// dispatch costs more than this many trivial iterations.
inline constexpr index_t parallel_grain = 2048;

/// Run `body(begin, end)` over a partition of [lo, hi) across the pool.
template <typename Body>
void parallel_for_range(index_t lo, index_t hi, Body&& body,
                        ThreadPool& pool = global_pool()) {
  const index_t n = hi - lo;
  if (n <= 0) return;
  const auto threads = static_cast<index_t>(pool.size());
  if (threads == 1 || n < parallel_grain) {
    body(lo, hi);
    return;
  }
  const index_t chunk = (n + threads - 1) / threads;
  pool.run([&](std::size_t id) {
    const index_t b = lo + static_cast<index_t>(id) * chunk;
    const index_t e = std::min(hi, b + chunk);
    if (b < e) body(b, e);
  });
}

/// Run `body(i)` for each i in [lo, hi) in parallel.
template <typename Body>
void parallel_for(index_t lo, index_t hi, Body&& body,
                  ThreadPool& pool = global_pool()) {
  parallel_for_range(
      lo, hi,
      [&](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i) body(i);
      },
      pool);
}

/// Parallel reduction: combine `body(i)` over [lo, hi) with `op`, starting
/// from `init` in each worker-local accumulator.
template <typename T, typename Body, typename Op>
T parallel_reduce(index_t lo, index_t hi, T init, Body&& body, Op&& op,
                  ThreadPool& pool = global_pool()) {
  const index_t n = hi - lo;
  if (n <= 0) return init;
  const auto threads = static_cast<index_t>(pool.size());
  if (threads == 1 || n < parallel_grain) {
    T acc = init;
    for (index_t i = lo; i < hi; ++i) acc = op(acc, body(i));
    return acc;
  }
  const index_t chunk = (n + threads - 1) / threads;
  std::vector<T> partial(static_cast<std::size_t>(threads), init);
  pool.run([&](std::size_t id) {
    const index_t b = lo + static_cast<index_t>(id) * chunk;
    const index_t e = std::min(hi, b + chunk);
    T acc = init;
    for (index_t i = b; i < e; ++i) acc = op(acc, body(i));
    partial[id] = acc;
  });
  T acc = init;
  for (const T& p : partial) acc = op(acc, p);
  return acc;
}

/// Exclusive prefix sum of `v` (serial — factor-sized arrays only);
/// returns the total.
template <typename T>
T exclusive_scan_inplace(std::vector<T>& v) {
  T running{};
  for (auto& x : v) {
    const T next = running + x;
    x = running;
    running = next;
  }
  return running;
}

} // namespace kronlab
