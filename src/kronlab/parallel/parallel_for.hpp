// kronlab/parallel/parallel_for.hpp
//
// Fork/join loop helpers over index ranges, built on ThreadPool.
//
// Two schedules are provided:
//
//  * Static (`parallel_for`, `parallel_for_range`, `parallel_reduce`):
//    [lo, hi) is split into exactly pool.size() contiguous chunks.  Zero
//    dispatch overhead, but one expensive chunk (a hub row of a
//    heavy-tailed factor) serializes the whole loop behind it.
//  * Dynamic (`*_dynamic` variants): workers pull grain-sized chunks off a
//    shared atomic counter until the range is drained, so a worker stuck
//    on a hub row stops claiming new chunks and the others backfill.  The
//    `_scratch` form hands each worker a worker-local scratch object built
//    once per worker (not once per chunk) — this is what lets the wedge
//    table in butterflies.cpp and the SpGEMM accumulator in grb::mxm be
//    O(n) allocations per worker instead of per chunk.
//
// Dynamic dispatchers report per-worker busy time and chunk counts to the
// innermost metrics::KernelScope (see parallel/metrics.hpp) when metrics
// are enabled.  Nested parallel loops (a parallel kernel called from
// inside another parallel region) are detected and run serially on the
// calling worker, covering their whole range.

#pragma once

#include <algorithm>
#include <atomic>
#include <vector>

#include "kronlab/common/timer.hpp"
#include "kronlab/common/types.hpp"
#include "kronlab/obs/trace.hpp"
#include "kronlab/parallel/metrics.hpp"
#include "kronlab/parallel/thread_pool.hpp"

namespace kronlab {

/// Minimum work per chunk below which the loop runs serially: parallel
/// dispatch costs more than this many trivial iterations.
inline constexpr index_t parallel_grain = 2048;

/// Run `body(begin, end)` over a partition of [lo, hi) across the pool.
template <typename Body>
void parallel_for_range(index_t lo, index_t hi, Body&& body,
                        ThreadPool& pool = global_pool()) {
  const index_t n = hi - lo;
  if (n <= 0) return;
  const auto threads = static_cast<index_t>(pool.size());
  if (threads == 1 || n < parallel_grain) {
    body(lo, hi);
    return;
  }
  const index_t chunk = (n + threads - 1) / threads;
  pool.run([&](std::size_t id) {
    const index_t b = lo + static_cast<index_t>(id) * chunk;
    const index_t e = std::min(hi, b + chunk);
    if (b < e) body(b, e);
  });
}

/// Run `body(i)` for each i in [lo, hi) in parallel.
template <typename Body>
void parallel_for(index_t lo, index_t hi, Body&& body,
                  ThreadPool& pool = global_pool()) {
  parallel_for_range(
      lo, hi,
      [&](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i) body(i);
      },
      pool);
}

/// Parallel reduction: combine `body(i)` over [lo, hi) with `op`, starting
/// from `init` in each worker-local accumulator.
template <typename T, typename Body, typename Op>
T parallel_reduce(index_t lo, index_t hi, T init, Body&& body, Op&& op,
                  ThreadPool& pool = global_pool()) {
  const index_t n = hi - lo;
  if (n <= 0) return init;
  const auto threads = static_cast<index_t>(pool.size());
  if (threads == 1 || n < parallel_grain) {
    T acc = init;
    for (index_t i = lo; i < hi; ++i) acc = op(acc, body(i));
    return acc;
  }
  const index_t chunk = (n + threads - 1) / threads;
  std::vector<T> partial(static_cast<std::size_t>(threads), init);
  pool.run([&](std::size_t id) {
    const index_t b = lo + static_cast<index_t>(id) * chunk;
    const index_t e = std::min(hi, b + chunk);
    T acc = init;
    for (index_t i = b; i < e; ++i) acc = op(acc, body(i));
    partial[id] = acc;
  });
  T acc = init;
  for (const T& p : partial) acc = op(acc, p);
  return acc;
}

/// Chunk size for the dynamic schedule when the caller passes `grain == 0`:
/// target ~8 chunks per worker so stragglers can be backfilled without
/// drowning in dispatch traffic; floor of 1.
inline index_t dynamic_grain(index_t n, std::size_t threads, index_t grain) {
  if (grain > 0) return grain;
  const index_t chunks = static_cast<index_t>(threads) * 8;
  return std::max<index_t>(index_t{1}, (n + chunks - 1) / chunks);
}

/// Dynamically scheduled chunked loop with worker-local scratch.
///
/// `make_scratch(worker_id)` runs once per participating worker; the
/// returned object is passed by reference to every `body(scratch, b, e)`
/// chunk that worker claims.  Chunks are grain-sized slices of [lo, hi)
/// claimed from a shared atomic counter.  Exceptions thrown by `body` stop
/// further dispatch and are rethrown on the caller.  Runs serially when
/// the pool has one thread, the range fits in one grain, or the call is
/// nested inside another parallel region.
template <typename MakeScratch, typename Body>
void parallel_for_range_dynamic_scratch(index_t lo, index_t hi,
                                        MakeScratch&& make_scratch,
                                        Body&& body,
                                        ThreadPool& pool = global_pool(),
                                        index_t grain = 0) {
  const index_t n = hi - lo;
  if (n <= 0) return;
  metrics::KernelScope* const scope = metrics::KernelScope::current();
  const std::size_t threads = pool.size();
  const index_t g = dynamic_grain(n, threads, grain);
  if (threads == 1 || n <= g || ThreadPool::in_parallel_region()) {
    Timer timer;
    auto scratch = make_scratch(std::size_t{0});
    body(scratch, lo, hi);
    if (scope) {
      scope->note_worker(0, timer.seconds(), 1,
                         static_cast<std::uint64_t>(n));
    }
    return;
  }
  std::atomic<index_t> next{lo};
  std::atomic<bool> failed{false};
  // Worker busy windows show up as one "parallel" span per worker on the
  // timeline, labelled with the innermost kernel scope's name.
  const char* const span_name =
      scope != nullptr && scope->trace_name() != nullptr
          ? scope->trace_name()
          : "workers";
  pool.run([&](std::size_t id) {
    trace::Span tspan("parallel", span_name);
    Timer timer;
    std::uint64_t chunks = 0;
    std::uint64_t items = 0;
    auto scratch = make_scratch(id);
    while (!failed.load(std::memory_order_relaxed)) {
      const index_t b = next.fetch_add(g, std::memory_order_relaxed);
      if (b >= hi) break;
      const index_t e = std::min(hi, b + g);
      try {
        body(scratch, b, e);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw; // captured by the pool, rethrown after the join
      }
      ++chunks;
      items += static_cast<std::uint64_t>(e - b);
    }
    if (scope) scope->note_worker(id, timer.seconds(), chunks, items);
  });
}

namespace detail {
struct NoScratch {};
} // namespace detail

/// Dynamically scheduled `body(begin, end)` over grain-sized chunks.
template <typename Body>
void parallel_for_range_dynamic(index_t lo, index_t hi, Body&& body,
                                ThreadPool& pool = global_pool(),
                                index_t grain = 0) {
  parallel_for_range_dynamic_scratch(
      lo, hi, [](std::size_t) { return detail::NoScratch{}; },
      [&](detail::NoScratch&, index_t b, index_t e) { body(b, e); }, pool,
      grain);
}

/// Dynamically scheduled `body(i)` for each i in [lo, hi).
template <typename Body>
void parallel_for_dynamic(index_t lo, index_t hi, Body&& body,
                          ThreadPool& pool = global_pool(),
                          index_t grain = 0) {
  parallel_for_range_dynamic(
      lo, hi,
      [&](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i) body(i);
      },
      pool, grain);
}

/// Dynamically scheduled reduction: combine `body(i)` over [lo, hi) with
/// `op`, starting from `init` in each worker-local accumulator.  Partials
/// are combined in worker-id order, so results are deterministic across
/// runs and pool sizes for associative, commutative `op` (exact integer
/// sums; floating-point results may differ from a serial loop by rounding).
template <typename T, typename Body, typename Op>
T parallel_reduce_dynamic(index_t lo, index_t hi, T init, Body&& body,
                          Op&& op, ThreadPool& pool = global_pool(),
                          index_t grain = 0) {
  const index_t n = hi - lo;
  if (n <= 0) return init;
  std::vector<T> partial(pool.size(), init);
  parallel_for_range_dynamic_scratch(
      lo, hi, [&](std::size_t id) { return &partial[id]; },
      [&](T*& slot, index_t b, index_t e) {
        T acc = *slot;
        for (index_t i = b; i < e; ++i) acc = op(acc, body(i));
        *slot = acc;
      },
      pool, grain);
  T acc = init;
  for (const T& p : partial) acc = op(acc, p);
  return acc;
}

/// Exclusive prefix sum of `v` (serial — factor-sized arrays only);
/// returns the total.
template <typename T>
T exclusive_scan_inplace(std::vector<T>& v) {
  T running{};
  for (auto& x : v) {
    const T next = running + x;
    x = running;
    running = next;
  }
  return running;
}

} // namespace kronlab
