#include "kronlab/parallel/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "kronlab/common/registry.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab::metrics {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv(kronlab::env::kMetrics);
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

thread_local KernelScope* tl_current = nullptr;

struct Registry {
  Mutex mu;
  std::map<std::string, KernelStats> kernels GUARDED_BY(mu);
  std::map<std::string, double> counters GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;
  return r;
}

std::string format_seconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  }
  return buf;
}

} // namespace

double KernelStats::imbalance() const {
  if (busy_seconds <= 0.0 || max_workers <= 1) return 1.0;
  return max_worker_seconds * static_cast<double>(max_workers) /
         busy_seconds;
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

KernelScope::KernelScope(std::string name) : name_(std::move(name)) {
  // Kernel scopes double as trace spans: every instrumented kernel lands
  // on the timeline even when metrics aggregation is off.
  if (trace::enabled()) {
    trace_name_ = trace::intern(name_);
    start_ns_ = timer::now_ns();
  }
  if (!enabled()) return;
  active_ = true;
  parent_ = tl_current;
  tl_current = this;
  if (trace_name_ == nullptr) start_ns_ = timer::now_ns();
}

KernelScope::~KernelScope() {
  if (trace_name_ != nullptr) {
    trace::emit_span("kernel", trace_name_, start_ns_, timer::now_ns());
  }
  if (!active_) return;
  tl_current = parent_;
  const double wall =
      static_cast<double>(timer::now_ns() - start_ns_) * 1e-9;
  // The fork/join barrier guarantees no note_worker() is still running,
  // but the measurements are guarded state: snapshot them under mu_
  // rather than relying on that external invariant.
  double busy = 0.0, max_busy = 0.0;
  std::uint64_t chunks = 0, items = 0;
  std::size_t workers = 0;
  {
    MutexLock lock(mu_);
    for (const double b : worker_busy_) {
      busy += b;
      max_busy = std::max(max_busy, b);
    }
    chunks = chunks_;
    items = items_;
    workers = worker_busy_.size();
  }
  auto& reg = registry();
  MutexLock lock(reg.mu);
  auto& st = reg.kernels[name_];
  ++st.calls;
  st.wall_seconds += wall;
  st.busy_seconds += busy;
  st.max_worker_seconds += max_busy;
  st.chunks += chunks;
  st.items += items;
  st.max_workers = std::max(st.max_workers, workers);
}

KernelScope* KernelScope::current() { return tl_current; }

void KernelScope::note_worker(std::size_t worker, double busy_seconds,
                              std::uint64_t chunks, std::uint64_t items) {
  if (!active_) return;
  MutexLock lock(mu_);
  if (worker_busy_.size() <= worker) worker_busy_.resize(worker + 1, 0.0);
  worker_busy_[worker] += busy_seconds;
  chunks_ += chunks;
  items_ += items;
}

ScopedRecording::ScopedRecording() : prev_(enabled()) {
  set_enabled(true);
  reset();
}

ScopedRecording::~ScopedRecording() { set_enabled(prev_); }

std::map<std::string, KernelStats> snapshot() {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  return reg.kernels;
}

void counter_add(const std::string& name, double delta) {
  if (!enabled()) return;
  auto& reg = registry();
  MutexLock lock(reg.mu);
  reg.counters[name] += delta;
}

std::map<std::string, double> counters_snapshot() {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  return reg.counters;
}

void reset() {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  reg.kernels.clear();
  reg.counters.clear();
}

void merge(KernelStats& into, const KernelStats& other) {
  into.calls += other.calls;
  into.wall_seconds += other.wall_seconds;
  into.busy_seconds += other.busy_seconds;
  into.max_worker_seconds += other.max_worker_seconds;
  into.chunks += other.chunks;
  into.items += other.items;
  into.max_workers = std::max(into.max_workers, other.max_workers);
}

std::string report_text() {
  const auto kernels = snapshot();
  std::vector<std::pair<std::string, KernelStats>> rows(kernels.begin(),
                                                        kernels.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.wall_seconds > b.second.wall_seconds;
  });
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-32s %7s %10s %10s %7s %9s %9s\n",
                "kernel", "calls", "wall", "busy", "workers", "chunks",
                "imbalance");
  out += line;
  for (const auto& [name, st] : rows) {
    std::snprintf(line, sizeof line,
                  "%-32s %7llu %10s %10s %7zu %9llu %9.2f\n", name.c_str(),
                  static_cast<unsigned long long>(st.calls),
                  format_seconds(st.wall_seconds).c_str(),
                  format_seconds(st.busy_seconds).c_str(), st.max_workers,
                  static_cast<unsigned long long>(st.chunks),
                  st.imbalance());
    out += line;
  }
  if (rows.empty()) out += "(no kernels recorded)\n";
  const auto counters = counters_snapshot();
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(line, sizeof line, "  %-32s %14.0f\n", name.c_str(),
                    value);
      out += line;
    }
  }
  return out;
}

std::string report_json() {
  return report_json(snapshot(), counters_snapshot());
}

std::string report_json(const std::map<std::string, KernelStats>& kernels) {
  return report_json(kernels, {});
}

std::string report_json(const std::map<std::string, KernelStats>& kernels,
                        const std::map<std::string, double>& counters) {
  std::string out = "{\"kernels\":[";
  bool first = true;
  char buf[384];
  for (const auto& [name, st] : kernels) {
    std::snprintf(
        buf, sizeof buf,
        "%s{\"name\":\"%s\",\"calls\":%llu,\"wall_seconds\":%.9f,"
        "\"busy_seconds\":%.9f,\"max_worker_seconds\":%.9f,"
        "\"chunks\":%llu,\"items\":%llu,\"max_workers\":%zu,"
        "\"imbalance\":%.4f}",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(st.calls), st.wall_seconds,
        st.busy_seconds, st.max_worker_seconds,
        static_cast<unsigned long long>(st.chunks),
        static_cast<unsigned long long>(st.items), st.max_workers,
        st.imbalance());
    first = false;
    out += buf;
  }
  out += "]";
  if (!counters.empty()) {
    out += ",\"counters\":{";
    first = true;
    for (const auto& [name, value] : counters) {
      std::snprintf(buf, sizeof buf, "%s\"%s\":%.6f", first ? "" : ",",
                    name.c_str(), value);
      first = false;
      out += buf;
    }
    out += "}";
  }
  out += "}";
  return out;
}

} // namespace kronlab::metrics
