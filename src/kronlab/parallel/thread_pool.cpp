#include "kronlab/parallel/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "kronlab/common/registry.hpp"
#include "kronlab/obs/stats.hpp"
#include "kronlab/obs/trace.hpp"

namespace kronlab {

namespace {
thread_local bool tl_in_parallel = false;
thread_local ThreadPool* tl_pool_override = nullptr;
} // namespace

bool ThreadPool::in_parallel_region() { return tl_in_parallel; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t id = 1; id < num_threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t id) {
  trace::set_thread_name("worker " + std::to_string(id));
  std::size_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stop_ && epoch_ == seen_epoch) cv_start_.wait(mutex_);
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    // Live pool-utilization gauge: workers currently inside a job.  A
    // toggle of stats_enabled mid-region can skew it by ±1 per worker
    // until the next region — telemetry, not accounting.
    static obs::Gauge& busy_gauge = obs::gauge("parallel/pool_busy");
    busy_gauge.add(1);
    try {
      tl_in_parallel = true;
      (*job)(id);
      tl_in_parallel = false;
    } catch (...) {
      tl_in_parallel = false;
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    busy_gauge.add(-1);
    {
      MutexLock lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  if (tl_in_parallel) {
    fn(0); // nested region: forking would deadlock, degrade to inline
    return;
  }
  if (workers_.empty()) {
    fn(0); // single-threaded pool: just run inline
    return;
  }
  // One fork/join at a time: a second external caller (another simulated
  // rank thread) waits here rather than clobbering job_/remaining_.
  MutexLock run_lock(run_mutex_);
  static obs::Gauge& size_gauge = obs::gauge("parallel/pool_size");
  size_gauge.set(static_cast<std::int64_t>(workers_.size() + 1));
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    remaining_ = workers_.size();
    first_error_ = nullptr;
    ++epoch_;
  }
  cv_start_.notify_all();
  // The calling thread participates as worker 0.
  static obs::Gauge& busy_gauge = obs::gauge("parallel/pool_busy");
  busy_gauge.add(1);
  std::exception_ptr local_error;
  try {
    tl_in_parallel = true;
    fn(0);
    tl_in_parallel = false;
  } catch (...) {
    tl_in_parallel = false;
    local_error = std::current_exception();
  }
  busy_gauge.add(-1);
  std::exception_ptr pool_error;
  {
    MutexLock lock(mutex_);
    while (remaining_ != 0) cv_done_.wait(mutex_);
    job_ = nullptr;
    pool_error = first_error_;
  }
  if (local_error) std::rethrow_exception(local_error);
  if (pool_error) std::rethrow_exception(pool_error);
}

ScopedPoolOverride::ScopedPoolOverride(ThreadPool& pool)
    : prev_(tl_pool_override) {
  tl_pool_override = &pool;
}

ScopedPoolOverride::~ScopedPoolOverride() { tl_pool_override = prev_; }

ThreadPool& global_pool() {
  if (tl_pool_override != nullptr) return *tl_pool_override;
  static ThreadPool pool([] {
    if (const char* env = std::getenv(env::kThreads)) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return static_cast<std::size_t>(0);
  }());
  return pool;
}

} // namespace kronlab
